/// Figure 1: expected fault-tolerance overhead (Eq. 5) as a function of the
/// failure rate λ ∈ [0, 3.5]/hour and the checkpoint time Tckp ∈ [0, 140] s.
/// Prints the surface as a grid; the paper's headline point — ~40% overhead
/// at Tckp = 120 s and hourly failures — is called out explicitly.

#include <cstdio>

#include "bench_common.hpp"
#include "sim/perf_model.hpp"

int main() {
  using namespace lck;
  bench::banner("Fig. 1 — expected fault tolerance overhead surface",
                "Tao et al., HPDC'18, Figure 1 (Eq. 5)");

  std::printf("%-18s", "Tckp(s) \\ fail/h");
  for (double rate = 0.5; rate <= 3.5001; rate += 0.5)
    std::printf("%9.1f", rate);
  std::printf("\n");

  for (double t_ckp = 20.0; t_ckp <= 140.0001; t_ckp += 20.0) {
    std::printf("%-18.0f", t_ckp);
    for (double rate = 0.5; rate <= 3.5001; rate += 0.5) {
      const double lambda = rate / 3600.0;
      std::printf("%8.1f%%", 100.0 * expected_overhead_ratio(t_ckp, lambda));
    }
    std::printf("\n");
  }

  const double headline =
      100.0 * expected_overhead_ratio(120.0, 1.0 / 3600.0);
  std::printf(
      "\nPaper: ~40%% overhead at Tckp = 120 s, hourly MTTI."
      "  This model: %.1f%%\n",
      headline);
  std::printf(
      "Shape check: overhead grows in both axes and motivates shrinking "
      "Tckp via compression (paper Section 4.1).\n");
  return 0;
}

/// Beyond the paper: multi-level checkpoint hierarchy (FTI/VeloC-style
/// L1 node-local / L2 partner / L3 PFS) vs the paper's single-level
/// synchronous scheme and PR 2's async pipeline.
///
///   build/bench/fig_tiered_ckpt [method] [--json <path>]
///
/// (a) Per-checkpoint solver-blocking time vs ranks: sync pays the full
///     compress+PFS write, async the staging copy plus any back-pressure
///     from a PFS-speed drain, tiered the staging copy plus (rarely) the
///     back-pressure of a node-local-speed drain.
/// (b) Recovery time by failure severity at 2,048 ranks: a single-level
///     scheme always pays the PFS read, the hierarchy serves process
///     failures from L1 and node failures from the L2 partner copy.
/// (c) Expected FT overhead: Eq. 5 (sync), the overlap-aware async model,
///     and the multi-level model with per-tier optimal intervals and the
///     failure rate split by severity.

#include <cstdio>
#include <string>

#include "bench_common.hpp"
#include "common/severity.hpp"

int main(int argc, char** argv) {
  using namespace lck;
  using namespace lck::bench;

  std::string method = "cg";
  JsonSink json;
  CliParser cli(argc, argv, "[method] [--json <path>]");
  while (cli.more()) {
    if (cli.match("--json"))
      json = JsonSink(cli.value());
    else if (cli.positional())
      method = cli.take();
    else
      cli.die_unknown();
  }

  const PaperMethod pm = paper_method(method);
  banner("Tiered checkpoint hierarchy — " + method +
             ": L1/L2/L3 vs single-level sync and async",
         "Beyond Tao et al., HPDC'18 (FTI/VeloC multi-level staging)");

  const MethodRatios ratios = cluster_ratios(pm, /*grid=*/16);
  const double ratio = ratios.lossy;
  const double mtti = 3600.0;
  std::printf("Lossy scheme (SZ), measured rank-slice ratio %.1fx; "
              "MTTI = %.0f s\n\n", ratio, mtti);
  json.text("method", method);
  json.scalar("lossy_ratio", ratio);
  json.scalar("mtti_seconds", mtti);

  // ----- (a) solver-blocking time per checkpoint vs ranks -------------------
  std::printf("(a) Solver-blocking time per checkpoint (s)\n");
  std::printf("%-8s %-12s %-12s %-12s %-14s\n", "procs", "sync", "async",
              "tiered", "tiered-drain");
  std::vector<std::vector<double>> blocking_rows;
  double blk_async_2048 = 0.0, blk_tiered_2048 = 0.0;
  for (const int procs : kTable3Procs) {
    const ClusterModel cl = ClusterModel{}.with_ranks(procs);
    const double raw = table3_vector_bytes(procs);  // lossy saves only x
    const double stored = raw / ratio;
    const double t_sync = cl.write_seconds(stored) + cl.compress_seconds(raw);
    const double t_stage = cl.stage_seconds(raw);
    // Both staged modes pace checkpoints at the Young interval of their
    // own blocking cost; back-pressure appears when the drain outlives it.
    const double interval = young_interval_seconds(t_sync, mtti);
    const double t_drain_pfs = t_sync;
    const double t_drain_l1 =
        cl.local_write_seconds(stored) + cl.compress_seconds(raw);
    const double blk_async =
        async_blocking_seconds(t_stage, t_drain_pfs, interval);
    const double blk_tiered =
        async_blocking_seconds(t_stage, t_drain_l1, interval);
    std::printf("%-8d %-12.2f %-12.3f %-12.3f %-14.3f\n", procs, t_sync,
                blk_async, blk_tiered, t_drain_l1);
    blocking_rows.push_back({static_cast<double>(procs), t_sync, blk_async,
                             blk_tiered, t_drain_l1});
    if (procs == 2048) {
      blk_async_2048 = blk_async;
      blk_tiered_2048 = blk_tiered;
    }
  }
  json.table("blocking_seconds",
             {"procs", "sync", "async", "tiered", "tiered_drain"},
             blocking_rows);
  json.scalar("blocking_async_2048", blk_async_2048);
  json.scalar("blocking_tiered_2048", blk_tiered_2048);
  std::printf("\nAt 2,048 ranks: tiered blocking %.3f s <= async "
              "single-level %.3f s %s\n",
              blk_tiered_2048, blk_async_2048,
              blk_tiered_2048 <= blk_async_2048 + 1e-12 ? "(holds)"
                                                        : "(VIOLATED)");

  // ----- (b) recovery time by failure severity at 2,048 ranks ---------------
  const ClusterModel cl;  // 2,048 ranks
  const double raw = table3_vector_bytes(2048);
  const double stored = raw / ratio;
  const double static_bytes = static_state_bytes(raw);
  std::printf("\n(b) Recovery time by failure severity at 2,048 ranks (s)\n");
  std::printf("%-11s %-10s %-14s %-14s\n", "severity", "tier", "single-level",
              "tiered");
  std::vector<std::vector<double>> recovery_rows;
  const double decomp = cl.decompress_seconds(raw);
  const double single = cl.read_seconds(stored + static_bytes) + decomp;
  for (const FailureSeverity sev : kAllSeverities) {
    // The hierarchy serves the cheapest surviving tier; static state is
    // re-read only once a node (or more) is gone.
    int tier = 2;
    double tiered = 0.0;
    switch (sev) {
      case FailureSeverity::kProcess:
        tier = 0;
        tiered = cl.local_read_seconds(stored) + decomp;
        break;
      case FailureSeverity::kNode:
        tier = 1;
        tiered = cl.partner_read_seconds(stored) +
                 cl.read_seconds(static_bytes) + decomp;
        break;
      default:  // partition, system: only the PFS copy survives; one PFS
                // pass covers checkpoint + static, like the single-level
        tier = 2;
        tiered = cl.read_seconds(stored + static_bytes) + decomp;
        break;
    }
    std::printf("%-11s L%-9d %-14.1f %-14.1f\n", to_string(sev), tier + 1,
                single, tiered);
    recovery_rows.push_back({static_cast<double>(severity_index(sev)),
                             static_cast<double>(tier), single, tiered});
  }
  json.table("recovery_seconds_by_severity",
             {"severity", "tier", "single_level", "tiered"}, recovery_rows);

  // ----- (c) expected FT overhead at 2,048 ranks ----------------------------
  const double lambda = 1.0 / mtti;
  const double t_sync = cl.write_seconds(stored) + cl.compress_seconds(raw);
  const double t_stage = cl.stage_seconds(raw);
  const double interval = young_interval_seconds(t_sync, mtti);
  const double oh_sync = expected_overhead_ratio(t_sync, lambda);
  const double oh_async =
      expected_overhead_ratio_async(t_stage, t_sync, lambda, interval);

  const auto lambdas = severity_tier_lambdas(lambda, kDefaultSeverityWeights);
  const std::vector<double> tier_costs{
      t_stage, cl.partner_write_seconds(stored), cl.write_seconds(stored)};
  const std::vector<double> tier_lambdas{lambdas[0], lambdas[1], lambdas[2]};
  const auto intervals = tiered_optimal_intervals(tier_costs, tier_lambdas);
  const std::vector<double> tier_recovery{
      cl.local_read_seconds(stored) + decomp,
      cl.partner_read_seconds(stored) + cl.read_seconds(static_bytes) + decomp,
      cl.read_seconds(stored + static_bytes) + decomp};
  const double oh_tiered = expected_overhead_ratio_tiered(
      tier_costs, intervals, tier_lambdas, tier_recovery);

  std::printf("\n(c) Expected FT overhead at 2,048 ranks, MTTI %.0f s\n",
              mtti);
  std::printf("%-22s %-12s\n", "model", "overhead");
  std::printf("%-22s %11.2f%%\n", "single-level sync", 100.0 * oh_sync);
  std::printf("%-22s %11.2f%%\n", "single-level async", 100.0 * oh_async);
  std::printf("%-22s %11.2f%%\n", "tiered (L1/L2/L3)", 100.0 * oh_tiered);
  std::printf("Per-tier optimal intervals: L1 %.0f s, L2 %.0f s, L3 %.0f s\n",
              intervals[0], intervals[1], intervals[2]);
  json.scalar("overhead_sync", oh_sync);
  json.scalar("overhead_async", oh_async);
  json.scalar("overhead_tiered", oh_tiered);
  json.table("tier_intervals_seconds", {"tier", "interval"},
             {{1.0, intervals[0]}, {2.0, intervals[1]}, {3.0, intervals[2]}});

  std::printf(
      "\nThe hierarchy keeps the async pipeline's tiny blocking cost while "
      "shrinking the failure bill: most failures are process/node class and "
      "recover from L1/L2 at node-local speed; only rare partition/system "
      "outages pay the PFS read the single-level schemes pay every time.\n");
  json.write();
  return blk_tiered_2048 <= blk_async_2048 + 1e-12 ? 0 : 1;
}

#pragma once
/// Shared implementation for Figures 4, 5 and 6: mean time of one
/// checkpoint and one recovery versus process count for the three schemes.

#include <cstdio>
#include <string>

#include "bench_common.hpp"

namespace lck::bench {

/// `grid` sizes the local stand-in problem used to measure compression
/// ratios; `figure` and `paper_note` label the output. Pass main()'s
/// argc/argv through so `--json <path>` emits the machine-readable tables.
inline int run_ckpt_time_figure(const std::string& method, index_t grid,
                                const std::string& figure,
                                const std::string& paper_note, int argc = 0,
                                char** argv = nullptr) {
  const PaperMethod pm = paper_method(method);
  banner("Fig. " + figure + " — " + method +
             ": time of one checkpoint / recovery vs processes",
         "Tao et al., HPDC'18, Figure " + figure);
  JsonSink json = JsonSink::from_args(argc, argv);

  const MethodRatios ratios = cluster_ratios(pm, grid);
  const double r_lossless = ratios.lossless;
  const double r_lossy = ratios.lossy;
  std::printf("Measured rank-slice ratios: lossless %.2fx, lossy %.1fx\n\n",
              r_lossless, r_lossy);
  json.text("figure", figure);
  json.text("method", method);
  json.scalar("ratio_lossless", r_lossless);
  json.scalar("ratio_lossy", r_lossy);
  const std::vector<std::string> cols{"procs", "traditional", "lossless",
                                      "lossy"};
  std::vector<std::vector<double>> ckpt_rows, rec_rows, blocking_rows;

  std::printf("(a) Checkpoint time (s)\n");
  std::printf("%-8s %-12s %-12s %-12s\n", "procs", "Traditional", "Lossless",
              "Lossy");
  for (const int procs : kTable3Procs) {
    const auto trad = scheme_times(pm, procs, CkptScheme::kTraditional, 1.0);
    const auto lless = scheme_times(pm, procs, CkptScheme::kLossless, r_lossless);
    const auto lossy = scheme_times(pm, procs, CkptScheme::kLossy, r_lossy);
    std::printf("%-8d %-12.1f %-12.1f %-12.1f\n", procs, trad.ckpt_seconds,
                lless.ckpt_seconds, lossy.ckpt_seconds);
    ckpt_rows.push_back({static_cast<double>(procs), trad.ckpt_seconds,
                         lless.ckpt_seconds, lossy.ckpt_seconds});
  }
  json.table("checkpoint_seconds", cols, ckpt_rows);

  std::printf("\n(b) Recovery time (s)\n");
  std::printf("%-8s %-12s %-12s %-12s\n", "procs", "Traditional", "Lossless",
              "Lossy");
  for (const int procs : kTable3Procs) {
    const auto trad = scheme_times(pm, procs, CkptScheme::kTraditional, 1.0);
    const auto lless = scheme_times(pm, procs, CkptScheme::kLossless, r_lossless);
    const auto lossy = scheme_times(pm, procs, CkptScheme::kLossy, r_lossy);
    std::printf("%-8d %-12.1f %-12.1f %-12.1f\n", procs, trad.recovery_seconds,
                lless.recovery_seconds, lossy.recovery_seconds);
    rec_rows.push_back({static_cast<double>(procs), trad.recovery_seconds,
                        lless.recovery_seconds, lossy.recovery_seconds});
  }
  json.table("recovery_seconds", cols, rec_rows);

  // Beyond the paper: the staged (async) pipeline blocks the solver only
  // for the node-local staging copy; the paper's sync checkpoint times
  // above become overlapped drain durations. The sync column repeats the
  // blocking cost of (a) for direct comparison.
  std::printf("\n(c) Solver-blocking checkpoint time (s), sync vs async\n");
  std::printf("%-8s %-11s %-11s %-11s %-11s %-11s %-11s\n", "procs",
              "Trad/sync", "Trad/async", "Lossless/s", "Lossless/a",
              "Lossy/sync", "Lossy/asyn");
  for (const int procs : kTable3Procs) {
    const auto trad = scheme_times(pm, procs, CkptScheme::kTraditional, 1.0);
    const auto lless = scheme_times(pm, procs, CkptScheme::kLossless, r_lossless);
    const auto lossy = scheme_times(pm, procs, CkptScheme::kLossy, r_lossy);
    std::printf("%-8d %-11.1f %-11.2f %-11.1f %-11.2f %-11.1f %-11.2f\n",
                procs, trad.ckpt_seconds, trad.stage_seconds,
                lless.ckpt_seconds, lless.stage_seconds, lossy.ckpt_seconds,
                lossy.stage_seconds);
    blocking_rows.push_back({static_cast<double>(procs), trad.ckpt_seconds,
                             trad.stage_seconds, lless.ckpt_seconds,
                             lless.stage_seconds, lossy.ckpt_seconds,
                             lossy.stage_seconds});
  }
  json.table("blocking_seconds_sync_vs_async",
             {"procs", "traditional_sync", "traditional_async",
              "lossless_sync", "lossless_async", "lossy_sync", "lossy_async"},
             blocking_rows);
  {
    const auto lossy = scheme_times(pm, 2048, CkptScheme::kLossy, r_lossy);
    const auto trad = scheme_times(pm, 2048, CkptScheme::kTraditional, 1.0);
    std::printf(
        "\nAt 2,048 ranks the async pipeline cuts the blocking cost "
        "%.0fx (traditional) and %.0fx (lossy) vs the paper's synchronous "
        "writes; drains of %.1f s / %.1f s overlap iterations.\n",
        trad.ckpt_seconds / trad.stage_seconds,
        lossy.ckpt_seconds / lossy.stage_seconds, trad.ckpt_seconds,
        lossy.ckpt_seconds);
  }

  std::printf("\n%s\n", paper_note.c_str());
  json.write();
  return 0;
}

}  // namespace lck::bench

/// Figure 10: experimental versus expected fault-tolerance overhead of
/// fault-tolerant Jacobi, GMRES and CG with traditional / lossless / lossy
/// checkpointing at 2,048 processes, MTTI = 1 hour, Young-optimal
/// checkpoint intervals — the paper's headline experiment.
///
/// Headline numbers to reproduce in shape: lossy cuts FT overhead by
/// 59/70/23% vs traditional and 24/58/20% vs lossless for
/// Jacobi/GMRES/CG respectively.

#include <cstdio>

#include "bench_common.hpp"
#include "common/stats.hpp"
#include "sim/perf_model.hpp"

int main() {
  using namespace lck;
  bench::banner("Fig. 10 — experimental vs expected FT overhead @2048 procs",
                "Tao et al., HPDC'18, Figure 10");

  constexpr int kProcs = 2048;
  constexpr double kMtti = 3600.0;
  constexpr int kTrials = 20;

  // local_rtol: Jacobi/CG use the paper's tolerances; GMRES runs deeper
  // (1e-10) so its ~150-iteration local trajectory spans several GMRES(30)
  // cycles, keeping the restart granularity proportionally as small as in
  // the paper's 5,875-iteration runs (see EXPERIMENTS.md).
  struct MethodSetup {
    PaperMethod pm;
    index_t grid;
    bool precondition;
    double local_rtol;
  };
  const MethodSetup methods[] = {{paper_jacobi(), 14, false, 1e-4},
                                 {paper_gmres(), 20, false, 1e-10},
                                 {paper_cg(), 20, false, 1e-8}};

  std::printf("%-8s %-13s %-11s %-13s %-13s %-10s %-9s\n", "method", "scheme",
              "Tckp(s)", "interval(s)", "exp ovh(%)", "meas(%)", "fails");

  double measured[3][3];  // [method][scheme]
  for (int m = 0; m < 3; ++m) {
    const auto& s = methods[m];
    const LocalProblem p = make_local_problem(s.pm.method, s.grid, s.local_rtol,
                                              200000, s.precondition);
    auto baseline = p.make_solver();
    baseline->solve();
    const index_t n_base = baseline->iteration();
    const double t_it = s.pm.baseline_seconds / static_cast<double>(n_base);
    const double baseline_virtual = s.pm.baseline_seconds;

    const auto cluster_r = bench::cluster_ratios(s.pm, s.grid);
    for (int sc = 0; sc < 3; ++sc) {
      const CkptScheme scheme = bench::kAllSchemes[sc];
      const double ratio = scheme == CkptScheme::kTraditional ? 1.0
                           : scheme == CkptScheme::kLossless
                               ? cluster_r.lossless
                               : cluster_r.lossy;
      const auto times = bench::scheme_times(s.pm, kProcs, scheme, ratio);
      const double interval =
          young_interval_seconds(times.ckpt_seconds, kMtti);

      RunningStats overhead, fails;
      for (int t = 0; t < kTrials; ++t) {
        auto solver = p.make_solver();
        ResilienceConfig cfg;
        cfg.scheme = scheme;
        cfg.compression.lossy_eb = ErrorBound::pointwise_rel(s.pm.eb_value);
        cfg.compression.adaptive_error_bound =
            scheme == CkptScheme::kLossy && s.pm.adaptive_eb;
        cfg.compression.adaptive_theta = bench::kAdaptiveTheta;
        cfg.failure.mtti_seconds = kMtti;
        cfg.failure.seed = 9000 + static_cast<std::uint64_t>(m) * 100 + sc * 10 + t;
        cfg.iteration_seconds = t_it;
        cfg.cluster = ClusterModel{}.with_ranks(kProcs);
        cfg.policy.interval_seconds = interval;
        cfg.dynamic_scale = table3_vector_bytes(kProcs) / p.vector_bytes();
        cfg.static_bytes = static_state_bytes(table3_vector_bytes(kProcs));
        ResilientRunner runner(*solver, cfg);
        const auto res = runner.run();
        overhead.add(100.0 * (res.virtual_seconds - baseline_virtual) /
                     baseline_virtual);
        fails.add(static_cast<double>(res.failures));
      }
      measured[m][sc] = overhead.mean();

      const double lambda = 1.0 / kMtti;
      // The paper's N' values are counted in its own iteration units
      // (e.g. CG: 594 of 2,376); rescale to this run's granularity so
      // lambda*N'*Tit keeps the paper's meaning.
      const double n_prime_local = s.pm.expected_nprime /
                                   s.pm.baseline_iterations *
                                   static_cast<double>(n_base);
      const double expected =
          scheme == CkptScheme::kLossy
              ? 100.0 * expected_overhead_ratio_lossy(
                            times.ckpt_seconds, lambda, n_prime_local, t_it)
              : 100.0 * expected_overhead_ratio(times.ckpt_seconds, lambda);

      std::printf("%-8s %-13s %-11.1f %-13.0f %-13.1f %-10.1f %-9.1f\n",
                  s.pm.method.c_str(), bench::scheme_label(scheme),
                  times.ckpt_seconds, interval, expected, overhead.mean(),
                  fails.mean());
    }
  }

  std::printf("\nReductions of FT overhead by lossy checkpointing:\n");
  std::printf("%-8s %-24s %-24s\n", "method", "vs traditional",
              "vs lossless");
  const char* names[] = {"jacobi", "gmres", "cg"};
  for (int m = 0; m < 3; ++m) {
    const double vs_trad =
        100.0 * (measured[m][0] - measured[m][2]) / measured[m][0];
    const double vs_lless =
        100.0 * (measured[m][1] - measured[m][2]) / measured[m][1];
    std::printf("%-8s %-24.0f %-24.0f\n", names[m], vs_trad, vs_lless);
  }
  std::printf(
      "\nPaper: reductions of 59/70/23%% vs traditional and 24/58/20%% vs "
      "lossless (Jacobi/GMRES/CG); lossy wins for every method.\n");
  return 0;
}

/// Table 3: problem sizes and average per-process checkpoint sizes (MB) for
/// traditional / lossless / lossy checkpointing × Jacobi / GMRES / CG at
/// 256 … 2048 processes.
///
/// Compression ratios are measured for real on this repo's solvers'
/// solution vectors (sampled along the convergence trajectory); per-process
/// sizes come from the paper's weak-scaling problem sizes (grid n³ per rank
/// count) divided by the measured ratios. CG's traditional/lossless rows
/// carry two vectors (x and p); the lossy scheme checkpoints x only.

#include <cstdio>
#include <map>

#include "bench_common.hpp"

int main() {
  using namespace lck;
  bench::banner("Table 3 — checkpoint size per process (MB)",
                "Tao et al., HPDC'18, Table 3");

  const std::map<std::string, index_t> grids{
      {"jacobi", 16}, {"gmres", 16}, {"cg", 20}};

  // Cluster-scale ratios: real compressors on synthesized per-rank slices
  // whose error magnitude is measured from real local runs (bench_common).
  std::map<std::string, double> lossless_ratio, lossy_ratio;
  for (const auto& [method, grid] : grids) {
    const auto r = bench::cluster_ratios(paper_method(method), grid);
    lossless_ratio[method] = r.lossless;
    lossy_ratio[method] = r.lossy;
  }

  std::printf("Measured rank-slice compression ratios:\n");
  for (const auto& [method, grid] : grids)
    std::printf("  %-8s lossless(deflate) %.2fx   lossy(sz) %.1fx\n",
                method.c_str(), lossless_ratio[method], lossy_ratio[method]);

  std::printf("\n%-6s %-10s | %-8s %-8s %-8s | %-8s %-8s %-8s | %-8s %-8s %-8s\n",
              "procs", "size", "TradJac", "TradGMR", "TradCG", "LlessJac",
              "LlessGMR", "LlessCG", "LossyJac", "LossyGMR", "LossyCG");
  for (const int procs : bench::kTable3Procs) {
    const index_t n = table3_grid_n(procs);
    const double vec_mb =
        table3_vector_bytes(procs) / procs / 1e6;  // one vector, per proc
    std::printf(
        "%-6d %4lld^3     | %-8.1f %-8.1f %-8.1f | %-8.2f %-8.2f %-8.2f | "
        "%-8.2f %-8.2f %-8.2f\n",
        procs, static_cast<long long>(n), vec_mb, vec_mb, 2.0 * vec_mb,
        vec_mb / lossless_ratio["jacobi"], vec_mb / lossless_ratio["gmres"],
        2.0 * vec_mb / lossless_ratio["cg"], vec_mb / lossy_ratio["jacobi"],
        vec_mb / lossy_ratio["gmres"], vec_mb / lossy_ratio["cg"]);
  }

  std::printf(
      "\nPaper row at 2,048 procs: trad 39.4/39.4/78.8 MB, lossless "
      "6.15/32.7/67.9 MB, lossy 1.16/1.16/1.33 MB.\n"
      "Shape: lossy is ~1/20–1/60 of raw; lossless manages ~6x on smooth "
      "Jacobi data but barely >1x on Krylov vectors.\n");
  return 0;
}

/// Observability overhead gate (PR 8): the obs layer promises *zero
/// overhead when disabled* and near-zero when enabled — spans and metrics
/// observe the simulation, they never branch it. This driver proves both
/// properties on a real CG resilient run:
///
///  1. Bit-stability: an obs-on run must produce a ResilienceResult equal
///     field-by-field (exact double compares — same arithmetic, same order)
///     to the obs-off run, for each of sync / async / tiered modes.
///  2. Overhead: best-of-trials process-CPU time of the obs-on runs must be
///     <= 1.05x the obs-off runs summed across all three modes (same basis
///     as fig_kernel_speed: CPU time sums across threads, so the
///     measurement is stable on any core count). Each individual mode gets
///     a looser 1.15x sanity bound — per-mode samples are ~0.2 s of CPU and
///     frequency/cache drift between the off and on windows swings them a
///     few percent either way; summing the modes cancels most of it while
///     still catching any real regression (a branch in the simulation or an
///     allocation on the disabled path shows up far above 15%).
///
/// Emits BENCH_obs.json; exit status is non-zero when either check fails.

#include <algorithm>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/timer.hpp"
#include "core/experiment.hpp"
#include "core/resilient_runner.hpp"
#include "sim/perf_model.hpp"

namespace {

using namespace lck;

ResilienceConfig make_config(CkptMode mode, double t_it, double vec_bytes,
                             bool obs_on) {
  ResilienceConfig cfg;
  cfg.scheme = CkptScheme::kLossy;
  cfg.ckpt_mode = mode;
  cfg.failure.mtti_seconds = 3600.0;
  cfg.failure.seed = 2024;
  cfg.iteration_seconds = t_it;
  cfg.cluster = ClusterModel{};
  cfg.dynamic_scale = 78.8e9 / vec_bytes;
  cfg.static_bytes = 0.25 * 78.8e9;
  cfg.policy.interval_seconds =
      young_interval_seconds(cfg.cluster.write_seconds(78.8e9), 3600.0);
  cfg.obs.metrics = obs_on;
  cfg.obs.trace = obs_on;
  return cfg;
}

ResilienceResult run_once(const LocalProblem& p, CkptMode mode, double t_it,
                          bool obs_on) {
  auto solver = p.make_solver();
  ResilienceConfig cfg = make_config(mode, t_it, p.vector_bytes(), obs_on);
  ResilientRunner runner(*solver, cfg);
  return runner.run();
}

/// Exact comparison — obs on/off must not perturb a single bit of the
/// simulation. Prints the first differing field.
bool results_equal(const ResilienceResult& a, const ResilienceResult& b) {
  const char* diff = nullptr;
  if (a.converged != b.converged) diff = "converged";
  else if (a.executed_steps != b.executed_steps) diff = "executed_steps";
  else if (a.convergence_iteration != b.convergence_iteration)
    diff = "convergence_iteration";
  else if (a.final_residual_norm != b.final_residual_norm)
    diff = "final_residual_norm";
  else if (a.virtual_seconds != b.virtual_seconds) diff = "virtual_seconds";
  else if (a.failures != b.failures) diff = "failures";
  else if (a.checkpoints != b.checkpoints) diff = "checkpoints";
  else if (a.recoveries != b.recoveries) diff = "recoveries";
  else if (a.aborted_drains != b.aborted_drains) diff = "aborted_drains";
  else if (a.ckpt_seconds_total != b.ckpt_seconds_total)
    diff = "ckpt_seconds_total";
  else if (a.ckpt_drain_seconds_total != b.ckpt_drain_seconds_total)
    diff = "ckpt_drain_seconds_total";
  else if (a.backpressure_seconds_total != b.backpressure_seconds_total)
    diff = "backpressure_seconds_total";
  else if (a.recovery_seconds_total != b.recovery_seconds_total)
    diff = "recovery_seconds_total";
  else if (a.mean_ckpt_seconds != b.mean_ckpt_seconds)
    diff = "mean_ckpt_seconds";
  else if (a.mean_recovery_seconds != b.mean_recovery_seconds)
    diff = "mean_recovery_seconds";
  else if (a.failures_by_severity != b.failures_by_severity)
    diff = "failures_by_severity";
  else if (a.recoveries_by_tier != b.recoveries_by_tier)
    diff = "recoveries_by_tier";
  else if (a.promotions_completed != b.promotions_completed)
    diff = "promotions_completed";
  else if (a.promotion_seconds_total != b.promotion_seconds_total)
    diff = "promotion_seconds_total";
  else if (a.mean_ckpt_stored_bytes != b.mean_ckpt_stored_bytes)
    diff = "mean_ckpt_stored_bytes";
  else if (a.compression_ratio != b.compression_ratio)
    diff = "compression_ratio";
  else if (a.delta_bytes_total != b.delta_bytes_total)
    diff = "delta_bytes_total";
  else if (a.chunks_deduped != b.chunks_deduped) diff = "chunks_deduped";
  else if (a.full_checkpoints != b.full_checkpoints)
    diff = "full_checkpoints";
  else if (a.policy_interval_final != b.policy_interval_final)
    diff = "policy_interval_final";
  else if (a.interval_adjustments != b.interval_adjustments)
    diff = "interval_adjustments";
  if (diff != nullptr) {
    std::printf("  MISMATCH in ResilienceResult::%s\n", diff);
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bench::CliParser cli(argc, argv, "[--json <path>] [--reps <k>]");
  bench::JsonSink json;
  int reps = 6;
  while (cli.more()) {
    if (cli.match("--json")) json = bench::JsonSink(cli.value());
    else if (cli.match("--reps")) reps = static_cast<int>(cli.number(1));
    else cli.die_unknown();
  }
  const int trials = 9;
  const double gate = 1.05;       // aggregate across modes
  const double mode_gate = 1.15;  // per-mode sanity bound

  bench::banner("Observability overhead: obs-on vs obs-off CG resilient run",
                "obs layer contract (metrics + tracing observe the "
                "simulation, never branch it)");

  // Grid 32 (32,768 unknowns) keeps each timed run long enough that
  // scheduler/allocator noise stays well under the 5% gate.
  const LocalProblem p =
      make_local_problem("cg", 32, 1e-8, 200000, /*precondition=*/false);
  auto baseline = p.make_solver();
  baseline->solve();
  const double t_it = 3600.0 / static_cast<double>(baseline->iteration());

  bool all_ok = true;
  double total_off = 0.0;
  double total_on = 0.0;
  std::vector<std::vector<double>> rows;
  std::printf("%-8s %12s %12s %8s %10s\n", "mode", "off CPU s", "on CPU s",
              "ratio", "bit-equal");
  for (const CkptMode mode :
       {CkptMode::kSync, CkptMode::kAsync, CkptMode::kTiered}) {
    // Bit-stability first (also warms caches before the timed runs).
    const ResilienceResult off = run_once(p, mode, t_it, false);
    const ResilienceResult on = run_once(p, mode, t_it, true);
    const bool equal = results_equal(off, on);

    // Interleave the off/on trials so cache/allocator drift hits both
    // sides equally; best-of-trials minimum then rejects the noise.
    double cpu_off = std::numeric_limits<double>::infinity();
    double cpu_on = std::numeric_limits<double>::infinity();
    for (int t = 0; t < trials; ++t) {
      cpu_off = std::min(
          cpu_off,
          time_cpu([&] { (void)run_once(p, mode, t_it, false); }, reps, 1));
      cpu_on = std::min(
          cpu_on,
          time_cpu([&] { (void)run_once(p, mode, t_it, true); }, reps, 1));
    }
    const double ratio = cpu_off > 0.0 ? cpu_on / cpu_off : 0.0;
    const bool ok = equal && ratio <= mode_gate;
    all_ok = all_ok && ok;
    total_off += cpu_off;
    total_on += cpu_on;

    std::printf("%-8s %12.4f %12.4f %8.3f %10s\n", to_string(mode), cpu_off,
                cpu_on, ratio, equal ? "yes" : "NO");
    rows.push_back({cpu_off, cpu_on, ratio, equal ? 1.0 : 0.0});
    const std::string m = to_string(mode);
    json.scalar("cpu_" + m + "_off", cpu_off);
    json.scalar("cpu_" + m + "_on", cpu_on);
    json.scalar("ratio_" + m, ratio);
    json.scalar("bit_equal_" + m, equal ? 1.0 : 0.0);
  }
  const double ratio_total = total_off > 0.0 ? total_on / total_off : 0.0;
  all_ok = all_ok && ratio_total <= gate;
  std::printf("aggregate ratio %.3f (gate %.2f, per-mode sanity %.2f)\n",
              ratio_total, gate, mode_gate);
  std::printf("all modes bit-equal, aggregate <= %.2f: %s\n", gate,
              all_ok ? "yes" : "NO");

  json.scalar("reps", reps);
  json.scalar("gate", gate);
  json.scalar("mode_gate", mode_gate);
  json.scalar("cpu_total_off", total_off);
  json.scalar("cpu_total_on", total_on);
  json.scalar("ratio_total", ratio_total);
  json.scalar("all_ok", all_ok ? 1.0 : 0.0);
  json.table("modes", {"cpu_off_s", "cpu_on_s", "ratio", "bit_equal"}, rows);
  json.write();
  return all_ok ? 0 : 1;
}

/// Beyond the paper: checkpoint pacing policies head to head. The paper
/// picks one Young-optimal interval offline ("fixed"); the policy API lets
/// the perf model derive it per mode ("young") or re-derive it online from
/// observed costs ("adaptive"). This harness sweeps MTTI × CkptMode ×
/// policy with real ResilientRunner executions at the paper's 2,048-rank
/// point and reports total fault-tolerance overhead vs the failure-free
/// baseline.
///
///   build/bench/fig_policy_compare [method] [--json <path>]
///
/// Exit code enforces the headline claim: at every swept MTTI, the
/// adaptive policy's mean total overhead (across modes and trials) must
/// not exceed the fixed 420 s pacing's (the paper's offline pick for the
/// traditional scheme). Per-point numbers land in the JSON table; the
/// aggregation keeps the gate robust at the low-failure-count end of the
/// sweep (MTTI 7200 s ≈ 0.5 failures/run), where single seeds wiggle.

#include <array>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace lck;
  using namespace lck::bench;

  std::string method = "cg";
  JsonSink json;
  CliParser cli(argc, argv, "[method] [--json <path>]");
  while (cli.more()) {
    if (cli.match("--json"))
      json = JsonSink(cli.value());
    else if (cli.positional())
      method = cli.take();
    else
      cli.die_unknown();
  }

  banner("Checkpoint pacing policies — " + method +
             ": fixed 420 s vs model-driven (young, adaptive)",
         "Beyond Tao et al., HPDC'18 (adaptive interval from the "
         "overlap-aware/tiered cost models)");

  // Laptop-scale stand-in mapped onto a 2,048-rank hour-scale execution,
  // exactly like resilient_solve.
  const bool stationary = method == "jacobi";
  const LocalProblem p = make_local_problem(method, stationary ? 14 : 16,
                                            stationary ? 1e-4 : 1e-8, 200000,
                                            /*precondition=*/false);
  auto baseline = p.make_solver();
  baseline->solve();
  const double n_base = static_cast<double>(baseline->iteration());
  const double t_it = 3600.0 / n_base;
  const double baseline_seconds = 3600.0;
  std::printf("%s on %lld unknowns: failure-free N = %.0f iterations; "
              "2,048 ranks, lossy scheme (SZ), fixed pacing = 420 s\n\n",
              method.c_str(), static_cast<long long>(p.a.rows()), n_base);

  const std::array<double, 3> mttis{1800.0, 3600.0, 7200.0};
  const std::array<CkptMode, 3> modes{CkptMode::kSync, CkptMode::kAsync,
                                      CkptMode::kTiered};
  const std::array<const char*, 3> policies{"fixed", "young", "adaptive"};
  constexpr int kTrials = 5;

  std::printf("%-8s %-7s %-10s %-10s %-8s %-11s %-13s %-9s\n", "MTTI",
              "mode", "policy", "total(s)", "ckpts", "interval(s)", "adjusts",
              "overhead");
  std::vector<std::vector<double>> rows;
  bool adaptive_wins = true;
  double oh_fixed_3600 = 0.0, oh_adaptive_3600 = 0.0;

  std::vector<std::vector<double>> sweep_rows;
  for (const double mtti : mttis) {
    std::array<double, 3> mtti_mean{};  // per-policy mean across modes
    for (std::size_t mi = 0; mi < modes.size(); ++mi) {
      std::array<double, 3> overhead{};
      for (std::size_t pi = 0; pi < policies.size(); ++pi) {
        double total = 0.0, ckpts = 0.0, interval = 0.0, adjusts = 0.0;
        for (int t = 0; t < kTrials; ++t) {
          auto solver = p.make_solver();
          ResilienceConfig cfg;
          cfg.scheme = CkptScheme::kLossy;
          cfg.ckpt_mode = modes[mi];
          cfg.compression.adaptive_error_bound = method == "gmres";
          cfg.compression.adaptive_theta = kAdaptiveTheta;
          cfg.failure.mtti_seconds = mtti;
          cfg.failure.seed =
              5000 + static_cast<std::uint64_t>(mtti) + mi * 10 + t;
          cfg.iteration_seconds = t_it;
          cfg.cluster = ClusterModel{};  // 2,048 ranks
          cfg.dynamic_scale = 78.8e9 / p.vector_bytes();
          cfg.static_bytes = 0.25 * 78.8e9;
          cfg.policy.name = policies[pi];
          cfg.policy.interval_seconds = 420.0;  // the paper's offline pick
          ResilientRunner runner(*solver, cfg);
          const ResilienceResult res = runner.run();
          total += res.virtual_seconds;
          ckpts += res.checkpoints;
          interval += res.policy_interval_final;
          adjusts += res.interval_adjustments;
        }
        total /= kTrials;
        ckpts /= kTrials;
        interval /= kTrials;
        adjusts /= kTrials;
        overhead[pi] = (total - baseline_seconds) / baseline_seconds;
        std::printf("%-8.0f %-7s %-10s %-10.0f %-8.1f %-11.1f %-13.1f "
                    "%7.1f%%\n",
                    mtti, to_string(modes[mi]), policies[pi], total, ckpts,
                    interval, adjusts, 100.0 * overhead[pi]);
        rows.push_back({mtti, static_cast<double>(mi),
                        static_cast<double>(pi), total, ckpts, interval,
                        adjusts, overhead[pi]});
      }
      for (std::size_t pi = 0; pi < policies.size(); ++pi)
        mtti_mean[pi] += overhead[pi] / static_cast<double>(modes.size());
      if (mtti == 3600.0 && modes[mi] == CkptMode::kSync) {
        oh_fixed_3600 = overhead[0];
        oh_adaptive_3600 = overhead[2];
      }
    }
    std::printf("  MTTI %.0f s mean across modes: fixed %.1f%%, young "
                "%.1f%%, adaptive %.1f%%\n\n",
                mtti, 100.0 * mtti_mean[0], 100.0 * mtti_mean[1],
                100.0 * mtti_mean[2]);
    sweep_rows.push_back({mtti, mtti_mean[0], mtti_mean[1], mtti_mean[2]});
    if (mtti_mean[2] > mtti_mean[0] + 1e-12) adaptive_wins = false;
  }

  json.text("method", method);
  json.scalar("baseline_seconds", baseline_seconds);
  json.scalar("fixed_interval_seconds", 420.0);
  json.scalar("trials", kTrials);
  json.table("policy_overhead",
             {"mtti", "mode", "policy", "total_seconds", "checkpoints",
              "interval_final", "interval_adjustments", "overhead"},
             rows);
  json.table("mtti_mean_overhead", {"mtti", "fixed", "young", "adaptive"},
             sweep_rows);
  json.scalar("overhead_fixed_sync_3600", oh_fixed_3600);
  json.scalar("overhead_adaptive_sync_3600", oh_adaptive_3600);
  json.scalar("adaptive_beats_fixed", adaptive_wins ? 1.0 : 0.0);
  json.write();

  std::printf("At 2,048 ranks / MTTI 3600 s (sync): fixed-420 s overhead "
              "%.2f%%, adaptive %.2f%% — adaptive <= fixed at every swept "
              "MTTI: %s\n",
              100.0 * oh_fixed_3600, 100.0 * oh_adaptive_3600,
              adaptive_wins ? "holds" : "VIOLATED");
  std::printf(
      "\nThe fixed interval is tuned for the traditional scheme's 120 s "
      "checkpoint; once compression (and, in the staged modes, overlap) "
      "shrinks the blocking cost, 420 s leaves long failure-rework windows. "
      "The adaptive policy re-derives the interval from observed blocking "
      "cost after every commit, checkpointing far more often when "
      "checkpoints are nearly free and backing off when they are not.\n");
  return adaptive_wins ? 0 : 1;
}

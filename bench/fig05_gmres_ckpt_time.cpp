/// Figure 5: average time of one checkpoint and one recovery for GMRES(30)
/// under traditional / lossless / lossy checkpointing, 256…2048 processes.

#include "fig_ckpt_time.hpp"

int main(int argc, char** argv) {
  return lck::bench::run_ckpt_time_figure(
      "gmres", 16, "5",
      "Paper shape: lossless barely beats traditional on Krylov iterate "
      "data (ratio ~1.2), while lossy cuts the 120 s checkpoint to ~25 s "
      "at 2,048 ranks — the paper's Theorem 1 worked example.", argc, argv);
}

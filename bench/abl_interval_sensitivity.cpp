/// Ablation: fault-tolerance overhead versus checkpoint interval around the
/// Young optimum (Eq. 1) — validates the paper's use of Young-optimal
/// intervals for each scheme (§5.4: 16 / 12 / 7 minutes).

#include <cstdio>

#include "bench_common.hpp"
#include "common/stats.hpp"
#include "sim/perf_model.hpp"

int main() {
  using namespace lck;
  bench::banner("Ablation — FT overhead vs checkpoint interval (Young sweep)",
                "validates Eq. 1 for Tao et al., HPDC'18 §5.4");

  constexpr int kProcs = 2048;
  constexpr double kMtti = 3600.0;
  // Jacobi isolates the interval trade-off cleanly: no Krylov-restart
  // penalty, so overhead is purely checkpoint cost vs rollback cost.
  const PaperMethod pm = paper_jacobi();

  const LocalProblem p = make_local_problem("jacobi", 14, pm.rtol, 200000, false);
  auto baseline = p.make_solver();
  baseline->solve();
  const double t_it =
      pm.baseline_seconds / static_cast<double>(baseline->iteration());

  const double ratio = bench::cluster_ratios(pm, 14).lossy;
  const auto times = bench::scheme_times(pm, kProcs, CkptScheme::kLossy, ratio);
  const double young = young_interval_seconds(times.ckpt_seconds, kMtti);
  std::printf("Jacobi lossy: Tckp = %.1f s, Young-optimal interval = %.0f s\n\n",
              times.ckpt_seconds, young);

  std::printf("%-12s %-14s %-14s %-9s\n", "interval/Y*", "interval(s)",
              "overhead(%)", "ckpts");
  for (const double mult : {0.25, 0.5, 1.0, 2.0, 4.0}) {
    RunningStats overhead, ckpts;
    // Common random numbers: the same failure sequences are replayed for
    // every interval setting, isolating the interval effect.
    for (int t = 0; t < 16; ++t) {
      auto solver = p.make_solver();
      ResilienceConfig cfg;
      cfg.scheme = CkptScheme::kLossy;
      cfg.failure.mtti_seconds = kMtti;
      cfg.failure.seed = 400 + t;
      cfg.iteration_seconds = t_it;
      cfg.cluster = ClusterModel{}.with_ranks(kProcs);
      cfg.policy.interval_seconds = mult * young;
      cfg.dynamic_scale = table3_vector_bytes(kProcs) / p.vector_bytes();
      cfg.static_bytes = static_state_bytes(table3_vector_bytes(kProcs));
      ResilientRunner runner(*solver, cfg);
      const auto res = runner.run();
      overhead.add(100.0 * (res.virtual_seconds - pm.baseline_seconds) /
                   pm.baseline_seconds);
      ckpts.add(static_cast<double>(res.checkpoints));
    }
    std::printf("%-12.2f %-14.0f %-14.1f %-9.0f\n", mult, mult * young,
                overhead.mean(), ckpts.mean());
  }

  std::printf(
      "\nExpected: a shallow minimum near 1.0x the Young interval — too "
      "frequent pays checkpoint cost, too rare pays rollback cost.\n");
  return 0;
}

/// google-benchmark microbenchmarks for the compression stack: throughput
/// of each compressor on solver-like data, plus the Huffman core.

#include <benchmark/benchmark.h>

#include <cmath>

#include "common/rng.hpp"
#include "compress/compressor.hpp"
#include "compress/huffman.hpp"
#include "sparse/vector_ops.hpp"

namespace {

lck::Vector solver_like(std::size_t n) {
  lck::Rng rng(5);
  lck::Vector v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = std::sin(0.0005 * static_cast<double>(i)) + 2.0 +
           1e-6 * rng.uniform();
  return v;
}

void bm_compress(benchmark::State& state, const char* name) {
  const auto comp =
      lck::make_compressor(name, lck::ErrorBound::pointwise_rel(1e-4));
  const auto data = solver_like(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto stream = comp->compress(data);
    benchmark::DoNotOptimize(stream);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.size() * 8));
}

void bm_decompress(benchmark::State& state, const char* name) {
  const auto comp =
      lck::make_compressor(name, lck::ErrorBound::pointwise_rel(1e-4));
  const auto data = solver_like(static_cast<std::size_t>(state.range(0)));
  const auto stream = comp->compress(data);
  lck::Vector out(data.size());
  for (auto _ : state) {
    comp->decompress(stream, out);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.size() * 8));
}

void bm_huffman_encode(benchmark::State& state) {
  lck::Rng rng(9);
  std::vector<std::uint64_t> freqs(65536, 0);
  std::vector<std::uint32_t> symbols(1 << 16);
  for (auto& s : symbols) {
    s = 32768 + static_cast<std::uint32_t>(rng.normal(0.0, 40.0));
    ++freqs[s];
  }
  const auto lengths = lck::huffman_code_lengths(freqs);
  const lck::HuffmanEncoder enc(lengths);
  for (auto _ : state) {
    lck::BitWriter bw;
    for (const auto s : symbols) enc.encode(bw, s);
    auto out = bw.finish();
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(symbols.size()));
}

}  // namespace

BENCHMARK_CAPTURE(bm_compress, sz, "sz")->Arg(1 << 16)->Arg(1 << 20);
BENCHMARK_CAPTURE(bm_compress, zfp, "zfp")->Arg(1 << 16)->Arg(1 << 20);
BENCHMARK_CAPTURE(bm_compress, deflate, "deflate")->Arg(1 << 16);
BENCHMARK_CAPTURE(bm_compress, shuffle_rle, "shuffle-rle")->Arg(1 << 20);
BENCHMARK_CAPTURE(bm_decompress, sz, "sz")->Arg(1 << 16)->Arg(1 << 20);
BENCHMARK_CAPTURE(bm_decompress, zfp, "zfp")->Arg(1 << 16)->Arg(1 << 20);
BENCHMARK_CAPTURE(bm_decompress, deflate, "deflate")->Arg(1 << 16);
BENCHMARK(bm_huffman_encode);

BENCHMARK_MAIN();

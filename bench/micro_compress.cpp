/// google-benchmark microbenchmarks for the compression stack: throughput
/// of each compressor on solver-like data, the parallel block pipeline's
/// thread scaling, plus the Huffman core.

#include <benchmark/benchmark.h>

#include <cmath>
#include <span>
#include <string>

#include "common/rng.hpp"
#include "compress/block_compressor.hpp"
#include "compress/compressor.hpp"
#include "compress/huffman.hpp"
#include "compress/lossless/byte_codecs.hpp"
#include "parallel/parallel_for.hpp"
#include "sparse/vector_ops.hpp"

#if defined(_OPENMP)
#include <omp.h>
#endif

namespace {

lck::Vector solver_like(std::size_t n) {
  lck::Rng rng(5);
  lck::Vector v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = std::sin(0.0005 * static_cast<double>(i)) + 2.0 +
           1e-6 * rng.uniform();
  return v;
}

void bm_compress(benchmark::State& state, const char* name) {
  const auto comp =
      lck::make_compressor(name, lck::ErrorBound::pointwise_rel(1e-4));
  const auto data = solver_like(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto stream = comp->compress(data);
    benchmark::DoNotOptimize(stream);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.size() * 8));
}

void bm_decompress(benchmark::State& state, const char* name) {
  const auto comp =
      lck::make_compressor(name, lck::ErrorBound::pointwise_rel(1e-4));
  const auto data = solver_like(static_cast<std::size_t>(state.range(0)));
  const auto stream = comp->compress(data);
  lck::Vector out(data.size());
  for (auto _ : state) {
    comp->decompress(stream, out);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.size() * 8));
}

/// Thread scaling of the parallel block pipeline: range(0) elements split
/// into BlockCompressor blocks, compressed on range(1) OpenMP threads.
/// The ratio of items/s between the 1-thread and N-thread rows is the
/// pipeline's parallel speedup (paper §5: compression must stay cheap
/// relative to the PFS write).
void bm_block_compress(benchmark::State& state, const char* name) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
#if defined(_OPENMP)
  const int prev_threads = omp_get_max_threads();
  omp_set_num_threads(threads);
#else
  if (threads > 1) {
    state.SkipWithError("built without OpenMP");
    return;
  }
#endif
  const auto comp = lck::make_compressor(std::string("block+") + name,
                                         lck::ErrorBound::pointwise_rel(1e-4));
  const auto data = solver_like(n);
  for (auto _ : state) {
    auto stream = comp->compress(data);
    benchmark::DoNotOptimize(stream);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.size() * 8));
  state.counters["threads"] = threads;
#if defined(_OPENMP)
  omp_set_num_threads(prev_threads);
#endif
}

/// The 4-way interleaved symbol histogram vs the naive single-array loop.
/// Skewed input (most symbols equal) is the SZ common case and the worst
/// case for a single histogram array's store-to-load dependency chain.
void bm_histogram(benchmark::State& state, bool interleaved) {
  lck::Rng rng(9);
  std::vector<std::uint32_t> symbols(static_cast<std::size_t>(state.range(0)));
  for (auto& s : symbols)
    s = rng.uniform() < 0.9
            ? 32768u
            : static_cast<std::uint32_t>(rng.uniform() * 65536.0);
  for (auto _ : state) {
    if (interleaved) {
      auto freq = lck::count_frequencies(symbols, 65536);
      benchmark::DoNotOptimize(freq);
    } else {
      std::vector<std::uint64_t> freq(65536, 0);
      for (const auto s : symbols) ++freq[s];
      benchmark::DoNotOptimize(freq);
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(symbols.size()));
}

void bm_histogram_4way(benchmark::State& state) { bm_histogram(state, true); }
void bm_histogram_naive(benchmark::State& state) { bm_histogram(state, false); }

/// Tiled byte shuffle (the truncation/deflate/lz4 pre-pass).
void bm_shuffle(benchmark::State& state) {
  const auto data = solver_like(static_cast<std::size_t>(state.range(0)));
  const std::span<const lck::byte_t> bytes{
      reinterpret_cast<const lck::byte_t*>(data.data()), data.size() * 8};
  for (auto _ : state) {
    auto out = lck::shuffle_bytes(bytes, sizeof(double));
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes.size()));
}

void bm_huffman_encode(benchmark::State& state) {
  lck::Rng rng(9);
  std::vector<std::uint64_t> freqs(65536, 0);
  std::vector<std::uint32_t> symbols(1 << 16);
  for (auto& s : symbols) {
    s = 32768 + static_cast<std::uint32_t>(rng.normal(0.0, 40.0));
    ++freqs[s];
  }
  const auto lengths = lck::huffman_code_lengths(freqs);
  const lck::HuffmanEncoder enc(lengths);
  for (auto _ : state) {
    lck::BitWriter bw;
    for (const auto s : symbols) enc.encode(bw, s);
    auto out = bw.finish();
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(symbols.size()));
}

}  // namespace

BENCHMARK_CAPTURE(bm_compress, sz, "sz")->Arg(1 << 16)->Arg(1 << 20);
BENCHMARK_CAPTURE(bm_compress, zfp, "zfp")->Arg(1 << 16)->Arg(1 << 20);
BENCHMARK_CAPTURE(bm_compress, deflate, "deflate")->Arg(1 << 16);
BENCHMARK_CAPTURE(bm_compress, shuffle_rle, "shuffle-rle")->Arg(1 << 20);
BENCHMARK_CAPTURE(bm_decompress, sz, "sz")->Arg(1 << 16)->Arg(1 << 20);
BENCHMARK_CAPTURE(bm_decompress, zfp, "zfp")->Arg(1 << 16)->Arg(1 << 20);
BENCHMARK_CAPTURE(bm_decompress, deflate, "deflate")->Arg(1 << 16);
BENCHMARK(bm_huffman_encode);
BENCHMARK(bm_histogram_4way)->Arg(1 << 22);
BENCHMARK(bm_histogram_naive)->Arg(1 << 22);
BENCHMARK(bm_shuffle)->Arg(1 << 16)->Arg(1 << 20);

// Parallel block-pipeline scaling: 8M-element vector (the paper's per-rank
// dynamic state is of this order) on 1/2/4/8 threads.
BENCHMARK_CAPTURE(bm_block_compress, sz, "sz")
    ->Args({8 << 20, 1})
    ->Args({8 << 20, 2})
    ->Args({8 << 20, 4})
    ->Args({8 << 20, 8})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();
BENCHMARK_CAPTURE(bm_block_compress, deflate, "deflate")
    ->Args({8 << 20, 1})
    ->Args({8 << 20, 4})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

BENCHMARK_MAIN();

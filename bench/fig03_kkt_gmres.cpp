/// Figure 3: productive execution time and convergence iterations for
/// GMRES + Jacobi preconditioner on the KKT240-class symmetric indefinite
/// system, versus process count (256 … 4096).
///
/// Substitution (DESIGN.md §2): KKT240 itself (28 M equations) is not
/// redistributable, so a synthetic saddle-point system with the same
/// structure is solved for real; per-iteration cost is measured locally and
/// extrapolated to the paper's scale with a documented compute+allreduce
/// model. The shape to verify: hour-plus solves even at 4,096 ranks, with
/// iteration count independent of rank count.

#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "common/timer.hpp"
#include "solvers/gmres.hpp"
#include "sparse/gen/kkt.hpp"

int main() {
  using namespace lck;
  bench::banner("Fig. 3 — GMRES on KKT240-class matrix vs process count",
                "Tao et al., HPDC'18, Figure 3");

  KktOptions opt;
  opt.grid_n = 14;
  const CsrMatrix k = kkt_matrix(opt);
  Vector b(k.rows(), 1.0);
  const JacobiPreconditioner pc(k);

  SolveOptions opts;
  opts.rtol = 1e-6;
  opts.max_iterations = 60000;
  GmresSolver solver(k, b, &pc, 30, opts);

  WallTimer timer;
  const auto st = solver.solve();
  const double wall = timer.seconds();
  const double local_per_iter = wall / static_cast<double>(solver.iteration());
  std::printf("Local synthetic KKT: n=%lld, nnz=%lld, %lld iterations, "
              "converged=%d, %.2fs wall\n",
              static_cast<long long>(k.rows()),
              static_cast<long long>(k.nnz()),
              static_cast<long long>(solver.iteration()), st.converged,
              wall);

  // Extrapolation model: per-iteration time = SpMV+orthogonalization work
  // over p cores + allreduce latency. Iteration count scales with the
  // condition number (~ grid dimension ratio for this family).
  const double target_n = 28.0e6;  // KKT240: ~28 M equations
  const double nnz_per_row =
      static_cast<double>(k.nnz()) / static_cast<double>(k.rows());
  const double per_row_per_core =
      local_per_iter / static_cast<double>(k.rows());
  const double grid_ratio = std::cbrt(target_n / static_cast<double>(k.rows()));
  const double target_iters =
      static_cast<double>(solver.iteration()) * grid_ratio;
  (void)nnz_per_row;

  std::printf("\n%-10s %-16s %-18s\n", "procs", "exec time (s)",
              "iterations");
  for (const int procs : {256, 512, 1024, 2048, 4096}) {
    const double compute =
        per_row_per_core * target_n / static_cast<double>(procs);
    const double comm = 5e-4 * std::log2(static_cast<double>(procs));
    const double t_iter = compute + comm;
    std::printf("%-10d %-16.0f %-18.0f\n", procs, t_iter * target_iters,
                target_iters);
  }
  std::printf(
      "\nPaper: >1 hour at 4,096 processes, decreasing with scale; "
      "iterations (right axis, ~constant) do not depend on rank count.\n");
  return 0;
}

/// Beyond the paper: a multi-tenant checkpoint fleet. N concurrent jobs —
/// a mix of Poisson and KKT problems across the three schemes — share one
/// CheckpointService: a single content-addressed L3 with per-job
/// namespaces, global admission control and a fair shared promotion pool.
///
///   build/bench/fig_fleet [--json <path>]
///
/// For N in {1, 4, 16, 64}: job throughput (jobs/s), aggregate L3 logical
/// vs physical bytes, cross-job dedup hit rate, p99 shared-tier write
/// latency under contention, and admission waits. Solo per-flavor baselines
/// anchor the headline claim: the fleet's physical bytes grow with the
/// number of *distinct* problems, not the number of jobs.
///
/// Exit code enforces the claim: at N = 16 the shared tier must hold less
/// than 0.5x the sum of the 16 jobs' solo physical footprints, and every
/// job in every fleet must converge.

#include <atomic>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "common/timer.hpp"
#include "core/experiment.hpp"
#include "core/resilient_runner.hpp"
#include "obs/metrics.hpp"
#include "sparse/gen/kkt.hpp"
#include "svc/checkpoint_service.hpp"

namespace {

using namespace lck;

/// One tenant archetype: a problem, a solver and a checkpoint scheme.
/// Jobs of the same flavor run bit-identical simulations, so their delta
/// chunks collide in the shared tier — the fleet's dedup opportunity.
struct Flavor {
  std::string name;
  CkptScheme scheme = CkptScheme::kLossy;
  LocalProblem problem;
};

std::vector<Flavor> make_flavors() {
  std::vector<Flavor> flavors;
  flavors.push_back({"poisson-cg-lossy", CkptScheme::kLossy,
                     make_local_problem("cg", 8, 1e-8, 200000, false)});
  flavors.push_back({"poisson-bicgstab-lossless", CkptScheme::kLossless,
                     make_local_problem("bicgstab", 8, 1e-8, 200000, false)});
  flavors.push_back({"poisson-minres-trad", CkptScheme::kTraditional,
                     make_local_problem("minres", 8, 1e-8, 200000, false)});
  // Saddle-point stand-in for the constrained problems in the fleet mix.
  Flavor kkt{"kkt-gmres-lossy", CkptScheme::kLossy, {}};
  kkt.problem.a = kkt_matrix({.grid_n = 6});
  const Vector xt = smooth_solution(kkt.problem.a.rows());
  kkt.problem.b.assign(xt.size(), 0.0);
  kkt.problem.a.multiply(xt, kkt.problem.b);
  kkt.problem.spec.method = "gmres";
  kkt.problem.spec.options.rtol = 1e-6;
  kkt.problem.spec.options.max_iterations = 200000;
  flavors.push_back(std::move(kkt));
  return flavors;
}

/// Short failure-rich virtual run (same shape as the tiered test config):
/// MTTI well below the run length so every job recovers several times.
ResilienceConfig fleet_config(const Flavor& flavor,
                              svc::JobHandle& job) {
  ResilienceConfig cfg;
  cfg.scheme = flavor.scheme;
  cfg.ckpt_mode = CkptMode::kTiered;
  cfg.policy.interval_seconds = 20.0;
  cfg.failure.mtti_seconds = 60.0;
  cfg.failure.seed = 7;
  cfg.iteration_seconds = 5.0;
  cfg.dynamic_scale = 1.0;
  cfg.cluster.ranks = 64;
  cfg.cluster.pfs_per_rank_overhead = 0.001;
  cfg.static_bytes = 1e6;
  cfg.tiered.l2_promote_every = 1;
  cfg.tiered.l3_promote_every = 2;
  // Chunked delta streams are the unit of cross-job dedup; raw blobs would
  // be stored verbatim per namespace.
  cfg.delta.max_delta_chain = 4;
  cfg.delta.chunk_elems = 256;
  cfg.store_factory = job.store_factory();
  return cfg;
}

svc::ServiceConfig fleet_service_config() {
  svc::ServiceConfig cfg;
  cfg.max_jobs = 128;  // above the largest fleet, so open_job never blocks
  return cfg;
}

/// Merge every per-job `svc.l3_write_seconds{job=...}` series into one
/// histogram so the fleet-wide p99 reflects all shared-tier writes.
obs::HistogramSnapshot merged_l3_write_hist(const obs::MetricsSnapshot& snap) {
  obs::HistogramSnapshot merged;
  std::map<double, std::uint64_t> buckets;
  bool first = true;
  for (const auto& [name, h] : snap.histograms) {
    if (name.rfind("svc.l3_write_seconds", 0) != 0) continue;
    merged.count += h.count;
    merged.sum += h.sum;
    if (first || h.min < merged.min) merged.min = h.min;
    if (first || h.max > merged.max) merged.max = h.max;
    first = false;
    for (const auto& [bound, count] : h.buckets) buckets[bound] += count;
  }
  merged.buckets.assign(buckets.begin(), buckets.end());
  return merged;
}

struct FleetResult {
  int jobs = 0;
  double wall_seconds = 0.0;
  bool all_converged = true;
  std::size_t logical_bytes = 0;
  std::size_t physical_bytes = 0;
  std::uint64_t dedup_hits = 0;
  std::uint64_t chunks = 0;
  double p99_l3_write_seconds = 0.0;
  double admission_waits = 0.0;
};

FleetResult run_fleet(const std::vector<Flavor>& flavors, int jobs) {
  svc::CheckpointService service(fleet_service_config());
  std::vector<std::thread> threads;
  std::atomic<bool> converged{true};
  const WallTimer timer;
  for (int j = 0; j < jobs; ++j)
    threads.emplace_back([&, j] {
      const Flavor& flavor =
          flavors[static_cast<std::size_t>(j) % flavors.size()];
      auto job = service.open_job({.name = flavor.name + "-" +
                                       std::to_string(j),
                                   .l3_promote_every = 2,
                                   .background_promotions = false});
      auto solver = flavor.problem.make_solver();
      const auto res =
          ResilientRunner(*solver, fleet_config(flavor, job)).run();
      if (!res.converged) converged.store(false);
    });
  for (auto& t : threads) t.join();

  FleetResult r;
  r.jobs = jobs;
  r.wall_seconds = timer.seconds();
  r.all_converged = converged.load();
  r.logical_bytes = service.l3().logical_bytes();
  r.physical_bytes = service.l3().physical_bytes();
  r.dedup_hits = service.l3().dedup_hits();
  const auto snap = service.metrics().snapshot();
  r.chunks = static_cast<std::uint64_t>(service.l3().chunk_count()) +
             r.dedup_hits;
  const obs::HistogramSnapshot hist = merged_l3_write_hist(snap);
  r.p99_l3_write_seconds = hist.count > 0 ? hist.quantile(0.99) : 0.0;
  r.admission_waits = snap.counter("svc.admission_waits");
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lck;
  using namespace lck::bench;

  JsonSink json;
  CliParser cli(argc, argv, "[--json <path>]");
  while (cli.more()) {
    if (cli.match("--json"))
      json = JsonSink(cli.value());
    else
      cli.die_unknown();
  }

  banner("Multi-tenant checkpoint fleet: shared dedup L3 vs job count",
         "Beyond Tao et al., HPDC'18 (multi-tenant checkpoint service)");

  const std::vector<Flavor> flavors = make_flavors();

  // ----- solo baselines: one job per flavor, each in its own service --------
  std::printf("Solo baselines (one job, fresh service)\n");
  std::printf("%-28s %-10s %-14s %-14s\n", "flavor", "converged",
              "logical B", "physical B");
  std::vector<std::size_t> solo_physical;
  bool solos_converged = true;
  for (std::size_t f = 0; f < flavors.size(); ++f) {
    svc::CheckpointService service(fleet_service_config());
    bool conv = false;
    {
      auto job = service.open_job({.name = flavors[f].name,
                                   .l3_promote_every = 2,
                                   .background_promotions = false});
      auto solver = flavors[f].problem.make_solver();
      conv = ResilientRunner(*solver, fleet_config(flavors[f], job))
                 .run()
                 .converged;
    }
    solos_converged = solos_converged && conv;
    solo_physical.push_back(service.l3().physical_bytes());
    std::printf("%-28s %-10s %-14zu %-14zu\n", flavors[f].name.c_str(),
                conv ? "yes" : "NO", service.l3().logical_bytes(),
                service.l3().physical_bytes());
  }

  // ----- fleets --------------------------------------------------------------
  std::printf("\nFleets (N concurrent jobs, one shared service)\n");
  std::printf("%-6s %-9s %-10s %-13s %-13s %-9s %-12s %-8s\n", "N",
              "jobs/s", "converged", "logical B", "physical B", "hit rate",
              "p99 L3 wr s", "adm wait");
  std::vector<std::vector<double>> fleet_rows;
  FleetResult fleet16;
  bool fleets_converged = true;
  for (const int n : {1, 4, 16, 64}) {
    const FleetResult r = run_fleet(flavors, n);
    if (n == 16) fleet16 = r;
    fleets_converged = fleets_converged && r.all_converged;
    const double hit_rate =
        r.chunks > 0 ? static_cast<double>(r.dedup_hits) /
                           static_cast<double>(r.chunks)
                     : 0.0;
    std::printf("%-6d %-9.2f %-10s %-13zu %-13zu %-9.3f %-12.6f %-8.0f\n",
                r.jobs, static_cast<double>(r.jobs) / r.wall_seconds,
                r.all_converged ? "all" : "SOME NOT", r.logical_bytes,
                r.physical_bytes, hit_rate, r.p99_l3_write_seconds,
                r.admission_waits);
    fleet_rows.push_back({static_cast<double>(r.jobs),
                          static_cast<double>(r.jobs) / r.wall_seconds,
                          r.all_converged ? 1.0 : 0.0,
                          static_cast<double>(r.logical_bytes),
                          static_cast<double>(r.physical_bytes), hit_rate,
                          r.p99_l3_write_seconds, r.admission_waits});
  }

  // ----- the sublinear-bytes claim ------------------------------------------
  double solo_sum_16 = 0.0;
  for (int j = 0; j < 16; ++j)
    solo_sum_16 += static_cast<double>(
        solo_physical[static_cast<std::size_t>(j) % solo_physical.size()]);
  const double ratio =
      static_cast<double>(fleet16.physical_bytes) / solo_sum_16;
  const bool sublinear = ratio < 0.5;
  const bool all_converged = solos_converged && fleets_converged;
  std::printf(
      "\nAt N = 16: shared-tier physical %zu B vs %.0f B if each job kept "
      "its solo footprint — ratio %.3f %s (claim: < 0.5)\n",
      fleet16.physical_bytes, solo_sum_16, ratio,
      sublinear ? "(holds)" : "(VIOLATED)");
  std::printf("%s\n", all_converged
                          ? "All jobs converged in every fleet."
                          : "CONVERGENCE FAILURES — see rows above.");
  std::printf(
      "\nThe shared content-addressed tier stores each distinct problem's "
      "chunks once: growing the fleet re-references resident chunks instead "
      "of duplicating them, so aggregate physical bytes track the number of "
      "distinct workloads while logical bytes grow with job count.\n");

  json.table("fleet",
             {"jobs", "jobs_per_sec", "all_converged", "logical_bytes",
              "physical_bytes", "dedup_hit_rate", "p99_l3_write_seconds",
              "admission_waits"},
             fleet_rows);
  json.scalar("solo_physical_sum_16", solo_sum_16);
  json.scalar("fleet16_physical_bytes",
              static_cast<double>(fleet16.physical_bytes));
  json.scalar("sublinear_ratio", ratio);
  json.scalar("sublinear_holds", sublinear ? 1.0 : 0.0);
  json.scalar("all_converged", all_converged ? 1.0 : 0.0);
  json.write();
  return sublinear && all_converged ? 0 : 1;
}

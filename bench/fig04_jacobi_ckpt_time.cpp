/// Figure 4: average time of one checkpoint and one recovery for the Jacobi
/// method under traditional / lossless / lossy checkpointing, 256…2048
/// processes on the modeled Bebop PFS.

#include "fig_ckpt_time.hpp"

int main(int argc, char** argv) {
  return lck::bench::run_ckpt_time_figure(
      "jacobi", 16, "4",
      "Paper shape: all three grow ~linearly with ranks; lossless gets a "
      "real win on Jacobi's smooth vectors (~6x), lossy stays lowest "
      "(~20-40s at 2,048 ranks vs ~100s traditional); recovery slightly "
      "exceeds checkpointing because static state is reconstructed.",
      argc, argv);
}

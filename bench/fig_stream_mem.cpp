/// Peak-memory gate for the streaming checkpoint path (the PR-6 bugfix):
/// the legacy serializer materialized the whole checkpoint stream in RAM
/// before the store saw a byte, so checkpoint+recover peaked at ~2x the
/// protected state. The framed streaming path must stay within a small
/// constant of 1x.
///
///   build/bench/fig_stream_mem [--mode streaming|legacy] [--state-mb <n>]
///                              [--dir <path>] [--json <path>]
///
/// One mode per process — peak RSS (getrusage ru_maxrss) is a process-wide
/// high-water mark, so the two paths cannot be measured in one run. Exit
/// code enforces the claim for the chosen mode: streaming must keep
/// peak RSS < 1.3x state, legacy must exceed 1.5x (demonstrating the bug
/// the gate protects against); a legacy run that stops exceeding it means
/// the comparison baseline changed and the gate needs re-tuning.

#include <sys/resource.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "bench_common.hpp"
#include "ckpt/checkpoint_manager.hpp"

namespace {

double peak_rss_bytes() {
  struct rusage ru {};
  getrusage(RUSAGE_SELF, &ru);
  return static_cast<double>(ru.ru_maxrss) * 1024.0;  // Linux: KiB
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lck;
  using namespace lck::bench;

  std::string mode = "streaming";
  long state_mb = 256;
  std::string dir;
  JsonSink json;
  CliParser cli(argc, argv,
                "[--mode streaming|legacy] [--state-mb <n>] [--dir <path>] "
                "[--json <path>]");
  while (cli.more()) {
    if (cli.match("--mode"))
      mode = cli.value();
    else if (cli.match("--state-mb"))
      state_mb = cli.number(8);
    else if (cli.match("--dir"))
      dir = cli.value();
    else if (cli.match("--json"))
      json = JsonSink(cli.value());
    else
      cli.die_unknown();
  }
  if (mode != "streaming" && mode != "legacy")
    cli.die("--mode expects streaming or legacy, got \"" + mode + "\"");
  if (dir.empty())
    dir = (std::filesystem::temp_directory_path() /
           ("lckpt_stream_mem_" + std::to_string(::getpid())))
              .string();

  banner("Streaming checkpoint peak memory — " + mode + " serializer",
         "PR 6 bugfix: bounded-memory framed checkpoint path");

  const std::size_t state_bytes = static_cast<std::size_t>(state_mb) << 20;
  const std::size_t elems = state_bytes / sizeof(double);
  Vector x(elems);
  // Touch every page with non-trivial content so the state is resident and
  // the raw-fallback path stays honest (smooth data still frames fine).
  for (std::size_t i = 0; i < elems; ++i)
    x[i] = static_cast<double>(i % 8191) * 1e-4;

  const double rss_before = peak_rss_bytes();
  std::filesystem::remove_all(dir);
  NoneCompressor none;  // traditional scheme: the worst case for peak memory
  {
    CheckpointManager mgr(std::make_unique<DiskStore>(dir), &none);
    StreamingConfig cfg;
    cfg.enabled = mode == "streaming";
    mgr.set_streaming(cfg);
    mgr.protect(0, "x", &x);
    mgr.checkpoint();
    for (auto& v : x) v = 0.0;
    mgr.recover();
  }
  std::filesystem::remove_all(dir);

  const double rss_peak = peak_rss_bytes();
  const double ratio = rss_peak / static_cast<double>(state_bytes);
  std::printf("state: %ld MiB, peak RSS before ckpt: %.1f MiB, after "
              "ckpt+recover: %.1f MiB\n",
              state_mb, rss_before / 1048576.0, rss_peak / 1048576.0);
  std::printf("peak RSS / state size: %.3f\n", ratio);

  json.text("mode", mode);
  json.scalar("state_mb", static_cast<double>(state_mb));
  json.scalar("peak_rss_mb", rss_peak / 1048576.0);
  json.scalar("rss_ratio", ratio);

  bool ok;
  if (mode == "streaming") {
    ok = ratio < 1.3;
    std::printf("gate: streaming peak RSS must stay < 1.3x state: %s\n",
                ok ? "PASS" : "FAIL");
  } else {
    ok = ratio > 1.5;
    std::printf("gate: legacy peak RSS must exceed 1.5x state (the bug this "
                "bench guards against): %s\n",
                ok ? "PASS" : "FAIL");
  }
  json.scalar("gate_ok", ok ? 1.0 : 0.0);
  json.write();
  return ok ? 0 : 1;
}

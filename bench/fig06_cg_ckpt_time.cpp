/// Figure 6: average time of one checkpoint and one recovery for CG under
/// traditional / lossless / lossy checkpointing, 256…2048 processes.
///
/// CG is where lossy checkpointing helps the most: the traditional and
/// lossless schemes must save two vectors (x and p, Algorithm 1 line 4),
/// while the restarted-CG lossy scheme saves only x (paper §5.3).

#include "fig_ckpt_time.hpp"

int main(int argc, char** argv) {
  return lck::bench::run_ckpt_time_figure(
      "cg", 20, "6",
      "Paper shape: traditional/lossless carry 2 vectors (x and p) so their "
      "curves sit ~2x above the GMRES ones; lossy checkpoints only x, "
      "giving the largest relative reduction of the three methods.",
      argc, argv);
}

/// Figure 7: expected fault-tolerance overhead (Eq. 8) of fault-tolerant
/// Jacobi / GMRES / CG with the three checkpointing schemes, versus process
/// count, for MTTI = 1 hour and MTTI = 3 hours.
///
/// N′ per the paper's §4.4 analysis: Jacobi ≈ 6 (Theorem 2 with
/// R ≈ 0.99998), GMRES = 0 (Theorem 3 adaptive bound), CG = 594 (25% of
/// its iterations, the paper's empirical value).

#include <cstdio>

#include "bench_common.hpp"
#include "sim/perf_model.hpp"

int main() {
  using namespace lck;
  bench::banner("Fig. 7 — expected FT overhead, 9 combos x 2 failure rates",
                "Tao et al., HPDC'18, Figure 7");

  struct MethodSetup {
    PaperMethod pm;
    index_t grid;
  };
  const MethodSetup methods[] = {
      {paper_jacobi(), 16}, {paper_gmres(), 16}, {paper_cg(), 20}};

  // Measure the two compression ratios per method once (rank slices).
  bench::MethodRatios ratios[3];
  for (int m = 0; m < 3; ++m)
    ratios[m] = bench::cluster_ratios(methods[m].pm, methods[m].grid);

  for (const double mtti_hours : {1.0, 3.0}) {
    const double lambda = 1.0 / (mtti_hours * 3600.0);
    std::printf("\n(%s) MTTI = %.0f hour(s) — expected overhead (%%)\n",
                mtti_hours == 1.0 ? "a" : "b", mtti_hours);
    std::printf("%-8s", "procs");
    for (const auto& s : methods)
      std::printf(" %8s-T %8s-Ll %8s-Lo", s.pm.method.c_str(),
                  s.pm.method.c_str(), s.pm.method.c_str());
    std::printf("\n");

    for (const int procs : bench::kTable3Procs) {
      std::printf("%-8d", procs);
      for (int m = 0; m < 3; ++m) {
        const auto& s = methods[m];
        const double t_it = s.pm.iteration_seconds();
        const auto trad =
            bench::scheme_times(s.pm, procs, CkptScheme::kTraditional, 1.0);
        const auto lless = bench::scheme_times(s.pm, procs,
                                               CkptScheme::kLossless,
                                               ratios[m].lossless);
        const auto lossy = bench::scheme_times(s.pm, procs,
                                               CkptScheme::kLossy,
                                               ratios[m].lossy);
        std::printf(" %9.1f %10.1f %10.1f",
                    100.0 * expected_overhead_ratio(trad.ckpt_seconds, lambda),
                    100.0 * expected_overhead_ratio(lless.ckpt_seconds, lambda),
                    100.0 * expected_overhead_ratio_lossy(
                                lossy.ckpt_seconds, lambda,
                                s.pm.expected_nprime, t_it));
      }
      std::printf("\n");
    }
  }

  std::printf(
      "\nPaper shape: lossy is lowest for Jacobi and GMRES at every scale; "
      "for CG (N' = 594) lossy crosses below the others beyond ~1536 procs "
      "at MTTI = 1 h (~768 at 3 h); lossy curves grow the slowest with "
      "scale.\n");
  return 0;
}

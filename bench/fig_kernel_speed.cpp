/// Kernel-speed driver (PR 7): measures per-kernel CPU time of the fused
/// BLAS-1 kernels against their unfused primitive sequences, blocked SpMV
/// against the plain row loop, and the vectorized compression hot loops
/// against naive references, then emits BENCH_kernels.json.
///
/// CPU time (CLOCK_PROCESS_CPUTIME_ID) sums across threads, so the
/// fused-vs-unfused comparison measures *work*, not wall clock, and divides
/// correctly even in a 1-core container. Real-time speedups from the
/// parallel paths need a multicore host — see README "Kernel performance".
///
/// Exit status is non-zero when any fused kernel does > 1.05x the CPU work
/// of its unfused pair (the CI gate).

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "compress/compressor.hpp"
#include "compress/huffman.hpp"
#include "compress/lossless/byte_codecs.hpp"
#include "sparse/gen/poisson3d.hpp"
#include "sparse/vector_ops.hpp"

namespace {

using namespace lck;

volatile double g_sink = 0.0;

/// Keep a computed value live so the compiler cannot elide the timed work.
void sink(double v) { g_sink = v; }

// CPU timing comes from common/timer.hpp (lck::time_cpu / lck::CpuTimer) —
// the shared best-of-trials process-CPU-time primitive.

Vector random_vector(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Vector v(n);
  for (auto& x : v) x = rng.uniform() * 2.0 - 1.0;
  return v;
}

struct Pair {
  std::string name;
  double cpu_fused = 0.0;
  double cpu_unfused = 0.0;
  bool gated = false;  ///< Participates in all_ratios_ok / the exit status.
  [[nodiscard]] double ratio() const {
    return cpu_unfused > 0.0 ? cpu_fused / cpu_unfused : 0.0;
  }
};

}  // namespace

int main(int argc, char** argv) {
  bench::CliParser cli(argc, argv, "[--json <path>] [--n <elems>] [--reps <k>]");
  bench::JsonSink json;
  std::size_t n = 1u << 20;
  int reps = 8;
  while (cli.more()) {
    if (cli.match("--json")) json = bench::JsonSink(cli.value());
    else if (cli.match("--n")) n = static_cast<std::size_t>(cli.number(1));
    else if (cli.match("--reps")) reps = static_cast<int>(cli.number(1));
    else cli.die_unknown();
  }
  const int trials = 2;

  bench::banner("Kernel raw speed: fused vs unfused CPU time",
                "kernel-performance layer (ROADMAP: cache-blocked SpMV, "
                "fused solver kernels, vectorized compression loops)");

  std::vector<Pair> pairs;

  // --- Fused BLAS-1 kernels vs primitive sequences (gated) -----------------
  {
    const Vector p = random_vector(n, 1), q = random_vector(n, 2);
    Vector x = random_vector(n, 3), r = random_vector(n, 4);
    // rho chosen so alpha = rho/pq stays ~1e-12 and x/r do not drift over
    // the timed repetitions.
    const double rho = 1e-12;
    Pair pr{"cg_update", 0, 0, true};
    pr.cpu_fused = time_cpu(
        [&] {
          const DotAxpyResult fu = dot_axpy(p, q, rho, x, r);
          sink(fu.rr);
        },
        reps, trials);
    pr.cpu_unfused = time_cpu(
        [&] {
          const double pq = dot(p, q);
          const double alpha = rho / pq;
          axpy(alpha, p, x);
          axpy(-alpha, q, r);
          sink(norm2(r));
        },
        reps, trials);
    pairs.push_back(pr);
  }
  {
    const Vector x = random_vector(n, 5);
    Vector y = random_vector(n, 6);
    Pair pr{"axpy_norm2", 0, 0, true};
    pr.cpu_fused = time_cpu([&] { sink(axpy_norm2(1e-12, x, y)); },
                            reps, trials);
    pr.cpu_unfused = time_cpu(
        [&] {
          axpy(1e-12, x, y);
          sink(norm2(y));
        },
        reps, trials);
    pairs.push_back(pr);
  }
  {
    const Vector x = random_vector(n, 7), y = random_vector(n, 8);
    Vector w(n, 0.0);
    Pair pr{"waxpy_dot", 0, 0, true};
    pr.cpu_fused = time_cpu(
        [&] { sink(waxpy_dot(x, -0.5, y, w, w)); }, reps, trials);
    pr.cpu_unfused = time_cpu(
        [&] {
          waxpy(x, -0.5, y, w);
          sink(dot(w, w));
        },
        reps, trials);
    pairs.push_back(pr);
  }
  {
    const Vector x = random_vector(n, 9), y = random_vector(n, 10),
                 z = random_vector(n, 11);
    Pair pr{"dot2", 0, 0, true};
    pr.cpu_fused = time_cpu(
        [&] {
          const auto [a, b] = dot2(x, y, z);
          sink(a + b);
        },
        reps, trials);
    pr.cpu_unfused = time_cpu(
        [&] { sink(dot(x, y) + dot(x, z)); }, reps, trials);
    pairs.push_back(pr);
  }
  {
    const Vector p = random_vector(n, 12), q = random_vector(n, 13);
    Vector z = random_vector(n, 14);
    Pair pr{"axpy2", 0, 0, true};
    pr.cpu_fused =
        time_cpu([&] { axpy2(1e-12, p, -1e-12, q, z); }, reps, trials);
    pr.cpu_unfused = time_cpu(
        [&] {
          axpy(1e-12, p, z);
          axpy(-1e-12, q, z);
        },
        reps, trials);
    pairs.push_back(pr);
  }

  // --- Blocked SpMV vs plain row loop (informational ratios) ---------------
  {
    const CsrMatrix a = poisson3d_spd(40);  // 64k rows, ~440k nnz
    const Vector x = random_vector(static_cast<std::size_t>(a.cols()), 15);
    const Vector b = random_vector(static_cast<std::size_t>(a.rows()), 16);
    Vector y(static_cast<std::size_t>(a.rows()), 0.0);
    Pair spmv{"spmv_blocked", 0, 0, false};
    spmv.cpu_fused = time_cpu([&] { a.multiply(x, y); }, reps, trials);
    spmv.cpu_unfused = time_cpu([&] { a.multiply_rowwise(x, y); }, reps, trials);
    pairs.push_back(spmv);

    Pair res{"residual_blocked", 0, 0, false};
    res.cpu_fused = time_cpu([&] { a.residual(b, x, y); }, reps, trials);
    res.cpu_unfused =
        time_cpu([&] { a.residual_rowwise(b, x, y); }, reps, trials);
    pairs.push_back(res);
  }

  // --- Compression hot loops vs naive references (informational) ----------
  {
    const Vector field = random_vector(n, 17);
    const auto* bytes = reinterpret_cast<const byte_t*>(field.data());
    const std::size_t nbytes = field.size() * sizeof(double);
    Pair pr{"shuffle_tiled", 0, 0, false};
    pr.cpu_fused = time_cpu(
        [&] {
          const auto s = shuffle_bytes({bytes, nbytes}, sizeof(double));
          sink(static_cast<double>(s[0]));
        },
        reps, trials);
    pr.cpu_unfused = time_cpu(
        [&] {
          // Pre-tiling reference: full element sweep per byte lane.
          std::vector<byte_t> out(nbytes);
          const std::size_t elems = nbytes / sizeof(double);
          for (std::size_t k = 0; k < sizeof(double); ++k)
            for (std::size_t e = 0; e < elems; ++e)
              out[k * elems + e] = bytes[e * sizeof(double) + k];
          sink(static_cast<double>(out[0]));
        },
        reps, trials);
    pairs.push_back(pr);
  }
  {
    // Skewed quantization-code stream (the SZ common case).
    Rng rng(18);
    std::vector<std::uint32_t> codes(4 * n);
    for (auto& c : codes)
      c = rng.uniform() < 0.9 ? 32768u
                              : static_cast<std::uint32_t>(rng.uniform() * 65536.0);
    Pair pr{"histogram_4way", 0, 0, false};
    pr.cpu_fused = time_cpu(
        [&] {
          const auto f = count_frequencies(codes, 65536);
          sink(static_cast<double>(f[32768]));
        },
        reps, trials);
    pr.cpu_unfused = time_cpu(
        [&] {
          std::vector<std::uint64_t> f(65536, 0);
          for (const auto c : codes) ++f[c];
          sink(static_cast<double>(f[32768]));
        },
        reps, trials);
    pairs.push_back(pr);
  }

  // --- End-to-end codec throughput (informational) -------------------------
  double sz_mb_s = 0.0, trunc_mb_s = 0.0;
  {
    Rng rng(19);
    Vector field(1u << 19);
    for (std::size_t i = 0; i < field.size(); ++i)
      field[i] = std::sin(0.0005 * static_cast<double>(i)) + 2.0 +
                 1e-6 * rng.uniform();
    const double mb =
        static_cast<double>(field.size() * sizeof(double)) / (1024.0 * 1024.0);
    const auto sz = make_compressor("sz", ErrorBound::absolute(1e-6));
    const double t_sz =
        time_cpu([&] { sink(static_cast<double>(
                           sz->compress(field).size())); },
                 std::max(1, reps / 2), trials);
    sz_mb_s = mb * std::max(1, reps / 2) / t_sz;
    const auto trunc = make_compressor("trunc", ErrorBound::absolute(1e-6));
    const double t_trunc =
        time_cpu([&] { sink(static_cast<double>(
                           trunc->compress(field).size())); },
                 std::max(1, reps / 2), trials);
    trunc_mb_s = mb * std::max(1, reps / 2) / t_trunc;
  }

  // --- Report --------------------------------------------------------------
  std::printf("%-18s %12s %12s %8s %6s\n", "kernel", "fused s", "unfused s",
              "ratio", "gated");
  bool all_ok = true;
  std::vector<std::vector<double>> rows;
  for (const Pair& p : pairs) {
    const double ratio = p.ratio();
    if (p.gated && ratio > 1.05) all_ok = false;
    std::printf("%-18s %12.4f %12.4f %8.3f %6s\n", p.name.c_str(), p.cpu_fused,
                p.cpu_unfused, ratio, p.gated ? "yes" : "no");
    rows.push_back({p.cpu_fused, p.cpu_unfused, ratio, p.gated ? 1.0 : 0.0});
    json.scalar("cpu_" + p.name + "_fused", p.cpu_fused);
    json.scalar("cpu_" + p.name + "_unfused", p.cpu_unfused);
    json.scalar("ratio_" + p.name, ratio);
  }
  std::printf("sz compress: %.1f MB/s CPU, trunc compress: %.1f MB/s CPU\n",
              sz_mb_s, trunc_mb_s);
  std::printf("all gated ratios <= 1.05: %s\n", all_ok ? "yes" : "NO");

  json.scalar("elems", static_cast<double>(n));
  json.scalar("reps", reps);
  json.scalar("sz_compress_mb_s", sz_mb_s);
  json.scalar("trunc_compress_mb_s", trunc_mb_s);
  json.scalar("all_ratios_ok", all_ok ? 1.0 : 0.0);
  json.table("kernels", {"cpu_fused_s", "cpu_unfused_s", "ratio", "gated"},
             rows);
  json.write();
  return all_ok ? 0 : 1;
}

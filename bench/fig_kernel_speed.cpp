/// Kernel-speed driver (PR 7 + PR 10): measures per-kernel CPU time of the
/// fused BLAS-1 kernels against their unfused primitive sequences, blocked
/// SpMV against the plain row loop, the vectorized compression hot loops
/// against naive references, and (PR 10) the runtime-dispatched SIMD
/// backends against the true-scalar reference backend, then emits
/// BENCH_kernels.json.
///
/// CPU time (CLOCK_PROCESS_CPUTIME_ID) sums across threads, so the
/// fused-vs-unfused comparison measures *work*, not wall clock, and divides
/// correctly even in a 1-core container. Real-time speedups from the
/// parallel paths need a multicore host — see README "Kernel performance".
///
/// Exit status is non-zero when
///  - any fused kernel does > 1.05x the CPU work of its unfused pair,
///  - the fused SpMV+norm pass does > 0.9x the separate multiply+
///    subtract+norm sequence,
///  - the active SIMD SpMV does > 0.9x the scalar-backend SpMV on a
///    wide-row matrix (gate skipped with notice when the CPU lacks AVX2), or
///  - solver trajectories / compression streams are not bit-identical
///    between LCK_FORCE_ISA=scalar and the native ISA (the determinism
///    contract, asserted in-process).

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/crc32.hpp"
#include "common/rng.hpp"
#include "common/simd.hpp"
#include "common/timer.hpp"
#include "compress/compressor.hpp"
#include "compress/huffman.hpp"
#include "compress/lossless/byte_codecs.hpp"
#include "solvers/cg.hpp"
#include "sparse/gen/poisson3d.hpp"
#include "sparse/gen/random_spd.hpp"
#include "sparse/vector_ops.hpp"

namespace {

using namespace lck;

volatile double g_sink = 0.0;

/// Keep a computed value live so the compiler cannot elide the timed work.
void sink(double v) { g_sink = v; }

// CPU timing comes from common/timer.hpp (lck::time_cpu / lck::CpuTimer) —
// the shared best-of-trials process-CPU-time primitive.

Vector random_vector(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Vector v(n);
  for (auto& x : v) x = rng.uniform() * 2.0 - 1.0;
  return v;
}

struct Pair {
  std::string name;
  double cpu_fused = 0.0;
  double cpu_unfused = 0.0;
  bool gated = false;   ///< Participates in all_ratios_ok / the exit status.
  double limit = 1.05;  ///< Gate threshold on ratio() when gated.
  [[nodiscard]] double ratio() const {
    return cpu_unfused > 0.0 ? cpu_fused / cpu_unfused : 0.0;
  }
};

/// Interleaved best-of-trials measurement of two loops: alternating the two
/// sides inside each trial makes host-load drift (the common failure mode of
/// A-then-B timing on shared machines) hit both sides equally, and the min
/// over trials discards the disturbed runs. Returns {cpu_a, cpu_b}.
template <typename A, typename B>
std::pair<double, double> time_interleaved(A&& fa, B&& fb, int reps,
                                           int trials) {
  double ta = 1e100, tb = 1e100;
  for (int t = 0; t < trials; ++t) {
    {
      const CpuTimer tm;
      for (int i = 0; i < reps; ++i) fa();
      const double v = tm.seconds();
      if (v < ta) ta = v;
    }
    {
      const CpuTimer tm;
      for (int i = 0; i < reps; ++i) fb();
      const double v = tm.seconds();
      if (v < tb) tb = v;
    }
  }
  return {ta, tb};
}

std::uint32_t vec_crc(const Vector& v) {
  return crc32({reinterpret_cast<const byte_t*>(v.data()),
                v.size() * sizeof(double)});
}

}  // namespace

int main(int argc, char** argv) {
  bench::CliParser cli(argc, argv, "[--json <path>] [--n <elems>] [--reps <k>]");
  bench::JsonSink json;
  std::size_t n = 1u << 20;
  int reps = 8;
  while (cli.more()) {
    if (cli.match("--json")) json = bench::JsonSink(cli.value());
    else if (cli.match("--n")) n = static_cast<std::size_t>(cli.number(1));
    else if (cli.match("--reps")) reps = static_cast<int>(cli.number(1));
    else cli.die_unknown();
  }
  const int trials = 2;

  bench::banner("Kernel raw speed: fused vs unfused CPU time",
                "kernel-performance layer (ROADMAP: cache-blocked SpMV, "
                "fused solver kernels, vectorized compression loops)");

  std::vector<Pair> pairs;

  // --- Fused BLAS-1 kernels vs primitive sequences (gated) -----------------
  {
    const Vector p = random_vector(n, 1), q = random_vector(n, 2);
    Vector x = random_vector(n, 3), r = random_vector(n, 4);
    // rho chosen so alpha = rho/pq stays ~1e-12 and x/r do not drift over
    // the timed repetitions.
    const double rho = 1e-12;
    Pair pr{"cg_update", 0, 0, true};
    pr.cpu_fused = time_cpu(
        [&] {
          const DotAxpyResult fu = dot_axpy(p, q, rho, x, r);
          sink(fu.rr);
        },
        reps, trials);
    pr.cpu_unfused = time_cpu(
        [&] {
          const double pq = dot(p, q);
          const double alpha = rho / pq;
          axpy(alpha, p, x);
          axpy(-alpha, q, r);
          sink(norm2(r));
        },
        reps, trials);
    pairs.push_back(pr);
  }
  {
    const Vector x = random_vector(n, 5);
    Vector y = random_vector(n, 6);
    Pair pr{"axpy_norm2", 0, 0, true};
    pr.cpu_fused = time_cpu([&] { sink(axpy_norm2(1e-12, x, y)); },
                            reps, trials);
    pr.cpu_unfused = time_cpu(
        [&] {
          axpy(1e-12, x, y);
          sink(norm2(y));
        },
        reps, trials);
    pairs.push_back(pr);
  }
  {
    const Vector x = random_vector(n, 7), y = random_vector(n, 8);
    Vector w(n, 0.0);
    Pair pr{"waxpy_dot", 0, 0, true};
    pr.cpu_fused = time_cpu(
        [&] { sink(waxpy_dot(x, -0.5, y, w, w)); }, reps, trials);
    pr.cpu_unfused = time_cpu(
        [&] {
          waxpy(x, -0.5, y, w);
          sink(dot(w, w));
        },
        reps, trials);
    pairs.push_back(pr);
  }
  {
    const Vector x = random_vector(n, 9), y = random_vector(n, 10),
                 z = random_vector(n, 11);
    Pair pr{"dot2", 0, 0, true};
    pr.cpu_fused = time_cpu(
        [&] {
          const auto [a, b] = dot2(x, y, z);
          sink(a + b);
        },
        reps, trials);
    pr.cpu_unfused = time_cpu(
        [&] { sink(dot(x, y) + dot(x, z)); }, reps, trials);
    pairs.push_back(pr);
  }
  {
    const Vector p = random_vector(n, 12), q = random_vector(n, 13);
    Vector z = random_vector(n, 14);
    Pair pr{"axpy2", 0, 0, true};
    pr.cpu_fused =
        time_cpu([&] { axpy2(1e-12, p, -1e-12, q, z); }, reps, trials);
    pr.cpu_unfused = time_cpu(
        [&] {
          axpy(1e-12, p, z);
          axpy(-1e-12, q, z);
        },
        reps, trials);
    pairs.push_back(pr);
  }

  // --- Blocked SpMV vs plain row loop (informational ratios) ---------------
  {
    const CsrMatrix a = poisson3d_spd(40);  // 64k rows, ~440k nnz
    const Vector x = random_vector(static_cast<std::size_t>(a.cols()), 15);
    const Vector b = random_vector(static_cast<std::size_t>(a.rows()), 16);
    Vector y(static_cast<std::size_t>(a.rows()), 0.0);
    Pair spmv{"spmv_blocked", 0, 0, false};
    spmv.cpu_fused = time_cpu([&] { a.multiply(x, y); }, reps, trials);
    spmv.cpu_unfused = time_cpu([&] { a.multiply_rowwise(x, y); }, reps, trials);
    pairs.push_back(spmv);

    Pair res{"residual_blocked", 0, 0, false};
    res.cpu_fused = time_cpu([&] { a.residual(b, x, y); }, reps, trials);
    res.cpu_unfused =
        time_cpu([&] { a.residual_rowwise(b, x, y); }, reps, trials);
    pairs.push_back(res);
  }

  // --- Compression hot loops vs naive references (informational) ----------
  {
    const Vector field = random_vector(n, 17);
    const auto* bytes = reinterpret_cast<const byte_t*>(field.data());
    const std::size_t nbytes = field.size() * sizeof(double);
    Pair pr{"shuffle_tiled", 0, 0, false};
    pr.cpu_fused = time_cpu(
        [&] {
          const auto s = shuffle_bytes({bytes, nbytes}, sizeof(double));
          sink(static_cast<double>(s[0]));
        },
        reps, trials);
    pr.cpu_unfused = time_cpu(
        [&] {
          // Pre-tiling reference: full element sweep per byte lane.
          std::vector<byte_t> out(nbytes);
          const std::size_t elems = nbytes / sizeof(double);
          for (std::size_t k = 0; k < sizeof(double); ++k)
            for (std::size_t e = 0; e < elems; ++e)
              out[k * elems + e] = bytes[e * sizeof(double) + k];
          sink(static_cast<double>(out[0]));
        },
        reps, trials);
    pairs.push_back(pr);
  }
  {
    // Skewed quantization-code stream (the SZ common case).
    Rng rng(18);
    std::vector<std::uint32_t> codes(4 * n);
    for (auto& c : codes)
      c = rng.uniform() < 0.9 ? 32768u
                              : static_cast<std::uint32_t>(rng.uniform() * 65536.0);
    Pair pr{"histogram_4way", 0, 0, false};
    pr.cpu_fused = time_cpu(
        [&] {
          const auto f = count_frequencies(codes, 65536);
          sink(static_cast<double>(f[32768]));
        },
        reps, trials);
    pr.cpu_unfused = time_cpu(
        [&] {
          std::vector<std::uint64_t> f(65536, 0);
          for (const auto c : codes) ++f[c];
          sink(static_cast<double>(f[32768]));
        },
        reps, trials);
    pairs.push_back(pr);
  }

  // --- Fused SpMV + residual-norm pass vs separate sweeps (gated) ----------
  // The unfused baseline is the textbook separate form: y = A·x, r = b − y,
  // ||r||₂ — three full-vector sweeps after the SpMV. The fused pass writes
  // r and accumulates its squared norm in the same sweep (bit-identical by
  // the lane-canonical contract). A 7-point stencil keeps the fusable sweeps
  // a visible fraction of the total work — the regime the solvers'
  // per-iteration convergence checks live in — and its structured column
  // accesses keep the SpMV side cache-friendly, so the measurement isolates
  // the fusion win instead of gather-miss noise. Both sides run the active
  // ISA.
  // A perf gate must fail on a missing speedup, not on a noisy host: each
  // 0.9-gated pair keeps the min CPU time per side across up to three
  // interleaved best-of-trials attempts, stopping early once the gate holds
  // (shared-runner CI hosts have multi-second slow phases that a single
  // attempt can land entirely inside).
  const auto measure_gated = [](Pair& pr, auto&& fa, auto&& fb, int seg_reps) {
    for (int attempt = 0; attempt < 3; ++attempt) {
      const auto [ta, tb] = time_interleaved(fa, fb, seg_reps, 13);
      if (attempt == 0 || ta < pr.cpu_fused) pr.cpu_fused = ta;
      if (attempt == 0 || tb < pr.cpu_unfused) pr.cpu_unfused = tb;
      if (pr.ratio() <= pr.limit) break;
    }
  };
  {
    const CsrMatrix a = poisson3d_spd(32);  // 32k rows, ~230k nnz
    const Vector x = random_vector(static_cast<std::size_t>(a.cols()), 20);
    const Vector b = random_vector(static_cast<std::size_t>(a.rows()), 21);
    Vector y(static_cast<std::size_t>(a.rows()), 0.0);
    Vector r(static_cast<std::size_t>(a.rows()), 0.0);
    Pair pr{"spmv_fused_norm", 0, 0, true, 0.9};
    measure_gated(
        pr, [&] { sink(a.residual_norm2(b, x, r)); },
        [&] {
          a.multiply(x, y);
          waxpy(b, -1.0, y, r);
          sink(norm2(r));
        },
        16 * reps);
    pairs.push_back(pr);
  }

  // --- Dispatched SIMD backends vs the true-scalar reference (PR 10) -------
  // Per-kernel rows: CPU time under LCK_FORCE_ISA=scalar semantics (the
  // reference backend, compiled with auto-vectorization disabled so
  // "scalar" really is scalar machine code) against the active ISA. The
  // SpMV row is gated at 0.9 on AVX2-capable hosts; the rest are
  // informational (the 8-lane reduction contract deliberately caps how much
  // a wider ISA can win on pure reductions over streams out of cache).
  const simd::Isa active = simd::active_isa();
  const bool simd_gate_applicable =
      simd::supported_isa() >= simd::Isa::kAvx2 && active >= simd::Isa::kAvx2;
  struct IsaRow {
    std::string name;
    double cpu_scalar = 0.0;
    double cpu_native = 0.0;
    [[nodiscard]] double speedup() const {
      return cpu_native > 0.0 ? cpu_scalar / cpu_native : 0.0;
    }
  };
  std::vector<IsaRow> isa_rows;
  {
    // Wide rows (>= kSimdRowMinNnz nonzeros) exercise the gather kernels;
    // a small dimension keeps x L1-resident so the comparison measures the
    // kernels, not DRAM.
    RandomSpdOptions gopt;
    gopt.n = 4000;
    gopt.off_per_row = 32;
    gopt.seed = 24;
    const CsrMatrix a = random_dominant(gopt);
    const Vector x = random_vector(static_cast<std::size_t>(a.cols()), 25);
    Vector y(static_cast<std::size_t>(a.rows()), 0.0);
    IsaRow row{"spmv_wide_rows"};
    Pair pr{"spmv_simd", 0, 0, simd_gate_applicable, 0.9};
    measure_gated(
        pr,
        [&] {
          simd::force_isa(active);
          a.multiply(x, y);
          sink(y[0]);
        },
        [&] {
          simd::force_isa(simd::Isa::kScalar);
          a.multiply(x, y);
          sink(y[0]);
        },
        16 * reps);
    simd::reset_isa();
    row.cpu_native = pr.cpu_fused;
    row.cpu_scalar = pr.cpu_unfused;
    isa_rows.push_back(row);
    pairs.push_back(pr);
    if (!simd_gate_applicable)
      std::printf("notice: CPU lacks AVX2 — spmv_simd 0.9x gate skipped "
                  "(reported informationally)\n");
  }
  {
    const std::size_t nd = 1u << 16;  // L2-resident streams
    const Vector x = random_vector(nd, 26), y = random_vector(nd, 27);
    IsaRow row{"dot"};
    std::tie(row.cpu_native, row.cpu_scalar) = time_interleaved(
        [&] {
          simd::force_isa(active);
          sink(dot(x, y));
        },
        [&] {
          simd::force_isa(simd::Isa::kScalar);
          sink(dot(x, y));
        },
        160 * reps, 9);
    simd::reset_isa();
    isa_rows.push_back(row);
  }
  {
    const Vector field = random_vector(1u << 18, 28);
    const auto* bytes = reinterpret_cast<const byte_t*>(field.data());
    const std::size_t nbytes = field.size() * sizeof(double);
    IsaRow row{"shuffle"};
    std::tie(row.cpu_native, row.cpu_scalar) = time_interleaved(
        [&] {
          simd::force_isa(active);
          const auto s = shuffle_bytes({bytes, nbytes}, sizeof(double));
          sink(static_cast<double>(s[0]));
        },
        [&] {
          simd::force_isa(simd::Isa::kScalar);
          const auto s = shuffle_bytes({bytes, nbytes}, sizeof(double));
          sink(static_cast<double>(s[0]));
        },
        8 * reps, 9);
    simd::reset_isa();
    isa_rows.push_back(row);
  }
  {
    Rng rng(29);
    std::vector<std::uint32_t> codes(1u << 20);
    for (auto& c : codes)
      c = rng.uniform() < 0.9
              ? 32768u
              : static_cast<std::uint32_t>(rng.uniform() * 65536.0);
    IsaRow row{"histogram"};
    std::tie(row.cpu_native, row.cpu_scalar) = time_interleaved(
        [&] {
          simd::force_isa(active);
          const auto f = count_frequencies(codes, 65536);
          sink(static_cast<double>(f[32768]));
        },
        [&] {
          simd::force_isa(simd::Isa::kScalar);
          const auto f = count_frequencies(codes, 65536);
          sink(static_cast<double>(f[32768]));
        },
        2 * reps, 9);
    simd::reset_isa();
    isa_rows.push_back(row);
  }

  // --- Cross-ISA determinism: the contract the speed numbers rest on -------
  // A CG trajectory on a wide-row matrix (gather kernels + every fused
  // reduction) and two compression streams must be bit-identical between
  // the scalar backend and the native ISA; a silent divergence here would
  // make every "same result, less time" claim above meaningless.
  bool bitident = true;
  std::uint32_t solution_crc = 0;
  {
    RandomSpdOptions gopt;
    gopt.n = 2000;
    gopt.off_per_row = 24;
    gopt.seed = 30;
    const CsrMatrix a = random_dominant(gopt);
    const Vector b = random_vector(static_cast<std::size_t>(a.rows()), 31);
    const Vector field = [&] {
      Rng rng(32);
      Vector f(1u << 16);
      for (std::size_t i = 0; i < f.size(); ++i)
        f[i] = std::sin(0.0008 * static_cast<double>(i)) + 2.0 +
               1e-5 * rng.uniform();
      return f;
    }();
    std::vector<double> final_norms;
    std::vector<std::uint32_t> x_crcs, sz_crcs, lz4_crcs;
    for (const simd::Isa isa : {simd::Isa::kScalar, active}) {
      simd::force_isa(isa);
      SolveOptions sopts;
      sopts.rtol = 1e-30;
      CgSolver cg(a, b, nullptr, sopts);
      for (int it = 0; it < 15; ++it) cg.step();
      final_norms.push_back(cg.residual_norm());
      x_crcs.push_back(vec_crc(cg.solution()));
      const auto sz = make_compressor("sz", ErrorBound::absolute(1e-6));
      sz_crcs.push_back(crc32(sz->compress(field)));
      const auto lz = make_compressor("shuffle-lz4", ErrorBound{});
      lz4_crcs.push_back(crc32(lz->compress(field)));
    }
    simd::reset_isa();
    bitident = final_norms[0] == final_norms[1] && x_crcs[0] == x_crcs[1] &&
               sz_crcs[0] == sz_crcs[1] && lz4_crcs[0] == lz4_crcs[1];
    solution_crc = x_crcs[0];
    std::printf("cross-isa bit-identity (scalar vs %s): %s\n",
                simd::isa_name(active), bitident ? "ok" : "FAILED");
  }

  // --- End-to-end codec throughput (informational) -------------------------
  double sz_mb_s = 0.0, trunc_mb_s = 0.0;
  {
    Rng rng(19);
    Vector field(1u << 19);
    for (std::size_t i = 0; i < field.size(); ++i)
      field[i] = std::sin(0.0005 * static_cast<double>(i)) + 2.0 +
                 1e-6 * rng.uniform();
    const double mb =
        static_cast<double>(field.size() * sizeof(double)) / (1024.0 * 1024.0);
    const auto sz = make_compressor("sz", ErrorBound::absolute(1e-6));
    const double t_sz =
        time_cpu([&] { sink(static_cast<double>(
                           sz->compress(field).size())); },
                 std::max(1, reps / 2), trials);
    sz_mb_s = mb * std::max(1, reps / 2) / t_sz;
    const auto trunc = make_compressor("trunc", ErrorBound::absolute(1e-6));
    const double t_trunc =
        time_cpu([&] { sink(static_cast<double>(
                           trunc->compress(field).size())); },
                 std::max(1, reps / 2), trials);
    trunc_mb_s = mb * std::max(1, reps / 2) / t_trunc;
  }

  // --- Report --------------------------------------------------------------
  std::printf("%-18s %12s %12s %8s %6s %6s\n", "kernel", "fused s",
              "unfused s", "ratio", "gated", "limit");
  bool all_ok = true;
  std::vector<std::vector<double>> rows;
  for (const Pair& p : pairs) {
    const double ratio = p.ratio();
    if (p.gated && ratio > p.limit) all_ok = false;
    std::printf("%-18s %12.4f %12.4f %8.3f %6s %6.2f\n", p.name.c_str(),
                p.cpu_fused, p.cpu_unfused, ratio, p.gated ? "yes" : "no",
                p.limit);
    rows.push_back({p.cpu_fused, p.cpu_unfused, ratio, p.gated ? 1.0 : 0.0});
    json.scalar("cpu_" + p.name + "_fused", p.cpu_fused);
    json.scalar("cpu_" + p.name + "_unfused", p.cpu_unfused);
    json.scalar("ratio_" + p.name, ratio);
  }
  std::printf("%-18s %12s %12s %8s   (active isa: %s)\n", "simd kernel",
              "scalar s", "native s", "speedup", simd::isa_name(active));
  std::vector<std::vector<double>> isa_table;
  for (const IsaRow& r : isa_rows) {
    std::printf("%-18s %12.4f %12.4f %8.2fx\n", r.name.c_str(), r.cpu_scalar,
                r.cpu_native, r.speedup());
    isa_table.push_back({r.cpu_scalar, r.cpu_native, r.speedup()});
    json.scalar("speedup_" + r.name + "_simd", r.speedup());
  }
  std::printf("sz compress: %.1f MB/s CPU, trunc compress: %.1f MB/s CPU\n",
              sz_mb_s, trunc_mb_s);
  std::printf("all gated ratios within limits: %s\n", all_ok ? "yes" : "NO");

  json.scalar("elems", static_cast<double>(n));
  json.scalar("reps", reps);
  json.scalar("sz_compress_mb_s", sz_mb_s);
  json.scalar("trunc_compress_mb_s", trunc_mb_s);
  json.scalar("all_ratios_ok", all_ok ? 1.0 : 0.0);
  json.text("simd_isa", simd::isa_name(active));
  json.scalar("simd_spmv_gate_applicable", simd_gate_applicable ? 1.0 : 0.0);
  json.scalar("cross_isa_bitident_ok", bitident ? 1.0 : 0.0);
  json.scalar("cross_isa_solution_crc", static_cast<double>(solution_crc));
  json.table("kernels", {"cpu_fused_s", "cpu_unfused_s", "ratio", "gated"},
             rows);
  json.table("simd_kernels", {"cpu_scalar_s", "cpu_native_s", "speedup"},
             isa_table);
  json.write();
  return all_ok && bitident ? 0 : 1;
}

/// Beyond the paper: chunked content-addressed delta checkpointing vs the
/// full-stream serializer, driven through the real CheckpointManager over
/// real solver trajectories.
///
///   build/bench/fig_delta_ckpt [--json <path>]
///
/// The checkpointed state is the application-style full dump the motivation
/// targets: the static matrix payload (A's value array, re-stored verbatim
/// by every full checkpoint) plus the method's dynamic vectors. Between
/// consecutive checkpoints the static payload never changes and most
/// late-convergence dynamic chunks barely do, so the delta encoder turns
/// them into 9-byte references.
///
/// (a) Stored bytes per checkpoint, full vs delta, per method (local
///     measurement scaled to the Table-3 per-rank sizes).
/// (b) Blocking (sync write) time per checkpoint across Table-3 ranks.
/// (c) The L3 dedup store's view of the same streams: physical vs logical
///     bytes once identical chunks across versions are stored once.
///
/// Exit code enforces the PR's claims: for every method the delta stream is
/// no larger than the full stream from the second checkpoint on, and the
/// traditional CG configuration stores >= 2x less with deltas at 2,048
/// ranks.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "ckpt/checkpoint_manager.hpp"
#include "ckpt/chunk/dedup_store.hpp"

namespace {

struct MethodDelta {
  std::string method;
  double mean_full_bytes = 0.0;    ///< Local bytes, checkpoints 2..N.
  double mean_delta_bytes = 0.0;   ///< Local bytes, checkpoints 2..N.
  double first_full_bytes = 0.0;   ///< Local bytes of checkpoint 1.
  double first_delta_bytes = 0.0;
  std::size_t chunks_deduped = 0;
  bool delta_le_full_after_2 = true;
  double dedup_physical = 0.0;     ///< L3 dedup store residency (local bytes).
  double dedup_logical = 0.0;
  double local_vector_bytes = 0.0;
};

/// Drive one method's solver, checkpointing the full application state
/// (static matrix payload + dynamic vectors) through two managers — legacy
/// full streams vs chunked deltas — at ~`checkpoints` evenly spaced points.
MethodDelta measure_method(const std::string& method, int checkpoints,
                           int max_chain) {
  using namespace lck;
  const bool stationary = method == "jacobi";
  const LocalProblem p =
      make_local_problem(method, stationary ? 14 : 16,
                         stationary ? 1e-4 : 1e-8, 200000,
                         /*precondition=*/false);

  auto probe = p.make_solver();
  probe->solve();
  const index_t total = probe->iteration();
  const index_t stride = std::max<index_t>(1, total / checkpoints);

  // The static payload: A's value array, exactly what an application-level
  // "dump everything" checkpoint re-stores each time.
  Vector static_payload(p.a.values().begin(), p.a.values().end());

  auto solver = p.make_solver();
  NoneCompressor none;  // traditional scheme: verbatim storage
  auto store_full = std::make_unique<MemoryStore>();
  CheckpointManager mgr_full(std::move(store_full), &none);
  // The "full" baseline is the traditional *verbatim* full-stream format the
  // paper's motivation measures. The framed transport (on by default) would
  // lz4-compress those streams and silently shrink the baseline, so pin the
  // legacy serializer here; the delta manager is unaffected (DKPT takes
  // precedence over streaming).
  StreamingConfig legacy_full;
  legacy_full.enabled = false;
  mgr_full.set_streaming(legacy_full);
  auto store_delta = std::make_unique<MemoryStore>();
  auto* store_delta_raw = store_delta.get();
  CheckpointManager mgr_delta(std::move(store_delta), &none);
  mgr_delta.set_delta(max_chain, /*chunk_elems=*/256);
  mgr_delta.set_retention(2 * max_chain + 2);

  const auto protect_all = [&](CheckpointManager& mgr) {
    mgr.protect(1000, "A", &static_payload);
    int id = 0;
    for (auto& var : solver->checkpoint_vectors())
      mgr.protect(id++, var.name, var.data);
  };
  protect_all(mgr_full);
  protect_all(mgr_delta);

  MethodDelta out;
  out.method = method;
  out.local_vector_bytes = p.vector_bytes();
  std::vector<int> delta_versions;
  int taken = 0;
  index_t done = 0;
  while (done < total && !solver->converged()) {
    solver->step();
    ++done;
    if (done % stride != 0) continue;
    const CheckpointRecord full = mgr_full.checkpoint();
    const CheckpointRecord delta = mgr_delta.checkpoint();
    delta_versions.push_back(delta.version);
    ++taken;
    if (taken == 1) {
      out.first_full_bytes = static_cast<double>(full.stored_bytes);
      out.first_delta_bytes = static_cast<double>(delta.stored_bytes);
    } else {
      out.mean_full_bytes += static_cast<double>(full.stored_bytes);
      out.mean_delta_bytes += static_cast<double>(delta.stored_bytes);
      if (delta.stored_bytes > full.stored_bytes)
        out.delta_le_full_after_2 = false;
    }
    out.chunks_deduped += delta.chunks_deduped;
  }
  if (taken > 1) {
    out.mean_full_bytes /= taken - 1;
    out.mean_delta_bytes /= taken - 1;
  }

  // (c) Feed the surviving delta streams to the L3 dedup store twice: the
  // second pass stands in for the next run re-checkpointing identical state
  // (the cross-run story of the on-disk chunk index). Every literal chunk
  // of the "second run" is already resident, so physical residency grows by
  // skeletons only.
  DedupChunkStore dedup;
  for (const int v : delta_versions)
    if (store_delta_raw->exists(v)) dedup.write(v, store_delta_raw->read(v));
  for (const int v : delta_versions)
    if (store_delta_raw->exists(v))
      dedup.write(100000 + v, store_delta_raw->read(v));
  out.dedup_physical = static_cast<double>(dedup.physical_bytes());
  out.dedup_logical = static_cast<double>(dedup.logical_bytes());
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lck;
  using namespace lck::bench;

  JsonSink json = JsonSink::from_args(argc, argv);
  banner("Delta checkpointing — stored bytes and blocking time, "
         "full vs chunked delta streams",
         "Beyond Tao et al., HPDC'18 (block-level delta + L3 dedup)");

  const int kCheckpoints = 12;
  const int kMaxChain = 16;
  std::printf("Traditional (verbatim) scheme; state = static matrix payload "
              "+ dynamic vectors;\n%d checkpoints per run, max_delta_chain "
              "= %d, chunk = 256 doubles\n\n",
              kCheckpoints, kMaxChain);

  bool all_le = true;
  double cg_reduction_2048 = 0.0;
  std::vector<std::vector<double>> stored_rows;
  std::vector<std::vector<double>> blocking_rows;
  std::printf("(a) Stored bytes per checkpoint (mean of ckpts 2..%d, "
              "scaled to the 2,048-rank Table-3 state)\n", kCheckpoints);
  std::printf("%-8s %-13s %-13s %-10s %-13s %-13s\n", "method", "full MB",
              "delta MB", "reduction", "ckpt1 delta", "dedup phys/log");
  std::vector<MethodDelta> results;
  for (const std::string method : {"cg", "gmres", "jacobi"}) {
    const MethodDelta r = measure_method(method, kCheckpoints, kMaxChain);
    results.push_back(r);
    all_le = all_le && r.delta_le_full_after_2;
    const double scale = table3_vector_bytes(2048) / r.local_vector_bytes;
    const double reduction =
        r.mean_delta_bytes > 0 ? r.mean_full_bytes / r.mean_delta_bytes : 0.0;
    if (method == "cg") cg_reduction_2048 = reduction;
    std::printf("%-8s %-13.1f %-13.1f %-10.2f %-13.1f %.2f\n",
                method.c_str(), r.mean_full_bytes * scale / 1e6,
                r.mean_delta_bytes * scale / 1e6, reduction,
                r.first_delta_bytes * scale / 1e6,
                r.dedup_physical / r.dedup_logical);
    stored_rows.push_back({r.mean_full_bytes * scale,
                           r.mean_delta_bytes * scale, reduction,
                           r.delta_le_full_after_2 ? 1.0 : 0.0,
                           static_cast<double>(r.chunks_deduped),
                           r.dedup_physical / r.dedup_logical});
    json.scalar("delta_reduction_" + method + "_2048", reduction);
    json.scalar("delta_le_full_" + method,
                r.delta_le_full_after_2 ? 1.0 : 0.0);
  }
  json.table("stored_bytes_2048",
             {"method", "full_bytes", "delta_bytes", "reduction",
              "delta_le_full", "chunks_deduped", "dedup_physical_fraction"},
             {{0.0, stored_rows[0][0], stored_rows[0][1], stored_rows[0][2],
               stored_rows[0][3], stored_rows[0][4], stored_rows[0][5]},
              {1.0, stored_rows[1][0], stored_rows[1][1], stored_rows[1][2],
               stored_rows[1][3], stored_rows[1][4], stored_rows[1][5]},
              {2.0, stored_rows[2][0], stored_rows[2][1], stored_rows[2][2],
               stored_rows[2][3], stored_rows[2][4], stored_rows[2][5]}});

  // ----- (b) blocking (sync write) time per checkpoint vs ranks -------------
  std::printf("\n(b) Blocking time per checkpoint (s), traditional sync "
              "write of the stored bytes\n");
  std::printf("%-8s %-11s %-11s %-11s %-11s %-11s %-11s\n", "procs",
              "cg full", "cg delta", "gmres full", "gmres delta",
              "jacobi full", "jacobi delta");
  for (const int procs : kTable3Procs) {
    const ClusterModel cl = ClusterModel{}.with_ranks(procs);
    std::vector<double> row{static_cast<double>(procs)};
    std::printf("%-8d", procs);
    for (const MethodDelta& r : results) {
      const double scale = table3_vector_bytes(procs) / r.local_vector_bytes;
      const double t_full = cl.write_seconds(r.mean_full_bytes * scale);
      const double t_delta = cl.write_seconds(r.mean_delta_bytes * scale);
      std::printf(" %-11.2f %-11.2f", t_full, t_delta);
      row.push_back(t_full);
      row.push_back(t_delta);
    }
    std::printf("\n");
    blocking_rows.push_back(row);
  }
  json.table("blocking_seconds",
             {"procs", "cg_full", "cg_delta", "gmres_full", "gmres_delta",
              "jacobi_full", "jacobi_delta"},
             blocking_rows);

  const bool cg_claim = cg_reduction_2048 >= 2.0;
  std::printf("\nClaims: delta <= full after checkpoint 1 for every method "
              "%s; CG mean stored-bytes reduction at 2,048 ranks = %.2fx "
              "(>= 2x %s)\n",
              all_le ? "(holds)" : "(VIOLATED)", cg_reduction_2048,
              cg_claim ? "holds" : "VIOLATED");
  std::printf(
      "\nThe static payload collapses to references in every delta, the L3 "
      "dedup store additionally stores the periodic full checkpoints' "
      "repeated chunks once, and the runner prices stage/drain from the "
      "delta bytes — so the adaptive policy re-paces as deltas shrink.\n");
  json.scalar("delta_all_le_full", all_le ? 1.0 : 0.0);
  json.scalar("cg_reduction_ge_2", cg_claim ? 1.0 : 0.0);
  json.write();
  return all_le && cg_claim ? 0 : 1;
}

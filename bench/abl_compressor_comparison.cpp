/// Ablation: compressor comparison on real solver vectors — justifies the
/// paper's choice of SZ for 1-D checkpoint data (§5.1: "SZ has a better
/// performance for 1D data sets" than ZFP/transform coders).
///
/// Compares SZ-like, ZFP-like (via the pointwise-relative adapter),
/// deflate-like, shuffle+deflate, shuffle+RLE and RLE on the CG solution
/// vector at mid-convergence and near-convergence: ratio, local
/// compress/decompress throughput, max pointwise relative error.

#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "common/timer.hpp"

namespace {

void evaluate(const char* stage, const lck::Vector& x) {
  using namespace lck;
  std::printf("\n--- %s (n = %zu) ---\n", stage, x.size());
  std::printf("%-18s %-9s %-14s %-14s %-14s\n", "compressor", "ratio",
              "comp MB/s", "decomp MB/s", "max rel err");
  for (const char* name :
       {"sz", "block+sz", "zfp", "trunc", "deflate", "shuffle-deflate",
        "shuffle-rle", "rle"}) {
    const auto comp = make_compressor(name, ErrorBound::pointwise_rel(1e-4));
    WallTimer tc;
    const auto stream = comp->compress(x);
    const double comp_s = tc.seconds();
    Vector out(x.size());
    WallTimer td;
    comp->decompress(stream, out);
    const double decomp_s = td.seconds();

    double max_rel = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i)
      if (x[i] != 0.0)
        max_rel = std::max(max_rel, std::fabs(x[i] - out[i]) / std::fabs(x[i]));

    const double mb = static_cast<double>(x.size()) * sizeof(double) / 1e6;
    std::printf("%-18s %-9.2f %-14.1f %-14.1f %-14.2e\n", name,
                static_cast<double>(x.size() * sizeof(double)) /
                    static_cast<double>(stream.size()),
                mb / comp_s, mb / decomp_s, max_rel);
  }
}

}  // namespace

int main() {
  using namespace lck;
  bench::banner("Ablation — compressor comparison on solver vectors",
                "Tao et al., HPDC'18 §5.1 (choice of SZ over ZFP/gzip)");

  const LocalProblem p = make_local_problem("cg", 24, 1e-9, 200000, false);
  auto probe = p.make_solver();
  probe->solve();
  const index_t total = probe->iteration();

  auto solver = p.make_solver();
  for (index_t i = 0; i < total / 2; ++i) solver->step();
  evaluate("CG iterate at 50% convergence", solver->solution());
  while (!solver->converged()) solver->step();
  evaluate("CG iterate at convergence", solver->solution());

  std::printf(
      "\nExpected: SZ-class prediction coding wins on ratio for 1-D solver "
      "vectors (paper's rationale for SZ); lossless ratios stay near 1-2x "
      "on Krylov data; all lossy errors respect the 1e-4 bound.\n");
  return 0;
}

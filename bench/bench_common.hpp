#pragma once
/// \file bench_common.hpp
/// \brief Shared helpers for the figure/table reproduction harnesses:
///        aligned table printing and solver-trajectory compression-ratio
///        measurement.

#include <array>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "compress/compressor.hpp"
#include "core/experiment.hpp"
#include "core/resilient_runner.hpp"
#include "sim/perf_model.hpp"
#include "solvers/solver.hpp"

namespace lck::bench {

/// Print a banner naming the experiment being reproduced.
inline void banner(const std::string& title, const std::string& paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("Reproduces: %s\n", paper_ref.c_str());
  std::printf("================================================================\n");
}

/// Strict command-line parsing shared by every bench/example main(). The
/// historical ad-hoc loops silently dropped malformed input — a trailing
/// `--json` with no path, a flag value that wasn't a number, a positional
/// hiding behind an option — so runs proceeded with defaults while
/// appearing to honour their arguments. These helpers terminate with exit
/// code 2 (the usage-error convention) instead.
///
/// Usage pattern:
///   CliParser cli(argc, argv, "[method] [--json <path>]");
///   while (cli.more()) {
///     if (cli.match("--json")) json = JsonSink(cli.value());
///     else if (cli.positional()) method = cli.take();
///     else cli.die_unknown();
///   }
class CliParser {
 public:
  CliParser(int argc, char** argv, std::string usage)
      : argc_(argc), argv_(argv), usage_(std::move(usage)) {}

  /// True while unconsumed arguments remain.
  [[nodiscard]] bool more() const { return i_ < argc_; }

  /// If the current token equals `name`, consume it and return true.
  bool match(const char* name) {
    if (!more() || std::string(argv_[i_]) != name) return false;
    last_flag_ = name;
    ++i_;
    return true;
  }

  /// Mandatory value of the flag just match()ed; dies if it is missing.
  std::string value() {
    if (!more()) die(std::string(last_flag_) + " expects a value");
    return argv_[i_++];
  }

  /// Strict integer value of the flag just match()ed: the *entire* token
  /// must be a base-10 integer >= `min` (no trailing junk, no overflow).
  long number(long min = 0) {
    const std::string text = value();
    char* end = nullptr;
    errno = 0;
    const long v = std::strtol(text.c_str(), &end, 10);
    if (end == text.c_str() || *end != '\0' || errno == ERANGE || v < min)
      die(std::string(last_flag_) + " expects an integer >= " +
          std::to_string(min) + ", got \"" + text + "\"");
    return v;
  }

  /// True if the current token exists and does not start with '-'.
  [[nodiscard]] bool positional() const {
    return more() && argv_[i_][0] != '-';
  }

  /// Consume and return the current token.
  std::string take() { return argv_[i_++]; }

  [[noreturn]] void die(const std::string& msg) const {
    std::fprintf(stderr, "%s\nusage: %s %s\n", msg.c_str(), argv_[0],
                 usage_.c_str());
    std::exit(2);
  }

  /// Reject the current (unrecognised) token.
  [[noreturn]] void die_unknown() const {
    die("unknown or incomplete option \"" + std::string(argv_[i_]) + "\"");
  }

 private:
  int argc_;
  char** argv_;
  std::string usage_;
  const char* last_flag_ = "";
  int i_ = 1;
};

/// Machine-readable benchmark output. Every figure/table binary accepts
/// `--json <path>`; when given, the run's key metrics are written as one
/// JSON object (scalars plus named tables) so the perf trajectory can be
/// tracked across commits, e.g.
///   build/bench/fig04_jacobi_ckpt_time --json BENCH_fig04.json
/// Without the flag the sink is disabled and every call is a no-op.
class JsonSink {
 public:
  JsonSink() = default;

  /// Sink writing to `path` (used by mains that parse their own flags via
  /// CliParser).
  explicit JsonSink(std::string path) : path_(std::move(path)) {}

  /// Strict parse of an argument list whose only supported option is
  /// `--json <path>`. Anything else — including a trailing `--json` with no
  /// path, which the old parser silently dropped — is a usage error.
  static JsonSink from_args(int argc, char** argv) {
    CliParser cli(argc, argv, "[--json <path>]");
    JsonSink sink;
    while (cli.more()) {
      if (cli.match("--json"))
        sink.path_ = cli.value();
      else
        cli.die_unknown();
    }
    return sink;
  }

  [[nodiscard]] bool enabled() const { return !path_.empty(); }

  void scalar(const std::string& key, double value) {
    if (!enabled()) return;
    entries_.emplace_back(key, number(value));
  }

  void text(const std::string& key, const std::string& value) {
    if (!enabled()) return;
    // Appends, not operator+ chains: GCC 12's -Wrestrict misfires on the
    // temporary-concatenation pattern (same workaround as ByteWriter).
    std::string v;
    v.reserve(value.size() + 2);
    v += '"';
    v += escape(value);
    v += '"';
    entries_.emplace_back(key, std::move(v));
  }

  /// A table becomes {"columns": [...], "rows": [[...], ...]}.
  void table(const std::string& key, const std::vector<std::string>& columns,
             const std::vector<std::vector<double>>& rows) {
    if (!enabled()) return;
    std::string v = "{\"columns\": [";
    for (std::size_t c = 0; c < columns.size(); ++c)
      v += (c ? ", \"" : "\"") + escape(columns[c]) + "\"";
    v += "], \"rows\": [";
    for (std::size_t r = 0; r < rows.size(); ++r) {
      v += r ? ", [" : "[";
      for (std::size_t c = 0; c < rows[r].size(); ++c)
        v += (c ? ", " : "") + number(rows[r][c]);
      v += "]";
    }
    v += "]}";
    entries_.emplace_back(key, std::move(v));
  }

  /// Write the collected object; no-op while disabled. Throws on I/O error
  /// so CI catches an unwritable path instead of silently dropping data.
  void write() const {
    if (!enabled()) return;
    std::ofstream f(path_, std::ios::trunc);
    if (!f) throw config_error("json sink: cannot open output path");
    f << "{\n";
    for (std::size_t i = 0; i < entries_.size(); ++i)
      f << "  \"" << escape(entries_[i].first) << "\": "
        << entries_[i].second << (i + 1 < entries_.size() ? ",\n" : "\n");
    f << "}\n";
    if (!f) throw config_error("json sink: short write");
  }

 private:
  static std::string number(double v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.10g", v);
    std::string s{buf};
    // JSON has no inf/nan literals; encode them as null.
    if (s.find("inf") != std::string::npos ||
        s.find("nan") != std::string::npos)
      return "null";
    return s;
  }
  static std::string escape(const std::string& s) {
    std::string out;
    for (const char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    return out;
  }

  std::string path_;
  std::vector<std::pair<std::string, std::string>> entries_;
};

/// Mean compression ratio of a method's solution vector sampled at several
/// points along its convergence trajectory (the paper's checkpoints cover
/// the whole run, §5.3).
inline double trajectory_ratio(const LocalProblem& problem,
                               const Compressor& comp,
                               const std::vector<double>& fractions) {
  auto solver = problem.make_solver();
  auto probe = problem.make_solver();
  probe->solve();
  const index_t total = probe->iteration();

  double ratio_sum = 0.0;
  std::size_t count = 0;
  index_t done = 0;
  for (const double f : fractions) {
    const index_t target = static_cast<index_t>(f * static_cast<double>(total));
    while (done < target && !solver->converged()) {
      solver->step();
      ++done;
    }
    ratio_sum += compression_ratio(comp, solver->solution());
    ++count;
  }
  return count > 0 ? ratio_sum / static_cast<double>(count) : 1.0;
}

/// Theorem 3 fixes eb = O(||r||/||b||); the constant is free. The paper's
/// cluster runs are insensitive to it (a 2x residual bump is ~0.03% of
/// 5,875 iterations), but the laptop-scale trajectories here are ~100
/// iterations, so a conservative θ keeps the relative jump equally
/// negligible — same physics, adjusted granularity (see EXPERIMENTS.md).
inline constexpr double kAdaptiveTheta = 0.25;

/// Default sampling points along the trajectory.
inline std::vector<double> default_fractions() { return {0.25, 0.5, 0.75, 0.95}; }

/// Modeled per-checkpoint and per-recovery times for one method, scheme and
/// rank count (drives Figs. 4–7 and the Young intervals of Figs. 8/10).
struct SchemeTimes {
  double ckpt_seconds = 0.0;      ///< Sync mode: solver blocked for all of it.
  double recovery_seconds = 0.0;
  /// Async (staged) pipeline: the solver blocks only for the node-local
  /// staging copy; ckpt_seconds becomes the overlapped drain duration.
  double stage_seconds = 0.0;
};

/// `ratio` is the measured compression ratio of the scheme's compressor on
/// this method's solution vector (1.0 for traditional).
inline SchemeTimes scheme_times(const PaperMethod& m, int procs,
                                CkptScheme scheme, double ratio) {
  const ClusterModel cl = ClusterModel{}.with_ranks(procs);
  const double vec = table3_vector_bytes(procs);
  // Lossy checkpointing saves only x (restarted methods, §4.2); the
  // traditional/lossless schemes save every dynamic vector (CG: x and p).
  const double raw_dyn =
      vec * (scheme == CkptScheme::kLossy ? 1.0 : m.trad_vectors);
  const double stored = raw_dyn / ratio;

  SchemeTimes t;
  t.ckpt_seconds = cl.write_seconds(stored);
  t.recovery_seconds = cl.read_seconds(stored + static_state_bytes(vec));
  if (scheme == CkptScheme::kLossy) {
    t.ckpt_seconds += cl.compress_seconds(raw_dyn);
    t.recovery_seconds += cl.decompress_seconds(raw_dyn);
  } else if (scheme == CkptScheme::kLossless) {
    t.ckpt_seconds += cl.lossless_compress_seconds(raw_dyn);
    t.recovery_seconds += cl.lossless_decompress_seconds(raw_dyn);
  }
  // The async pipeline stages the raw state into the node-local double
  // buffer; compression + PFS write (== t.ckpt_seconds) drain overlapped.
  t.stage_seconds = cl.stage_seconds(raw_dyn);
  return t;
}

/// Measured trajectory compression ratios per scheme for one method's local
/// stand-in problem (traditional ⇒ 1).
inline double scheme_ratio(const LocalProblem& problem, CkptScheme scheme,
                           ErrorBound eb = ErrorBound::pointwise_rel(1e-4)) {
  if (scheme == CkptScheme::kTraditional) return 1.0;
  const auto comp = scheme == CkptScheme::kLossless
                        ? make_compressor("deflate")
                        : make_compressor("sz", eb);
  return trajectory_ratio(problem, *comp, default_fractions());
}

/// Synthesize one rank's slice of the cluster-scale iterate x(t).
///
/// The paper's per-rank checkpoint data is ~4.8M contiguous samples of the
/// Eq. 15 solution field plus the iteration's error field. The base field
/// is generated exactly (smooth_solution at the Table 3 resolution); the
/// error field's *magnitude* is taken from a real local run at the same
/// trajectory fraction, and its *structure* follows the method's known
/// behaviour: stationary methods damp high frequencies first (smooth error
/// ⇒ highly compressible, the paper's gzip 6.4x on Jacobi), while Krylov
/// iterates carry broadband error (⇒ gzip ~1.1x on GMRES/CG, Table 3).
inline Vector cluster_rank_slice(const std::string& method, int procs,
                                 double rel_error, std::size_t length,
                                 std::uint64_t seed) {
  const double n_global = static_cast<double>(table3_grid_n(procs));
  const double total = n_global * n_global * n_global;
  const double two_pi = 6.283185307179586476925286766559;
  Rng rng(seed);
  const bool smooth_error = method == "jacobi" || method == "gauss-seidel" ||
                            method == "sor" || method == "ssor";
  // A handful of error modes for stationary methods (wavelengths spanning
  // the slice), sampled once.
  struct Mode {
    double freq, phase, amp;
  };
  std::vector<Mode> modes;
  for (int k = 0; k < 5; ++k)
    modes.push_back({(1.0 + 7.0 * rng.uniform()) * two_pi /
                         static_cast<double>(length),
                     two_pi * rng.uniform(), 1.0 / (k + 1.0)});

  Vector slice(length);
  for (std::size_t i = 0; i < length; ++i) {
    const double base =
        std::sin(two_pi * static_cast<double>(i) / total) + 1.5;
    double err;
    if (smooth_error) {
      err = 0.0;
      for (const auto& m : modes)
        err += m.amp * std::sin(m.freq * static_cast<double>(i) + m.phase);
      err *= rel_error / 2.0;
    } else {
      err = rel_error * (2.0 * rng.uniform() - 1.0);
    }
    slice[i] = base * (1.0 + err);
  }
  return slice;
}

/// Cluster-scale compression ratios for a method: lossless (deflate) and
/// lossy (SZ at the method's error bound; Theorem-3 adaptive for GMRES),
/// averaged over trajectory fractions. Error magnitudes are measured on
/// the real local solver.
struct MethodRatios {
  double lossless = 1.0;
  double lossy = 1.0;
};

inline MethodRatios cluster_ratios(const PaperMethod& pm, index_t grid,
                                   int procs = 2048,
                                   std::size_t slice_len = 1u << 19) {
  const LocalProblem p =
      make_local_problem(pm.method, grid, pm.rtol, 200000,
                         /*precondition=*/pm.method == "gmres");
  // Local truth for error measurement.
  const Vector x_true = smooth_solution(p.a.rows());
  const double x_norm = norm_inf(x_true);

  auto probe = p.make_solver();
  probe->solve();
  const index_t total = probe->iteration();

  auto solver = p.make_solver();
  index_t done = 0;
  const auto lossless_comp = make_compressor("deflate");

  MethodRatios sums{0.0, 0.0};
  const std::vector<double> fractions{0.5, 0.95};
  for (std::size_t f = 0; f < fractions.size(); ++f) {
    const index_t target =
        static_cast<index_t>(fractions[f] * static_cast<double>(total));
    while (done < target && !solver->converged()) {
      solver->step();
      ++done;
    }
    const double rel_error =
        max_abs_diff(solver->solution(), x_true) / x_norm;
    const double eb_value =
        pm.adaptive_eb
            ? theorem3_gmres_error_bound(solver->residual_norm(),
                                         solver->rhs_norm(), kAdaptiveTheta)
            : pm.eb_value;
    const auto lossy_comp =
        make_compressor("sz", ErrorBound::pointwise_rel(eb_value));

    const Vector slice =
        cluster_rank_slice(pm.method, procs, rel_error, slice_len, 17 + f);
    sums.lossless += compression_ratio(*lossless_comp, slice);
    sums.lossy += compression_ratio(*lossy_comp, slice);
  }
  const double inv = 1.0 / static_cast<double>(fractions.size());
  return {sums.lossless * inv, sums.lossy * inv};
}

inline const char* scheme_label(CkptScheme s) {
  switch (s) {
    case CkptScheme::kTraditional: return "Traditional";
    case CkptScheme::kLossless: return "Lossless";
    case CkptScheme::kLossy: return "Lossy";
  }
  return "?";
}

inline constexpr std::array<CkptScheme, 3> kAllSchemes{
    CkptScheme::kTraditional, CkptScheme::kLossless, CkptScheme::kLossy};

inline constexpr std::array<int, 8> kTable3Procs{256,  512,  768,  1024,
                                                 1280, 1536, 1792, 2048};

}  // namespace lck::bench

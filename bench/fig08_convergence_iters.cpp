/// Figure 8: number of convergence iterations with lossy checkpointing
/// versus the failure-free baseline, for Jacobi, GMRES and CG at
/// 256…2048 processes.
///
/// The solver mathematics run for real; the virtual clock is calibrated so
/// each local run spans the paper's wall-clock budget (per-iteration cost =
/// paper baseline seconds / local iterations), making the expected number
/// of injected failures per run match the paper's MTTI = 1 h setting.
/// Expected shape: Jacobi +0 iterations, GMRES ±0 (sometimes slightly
/// fewer — Theorem 3), CG ≈ +25%.

#include <cstdio>

#include "bench_common.hpp"
#include "common/stats.hpp"
#include "sim/perf_model.hpp"

int main() {
  using namespace lck;
  bench::banner("Fig. 8 — convergence iterations: lossy vs failure-free",
                "Tao et al., HPDC'18, Figure 8");

  // local_rtol: Jacobi/CG use the paper's tolerances; GMRES runs deeper
  // (1e-10) so its ~150-iteration local trajectory spans several GMRES(30)
  // cycles, keeping the restart granularity proportionally as small as in
  // the paper's 5,875-iteration runs (see EXPERIMENTS.md).
  struct MethodSetup {
    PaperMethod pm;
    index_t grid;
    bool precondition;
    double local_rtol;
  };
  const MethodSetup methods[] = {{paper_jacobi(), 14, false, 1e-4},
                                 {paper_gmres(), 20, false, 1e-10},
                                 {paper_cg(), 18, false, 1e-7}};

  std::printf("%-8s %-8s %-14s %-14s %-10s %-9s\n", "method", "procs",
              "failure-free", "lossy (mean)", "delta(%)", "failures");

  for (const auto& s : methods) {
    const LocalProblem p = make_local_problem(s.pm.method, s.grid, s.local_rtol,
                                              200000, s.precondition);
    auto baseline = p.make_solver();
    baseline->solve();
    const index_t n_base = baseline->iteration();
    const double t_it_virtual =
        s.pm.baseline_seconds / static_cast<double>(n_base);
    const double r_lossy = bench::cluster_ratios(s.pm, s.grid).lossy;

    for (const int procs : {256, 512, 1024, 2048}) {
      const auto times =
          bench::scheme_times(s.pm, procs, CkptScheme::kLossy, r_lossy);
      RunningStats iters, fails;
      const int trials = 5;
      for (int t = 0; t < trials; ++t) {
        auto solver = p.make_solver();
        ResilienceConfig cfg;
        cfg.scheme = CkptScheme::kLossy;
        cfg.compression.lossy_eb = ErrorBound::pointwise_rel(s.pm.eb_value);
        cfg.compression.adaptive_error_bound = s.pm.adaptive_eb;
        cfg.compression.adaptive_theta = bench::kAdaptiveTheta;
        cfg.failure.mtti_seconds = 3600.0;
        cfg.failure.seed = 1000 + static_cast<std::uint64_t>(procs) * 10 + t;
        cfg.iteration_seconds = t_it_virtual;
        cfg.cluster = ClusterModel{}.with_ranks(procs);
        cfg.policy.interval_seconds =
            young_interval_seconds(times.ckpt_seconds, cfg.failure.mtti_seconds);
        cfg.dynamic_scale =
            table3_vector_bytes(procs) / p.vector_bytes();
        cfg.static_bytes = static_state_bytes(table3_vector_bytes(procs));
        ResilientRunner runner(*solver, cfg);
        const auto res = runner.run();
        iters.add(static_cast<double>(res.convergence_iteration));
        fails.add(static_cast<double>(res.failures));
      }
      std::printf("%-8s %-8d %-14lld %-14.0f %-10.1f %-9.1f\n",
                  s.pm.method.c_str(), procs, static_cast<long long>(n_base),
                  iters.mean(),
                  100.0 * (iters.mean() - static_cast<double>(n_base)) /
                      static_cast<double>(n_base),
                  fails.mean());
    }
  }

  std::printf(
      "\nPaper shape: Jacobi shows no delay (N' bound ~6 of ~3941); GMRES "
      "with the Theorem-3 adaptive bound matches or slightly beats the "
      "failure-free count; CG is delayed ~24.8%% on average.\n");
  return 0;
}

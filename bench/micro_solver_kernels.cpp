/// google-benchmark microbenchmarks for the solver substrate: SpMV,
/// preconditioner application, and single iterations of each method.

#include <benchmark/benchmark.h>

#include "core/experiment.hpp"
#include "solvers/factory.hpp"
#include "sparse/gen/poisson3d.hpp"

namespace {

void bm_spmv(benchmark::State& state) {
  const lck::index_t n = state.range(0);
  const auto a = lck::poisson3d_spd(n);
  lck::Vector x(a.rows(), 1.0), y(a.rows());
  for (auto _ : state) {
    a.multiply(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          a.nnz());
}

void bm_preconditioner(benchmark::State& state, const char* name) {
  const auto a = lck::poisson3d_spd(24);
  const auto m = lck::make_preconditioner(name, a, 8);
  lck::Vector r(a.rows(), 1.0), z(a.rows());
  for (auto _ : state) {
    m->apply(r, z);
    benchmark::DoNotOptimize(z.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          a.rows());
}

void bm_solver_step(benchmark::State& state, const char* method) {
  const lck::LocalProblem p = lck::make_local_problem(method, 20, 1e-14,
                                                      1 << 30, false);
  auto solver = p.make_solver();
  for (auto _ : state) {
    auto st = solver->step();
    benchmark::DoNotOptimize(st);
    if (solver->converged()) {
      state.PauseTiming();
      solver->restart(lck::Vector(p.a.rows(), 0.0));
      state.ResumeTiming();
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          p.a.nnz());
}

}  // namespace

BENCHMARK(bm_spmv)->Arg(16)->Arg(32)->Arg(48);
BENCHMARK_CAPTURE(bm_preconditioner, jacobi, "jacobi");
BENCHMARK_CAPTURE(bm_preconditioner, bjacobi, "bjacobi");
BENCHMARK_CAPTURE(bm_preconditioner, ilu0, "ilu0");
BENCHMARK_CAPTURE(bm_preconditioner, ic0, "ic0");
BENCHMARK_CAPTURE(bm_solver_step, jacobi, "jacobi");
BENCHMARK_CAPTURE(bm_solver_step, cg, "cg");
BENCHMARK_CAPTURE(bm_solver_step, gmres, "gmres");
BENCHMARK_CAPTURE(bm_solver_step, bicgstab, "bicgstab");

BENCHMARK_MAIN();

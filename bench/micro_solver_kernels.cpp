/// google-benchmark microbenchmarks for the solver substrate: SpMV,
/// preconditioner application, single iterations of each method, and the
/// thread scaling of the deterministic fixed-partition vector reductions.

#include <benchmark/benchmark.h>

#include "core/experiment.hpp"
#include "solvers/factory.hpp"
#include "sparse/gen/poisson3d.hpp"
#include "sparse/vector_ops.hpp"

#if defined(_OPENMP)
#include <omp.h>
#endif

namespace {

void bm_spmv(benchmark::State& state) {
  const lck::index_t n = state.range(0);
  const auto a = lck::poisson3d_spd(n);
  lck::Vector x(a.rows(), 1.0), y(a.rows());
  for (auto _ : state) {
    a.multiply(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          a.nnz());
}

/// Plain row loop pairing bm_spmv: the bm_spmv/bm_spmv_rowwise items/s
/// ratio at equal Arg is the cache-blocked plan's raw speedup.
void bm_spmv_rowwise(benchmark::State& state) {
  const lck::index_t n = state.range(0);
  const auto a = lck::poisson3d_spd(n);
  lck::Vector x(a.rows(), 1.0), y(a.rows());
  for (auto _ : state) {
    a.multiply_rowwise(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          a.nnz());
}

void bm_preconditioner(benchmark::State& state, const char* name) {
  const auto a = lck::poisson3d_spd(24);
  const auto m = lck::make_preconditioner(name, a, 8);
  lck::Vector r(a.rows(), 1.0), z(a.rows());
  for (auto _ : state) {
    m->apply(r, z);
    benchmark::DoNotOptimize(z.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          a.rows());
}

void bm_solver_step(benchmark::State& state, const char* method) {
  const lck::LocalProblem p = lck::make_local_problem(method, 20, 1e-14,
                                                      1 << 30, false);
  auto solver = p.make_solver();
  for (auto _ : state) {
    auto st = solver->step();
    benchmark::DoNotOptimize(st);
    if (solver->converged()) {
      state.PauseTiming();
      solver->restart(lck::Vector(p.a.rows(), 0.0));
      state.ResumeTiming();
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          p.a.nnz());
}

/// Thread scaling of the deterministic reductions: range(0) elements
/// reduced on range(1) OpenMP threads. The fixed partition means the
/// *result* is bit-identical across the rows — only the time changes —
/// so the ratio of items/s between the 1-thread and N-thread rows is the
/// reduction's parallel speedup. (On a 1-core container the real-time rows
/// coincide; re-measure on a multicore host.)
template <typename Kernel>
void bm_reduction(benchmark::State& state, Kernel&& kernel) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
#if defined(_OPENMP)
  const int prev_threads = omp_get_max_threads();
  omp_set_num_threads(threads);
#else
  if (threads > 1) {
    state.SkipWithError("built without OpenMP");
    return;
  }
#endif
  lck::Vector x(n), y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = std::sin(0.001 * static_cast<double>(i)) + 2.0;
    y[i] = std::cos(0.002 * static_cast<double>(i)) - 1.5;
  }
  for (auto _ : state) {
    double v = kernel(x, y);
    benchmark::DoNotOptimize(v);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
  state.counters["threads"] = threads;
#if defined(_OPENMP)
  omp_set_num_threads(prev_threads);
#endif
}

void bm_dot(benchmark::State& state) {
  bm_reduction(state, [](const lck::Vector& x, const lck::Vector& y) {
    return lck::dot(x, y);
  });
}

void bm_norm2(benchmark::State& state) {
  bm_reduction(state, [](const lck::Vector& x, const lck::Vector&) {
    return lck::norm2(x);
  });
}

void bm_norm_inf(benchmark::State& state) {
  bm_reduction(state, [](const lck::Vector& x, const lck::Vector&) {
    return lck::norm_inf(x);
  });
}

// Fused kernels vs their unfused primitive sequences, on the same
// fixed-partition reduction substrate. Each fused/unfused pair at equal
// (elements, threads) produces bit-identical values; the items/s gap is the
// saved memory traffic. `y` is mutated by the axpy, but the tiny alpha keeps
// values in range across iterations.
void bm_dot_axpy(benchmark::State& state) {
  bm_reduction(state, [](const lck::Vector& x, const lck::Vector& y) {
    auto& xm = const_cast<lck::Vector&>(x);
    auto& ym = const_cast<lck::Vector&>(y);
    return lck::dot_axpy(x, y, 1e-12, xm, ym).rr;
  });
}

void bm_dot_axpy_unfused(benchmark::State& state) {
  bm_reduction(state, [](const lck::Vector& x, const lck::Vector& y) {
    auto& xm = const_cast<lck::Vector&>(x);
    auto& ym = const_cast<lck::Vector&>(y);
    const double pq = lck::dot(x, y);
    const double alpha = 1e-12 / pq;
    lck::axpy(alpha, x, xm);
    lck::axpy(-alpha, y, ym);
    return lck::norm2(y);
  });
}

void bm_axpy_norm2(benchmark::State& state) {
  bm_reduction(state, [](const lck::Vector& x, const lck::Vector& y) {
    return lck::axpy_norm2(1e-12, x, const_cast<lck::Vector&>(y));
  });
}

void bm_axpy_norm2_unfused(benchmark::State& state) {
  bm_reduction(state, [](const lck::Vector& x, const lck::Vector& y) {
    lck::axpy(1e-12, x, const_cast<lck::Vector&>(y));
    return lck::norm2(y);
  });
}

void bm_dot2(benchmark::State& state) {
  bm_reduction(state, [](const lck::Vector& x, const lck::Vector& y) {
    const auto [a, b] = lck::dot2(x, y, x);
    return a + b;
  });
}

void bm_dot2_unfused(benchmark::State& state) {
  bm_reduction(state, [](const lck::Vector& x, const lck::Vector& y) {
    return lck::dot(x, y) + lck::dot(x, x);
  });
}

}  // namespace

BENCHMARK(bm_spmv)->Arg(16)->Arg(32)->Arg(48);
BENCHMARK(bm_spmv_rowwise)->Arg(16)->Arg(32)->Arg(48);
BENCHMARK_CAPTURE(bm_preconditioner, jacobi, "jacobi");
BENCHMARK_CAPTURE(bm_preconditioner, bjacobi, "bjacobi");
BENCHMARK_CAPTURE(bm_preconditioner, ilu0, "ilu0");
BENCHMARK_CAPTURE(bm_preconditioner, ic0, "ic0");
BENCHMARK_CAPTURE(bm_solver_step, jacobi, "jacobi");
BENCHMARK_CAPTURE(bm_solver_step, cg, "cg");
BENCHMARK_CAPTURE(bm_solver_step, gmres, "gmres");
BENCHMARK_CAPTURE(bm_solver_step, bicgstab, "bicgstab");
BENCHMARK(bm_dot)
    ->ArgsProduct({{8 << 20}, {1, 2, 4, 8}})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(bm_norm2)
    ->ArgsProduct({{8 << 20}, {1, 2, 4, 8}})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(bm_norm_inf)
    ->ArgsProduct({{8 << 20}, {1, 2, 4, 8}})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(bm_dot_axpy)
    ->ArgsProduct({{8 << 20}, {1, 2, 4, 8}})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(bm_dot_axpy_unfused)
    ->ArgsProduct({{8 << 20}, {1, 2, 4, 8}})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(bm_axpy_norm2)
    ->ArgsProduct({{8 << 20}, {1, 2, 4, 8}})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(bm_axpy_norm2_unfused)
    ->ArgsProduct({{8 << 20}, {1, 2, 4, 8}})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(bm_dot2)
    ->ArgsProduct({{8 << 20}, {1, 2, 4, 8}})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(bm_dot2_unfused)
    ->ArgsProduct({{8 << 20}, {1, 2, 4, 8}})
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();

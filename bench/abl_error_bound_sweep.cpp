/// Ablation: error-bound sweep across all three methods — extends Fig. 2
/// (CG only in the paper) to Jacobi and GMRES, and couples each bound to
/// the checkpoint size it buys. This quantifies the paper's central
/// trade-off (Theorem 1): looser bounds shrink checkpoints but may cost
/// extra iterations.

#include <cstdio>

#include "bench_common.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "compress/sz/sz_like.hpp"

int main() {
  using namespace lck;
  bench::banner("Ablation — extra iterations & ckpt size vs error bound",
                "extends Tao et al., HPDC'18, Figure 2 to all methods");

  struct Case {
    const char* method;
    index_t grid;
    double rtol;
  };
  const Case cases[] = {{"jacobi", 12, 1e-6}, {"gmres", 12, 1e-7},
                        {"cg", 16, 1e-7}};

  std::printf("%-8s %-10s %-16s %-12s %-12s\n", "method", "eb",
              "extra iters(%)", "ratio", "baselineN");
  Rng rng(77);
  for (const auto& c : cases) {
    const LocalProblem p =
        make_local_problem(c.method, c.grid, c.rtol, 200000, false);
    auto baseline = p.make_solver();
    baseline->solve();
    const index_t n_base = baseline->iteration();

    for (const double eb : {1e-2, 1e-3, 1e-4, 1e-6}) {
      SzLikeCompressor sz(ErrorBound::pointwise_rel(eb));
      RunningStats extra, ratio;
      for (int t = 0; t < 8; ++t) {
        auto solver = p.make_solver();
        const index_t fail_at = static_cast<index_t>(
            (0.3 + 0.4 * rng.uniform()) * static_cast<double>(n_base));
        for (index_t i = 0; i < fail_at && !solver->converged(); ++i)
          solver->step();
        const auto stream = sz.compress(solver->solution());
        ratio.add(static_cast<double>(solver->solution().size() *
                                      sizeof(double)) /
                  static_cast<double>(stream.size()));
        Vector recovered(solver->solution().size());
        sz.decompress(stream, recovered);
        solver->restart(recovered);
        solver->solve();
        extra.add(100.0 *
                  static_cast<double>(solver->iteration() - n_base) /
                  static_cast<double>(n_base));
      }
      std::printf("%-8s %-10.0e %-16.1f %-12.1f %-12lld\n", c.method, eb,
                  extra.mean(), ratio.mean(),
                  static_cast<long long>(n_base));
    }
  }

  std::printf(
      "\nExpected: Jacobi tolerates every bound (stationary contraction, "
      "Theorem 2); GMRES recovers with ~no delay; CG pays 10-25%% at "
      "loose bounds; compression ratio falls as eb tightens.\n");
  return 0;
}

/// Figure 2: average extra iterations of the CG method per lossy recovery,
/// as a function of the pointwise-relative error bound (1e-3 … 1e-6).
///
/// Protocol (paper §4.4.3): run CG; at a randomly selected iteration,
/// compress + decompress the approximate solution with SZ, restart CG from
/// the perturbed vector, and count the extra iterations to convergence
/// relative to the failure-free run. Paper: 10–25% across bounds.

#include <cstdio>

#include "bench_common.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "compress/sz/sz_like.hpp"

int main() {
  using namespace lck;
  bench::banner("Fig. 2 — CG extra iterations per lossy recovery vs eb",
                "Tao et al., HPDC'18, Figure 2");

  // Unpreconditioned CG gives a convergence trajectory long enough to
  // resolve a 10–25% delay (see EXPERIMENTS.md).
  const LocalProblem p = make_local_problem("cg", 20, 1e-7, 200000,
                                            /*precondition=*/false);
  auto baseline = p.make_solver();
  baseline->solve();
  const index_t n_base = baseline->iteration();
  std::printf("Baseline failure-free CG: %lld iterations (grid 20^3)\n\n",
              static_cast<long long>(n_base));

  std::printf("%-14s %-18s %-14s\n", "rel. eb", "extra iters (mean)",
              "extra (%)");
  Rng rng(2018);
  const int trials = 20;
  for (const double eb : {1e-3, 1e-4, 1e-5, 1e-6}) {
    SzLikeCompressor sz(ErrorBound::pointwise_rel(eb));
    RunningStats extra;
    for (int t = 0; t < trials; ++t) {
      auto solver = p.make_solver();
      // Random failure point inside (20%, 80%) of the trajectory.
      const index_t fail_at = static_cast<index_t>(
          (0.2 + 0.6 * rng.uniform()) * static_cast<double>(n_base));
      for (index_t i = 0; i < fail_at && !solver->converged(); ++i)
        solver->step();
      const auto stream = sz.compress(solver->solution());
      Vector recovered(solver->solution().size());
      sz.decompress(stream, recovered);
      solver->restart(recovered);
      solver->solve();
      extra.add(static_cast<double>(solver->iteration() - n_base));
    }
    std::printf("%-14.0e %-18.1f %-14.1f\n", eb, extra.mean(),
                100.0 * extra.mean() / static_cast<double>(n_base));
  }
  std::printf(
      "\nPaper: 10–25%% average extra iterations per lossy recovery across "
      "these bounds;\nlooser bounds cost more extra iterations.\n");
  return 0;
}

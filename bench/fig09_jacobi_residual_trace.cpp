/// Figure 9: typical residual traces of the Jacobi method — failure-free
/// versus lossy checkpointing with one and with two failures/restarts.
///
/// The paper's takeaway: after each lossy recovery the Jacobi residual
/// rejoins the failure-free trajectory immediately (no extra iterations),
/// the visible bump at the restart point decaying within a handful of
/// sweeps (Theorem 2 with eb = 1e-4).

#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "compress/sz/sz_like.hpp"

namespace {

/// Run Jacobi, injecting lossy compress-restart events at the given
/// iteration numbers; returns the residual history.
std::vector<double> run_with_restarts(const lck::LocalProblem& p,
                                      const std::vector<lck::index_t>& events,
                                      double eb) {
  using namespace lck;
  auto solver = p.make_solver();
  SzLikeCompressor sz(ErrorBound::pointwise_rel(eb));
  std::size_t next_event = 0;
  while (!solver->converged()) {
    if (next_event < events.size() &&
        solver->iteration() == events[next_event]) {
      const auto stream = sz.compress(solver->solution());
      Vector recovered(solver->solution().size());
      sz.decompress(stream, recovered);
      solver->restart(recovered);
      ++next_event;
    }
    solver->step();
  }
  return solver->residual_history();
}

}  // namespace

int main() {
  using namespace lck;
  bench::banner("Fig. 9 — Jacobi residual traces with lossy restarts",
                "Tao et al., HPDC'18, Figure 9");

  const PaperMethod pm = paper_jacobi();
  const LocalProblem p =
      make_local_problem("jacobi", 14, pm.rtol, 200000, false);

  const auto clean = run_with_restarts(p, {}, pm.eb_value);
  const index_t n = static_cast<index_t>(clean.size());
  const auto one_failure =
      run_with_restarts(p, {n / 2}, pm.eb_value);
  const auto two_failures =
      run_with_restarts(p, {n / 3, 2 * n / 3}, pm.eb_value);

  std::printf("Restart events: 1-failure at iter %lld; 2-failure at %lld "
              "and %lld\n\n",
              static_cast<long long>(n / 2), static_cast<long long>(n / 3),
              static_cast<long long>(2 * n / 3));
  std::printf("%-10s %-16s %-16s %-16s\n", "iteration", "failure-free",
              "lossy-1-failure", "lossy-2-failures");
  const index_t max_len = static_cast<index_t>(
      std::max({clean.size(), one_failure.size(), two_failures.size()}));
  const index_t stride = std::max<index_t>(1, max_len / 25);
  for (index_t i = 0; i < max_len; i += stride) {
    const auto cell = [&](const std::vector<double>& h) {
      return i < static_cast<index_t>(h.size()) ? h[i] : -1.0;
    };
    std::printf("%-10lld %-16.6e %-16.6e %-16.6e\n",
                static_cast<long long>(i), cell(clean), cell(one_failure),
                cell(two_failures));
  }

  std::printf("\nTotal iterations: failure-free %zu, 1 failure %zu, "
              "2 failures %zu\n",
              clean.size(), one_failure.size(), two_failures.size());
  std::printf(
      "Paper shape: all three traces converge to the same residual with "
      "essentially identical iteration counts (0 extra iterations for "
      "Jacobi at eb = 1e-4).\n");
  return 0;
}

/// GMRES-specific tests: restart-cycle mechanics, lazy solution
/// materialization, Givens residual vs true residual, Theorem 3 behaviour.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "sim/perf_model.hpp"
#include "solvers/gmres.hpp"
#include "sparse/gen/poisson3d.hpp"
#include "sparse/gen/random_spd.hpp"

namespace lck {
namespace {

struct GmresProblem {
  CsrMatrix a;
  Vector b;
};

GmresProblem problem(index_t n) {
  GmresProblem s;
  s.a = poisson3d_spd(n);
  const Vector xt = smooth_solution(s.a.rows());
  s.b.assign(xt.size(), 0.0);
  s.a.multiply(xt, s.b);
  return s;
}

double true_residual(const CsrMatrix& a, const Vector& b, const Vector& x) {
  Vector r(b.size());
  a.residual(b, x, r);
  return norm2(r);
}

TEST(Gmres, GivensResidualMatchesTrueResidual) {
  // Right preconditioning keeps the recurrence residual equal to the true
  // residual — the property Theorem 3's adaptive bound relies on.
  const GmresProblem p = problem(6);
  const auto pc = make_preconditioner("ilu0", p.a);
  GmresSolver s(p.a, p.b, pc.get(), 30, {.rtol = 1e-10});
  for (int i = 0; i < 17 && !s.converged(); ++i) s.step();
  const double recurrence = s.residual_norm();
  const double actual = true_residual(p.a, p.b, s.solution());
  EXPECT_NEAR(recurrence, actual, 1e-8 * norm2(p.b) + 1e-10);
}

TEST(Gmres, MidCycleMaterializationDoesNotCorruptState) {
  const GmresProblem p = problem(6);
  GmresSolver a_solver(p.a, p.b, nullptr, 30, {.rtol = 1e-9});
  GmresSolver b_solver(p.a, p.b, nullptr, 30, {.rtol = 1e-9});

  // Solver A materializes x at every step (simulating frequent checkpoint
  // reads); solver B never does. Their residual trajectories must agree.
  for (int i = 0; i < 50 && !a_solver.converged(); ++i) {
    a_solver.step();
    (void)a_solver.solution();
    b_solver.step();
    ASSERT_NEAR(a_solver.residual_norm(), b_solver.residual_norm(),
                1e-9 * (1.0 + a_solver.residual_norm()));
  }
}

TEST(Gmres, RestartLengthBoundsMemoryAndStillConverges) {
  const GmresProblem p = problem(6);
  for (const index_t m : {5, 10, 30}) {
    GmresSolver s(p.a, p.b, nullptr, m, {.rtol = 1e-8, .max_iterations = 50000});
    const auto st = s.solve();
    EXPECT_TRUE(st.converged) << "restart " << m;
  }
}

TEST(Gmres, SmallerRestartNeedsMoreIterations) {
  const GmresProblem p = problem(7);
  GmresSolver small(p.a, p.b, nullptr, 5, {.rtol = 1e-8, .max_iterations = 50000});
  GmresSolver large(p.a, p.b, nullptr, 60, {.rtol = 1e-8, .max_iterations = 50000});
  small.solve();
  large.solve();
  EXPECT_GE(small.iteration(), large.iteration());
}

TEST(Gmres, SolvesNonsymmetricSystem) {
  RandomSpdOptions opt;
  opt.n = 400;
  opt.symmetric = false;
  opt.dominance = 1.8;
  opt.seed = 19;
  const CsrMatrix a = random_dominant(opt);
  Rng rng(20);
  Vector xt(a.rows());
  for (auto& v : xt) v = rng.uniform(-1, 1);
  Vector b(a.rows());
  a.multiply(xt, b);
  GmresSolver s(a, b, nullptr, 30, {.rtol = 1e-10, .max_iterations = 20000});
  EXPECT_TRUE(s.solve().converged);
  EXPECT_LT(max_abs_diff(s.solution(), xt), 1e-6);
}

TEST(Gmres, Theorem3RestartKeepsResidualSameOrder) {
  // Compress-restart at the Theorem 3 bound: the new residual must stay
  // within a small constant of the pre-restart residual (Eq. 14:
  // ||r'|| ≤ ||r|| + eb·||b||, and eb = ||r||/||b|| gives ≤ 2||r||).
  const GmresProblem p = problem(6);
  GmresSolver s(p.a, p.b, nullptr, 30, {.rtol = 1e-12, .max_iterations = 10000});
  for (int i = 0; i < 40; ++i) s.step();
  const double r_before = s.residual_norm();
  const double eb =
      theorem3_gmres_error_bound(r_before, s.rhs_norm(), 1.0);

  Vector x = s.solution();
  Rng rng(3);
  // Worst-case pointwise-relative perturbation at the bound.
  for (auto& v : x) v *= 1.0 + eb * (rng.uniform() < 0.5 ? -1.0 : 1.0);
  s.restart(x);
  const double r_after = s.residual_norm();
  // Same order: within a modest constant (Eq. 14 gives ≤ ~2, stencil norm
  // effects allowed for).
  EXPECT_LT(r_after, 20.0 * r_before);
}

TEST(Gmres, ConvergesAfterTheorem3LossyRestartWithNoLargeDelay) {
  const GmresProblem p = problem(6);
  SolveOptions opts{.rtol = 1e-9, .max_iterations = 50000};

  GmresSolver baseline(p.a, p.b, nullptr, 30, opts);
  baseline.solve();
  const auto n_baseline = baseline.iteration();

  GmresSolver s(p.a, p.b, nullptr, 30, opts);
  for (int i = 0; i < 30; ++i) s.step();
  const double eb = theorem3_gmres_error_bound(s.residual_norm(), s.rhs_norm());
  Vector x = s.solution();
  Rng rng(5);
  for (auto& v : x) v *= 1.0 + eb * (rng.uniform() - 0.5);
  s.restart(x);
  s.solve();
  EXPECT_TRUE(s.converged());
  // Paper §4.4.2: restarted GMRES with the adaptive bound converges with no
  // meaningful delay (N' ≈ 0). Allow a small slack plus the rolled-back
  // distance.
  EXPECT_LE(s.iteration(), n_baseline + 40);
}

TEST(Gmres, HappyBreakdownOnExactSubspaceSolution) {
  // If b is an eigenvector-ish trivial case (A = I scaled), GMRES must
  // converge in one iteration without dividing by zero.
  CsrBuilder bld(4, 4);
  for (index_t i = 0; i < 4; ++i) {
    bld.add(i, 2.0);
    bld.finish_row();
  }
  const CsrMatrix a = std::move(bld).build();
  const Vector b{2.0, 4.0, 6.0, 8.0};
  GmresSolver s(a, b, nullptr, 30, {.rtol = 1e-12});
  const auto st = s.solve();
  EXPECT_TRUE(st.converged);
  EXPECT_EQ(s.iteration(), 1);
  EXPECT_LT(max_abs_diff(s.solution(), Vector{1.0, 2.0, 3.0, 4.0}), 1e-12);
}

TEST(Gmres, ZeroRhsConvergesImmediately) {
  const CsrMatrix a = poisson3d_spd(3);
  const Vector b(a.rows(), 0.0);
  GmresSolver s(a, b, nullptr, 30, {.rtol = 1e-10});
  EXPECT_TRUE(s.converged());  // ||r|| = 0 ≤ rtol·||b|| = 0 at start
}

TEST(Gmres, RejectsBadRestartLength) {
  const GmresProblem p = problem(3);
  EXPECT_THROW(GmresSolver(p.a, p.b, nullptr, 0), config_error);
}

}  // namespace
}  // namespace lck

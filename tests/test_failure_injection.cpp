/// Deterministic failure-injection tests: with a fixed RNG seed, lossy
/// restarts of CG and GMRES must still converge, reruns must be bit-stable,
/// and the iteration overhead of the adaptive error bound must match the
/// paper's Theorem-3 expectation (N′ ≈ 0, versus a clearly positive N′ for
/// a fixed loose bound).

#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "core/resilient_runner.hpp"
#include "sparse/vector_ops.hpp"

namespace lck {
namespace {

/// Aggressive failure rate relative to the virtual solve time so every
/// seed below experiences multiple failures on the fixed-bound runs.
ResilienceConfig lossy_config(std::uint64_t seed, bool adaptive,
                              ErrorBound eb = ErrorBound::pointwise_rel(1e-4)) {
  ResilienceConfig cfg;
  cfg.scheme = CkptScheme::kLossy;
  cfg.compression.lossy_eb = eb;
  cfg.compression.adaptive_error_bound = adaptive;
  cfg.policy.interval_seconds = 20.0;
  cfg.failure.mtti_seconds = 60.0;
  cfg.iteration_seconds = 5.0;
  cfg.failure.seed = seed;
  cfg.cluster.ranks = 64;
  cfg.cluster.pfs_per_rank_overhead = 0.001;
  cfg.static_bytes = 1e6;
  return cfg;
}

/// Unpreconditioned instances give Krylov trajectories long enough for the
/// injector to strike several times (see make_local_problem docs).
LocalProblem problem(const std::string& method) {
  return make_local_problem(method, 8, 1e-8, 200000, false);
}

double true_rel_residual(const LocalProblem& p, const Vector& x) {
  Vector r(p.b.size());
  p.a.residual(p.b, x, r);
  return norm2(r) / norm2(p.b);
}

class LossyRestart : public ::testing::TestWithParam<const char*> {};

TEST_P(LossyRestart, ConvergesUnderRepeatedFailures) {
  const LocalProblem p = problem(GetParam());
  for (const std::uint64_t seed : {42ull, 7ull, 13ull}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    auto solver = p.make_solver();
    ResilientRunner runner(*solver, lossy_config(seed, /*adaptive=*/false));
    const auto res = runner.run();
    EXPECT_TRUE(res.converged);
    EXPECT_GT(res.recoveries, 0) << "seed must exercise lossy restarts";
    EXPECT_LE(true_rel_residual(p, solver->solution()), 1e-7);
    // Rollback re-execution means more executed steps than the iteration
    // count the solver reports at convergence.
    EXPECT_GT(res.executed_steps, 0);
    EXPECT_GE(res.executed_steps, res.convergence_iteration);
  }
}

TEST_P(LossyRestart, RerunWithSameSeedIsBitStable) {
  const LocalProblem p = problem(GetParam());
  const auto cfg = lossy_config(42, /*adaptive=*/true);
  auto s1 = p.make_solver();
  const auto r1 = ResilientRunner(*s1, cfg).run();
  auto s2 = p.make_solver();
  const auto r2 = ResilientRunner(*s2, cfg).run();
  EXPECT_EQ(r1.failures, r2.failures);
  EXPECT_EQ(r1.recoveries, r2.recoveries);
  EXPECT_EQ(r1.executed_steps, r2.executed_steps);
  EXPECT_EQ(r1.convergence_iteration, r2.convergence_iteration);
  EXPECT_DOUBLE_EQ(r1.virtual_seconds, r2.virtual_seconds);
  EXPECT_EQ(s1->solution(), s2->solution());
}

TEST_P(LossyRestart, AdaptiveBoundOverheadMatchesTheorem3) {
  // Theorem 3: refreshing the error bound to θ·||r||/||b|| before each
  // checkpoint makes the restart perturbation commensurate with the current
  // residual, so the expected iteration delay N′ is ≈ 0 — unlike a fixed
  // bound, whose delay grows with the number of restarts.
  const LocalProblem p = problem(GetParam());
  auto baseline = p.make_solver();
  baseline->solve();
  const auto n_free = baseline->iteration();

  auto adaptive_solver = p.make_solver();
  const auto adaptive =
      ResilientRunner(*adaptive_solver, lossy_config(42, true)).run();
  ASSERT_TRUE(adaptive.converged);
  ASSERT_GT(adaptive.recoveries, 0);
  // N′ ≈ 0: a few iterations of slack per recovery, nothing resembling a
  // from-scratch restart (which would cost ~n_free per failure).
  EXPECT_LE(adaptive.convergence_iteration, n_free + 3 * adaptive.recoveries);

  // A loose fixed bound under the same failure sequence pays a clearly
  // positive per-recovery delay; the adaptive run must beat it.
  auto fixed_solver = p.make_solver();
  const auto fixed =
      ResilientRunner(*fixed_solver,
                      lossy_config(42, false, ErrorBound::pointwise_rel(1e-2)))
          .run();
  ASSERT_TRUE(fixed.converged);
  ASSERT_GT(fixed.recoveries, 2);
  EXPECT_GT(fixed.convergence_iteration, n_free);
  const auto adaptive_overhead = adaptive.convergence_iteration - n_free;
  const auto fixed_overhead = fixed.convergence_iteration - n_free;
  EXPECT_LT(adaptive_overhead, fixed_overhead);
}

INSTANTIATE_TEST_SUITE_P(Methods, LossyRestart,
                         ::testing::Values("cg", "gmres"),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

}  // namespace
}  // namespace lck

/// Integration tests for the resilient runner: failure-free equivalence,
/// convergence under failure injection for all three schemes, virtual-time
/// accounting, and the adaptive GMRES bound.

#include <gtest/gtest.h>

#include <cmath>

#include "core/experiment.hpp"
#include "core/resilient_runner.hpp"

namespace lck {
namespace {

ResilienceConfig base_config(CkptScheme scheme) {
  ResilienceConfig cfg;
  cfg.scheme = scheme;
  cfg.policy.interval_seconds = 20.0;
  cfg.failure.mtti_seconds = 60.0;  // aggressive failures for test coverage
  cfg.iteration_seconds = 5.0;  // short local solves still span many MTTIs
  cfg.failure.seed = 7;
  cfg.dynamic_scale = 1.0;
  cfg.cluster.ranks = 64;
  cfg.cluster.pfs_per_rank_overhead = 0.001;
  cfg.static_bytes = 1e6;
  return cfg;
}

double true_rel_residual(const CsrMatrix& a, const Vector& b,
                         const Vector& x) {
  Vector r(b.size());
  a.residual(b, x, r);
  return norm2(r) / norm2(b);
}

TEST(Runner, FailureFreeRunMatchesPlainSolve) {
  const LocalProblem p = make_local_problem("cg", 8, 1e-8);
  auto plain = p.make_solver();
  plain->solve();

  auto solver = p.make_solver();
  ResilienceConfig cfg = base_config(CkptScheme::kLossy);
  cfg.failure.inject = false;
  ResilientRunner runner(*solver, cfg);
  const auto res = runner.run();

  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.convergence_iteration, plain->iteration());
  EXPECT_EQ(res.failures, 0);
  EXPECT_EQ(res.recoveries, 0);
  // Virtual time = iterations + checkpoint costs only.
  EXPECT_GE(res.virtual_seconds,
            static_cast<double>(res.executed_steps) * cfg.iteration_seconds);
}

class RunnerScheme : public ::testing::TestWithParam<CkptScheme> {};

TEST_P(RunnerScheme, ConvergesUnderFailures) {
  const CkptScheme scheme = GetParam();
  const LocalProblem p = make_local_problem("cg", 8, 1e-8);
  auto solver = p.make_solver();
  ResilienceConfig cfg = base_config(scheme);
  ResilientRunner runner(*solver, cfg);
  const auto res = runner.run();

  EXPECT_TRUE(res.converged) << to_string(scheme);
  EXPECT_GT(res.failures, 0) << "test should exercise failures";
  EXPECT_EQ(res.recoveries, res.failures - (res.failures - res.recoveries));
  EXPECT_LE(true_rel_residual(p.a, p.b, solver->solution()), 1e-7)
      << to_string(scheme);
}

TEST_P(RunnerScheme, JacobiConvergesUnderFailures) {
  const CkptScheme scheme = GetParam();
  const LocalProblem p = make_local_problem("jacobi", 7, 1e-6);
  auto solver = p.make_solver();
  ResilienceConfig cfg = base_config(scheme);
  cfg.failure.seed = 11;
  ResilientRunner runner(*solver, cfg);
  const auto res = runner.run();
  EXPECT_TRUE(res.converged) << to_string(scheme);
  EXPECT_LE(true_rel_residual(p.a, p.b, solver->solution()), 1.2e-6);
}

TEST_P(RunnerScheme, GmresConvergesUnderFailures) {
  const CkptScheme scheme = GetParam();
  const LocalProblem p = make_local_problem("gmres", 7, 1e-7);
  auto solver = p.make_solver();
  ResilienceConfig cfg = base_config(scheme);
  cfg.compression.adaptive_error_bound = scheme == CkptScheme::kLossy;
  cfg.failure.seed = 13;
  ResilientRunner runner(*solver, cfg);
  const auto res = runner.run();
  EXPECT_TRUE(res.converged) << to_string(scheme);
  EXPECT_LE(true_rel_residual(p.a, p.b, solver->solution()), 1.2e-7);
}

INSTANTIATE_TEST_SUITE_P(Schemes, RunnerScheme,
                         ::testing::Values(CkptScheme::kTraditional,
                                           CkptScheme::kLossless,
                                           CkptScheme::kLossy),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

TEST(Runner, TraditionalRecoveryIsIterationExactForCg) {
  // With exact state restoration, the convergence iteration equals the
  // failure-free count regardless of how many failures struck.
  const LocalProblem p = make_local_problem("cg", 8, 1e-8);
  auto baseline = p.make_solver();
  baseline->solve();

  auto solver = p.make_solver();
  ResilienceConfig cfg = base_config(CkptScheme::kTraditional);
  cfg.failure.seed = 17;
  ResilientRunner runner(*solver, cfg);
  const auto res = runner.run();
  ASSERT_GT(res.failures, 0);
  EXPECT_EQ(res.convergence_iteration, baseline->iteration());
}

TEST(Runner, LossyRecoveryMayDelayCgButConverges) {
  const LocalProblem p = make_local_problem("cg", 8, 1e-8);
  auto baseline = p.make_solver();
  baseline->solve();

  auto solver = p.make_solver();
  ResilienceConfig cfg = base_config(CkptScheme::kLossy);
  cfg.compression.lossy_eb = ErrorBound::pointwise_rel(1e-4);
  cfg.failure.seed = 17;
  ResilientRunner runner(*solver, cfg);
  const auto res = runner.run();
  ASSERT_GT(res.recoveries, 0);
  EXPECT_TRUE(res.converged);
  // Lossy restarts can only add iterations relative to the baseline.
  EXPECT_GE(res.convergence_iteration, baseline->iteration());
  // ... but not pathologically many (paper: 10–25% per recovery).
  EXPECT_LE(res.convergence_iteration,
            baseline->iteration() * 3 + 50 * res.recoveries);
}

TEST(Runner, LossyCheckpointsAreSmallerThanTraditional) {
  const LocalProblem p = make_local_problem("cg", 8, 1e-8);

  auto s1 = p.make_solver();
  ResilienceConfig c1 = base_config(CkptScheme::kTraditional);
  c1.failure.inject = false;
  const auto r1 = ResilientRunner(*s1, c1).run();

  auto s2 = p.make_solver();
  ResilienceConfig c2 = base_config(CkptScheme::kLossy);
  c2.failure.inject = false;
  const auto r2 = ResilientRunner(*s2, c2).run();

  ASSERT_GT(r1.checkpoints, 0);
  ASSERT_GT(r2.checkpoints, 0);
  EXPECT_LT(r2.mean_ckpt_stored_bytes, r1.mean_ckpt_stored_bytes / 2.0);
  EXPECT_GT(r2.compression_ratio, 2.0);
  EXPECT_LT(r2.mean_ckpt_seconds, r1.mean_ckpt_seconds);
}

TEST(Runner, CheckpointIntervalIsHonoured) {
  const LocalProblem p = make_local_problem("jacobi", 6, 1e-8);
  auto solver = p.make_solver();
  ResilienceConfig cfg = base_config(CkptScheme::kTraditional);
  cfg.failure.inject = false;
  cfg.policy.interval_seconds = 50.0;
  cfg.iteration_seconds = 1.0;
  ResilientRunner runner(*solver, cfg);
  const auto res = runner.run();
  // Expected checkpoints ≈ productive time / (interval + ckpt cost).
  const double productive = static_cast<double>(res.executed_steps);
  EXPECT_LE(res.checkpoints, static_cast<int>(productive / 50.0) + 1);
  EXPECT_GE(res.checkpoints, static_cast<int>(productive / 50.0) - 2);
}

TEST(Runner, VirtualTimeDecomposes) {
  const LocalProblem p = make_local_problem("cg", 8, 1e-8);
  auto solver = p.make_solver();
  ResilienceConfig cfg = base_config(CkptScheme::kLossy);
  cfg.failure.inject = false;
  ResilientRunner runner(*solver, cfg);
  const auto res = runner.run();
  const double expected = static_cast<double>(res.executed_steps) *
                              cfg.iteration_seconds +
                          res.ckpt_seconds_total + res.recovery_seconds_total;
  EXPECT_NEAR(res.virtual_seconds, expected, 1e-9);
}

TEST(Runner, FailureBeforeFirstCheckpointRestartsFromScratch) {
  const LocalProblem p = make_local_problem("jacobi", 6, 1e-8);
  auto solver = p.make_solver();
  ResilienceConfig cfg = base_config(CkptScheme::kLossy);
  cfg.policy.interval_seconds = 1e9;  // never checkpoint
  cfg.failure.mtti_seconds = 600.0;
  cfg.failure.seed = 23;
  ResilientRunner runner(*solver, cfg);
  const auto res = runner.run();
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.checkpoints, 0);
  EXPECT_GT(res.failures, 0);
  // Every failure forced a from-scratch restart; executed steps exceed the
  // convergence iteration count.
  EXPECT_GT(res.executed_steps, res.convergence_iteration);
}

TEST(Runner, AdaptiveBoundTightensWithConvergence) {
  // Indirect check: with the adaptive bound the achieved compression ratio
  // should drop as the solver converges (tighter eb near convergence), yet
  // the run must stay correct.
  const LocalProblem p = make_local_problem("gmres", 7, 1e-8);
  auto solver = p.make_solver();
  ResilienceConfig cfg = base_config(CkptScheme::kLossy);
  cfg.compression.adaptive_error_bound = true;
  cfg.failure.inject = false;
  cfg.policy.interval_seconds = 10.0;
  ResilientRunner runner(*solver, cfg);
  const auto res = runner.run();
  EXPECT_TRUE(res.converged);
  EXPECT_GT(res.checkpoints, 1);
}

TEST(Runner, RejectsBadConfiguration) {
  const LocalProblem p = make_local_problem("cg", 4, 1e-6);
  auto solver = p.make_solver();
  ResilienceConfig cfg = base_config(CkptScheme::kLossy);
  cfg.policy.interval_seconds = 0.0;
  EXPECT_THROW(ResilientRunner(*solver, cfg), config_error);
  cfg = base_config(CkptScheme::kLossy);
  cfg.iteration_seconds = -1.0;
  EXPECT_THROW(ResilientRunner(*solver, cfg), config_error);
}

TEST(Runner, DeterministicForFixedSeed) {
  const LocalProblem p = make_local_problem("cg", 7, 1e-8);
  ResilienceConfig cfg = base_config(CkptScheme::kLossy);
  cfg.failure.seed = 31;

  auto s1 = p.make_solver();
  const auto r1 = ResilientRunner(*s1, cfg).run();
  auto s2 = p.make_solver();
  const auto r2 = ResilientRunner(*s2, cfg).run();

  EXPECT_EQ(r1.failures, r2.failures);
  EXPECT_EQ(r1.executed_steps, r2.executed_steps);
  EXPECT_DOUBLE_EQ(r1.virtual_seconds, r2.virtual_seconds);
}

}  // namespace
}  // namespace lck

/// Multi-level checkpoint hierarchy tests: PartnerStore erasure-style
/// reconstruction, TieredCheckpointStore severity-aware recovery matrix
/// (process -> L1, node -> L2, partition/system -> L3), background promotion
/// ordering/filtering/back-pressure, bit-identical recovery vs a
/// single-level store, the tiered cost model, and the ResilientRunner
/// kTiered mode (per-severity counters, per-tier recoveries, bit-stable
/// reruns, blocking cost <= async single-level).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "ckpt/checkpoint_manager.hpp"
#include "ckpt/tier/partner_store.hpp"
#include "ckpt/tier/tiered_store.hpp"
#include "common/rng.hpp"
#include "core/experiment.hpp"
#include "core/resilient_runner.hpp"
#include "sim/perf_model.hpp"
#include "sparse/vector_ops.hpp"

namespace lck {
namespace {

/// Generous bound on every blocking wait in this suite: on a loaded 1-core
/// container threads may be scheduled late, but a wait that exceeds this is
/// a real hang and must fail the test instead of wedging CTest.
constexpr auto kDeadline = std::chrono::seconds(60);

std::vector<byte_t> pattern_blob(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<byte_t> data(n);
  for (auto& b : data) b = static_cast<byte_t>(rng.uniform_index(256));
  return data;
}

// ----- PartnerStore ---------------------------------------------------------

TEST(PartnerStore, RoundTripsOddAndEvenSizes) {
  PartnerStore store;
  for (const std::size_t n : {0u, 1u, 2u, 7u, 128u, 1001u}) {
    const auto blob = pattern_blob(n, 11 + n);
    store.write(static_cast<int>(n), blob);
    EXPECT_EQ(store.read(static_cast<int>(n)), blob) << "size " << n;
  }
}

TEST(PartnerStore, ReconstructsAfterAnySingleNodeLoss) {
  const auto blob = pattern_blob(999, 3);  // odd: exercises the padding byte
  for (const auto lost :
       {PartnerStore::kLocalHalf, PartnerStore::kPartnerHalf,
        PartnerStore::kParity}) {
    PartnerStore store;
    store.write(0, blob);
    store.fail_node(lost);
    EXPECT_FALSE(store.piece_present(0, lost));
    EXPECT_TRUE(store.exists(0));
    EXPECT_EQ(store.read(0), blob) << "lost piece " << lost;
  }
}

TEST(PartnerStore, TwoPieceLossIsUnrecoverable) {
  PartnerStore store;
  store.write(5, pattern_blob(64, 9));
  store.fail_node(PartnerStore::kLocalHalf);
  store.fail_node(PartnerStore::kParity);
  EXPECT_FALSE(store.exists(5));
  EXPECT_EQ(store.latest_version(), -1);
  EXPECT_THROW((void)store.read(5), corrupt_stream_error);
}

TEST(PartnerStore, RewriteAfterNodeLossRestoresRedundancy) {
  PartnerStore store;
  store.write(0, pattern_blob(64, 1));
  store.fail_node(PartnerStore::kLocalHalf);
  const auto blob = pattern_blob(64, 2);
  store.write(0, blob);  // replacement node rejoins: full redundancy again
  store.fail_node(PartnerStore::kPartnerHalf);
  EXPECT_EQ(store.read(0), blob);
}

// ----- TieredCheckpointStore: severity recovery matrix ----------------------

TEST(TieredStore, SeverityRecoveryMatrix) {
  struct Case {
    FailureSeverity severity;
    int expected_level;
  };
  const Case cases[] = {{FailureSeverity::kProcess, 0},
                        {FailureSeverity::kNode, 1},
                        {FailureSeverity::kPartition, 2},
                        {FailureSeverity::kSystem, 2}};
  const auto blob = pattern_blob(4096, 77);
  for (const auto& c : cases) {
    auto store = make_tiered_store(/*retention=*/2, 1, 1);
    store->write(0, blob);
    store->drain_promotions();  // background worker placed L2 + L3 copies
    store->invalidate(c.severity);
    ASSERT_EQ(store->latest_version(), 0) << to_string(c.severity);
    EXPECT_EQ(store->level_of(0), c.expected_level) << to_string(c.severity);
    // Recovery is bit-identical from whichever tier serves it — including
    // the node case, where L2 reconstructs from partner half + parity.
    EXPECT_EQ(store->read(0), blob) << to_string(c.severity);
  }
}

TEST(TieredStore, NodeFailureReconstructsFromPartnerPieces) {
  auto store = make_tiered_store(2, 1, /*l3_promote_every=*/1000);
  const auto blob = pattern_blob(501, 13);
  store->write(0, blob);
  store->drain_promotions();
  store->invalidate(FailureSeverity::kNode);
  // L1 destroyed, L3 never received the version (filtered), so the read
  // must come from L2 with its local pieces genuinely gone.
  EXPECT_EQ(store->level_of(0), 1);
  EXPECT_EQ(store->read(0), blob);
}

TEST(TieredStore, SystemFailureBeforeAnyPromotionLosesEverything) {
  auto store = make_tiered_store(2, 1, 1, "", /*auto_promote=*/false);
  store->write(0, pattern_blob(64, 5));
  store->invalidate(FailureSeverity::kSystem);  // L1+L2 wiped, L3 empty
  EXPECT_EQ(store->latest_version(), -1);
  EXPECT_FALSE(store->exists(0));
}

// ----- promotion: ordering, filtering, retention ----------------------------

TEST(TieredStore, PromotionFiltersAndPerTierRetention) {
  // L2 takes every version (retention 2), L3 every 2nd (retention 2).
  auto store = make_tiered_store(/*retention=*/2, /*l2_promote_every=*/1,
                                 /*l3_promote_every=*/2);
  for (int v = 0; v < 6; ++v) {
    store->write(v, pattern_blob(128, static_cast<std::uint64_t>(v)));
    store->drain_promotions();
  }
  // L1/L2 keep the 2 newest; L3 keeps the 2 newest even versions.
  for (int v = 0; v < 6; ++v) {
    EXPECT_EQ(store->exists_at(0, v), v >= 4) << "L1 v" << v;
    EXPECT_EQ(store->exists_at(1, v), v >= 4) << "L2 v" << v;
    EXPECT_EQ(store->exists_at(2, v), v == 2 || v == 4) << "L3 v" << v;
  }
  EXPECT_EQ(store->latest_version_at(2), 4);
  EXPECT_EQ(store->failed_promotions(), 0u);
}

TEST(TieredStore, ManualPromoteNowDeclinesWhenSourceGone) {
  auto store = make_tiered_store(2, 1, 1, "", /*auto_promote=*/false);
  store->write(0, pattern_blob(64, 1));
  EXPECT_TRUE(store->promote_now(0, 1));
  store->invalidate(FailureSeverity::kPartition);  // L1 + L2 destroyed
  EXPECT_FALSE(store->promote_now(0, 2)) << "no surviving source";
  EXPECT_EQ(store->latest_version(), -1);
}

TEST(TieredStore, PendingProtocolCommitsThroughL1AndPromotes) {
  auto store = make_tiered_store(2, 1, 1);
  const auto blob = pattern_blob(256, 21);
  store->write_pending(0, blob);
  EXPECT_TRUE(store->has_pending(0));
  EXPECT_EQ(store->latest_version(), -1);  // pending is invisible
  store->commit(0);
  store->drain_promotions();
  EXPECT_FALSE(store->has_pending(0));
  store->invalidate(FailureSeverity::kPartition);
  EXPECT_EQ(store->read(0), blob);  // survived via the L3 promotion
}

/// Store whose writes block until released — lets the test hold the
/// promotion worker open deterministically. All waits are deadline-bounded
/// so a regression fails loudly instead of hanging a 1-core container.
class GateStore final : public CheckpointStore {
 public:
  void write(int version, std::span<const byte_t> data) override {
    {
      std::unique_lock<std::mutex> lock(mu_);
      ++entered_;
      order_.push_back(version);
      cv_.notify_all();
      if (!cv_.wait_for(lock, kDeadline, [&] { return open_; }))
        throw corrupt_stream_error("gate store: deadline expired");
    }
    inner_.write(version, data);
  }
  [[nodiscard]] std::vector<byte_t> read(int version) const override {
    return inner_.read(version);
  }
  [[nodiscard]] bool exists(int version) const override {
    return inner_.exists(version);
  }
  void remove(int version) override { inner_.remove(version); }
  [[nodiscard]] int latest_version() const override {
    return inner_.latest_version();
  }
  void open() {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      open_ = true;
    }
    cv_.notify_all();
  }
  [[nodiscard]] bool wait_entered(int n) {
    std::unique_lock<std::mutex> lock(mu_);
    return cv_.wait_for(lock, kDeadline, [&] { return entered_ >= n; });
  }
  [[nodiscard]] std::vector<int> write_order() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return order_;
  }

 private:
  MemoryStore inner_;
  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
  std::vector<int> order_;
  int entered_ = 0;
  bool open_ = false;
};

TEST(TieredStore, SaturatedPromotionQueueBackpressuresWrites) {
  std::vector<TieredCheckpointStore::Level> levels;
  levels.push_back({TierSpec{"L1", FailureSeverity::kProcess, 8, 1},
                    std::make_unique<MemoryStore>()});
  auto gate_owner = std::make_unique<GateStore>();
  GateStore* gate = gate_owner.get();
  levels.push_back({TierSpec{"L2", FailureSeverity::kNode, 8, 1},
                    std::move(gate_owner)});
  TieredCheckpointStore store(std::move(levels), /*auto_promote=*/true);
  store.set_max_inflight_promotions(1);

  store.write(0, pattern_blob(64, 1));     // promotion job enters the gate
  ASSERT_TRUE(gate->wait_entered(1));
  EXPECT_EQ(store.promotions_in_flight(), 1u);

  // With the single promotion slot occupied, the next write must block in
  // schedule_promotions (back-pressure) — but its L1 write itself lands
  // first, so the version is already locally durable while we wait.
  std::atomic<bool> second_done{false};
  std::thread t([&] {
    store.write(1, pattern_blob(64, 2));
    second_done = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(second_done.load()) << "write must back-pressure on the queue";
  EXPECT_TRUE(store.exists_at(0, 1)) << "L1 write precedes the queue wait";

  gate->open();
  t.join();
  EXPECT_TRUE(second_done.load());
  store.drain_promotions();
  EXPECT_TRUE(store.exists_at(1, 0));
  EXPECT_TRUE(store.exists_at(1, 1));
  // One worker, FIFO jobs: promotions land strictly in version order.
  EXPECT_EQ(gate->write_order(), (std::vector<int>{0, 1}));
  EXPECT_EQ(store.failed_promotions(), 0u);
}

// ----- bit-identical recovery vs single-level -------------------------------

TEST(TieredManager, RecoveredStateBitIdenticalToSingleLevel) {
  Rng rng(42);
  Vector x(5000);
  for (auto& v : x) v = rng.uniform(-3.0, 3.0);
  const Vector original = x;
  NoneCompressor none;

  auto single_store = std::make_unique<MemoryStore>();
  CheckpointManager single(std::move(single_store), &none);
  Vector xs = x;
  single.protect(0, "x", &xs);
  single.checkpoint();

  auto tiered_store = make_tiered_store(2, 1, 1);
  auto* tiered_raw = tiered_store.get();
  CheckpointManager tiered(std::move(tiered_store), &none);
  tiered.set_retention(1 << 20);  // per-tier retention rules inside
  tiered.protect(0, "x", &x);
  tiered.checkpoint();
  tiered_raw->drain_promotions();
  tiered_raw->invalidate(FailureSeverity::kNode);  // recovery via L2

  xs.assign(xs.size(), 0.0);
  x.assign(x.size(), 0.0);
  single.recover();
  tiered.recover();
  ASSERT_EQ(xs.size(), x.size());
  for (std::size_t i = 0; i < x.size(); ++i)
    ASSERT_EQ(x[i], xs[i]) << "element " << i;
  EXPECT_EQ(x, original);
}

// ----- tiered cost model ----------------------------------------------------

TEST(TieredModel, SeverityLambdasSplitAndIntervalsMatchFormula) {
  const double lambda = 1.0 / 3600.0;
  const auto lambdas = severity_tier_lambdas(lambda, {0.5, 0.3, 0.15, 0.05});
  EXPECT_NEAR(lambdas[0] + lambdas[1] + lambdas[2], lambda, 1e-15);
  EXPECT_NEAR(lambdas[2], 0.2 * lambda, 1e-15);

  const std::vector<double> costs{0.1, 2.0, 120.0};
  const std::vector<double> lv{lambdas[0], lambdas[1], lambdas[2]};
  const auto intervals = tiered_optimal_intervals(costs, lv);
  ASSERT_EQ(intervals.size(), 3u);
  for (std::size_t k = 0; k < 3; ++k)
    EXPECT_NEAR(intervals[k], std::sqrt(2.0 * costs[k] / lv[k]), 1e-12);
  // Zero rate => never checkpoint that level.
  const std::vector<double> zero_mid{lv[0], 0.0, lv[2]};
  const auto inf = tiered_optimal_intervals(costs, zero_mid);
  EXPECT_TRUE(std::isinf(inf[1]));
}

TEST(TieredModel, TieredOverheadBeatsSingleLevelSyncAt2048Ranks) {
  // The headline claim at paper scale: hierarchy overhead < single-level
  // sync overhead, because most failures are cheap (L1/L2) and the PFS is
  // amortized over a long L3 interval.
  const ClusterModel cl;  // 2,048 ranks
  const double bytes = 78.8e9;
  const double lambda = 1.0 / 3600.0;
  const double t_sync = cl.write_seconds(bytes);
  const double sync_overhead = expected_overhead_ratio(t_sync, lambda);

  const auto lambdas = severity_tier_lambdas(lambda, kDefaultSeverityWeights);
  const std::vector<double> costs{cl.stage_seconds(bytes),
                                  cl.partner_write_seconds(bytes),
                                  cl.write_seconds(bytes)};
  const std::vector<double> lv{lambdas[0], lambdas[1], lambdas[2]};
  const auto intervals = tiered_optimal_intervals(costs, lv);
  const std::vector<double> recovery{
      cl.local_read_seconds(bytes),
      cl.partner_read_seconds(bytes) + cl.read_seconds(0.25 * bytes),
      cl.read_seconds(1.25 * bytes)};
  const double tiered_overhead =
      expected_overhead_ratio_tiered(costs, intervals, lv, recovery);
  EXPECT_LT(tiered_overhead, sync_overhead);
  EXPECT_GT(tiered_overhead, 0.0);
}

TEST(TieredModel, TieredBlockingAtMostAsyncSingleLevelAt2048Ranks) {
  // Acceptance check (model level, matches bench/fig_tiered_ckpt): per
  // checkpoint, the tiered L1 drain is far shorter than the PFS drain, so
  // with the same interval the tiered blocking cost never exceeds the
  // async single-level one.
  const ClusterModel cl;
  const double bytes = 78.8e9;
  const double interval = young_interval_seconds(cl.write_seconds(bytes),
                                                 3600.0);
  const double t_stage = cl.stage_seconds(bytes);
  const double async_blk =
      async_blocking_seconds(t_stage, cl.write_seconds(bytes), interval);
  const double tiered_blk =
      async_blocking_seconds(t_stage, cl.local_write_seconds(bytes), interval);
  EXPECT_LE(tiered_blk, async_blk + 1e-12);
}

// ----- runner: kTiered mode -------------------------------------------------

ResilienceConfig tiered_config(CkptScheme scheme) {
  ResilienceConfig cfg;
  cfg.scheme = scheme;
  cfg.ckpt_mode = CkptMode::kTiered;
  cfg.policy.interval_seconds = 20.0;
  cfg.failure.mtti_seconds = 60.0;  // aggressive failures for coverage
  cfg.iteration_seconds = 5.0;
  cfg.failure.seed = 7;
  cfg.dynamic_scale = 1.0;
  cfg.cluster.ranks = 64;
  cfg.cluster.pfs_per_rank_overhead = 0.001;
  cfg.static_bytes = 1e6;
  cfg.tiered.l2_promote_every = 1;
  cfg.tiered.l3_promote_every = 2;
  return cfg;
}

double true_rel_residual(const CsrMatrix& a, const Vector& b,
                         const Vector& x) {
  Vector r(b.size());
  a.residual(b, x, r);
  return norm2(r) / norm2(b);
}

class TieredRunnerScheme : public ::testing::TestWithParam<CkptScheme> {};

TEST_P(TieredRunnerScheme, ConvergesUnderMixedSeverityFailures) {
  const LocalProblem p = make_local_problem("cg", 8, 1e-8);
  auto solver = p.make_solver();
  ResilienceConfig cfg = tiered_config(GetParam());
  ResilientRunner runner(*solver, cfg);
  const auto res = runner.run();
  EXPECT_TRUE(res.converged) << to_string(GetParam());
  EXPECT_GT(res.failures, 0) << "test should exercise failures";
  int by_sev = 0;
  for (const int n : res.failures_by_severity) by_sev += n;
  EXPECT_EQ(by_sev, res.failures) << "severity counts must partition failures";
  int by_tier = 0;
  for (const int n : res.recoveries_by_tier) by_tier += n;
  EXPECT_LE(by_tier, res.recoveries);  // global restarts have no tier
  EXPECT_LE(true_rel_residual(p.a, p.b, solver->solution()), 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Schemes, TieredRunnerScheme,
                         ::testing::Values(CkptScheme::kTraditional,
                                           CkptScheme::kLossless,
                                           CkptScheme::kLossy),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

TEST(TieredRunner, ProcessOnlyFailuresRecoverFromL1) {
  const LocalProblem p = make_local_problem("cg", 8, 1e-8);
  auto solver = p.make_solver();
  ResilienceConfig cfg = tiered_config(CkptScheme::kLossy);
  cfg.failure.severity_weights = {1.0, 0.0, 0.0, 0.0};
  ResilientRunner runner(*solver, cfg);
  const auto res = runner.run();
  EXPECT_TRUE(res.converged);
  EXPECT_GT(res.failures, 0);
  EXPECT_EQ(res.failures_by_severity[0], res.failures);
  EXPECT_EQ(res.recoveries_by_tier[1], 0);
  EXPECT_EQ(res.recoveries_by_tier[2], 0);
  EXPECT_GT(res.recoveries_by_tier[0], 0);
}

TEST(TieredRunner, SystemFailuresRecoverOnlyFromPfsTier) {
  const LocalProblem p = make_local_problem("cg", 8, 1e-8);
  auto solver = p.make_solver();
  ResilienceConfig cfg = tiered_config(CkptScheme::kTraditional);
  cfg.failure.severity_weights = {0.0, 0.0, 0.0, 1.0};
  cfg.tiered.l3_promote_every = 1;  // give L3 every version
  cfg.failure.mtti_seconds = 120.0;
  ResilientRunner runner(*solver, cfg);
  const auto res = runner.run();
  EXPECT_TRUE(res.converged);
  EXPECT_GT(res.failures, 0);
  EXPECT_EQ(res.failures_by_severity[3], res.failures);
  EXPECT_EQ(res.recoveries_by_tier[0], 0);
  EXPECT_EQ(res.recoveries_by_tier[1], 0);
  EXPECT_LE(true_rel_residual(p.a, p.b, solver->solution()), 1e-7);
}

TEST(TieredRunner, BlockingCostAtMostAsyncSingleLevel) {
  // Same failure-free run in async single-level and tiered mode: the
  // blocking portion may not grow — the L1 drain is shorter than the PFS
  // drain, so tiered back-pressure can only be rarer.
  const LocalProblem p = make_local_problem("cg", 8, 1e-8);
  ResilienceConfig base = tiered_config(CkptScheme::kTraditional);
  base.failure.inject = false;
  base.cluster.pfs_write_bw = 1e5;  // slow PFS: async mode back-pressures

  ResilienceConfig async_cfg = base;
  async_cfg.ckpt_mode = CkptMode::kAsync;
  auto s1 = p.make_solver();
  const auto async_res = ResilientRunner(*s1, async_cfg).run();

  auto s2 = p.make_solver();
  const auto tiered_res = ResilientRunner(*s2, base).run();

  ASSERT_GT(async_res.checkpoints, 0);
  ASSERT_GT(tiered_res.checkpoints, 0);
  EXPECT_LE(tiered_res.ckpt_seconds_total, async_res.ckpt_seconds_total);
  EXPECT_LT(tiered_res.backpressure_seconds_total,
            async_res.backpressure_seconds_total + 1e-12);
  EXPECT_GT(tiered_res.promotions_completed, 0);
  EXPECT_GT(tiered_res.promotion_seconds_total, 0.0);
}

TEST(TieredRunner, BitStableAcrossRerunsForFixedSeed) {
  const LocalProblem p = make_local_problem("cg", 7, 1e-8);
  ResilienceConfig cfg = tiered_config(CkptScheme::kLossy);
  cfg.failure.seed = 31;

  auto s1 = p.make_solver();
  const auto r1 = ResilientRunner(*s1, cfg).run();
  auto s2 = p.make_solver();
  const auto r2 = ResilientRunner(*s2, cfg).run();

  EXPECT_EQ(r1.failures, r2.failures);
  EXPECT_EQ(r1.failures_by_severity, r2.failures_by_severity);
  EXPECT_EQ(r1.recoveries_by_tier, r2.recoveries_by_tier);
  EXPECT_EQ(r1.executed_steps, r2.executed_steps);
  EXPECT_EQ(r1.checkpoints, r2.checkpoints);
  EXPECT_EQ(r1.promotions_completed, r2.promotions_completed);
  EXPECT_DOUBLE_EQ(r1.virtual_seconds, r2.virtual_seconds);
  EXPECT_DOUBLE_EQ(r1.ckpt_seconds_total, r2.ckpt_seconds_total);
  EXPECT_DOUBLE_EQ(r1.promotion_seconds_total, r2.promotion_seconds_total);
}

TEST(TieredRunner, VirtualClockDecomposesExactly) {
  // Failure-free (a failure jumps the clock mid-iteration, so the lost
  // partial work is deliberately in no bucket — same as the async test).
  const LocalProblem p = make_local_problem("cg", 8, 1e-8);
  auto solver = p.make_solver();
  ResilienceConfig cfg = tiered_config(CkptScheme::kLossy);
  cfg.failure.inject = false;
  ResilientRunner runner(*solver, cfg);
  const auto res = runner.run();
  EXPECT_TRUE(res.converged);
  EXPECT_NEAR(res.virtual_seconds,
              static_cast<double>(res.executed_steps) * cfg.iteration_seconds +
                  res.ckpt_seconds_total + res.recovery_seconds_total,
              1e-9);
}

}  // namespace
}  // namespace lck

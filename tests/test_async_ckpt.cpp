/// Asynchronous (staged) checkpoint pipeline tests: stage/drain/commit and
/// abort semantics at the manager level, double-buffer back-pressure on the
/// real writer thread, pending-vs-committed store states, retention
/// interplay, and the ResilientRunner async mode (failure during drain
/// recovers from the previous committed version, bit-stable reruns, and the
/// blocking-time win over sync).

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <bit>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <filesystem>
#include <mutex>
#include <thread>

#include "ckpt/async_writer.hpp"
#include "ckpt/checkpoint_manager.hpp"
#include "common/rng.hpp"
#include "core/experiment.hpp"
#include "core/resilient_runner.hpp"
#include "sparse/vector_ops.hpp"

namespace lck {
namespace {

Vector random_vector(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Vector v(n);
  for (auto& x : v) x = rng.uniform(-5.0, 5.0);
  return v;
}

// ----- AsyncCheckpointWriter ------------------------------------------------

TEST(AsyncWriter, RunsJobsInOrderAndReturnsRecords) {
  AsyncCheckpointWriter w;
  std::atomic<int> order{0};
  int first = -1, second = -1;
  w.submit(0, [&] {
    first = order.fetch_add(1);
    CheckpointRecord rec;
    rec.version = 0;
    rec.stored_bytes = 11;
    return rec;
  });
  w.submit(1, [&] {
    second = order.fetch_add(1);
    CheckpointRecord rec;
    rec.version = 1;
    rec.stored_bytes = 22;
    return rec;
  });
  EXPECT_EQ(w.wait(1).stored_bytes, 22u);
  EXPECT_EQ(w.wait(0).stored_bytes, 11u);
  EXPECT_EQ(first, 0);
  EXPECT_EQ(second, 1);
}

TEST(AsyncWriter, PropagatesJobExceptions) {
  AsyncCheckpointWriter w;
  w.submit(5, []() -> CheckpointRecord {
    throw corrupt_stream_error("drain blew up");
  });
  EXPECT_THROW((void)w.wait(5), corrupt_stream_error);
}

TEST(AsyncWriter, DestructorDrainsQueuedJobs) {
  std::atomic<int> ran{0};
  {
    AsyncCheckpointWriter w;
    for (int v = 0; v < 8; ++v)
      w.submit(v, [&ran] {
        ++ran;
        return CheckpointRecord{};
      });
  }
  EXPECT_EQ(ran.load(), 8);
}

// ----- manager: stage/drain/commit ------------------------------------------

TEST(AsyncManager, StagedStreamIsBitIdenticalToSyncCheckpoint) {
  // Same protected values must serialize to the same bytes on both paths,
  // so sync and async recoveries are interchangeable.
  Vector x = random_vector(4000, 1);
  std::vector<byte_t> blob{1, 2, 3, 4};

  auto sync_store = std::make_unique<MemoryStore>();
  auto* sync_raw = sync_store.get();
  NoneCompressor none;
  CheckpointManager sync_mgr(std::move(sync_store), &none);
  sync_mgr.protect(0, "x", &x);
  sync_mgr.protect_blob(1, "s", &blob);
  sync_mgr.checkpoint();

  auto async_store = std::make_unique<MemoryStore>();
  auto* async_raw = async_store.get();
  CheckpointManager async_mgr(std::move(async_store), &none);
  async_mgr.protect(0, "x", &x);
  async_mgr.protect_blob(1, "s", &blob);
  const StageTicket ticket = async_mgr.stage();
  EXPECT_EQ(ticket.version, 0);
  EXPECT_EQ(ticket.raw_bytes, 4000 * sizeof(double) + 4);
  const CheckpointRecord rec = async_mgr.wait_drain(ticket.version);
  async_mgr.commit_version(ticket.version);

  EXPECT_EQ(sync_raw->read(0), async_raw->read(0));
  EXPECT_EQ(rec.stored_bytes, sync_raw->read(0).size());
}

TEST(AsyncManager, StagingIsolatesFromLaterMutation) {
  // Values mutated after stage() must not leak into the drained version.
  NoneCompressor none;
  CheckpointManager mgr(std::make_unique<MemoryStore>(), &none);
  Vector x(100, 1.0);
  mgr.protect(0, "x", &x);
  const StageTicket ticket = mgr.stage();
  x.assign(100, 7.0);  // solver keeps iterating while the drain runs
  mgr.wait_drain(ticket.version);
  mgr.commit_version(ticket.version);
  mgr.recover();
  EXPECT_DOUBLE_EQ(x[0], 1.0);
}

TEST(AsyncManager, PendingVersionInvisibleUntilCommit) {
  NoneCompressor none;
  auto store = std::make_unique<MemoryStore>();
  auto* store_raw = store.get();
  CheckpointManager mgr(std::move(store), &none);
  Vector x(50, 2.0);
  mgr.protect(0, "x", &x);

  const StageTicket ticket = mgr.stage();
  mgr.wait_drain(ticket.version);
  EXPECT_FALSE(mgr.has_checkpoint());
  EXPECT_EQ(mgr.latest_version(), -1);
  EXPECT_TRUE(store_raw->has_pending(ticket.version));

  mgr.commit_version(ticket.version);
  EXPECT_TRUE(mgr.has_checkpoint());
  EXPECT_EQ(mgr.latest_version(), ticket.version);
  EXPECT_FALSE(store_raw->has_pending(ticket.version));
}

TEST(AsyncManager, AbortDuringDrainRecoversPreviousCommittedVersion) {
  NoneCompressor none;
  CheckpointManager mgr(std::make_unique<MemoryStore>(), &none);
  mgr.set_retention(2);
  Vector x(100, 1.0);
  mgr.protect(0, "x", &x);

  // v0 commits normally.
  const StageTicket t0 = mgr.stage();
  mgr.wait_drain(t0.version);
  mgr.commit_version(t0.version);

  // v1's drain is interrupted by a "failure": abort instead of commit.
  x.assign(100, 2.0);
  const StageTicket t1 = mgr.stage();
  mgr.wait_drain(t1.version);
  mgr.abort_version(t1.version);
  EXPECT_FALSE(mgr.store().has_pending(t1.version));
  EXPECT_EQ(mgr.latest_version(), t0.version);

  x.assign(100, 0.0);
  mgr.recover();
  EXPECT_DOUBLE_EQ(x[0], 1.0);  // v0's state, not v1's

  // The version counter does not reuse the aborted slot.
  x.assign(100, 3.0);
  const StageTicket t2 = mgr.stage();
  EXPECT_EQ(t2.version, t1.version + 1);
  mgr.wait_drain(t2.version);
  mgr.commit_version(t2.version);
  x.assign(100, 9.0);
  mgr.recover();
  EXPECT_DOUBLE_EQ(x[0], 3.0);
}

TEST(AsyncManager, DestructionJoinsInFlightDrainsAndAbortsUndecided) {
  // Destroying the manager with a drain still in flight must join the
  // worker before the staging slots and store are torn down (no use-after-
  // free; exercised under TSan in CI), and undecided versions roll back so
  // no .lck.pending file outlives the manager.
  const auto dir = std::filesystem::temp_directory_path() /
                   ("lckpt_async_dtor_" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  NoneCompressor none;
  {
    CheckpointManager mgr(std::make_unique<DiskStore>(dir.string()), &none);
    Vector x(1u << 20, 1.5);
    mgr.protect(0, "x", &x);
    (void)mgr.stage();
  }  // dtor joins the drain and aborts the undecided version
  DiskStore reopened(dir.string());
  EXPECT_EQ(reopened.latest_version(), -1);
  EXPECT_FALSE(reopened.has_pending(0));
  std::filesystem::remove_all(dir);
}

TEST(AsyncManager, RetentionPrunesOnlyCommittedVersions) {
  NoneCompressor none;
  CheckpointManager mgr(std::make_unique<MemoryStore>(), &none);
  mgr.set_retention(2);
  Vector x(10, 0.0);
  mgr.protect(0, "x", &x);

  for (int v = 0; v < 3; ++v) {
    const StageTicket t = mgr.stage();
    mgr.wait_drain(t.version);
    mgr.commit_version(t.version);
  }
  // retention 2 after committing v0..v2: v0 pruned.
  EXPECT_FALSE(mgr.store().exists(0));
  EXPECT_TRUE(mgr.store().exists(1));
  EXPECT_TRUE(mgr.store().exists(2));

  // A pending drain is not pruned by a later... (cannot happen with the
  // double buffer's in-order commits, but the store must not count pending
  // versions as committed either way).
  const StageTicket t3 = mgr.stage();
  mgr.wait_drain(t3.version);
  EXPECT_TRUE(mgr.store().has_pending(3));
  EXPECT_EQ(mgr.latest_version(), 2);
  mgr.commit_version(t3.version);
  EXPECT_FALSE(mgr.store().exists(1));  // pruned by v3's commit
  EXPECT_TRUE(mgr.store().exists(2));
  EXPECT_TRUE(mgr.store().exists(3));
}

TEST(AsyncManager, RetentionPrunesAcrossAbortGaps) {
  // An aborted drain leaves a hole in the version sequence; pruning must
  // step over it instead of stopping, or stale versions pile up forever.
  NoneCompressor none;
  CheckpointManager mgr(std::make_unique<MemoryStore>(), &none);
  mgr.set_retention(1);
  Vector x(10, 0.0);
  mgr.protect(0, "x", &x);

  const StageTicket t0 = mgr.stage();
  mgr.wait_drain(t0.version);
  mgr.commit_version(t0.version);  // committed v0

  const StageTicket t1 = mgr.stage();
  mgr.wait_drain(t1.version);
  mgr.abort_version(t1.version);  // hole at v1

  const StageTicket t2 = mgr.stage();
  mgr.wait_drain(t2.version);
  mgr.commit_version(t2.version);  // committed v2: v0 must go despite the hole
  EXPECT_FALSE(mgr.store().exists(t0.version));
  EXPECT_TRUE(mgr.store().exists(t2.version));
}

TEST(AsyncManager, OutOfOrderCommitStillHonoursRetention) {
  // The double buffer allows two drains in flight; committing the newer
  // one first must not exempt the older from retention pruning.
  NoneCompressor none;
  CheckpointManager mgr(std::make_unique<MemoryStore>(), &none);
  mgr.set_retention(1);
  Vector x(32, 4.0);
  mgr.protect(0, "x", &x);

  const StageTicket t0 = mgr.stage();
  const StageTicket t1 = mgr.stage();
  mgr.wait_drain(t0.version);
  mgr.wait_drain(t1.version);
  mgr.commit_version(t1.version);  // newer first
  mgr.commit_version(t0.version);  // superseded: pruned immediately
  EXPECT_EQ(mgr.latest_version(), t1.version);
  EXPECT_FALSE(mgr.store().exists(t0.version));
  EXPECT_TRUE(mgr.store().exists(t1.version));
}

/// Compressor whose compress() always throws — drives the drain-failure
/// path through the writer and the staging slots.
class ThrowingCompressor final : public Compressor {
 public:
  [[nodiscard]] std::string name() const override { return "throwing"; }
  [[nodiscard]] bool lossy() const noexcept override { return false; }
  [[nodiscard]] std::vector<byte_t> compress(
      std::span<const double>) const override {
    throw corrupt_stream_error("compressor failure during drain");
  }
  void decompress(std::span<const byte_t>, std::span<double>) const override {
    throw corrupt_stream_error("unreachable");
  }
};

TEST(AsyncManager, DrainExceptionFreesStagingSlotAndPropagates) {
  // Three failing drains in a row: without slot release on the exception
  // path the third stage() would deadlock on the exhausted double buffer.
  ThrowingCompressor bad;
  CheckpointManager mgr(std::make_unique<MemoryStore>(), &bad);
  mgr.set_block_pipeline(0);
  Vector x(64, 1.0);
  mgr.protect(0, "x", &x);
  for (int round = 0; round < 3; ++round) {
    const StageTicket t = mgr.stage();
    EXPECT_THROW((void)mgr.wait_drain(t.version), corrupt_stream_error);
    mgr.abort_version(t.version);
    EXPECT_FALSE(mgr.store().has_pending(t.version));
  }
  EXPECT_EQ(mgr.versions_in_flight(), 0);
  EXPECT_FALSE(mgr.has_checkpoint());
}

TEST(AsyncManager, LossyStagedCheckpointHonoursErrorBound) {
  const ErrorBound eb = ErrorBound::pointwise_rel(1e-4);
  const auto sz = make_compressor("sz", eb);
  CheckpointManager mgr(std::make_unique<MemoryStore>(), sz.get());
  Vector x(20000);
  for (std::size_t i = 0; i < x.size(); ++i)
    x[i] = std::sin(0.001 * static_cast<double>(i)) + 2.0;
  const Vector original = x;
  mgr.protect(0, "x", &x);

  const StageTicket t = mgr.stage();
  const CheckpointRecord rec = mgr.wait_drain(t.version);
  EXPECT_LT(rec.stored_bytes * 5, rec.raw_bytes);  // actually compressed
  mgr.commit_version(t.version);
  x.assign(x.size(), 0.0);
  mgr.recover();
  for (std::size_t i = 0; i < x.size(); ++i)
    ASSERT_LE(std::fabs(x[i] - original[i]),
              1e-4 * std::fabs(original[i]) + 1e-300);
}

// ----- double-buffer back-pressure ------------------------------------------

/// Compressor whose compress() blocks until released — lets the test hold a
/// drain open deterministically to exercise slot back-pressure for real.
/// Every wait is bounded by a generous deadline: on a loaded single-core
/// container the worker thread can be scheduled very late, but a wait that
/// exceeds the deadline is a genuine hang and must fail the test rather
/// than wedge the whole CTest run.
class GateCompressor final : public Compressor {
 public:
  static constexpr auto kDeadline = std::chrono::seconds(60);

  [[nodiscard]] std::string name() const override { return "none"; }
  [[nodiscard]] bool lossy() const noexcept override { return false; }
  [[nodiscard]] std::vector<byte_t> compress(
      std::span<const double> data) const override {
    {
      std::unique_lock<std::mutex> lock(mu_);
      ++entered_;
      cv_.notify_all();
      if (!cv_.wait_for(lock, kDeadline, [&] { return open_; }))
        throw corrupt_stream_error("gate compressor: deadline expired");
    }
    return none_.compress(data);
  }
  void decompress(std::span<const byte_t> stream,
                  std::span<double> out) const override {
    none_.decompress(stream, out);
  }
  void open() {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      open_ = true;
    }
    cv_.notify_all();
  }
  [[nodiscard]] bool wait_entered(int n) {
    std::unique_lock<std::mutex> lock(mu_);
    return cv_.wait_for(lock, kDeadline, [&] { return entered_ >= n; });
  }

 private:
  NoneCompressor none_;
  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
  mutable int entered_ = 0;
  bool open_ = false;
};

TEST(AsyncManager, ThirdStageBlocksUntilASlotDrains) {
  GateCompressor gate;
  CheckpointManager mgr(std::make_unique<MemoryStore>(), &gate);
  // Keep the manager's automatic block pipeline out of the way so the gate
  // compressor sees exactly one compress() call per stage.
  mgr.set_block_pipeline(0);
  Vector x(64, 1.0);
  mgr.protect(0, "x", &x);

  const StageTicket t0 = mgr.stage();  // worker enters the gate
  ASSERT_TRUE(gate.wait_entered(1)) << "drain never reached the compressor";
  const StageTicket t1 = mgr.stage();  // second slot: stages fine

  std::atomic<bool> third_staged{false};
  std::thread t([&] {
    (void)mgr.stage();  // both slots busy: must block until the gate opens
    third_staged = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(third_staged.load()) << "third stage() must back-pressure";

  gate.open();
  t.join();
  EXPECT_TRUE(third_staged.load());
  for (const int v : {t0.version, t1.version, t1.version + 1}) {
    mgr.wait_drain(v);
    mgr.commit_version(v);
  }
  EXPECT_EQ(mgr.latest_version(), t1.version + 1);
}

// ----- stores: pending state across both backends ---------------------------

TEST(AsyncStore, DiskCommitIsRenameOnlyAndStalePendingIsSweptOnReopen) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("lckpt_async_disk_" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  {
    DiskStore store(dir.string());
    store.write_pending(3, std::vector<byte_t>{1, 2});
    store.commit(3);  // rename .lck.pending -> .lck
    EXPECT_EQ(store.latest_version(), 3);
    EXPECT_EQ(store.read(3), (std::vector<byte_t>{1, 2}));

    store.write_pending(4, std::vector<byte_t>{9, 8, 7});
    EXPECT_TRUE(store.has_pending(4));
    EXPECT_EQ(store.latest_version(), 3);  // pending is invisible
  }  // "crash" with version 4 still pending
  {
    DiskStore reopened(dir.string());
    // The uncommitted leftover was swept; committed state is untouched.
    EXPECT_FALSE(reopened.has_pending(4));
    EXPECT_EQ(reopened.latest_version(), 3);
    EXPECT_THROW(reopened.commit(4), config_error);
  }
  std::filesystem::remove_all(dir);
}

TEST(AsyncStore, AbortDropsPendingWithoutTouchingCommitted) {
  MemoryStore store;
  store.write(0, std::vector<byte_t>{1});
  store.write_pending(1, std::vector<byte_t>{2});
  store.abort(1);
  EXPECT_FALSE(store.has_pending(1));
  EXPECT_EQ(store.latest_version(), 0);
  EXPECT_THROW(store.commit(1), config_error);
}

// ----- runner: async mode ---------------------------------------------------

ResilienceConfig async_config(CkptScheme scheme) {
  ResilienceConfig cfg;
  cfg.scheme = scheme;
  cfg.ckpt_mode = CkptMode::kAsync;
  cfg.policy.interval_seconds = 20.0;
  cfg.failure.mtti_seconds = 60.0;  // aggressive failures for coverage
  cfg.iteration_seconds = 5.0;
  cfg.failure.seed = 7;
  cfg.dynamic_scale = 1.0;
  cfg.cluster.ranks = 64;
  cfg.cluster.pfs_per_rank_overhead = 0.001;
  cfg.static_bytes = 1e6;
  return cfg;
}

double true_rel_residual(const CsrMatrix& a, const Vector& b,
                         const Vector& x) {
  Vector r(b.size());
  a.residual(b, x, r);
  return norm2(r) / norm2(b);
}

class AsyncRunnerScheme : public ::testing::TestWithParam<CkptScheme> {};

TEST_P(AsyncRunnerScheme, ConvergesUnderFailures) {
  const LocalProblem p = make_local_problem("cg", 8, 1e-8);
  auto solver = p.make_solver();
  ResilienceConfig cfg = async_config(GetParam());
  ResilientRunner runner(*solver, cfg);
  const auto res = runner.run();
  EXPECT_TRUE(res.converged) << to_string(GetParam());
  EXPECT_GT(res.failures, 0) << "test should exercise failures";
  EXPECT_LE(true_rel_residual(p.a, p.b, solver->solution()), 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Schemes, AsyncRunnerScheme,
                         ::testing::Values(CkptScheme::kTraditional,
                                           CkptScheme::kLossless,
                                           CkptScheme::kLossy),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

TEST(AsyncRunner, FailureDuringDrainFallsBackToCommittedVersion) {
  // Make every drain much longer than the checkpoint interval so failures
  // regularly strike inside drain windows; the run must keep converging by
  // recovering from older committed versions (and count the aborts).
  const LocalProblem p = make_local_problem("cg", 8, 1e-8);
  auto solver = p.make_solver();
  ResilienceConfig cfg = async_config(CkptScheme::kTraditional);
  cfg.cluster.pfs_write_bw = 100.0;  // glacial PFS: drains span intervals
  cfg.failure.mtti_seconds = 120.0;
  cfg.failure.seed = 3;
  ResilientRunner runner(*solver, cfg);
  const auto res = runner.run();
  EXPECT_TRUE(res.converged);
  EXPECT_GT(res.failures, 0);
  EXPECT_GT(res.aborted_drains, 0)
      << "config should force failures inside drain windows";
  EXPECT_LE(true_rel_residual(p.a, p.b, solver->solution()), 1e-7);
}

TEST(AsyncRunner, BackpressureAccruesWhenDrainOutlivesInterval) {
  const LocalProblem p = make_local_problem("cg", 8, 1e-8);
  auto solver = p.make_solver();
  ResilienceConfig cfg = async_config(CkptScheme::kTraditional);
  cfg.failure.inject = false;
  cfg.cluster.pfs_write_bw = 100.0;  // drain ≫ interval ⇒ every stage waits
  ResilientRunner runner(*solver, cfg);
  const auto res = runner.run();
  EXPECT_TRUE(res.converged);
  ASSERT_GT(res.checkpoints, 1);
  EXPECT_GT(res.backpressure_seconds_total, 0.0);
  // Blocking time decomposition stays exact under back-pressure.
  EXPECT_NEAR(res.virtual_seconds,
              static_cast<double>(res.executed_steps) * cfg.iteration_seconds +
                  res.ckpt_seconds_total + res.recovery_seconds_total,
              1e-9);
  // Only genuinely concurrent drain work counts as overlapped: it can
  // never exceed the iteration time it overlapped with, and the
  // back-pressured tails are charged as blocking time, not here.
  EXPECT_LE(res.ckpt_drain_seconds_total,
            static_cast<double>(res.executed_steps) * cfg.iteration_seconds);
}

TEST(AsyncRunner, BlockingCheckpointTimeDropsVsSync) {
  // The acceptance metric: same run, sync vs async — the blocking portion
  // (ckpt_seconds_total) must shrink, and the drain must move off the
  // critical path (shorter total virtual time).
  const LocalProblem p = make_local_problem("cg", 8, 1e-8);

  ResilienceConfig sync_cfg = async_config(CkptScheme::kTraditional);
  sync_cfg.ckpt_mode = CkptMode::kSync;
  sync_cfg.failure.inject = false;
  auto s1 = p.make_solver();
  const auto sync_res = ResilientRunner(*s1, sync_cfg).run();

  ResilienceConfig async_cfg_ = async_config(CkptScheme::kTraditional);
  async_cfg_.failure.inject = false;
  auto s2 = p.make_solver();
  const auto async_res = ResilientRunner(*s2, async_cfg_).run();

  ASSERT_GT(sync_res.checkpoints, 0);
  ASSERT_GT(async_res.checkpoints, 0);
  EXPECT_LT(async_res.ckpt_seconds_total, 0.5 * sync_res.ckpt_seconds_total);
  EXPECT_LT(async_res.virtual_seconds, sync_res.virtual_seconds);
  EXPECT_GT(async_res.ckpt_drain_seconds_total, 0.0);
}

TEST(AsyncRunner, RecoveredStateMatchesSyncForSameCheckpointData) {
  // Recovery itself is mode-agnostic: a checkpoint drained asynchronously
  // restores exactly the state a synchronous checkpoint of the same values
  // would. (Verified at the manager layer bit-for-bit; here end-to-end.)
  const LocalProblem p = make_local_problem("jacobi", 6, 1e-8);

  auto sync_solver = p.make_solver();
  for (int i = 0; i < 40; ++i) sync_solver->step();
  NoneCompressor none;
  Vector sync_x = sync_solver->solution();

  auto async_solver = p.make_solver();
  for (int i = 0; i < 40; ++i) async_solver->step();
  Vector async_x = async_solver->solution();

  CheckpointManager sync_mgr(std::make_unique<MemoryStore>(), &none);
  sync_mgr.protect(0, "x", &sync_x);
  sync_mgr.checkpoint();

  CheckpointManager async_mgr(std::make_unique<MemoryStore>(), &none);
  async_mgr.protect(0, "x", &async_x);
  const StageTicket t = async_mgr.stage();
  async_mgr.wait_drain(t.version);
  async_mgr.commit_version(t.version);

  sync_x.assign(sync_x.size(), 0.0);
  async_x.assign(async_x.size(), 0.0);
  sync_mgr.recover();
  async_mgr.recover();
  EXPECT_EQ(sync_x, async_x);
}

TEST(AsyncRunner, BitStableAcrossRerunsForFixedSeed) {
  const LocalProblem p = make_local_problem("cg", 7, 1e-8);
  ResilienceConfig cfg = async_config(CkptScheme::kLossy);
  cfg.failure.seed = 31;

  auto s1 = p.make_solver();
  const auto r1 = ResilientRunner(*s1, cfg).run();
  auto s2 = p.make_solver();
  const auto r2 = ResilientRunner(*s2, cfg).run();

  EXPECT_EQ(r1.failures, r2.failures);
  EXPECT_EQ(r1.executed_steps, r2.executed_steps);
  EXPECT_EQ(r1.checkpoints, r2.checkpoints);
  EXPECT_EQ(r1.aborted_drains, r2.aborted_drains);
  EXPECT_DOUBLE_EQ(r1.virtual_seconds, r2.virtual_seconds);
  EXPECT_DOUBLE_EQ(r1.ckpt_seconds_total, r2.ckpt_seconds_total);
  EXPECT_DOUBLE_EQ(r1.ckpt_drain_seconds_total, r2.ckpt_drain_seconds_total);
  // The recovered solver state itself is bit-stable.
  const Vector& x1 = s1->solution();
  const Vector& x2 = s2->solution();
  ASSERT_EQ(x1.size(), x2.size());
  for (std::size_t i = 0; i < x1.size(); ++i)
    ASSERT_EQ(std::bit_cast<std::uint64_t>(x1[i]),
              std::bit_cast<std::uint64_t>(x2[i]));
}

TEST(AsyncRunner, RetentionTwoSurvivesAbortedDrains) {
  // retention=2 with pending versions: after an aborted drain the previous
  // committed version must still exist (never pruned out from under us).
  const LocalProblem p = make_local_problem("jacobi", 6, 1e-6);
  auto solver = p.make_solver();
  ResilienceConfig cfg = async_config(CkptScheme::kLossy);
  cfg.cluster.pfs_write_bw = 5e4;
  cfg.failure.mtti_seconds = 90.0;
  cfg.failure.seed = 19;
  ResilientRunner runner(*solver, cfg);
  const auto res = runner.run();
  EXPECT_TRUE(res.converged);
  EXPECT_LE(true_rel_residual(p.a, p.b, solver->solution()), 1.2e-6);
}

}  // namespace
}  // namespace lck

/// Observability layer tests: registry semantics (concurrency, buckets,
/// label identity, snapshot determinism), the ScopedTimer/pass-counter
/// helpers, trace recorder content, and the two contracts the layer makes
/// to the rest of the library — exact agreement between the registry and
/// the legacy ResilienceResult accounting, and bit-stable simulation
/// results whether observability is on or off.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "ckpt/checkpoint_manager.hpp"
#include "common/timer.hpp"
#include "core/experiment.hpp"
#include "core/resilient_runner.hpp"
#include "obs/metrics.hpp"
#include "obs/observability.hpp"
#include "obs/pass_counter.hpp"
#include "obs/trace.hpp"
#include "sparse/vector_ops.hpp"

namespace lck {
namespace {

// ----- MetricsRegistry ------------------------------------------------------

TEST(Metrics, CountersAndGauges) {
  obs::MetricsRegistry reg;
  reg.add("a", 2.0);
  reg.add("a", 3.0);
  reg.add("a", 1.0, {{"k", "v"}});
  reg.set_gauge("g", 7.0);
  reg.set_gauge("g", 9.0);  // last writer wins

  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.counter("a"), 5.0);
  EXPECT_EQ(snap.counter("a{k=v}"), 1.0);
  EXPECT_EQ(snap.counter_total("a"), 6.0);
  EXPECT_EQ(snap.gauges.at("g"), 9.0);
  EXPECT_EQ(snap.counter("missing"), 0.0);
  EXPECT_EQ(snap.histogram("missing"), nullptr);
}

TEST(Metrics, ConcurrentAddsFromEightThreads) {
  obs::MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kOps = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&reg] {
      for (int i = 0; i < kOps; ++i) {
        reg.add("c", 1.0);
        reg.observe("h", 1.0, {{"tier", "L2"}});
      }
    });
  for (auto& t : threads) t.join();

  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.counter("c"), static_cast<double>(kThreads * kOps));
  const auto* h = snap.histogram("h{tier=L2}");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, static_cast<std::uint64_t>(kThreads * kOps));
  EXPECT_EQ(h->sum, static_cast<double>(kThreads * kOps));
}

TEST(Metrics, HistogramBucketBoundaries) {
  obs::MetricsRegistry reg;
  // Exact powers of two are their own upper bound; anything in (2^k, 2^k+1]
  // lands at 2^(k+1); non-positive values get the 0 bucket.
  reg.observe("h", 1.0);   // -> bucket 1
  reg.observe("h", 2.0);   // -> bucket 2
  reg.observe("h", 1.5);   // -> bucket 2
  reg.observe("h", 3.0);   // -> bucket 4
  reg.observe("h", 0.0);   // -> bucket 0
  reg.observe("h", -2.5);  // -> bucket 0
  reg.observe("h", 0.25);  // -> bucket 0.25

  const auto snap = reg.snapshot();
  const auto* h = snap.histogram("h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 7u);
  EXPECT_EQ(h->min, -2.5);
  EXPECT_EQ(h->max, 3.0);
  const std::vector<std::pair<double, std::uint64_t>> want{
      {0.0, 2}, {0.25, 1}, {1.0, 1}, {2.0, 2}, {4.0, 1}};
  EXPECT_EQ(h->buckets, want);
}

TEST(Metrics, LabelOrderDoesNotSplitSeries) {
  obs::MetricsRegistry reg;
  reg.add("x", 1.0, {{"tier", "L2"}, {"codec", "sz"}});
  reg.add("x", 1.0, {{"codec", "sz"}, {"tier", "L2"}});
  const auto snap = reg.snapshot();
  // Canonical suffix sorts by key, so both adds hit one series.
  EXPECT_EQ(snap.counter("x{codec=sz,tier=L2}"), 2.0);
  EXPECT_EQ(snap.counters.size(), 1u);

  const obs::LabelSet a{{"b", "2"}, {"a", "1"}};
  EXPECT_EQ(a.suffix(), "{a=1,b=2}");
}

TEST(Metrics, SnapshotSerializationIsDeterministic) {
  obs::MetricsRegistry reg;
  reg.add("z.counter", 3.25, {{"k", "v"}});
  reg.observe("a.hist", 0.125);
  reg.observe("a.hist", 1024.0);
  reg.set_gauge("m.gauge", -1.5);

  const std::string j1 = reg.snapshot().to_json();
  const std::string j2 = reg.snapshot().to_json();
  EXPECT_EQ(j1, j2);
  const std::string p1 = reg.snapshot().to_prometheus();
  const std::string p2 = reg.snapshot().to_prometheus();
  EXPECT_EQ(p1, p2);

  // Sanity of the renderings, not a golden: JSON groups by kind, the
  // Prometheus text expands histograms into _bucket/_sum/_count.
  EXPECT_NE(j1.find("\"z.counter{k=v}\": 3.25"), std::string::npos);
  EXPECT_NE(p1.find("z_counter{k=\"v\"} 3.25"), std::string::npos);
  EXPECT_NE(p1.find("a_hist_bucket{le=\"+Inf\"} 2"), std::string::npos);
  EXPECT_NE(p1.find("a_hist_count 2"), std::string::npos);
}

TEST(Metrics, QuantilesInterpolateWithinBuckets) {
  obs::MetricsRegistry reg;
  for (int i = 0; i < 100; ++i) reg.observe("h", 10.0);
  const auto snap = reg.snapshot();
  const auto* h = snap.histogram("h");
  ASSERT_NE(h, nullptr);
  // All mass in one bucket: quantiles clamp to [min, max] = [10, 10].
  EXPECT_EQ(h->quantile(0.5), 10.0);
  EXPECT_EQ(h->quantile(0.99), 10.0);
}

// ----- ScopedTimer / pass counter -------------------------------------------

TEST(ScopedTimer, ObservesIntoHistogram) {
  obs::MetricsRegistry reg;
  {
    obs::ScopedTimer t(&reg, "span.seconds", {{"stage", "build"}});
    EXPECT_GE(t.seconds(), 0.0);
  }
  const auto snap = reg.snapshot();
  const auto* h = snap.histogram("span.seconds{stage=build}");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 1u);
  EXPECT_GE(h->sum, 0.0);
}

TEST(ScopedTimer, NullRegistryIsANoOp) {
  obs::ScopedTimer t(nullptr, "never.recorded");
  EXPECT_GE(t.seconds(), 0.0);  // must not crash in ctor, seconds() or dtor
}

TEST(PassCounter, VectorOpsShimsStillWork) {
  reset_vector_pass_count();
  EXPECT_EQ(vector_pass_count(), 0u);
  const Vector x(1000, 1.0), y(1000, 2.0);
  (void)dot(x, y);
  const std::uint64_t after_dot = vector_pass_count();
  EXPECT_GT(after_dot, 0u);
  // The legacy shims and the obs counter are the same counter.
  EXPECT_EQ(after_dot, obs::vector_passes());
  reset_vector_pass_count();
  EXPECT_EQ(obs::vector_passes(), 0u);
}

// ----- TraceRecorder --------------------------------------------------------

TEST(Trace, RecordsSpansInstantsAndCounters) {
  obs::TraceRecorder rec;
  rec.complete("solver", "iter", 0.0, 1.5,
               {obs::TraceArg::num("version", 3)});
  rec.instant("failures", "process", 2.0);
  rec.counter("residual", "residual", 2.5, 1e-6);

  EXPECT_EQ(rec.size(), 3u);
  EXPECT_EQ(rec.dropped(), 0u);
  const auto tracks = rec.tracks();
  const std::vector<std::string> want{"solver", "failures", "residual"};
  EXPECT_EQ(tracks, want);

  const auto events = rec.events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].phase, obs::TraceEvent::Phase::kComplete);
  EXPECT_EQ(events[0].dur_virtual, 1.5);
  ASSERT_EQ(events[0].args.size(), 1u);
  EXPECT_EQ(events[0].args[0].key, "version");
  EXPECT_TRUE(events[0].args[0].is_number);
  EXPECT_GE(events[0].wall_ms, 0.0);

  std::string json;
  rec.append_chrome_json(json, /*pid=*/7, "test");
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"iter\""), std::string::npos);
  EXPECT_NE(json.find("thread_name"), std::string::npos);
  EXPECT_NE(json.find("\"pid\":7"), std::string::npos);
  EXPECT_NE(json.find("wall_ms"), std::string::npos);
}

TEST(Trace, DropsEventsPastTheCap) {
  obs::TraceRecorder rec(/*max_events=*/4);
  for (int i = 0; i < 10; ++i)
    rec.instant("t", "e", static_cast<double>(i));
  EXPECT_EQ(rec.size(), 4u);
  EXPECT_EQ(rec.dropped(), 6u);
}

TEST(Obs, ConfigValidation) {
  obs::ObservabilityConfig cfg;
  EXPECT_FALSE(cfg.any());
  EXPECT_NO_THROW(cfg.validate());
  cfg.trace = true;
  EXPECT_TRUE(cfg.any());
  cfg.trace_max_events = 0;
  EXPECT_THROW(cfg.validate(), config_error);
}

// ----- runner integration ---------------------------------------------------

ResilienceConfig runner_config(CkptMode mode, bool obs_on, int delta = 0) {
  ResilienceConfig cfg;
  cfg.scheme = CkptScheme::kLossy;
  cfg.ckpt_mode = mode;
  cfg.policy.interval_seconds = 20.0;
  cfg.failure.mtti_seconds = 60.0;
  cfg.iteration_seconds = 5.0;
  cfg.failure.seed = 7;
  cfg.dynamic_scale = 1.0;
  cfg.cluster.ranks = 64;
  cfg.cluster.pfs_per_rank_overhead = 0.001;
  cfg.static_bytes = 1e6;
  cfg.delta.max_delta_chain = delta;
  cfg.obs.metrics = obs_on;
  cfg.obs.trace = obs_on;
  return cfg;
}

TEST(Obs, RunnerRejectsInvalidObservabilityConfig) {
  const LocalProblem p = make_local_problem("cg", 6, 1e-8);
  auto solver = p.make_solver();
  ResilienceConfig cfg = runner_config(CkptMode::kSync, true);
  cfg.obs.trace_max_events = 0;
  EXPECT_THROW(ResilientRunner(*solver, cfg), config_error);
}

double hist_sum(const obs::MetricsSnapshot& snap, const std::string& name) {
  const auto* h = snap.histogram(name);
  return h != nullptr ? h->sum : 0.0;
}

std::uint64_t hist_count(const obs::MetricsSnapshot& snap,
                         const std::string& name) {
  const auto* h = snap.histogram(name);
  return h != nullptr ? h->count : 0;
}

class ObsMode : public ::testing::TestWithParam<CkptMode> {};

/// The registry accumulates the *same doubles in the same order* as the
/// legacy ResilienceResult fields, so the sums must match exactly — not
/// approximately.
TEST_P(ObsMode, RegistryAgreesExactlyWithLegacyResult) {
  const CkptMode mode = GetParam();
  const LocalProblem p = make_local_problem("cg", 8, 1e-8);
  auto solver = p.make_solver();
  // A short delta chain in the staged modes also exercises the delta/chunk
  // counters' parity.
  const int delta = mode == CkptMode::kSync ? 0 : 2;
  ResilientRunner runner(*solver, runner_config(mode, true, delta));
  const ResilienceResult res = runner.run();
  ASSERT_GT(res.failures, 0) << "test should exercise failures";
  ASSERT_GT(res.checkpoints, 0);

  ASSERT_NE(runner.metrics(), nullptr);
  const obs::MetricsSnapshot snap = runner.metrics()->snapshot();

  EXPECT_EQ(snap.counter_total("ckpt.committed"),
            static_cast<double>(res.checkpoints));
  EXPECT_EQ(hist_sum(snap, "ckpt.blocking_seconds"), res.ckpt_seconds_total);
  EXPECT_EQ(hist_sum(snap, "ckpt.drain_overlap_seconds"),
            res.ckpt_drain_seconds_total);
  EXPECT_EQ(hist_sum(snap, "ckpt.blocking_seconds{kind=backpressure}"),
            res.backpressure_seconds_total);
  EXPECT_EQ(snap.counter("ckpt.aborted_drains"),
            static_cast<double>(res.aborted_drains));
  EXPECT_EQ(hist_sum(snap, "recovery.seconds"), res.recovery_seconds_total);
  EXPECT_EQ(hist_count(snap, "recovery.seconds"),
            static_cast<std::uint64_t>(res.recoveries));
  EXPECT_EQ(snap.counter_total("failures"),
            static_cast<double>(res.failures));
  for (const FailureSeverity sev : kAllSeverities)
    EXPECT_EQ(
        snap.counter("failures{severity=" + std::string(to_string(sev)) +
                     "}"),
        static_cast<double>(res.failures_by_severity[severity_index(sev)]));
  EXPECT_EQ(snap.counter_total("tier.promotions_completed"),
            static_cast<double>(res.promotions_completed));
  EXPECT_EQ(hist_sum(snap, "tier.promotion_seconds"),
            res.promotion_seconds_total);
  EXPECT_EQ(snap.counter("recovery.by_tier{tier=L1}") +
                snap.counter("recovery.by_tier{tier=L2}") +
                snap.counter("recovery.by_tier{tier=L3}"),
            static_cast<double>(res.recoveries_by_tier[0] +
                                res.recoveries_by_tier[1] +
                                res.recoveries_by_tier[2]));
  EXPECT_EQ(snap.counter("ckpt.full_checkpoints"),
            static_cast<double>(res.full_checkpoints));
  EXPECT_EQ(snap.counter("ckpt.chunks_deduped"),
            static_cast<double>(res.chunks_deduped));
  EXPECT_EQ(snap.counter("ckpt.delta_stored_bytes"), res.delta_bytes_total);

  EXPECT_EQ(snap.gauges.at("run.virtual_seconds"), res.virtual_seconds);
  EXPECT_EQ(snap.gauges.at("run.converged"), res.converged ? 1.0 : 0.0);
  EXPECT_EQ(snap.gauges.at("run.final_residual_norm"),
            res.final_residual_norm);
  EXPECT_EQ(snap.gauges.at("run.policy_interval_final"),
            res.policy_interval_final);

  // The solver's vector passes were sampled into the registry per step.
  EXPECT_GT(snap.counter("solver.vector_passes"), 0.0);
}

/// Observability observes; it must never branch the simulation. The same
/// seed with obs on and off produces bitwise-identical results.
TEST_P(ObsMode, RunIsBitStableWithObservabilityOn) {
  const CkptMode mode = GetParam();
  const LocalProblem p = make_local_problem("cg", 8, 1e-8);

  auto s_off = p.make_solver();
  ResilientRunner r_off(*s_off, runner_config(mode, false));
  const ResilienceResult off = r_off.run();

  auto s_on = p.make_solver();
  ResilientRunner r_on(*s_on, runner_config(mode, true));
  const ResilienceResult on = r_on.run();

  EXPECT_EQ(off.converged, on.converged);
  EXPECT_EQ(off.executed_steps, on.executed_steps);
  EXPECT_EQ(off.convergence_iteration, on.convergence_iteration);
  EXPECT_EQ(off.final_residual_norm, on.final_residual_norm);
  EXPECT_EQ(off.virtual_seconds, on.virtual_seconds);
  EXPECT_EQ(off.failures, on.failures);
  EXPECT_EQ(off.checkpoints, on.checkpoints);
  EXPECT_EQ(off.recoveries, on.recoveries);
  EXPECT_EQ(off.aborted_drains, on.aborted_drains);
  EXPECT_EQ(off.ckpt_seconds_total, on.ckpt_seconds_total);
  EXPECT_EQ(off.ckpt_drain_seconds_total, on.ckpt_drain_seconds_total);
  EXPECT_EQ(off.backpressure_seconds_total, on.backpressure_seconds_total);
  EXPECT_EQ(off.recovery_seconds_total, on.recovery_seconds_total);
  EXPECT_EQ(off.mean_ckpt_stored_bytes, on.mean_ckpt_stored_bytes);
  EXPECT_EQ(off.compression_ratio, on.compression_ratio);
  EXPECT_EQ(off.promotions_completed, on.promotions_completed);
  EXPECT_EQ(off.promotion_seconds_total, on.promotion_seconds_total);

  // The solutions themselves are bitwise identical.
  const Vector& x_off = s_off->solution();
  const Vector& x_on = s_on->solution();
  ASSERT_EQ(x_off.size(), x_on.size());
  for (std::size_t i = 0; i < x_off.size(); ++i)
    ASSERT_EQ(x_off[i], x_on[i]) << "solution diverged at " << i;
}

TEST_P(ObsMode, TraceCoversTheCheckpointLifecycle) {
  const CkptMode mode = GetParam();
  const LocalProblem p = make_local_problem("cg", 8, 1e-8);
  auto solver = p.make_solver();
  ResilientRunner runner(*solver, runner_config(mode, true));
  (void)runner.run();

  ASSERT_NE(runner.trace(), nullptr);
  auto rec = runner.take_trace();
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(runner.trace(), nullptr);  // ownership transferred

  const auto tracks = rec->tracks();
  const auto has = [&tracks](const char* name) {
    for (const auto& t : tracks)
      if (t == name) return true;
    return false;
  };
  EXPECT_TRUE(has("solver"));
  EXPECT_TRUE(has("residual"));
  EXPECT_TRUE(has("failures"));
  EXPECT_TRUE(has("recovery"));
  if (mode == CkptMode::kSync) {
    EXPECT_TRUE(has("ckpt"));
  } else {
    EXPECT_TRUE(has("drain"));
  }
  if (mode == CkptMode::kTiered) {
    EXPECT_TRUE(has("promote-L2"));
  }
  EXPECT_GT(rec->size(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Modes, ObsMode,
                         ::testing::Values(CkptMode::kSync, CkptMode::kAsync,
                                           CkptMode::kTiered),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

/// Checkpoint streams are byte-identical with and without a sink attached:
/// the manager-level instrumentation only reads sizes and timers.
TEST(Obs, CheckpointStreamBytesUnchangedBySink) {
  Vector data(4096);
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = std::sin(0.01 * static_cast<double>(i));

  const auto run = [&](bool with_sink) {
    auto store = std::make_unique<MemoryStore>();
    const MemoryStore* raw = store.get();
    CheckpointManager mgr(std::move(store), nullptr);
    obs::MetricsRegistry reg;
    if (with_sink) mgr.set_observability({&reg, nullptr});
    Vector v = data;
    mgr.protect(0, "x", &v);
    mgr.checkpoint();
    return raw->read(raw->latest_version());
  };

  EXPECT_EQ(run(false), run(true));
}

}  // namespace
}  // namespace lck

/// Tests for the pluggable checkpoint-pacing policy layer: the perf-model
/// inverse helpers, the three policy implementations, the make_policy
/// factory, ResilienceConfig::validate(), and — most load-bearing — that
/// FixedIntervalPolicy (the default) reproduces the pre-redesign runner
/// behaviour bit-for-bit for all three checkpoint modes.

#include <gtest/gtest.h>

#include <cmath>

#include "core/ckpt_policy.hpp"
#include "core/experiment.hpp"
#include "core/resilient_runner.hpp"
#include "sim/perf_model.hpp"

namespace lck {
namespace {

constexpr double kLambda = 1.0 / 3600.0;

PolicyContext sync_context(double blocking, double lambda = kLambda) {
  PolicyContext ctx;
  ctx.mode = CkptMode::kSync;
  ctx.lambda = lambda;
  ctx.fixed_interval_seconds = 420.0;
  ctx.predicted_blocking_seconds = blocking;
  ctx.predicted_drain_seconds = blocking;
  ctx.predicted_stored_bytes = 1e9;
  return ctx;
}

// ----- perf_model inverse helpers -------------------------------------------

TEST(PolicyModel, OptimalIntervalIsYoungInverse) {
  // sqrt(2c/λ) == young_interval_seconds(c, MTTI) with MTTI = 1/λ.
  EXPECT_DOUBLE_EQ(optimal_interval_seconds(120.0, kLambda),
                   young_interval_seconds(120.0, 3600.0));
  EXPECT_DOUBLE_EQ(optimal_interval_seconds(2.0, 0.5), std::sqrt(8.0));
  EXPECT_TRUE(std::isinf(optimal_interval_seconds(120.0, 0.0)));
  EXPECT_TRUE(std::isinf(optimal_interval_seconds(0.0, kLambda)));
}

TEST(PolicyModel, AsyncOptimalIntervalWithoutBackpressure) {
  // Drain shorter than the stage-only Young interval: no back-pressure, the
  // optimum is the plain Young interval of the staging cost.
  const double t = async_optimal_interval_seconds(0.1, 5.0, kLambda);
  EXPECT_DOUBLE_EQ(t, optimal_interval_seconds(0.1, kLambda));
  EXPECT_GE(t, 5.0);
}

TEST(PolicyModel, AsyncOptimalIntervalIsSelfConsistentUnderBackpressure) {
  // Slow drain: the fixed point t = sqrt(2·(stage + max(0, drain − t))/λ).
  const double stage = 0.5, drain = 400.0, lambda = 1.0 / 600.0;
  const double t = async_optimal_interval_seconds(stage, drain, lambda);
  EXPECT_LE(t, drain);
  const double blocking = stage + std::max(0.0, drain - t);
  EXPECT_NEAR(t, std::sqrt(2.0 * blocking / lambda), 1e-9 * t);
}

TEST(PolicyModel, AsyncOptimalIntervalDegenerateCases) {
  EXPECT_TRUE(std::isinf(async_optimal_interval_seconds(0.1, 10.0, 0.0)));
  EXPECT_TRUE(std::isinf(async_optimal_interval_seconds(0.0, 0.0, kLambda)));
  // Zero stage cost but a real drain still needs a positive interval.
  EXPECT_GT(async_optimal_interval_seconds(0.0, 10.0, kLambda), 0.0);
}

TEST(PolicyModel, PromoteCadenceRoundsAndClamps) {
  EXPECT_EQ(promote_cadence(100.0, 350.0), 4);   // round(3.5) to even = 4
  EXPECT_EQ(promote_cadence(100.0, 249.0), 2);
  EXPECT_EQ(promote_cadence(100.0, 50.0), 1);    // never below 1
  EXPECT_EQ(promote_cadence(100.0,
                            std::numeric_limits<double>::infinity()),
            1000000);
  EXPECT_EQ(promote_cadence(0.0, 500.0), 1);     // degenerate base
}

// ----- FixedIntervalPolicy --------------------------------------------------

TEST(FixedPolicy, ReproducesHardwiredComparison) {
  const FixedIntervalPolicy p(20.0);
  EXPECT_STREQ(p.name(), "fixed");
  EXPECT_DOUBLE_EQ(p.current_interval(), 20.0);
  EXPECT_FALSE(p.should_checkpoint(19.999, 0.0));
  EXPECT_TRUE(p.should_checkpoint(20.0, 0.0));  // >= boundary, like the old code
  EXPECT_TRUE(p.should_checkpoint(45.0, 20.0));
  EXPECT_EQ(p.interval_adjustments(), 0);
}

TEST(FixedPolicy, RejectsNonPositiveInterval) {
  EXPECT_THROW(FixedIntervalPolicy(0.0), config_error);
  EXPECT_THROW(FixedIntervalPolicy(-5.0), config_error);
}

// ----- YoungPolicy ----------------------------------------------------------

TEST(YoungPolicy, SyncIntervalMatchesClosedForm) {
  const double c = 120.0;
  const YoungPolicy p(sync_context(c));
  EXPECT_STREQ(p.name(), "young");
  EXPECT_DOUBLE_EQ(p.current_interval(), std::sqrt(2.0 * c / kLambda));
  EXPECT_DOUBLE_EQ(p.current_interval(),
                   young_interval_seconds(c, 1.0 / kLambda));
}

TEST(YoungPolicy, StagedModeUsesOverlapAwareInterval) {
  PolicyContext ctx = sync_context(0.0);
  ctx.mode = CkptMode::kAsync;
  ctx.predicted_blocking_seconds = 0.2;   // staging copy
  ctx.predicted_drain_seconds = 130.0;    // compress + PFS write
  const YoungPolicy p(ctx);
  EXPECT_DOUBLE_EQ(p.current_interval(),
                   async_optimal_interval_seconds(0.2, 130.0, ctx.lambda));
  // Much shorter than the sync interval of the full cost: overlap makes
  // frequent checkpoints cheap.
  EXPECT_LT(p.current_interval(),
            optimal_interval_seconds(130.2, ctx.lambda));
}

TEST(YoungPolicy, FallsBackToFixedIntervalWithoutFailures) {
  PolicyContext ctx = sync_context(120.0, /*lambda=*/0.0);
  const YoungPolicy p(ctx);
  EXPECT_DOUBLE_EQ(p.current_interval(), 420.0);
}

// ----- AdaptiveCostPolicy ---------------------------------------------------

TEST(AdaptivePolicy, ConvergesToYoungIntervalUnderStationaryCosts) {
  // Start from a wildly wrong prediction; feed a stationary observed cost.
  PolicyContext ctx = sync_context(/*blocking=*/500.0);
  AdaptiveCostPolicy p(ctx);
  const double c = 5.0;
  for (int i = 0; i < 60; ++i) p.on_checkpoint_committed(c, 1e8);
  const double young = std::sqrt(2.0 * c / kLambda);
  EXPECT_NEAR(p.current_interval(), young, 1e-6 * young);
  EXPECT_NEAR(p.blocking_estimate(), c, 1e-9 * c);
  EXPECT_GT(p.interval_adjustments(), 0);
}

TEST(AdaptivePolicy, ReAdaptsAfterCostStepChange) {
  PolicyContext ctx = sync_context(/*blocking=*/10.0);
  AdaptiveCostPolicy p(ctx);
  for (int i = 0; i < 60; ++i) p.on_checkpoint_committed(10.0, 1e9);
  const double before = p.current_interval();
  EXPECT_NEAR(before, std::sqrt(2.0 * 10.0 / kLambda), 1e-6 * before);
  const int adj_before = p.interval_adjustments();
  // Cost quadruples (e.g. compression ratio collapsed): the Young interval
  // must double.
  for (int i = 0; i < 60; ++i) p.on_checkpoint_committed(40.0, 1e9);
  EXPECT_NEAR(p.current_interval(), 2.0 * before, 1e-6 * before);
  EXPECT_GT(p.interval_adjustments(), adj_before);
}

TEST(AdaptivePolicy, TieredModeAdaptsPromotionCadence) {
  PolicyContext ctx;
  ctx.mode = CkptMode::kTiered;
  ctx.lambda = 1.0 / 600.0;
  ctx.fixed_interval_seconds = 420.0;
  ctx.predicted_blocking_seconds = 0.5;
  ctx.predicted_drain_seconds = 1.0;
  ctx.predicted_stored_bytes = 1e9;
  ctx.l2_copy_seconds = 8.0;
  ctx.l3_copy_seconds = 60.0;
  ctx.tier_lambdas = severity_tier_lambdas(ctx.lambda,
                                           kDefaultSeverityWeights);
  ctx.l2_promote_every = 1;
  ctx.l3_promote_every = 4;
  AdaptiveCostPolicy p(ctx);
  for (int i = 0; i < 40; ++i) p.on_checkpoint_committed(0.5, 1e9);

  // The cadence must match the per-tier optimal intervals exactly.
  const std::array<double, 3> costs{p.blocking_estimate(), 8.0, 60.0};
  const auto t = tiered_optimal_intervals(costs, ctx.tier_lambdas);
  EXPECT_EQ(p.l2_promote_every(), promote_cadence(p.current_interval(), t[1]));
  EXPECT_EQ(p.l3_promote_every(), promote_cadence(p.current_interval(), t[2]));
  // L3 is more expensive and covers rarer failures: promote less often.
  EXPECT_GE(p.l3_promote_every(), p.l2_promote_every());
  EXPECT_GE(p.l2_promote_every(), 1);
}

TEST(AdaptivePolicy, RejectsBadSmoothing) {
  EXPECT_THROW(AdaptiveCostPolicy(sync_context(1.0), 0.0), config_error);
  EXPECT_THROW(AdaptiveCostPolicy(sync_context(1.0), 1.5), config_error);
}

// ----- make_policy factory --------------------------------------------------

TEST(MakePolicy, CreatesAllKnownPolicies) {
  const PolicyContext ctx = sync_context(10.0);
  EXPECT_STREQ(make_policy("fixed", ctx)->name(), "fixed");
  EXPECT_STREQ(make_policy("young", ctx)->name(), "young");
  EXPECT_STREQ(make_policy("adaptive", ctx)->name(), "adaptive");
}

TEST(MakePolicy, ThrowsForUnknownName) {
  EXPECT_THROW(make_policy("", sync_context(1.0)), config_error);
  EXPECT_THROW(make_policy("youngish", sync_context(1.0)), config_error);
}

// ----- ResilienceConfig::validate -------------------------------------------

TEST(ConfigValidate, AcceptsDefaults) {
  EXPECT_NO_THROW(ResilienceConfig{}.validate());
}

void expect_rejected(const ResilienceConfig& cfg, const std::string& needle) {
  try {
    cfg.validate();
    FAIL() << "expected rejection mentioning \"" << needle << "\"";
  } catch (const config_error& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << e.what();
  }
}

TEST(ConfigValidate, RejectsEachBadKnobWithItsOwnMessage) {
  ResilienceConfig cfg;
  cfg.policy.interval_seconds = 0.0;
  expect_rejected(cfg, "policy.interval_seconds");

  cfg = {};
  cfg.policy.name = "bogus";
  expect_rejected(cfg, "policy.name");

  cfg = {};
  cfg.iteration_seconds = -1.0;
  expect_rejected(cfg, "iteration_seconds");

  cfg = {};
  cfg.dynamic_scale = 0.0;
  expect_rejected(cfg, "dynamic_scale");

  cfg = {};
  cfg.static_bytes = -1.0;
  expect_rejected(cfg, "static_bytes");

  cfg = {};
  cfg.failure.mtti_seconds = 0.0;
  expect_rejected(cfg, "failure.mtti_seconds");

  cfg = {};
  cfg.failure.severity_weights = {0.5, 0.5, 0.5, 0.5};
  expect_rejected(cfg, "sum to 1");

  cfg = {};
  cfg.failure.severity_weights = {1.5, -0.5, 0.0, 0.0};
  expect_rejected(cfg, "non-negative");

  cfg = {};
  cfg.tiered.l2_promote_every = 0;
  expect_rejected(cfg, "tiered.l2_promote_every");

  cfg = {};
  cfg.tiered.l3_promote_every = -2;
  expect_rejected(cfg, "tiered.l3_promote_every");

  cfg = {};
  cfg.tiered.retention = 0;
  expect_rejected(cfg, "tiered.retention");

  cfg = {};
  cfg.max_steps = 0;
  expect_rejected(cfg, "max_steps");
}

TEST(ConfigValidate, CollectsEveryViolationInOneError) {
  ResilienceConfig cfg;
  cfg.policy.interval_seconds = -1.0;
  cfg.iteration_seconds = 0.0;
  cfg.tiered.retention = 0;
  try {
    cfg.validate();
    FAIL() << "expected config_error";
  } catch (const config_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("policy.interval_seconds"), std::string::npos);
    EXPECT_NE(what.find("iteration_seconds"), std::string::npos);
    EXPECT_NE(what.find("tiered.retention"), std::string::npos);
  }
}

// ----- FixedIntervalPolicy == pre-redesign runner behaviour -----------------

/// ResilienceResults of the pre-policy-API runner (commit 1fd6ed0) for
/// CG/grid-8 under the aggressive test config below, recorded with %.17g.
/// The default FixedIntervalPolicy must reproduce them exactly: integer
/// counters bit-for-bit, clock sums to 1e-9 relative (libm slack across
/// platforms — locally the full struct is bit-identical).
struct GoldenRun {
  int scheme;
  int mode;
  index_t executed_steps;
  index_t convergence_iteration;
  int failures, checkpoints, recoveries, aborted_drains;
  double virtual_seconds, ckpt_seconds_total, ckpt_drain_seconds_total;
  double backpressure_seconds_total, recovery_seconds_total;
  double mean_ckpt_stored_bytes;
};

constexpr GoldenRun kGoldenRuns[] = {
    {0, 0, 27, 23, 6, 5, 5, 0, 155.47494620307742, 5.3200523124999997, 0, 0,
     5.3263023124999993, 8370},
    {0, 1, 28, 23, 6, 5, 5, 0, 154.46093588321631, 0.25000071319444445,
     5.320052312499989, 0, 5.3263023124999993, 8370},
    {0, 2, 25, 23, 3, 5, 2, 0, 128.65508892409409, 0.25000071319444445,
     0.25000072656248662, 0, 1.1152606078125, 8370},
    {2, 0, 33, 30, 6, 7, 5, 0, 187.60293017691075, 7.4480123689999997, 0, 0,
     5.326256511666668, 684.00000000000011},
    {2, 1, 34, 30, 6, 7, 5, 0, 184.56092633591075, 0.35000049875,
     7.4480123689999864, 0, 5.326256511666668, 684.00000000000011},
    {2, 2, 27, 25, 3, 6, 2, 0, 138.70508138262184, 0.3000004275,
     0.30000555632290116, 0, 1.1152535785833335, 809.5},
};

void expect_golden_near(double actual, double golden) {
  EXPECT_NEAR(actual, golden, 1e-9 * std::max(1.0, std::abs(golden)));
}

TEST(FixedPolicyGolden, BitIdenticalToPreRedesignRunsForAllModes) {
  for (const GoldenRun& g : kGoldenRuns) {
    SCOPED_TRACE("scheme=" + std::to_string(g.scheme) +
                 " mode=" + std::to_string(g.mode));
    const LocalProblem p = make_local_problem("cg", 8, 1e-8);
    auto solver = p.make_solver();
    ResilienceConfig cfg;
    cfg.scheme = static_cast<CkptScheme>(g.scheme);
    cfg.ckpt_mode = static_cast<CkptMode>(g.mode);
    cfg.policy.interval_seconds = 20.0;
    cfg.failure.mtti_seconds = 60.0;
    cfg.iteration_seconds = 5.0;
    cfg.failure.seed = 7;
    cfg.dynamic_scale = 1.0;
    cfg.cluster.ranks = 64;
    cfg.cluster.pfs_per_rank_overhead = 0.001;
    cfg.static_bytes = 1e6;
    cfg.tiered.l2_promote_every = 1;
    cfg.tiered.l3_promote_every = 2;
    // The goldens pin the *legacy* serializer's stored-bytes/clock values
    // (recorded before the framed streaming path existed); running with
    // streaming off keeps them guarding that pipeline against drift.
    cfg.streaming.enabled = false;
    ResilientRunner runner(*solver, cfg);
    const ResilienceResult r = runner.run();

    EXPECT_TRUE(r.converged);
    EXPECT_EQ(r.executed_steps, g.executed_steps);
    EXPECT_EQ(r.convergence_iteration, g.convergence_iteration);
    EXPECT_EQ(r.failures, g.failures);
    EXPECT_EQ(r.checkpoints, g.checkpoints);
    EXPECT_EQ(r.recoveries, g.recoveries);
    EXPECT_EQ(r.aborted_drains, g.aborted_drains);
    expect_golden_near(r.virtual_seconds, g.virtual_seconds);
    expect_golden_near(r.ckpt_seconds_total, g.ckpt_seconds_total);
    expect_golden_near(r.ckpt_drain_seconds_total, g.ckpt_drain_seconds_total);
    expect_golden_near(r.backpressure_seconds_total,
                       g.backpressure_seconds_total);
    expect_golden_near(r.recovery_seconds_total, g.recovery_seconds_total);
    expect_golden_near(r.mean_ckpt_stored_bytes, g.mean_ckpt_stored_bytes);
    // Pacing observability: the fixed policy never adjusts.
    EXPECT_DOUBLE_EQ(r.policy_interval_final, 20.0);
    EXPECT_EQ(r.interval_adjustments, 0);
  }
}

// ----- runner integration with the model-driven policies --------------------

class RunnerPolicy : public ::testing::TestWithParam<const char*> {};

TEST_P(RunnerPolicy, ConvergesUnderFailuresInEveryMode) {
  for (const CkptMode mode :
       {CkptMode::kSync, CkptMode::kAsync, CkptMode::kTiered}) {
    SCOPED_TRACE(to_string(mode));
    const LocalProblem p = make_local_problem("cg", 8, 1e-8);
    auto solver = p.make_solver();
    ResilienceConfig cfg;
    cfg.scheme = CkptScheme::kLossy;
    cfg.ckpt_mode = mode;
    cfg.policy.name = GetParam();
    cfg.policy.interval_seconds = 20.0;
    cfg.failure.mtti_seconds = 60.0;
    cfg.iteration_seconds = 5.0;
    cfg.failure.seed = 7;
    cfg.cluster.ranks = 64;
    cfg.cluster.pfs_per_rank_overhead = 0.001;
    cfg.static_bytes = 1e6;
    ResilientRunner runner(*solver, cfg);
    const ResilienceResult r = runner.run();
    EXPECT_TRUE(r.converged);
    EXPECT_GT(r.failures, 0) << "test should exercise failures";
    EXPECT_GT(r.policy_interval_final, 0.0);
  }
}

TEST_P(RunnerPolicy, DeterministicForFixedSeed) {
  const LocalProblem p = make_local_problem("cg", 7, 1e-8);
  ResilienceConfig cfg;
  cfg.scheme = CkptScheme::kLossy;
  cfg.ckpt_mode = CkptMode::kTiered;
  cfg.policy.name = GetParam();
  cfg.policy.interval_seconds = 20.0;
  cfg.failure.mtti_seconds = 60.0;
  cfg.iteration_seconds = 5.0;
  cfg.failure.seed = 31;
  cfg.cluster.ranks = 64;
  cfg.cluster.pfs_per_rank_overhead = 0.001;
  cfg.static_bytes = 1e6;

  auto s1 = p.make_solver();
  const auto r1 = ResilientRunner(*s1, cfg).run();
  auto s2 = p.make_solver();
  const auto r2 = ResilientRunner(*s2, cfg).run();
  EXPECT_EQ(r1.failures, r2.failures);
  EXPECT_EQ(r1.executed_steps, r2.executed_steps);
  EXPECT_EQ(r1.checkpoints, r2.checkpoints);
  EXPECT_DOUBLE_EQ(r1.virtual_seconds, r2.virtual_seconds);
  EXPECT_DOUBLE_EQ(r1.policy_interval_final, r2.policy_interval_final);
  EXPECT_EQ(r1.interval_adjustments, r2.interval_adjustments);
}

INSTANTIATE_TEST_SUITE_P(Policies, RunnerPolicy,
                         ::testing::Values("fixed", "young", "adaptive"),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

TEST(RunnerPolicyIntegration, AdaptiveReportsItsAdjustments) {
  const LocalProblem p = make_local_problem("cg", 8, 1e-8);
  auto solver = p.make_solver();
  ResilienceConfig cfg;
  cfg.scheme = CkptScheme::kLossy;
  cfg.policy.name = "adaptive";
  cfg.policy.interval_seconds = 20.0;
  cfg.failure.mtti_seconds = 120.0;
  cfg.iteration_seconds = 5.0;
  cfg.failure.seed = 7;
  cfg.cluster.ranks = 64;
  cfg.cluster.pfs_per_rank_overhead = 0.001;
  cfg.static_bytes = 1e6;
  ResilientRunner runner(*solver, cfg);
  const ResilienceResult r = runner.run();
  EXPECT_TRUE(r.converged);
  ASSERT_GT(r.checkpoints, 0);
  // The ratio-1 prediction is wrong for the lossy scheme, so the first
  // committed checkpoint must already trigger a re-derivation.
  EXPECT_GT(r.interval_adjustments, 0);
  EXPECT_GT(r.policy_interval_final, 0.0);
}

TEST(RunnerPolicyIntegration, YoungUsesFallbackWhenInjectionDisabled) {
  const LocalProblem p = make_local_problem("cg", 8, 1e-8);
  auto solver = p.make_solver();
  ResilienceConfig cfg;
  cfg.scheme = CkptScheme::kTraditional;
  cfg.policy.name = "young";
  cfg.policy.interval_seconds = 35.0;
  cfg.failure.inject = false;
  cfg.iteration_seconds = 5.0;
  cfg.cluster.ranks = 64;
  cfg.cluster.pfs_per_rank_overhead = 0.001;
  ResilientRunner runner(*solver, cfg);
  const ResilienceResult r = runner.run();
  EXPECT_TRUE(r.converged);
  // λ = 0 ⇒ the model interval diverges; the policy paces at the
  // configured fixed interval instead.
  EXPECT_DOUBLE_EQ(r.policy_interval_final, 35.0);
}

}  // namespace
}  // namespace lck

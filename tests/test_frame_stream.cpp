/// Streaming framed checkpoint path: FrameWriter/FrameReader transport
/// roundtrips and corruption detection, the in-tree LZ4-class codec,
/// bounded writer memory, and CheckpointManager streaming recovery —
/// including bit-exactness against the legacy whole-stream serializer for
/// every codec in sync, async, and tiered modes.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cmath>
#include <cstring>
#include <filesystem>

#include "ckpt/checkpoint_manager.hpp"
#include "ckpt/frame_stream.hpp"
#include "ckpt/tier/tiered_store.hpp"
#include "common/rng.hpp"
#include "compress/lossless/lz4_like.hpp"
#include "compress/sz/sz_like.hpp"

namespace lck {
namespace {

std::vector<byte_t> pattern_bytes(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<byte_t> v(n);
  for (auto& b : v) b = static_cast<byte_t>(rng() & 0xff);
  return v;
}

Vector smooth_vector(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Vector v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = std::sin(0.003 * static_cast<double>(i)) + 2.0 +
           1e-3 * rng.uniform();
  return v;
}

StreamingConfig small_frames(const std::string& style = "lz4") {
  StreamingConfig cfg;
  cfg.frame_elems = 512;  // 4 KiB raw frames: boundary cases stay cheap
  cfg.wbuf_bytes = 4096;
  cfg.style = style;
  return cfg;
}

// ----- transport: FrameWriter / FrameReader ---------------------------------

TEST(FrameTransport, RoundTripAllStylesAndSizes) {
  for (const char* style : {"raw", "lz4", "deflate"}) {
    const StreamingConfig cfg = small_frames(style);
    const std::size_t fb = cfg.frame_bytes();
    for (const std::size_t n :
         {std::size_t{0}, std::size_t{1}, fb - 1, fb, fb + 1, 3 * fb + 37}) {
      const auto payload = pattern_bytes(n, 11 + n);
      std::vector<byte_t> stream;
      VectorSink sink(stream);
      FrameWriter w(sink, cfg);
      w.put<std::uint32_t>(0xabcd1234u);
      w.put_string("var/name");
      w.put_bytes(payload);
      w.put<double>(2.5);
      w.finish();
      EXPECT_EQ(w.stream_bytes(), stream.size());

      SpanSource src(stream);
      FrameReader r(src);
      EXPECT_EQ(r.get<std::uint32_t>(), 0xabcd1234u);
      EXPECT_EQ(r.get_string(), "var/name");
      std::vector<byte_t> back(n);
      r.read_into(back);
      EXPECT_EQ(back, payload) << style << " n=" << n;
      EXPECT_DOUBLE_EQ(r.get<double>(), 2.5);
      EXPECT_NO_THROW(r.expect_end());
    }
  }
}

TEST(FrameTransport, EmptyLogicalStreamRoundTrips) {
  std::vector<byte_t> stream;
  VectorSink sink(stream);
  FrameWriter w(sink, small_frames());
  w.finish();
  // Stream header (11) + terminator (13) and nothing else.
  EXPECT_EQ(stream.size(), 11u + kFrameHeaderBytes);
  SpanSource src(stream);
  FrameReader r(src);
  EXPECT_NO_THROW(r.expect_end());
}

TEST(FrameTransport, TruncationIsDetected) {
  const auto payload = pattern_bytes(10000, 3);
  std::vector<byte_t> stream;
  VectorSink sink(stream);
  FrameWriter w(sink, small_frames());
  w.put_bytes(payload);
  w.finish();

  // Truncated terminator: the data reads back, but the end check throws.
  {
    auto cut = stream;
    cut.resize(cut.size() - 5);
    SpanSource src(cut);
    FrameReader r(src);
    std::vector<byte_t> back(payload.size());
    r.read_into(back);
    EXPECT_THROW(r.expect_end(), corrupt_stream_error);
  }
  // Truncated final data frame: the read itself throws.
  {
    auto cut = stream;
    cut.resize(cut.size() - kFrameHeaderBytes - 40);
    SpanSource src(cut);
    FrameReader r(src);
    std::vector<byte_t> back(payload.size());
    EXPECT_THROW(r.read_into(back), corrupt_stream_error);
  }
  // Trailing garbage after the terminator is rejected too.
  {
    auto fat = stream;
    fat.push_back(0x5a);
    SpanSource src(fat);
    FrameReader r(src);
    std::vector<byte_t> back(payload.size());
    r.read_into(back);
    EXPECT_THROW(r.expect_end(), corrupt_stream_error);
  }
}

TEST(FrameTransport, CorruptionIsDetected) {
  const auto payload = pattern_bytes(9000, 4);
  std::vector<byte_t> stream;
  VectorSink sink(stream);
  FrameWriter w(sink, small_frames());
  w.put_bytes(payload);
  w.finish();

  const auto expect_rejected = [&](std::vector<byte_t> bad) {
    SpanSource src(bad);
    std::vector<byte_t> back(payload.size());
    try {
      FrameReader r(src);
      r.read_into(back);
      r.expect_end();
      FAIL() << "corrupt stream accepted";
    } catch (const corrupt_stream_error&) {
    }
  };

  auto bad = stream;
  bad[1] ^= 0x01;  // magic
  expect_rejected(bad);

  bad = stream;
  bad[4] ^= 0x01;  // version
  expect_rejected(bad);

  bad = stream;
  bad[30] ^= 0x40;  // payload byte inside the first frame -> CRC mismatch
  expect_rejected(bad);

  bad = stream;
  // First frame header at offset 11: style(1) raw_len(4) comp_len(4) crc(4).
  // An oversized comp_len must be rejected by the comp_len/raw_len invariant
  // before any allocation or read is attempted.
  std::memset(bad.data() + 11 + 5, 0xff, 4);
  expect_rejected(bad);

  bad = stream;
  bad[11] = 99;  // unknown frame style
  expect_rejected(bad);

  bad = stream;
  // Corrupt terminator: header[0] == 0 but nonzero tail bytes.
  bad[bad.size() - 2] = 0x7f;
  expect_rejected(bad);
}

TEST(FrameTransport, WriterMemoryIsBounded) {
  // 2 MiB of data through 8 KiB frames: the writer's high-water mark must
  // stay at one raw frame + its compressed image + write buffer + header,
  // independent of stream length.
  StreamingConfig cfg;
  cfg.frame_elems = 1024;  // 8 KiB frames
  cfg.wbuf_bytes = 4096;
  cfg.style = "lz4";
  const auto payload = pattern_bytes(std::size_t{2} << 20, 5);
  std::vector<byte_t> stream;
  VectorSink sink(stream);
  FrameWriter w(sink, cfg);
  w.put_bytes(payload);
  w.finish();
  EXPECT_LE(w.peak_buffered_bytes(),
            cfg.wbuf_bytes + cfg.frame_bytes() +
                lz4_compress_bound(cfg.frame_bytes()) + kFrameHeaderBytes);
  EXPECT_GT(stream.size(), std::size_t{1} << 20);  // random data: ~raw size
}

TEST(FrameTransport, SinkReceivesIncrementalAppends) {
  // The stream must reach the sink in bounded increments while the writer
  // runs — not as one materialized blob at the end.
  class CountingSink final : public ByteSink {
   public:
    void append(std::span<const byte_t> bytes) override {
      ++appends;
      max_append = std::max(max_append, bytes.size());
      total += bytes.size();
    }
    std::size_t appends = 0, max_append = 0, total = 0;
  };

  const StreamingConfig cfg = small_frames("raw");
  const auto payload = pattern_bytes(std::size_t{1} << 20, 6);
  CountingSink sink;
  FrameWriter w(sink, cfg);
  w.put_bytes(payload);
  w.finish();
  EXPECT_EQ(sink.total, w.stream_bytes());
  EXPECT_GE(sink.appends, 64u);
  // Largest single append: either a flushed wbuf or one oversized frame
  // payload handed straight through.
  EXPECT_LE(sink.max_append,
            std::max(cfg.wbuf_bytes, cfg.frame_bytes() + kFrameHeaderBytes));
}

TEST(FrameTransport, ValidateRejectsBadConfigs) {
  StreamingConfig cfg;
  cfg.frame_elems = 8;  // < 512 minimum
  EXPECT_THROW(cfg.validate(), config_error);
  cfg = StreamingConfig{};
  cfg.wbuf_bytes = 16;  // < 4096 minimum
  EXPECT_THROW(cfg.validate(), config_error);
  cfg = StreamingConfig{};
  cfg.style = "zstd";
  EXPECT_THROW(cfg.validate(), config_error);
  // All violations are collected into one message.
  cfg.frame_elems = 0;
  cfg.wbuf_bytes = 0;
  try {
    cfg.validate();
    FAIL() << "invalid config accepted";
  } catch (const config_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("frame_elems"), std::string::npos);
    EXPECT_NE(msg.find("wbuf_bytes"), std::string::npos);
    EXPECT_NE(msg.find("style"), std::string::npos);
  }
  EXPECT_NO_THROW(StreamingConfig{}.validate());
}

// ----- LZ4-class codec ------------------------------------------------------

TEST(Lz4Like, RoundTripCompressibleAndRandom) {
  // Repetitive input must actually compress; random input must round-trip
  // within the documented worst-case bound.
  std::vector<byte_t> text;
  for (int i = 0; i < 400; ++i)
    for (const char c : std::string("the quick brown fox "))
      text.push_back(static_cast<byte_t>(c));
  const auto ctext = lz4_compress(text);
  EXPECT_LT(ctext.size() * 2, text.size());
  EXPECT_EQ(lz4_decompress(ctext, text.size()), text);

  const auto noise = pattern_bytes(10000, 7);
  const auto cnoise = lz4_compress(noise);
  EXPECT_LE(cnoise.size(), lz4_compress_bound(noise.size()));
  EXPECT_EQ(lz4_decompress(cnoise, noise.size()), noise);

  for (const std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{4},
                              std::size_t{12}, std::size_t{13}}) {
    const auto tiny = pattern_bytes(n, 50 + n);
    EXPECT_EQ(lz4_decompress(lz4_compress(tiny), n), tiny) << "n=" << n;
  }
}

TEST(Lz4Like, RejectsMalformedInput) {
  std::vector<byte_t> text(3000, static_cast<byte_t>('a'));
  const auto good = lz4_compress(text);

  auto cut = good;
  cut.resize(cut.size() / 2);
  EXPECT_THROW((void)lz4_decompress(cut, text.size()), corrupt_stream_error);

  // Wrong expected size: both directions must throw, not mis-size output.
  EXPECT_THROW((void)lz4_decompress(good, text.size() + 1),
               corrupt_stream_error);
  EXPECT_THROW((void)lz4_decompress(good, text.size() - 1),
               corrupt_stream_error);

  // A match referencing data before the start of the output buffer.
  // token 0x1f: 1 literal, extended match; literal 'x'; offset 9 > produced.
  const std::vector<byte_t> bad_offset{0x1f, 'x', 0x09, 0x00, 0x00};
  EXPECT_THROW((void)lz4_decompress(bad_offset, 100), corrupt_stream_error);
}

// ----- manager: streaming checkpoints ---------------------------------------

struct ModeCase {
  CkptMode mode;
  const char* name;
};

std::unique_ptr<CheckpointStore> make_mode_store(CkptMode mode) {
  if (mode != CkptMode::kTiered) return std::make_unique<MemoryStore>();
  std::vector<TieredCheckpointStore::Level> levels;
  levels.push_back({TierSpec{"L1", FailureSeverity::kProcess, 4, 1},
                    std::make_unique<MemoryStore>()});
  levels.push_back({TierSpec{"L2", FailureSeverity::kNode, 4, 1},
                    std::make_unique<MemoryStore>()});
  return std::make_unique<TieredCheckpointStore>(std::move(levels),
                                                 /*auto_promote=*/true);
}

/// Run one checkpoint in `mode` (sync inline; async/tiered through the
/// staged drain) and then recover, returning the recovered vectors.
void checkpoint_and_recover(CheckpointManager& mgr, CkptMode mode) {
  if (mode == CkptMode::kSync) {
    mgr.checkpoint();
  } else {
    const StageTicket t = mgr.stage();
    mgr.wait_drain(t.version);
    mgr.commit_version(t.version);
  }
  mgr.recover();
}

TEST(ManagerStreaming, BitExactAgainstLegacyForEveryCodecAndMode) {
  // The streaming serializer chunks each vector exactly like the legacy
  // block pipeline and feeds the same slices to the same codec, so the
  // recovered doubles must be bit-identical to the legacy path — lossy
  // codecs included (same quantization decisions on the same chunks).
  const Vector x0 = smooth_vector(5000, 21);  // > block_elems: chunked
  const Vector y0 = smooth_vector(300, 22);   // small: single-shot
  const std::vector<byte_t> blob0 = pattern_bytes(100, 23);

  for (const char* codec : {"none", "sz", "deflate", "lz4"}) {
    for (const ModeCase mc :
         {ModeCase{CkptMode::kSync, "sync"}, ModeCase{CkptMode::kAsync, "async"},
          ModeCase{CkptMode::kTiered, "tiered"}}) {
      SCOPED_TRACE(std::string(codec) + " / " + mc.name);
      const auto comp = make_compressor(codec, ErrorBound::pointwise_rel(1e-4));

      const auto run = [&](bool streaming_on) {
        CheckpointManager mgr(make_mode_store(mc.mode), comp.get());
        StreamingConfig cfg = small_frames();
        cfg.enabled = streaming_on;
        mgr.set_streaming(cfg);
        mgr.set_block_pipeline(1024);
        Vector x = x0, y = y0;
        std::vector<byte_t> blob = blob0;
        mgr.protect(0, "x", &x);
        mgr.protect(1, "y", &y);
        mgr.protect_blob(2, "blob", &blob);
        checkpoint_and_recover(mgr, mc.mode);
        EXPECT_EQ(blob, blob0);
        return std::make_pair(x, y);
      };

      const auto [xs, ys] = run(true);
      const auto [xl, yl] = run(false);
      EXPECT_EQ(xs, xl);  // bitwise double equality via operator==
      EXPECT_EQ(ys, yl);
      if (std::string(codec) != "sz") {
        EXPECT_EQ(xs, x0);  // lossless codecs: exact against the original too
        EXPECT_EQ(ys, y0);
      }
    }
  }
}

TEST(ManagerStreaming, WritesFramedMagicAndLegacyStaysReadable) {
  NoneCompressor none;
  auto store = std::make_unique<MemoryStore>();
  auto* store_raw = store.get();
  CheckpointManager mgr(std::move(store), &none);
  mgr.set_streaming(small_frames());
  Vector x = smooth_vector(600, 31);
  const Vector saved = x;
  mgr.protect(0, "x", &x);

  const CheckpointRecord rec = mgr.checkpoint();  // v0: framed
  const auto framed = store_raw->read(0);
  ASSERT_GE(framed.size(), 4u);
  std::uint32_t magic;
  std::memcpy(&magic, framed.data(), 4);
  EXPECT_EQ(magic, kFrameStreamMagic);
  EXPECT_EQ(rec.stored_bytes, framed.size());

  // A legacy-format checkpoint written with streaming off must restore
  // through the same streaming-enabled manager (magic dispatch).
  StreamingConfig off = small_frames();
  off.enabled = false;
  mgr.set_streaming(off);
  x = smooth_vector(600, 32);
  const Vector legacy_saved = x;
  mgr.checkpoint();  // v1: legacy "CKPT"
  mgr.set_streaming(small_frames());
  x.assign(600, 0.0);
  mgr.recover();
  EXPECT_EQ(x, legacy_saved);
}

TEST(ManagerStreaming, DeltaFormatTakesPrecedence) {
  NoneCompressor none;
  auto store = std::make_unique<MemoryStore>();
  auto* store_raw = store.get();
  CheckpointManager mgr(std::move(store), &none);
  mgr.set_streaming(small_frames());
  mgr.set_delta(4, 256);
  Vector x = smooth_vector(2000, 33);
  const Vector saved = x;
  mgr.protect(0, "x", &x);
  mgr.checkpoint();
  std::uint32_t magic;
  std::memcpy(&magic, store_raw->read(0).data(), 4);
  EXPECT_EQ(magic, 0x54504b44u) << "delta streams keep the DKPT format";
  x.assign(2000, 0.0);
  mgr.recover();
  EXPECT_EQ(x, saved);
}

TEST(ManagerStreaming, StateSizesAroundFrameBoundary) {
  // 4 KiB frames = 512 doubles: sizes straddling one and two frame
  // boundaries, plus a zero-length vector alongside a zero-length blob.
  NoneCompressor none;
  for (const std::size_t n :
       {std::size_t{0}, std::size_t{511}, std::size_t{512}, std::size_t{513},
        std::size_t{1024}, std::size_t{1025}}) {
    SCOPED_TRACE(n);
    CheckpointManager mgr(std::make_unique<MemoryStore>(), &none);
    mgr.set_streaming(small_frames());
    Vector x = smooth_vector(n, 40 + n);
    std::vector<byte_t> blob;
    const Vector saved = x;
    mgr.protect(0, "x", &x);
    mgr.protect_blob(1, "empty", &blob);
    mgr.checkpoint();
    x.assign(17, -1.0);  // wrong size too: recover must resize
    blob.assign(3, 9);
    mgr.recover();
    EXPECT_EQ(x, saved);
    EXPECT_TRUE(blob.empty());
  }
}

TEST(ManagerStreaming, CorruptFramedCheckpointsAreRejected) {
  NoneCompressor none;
  std::vector<byte_t> good;
  {
    auto store = std::make_unique<MemoryStore>();
    auto* store_raw = store.get();
    CheckpointManager mgr(std::move(store), &none);
    mgr.set_streaming(small_frames());
    Vector x = smooth_vector(3000, 51);
    mgr.protect(0, "x", &x);
    mgr.checkpoint();
    good = store_raw->read(0);
  }

  const auto recover_with = [&none](std::vector<byte_t> blob) {
    auto store = std::make_unique<MemoryStore>();
    store->write(0, blob);
    CheckpointManager mgr(std::move(store), &none);
    Vector x(3000, 0.0);
    mgr.protect(0, "x", &x);
    mgr.recover();
  };

  EXPECT_NO_THROW(recover_with(good));

  auto bad = good;  // truncated tail
  bad.resize(bad.size() - 10);
  EXPECT_THROW(recover_with(bad), corrupt_stream_error);

  bad = good;  // flipped payload byte -> frame CRC mismatch
  bad[bad.size() / 2] ^= 0x20;
  EXPECT_THROW(recover_with(bad), corrupt_stream_error);

  bad = good;  // oversized comp_len in the first frame header
  std::memset(bad.data() + 11 + 5, 0xff, 4);
  EXPECT_THROW(recover_with(bad), corrupt_stream_error);

  bad = good;  // corrupt terminator (inside the final 13 zero bytes)
  bad[bad.size() - 3] ^= 0x40;
  EXPECT_THROW(recover_with(bad), corrupt_stream_error);

  bad.assign(4, 0);  // magic alone, then EOF
  std::memcpy(bad.data(), &kFrameStreamMagic, 4);
  EXPECT_THROW(recover_with(bad), corrupt_stream_error);
}

TEST(ManagerStreaming, StoreSinkSeesIncrementalWrites) {
  // The store-facing proof of the bounded-memory claim: the manager's
  // framed serializer must hand the stream to the store sink in many small
  // appends, never as one state-sized blob.
  class CountingSink final : public ByteSink {
   public:
    CountingSink(CheckpointStore& store, int version,
                 std::size_t& appends, std::size_t& max_append)
        : store_(store), version_(version), appends_(appends),
          max_append_(max_append) {}
    void append(std::span<const byte_t> bytes) override {
      ++appends_;
      max_append_ = std::max(max_append_, bytes.size());
      buf_.insert(buf_.end(), bytes.begin(), bytes.end());
    }
    void finish() override { store_.write_pending(version_, buf_); }

   private:
    CheckpointStore& store_;
    int version_;
    std::size_t& appends_;
    std::size_t& max_append_;
    std::vector<byte_t> buf_;
  };

  class CountingStore final : public CheckpointStore {
   public:
    void write(int v, std::span<const byte_t> d) override { inner_.write(v, d); }
    [[nodiscard]] std::vector<byte_t> read(int v) const override {
      return inner_.read(v);
    }
    [[nodiscard]] bool exists(int v) const override { return inner_.exists(v); }
    void remove(int v) override { inner_.remove(v); }
    [[nodiscard]] int latest_version() const override {
      return inner_.latest_version();
    }
    [[nodiscard]] std::unique_ptr<ByteSink> open_write_pending(
        int version) override {
      return std::make_unique<CountingSink>(*this, version, appends,
                                            max_append);
    }
    std::size_t appends = 0, max_append = 0;

   private:
    MemoryStore inner_;
  };

  NoneCompressor none;
  auto store = std::make_unique<CountingStore>();
  auto* store_raw = store.get();
  CheckpointManager mgr(std::move(store), &none);
  StreamingConfig cfg = small_frames("raw");
  mgr.set_streaming(cfg);
  Vector x = smooth_vector(std::size_t{1} << 17, 61);  // 1 MiB of state
  const Vector saved = x;
  mgr.protect(0, "x", &x);
  mgr.checkpoint();
  EXPECT_GE(store_raw->appends, 64u);
  EXPECT_LE(store_raw->max_append,
            std::max(cfg.wbuf_bytes, cfg.frame_bytes() + kFrameHeaderBytes));
  x.assign(x.size(), 0.0);
  mgr.recover();
  EXPECT_EQ(x, saved);
}

TEST(ManagerStreaming, DiskStoreStreamsToFileAndRecovers) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("lckpt_frame_disk_" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  {
    NoneCompressor none;
    CheckpointManager mgr(std::make_unique<DiskStore>(dir.string()), &none);
    mgr.set_streaming(small_frames());
    Vector x = smooth_vector(std::size_t{1} << 16, 71);
    const Vector saved = x;
    mgr.protect(0, "x", &x);
    mgr.checkpoint();
    // The streaming sink's .tmp must be gone and the version committed.
    for (const auto& e : std::filesystem::directory_iterator(dir)) {
      const auto name = e.path().filename().string();
      EXPECT_EQ(name.find(".tmp"), std::string::npos) << name;
      EXPECT_EQ(name.find(".pending"), std::string::npos) << name;
    }
    x.assign(x.size(), 0.0);
    mgr.recover();
    EXPECT_EQ(x, saved);
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace lck

/// Performance-model tests: Eqs. 1, 4–5, 8–9 and Theorems 1–3, including
/// the paper's own worked numerical example (§4.3).

#include <gtest/gtest.h>

#include <cmath>

#include "sim/perf_model.hpp"

namespace lck {
namespace {

TEST(Young, KnownValues) {
  // Tf = 3600 s, Tckp = 120 s ⇒ interval = sqrt(2·3600·120) ≈ 929.5 s.
  EXPECT_NEAR(young_interval_seconds(120.0, 3600.0), 929.5, 0.1);
  // The paper's §3 example: 18 s checkpoints, 4 h MTTI ⇒ ~5 per hour.
  const double interval = young_interval_seconds(18.0, 4.0 * 3600.0);
  EXPECT_NEAR(3600.0 / interval, 5.0, 0.5);
}

TEST(Young, PaperOptimalIntervals) {
  // §5.4: MTTI = 1 h with Tckp ≈ 120 / 70 / 25 s gives ≈ 16 / 12 / 7 min.
  EXPECT_NEAR(young_interval_seconds(120.0, 3600.0) / 60.0, 16.0, 1.0);
  EXPECT_NEAR(young_interval_seconds(70.0, 3600.0) / 60.0, 12.0, 1.0);
  EXPECT_NEAR(young_interval_seconds(25.0, 3600.0) / 60.0, 7.0, 0.5);
}

TEST(OverheadKernel, Definition) {
  const double lambda = 1.0 / 3600.0;
  const double t = 120.0;
  EXPECT_NEAR(overhead_kernel(t, lambda),
              std::sqrt(2.0 * lambda * t) + lambda * t, 1e-15);
  EXPECT_DOUBLE_EQ(overhead_kernel(0.0, lambda), 0.0);
}

TEST(ExpectedOverhead, Figure1Shape) {
  // Fig. 1: overhead ≈ 40% at Tckp = 120 s, hourly MTTI; grows with both λ
  // and Tckp.
  const double hourly = 1.0 / 3600.0;
  const double at_120 = expected_overhead_ratio(120.0, hourly);
  EXPECT_GT(at_120, 0.30);
  EXPECT_LT(at_120, 0.50);

  EXPECT_LT(expected_overhead_ratio(25.0, hourly), at_120);
  EXPECT_GT(expected_overhead_ratio(120.0, 2.0 * hourly), at_120);
  EXPECT_DOUBLE_EQ(expected_overhead_ratio(0.0, hourly), 0.0);
}

TEST(ExpectedOverhead, DivergesAtSaturation) {
  // When overhead terms reach 1 the model returns infinity (thrashing).
  EXPECT_TRUE(std::isinf(expected_overhead_ratio(1e9, 1.0)));
}

TEST(ExpectedOverheadLossy, ReducesToTraditionalWhenNPrimeZero) {
  const double lambda = 1.0 / 3600.0;
  EXPECT_DOUBLE_EQ(expected_overhead_ratio_lossy(25.0, lambda, 0.0, 1.2),
                   expected_overhead_ratio(25.0, lambda));
}

TEST(ExpectedOverheadLossy, MonotonicInNPrime) {
  const double lambda = 1.0 / 3600.0;
  double prev = 0.0;
  for (const double np : {0.0, 100.0, 500.0, 1000.0}) {
    const double o = expected_overhead_ratio_lossy(25.0, lambda, np, 1.2);
    EXPECT_GT(o, prev - 1e-15);
    prev = o;
  }
}

TEST(Theorem1, PaperWorkedExample) {
  // §4.3: Tckp 120 → 25 s, MTTI 1 h, GMRES 5,875 iterations in 7,160 s
  // (Tit ≈ 1.22 s) ⇒ the budget is about 500 extra iterations.
  const double lambda = 1.0 / 3600.0;
  const double t_it = 7160.0 / 5875.0;
  const double budget = theorem1_nprime_budget(120.0, 25.0, lambda, t_it);
  EXPECT_NEAR(budget, 500.0, 60.0);
}

TEST(Theorem1, BudgetIsConsistentWithOverheadCrossover) {
  // At N' slightly under the budget, lossy wins; slightly over, it loses.
  const double lambda = 1.0 / 3600.0;
  const double t_it = 1.2;
  const double t_trad = 120.0, t_lossy = 25.0;
  const double budget = theorem1_nprime_budget(t_trad, t_lossy, lambda, t_it);
  const double trad = expected_overhead_ratio(t_trad, lambda);
  EXPECT_LT(
      expected_overhead_ratio_lossy(t_lossy, lambda, budget * 0.99, t_it),
      trad);
  EXPECT_GT(
      expected_overhead_ratio_lossy(t_lossy, lambda, budget * 1.01, t_it),
      trad);
}

TEST(Theorem1, NoBudgetWhenLossyCheckpointIsSlower) {
  const double lambda = 1.0 / 3600.0;
  EXPECT_LT(theorem1_nprime_budget(25.0, 120.0, lambda, 1.2), 0.0);
}

TEST(Theorem2, ZeroErrorMeansZeroExtraIterations) {
  EXPECT_NEAR(theorem2_extra_iterations_at(0.99998, 0.0, 2000.0), 0.0, 1e-9);
}

TEST(Theorem2, PaperJacobiExpectation) {
  // §5.3: R ≈ 0.99998, N = 3941, eb = 1e-4 ⇒ expected N' ≈ 6 (the paper's
  // quoted value lies inside the Theorem 2 interval).
  const StationaryBound b = theorem2_expected_bound(0.99998, 1e-4, 3941.0);
  EXPECT_GT(b.hi, b.lo);
  EXPECT_GE(b.lo, 0.0);
  EXPECT_LT(b.lo, 6.5);
  EXPECT_GT(b.hi, 5.0);
  EXPECT_LT(b.hi, 4000.0);
}

TEST(Theorem2, MonotonicInErrorBound) {
  double prev = -1.0;
  for (const double eb : {1e-6, 1e-5, 1e-4, 1e-3}) {
    const double np = theorem2_extra_iterations_at(0.9999, eb, 2000.0);
    EXPECT_GT(np, prev);
    prev = np;
  }
}

TEST(Theorem2, LaterRestartCostsMoreIterations) {
  // R^t shrinks with t so a fixed absolute perturbation hurts more later.
  const double r = 0.999, eb = 1e-4;
  EXPECT_LT(theorem2_extra_iterations_at(r, eb, 100.0),
            theorem2_extra_iterations_at(r, eb, 5000.0));
}

TEST(Theorem3, BoundTracksResidual) {
  EXPECT_DOUBLE_EQ(theorem3_gmres_error_bound(1e-3, 1.0), 1e-3);
  EXPECT_DOUBLE_EQ(theorem3_gmres_error_bound(5.0, 10.0, 0.5), 0.1);  // clamped
  EXPECT_DOUBLE_EQ(theorem3_gmres_error_bound(0.0, 1.0), 1e-15);      // floor
  EXPECT_DOUBLE_EQ(theorem3_gmres_error_bound(1.0, 0.0), 1e-12);      // guard
}

TEST(ExpectedTotal, MatchesOverheadDecomposition) {
  const double lambda = 1.0 / 3600.0;
  const double n = 5875.0, t_it = 1.22, t_ckp = 25.0;
  const double total = expected_total_seconds(n, t_it, t_ckp, lambda, 0.0);
  const double overhead = expected_overhead_ratio(t_ckp, lambda);
  EXPECT_NEAR(total, n * t_it * (1.0 + overhead), 1e-6 * total);
}

// ----- overlap-aware async pipeline model -----------------------------------

TEST(AsyncBlocking, StageOnlyWhenDrainFitsInterval) {
  // Drain shorter than the checkpoint interval: only the stage blocks.
  EXPECT_DOUBLE_EQ(async_blocking_seconds(0.5, 100.0, 420.0), 0.5);
}

TEST(AsyncBlocking, BackpressureWhenDrainOutlivesInterval) {
  // Drain 500 s against a 420 s interval: 80 s of back-pressure on top of
  // the stage cost.
  EXPECT_DOUBLE_EQ(async_blocking_seconds(0.5, 500.0, 420.0), 80.5);
}

TEST(AsyncOverhead, BeatsSyncWhenStageIsCheap) {
  // Paper-scale numbers: 120 s sync checkpoint, 1 s stage, MTTI 1 h.
  const double lambda = 1.0 / 3600.0;
  const double sync = expected_overhead_ratio(120.0, lambda);
  const double async = expected_overhead_ratio_async(1.0, 120.0, lambda, 420.0);
  EXPECT_LT(async, sync);
}

TEST(AsyncOverhead, ReducesTowardSyncAsStageApproachesDrain) {
  // When staging costs as much as the full drain (no overlap win), the
  // async model must not claim an advantage.
  const double lambda = 1.0 / 3600.0;
  const double sync = expected_overhead_ratio(120.0, lambda);
  const double async_degenerate =
      expected_overhead_ratio_async(120.0, 120.0, lambda, 420.0);
  EXPECT_GE(async_degenerate, sync);
}

TEST(AsyncOverhead, MonotonicInDrainExposure) {
  const double lambda = 1.0 / 3600.0;
  const double short_drain =
      expected_overhead_ratio_async(1.0, 60.0, lambda, 420.0);
  const double long_drain =
      expected_overhead_ratio_async(1.0, 240.0, lambda, 420.0);
  EXPECT_LT(short_drain, long_drain);
}

}  // namespace
}  // namespace lck

/// Tests for the experiment calibration helpers (paper constants, Table 3
/// rows, local problem builders).

#include <gtest/gtest.h>

#include "core/experiment.hpp"

namespace lck {
namespace {

TEST(PaperMethods, CalibrationConstants) {
  const PaperMethod j = paper_jacobi();
  EXPECT_EQ(j.method, "jacobi");
  EXPECT_DOUBLE_EQ(j.rtol, 1e-4);
  EXPECT_NEAR(j.iteration_seconds(), 3000.0 / 3941.0, 1e-9);
  EXPECT_EQ(j.trad_vectors, 1);

  const PaperMethod g = paper_gmres();
  EXPECT_TRUE(g.adaptive_eb);
  EXPECT_NEAR(g.iteration_seconds(), 7200.0 / 5875.0, 1e-9);
  EXPECT_DOUBLE_EQ(g.expected_nprime, 0.0);

  const PaperMethod c = paper_cg();
  EXPECT_EQ(c.trad_vectors, 2);  // x and p (paper Algorithm 1 line 4)
  EXPECT_DOUBLE_EQ(c.expected_nprime, 594.0);
  EXPECT_NEAR(c.expected_nprime / c.baseline_iterations, 0.25, 0.001);
}

TEST(PaperMethods, LookupByName) {
  EXPECT_EQ(paper_method("jacobi").method, "jacobi");
  EXPECT_EQ(paper_method("gmres").method, "gmres");
  EXPECT_EQ(paper_method("cg").method, "cg");
  EXPECT_THROW(paper_method("bicgstab"), config_error);
}

TEST(Table3, GridSizesMatchPaper) {
  EXPECT_EQ(table3_grid_n(256), 1088);
  EXPECT_EQ(table3_grid_n(1024), 1728);
  EXPECT_EQ(table3_grid_n(2048), 2160);
  EXPECT_THROW(static_cast<void>(table3_grid_n(100)), config_error);
}

TEST(Table3, PerProcessVectorSizeIsRoughly38MB) {
  // The paper's weak-scaling keeps ~38.4 MB of x per process.
  for (const int procs : {256, 512, 768, 1024, 1280, 1536, 1792, 2048}) {
    const double per_proc = table3_vector_bytes(procs) / procs;
    EXPECT_GT(per_proc, 36e6) << procs;
    EXPECT_LT(per_proc, 41e6) << procs;
  }
}

TEST(StaticBytes, ProportionalToVector) {
  EXPECT_DOUBLE_EQ(static_state_bytes(100.0), 25.0);
}

TEST(LocalProblem, StationaryUsesPaperStencil) {
  const LocalProblem p = make_local_problem("jacobi", 4, 1e-6);
  EXPECT_DOUBLE_EQ(p.a.at(0, 0), -6.0);
  EXPECT_EQ(p.precond, nullptr);
  auto solver = p.make_solver();
  EXPECT_TRUE(solver->solve().converged);
}

TEST(LocalProblem, KrylovUsesSpdWithBlockJacobi) {
  const LocalProblem p = make_local_problem("cg", 4, 1e-8);
  EXPECT_DOUBLE_EQ(p.a.at(0, 0), 6.0);
  ASSERT_NE(p.precond, nullptr);
  EXPECT_EQ(p.precond->name(), "bjacobi-ilu0");
  auto solver = p.make_solver();
  EXPECT_TRUE(solver->solve().converged);
}

TEST(LocalProblem, VectorBytesMatchesDimension) {
  const LocalProblem p = make_local_problem("cg", 5, 1e-8);
  EXPECT_DOUBLE_EQ(p.vector_bytes(), 125.0 * 8.0);
}

}  // namespace
}  // namespace lck

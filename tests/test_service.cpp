/// Multi-tenant checkpoint service tests: namespace isolation, cross-job
/// dedup accounting, admission back-pressure, promotion-pool fairness,
/// bit-stable reruns through the service, and a concurrent-writer stress
/// over the shared DedupChunkStore (the TSan target).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "ckpt/checkpoint_manager.hpp"
#include "ckpt/chunk/dedup_store.hpp"
#include "ckpt/tier/tiered_store.hpp"
#include "common/rng.hpp"
#include "compress/compressor.hpp"
#include "core/experiment.hpp"
#include "core/resilient_runner.hpp"
#include "svc/checkpoint_service.hpp"

namespace lck {
namespace {

using svc::AdmissionController;
using svc::CheckpointService;
using svc::JobConfig;
using svc::PromotionPool;
using svc::ServiceConfig;

std::vector<byte_t> blob(std::size_t n, byte_t fill) {
  return std::vector<byte_t>(n, fill);
}

// ----- admission controller -------------------------------------------------

TEST(Admission, GrantsWithinBudgetDoNotWait) {
  AdmissionController adm(1000, 4);
  auto a = adm.acquire(400);
  auto b = adm.acquire(400);
  EXPECT_FALSE(a.waited());
  EXPECT_FALSE(b.waited());
  EXPECT_EQ(adm.bytes_in_use(), 800u);
  EXPECT_EQ(adm.inflight(), 2u);
  a.release();
  b.release();
  EXPECT_EQ(adm.bytes_in_use(), 0u);
  EXPECT_EQ(adm.waits(), 0u);
}

TEST(Admission, OversizedRequestClampsToBudgetAndAdmitsAlone) {
  AdmissionController adm(100, 8);
  auto g = adm.acquire(10000);  // clamped, not rejected
  EXPECT_EQ(g.bytes(), 100u);
  EXPECT_EQ(adm.bytes_in_use(), 100u);
}

TEST(Admission, BlocksWhenBudgetExhaustedAndCountsWaits) {
  AdmissionController adm(100, 8);
  auto gate = adm.acquire(100);  // the "slow L3" holding the whole budget
  std::atomic<bool> admitted{false};
  std::thread t([&] {
    auto g = adm.acquire(50);
    admitted.store(true);
    EXPECT_TRUE(g.waited());
    EXPECT_GE(g.wait_seconds(), 0.0);
  });
  while (adm.waits() == 0) std::this_thread::yield();
  EXPECT_FALSE(admitted.load());
  gate.release();
  t.join();
  EXPECT_TRUE(admitted.load());
  EXPECT_EQ(adm.waits(), 1u);
  EXPECT_EQ(adm.grants(), 2u);
}

TEST(Admission, FifoKeepsSmallRequestsFromStarvingLargeOnes) {
  AdmissionController adm(100, 8);
  auto gate = adm.acquire(60);
  std::mutex order_mu;
  std::vector<std::string> order;
  const auto record = [&](const char* who) {
    const std::lock_guard<std::mutex> lock(order_mu);
    order.emplace_back(who);
  };
  // The large request queues first (ticket order is acquire-call order)...
  std::thread big([&] {
    auto g = adm.acquire(80);
    record("big");
  });
  while (adm.waits() < 1) std::this_thread::yield();
  // ...then a small one that *would* fit beside the gate right now, but
  // must not bypass. (It must not fit beside the big grant, or it could be
  // admitted concurrently with big and race it to the order log.)
  std::thread small([&] {
    auto g = adm.acquire(30);
    record("small");
  });
  while (adm.waits() < 2) std::this_thread::yield();
  gate.release();
  big.join();
  small.join();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], "big");
  EXPECT_EQ(order[1], "small");
}

// ----- promotion pool fairness ----------------------------------------------

TEST(PromoPool, RunsEverySubmittedTaskBeforeShutdown) {
  std::atomic<int> ran{0};
  {
    PromotionPool pool(3, 1024);
    for (int i = 0; i < 200; ++i)
      pool.submit(i % 7, 100, [&] { ran.fetch_add(1); });
  }  // destructor drains
  EXPECT_EQ(ran.load(), 200);
}

TEST(PromoPool, DeficitRoundRobinKeepsLightJobUnstarved) {
  // One worker for a deterministic serving order. A gate task occupies the
  // worker while both jobs queue: a heavy job with 40 quantum-sized tasks
  // and a light job with 5 tiny ones. DRR must interleave the light job's
  // tasks with the head of the heavy backlog, not append them behind it.
  constexpr std::size_t kQuantum = 1 << 20;
  PromotionPool pool(1, kQuantum);
  std::mutex gate_mu;
  std::condition_variable gate_cv;
  bool gate_open = false;
  pool.submit(99, 1, [&] {
    std::unique_lock<std::mutex> lock(gate_mu);
    gate_cv.wait(lock, [&] { return gate_open; });
  });
  std::mutex order_mu;
  std::vector<int> order;  // job id per completed task
  for (int i = 0; i < 40; ++i)
    pool.submit(1, kQuantum, [&] {
      const std::lock_guard<std::mutex> lock(order_mu);
      order.push_back(1);
    });
  for (int i = 0; i < 5; ++i)
    pool.submit(2, 1024, [&] {
      const std::lock_guard<std::mutex> lock(order_mu);
      order.push_back(2);
    });
  {
    const std::lock_guard<std::mutex> lock(gate_mu);
    gate_open = true;
  }
  gate_cv.notify_all();
  while (pool.executed() < 46) std::this_thread::yield();
  int last_light = -1;
  for (int i = 0; i < static_cast<int>(order.size()); ++i)
    if (order[i] == 2) last_light = i;
  // Strict DRR alternation serves the 5th light task by position ~10; any
  // starvation (light job appended after the heavy 40) would put it at 44.
  EXPECT_LT(last_light, 15);
  EXPECT_EQ(order.size(), 45u);
}

// ----- service: namespaces --------------------------------------------------

TEST(Service, NamespaceIsolationAcrossPruneAndInvalidate) {
  CheckpointService service;
  auto job_a = service.open_job({.name = "a", .retention = 2,
                                 .background_promotions = false});
  auto job_b = service.open_job({.name = "b", .retention = 2,
                                 .background_promotions = false});
  auto store_a = job_a.make_store();
  auto store_b = job_b.make_store();
  auto* tier_a = dynamic_cast<TieredCheckpointStore*>(store_a.get());
  auto* tier_b = dynamic_cast<TieredCheckpointStore*>(store_b.get());
  ASSERT_NE(tier_a, nullptr);
  ASSERT_NE(tier_b, nullptr);

  const auto b_data = blob(4096, 0xBB);
  store_b->write(0, b_data);
  tier_b->promote_now(0, 2);

  // Job A churns far past its retention: its own old versions are pruned
  // from the shared tier as new ones land.
  for (int v = 0; v < 6; ++v) {
    store_a->write(v, blob(4096, static_cast<byte_t>(v)));
    tier_a->promote_now(v, 2);
  }
  const int stride = service.config().namespace_stride;
  EXPECT_EQ(service.l3().versions_in(0, stride).size(), 2u);  // A's retention
  EXPECT_EQ(service.l3().versions_in(stride, 2 * stride).size(), 1u);

  // A node failure destroys A's L1; the shared PFS tier survives (its spec
  // outlives kNode) and A recovers its retained versions from it.
  tier_a->invalidate(FailureSeverity::kNode);
  EXPECT_EQ(service.l3().versions_in(0, stride).size(), 2u);
  EXPECT_EQ(store_a->latest_version(), 5);
  EXPECT_EQ(store_a->read(5), blob(4096, static_cast<byte_t>(5)));

  // Explicitly draining A's namespace removes only A's shared-tier keys...
  store_a->remove(4);
  store_a->remove(5);
  EXPECT_TRUE(service.l3().versions_in(0, stride).empty());
  // ...and B's version is untouched, byte-exact.
  EXPECT_TRUE(store_b->exists(0));
  EXPECT_EQ(store_b->read(0), b_data);
  EXPECT_EQ(service.l3().versions_in(stride, 2 * stride).size(), 1u);

  store_a.reset();
  store_b.reset();
}

TEST(Service, ReopenedNamespaceSeesSurvivingVersions) {
  CheckpointService service;
  auto job = service.open_job({.background_promotions = false});
  const auto data = blob(2048, 0x5A);
  {
    auto store = job.make_store();
    auto* tier = dynamic_cast<TieredCheckpointStore*>(store.get());
    store->write(3, data);
    tier->promote_now(3, 2);
  }  // job's stack dies; the shared L3 retains its namespace
  auto store = job.make_store();
  EXPECT_EQ(store->latest_version(), 3);
  EXPECT_EQ(store->read(3), data);
}

TEST(Service, MaxJobsBlocksOpenUntilAClose) {
  ServiceConfig cfg;
  cfg.max_jobs = 1;
  CheckpointService service(cfg);
  auto first = service.open_job();
  std::atomic<bool> opened{false};
  std::thread t([&] {
    auto second = service.open_job();
    opened.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(opened.load());
  first.close();
  t.join();
  EXPECT_TRUE(opened.load());
  EXPECT_EQ(service.jobs_opened(), 2);
  EXPECT_EQ(service.jobs_active(), 0);
}

// ----- service: cross-job dedup ---------------------------------------------

TEST(Service, CrossJobDedupHitsAreAttributedToTheWritingJob) {
  // Two jobs checkpoint the *same* protected state in delta mode; the
  // second job's chunks are all already resident, so its writes are pure
  // dedup hits — attributed to it, not to the first writer.
  Rng rng(7);
  Vector x(8192);
  for (auto& v : x) v = rng.uniform(-1.0, 1.0);
  NoneCompressor none;

  CheckpointService service;
  auto job_a = service.open_job({.name = "first", .l3_promote_every = 1});
  auto job_b = service.open_job({.name = "second", .l3_promote_every = 1});

  const auto run_job = [&](svc::JobHandle& job) {
    auto store = job.make_store();
    auto* tier = dynamic_cast<TieredCheckpointStore*>(store.get());
    Vector mine = x;
    CheckpointManager mgr(std::move(store), &none);
    mgr.set_retention(1 << 20);  // tier retention governs
    mgr.set_delta(4, 256);
    mgr.protect(0, "x", &mine);
    mgr.checkpoint();
    tier->drain_promotions();
  };
  run_job(job_a);
  run_job(job_b);

  const auto sa = job_a.stats();
  const auto sb = job_b.stats();
  EXPECT_EQ(sa.dedup_hits, 0u) << "first writer stores every chunk";
  EXPECT_GT(sb.dedup_hits, 0u) << "second job's chunks are all resident";
  EXPECT_GT(sb.dedup_bytes_saved, 0u);
  EXPECT_EQ(sa.l3_writes, 1u);
  EXPECT_EQ(sb.l3_writes, 1u);
  // Aggregate: two logical copies, ~one physical.
  EXPECT_LT(service.l3().physical_bytes(),
            service.l3().logical_bytes() * 3 / 5);

  // The scrape surface carries the per-job series and the global gauges.
  const auto snap = service.metrics().snapshot();
  EXPECT_EQ(snap.counter("svc.dedup_hits{job=second}"),
            static_cast<double>(sb.dedup_hits));
  EXPECT_EQ(snap.counter("svc.l3_writes{job=first}"), 1.0);
  EXPECT_GT(snap.gauges.at("svc.l3_physical_bytes"), 0.0);
  EXPECT_NE(snap.to_prometheus().find("svc_l3_writes"), std::string::npos);
}

// ----- service: admission back-pressure -------------------------------------

TEST(Service, ConcurrentJobsHitAdmissionBackpressure) {
  // Budget far below one blob: every write clamps to the whole budget, so
  // shared-tier writes are fully serialized and any overlap must queue. One
  // job's writes are big enough (tens of ms inside the grant) that even a
  // single-core scheduler preempts mid-grant and the other job's write
  // lands in the queue; retry rounds make the overlap certain without ever
  // spinning unbounded.
  ServiceConfig cfg;
  cfg.admission_bytes = 1024;
  cfg.admission_inflight = 1;
  CheckpointService service(cfg);

  auto big_job = service.open_job(
      {.name = "big", .background_promotions = false});
  auto small_job = service.open_job(
      {.name = "small", .background_promotions = false});
  auto big_store = big_job.make_store();
  auto small_store = small_job.make_store();
  auto* big_tier = dynamic_cast<TieredCheckpointStore*>(big_store.get());
  auto* small_tier = dynamic_cast<TieredCheckpointStore*>(small_store.get());
  const auto big_blob = blob(32 * 1024 * 1024, 0xB1);

  // Fresh versions each round (promote_now of an already-promoted version
  // is a no-op); removals keep resident bytes bounded across rounds.
  int small_v = 0;
  for (int round = 0; round < 10 && service.admission().waits() == 0;
       ++round) {
    std::atomic<bool> big_done{false};
    std::thread big([&] {
      big_store->write(round, big_blob);
      big_tier->promote_now(round, 2);
      if (round > 0) big_store->remove(round - 1);
      big_done.store(true);
    });
    // The small job keeps issuing shared-tier writes for as long as the big
    // one runs, so some acquire() necessarily lands inside the big grant.
    std::thread small([&] {
      while (!big_done.load()) {
        const int v = small_v++;
        small_store->write(v, blob(16 * 1024, static_cast<byte_t>(v)));
        small_tier->promote_now(v, 2);
        if (v >= 8) small_store->remove(v - 8);
      }
    });
    big.join();
    small.join();
  }

  EXPECT_GT(service.admission().waits(), 0u);
  EXPECT_EQ(service.admission().bytes_in_use(), 0u);
  EXPECT_EQ(service.admission().inflight(), 0u);
  const auto snap = service.metrics().snapshot();
  EXPECT_GT(snap.counter("svc.admission_waits"), 0.0);
}

// ----- service: bit-stable runs through the runner --------------------------

ResilienceConfig tiered_config() {
  ResilienceConfig cfg;
  cfg.scheme = CkptScheme::kLossy;
  cfg.ckpt_mode = CkptMode::kTiered;
  cfg.policy.interval_seconds = 20.0;
  cfg.failure.mtti_seconds = 60.0;
  cfg.iteration_seconds = 5.0;
  cfg.failure.seed = 7;
  cfg.dynamic_scale = 1.0;
  cfg.cluster.ranks = 64;
  cfg.cluster.pfs_per_rank_overhead = 0.001;
  cfg.static_bytes = 1e6;
  cfg.tiered.l2_promote_every = 1;
  cfg.tiered.l3_promote_every = 2;
  return cfg;
}

TEST(Service, RunnerRerunsAreBitStableAndMatchBuiltinTiered) {
  const LocalProblem p = make_local_problem("cg", 8, 1e-8);

  // Baseline: the runner's own built-in tiered stack.
  auto s0 = p.make_solver();
  const auto builtin = ResilientRunner(*s0, tiered_config()).run();
  ASSERT_TRUE(builtin.converged);
  ASSERT_GT(builtin.failures, 0);

  CheckpointService service;
  const auto run_via_service = [&](svc::JobHandle& job) {
    auto solver = p.make_solver();
    ResilienceConfig cfg = tiered_config();
    cfg.store_factory = job.store_factory();
    return ResilientRunner(*solver, cfg).run();
  };
  // One fresh job per run (fleet semantics): re-attaching to a *used*
  // namespace would legitimately let the runner recover from the previous
  // run's surviving L3 versions — persistence, not a determinism bug.
  auto job1 = service.open_job({.retention = 2, .l2_promote_every = 1,
                                .l3_promote_every = 2,
                                .background_promotions = false});
  const auto r1 = run_via_service(job1);
  auto job2 = service.open_job({.retention = 2, .l2_promote_every = 1,
                                .l3_promote_every = 2,
                                .background_promotions = false});
  const auto r2 = run_via_service(job2);

  // Service-backed runs are bit-stable across namespaces and against the
  // built-in stack: the namespace view changes where bytes live, never
  // what the simulation observes.
  for (const auto* r : {&r1, &r2}) {
    EXPECT_EQ(r->converged, builtin.converged);
    EXPECT_EQ(r->executed_steps, builtin.executed_steps);
    EXPECT_EQ(r->failures, builtin.failures);
    EXPECT_EQ(r->checkpoints, builtin.checkpoints);
    EXPECT_EQ(r->recoveries, builtin.recoveries);
    EXPECT_DOUBLE_EQ(r->virtual_seconds, builtin.virtual_seconds);
    EXPECT_DOUBLE_EQ(r->final_residual_norm, builtin.final_residual_norm);
  }
}

TEST(Service, WeibullFailureModelRunsThroughServiceStore) {
  const LocalProblem p = make_local_problem("cg", 8, 1e-8);
  CheckpointService service;
  auto job = service.open_job({.l3_promote_every = 2,
                               .background_promotions = false});
  auto solver = p.make_solver();
  ResilienceConfig cfg = tiered_config();
  cfg.failure.distribution = "weibull";
  cfg.failure.weibull_shape = 0.7;  // bursty arrivals
  cfg.store_factory = job.store_factory();
  const auto res = ResilientRunner(*solver, cfg).run();
  EXPECT_TRUE(res.converged);
  EXPECT_GT(res.failures, 0);
}

// ----- shared dedup store under concurrent writers (TSan target) ------------

TEST(DedupStoreConcurrency, ParallelWritersKeepRefcountsAndBytesExact) {
  // Build one delta-format stream (chunk-splittable) so concurrent writes
  // exercise the refcount acquire/release and hit-counter paths, not just
  // the raw-blob fallback.
  Rng rng(21);
  Vector x(4096);
  for (auto& v : x) v = rng.uniform(-2.0, 2.0);
  NoneCompressor none;
  CheckpointManager mgr(std::make_unique<MemoryStore>(), &none);
  mgr.set_delta(4, 128);
  mgr.protect(0, "x", &x);
  mgr.checkpoint();
  const std::vector<byte_t> stream = mgr.store().read(mgr.latest_version());

  DedupChunkStore store;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&, t] {
      const int base = t * 1000;
      for (int i = 0; i < kPerThread; ++i) {
        store.write(base + i, stream);       // identical content: refs churn
        if (i % 3 == 0) store.write(base + i, stream);  // overwrite path
        if (i % 5 == 0 && i > 0) store.remove(base + i - 1);
        (void)store.read(base + i);          // concurrent reassembly
        (void)store.latest_version();
      }
    });
  for (auto& t : threads) t.join();

  // Every surviving version reassembles byte-exactly.
  int survivors = 0;
  for (int t = 0; t < kThreads; ++t)
    for (int i = 0; i < kPerThread; ++i)
      if (store.exists(t * 1000 + i)) {
        ++survivors;
        ASSERT_EQ(store.read(t * 1000 + i), stream);
      }
  EXPECT_GT(survivors, 0);
  EXPECT_GT(store.dedup_hits(), 0u);
  // All versions share one chunk set: a fresh write of the same stream is
  // a pure dedup hit, and physical stays a fraction of logical.
  const DedupWriteStats probe = store.write_counted(999999, stream);
  EXPECT_GT(probe.chunks, 0u);
  EXPECT_EQ(probe.hits, probe.chunks);
  EXPECT_LT(store.physical_bytes(), store.logical_bytes() / 4);
}

}  // namespace
}  // namespace lck

/// Checkpoint substrate tests: stores (memory + disk), the FTI-like
/// Protect/Checkpoint/Recover/Snapshot API, CRC integrity, retention, and
/// compressed checkpoint payloads.

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>

#include "ckpt/checkpoint_manager.hpp"
#include "common/rng.hpp"
#include "compress/sz/sz_like.hpp"

namespace lck {
namespace {

Vector random_vector(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Vector v(n);
  for (auto& x : v) x = rng.uniform(-5.0, 5.0);
  return v;
}

// ----- stores ---------------------------------------------------------------

template <typename StoreT>
std::unique_ptr<CheckpointStore> make_store();

template <>
std::unique_ptr<CheckpointStore> make_store<MemoryStore>() {
  return std::make_unique<MemoryStore>();
}

struct DiskStoreTag {};
template <>
std::unique_ptr<CheckpointStore> make_store<DiskStoreTag>() {
  // Unique per process *and* per call: ctest runs each test in its own
  // process concurrently, so a static counter alone would collide.
  static int counter = 0;
  const auto dir =
      std::filesystem::temp_directory_path() /
      ("lckpt_test_store_" +
       std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
       "_" + std::to_string(getpid()) + "_" + std::to_string(counter++));
  std::filesystem::remove_all(dir);
  return std::make_unique<DiskStore>(dir.string());
}

template <typename T>
class StoreTest : public ::testing::Test {};

using StoreTypes = ::testing::Types<MemoryStore, DiskStoreTag>;
TYPED_TEST_SUITE(StoreTest, StoreTypes);

TYPED_TEST(StoreTest, WriteReadRoundTrip) {
  auto store = make_store<TypeParam>();
  const std::vector<byte_t> data{1, 2, 3, 250, 0};
  store->write(0, data);
  EXPECT_EQ(store->read(0), data);
}

TYPED_TEST(StoreTest, LatestVersionTracksWrites) {
  auto store = make_store<TypeParam>();
  EXPECT_EQ(store->latest_version(), -1);
  store->write(0, std::vector<byte_t>{1});
  store->write(3, std::vector<byte_t>{2});
  store->write(1, std::vector<byte_t>{3});
  EXPECT_EQ(store->latest_version(), 3);
}

TYPED_TEST(StoreTest, RemoveDeletes) {
  auto store = make_store<TypeParam>();
  store->write(5, std::vector<byte_t>{9});
  EXPECT_TRUE(store->exists(5));
  store->remove(5);
  EXPECT_FALSE(store->exists(5));
  EXPECT_THROW((void)store->read(5), corrupt_stream_error);
}

TYPED_TEST(StoreTest, OverwriteReplacesContent) {
  auto store = make_store<TypeParam>();
  store->write(0, std::vector<byte_t>{1, 1});
  store->write(0, std::vector<byte_t>{2, 2, 2});
  EXPECT_EQ(store->read(0).size(), 3u);
}

TEST(DiskStore, PersistsAcrossInstances) {
  const auto dir = std::filesystem::temp_directory_path() / "lckpt_persist";
  std::filesystem::remove_all(dir);
  {
    DiskStore store(dir.string());
    store.write(7, std::vector<byte_t>{42, 43});
  }
  DiskStore reopened(dir.string());
  EXPECT_EQ(reopened.latest_version(), 7);
  EXPECT_EQ(reopened.read(7), (std::vector<byte_t>{42, 43}));
  std::filesystem::remove_all(dir);
}

TEST(DiskStore, StalePendingSweepThenRetentionPruneAfterReopen) {
  // Crash between write_pending and commit, then reopen + prune: the
  // reopen must sweep the orphaned .lck.pending file, the new manager must
  // reuse the swept version number without clashing, and retention pruning
  // over the reopened store must retire the pre-crash committed versions.
  const auto dir = std::filesystem::temp_directory_path() /
                   ("lckpt_stale_prune_" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  NoneCompressor none;
  Vector x(64, 1.0);
  {
    CheckpointManager mgr(std::make_unique<DiskStore>(dir.string()), &none);
    mgr.set_retention(2);
    mgr.protect(0, "x", &x);
    mgr.checkpoint();  // v0 committed
    x.assign(64, 2.0);
    mgr.checkpoint();  // v1 committed
  }
  {
    // "Crash": a pending v2 written straight to the store, never committed
    // (bypassing the manager, whose destructor would roll it back).
    DiskStore store(dir.string());
    store.write_pending(2, std::vector<byte_t>{9, 9, 9});
    EXPECT_TRUE(store.has_pending(2));
  }  // process dies with the .lck.pending file on disk

  CheckpointManager mgr(std::make_unique<DiskStore>(dir.string()), &none);
  mgr.set_retention(1);
  mgr.protect(0, "x", &x);
  // The sweep ran at DiskStore construction: no pending leftover, and the
  // version counter continues from the committed history (v2 is free for
  // reuse because the orphan never committed).
  EXPECT_FALSE(mgr.store().has_pending(2));
  EXPECT_EQ(mgr.latest_version(), 1);
  x.assign(64, 3.0);
  const CheckpointRecord rec = mgr.checkpoint();  // reuses version 2
  EXPECT_EQ(rec.version, 2);
  // retention 1: the prune at v2's commit must retire both pre-crash
  // versions, stepping across the whole reopened history.
  EXPECT_FALSE(mgr.store().exists(0));
  EXPECT_FALSE(mgr.store().exists(1));
  EXPECT_TRUE(mgr.store().exists(2));
  x.assign(64, 0.0);
  mgr.recover();
  EXPECT_DOUBLE_EQ(x[0], 3.0);  // v2's state, not the orphan's bytes
  // No stray files beyond the single committed checkpoint.
  std::size_t files = 0;
  for ([[maybe_unused]] const auto& e :
       std::filesystem::directory_iterator(dir))
    ++files;
  EXPECT_EQ(files, 1u);
  std::filesystem::remove_all(dir);
}

// ----- manager ---------------------------------------------------------------

TEST(Manager, ProtectCheckpointRecoverRoundTrip) {
  NoneCompressor none;
  CheckpointManager mgr(std::make_unique<MemoryStore>(), &none);
  Vector x = random_vector(1000, 1);
  Vector p = random_vector(1000, 2);
  mgr.protect(0, "x", &x);
  mgr.protect(1, "p", &p);

  const Vector x_saved = x, p_saved = p;
  const auto rec = mgr.checkpoint();
  EXPECT_EQ(rec.version, 0);
  EXPECT_EQ(rec.raw_bytes, 2000 * sizeof(double));

  // Mutate, then recover: originals must come back exactly.
  for (auto& v : x) v = 0.0;
  for (auto& v : p) v = -1.0;
  mgr.recover();
  EXPECT_EQ(x, x_saved);
  EXPECT_EQ(p, p_saved);
}

TEST(Manager, BlobRoundTrip) {
  NoneCompressor none;
  CheckpointManager mgr(std::make_unique<MemoryStore>(), &none);
  std::vector<byte_t> blob{10, 20, 30};
  mgr.protect_blob(0, "state", &blob);
  mgr.checkpoint();
  blob.clear();
  mgr.recover();
  EXPECT_EQ(blob, (std::vector<byte_t>{10, 20, 30}));
}

TEST(Manager, LossyCompressorIsAppliedAndBounded) {
  SzLikeCompressor sz(ErrorBound::pointwise_rel(1e-4));
  CheckpointManager mgr(std::make_unique<MemoryStore>(), &sz);
  Vector x(20000);
  for (std::size_t i = 0; i < x.size(); ++i)
    x[i] = std::sin(0.001 * static_cast<double>(i)) + 2.0;
  mgr.protect(0, "x", &x);
  const Vector original = x;

  const auto rec = mgr.checkpoint();
  EXPECT_LT(rec.stored_bytes * 5, rec.raw_bytes);  // actually compressed

  for (auto& v : x) v = 0.0;
  mgr.recover();
  for (std::size_t i = 0; i < x.size(); ++i)
    ASSERT_LE(std::fabs(x[i] - original[i]),
              1e-4 * std::fabs(original[i]) + 1e-300);
}

TEST(Manager, PerVariableCompressorOverride) {
  SzLikeCompressor sz(ErrorBound::pointwise_rel(1e-4));
  NoneCompressor none;
  CheckpointManager mgr(std::make_unique<MemoryStore>(), &sz);
  Vector x = random_vector(500, 3);
  Vector exact = random_vector(500, 4);
  mgr.protect(0, "x", &x);              // default (lossy)
  mgr.protect(1, "exact", &exact, &none);  // override: verbatim
  const Vector exact_saved = exact;
  mgr.checkpoint();
  for (auto& v : exact) v = 0.0;
  mgr.recover();
  EXPECT_EQ(exact, exact_saved);  // bit-exact despite lossy default
}

TEST(Manager, CrcDetectsCorruption) {
  // Corrupt the stored blob through a custom store wrapper.
  class CorruptingStore final : public CheckpointStore {
   public:
    void write(int v, std::span<const byte_t> d) override { inner_.write(v, d); }
    [[nodiscard]] std::vector<byte_t> read(int v) const override {
      auto d = inner_.read(v);
      d[d.size() - 3] ^= 0x40;  // flip a payload bit
      return d;
    }
    [[nodiscard]] bool exists(int v) const override { return inner_.exists(v); }
    void remove(int v) override { inner_.remove(v); }
    [[nodiscard]] int latest_version() const override {
      return inner_.latest_version();
    }

   private:
    MemoryStore inner_;
  };

  NoneCompressor none;
  CheckpointManager mgr(std::make_unique<CorruptingStore>(), &none);
  Vector x = random_vector(100, 5);
  mgr.protect(0, "x", &x);
  mgr.checkpoint();
  EXPECT_THROW(mgr.recover(), corrupt_stream_error);
}

TEST(Manager, RetentionDeletesOldVersions) {
  NoneCompressor none;
  CheckpointManager mgr(std::make_unique<MemoryStore>(), &none);
  mgr.set_retention(2);
  Vector x = random_vector(10, 6);
  mgr.protect(0, "x", &x);
  mgr.checkpoint();  // v0
  mgr.checkpoint();  // v1
  mgr.checkpoint();  // v2 -> v0 dropped
  EXPECT_FALSE(mgr.store().exists(0));
  EXPECT_TRUE(mgr.store().exists(1));
  EXPECT_TRUE(mgr.store().exists(2));
}

TEST(Manager, DiscardVersionFallsBackToPrevious) {
  NoneCompressor none;
  CheckpointManager mgr(std::make_unique<MemoryStore>(), &none);
  mgr.set_retention(2);
  Vector x(100, 1.0);
  mgr.protect(0, "x", &x);
  mgr.checkpoint();  // v0: x == 1.0
  x.assign(100, 2.0);
  const auto rec = mgr.checkpoint();  // v1: x == 2.0
  mgr.discard_version(rec.version);   // simulate failure mid-write
  x.assign(100, 0.0);
  mgr.recover();
  EXPECT_DOUBLE_EQ(x[0], 1.0);  // recovered from v0
}

TEST(Manager, SnapshotSemantics) {
  NoneCompressor none;
  CheckpointManager mgr(std::make_unique<MemoryStore>(), &none);
  Vector x(50, 3.0);
  mgr.protect(0, "x", &x);

  mgr.snapshot();  // no recovery pending -> checkpoint
  EXPECT_TRUE(mgr.has_checkpoint());

  x.assign(50, 9.0);
  mgr.request_recovery();
  mgr.snapshot();  // recovery pending -> recover
  EXPECT_DOUBLE_EQ(x[0], 3.0);

  mgr.snapshot();  // back to checkpointing
  EXPECT_EQ(mgr.latest_version(), 1);
}

TEST(Manager, RecoverWithoutCheckpointThrows) {
  NoneCompressor none;
  CheckpointManager mgr(std::make_unique<MemoryStore>(), &none);
  Vector x(10, 0.0);
  mgr.protect(0, "x", &x);
  EXPECT_THROW(mgr.recover(), corrupt_stream_error);
}

TEST(Manager, DuplicateIdRejected) {
  NoneCompressor none;
  CheckpointManager mgr(std::make_unique<MemoryStore>(), &none);
  Vector x(10, 0.0), y(10, 0.0);
  mgr.protect(0, "x", &x);
  EXPECT_THROW(mgr.protect(0, "y", &y), config_error);
}

TEST(Manager, UnregisteredVariableIdRejectedOnRecover) {
  NoneCompressor none;
  std::vector<byte_t> blob;
  {
    auto store = std::make_unique<MemoryStore>();
    auto* store_raw = store.get();
    CheckpointManager mgr(std::move(store), &none);
    Vector x(10, 1.0);
    mgr.protect(0, "x", &x);
    mgr.checkpoint();
    blob = store_raw->read(0);
  }
  // A manager whose registration ids don't match the file must refuse.
  auto store2 = std::make_unique<MemoryStore>();
  store2->write(0, blob);
  CheckpointManager mgr2(std::move(store2), &none);
  Vector y(10, 0.0);
  mgr2.protect(1, "y", &y);
  EXPECT_THROW(mgr2.recover(), corrupt_stream_error);
}

TEST(Manager, CompressorMismatchRejectedOnRecover) {
  // Checkpoint written with "none" cannot be recovered by a manager whose
  // registered compressor is SZ (wrong decoder would corrupt state).
  NoneCompressor none;
  std::vector<byte_t> blob;
  {
    auto store = std::make_unique<MemoryStore>();
    auto* store_raw = store.get();
    CheckpointManager mgr(std::move(store), &none);
    Vector x(100, 1.0);
    mgr.protect(0, "x", &x);
    mgr.checkpoint();
    blob = store_raw->read(0);
  }
  auto store2 = std::make_unique<MemoryStore>();
  store2->write(0, blob);
  SzLikeCompressor sz;
  CheckpointManager mgr2(std::move(store2), &sz);
  Vector y(100, 0.0);
  mgr2.protect(0, "x", &y);
  EXPECT_THROW(mgr2.recover(), corrupt_stream_error);
}

TEST(Manager, RecoveredVectorResizesToCheckpointLength) {
  NoneCompressor none;
  CheckpointManager mgr(std::make_unique<MemoryStore>(), &none);
  Vector x = random_vector(256, 8);
  mgr.protect(0, "x", &x);
  const Vector saved = x;
  mgr.checkpoint();
  x.resize(10);
  mgr.recover();
  EXPECT_EQ(x, saved);
}

TEST(Manager, CheckpointWithNothingProtectedThrows) {
  NoneCompressor none;
  CheckpointManager mgr(std::make_unique<MemoryStore>(), &none);
  EXPECT_THROW(mgr.checkpoint(), config_error);
}

}  // namespace
}  // namespace lck

/// Chunked content-addressed delta checkpointing: codec round trips,
/// manager delta chains (sync + staged), ref-counted retention, crash
/// mid-chain, the L3 dedup store, tiered chain re-materialization after a
/// node-severity failure, runner integration, and the deterministic
/// fixed-partition vector reductions.

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>

#include "ckpt/checkpoint_manager.hpp"
#include "ckpt/chunk/chunk_codec.hpp"
#include "ckpt/chunk/chunk_hash.hpp"
#include "ckpt/chunk/dedup_store.hpp"
#include "ckpt/tier/tiered_store.hpp"
#include "common/crc32.hpp"
#include "common/rng.hpp"
#include "core/experiment.hpp"
#include "core/resilient_runner.hpp"
#include "compress/sz/sz_like.hpp"

#if defined(_OPENMP)
#include <omp.h>
#endif

namespace lck {
namespace {

Vector random_vector(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Vector v(n);
  for (auto& x : v) x = rng.uniform(-5.0, 5.0);
  return v;
}

std::filesystem::path unique_dir(const std::string& tag) {
  static int counter = 0;
  const auto dir = std::filesystem::temp_directory_path() /
                   ("lckpt_delta_" + tag + "_" + std::to_string(::getpid()) +
                    "_" + std::to_string(counter++));
  std::filesystem::remove_all(dir);
  return dir;
}

// ----- hash -----------------------------------------------------------------

TEST(Crc64, KnownVectorAndIncrementalEquivalence) {
  // CRC-64/XZ check value for "123456789".
  const char* s = "123456789";
  const std::span<const byte_t> data{reinterpret_cast<const byte_t*>(s), 9};
  EXPECT_EQ(crc64(data), 0x995dc9bbdf1939faull);
  Crc64 inc;
  inc.update(data.subspan(0, 4));
  inc.update(data.subspan(4));
  EXPECT_EQ(inc.value(), crc64(data));
  EXPECT_NE(crc64(data.subspan(0, 8)), crc64(data));
}

// ----- codec ----------------------------------------------------------------

TEST(ChunkCodec, FullEncodeParsesBackWithAllLiterals) {
  const Vector v = random_vector(1000, 1);
  NoneCompressor none;
  ByteWriter out;
  out.put(kDeltaMagic);
  out.put(kDeltaFormatVersion);
  out.put(std::int32_t{-1});
  out.put(std::uint32_t{0});
  out.put(std::uint32_t{1});
  out.put(std::int32_t{0});
  out.put_string("x");
  out.put(static_cast<std::uint8_t>(DeltaVarKind::kVector));
  std::vector<std::uint64_t> hashes;
  const ChunkEncodeStats stats =
      encode_chunked_vector(out, v, none, 256, nullptr, hashes);
  EXPECT_EQ(stats.chunks, 4u);  // 1000 / 256 -> 3 full + 1 tail
  EXPECT_EQ(stats.refs, 0u);
  EXPECT_EQ(hashes.size(), 4u);

  const auto bytes = std::move(out).take();
  const ParsedDeltaStream parsed = parse_delta_stream(bytes);
  EXPECT_EQ(parsed.base_version, -1);
  ASSERT_EQ(parsed.vars.size(), 1u);
  const auto& var = parsed.vars[0];
  EXPECT_EQ(var.comp_name, "none");
  EXPECT_EQ(var.elem_count, 1000u);
  ASSERT_EQ(var.chunks.size(), 4u);
  Vector back(1000);
  for (std::size_t c = 0; c < 4; ++c) {
    ASSERT_EQ(var.chunks[c].tag, ChunkTag::kLiteral);
    EXPECT_EQ(var.chunks[c].hash, hashes[c]);
    const std::size_t begin = c * 256;
    const std::size_t len = std::min<std::size_t>(256, 1000 - begin);
    none.decompress(var.chunks[c].payload, {back.data() + begin, len});
  }
  EXPECT_EQ(back, v);
}

TEST(ChunkCodec, UnchangedChunksBecomeRefsAgainstBase) {
  Vector v = random_vector(1024, 2);
  NoneCompressor none;
  std::vector<std::uint64_t> base_hashes;
  {
    ByteWriter out;
    encode_chunked_vector(out, v, none, 128, nullptr, base_hashes);
  }
  // Mutate exactly one chunk; every other chunk must become a ref.
  v[5 * 128 + 3] += 1.0;
  ByteWriter out;
  std::vector<std::uint64_t> hashes;
  const ChunkEncodeStats stats =
      encode_chunked_vector(out, v, none, 128, &base_hashes, hashes);
  EXPECT_EQ(stats.chunks, 8u);
  EXPECT_EQ(stats.refs, 7u);
  EXPECT_EQ(stats.literal_bytes,
            128 * sizeof(double) + NoneCompressor::kHeaderBytes);
  EXPECT_NE(hashes[5], base_hashes[5]);
}

TEST(ChunkCodec, WithinStreamDuplicatesDedupWithoutABase) {
  // Constant vector: every full chunk after the first is a within-stream
  // duplicate (the tail chunk differs in length, hence in hash).
  const Vector v(1024, 3.25);
  NoneCompressor none;
  ByteWriter out;
  std::vector<std::uint64_t> hashes;
  const ChunkEncodeStats stats =
      encode_chunked_vector(out, v, none, 256, nullptr, hashes);
  EXPECT_EQ(stats.chunks, 4u);
  EXPECT_EQ(stats.refs, 3u);
}

TEST(ChunkCodec, InconsistentChunkGeometryIsRejected) {
  // The header carries no CRC, so a corrupted elem_count/chunk_elems/
  // chunk_count triple must be caught by cross-validation at parse time —
  // never reach the recovery slicing arithmetic.
  const auto make_stream = [](std::uint64_t elem_count,
                              std::uint64_t chunk_elems,
                              std::uint32_t chunk_count) {
    ByteWriter out;
    out.put(kDeltaMagic);
    out.put(kDeltaFormatVersion);
    out.put(std::int32_t{-1});
    out.put(std::uint32_t{0});
    out.put(std::uint32_t{1});
    out.put(std::int32_t{0});
    out.put_string("x");
    out.put(static_cast<std::uint8_t>(DeltaVarKind::kVector));
    out.put_string("none");
    out.put(elem_count);
    out.put(chunk_elems);
    out.put(chunk_count);
    const std::vector<byte_t> payload{1, 2, 3};
    for (std::uint32_t c = 0; c < chunk_count; ++c) {
      out.put(std::uint64_t{c});
      out.put(static_cast<std::uint8_t>(ChunkTag::kLiteral));
      out.put(static_cast<std::uint64_t>(payload.size()));
      out.put(crc32(payload));
      out.put_bytes(payload);
    }
    return std::move(out).take();
  };
  // Consistent geometry parses.
  EXPECT_NO_THROW((void)parse_delta_stream(make_stream(100, 64, 2)));
  // elem_count shrunk below the manifest (would underflow the tail length).
  EXPECT_THROW((void)parse_delta_stream(make_stream(100, 4096, 2)),
               corrupt_stream_error);
  // Manifest too short (tail would stay uninitialized).
  EXPECT_THROW((void)parse_delta_stream(make_stream(100, 10, 2)),
               corrupt_stream_error);
  // Zero chunk size with elements.
  EXPECT_THROW((void)parse_delta_stream(make_stream(100, 0, 2)),
               corrupt_stream_error);
}

TEST(ChunkCodec, PeekDeltaBaseReadsHeaderOnly) {
  ByteWriter out;
  out.put(kDeltaMagic);
  out.put(kDeltaFormatVersion);
  out.put(std::int32_t{41});
  const auto bytes = std::move(out).take();
  EXPECT_EQ(peek_delta_base(bytes), std::optional<int>{41});
  const std::vector<byte_t> junk{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_EQ(peek_delta_base(junk), std::nullopt);
}

// ----- manager: sync delta chains -------------------------------------------

TEST(DeltaManager, NonDeltaStreamsKeepTheNonDeltaFormats) {
  // max_delta_chain = 0 (default) must keep the serializer out of delta
  // mode: the stored stream is the framed format by default ("FKPT"), and
  // the legacy format ("CKPT") with streaming disabled — never DKPT.
  NoneCompressor none;
  auto store = std::make_unique<MemoryStore>();
  auto* store_raw = store.get();
  CheckpointManager mgr(std::move(store), &none);
  Vector x = random_vector(600, 4);
  mgr.protect(0, "x", &x);
  mgr.checkpoint();
  const auto blob = store_raw->read(0);
  EXPECT_FALSE(is_delta_stream(blob));
  std::uint32_t magic;
  std::memcpy(&magic, blob.data(), sizeof magic);
  EXPECT_EQ(magic, kFrameStreamMagic);  // "FKPT": framed streaming format

  StreamingConfig off;
  off.enabled = false;
  mgr.set_streaming(off);
  mgr.checkpoint();
  const auto legacy = store_raw->read(1);
  EXPECT_FALSE(is_delta_stream(legacy));
  std::memcpy(&magic, legacy.data(), sizeof magic);
  EXPECT_EQ(magic, 0x54504b43u);  // "CKPT": pre-delta stream magic
}

TEST(DeltaManager, DeltaChainRecoversBitExactly) {
  NoneCompressor none;
  CheckpointManager mgr(std::make_unique<MemoryStore>(), &none);
  mgr.set_delta(/*max_delta_chain=*/4, /*chunk_elems=*/64);
  mgr.set_retention(2);
  Vector stat = random_vector(512, 5);  // never changes (static payload)
  Vector x = random_vector(512, 6);
  mgr.protect(0, "static", &stat);
  mgr.protect(1, "x", &x);

  const auto rec0 = mgr.checkpoint();
  EXPECT_EQ(rec0.base_version, -1);
  EXPECT_EQ(rec0.chain_len, 0u);

  // Three deltas, each touching a different slice of x.
  std::vector<Vector> snapshots;
  for (int k = 0; k < 3; ++k) {
    for (int i = 0; i < 64; ++i) x[64 * (k + 1) + i] += 0.5 * (k + 1);
    snapshots.push_back(x);
    const auto rec = mgr.checkpoint();
    EXPECT_EQ(rec.base_version, k);
    EXPECT_EQ(rec.chain_len, static_cast<std::uint32_t>(k + 1));
    // static payload fully deduped + unchanged x chunks deduped.
    EXPECT_GE(rec.chunks_deduped, 8u + 6u);
    EXPECT_LT(rec.stored_bytes, rec0.stored_bytes / 2);
  }

  const Vector stat_saved = stat;
  for (auto& v : x) v = 0.0;
  for (auto& v : stat) v = -1.0;
  const auto rec = mgr.recover();
  EXPECT_EQ(x, snapshots.back());
  EXPECT_EQ(stat, stat_saved);
  // Recovery read the whole chain, so it saw more bytes than the tip alone.
  EXPECT_GT(rec.stored_bytes, mgr.store().read(3).size());
}

TEST(DeltaManager, MaxChainForcesPeriodicFullCheckpoints) {
  NoneCompressor none;
  CheckpointManager mgr(std::make_unique<MemoryStore>(), &none);
  mgr.set_delta(2, 64);
  mgr.set_retention(1);
  Vector x = random_vector(256, 7);
  mgr.protect(0, "x", &x);
  // chain pattern: v0 full, v1 delta, v2 delta, v3 full, v4 delta, ...
  const std::vector<int> expect_base{-1, 0, 1, -1, 3, 4, -1};
  for (std::size_t k = 0; k < expect_base.size(); ++k) {
    x[0] += 1.0;
    const auto rec = mgr.checkpoint();
    EXPECT_EQ(rec.base_version, expect_base[k]) << "checkpoint " << k;
  }
}

TEST(DeltaManager, RetentionKeepsLiveChainBasesAndRetiresDeadChains) {
  NoneCompressor none;
  auto store = std::make_unique<MemoryStore>();
  auto* store_raw = store.get();
  CheckpointManager mgr(std::move(store), &none);
  mgr.set_delta(3, 64);
  mgr.set_retention(1);
  Vector x = random_vector(256, 8);
  mgr.protect(0, "x", &x);

  mgr.checkpoint();  // v0 full
  for (int k = 1; k <= 3; ++k) {
    x[k] += 1.0;
    mgr.checkpoint();  // v1..v3 deltas on v0
  }
  // Retention is 1, but v3's chain pins v2 -> v1 -> v0.
  for (int v = 0; v <= 3; ++v)
    EXPECT_TRUE(store_raw->exists(v)) << "version " << v;

  x[10] += 1.0;
  mgr.checkpoint();  // v4: forced full (chain at max) -> whole old chain dead
  EXPECT_TRUE(store_raw->exists(4));
  for (int v = 0; v <= 3; ++v)
    EXPECT_FALSE(store_raw->exists(v)) << "version " << v;

  // And recovery still works from the fresh full.
  const Vector want = x;
  for (auto& v : x) v = 0.0;
  mgr.recover();
  EXPECT_EQ(x, want);
}

TEST(DeltaManager, LossyChunksRespectTheErrorBound) {
  SzLikeCompressor sz(ErrorBound::pointwise_rel(1e-4));
  CheckpointManager mgr(std::make_unique<MemoryStore>(), &sz);
  mgr.set_delta(4, 512);
  Vector x(8192);
  for (std::size_t i = 0; i < x.size(); ++i)
    x[i] = std::sin(0.001 * static_cast<double>(i)) + 2.0;
  mgr.protect(0, "x", &x);
  mgr.checkpoint();
  for (std::size_t i = 0; i < 512; ++i) x[i] += 0.1;  // touch chunk 0 only
  const Vector original = x;
  const auto rec = mgr.checkpoint();
  EXPECT_GE(rec.chunks_deduped, 15u);

  for (auto& v : x) v = 0.0;
  mgr.recover();
  for (std::size_t i = 0; i < x.size(); ++i)
    ASSERT_LE(std::fabs(x[i] - original[i]),
              1e-4 * std::fabs(original[i]) + 1e-300)
        << i;
}

TEST(DeltaManager, CrashBetweenWritePendingAndCommitMidChain) {
  // A staged delta whose process dies before commit must roll back to the
  // chain's previous committed version on reopen — and the swept version
  // number is reused by a checkpoint that deltas against the *surviving*
  // tip, not the orphan.
  const auto dir = unique_dir("crash_chain");
  NoneCompressor none;
  Vector x(256, 1.0);
  {
    CheckpointManager mgr(std::make_unique<DiskStore>(dir.string()), &none);
    mgr.set_delta(4, 64);
    mgr.protect(0, "x", &x);
    mgr.checkpoint();  // v0 full
    x[0] = 2.0;
    mgr.checkpoint();  // v1 delta on v0
    x[1] = 3.0;
    const StageTicket t = mgr.stage();  // v2 delta on v1, drained...
    (void)mgr.wait_drain(t.version);    // ...pending on disk, never committed
    // Manager destruction aborts undecided versions (the graceful path);
    // simulate the crash by re-staging a pending file the sweep must kill.
    DiskStore raw(dir.string());
    raw.write_pending(2, std::vector<byte_t>{9, 9, 9});
    mgr.abort_version(t.version);
    raw.write_pending(2, mgr.store().read(1));  // orphan with real bytes
  }  // "crash": .lck.pending for v2 left behind

  CheckpointManager mgr(std::make_unique<DiskStore>(dir.string()), &none);
  mgr.set_delta(4, 64);
  Vector y(1, 0.0);
  mgr.protect(0, "x", &y);
  EXPECT_EQ(mgr.latest_version(), 1);
  EXPECT_FALSE(mgr.store().has_pending(2));
  mgr.recover();  // v1 -> v0 chain, both committed before the crash
  ASSERT_EQ(y.size(), 256u);
  EXPECT_DOUBLE_EQ(y[0], 2.0);
  EXPECT_DOUBLE_EQ(y[1], 1.0);

  // The reopened manager has no in-memory chunk state: the next checkpoint
  // (reusing the swept version number) must be a fresh full checkpoint.
  y[2] = 4.0;
  const auto rec = mgr.checkpoint();
  EXPECT_EQ(rec.version, 2);
  EXPECT_EQ(rec.base_version, -1);
  y.assign(256, 0.0);
  mgr.recover();
  EXPECT_DOUBLE_EQ(y[2], 4.0);
  std::filesystem::remove_all(dir);
}

// ----- manager: staged (async) delta chains ---------------------------------

TEST(DeltaManager, StagedChainCommitsAndAbortRejoinsCommittedTip) {
  NoneCompressor none;
  CheckpointManager mgr(std::make_unique<MemoryStore>(), &none);
  mgr.set_delta(8, 64);
  Vector x = random_vector(512, 9);
  mgr.protect(0, "x", &x);

  StageTicket t0 = mgr.stage();
  mgr.commit_version(t0.version);  // v0 full
  x[0] += 1.0;
  StageTicket t1 = mgr.stage();
  const CheckpointRecord r1 = mgr.wait_drain(t1.version);
  EXPECT_EQ(r1.base_version, 0);
  mgr.commit_version(t1.version);

  // An aborted delta must not become anyone's base.
  x[1] += 1.0;
  StageTicket t2 = mgr.stage();
  mgr.abort_version(t2.version);
  x[2] += 1.0;
  StageTicket t3 = mgr.stage();
  const CheckpointRecord r3 = mgr.wait_drain(t3.version);
  EXPECT_EQ(r3.base_version, t1.version);  // rejoined the committed tip
  mgr.commit_version(t3.version);

  const Vector want = x;
  for (auto& v : x) v = 0.0;
  mgr.recover();
  EXPECT_EQ(x, want);
}

// ----- dedup store ----------------------------------------------------------

TEST(DedupStore, RoundTripsDeltaAndOpaqueBlobsByteExactly) {
  NoneCompressor none;
  // Build a real delta stream through a manager backed by a MemoryStore.
  auto inner = std::make_unique<MemoryStore>();
  auto* inner_raw = inner.get();
  CheckpointManager mgr(std::move(inner), &none);
  mgr.set_delta(4, 64);
  Vector x = random_vector(512, 10);
  mgr.protect(0, "x", &x);
  mgr.checkpoint();
  const auto blob = inner_raw->read(0);

  DedupChunkStore store;
  store.write(0, blob);
  EXPECT_EQ(store.read(0), blob);
  const std::vector<byte_t> opaque{0, 1, 2, 3, 200, 100};
  store.write(1, opaque);
  EXPECT_EQ(store.read(1), opaque);
  EXPECT_EQ(store.latest_version(), 1);
  store.remove(0);
  EXPECT_FALSE(store.exists(0));
  EXPECT_THROW((void)store.read(0), corrupt_stream_error);
}

TEST(DedupStore, IdenticalChunksAcrossVersionsAreStoredOnce) {
  NoneCompressor none;
  auto inner = std::make_unique<MemoryStore>();
  auto* inner_raw = inner.get();
  CheckpointManager mgr(std::move(inner), &none);
  // Chain length 1: v0 full, v1 delta, v2 full again, v3 delta ... so the
  // static payload's literal chunks recur in every *full* checkpoint.
  mgr.set_delta(1, 64);
  mgr.set_retention(8);
  Vector stat = random_vector(512, 11);
  Vector x = random_vector(512, 12);
  mgr.protect(0, "static", &stat);
  mgr.protect(1, "x", &x);
  for (int k = 0; k < 4; ++k) {
    x[0] += 1.0;
    mgr.checkpoint();
  }

  DedupChunkStore store;
  for (int v = 0; v < 4; ++v) store.write(v, inner_raw->read(v));
  // v2's full re-stores the static chunks v0 already placed: all dedup.
  EXPECT_GT(store.dedup_hits(), 0u);
  EXPECT_GT(store.dedup_bytes_saved(), 512 * sizeof(double));
  EXPECT_LT(store.physical_bytes(), store.logical_bytes());
  for (int v = 0; v < 4; ++v)
    EXPECT_EQ(store.read(v), inner_raw->read(v)) << "version " << v;
}

TEST(DedupStore, OnDiskIndexSurvivesReopenForCrossRunDedup) {
  const auto dir = unique_dir("dedup_disk");
  NoneCompressor none;
  auto inner = std::make_unique<MemoryStore>();
  auto* inner_raw = inner.get();
  CheckpointManager mgr(std::move(inner), &none);
  mgr.set_delta(2, 64);
  Vector x = random_vector(512, 13);
  mgr.protect(0, "x", &x);
  mgr.checkpoint();
  const auto blob = inner_raw->read(0);

  std::size_t physical_first = 0;
  {
    DedupChunkStore store(dir.string());
    store.write(0, blob);
    physical_first = store.physical_bytes();
    EXPECT_EQ(store.dedup_hits(), 0u);
  }
  {
    // "Next run": same content arrives as a new version — every chunk is
    // already resident in the on-disk index.
    DedupChunkStore store(dir.string());
    EXPECT_EQ(store.read(0), blob);
    store.write(7, blob);
    EXPECT_GT(store.dedup_hits(), 0u);
    EXPECT_LT(store.physical_bytes(), physical_first + blob.size() / 2);
    EXPECT_EQ(store.read(7), blob);
    store.remove(0);
    store.remove(7);  // refcounted chunks vanish with the last reference
    EXPECT_EQ(store.chunk_count(), 0u);
  }
  std::filesystem::remove_all(dir);
}

TEST(DedupStore, ReopenSurvivesACrashInsideRemovesDeletionWindow) {
  // remove() deletes the skeleton file before the chunk files, but a crash
  // can still leave a skeleton whose chunks are gone (e.g. mid-overwrite).
  // Reopening must drop that version and keep serving the rest — never
  // refuse to construct.
  const auto dir = unique_dir("crash_window");
  NoneCompressor none;
  auto inner = std::make_unique<MemoryStore>();
  auto* inner_raw = inner.get();
  CheckpointManager mgr(std::move(inner), &none);
  mgr.set_delta(2, 64);
  mgr.set_retention(8);
  Vector x = random_vector(512, 20);
  mgr.protect(0, "x", &x);
  mgr.checkpoint();
  x[0] += 1.0;
  mgr.checkpoint();
  {
    DedupChunkStore store(dir.string());
    store.write(0, inner_raw->read(0));
    store.write(1, inner_raw->read(1));
  }
  // "Crash": one of v0's chunk files vanishes (v1 is a delta whose refs
  // resolve at recovery, not in the store, so its skeleton shares chunks).
  std::size_t removed = 0;
  for (const auto& e :
       std::filesystem::directory_iterator(dir / "chunks")) {
    std::filesystem::remove(e.path());
    ++removed;
    break;
  }
  ASSERT_EQ(removed, 1u);

  DedupChunkStore reopened(dir.string());  // must not throw
  // At least one version survived or was dropped cleanly; reads of the
  // surviving set reassemble without error.
  for (int v = 0; v <= 1; ++v) {
    if (reopened.exists(v)) {
      EXPECT_NO_THROW((void)reopened.read(v));
    }
  }
  std::filesystem::remove_all(dir);
}

TEST(DedupStore, LegacyDiskStoreFilesStayReadableAfterBackendSwap) {
  // A pfs_dir written by the pre-dedup DiskStore (ckpt_<v>.lck) must stay
  // readable when the tier reopens on the DedupChunkStore backend.
  const auto dir = unique_dir("legacy_lck");
  const std::vector<byte_t> old_blob{7, 8, 9, 10};
  {
    DiskStore old_store(dir.string());
    old_store.write(3, old_blob);
  }
  DedupChunkStore store(dir.string());
  EXPECT_TRUE(store.exists(3));
  EXPECT_EQ(store.latest_version(), 3);
  EXPECT_EQ(store.read(3), old_blob);
  store.remove(3);
  EXPECT_FALSE(store.exists(3));
  EXPECT_FALSE(std::filesystem::exists(dir / "ckpt_3.lck"));
  std::filesystem::remove_all(dir);
}

TEST(DeltaManager, CompressorSwapMidChainForcesLiteralsAndRecovers) {
  // Re-protecting a variable with a different codec must not let the next
  // delta reference the old codec's payloads.
  SzLikeCompressor sz(ErrorBound::pointwise_rel(1e-4));
  NoneCompressor none;
  CheckpointManager mgr(std::make_unique<MemoryStore>(), &none);
  mgr.set_delta(4, 64);
  Vector x(512);
  for (std::size_t i = 0; i < x.size(); ++i)
    x[i] = std::sin(0.01 * static_cast<double>(i)) + 2.0;
  mgr.protect(0, "x", &x, &sz);
  mgr.checkpoint();  // v0: sz-encoded chunks

  mgr.unprotect(0);
  mgr.protect(0, "x", &x, &none);  // same raw content, new codec
  const auto rec = mgr.checkpoint();  // v1: must not ref v0's sz payloads
  EXPECT_EQ(rec.chunks_deduped, 0u);

  const Vector want = x;
  for (auto& v : x) v = 0.0;
  mgr.recover();
  EXPECT_EQ(x, want);  // verbatim codec: bit-exact
}

// ----- tiered hierarchy -----------------------------------------------------

TEST(DeltaTiered, NodeFailureRematerializesTheChainFromL2) {
  // L1 is destroyed by a node failure; the chain (full + deltas) was
  // promoted to L2/L3, so recover() must re-materialize every chunk from
  // the surviving tiers — including parity reconstruction inside L2.
  auto tiered = make_tiered_store(/*retention=*/8, /*l2_promote_every=*/1,
                                  /*l3_promote_every=*/4, "",
                                  /*auto_promote=*/false);
  auto* tiered_raw = tiered.get();
  NoneCompressor none;
  CheckpointManager mgr(std::unique_ptr<CheckpointStore>(std::move(tiered)),
                        &none);
  mgr.set_delta(4, 64);
  mgr.set_retention(1 << 28);  // hierarchy owns retention (runner setting)
  Vector stat = random_vector(512, 14);
  Vector x = random_vector(512, 15);
  mgr.protect(0, "static", &stat);
  mgr.protect(1, "x", &x);

  for (int k = 0; k < 3; ++k) {  // v0 full, v1..v2 deltas
    if (k > 0) x[static_cast<std::size_t>(k)] += 1.0;
    const StageTicket t = mgr.stage();
    mgr.commit_version(t.version);
    ASSERT_TRUE(tiered_raw->promote_now(t.version, 1));
  }
  const Vector want_x = x, want_stat = stat;

  tiered_raw->invalidate(FailureSeverity::kNode);  // L1 gone, L2 degraded
  EXPECT_EQ(tiered_raw->level_of(2), 1);
  for (auto& v : x) v = 0.0;
  for (auto& v : stat) v = 0.0;
  mgr.recover();
  EXPECT_EQ(x, want_x);
  EXPECT_EQ(stat, want_stat);
}

TEST(DeltaTiered, PromotionCarriesSkippedChainBases) {
  // L3 cadence 4 would skip the delta's bases; the chain-aware promotion
  // must copy them anyway, so a system failure still recovers.
  auto tiered = make_tiered_store(8, 1, 1, "", /*auto_promote=*/false);
  auto* tiered_raw = tiered.get();
  NoneCompressor none;
  CheckpointManager mgr(std::unique_ptr<CheckpointStore>(std::move(tiered)),
                        &none);
  mgr.set_delta(8, 64);
  mgr.set_retention(1 << 28);
  Vector x = random_vector(512, 16);
  mgr.protect(0, "x", &x);
  for (int k = 0; k < 5; ++k) {  // v0 full, v1..v4 deltas
    if (k > 0) x[static_cast<std::size_t>(k)] += 1.0;
    mgr.checkpoint();
  }
  // Promote only the tip; the chain (v3 -> ... -> v0) must ride along.
  ASSERT_TRUE(tiered_raw->promote_now(4, 2));
  for (int v = 0; v <= 4; ++v)
    EXPECT_TRUE(tiered_raw->exists_at(2, v)) << "version " << v;

  const Vector want = x;
  tiered_raw->invalidate(FailureSeverity::kPartition);  // only L3 survives
  for (auto& v : x) v = 0.0;
  mgr.recover();
  EXPECT_EQ(x, want);
}

TEST(DeltaTiered, PerLevelRetentionKeepsLiveBases) {
  auto tiered = make_tiered_store(/*retention=*/1, 1, 1, "",
                                  /*auto_promote=*/false);
  auto* tiered_raw = tiered.get();
  NoneCompressor none;
  CheckpointManager mgr(std::unique_ptr<CheckpointStore>(std::move(tiered)),
                        &none);
  mgr.set_delta(4, 64);
  mgr.set_retention(1 << 28);
  Vector x = random_vector(256, 17);
  mgr.protect(0, "x", &x);
  for (int k = 0; k < 3; ++k) {  // v0 full, v1..v2 deltas
    if (k > 0) x[static_cast<std::size_t>(k)] += 1.0;
    mgr.checkpoint();
  }
  // L1 retention is 1, but v2's chain pins v1 and v0 in L1.
  for (int v = 0; v <= 2; ++v)
    EXPECT_TRUE(tiered_raw->exists_at(0, v)) << "version " << v;
  const Vector want = x;
  for (auto& v : x) v = 0.0;
  mgr.recover();
  EXPECT_EQ(x, want);
}

// ----- runner integration ---------------------------------------------------

ResilienceConfig delta_config(CkptScheme scheme, CkptMode mode, int chain) {
  ResilienceConfig cfg;
  cfg.scheme = scheme;
  cfg.ckpt_mode = mode;
  cfg.policy.interval_seconds = 20.0;
  cfg.failure.mtti_seconds = 60.0;
  cfg.iteration_seconds = 5.0;
  cfg.failure.seed = 7;
  cfg.cluster.ranks = 64;
  cfg.cluster.pfs_per_rank_overhead = 0.001;
  cfg.static_bytes = 1e6;
  cfg.delta.max_delta_chain = chain;
  cfg.delta.chunk_elems = 64;
  return cfg;
}

class DeltaRunnerMode : public ::testing::TestWithParam<CkptMode> {};

TEST_P(DeltaRunnerMode, TraditionalConvergesToTheSameIterationWithDeltas) {
  const CkptMode mode = GetParam();
  const LocalProblem p = make_local_problem("cg", 8, 1e-8);

  auto full_solver = p.make_solver();
  ResilientRunner full_runner(*full_solver,
                              delta_config(CkptScheme::kTraditional, mode, 0));
  const auto full = full_runner.run();

  auto delta_solver = p.make_solver();
  ResilientRunner delta_runner(
      *delta_solver, delta_config(CkptScheme::kTraditional, mode, 6));
  const auto delta = delta_runner.run();

  // Recovery from a delta chain restores the exact state, so the solver
  // reaches the same convergence iteration as the full runs. (The *final*
  // bits may differ: delta streams have slightly different stored sizes, so
  // failures land at different virtual times and the recomputed residual
  // after recovery carries different rounding.)
  EXPECT_TRUE(full.converged);
  EXPECT_TRUE(delta.converged);
  EXPECT_EQ(delta.convergence_iteration, full.convergence_iteration);
  EXPECT_GT(delta.failures, 0) << "test should exercise failures";
  // Every element of x and p changes between CG checkpoints, so the chains
  // are made of literal chunks — the accounting must still see them.
  EXPECT_GT(delta.full_checkpoints, 0);
  EXPECT_LT(delta.full_checkpoints, delta.checkpoints);
  EXPECT_GT(delta.delta_bytes_total, 0.0);
  // Full runs report no delta activity at all.
  EXPECT_EQ(full.chunks_deduped, 0u);
  EXPECT_EQ(full.full_checkpoints, full.checkpoints);
  EXPECT_EQ(full.delta_bytes_total, 0.0);
  for (index_t i = 0; i < p.a.rows(); ++i)
    ASSERT_NEAR(full_solver->solution()[i], delta_solver->solution()[i],
                1e-9 * (std::fabs(full_solver->solution()[i]) + 1.0));
}

TEST_P(DeltaRunnerMode, DeltaRunsAreBitStableAcrossReruns) {
  const CkptMode mode = GetParam();
  const LocalProblem p = make_local_problem("cg", 8, 1e-8);
  ResilienceResult first;
  for (int round = 0; round < 2; ++round) {
    auto solver = p.make_solver();
    ResilientRunner runner(*solver,
                           delta_config(CkptScheme::kTraditional, mode, 4));
    const auto res = runner.run();
    if (round == 0) {
      first = res;
      continue;
    }
    EXPECT_EQ(res.converged, first.converged);
    EXPECT_EQ(res.executed_steps, first.executed_steps);
    EXPECT_EQ(res.checkpoints, first.checkpoints);
    EXPECT_EQ(res.failures, first.failures);
    EXPECT_EQ(res.chunks_deduped, first.chunks_deduped);
    EXPECT_EQ(res.full_checkpoints, first.full_checkpoints);
    EXPECT_DOUBLE_EQ(res.virtual_seconds, first.virtual_seconds);
    EXPECT_DOUBLE_EQ(res.delta_bytes_total, first.delta_bytes_total);
  }
}

INSTANTIATE_TEST_SUITE_P(AllModes, DeltaRunnerMode,
                         ::testing::Values(CkptMode::kSync, CkptMode::kAsync,
                                           CkptMode::kTiered),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

TEST(DeltaRunner, LossyDeltaConvergesUnderFailures) {
  const LocalProblem p = make_local_problem("cg", 8, 1e-8);
  auto solver = p.make_solver();
  ResilienceConfig cfg = delta_config(CkptScheme::kLossy, CkptMode::kAsync, 4);
  ResilientRunner runner(*solver, cfg);
  const auto res = runner.run();
  EXPECT_TRUE(res.converged);
  EXPECT_GT(res.failures, 0);
  Vector r(p.b.size());
  p.a.residual(p.b, solver->solution(), r);
  EXPECT_LE(norm2(r) / norm2(p.b), 1e-7);
}

// ----- deterministic reductions ---------------------------------------------

TEST(DeterministicReductions, BitStableAcrossThreadCounts) {
  // 100k elements spans multiple reduction blocks; the fixed partition must
  // give bit-identical results however many OpenMP threads execute it.
  const Vector x = random_vector(100000, 18);
  const Vector y = random_vector(100000, 19);
  const double dot_ref = dot(x, y);
  [[maybe_unused]] const double norm_ref = norm2(x);
  const double inf_ref = norm_inf(x);
  EXPECT_GT(inf_ref, 0.0);
#if defined(_OPENMP)
  const int prev = omp_get_max_threads();
  for (const int threads : {1, 2, 3, 4, 8}) {
    omp_set_num_threads(threads);
    EXPECT_EQ(dot(x, y), dot_ref) << threads << " threads";
    EXPECT_EQ(norm2(x), norm_ref) << threads << " threads";
    EXPECT_EQ(norm_inf(x), inf_ref) << threads << " threads";
  }
  omp_set_num_threads(prev);
#endif
  // The blocked sum must agree with a plain serial sum to rounding noise.
  double serial = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) serial += x[i] * y[i];
  EXPECT_NEAR(dot_ref, serial, 1e-9 * std::fabs(serial));
}

}  // namespace
}  // namespace lck

/// Tests for the two extensions beyond the paper's evaluated set:
/// MINRES (symmetric indefinite solver, the natural method for the paper's
/// KKT240-class systems) and the mantissa-truncation lossy compressor.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "compress/truncation.hpp"
#include "solvers/factory.hpp"
#include "solvers/minres.hpp"
#include "sparse/gen/kkt.hpp"
#include "sparse/gen/poisson3d.hpp"

namespace lck {
namespace {

double true_rel_residual(const CsrMatrix& a, const Vector& b, const Vector& x) {
  Vector r(b.size());
  a.residual(b, x, r);
  return norm2(r) / norm2(b);
}

// ----- MINRES ----------------------------------------------------------------

TEST(Minres, SolvesSpdSystem) {
  const CsrMatrix a = poisson3d_spd(6);
  const Vector xt = smooth_solution(a.rows());
  Vector b(a.rows());
  a.multiply(xt, b);
  MinresSolver s(a, b, {.rtol = 1e-10, .max_iterations = 5000});
  EXPECT_TRUE(s.solve().converged);
  EXPECT_LT(max_abs_diff(s.solution(), xt), 1e-6);
}

TEST(Minres, SolvesSymmetricIndefiniteKkt) {
  // The system CG cannot handle and GMRES over-pays for (paper Fig. 3).
  KktOptions opt;
  opt.grid_n = 5;
  const CsrMatrix k = kkt_matrix(opt);
  const Vector b(k.rows(), 1.0);
  MinresSolver s(k, b, {.rtol = 1e-8, .max_iterations = 20000});
  EXPECT_TRUE(s.solve().converged);
  EXPECT_LE(true_rel_residual(k, b, s.solution()), 1e-7);
}

TEST(Minres, RecurrenceResidualMatchesTrueResidual) {
  const CsrMatrix a = poisson3d_spd(5);
  const Vector b = smooth_rhs(a);
  MinresSolver s(a, b, {.rtol = 1e-12, .max_iterations = 5000});
  for (int i = 0; i < 30; ++i) {
    s.step();
    const double truth = true_rel_residual(a, b, s.solution()) * norm2(b);
    ASSERT_NEAR(s.residual_norm(), truth, 1e-8 * norm2(b))
        << "iteration " << i;
  }
}

TEST(Minres, ResidualNormIsMonotone) {
  // MINRES minimizes ||r|| over the Krylov space: monotone non-increasing.
  KktOptions opt;
  opt.grid_n = 4;
  const CsrMatrix k = kkt_matrix(opt);
  const Vector b(k.rows(), 1.0);
  MinresSolver s(k, b, {.rtol = 1e-10, .max_iterations = 5000});
  double prev = s.residual_norm();
  while (!s.converged() && s.iteration() < 5000) {
    s.step();
    ASSERT_LE(s.residual_norm(), prev * (1.0 + 1e-10));
    prev = s.residual_norm();
  }
  EXPECT_TRUE(s.converged());
}

TEST(Minres, LossyRestartConverges) {
  // The lossy checkpointing path: restart from a perturbed iterate.
  const CsrMatrix a = poisson3d_spd(6);
  const Vector b = smooth_rhs(a);
  MinresSolver s(a, b, {.rtol = 1e-9, .max_iterations = 10000});
  for (int i = 0; i < 20; ++i) s.step();
  Vector x = s.solution();
  Rng rng(3);
  for (auto& v : x) v *= 1.0 + 1e-4 * (rng.uniform() - 0.5);
  s.restart(x);
  EXPECT_TRUE(s.solve().converged);
  EXPECT_LE(true_rel_residual(a, b, s.solution()), 1e-8);
}

TEST(Minres, AvailableViaFactory) {
  const CsrMatrix a = poisson3d_spd(4);
  const Vector b = smooth_rhs(a);
  SolverSpec spec;
  spec.method = "minres";
  spec.options.rtol = 1e-8;
  auto s = make_solver(spec, a, b);
  EXPECT_EQ(s->name(), "minres");
  EXPECT_TRUE(s->solve().converged);
}

// ----- truncation compressor ---------------------------------------------------

class TruncAbsBound : public ::testing::TestWithParam<double> {};

TEST_P(TruncAbsBound, BoundHoldsOnMixedData) {
  const double eb = GetParam();
  TruncationCompressor c(ErrorBound::absolute(eb));
  Rng rng(9);
  Vector in(20000);
  for (auto& x : in) x = rng.uniform(-100.0, 100.0);
  in[3] = 0.0;
  in[7] = 1e-300;
  const auto stream = c.compress(in);
  Vector out(in.size());
  c.decompress(stream, out);
  for (std::size_t i = 0; i < in.size(); ++i)
    ASSERT_LE(std::fabs(in[i] - out[i]), eb) << "index " << i;
}

INSTANTIATE_TEST_SUITE_P(Bounds, TruncAbsBound,
                         ::testing::Values(1e-1, 1e-4, 1e-8, 1e-13));

TEST(Trunc, GroomingMakesDataMoreCompressible) {
  Rng rng(4);
  Vector in(30000);
  for (std::size_t i = 0; i < in.size(); ++i)
    in[i] = std::sin(0.001 * static_cast<double>(i)) + 1e-9 * rng.uniform();
  TruncationCompressor loose(ErrorBound::absolute(1e-3));
  TruncationCompressor tight(ErrorBound::absolute(1e-12));
  EXPECT_GT(compression_ratio(loose, in), compression_ratio(tight, in));
  EXPECT_GT(compression_ratio(loose, in), 3.0);
}

TEST(Trunc, NonFiniteValuesPassThrough) {
  TruncationCompressor c(ErrorBound::absolute(1e-4));
  Vector in(16, 1.5);
  in[2] = std::numeric_limits<double>::infinity();
  in[5] = std::numeric_limits<double>::quiet_NaN();
  const auto stream = c.compress(in);
  Vector out(in.size());
  c.decompress(stream, out);
  EXPECT_TRUE(std::isinf(out[2]));
  EXPECT_TRUE(std::isnan(out[5]));
}

TEST(Trunc, PointwiseRelativeViaAdapterFactory) {
  const auto c = make_compressor("trunc", ErrorBound::pointwise_rel(1e-4));
  EXPECT_EQ(c->name(), "pwrel+trunc");
  Rng rng(21);
  Vector in(5000);
  for (auto& x : in)
    x = (rng.uniform() < 0.5 ? -1.0 : 1.0) *
        std::pow(10.0, rng.uniform(-6.0, 6.0));
  const auto stream = c->compress(in);
  Vector out(in.size());
  c->decompress(stream, out);
  for (std::size_t i = 0; i < in.size(); ++i)
    ASSERT_LE(std::fabs(in[i] - out[i]), 1e-4 * std::fabs(in[i]) + 1e-300);
}

TEST(Trunc, ValueRangeRelativeMode) {
  TruncationCompressor c(ErrorBound::value_range_rel(1e-5));
  Vector in(1000);
  for (std::size_t i = 0; i < in.size(); ++i)
    in[i] = 500.0 * std::sin(0.01 * static_cast<double>(i));
  const auto stream = c.compress(in);
  Vector out(in.size());
  c.decompress(stream, out);
  for (std::size_t i = 0; i < in.size(); ++i)
    ASSERT_LE(std::fabs(in[i] - out[i]), 1e-5 * 1000.0 * 1.01);
}

TEST(Trunc, WorksAsCheckpointCompressor) {
  // Integration: use trunc inside the checkpoint manager.
  const auto c = make_compressor("trunc", ErrorBound::absolute(1e-6));
  EXPECT_TRUE(c->lossy());
  const Vector in(100, 3.14159);
  const auto stream = c->compress(in);
  Vector out(100);
  c->decompress(stream, out);
  for (const double v : out) EXPECT_NEAR(v, 3.14159, 1e-6);
}

}  // namespace
}  // namespace lck

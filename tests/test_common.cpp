/// Tests for the common substrate: byte/bit I/O, CRC-32, RNG, statistics,
/// and the logical-rank partitioner.

#include <gtest/gtest.h>

#include <cstring>
#include <numeric>

#include "common/bit_io.hpp"
#include "common/byte_buffer.hpp"
#include "common/crc32.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/partitioner.hpp"
#include "sparse/vector_ops.hpp"

namespace lck {
namespace {

TEST(ByteBuffer, RoundTripPrimitives) {
  ByteWriter w;
  w.put<std::uint32_t>(0xdeadbeefu);
  w.put<double>(3.14159);
  w.put<std::int64_t>(-42);
  w.put_string("hello");
  const auto buf = std::move(w).take();

  ByteReader r(buf);
  EXPECT_EQ(r.get<std::uint32_t>(), 0xdeadbeefu);
  EXPECT_DOUBLE_EQ(r.get<double>(), 3.14159);
  EXPECT_EQ(r.get<std::int64_t>(), -42);
  EXPECT_EQ(r.get_string(), "hello");
  EXPECT_TRUE(r.exhausted());
}

TEST(ByteBuffer, RoundTripArray) {
  std::vector<double> xs(100);
  std::iota(xs.begin(), xs.end(), 0.5);
  ByteWriter w;
  w.put_array(xs.data(), xs.size());
  const auto buf = std::move(w).take();

  ByteReader r(buf);
  std::vector<double> ys(100);
  r.get_array(ys.data(), ys.size());
  EXPECT_EQ(xs, ys);
}

TEST(ByteBuffer, ReadPastEndThrows) {
  ByteWriter w;
  w.put<std::uint16_t>(7);
  const auto buf = std::move(w).take();
  ByteReader r(buf);
  EXPECT_THROW(r.get<std::uint64_t>(), corrupt_stream_error);
}

TEST(ByteBuffer, AdversarialArrayCountDoesNotWrap) {
  // Regression: a corrupt header can claim any element count. For counts
  // where `count * sizeof(T)` wraps std::size_t (e.g. 2^61 doubles on a
  // 64-bit platform wraps to 0), the old `check(count * sizeof(T))` passed
  // and memcpy ran with the un-wrapped length. The guard must compare via
  // division and throw instead.
  const std::size_t wrap_count =
      std::numeric_limits<std::size_t>::max() / sizeof(double) + 2;
  ASSERT_LT(wrap_count * sizeof(double),  // premise: the product truly wraps
            wrap_count);
  std::vector<byte_t> data(64, 0);
  ByteReader r(data);
  double sink[4];
  EXPECT_THROW(r.get_array(sink, wrap_count), corrupt_stream_error);
  // The same count must also be rejected on the write side, where the
  // wrapped product would resize the buffer tiny and emit a short stream.
  ByteWriter w;
  EXPECT_THROW(w.put_array(sink, wrap_count), config_error);
  // Sane counts that merely exceed the buffer still throw (no regression).
  ByteReader r2(data);
  EXPECT_THROW(r2.get_array(sink, 9), corrupt_stream_error);
  // And a huge string length prefix is caught by the plain bounds check.
  ByteWriter w2;
  w2.put<std::uint32_t>(0xffffffffu);
  const auto buf = std::move(w2).take();
  ByteReader r3(buf);
  EXPECT_THROW(r3.get_string(), corrupt_stream_error);
}

TEST(ByteBuffer, GetBytesAdvancesAndBoundsChecks) {
  std::vector<byte_t> data{1, 2, 3, 4, 5};
  ByteReader r(data);
  const auto first = r.get_bytes(3);
  EXPECT_EQ(first[0], 1);
  EXPECT_EQ(r.remaining(), 2u);
  EXPECT_THROW(r.get_bytes(3), corrupt_stream_error);
}

TEST(BitIo, EmptyWriterProducesEmptyBuffer) {
  BitWriter w;
  EXPECT_EQ(w.bit_count(), 0u);
  const auto buf = w.finish();
  EXPECT_TRUE(buf.empty());
  BitReader r(buf);
  EXPECT_EQ(r.bits_remaining(), 0u);
  EXPECT_THROW(r.read_bit(), corrupt_stream_error);
}

TEST(BitIo, ZeroWidthWriteIsANoOp) {
  BitWriter w;
  w.write_bits(0xffff, 0);
  EXPECT_EQ(w.bit_count(), 0u);
  w.write_bit(1);
  w.write_bits(0xffff, 0);
  EXPECT_EQ(w.bit_count(), 1u);
  const auto buf = w.finish();
  BitReader r(buf);
  EXPECT_EQ(r.read_bits(0), 0u);  // reads nothing
  EXPECT_EQ(r.read_bit(), 1u);
}

TEST(BitIo, UnalignedTailRoundTrips) {
  // 11 bits: one full byte plus a 3-bit tail padded with zeros.
  BitWriter w;
  w.write_bits(0b10110100101, 11);
  const auto buf = w.finish();
  ASSERT_EQ(buf.size(), 2u);
  BitReader r(buf);
  EXPECT_EQ(r.read_bits(11), 0b10110100101u);
  // The 5 pad bits are zero and readable; one past them throws.
  EXPECT_EQ(r.read_bits(5), 0u);
  EXPECT_THROW(r.read_bit(), corrupt_stream_error);
}

TEST(BitIo, SingleByteRoundTripsBitByBit) {
  BitWriter w;
  const unsigned bits[8] = {1, 0, 1, 1, 0, 0, 1, 0};
  for (const unsigned b : bits) w.write_bit(b);
  const auto buf = w.finish();
  ASSERT_EQ(buf.size(), 1u);
  EXPECT_EQ(buf[0], 0b10110010u);
  BitReader r(buf);
  for (const unsigned b : bits) EXPECT_EQ(r.read_bit(), b);
  EXPECT_EQ(r.bits_remaining(), 0u);
}

TEST(BitIo, RoundTripBits) {
  BitWriter w;
  w.write_bits(0b1011, 4);
  w.write_bit(1);
  w.write_bits(0x12345, 20);
  const auto buf = w.finish();

  BitReader r(buf);
  EXPECT_EQ(r.read_bits(4), 0b1011u);
  EXPECT_EQ(r.read_bit(), 1u);
  EXPECT_EQ(r.read_bits(20), 0x12345u);
}

TEST(BitIo, UnaryCoding) {
  BitWriter w;
  for (unsigned v : {0u, 1u, 5u, 13u}) w.write_unary(v);
  const auto buf = w.finish();
  BitReader r(buf);
  EXPECT_EQ(r.read_unary(), 0u);
  EXPECT_EQ(r.read_unary(), 1u);
  EXPECT_EQ(r.read_unary(), 5u);
  EXPECT_EQ(r.read_unary(), 13u);
}

TEST(BitIo, BitCountMatchesWrites) {
  BitWriter w;
  w.write_bits(0, 13);
  EXPECT_EQ(w.bit_count(), 13u);
  const auto buf = w.finish();
  EXPECT_EQ(buf.size(), 2u);  // padded to byte boundary
}

TEST(BitIo, ReadPastEndThrows) {
  BitWriter w;
  w.write_bits(0xff, 8);
  const auto buf = w.finish();
  BitReader r(buf);
  r.read_bits(8);
  EXPECT_THROW(r.read_bit(), corrupt_stream_error);
}

TEST(Crc32, KnownVector) {
  // CRC-32("123456789") = 0xCBF43926 (IEEE reference value).
  const char* s = "123456789";
  const std::uint32_t c = crc32(
      {reinterpret_cast<const byte_t*>(s), 9});
  EXPECT_EQ(c, 0xcbf43926u);
}

TEST(Crc32, EmptyBufferIsZero) {
  // CRC-32 of the empty message: init ^ final xor = 0.
  EXPECT_EQ(crc32({}), 0u);
  Crc32 inc;
  inc.update({});
  EXPECT_EQ(inc.value(), 0u);
}

TEST(Crc32, SingleByteKnownVectors) {
  // Reference values for 1-byte messages (IEEE 802.3 reflected polynomial).
  const byte_t a = 'a';
  EXPECT_EQ(crc32({&a, 1}), 0xe8b7be43u);
  const byte_t zero = 0x00;
  EXPECT_EQ(crc32({&zero, 1}), 0xd202ef8du);
  const byte_t ff = 0xff;
  EXPECT_EQ(crc32({&ff, 1}), 0xff000000u);
}

TEST(Crc32, IncrementalByteAtATimeEqualsOneShot) {
  const char* s = "checkpoint";
  const auto data = std::span(reinterpret_cast<const byte_t*>(s), 10);
  Crc32 inc;
  for (const byte_t b : data) inc.update({&b, 1});
  EXPECT_EQ(inc.value(), crc32(data));
}

TEST(Crc32, IncrementalEqualsOneShot) {
  std::vector<byte_t> data(1000);
  Rng rng(3);
  for (auto& b : data) b = static_cast<byte_t>(rng());
  Crc32 inc;
  inc.update(std::span(data).subspan(0, 400));
  inc.update(std::span(data).subspan(400));
  EXPECT_EQ(inc.value(), crc32(data));
}

TEST(Crc32, DetectsSingleBitFlip) {
  std::vector<byte_t> data(64, 0xa5);
  const auto before = crc32(data);
  data[17] ^= 0x04;
  EXPECT_NE(before, crc32(data));
}

TEST(Rng, DeterministicFromSeed) {
  Rng a(123), b(123), c(124);
  EXPECT_EQ(a(), b());
  Rng a2(123);
  (void)c;
  EXPECT_NE(a2(), Rng(124)());
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng rng(11);
  RunningStats st;
  const double mean = 3600.0;
  for (int i = 0; i < 200000; ++i) st.add(rng.exponential(mean));
  EXPECT_NEAR(st.mean(), mean, mean * 0.02);
  // Exponential: stddev == mean.
  EXPECT_NEAR(st.stddev(), mean, mean * 0.05);
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  RunningStats st;
  for (int i = 0; i < 200000; ++i) st.add(rng.normal(2.0, 0.5));
  EXPECT_NEAR(st.mean(), 2.0, 0.01);
  EXPECT_NEAR(st.stddev(), 0.5, 0.01);
}

TEST(RunningStats, WelfordMatchesDirect) {
  const std::vector<double> xs{1.0, 2.0, 4.0, 8.0, 16.0};
  RunningStats st;
  for (double x : xs) st.add(x);
  EXPECT_EQ(st.count(), 5u);
  EXPECT_DOUBLE_EQ(st.mean(), 6.2);
  EXPECT_DOUBLE_EQ(st.min(), 1.0);
  EXPECT_DOUBLE_EQ(st.max(), 16.0);
  // Direct unbiased variance.
  double var = 0.0;
  for (double x : xs) var += (x - 6.2) * (x - 6.2);
  var /= 4.0;
  EXPECT_NEAR(st.variance(), var, 1e-12);
}

TEST(Samples, Percentiles) {
  Samples s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
  EXPECT_NEAR(s.median(), 50.5, 1e-9);
  EXPECT_NEAR(s.percentile(90), 90.1, 0.2);
}

TEST(ParallelFor, DeterministicSumsMatchSerial) {
  const index_t n = 100000;
  std::vector<double> xs(n);
  for (index_t i = 0; i < n; ++i) xs[i] = static_cast<double>(i % 97) * 0.25;
  const double par =
      detail::deterministic_reduce_sum(n, [&](index_t i) { return xs[i]; });
  double ser = 0.0;
  for (const double x : xs) ser += x;
  EXPECT_NEAR(par, ser, 1e-6);
}

TEST(ParallelFor, DeterministicMaxReduction) {
  const index_t n = 9999;
  const double m = detail::deterministic_reduce_max(n, [&](index_t i) {
    return static_cast<double>((i * 37) % 1000);
  });
  EXPECT_DOUBLE_EQ(m, 999.0);
}

class PartitionerTest : public ::testing::TestWithParam<std::pair<index_t, int>> {};

TEST_P(PartitionerTest, CoversRangeExactly) {
  const auto [n, ranks] = GetParam();
  const Partitioner part(n, ranks);
  index_t total = 0;
  for (int r = 0; r < ranks; ++r) {
    EXPECT_EQ(part.offset(r), total);
    total += part.local_size(r);
  }
  EXPECT_EQ(total, n);
}

TEST_P(PartitionerTest, OwnerConsistentWithOffsets) {
  const auto [n, ranks] = GetParam();
  const Partitioner part(n, ranks);
  for (int r = 0; r < ranks; ++r) {
    if (part.local_size(r) == 0) continue;
    EXPECT_EQ(part.owner(part.offset(r)), r);
    EXPECT_EQ(part.owner(part.offset(r) + part.local_size(r) - 1), r);
  }
}

TEST_P(PartitionerTest, BalancedWithinOne) {
  const auto [n, ranks] = GetParam();
  const Partitioner part(n, ranks);
  index_t lo = n, hi = 0;
  for (int r = 0; r < ranks; ++r) {
    lo = std::min(lo, part.local_size(r));
    hi = std::max(hi, part.local_size(r));
  }
  EXPECT_LE(hi - lo, 1);
  EXPECT_EQ(part.max_local_size(), hi);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PartitionerTest,
    ::testing::Values(std::pair<index_t, int>{0, 1},
                      std::pair<index_t, int>{1, 1},
                      std::pair<index_t, int>{10, 3},
                      std::pair<index_t, int>{1000, 7},
                      std::pair<index_t, int>{2160L * 2160 * 2160 % 100000, 2048},
                      std::pair<index_t, int>{65536, 256}));

TEST(Partitioner, RejectsBadArguments) {
  EXPECT_THROW(Partitioner(-1, 4), config_error);
  EXPECT_THROW(Partitioner(10, 0), config_error);
}

}  // namespace
}  // namespace lck

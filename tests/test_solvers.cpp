/// Iterative solver tests: convergence on the paper's operators, restart
/// semantics (the lossy recovery path), traditional save/restore exactness,
/// and iteration accounting.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "solvers/factory.hpp"
#include "sparse/gen/poisson3d.hpp"
#include "sparse/gen/random_spd.hpp"

namespace lck {
namespace {

/// True relative residual computed from scratch.
double true_rel_residual(const CsrMatrix& a, const Vector& b, const Vector& x) {
  Vector r(b.size());
  a.residual(b, x, r);
  return norm2(r) / norm2(b);
}

struct ProblemSetup {
  CsrMatrix a;
  Vector b;
};

ProblemSetup poisson_problem(index_t n, bool spd) {
  ProblemSetup p;
  p.a = spd ? poisson3d_spd(n) : poisson3d(n);
  const Vector xt = smooth_solution(p.a.rows());
  p.b.assign(xt.size(), 0.0);
  p.a.multiply(xt, p.b);
  return p;
}

// ----- convergence across methods (parameterized) ---------------------------------

struct MethodCase {
  const char* method;
  bool needs_spd;
  double rtol;
};

class SolverConvergence : public ::testing::TestWithParam<MethodCase> {};

TEST_P(SolverConvergence, ReachesRequestedTolerance) {
  const auto [method, needs_spd, rtol] = GetParam();
  const ProblemSetup p = poisson_problem(8, needs_spd);
  SolverSpec spec;
  spec.method = method;
  spec.options.rtol = rtol;
  spec.options.max_iterations = 20000;
  const auto pc =
      needs_spd ? make_preconditioner("bjacobi", p.a, 4) : nullptr;
  auto solver = make_solver(spec, p.a, p.b, pc.get());
  const auto st = solver->solve();
  EXPECT_TRUE(st.converged) << method;
  EXPECT_LE(true_rel_residual(p.a, p.b, solver->solution()), rtol * 1.1)
      << method;
}

TEST_P(SolverConvergence, ResidualHistoryIsRecorded) {
  const auto [method, needs_spd, rtol] = GetParam();
  const ProblemSetup p = poisson_problem(5, needs_spd);
  SolverSpec spec;
  spec.method = method;
  spec.options.rtol = rtol;
  auto solver = make_solver(spec, p.a, p.b, nullptr);
  solver->solve();
  EXPECT_EQ(solver->residual_history().size(),
            static_cast<std::size_t>(solver->iteration()));
  EXPECT_LE(solver->residual_history().back(),
            rtol * norm2(p.b) * (1.0 + 1e-12));
}

INSTANTIATE_TEST_SUITE_P(
    Methods, SolverConvergence,
    ::testing::Values(MethodCase{"jacobi", false, 1e-6},
                      MethodCase{"gauss-seidel", false, 1e-6},
                      MethodCase{"sor", false, 1e-6},
                      MethodCase{"ssor", false, 1e-6},
                      MethodCase{"cg", true, 1e-8},
                      MethodCase{"gmres", true, 1e-8},
                      MethodCase{"bicgstab", true, 1e-8}),
    [](const auto& info) { return std::string(info.param.method == std::string("gauss-seidel") ? "gauss_seidel" : info.param.method); });

// ----- specific behaviours ---------------------------------------------------------

TEST(Jacobi, ConvergesToKnownSolution) {
  const ProblemSetup p = poisson_problem(6, false);
  JacobiSolver s(p.a, p.b, {.rtol = 1e-10, .max_iterations = 50000});
  s.solve();
  const Vector xt = smooth_solution(p.a.rows());
  EXPECT_LT(max_abs_diff(s.solution(), xt), 1e-6);
}

TEST(Jacobi, SpectralRadiusEstimateBelowOne) {
  const ProblemSetup p = poisson_problem(6, false);
  JacobiSolver s(p.a, p.b, {.rtol = 1e-8});
  s.solve();
  const double r = s.estimate_spectral_radius();
  EXPECT_GT(r, 0.0);
  EXPECT_LT(r, 1.0);
}

TEST(Sor, OptimalOmegaBeatsGaussSeidel) {
  const ProblemSetup p = poisson_problem(6, false);
  SolveOptions opts{.rtol = 1e-8, .max_iterations = 50000};
  GaussSeidelSolver gs(p.a, p.b, opts);
  SorSolver sor(p.a, p.b, 1.6, SweepKind::kForward, opts);
  gs.solve();
  sor.solve();
  EXPECT_LT(sor.iteration(), gs.iteration());
}

TEST(Sor, RejectsOmegaOutOfRange) {
  const ProblemSetup p = poisson_problem(3, false);
  EXPECT_THROW(SorSolver(p.a, p.b, 2.0), config_error);
  EXPECT_THROW(SorSolver(p.a, p.b, 0.0), config_error);
}

TEST(Cg, SuperlinearOnSpd) {
  const ProblemSetup p = poisson_problem(8, true);
  const auto pc = make_preconditioner("ic0", p.a);
  CgSolver s(p.a, p.b, pc.get(), {.rtol = 1e-10});
  const auto st = s.solve();
  EXPECT_TRUE(st.converged);
  // CG with IC(0) on a 512-dof Poisson system should converge in far fewer
  // iterations than the dimension.
  EXPECT_LT(s.iteration(), 100);
}

TEST(Cg, PreconditioningReducesIterations) {
  const ProblemSetup p = poisson_problem(8, true);
  CgSolver plain(p.a, p.b, nullptr, {.rtol = 1e-8});
  const auto pc = make_preconditioner("ic0", p.a);
  CgSolver pcg(p.a, p.b, pc.get(), {.rtol = 1e-8});
  plain.solve();
  pcg.solve();
  EXPECT_LT(pcg.iteration(), plain.iteration());
}

TEST(Bicgstab, HandlesNonsymmetric) {
  RandomSpdOptions opt;
  opt.n = 300;
  opt.symmetric = false;
  opt.dominance = 2.0;
  const CsrMatrix a = random_dominant(opt);
  Rng rng(8);
  Vector xt(a.rows());
  for (auto& v : xt) v = rng.uniform(-1, 1);
  Vector b(a.rows());
  a.multiply(xt, b);
  BicgstabSolver s(a, b, nullptr, {.rtol = 1e-9});
  const auto st = s.solve();
  EXPECT_TRUE(st.converged);
  EXPECT_LT(true_rel_residual(a, b, s.solution()), 1e-8);
}

// ----- restart semantics (lossy recovery path, Algorithm 2) -----------------------

class RestartBehaviour : public ::testing::TestWithParam<const char*> {};

TEST_P(RestartBehaviour, RestartFromCurrentIterateStillConverges) {
  const std::string method = GetParam();
  const bool spd = method == "cg" || method == "gmres" || method == "bicgstab";
  const ProblemSetup p = poisson_problem(6, spd);
  SolverSpec spec;
  spec.method = method;
  spec.options.rtol = 1e-8;
  spec.options.max_iterations = 60000;
  auto solver = make_solver(spec, p.a, p.b, nullptr);

  for (int i = 0; i < 25 && !solver->converged(); ++i) solver->step();
  const Vector snapshot = solver->solution();
  solver->restart(snapshot);  // exact restart: residual must not jump
  const double after = solver->residual_norm();
  for (index_t i = 0; !solver->converged() &&
                      solver->iteration() < spec.options.max_iterations;
       ++i)
    solver->step();
  EXPECT_TRUE(solver->converged()) << method << " residual " << after;
}

TEST_P(RestartBehaviour, RestartFromPerturbedIterateConverges) {
  // This is exactly what a lossy recovery does: x' = x + e, |e| ≤ eb·|x|.
  const std::string method = GetParam();
  const bool spd = method == "cg" || method == "gmres" || method == "bicgstab";
  const ProblemSetup p = poisson_problem(6, spd);
  SolverSpec spec;
  spec.method = method;
  spec.options.rtol = 1e-8;
  spec.options.max_iterations = 60000;
  auto solver = make_solver(spec, p.a, p.b, nullptr);

  for (int i = 0; i < 30 && !solver->converged(); ++i) solver->step();
  Vector perturbed = solver->solution();
  Rng rng(77);
  for (auto& v : perturbed) v *= 1.0 + 1e-4 * (rng.uniform() - 0.5);
  solver->restart(perturbed);
  const auto st = solver->solve();
  EXPECT_TRUE(st.converged) << method;
  EXPECT_LE(true_rel_residual(p.a, p.b, solver->solution()), 1e-7) << method;
}

INSTANTIATE_TEST_SUITE_P(Methods, RestartBehaviour,
                         ::testing::Values("jacobi", "cg", "gmres",
                                           "bicgstab"));

// ----- traditional checkpoint/restore exactness -----------------------------------

class SaveRestore : public ::testing::TestWithParam<const char*> {};

TEST_P(SaveRestore, RestoredRunMatchesUninterruptedRun) {
  const std::string method = GetParam();
  const bool spd = method != "jacobi";
  const ProblemSetup p = poisson_problem(6, spd);
  SolverSpec spec;
  spec.method = method;
  spec.options.rtol = 1e-9;
  spec.options.max_iterations = 60000;

  // Reference: run straight to convergence.
  auto ref = make_solver(spec, p.a, p.b, nullptr);
  ref->solve();

  // Interrupted: step 20, snapshot dynamic state, step 10 more ("lost"),
  // restore, and continue — must converge at the same iteration count.
  // Snapshot a third of the way to convergence, lose a further sixth.
  const int snapshot_at = std::max<int>(2, static_cast<int>(ref->iteration() / 3));
  const int lost_steps = std::max<int>(1, static_cast<int>(ref->iteration() / 6));

  auto s = make_solver(spec, p.a, p.b, nullptr);
  for (int i = 0; i < snapshot_at && !s->converged(); ++i) s->step();
  ASSERT_FALSE(s->converged()) << "snapshot must happen mid-solve";

  std::vector<Vector> saved;
  for (const auto& var : s->checkpoint_vectors()) saved.push_back(*var.data);
  ByteWriter bw;
  s->save_scalars(bw);
  const auto blob = std::move(bw).take();

  for (int i = 0; i < lost_steps && !s->converged(); ++i)
    s->step();  // work that will be rolled back

  auto vars = s->checkpoint_vectors();
  for (std::size_t i = 0; i < vars.size(); ++i) *vars[i].data = saved[i];
  ByteReader br(blob);
  s->restore_scalars(br);
  s->resume_after_restore();
  EXPECT_EQ(s->iteration(), snapshot_at);

  s->solve();
  EXPECT_TRUE(s->converged());
  if (method == "gmres") {
    // Restarted GMRES rebuilds the Krylov basis from the restored x (only x
    // is dynamic — paper §4.2), so the iteration count may differ slightly,
    // but the solution must still meet the tolerance.
    EXPECT_LE(true_rel_residual(p.a, p.b, s->solution()),
              spec.options.rtol * 1.1);
  } else {
    EXPECT_EQ(s->iteration(), ref->iteration())
        << method << ": traditional recovery must be exact";
    EXPECT_LT(max_abs_diff(s->solution(), ref->solution()), 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Methods, SaveRestore,
                         ::testing::Values("jacobi", "cg", "gmres",
                                           "bicgstab"));

TEST(CheckpointVectors, CgExposesXandP) {
  const ProblemSetup p = poisson_problem(4, true);
  CgSolver s(p.a, p.b);
  const auto vars = s.checkpoint_vectors();
  ASSERT_EQ(vars.size(), 2u);
  EXPECT_EQ(vars[0].name, "x");
  EXPECT_EQ(vars[1].name, "p");
}

TEST(CheckpointVectors, JacobiAndGmresExposeOnlyX) {
  const ProblemSetup p = poisson_problem(4, true);
  JacobiSolver j(poisson3d(4), p.b);
  EXPECT_EQ(j.checkpoint_vectors().size(), 1u);
  GmresSolver g(p.a, p.b);
  EXPECT_EQ(g.checkpoint_vectors().size(), 1u);
}

TEST(SolverGuards, MismatchedRhsThrows) {
  const CsrMatrix a = poisson3d_spd(3);
  Vector b(5, 1.0);
  EXPECT_THROW(CgSolver(a, b), config_error);
}

TEST(SolverGuards, SetIterationAdjustsCounter) {
  const ProblemSetup p = poisson_problem(4, false);
  JacobiSolver s(p.a, p.b);
  s.step();
  s.step();
  EXPECT_EQ(s.iteration(), 2);
  s.set_iteration(1);
  EXPECT_EQ(s.iteration(), 1);
}

TEST(Factory, UnknownMethodThrows) {
  const ProblemSetup p = poisson_problem(3, true);
  SolverSpec spec;
  spec.method = "multigrid";
  EXPECT_THROW(make_solver(spec, p.a, p.b), config_error);
}

}  // namespace
}  // namespace lck

/// SIMD kernel-engine tests (PR 10): runtime dispatch and the LCK_FORCE_ISA
/// override, pack ops pinned against scalar arithmetic for every compiled
/// backend, gather-based CSR row kernels on adversarial shapes (empty rows,
/// one long row, unaligned dimensions), and the lane-canonical reduction
/// contract — dot/norm/fused kernels and the fused SpMV+norm pass must be
/// bit-identical across every ISA, every thread count, and sizes straddling
/// the 16Ki reduction-block boundary.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/simd.hpp"
#include "compress/compressor.hpp"
#include "solvers/bicgstab.hpp"
#include "solvers/cg.hpp"
#include "sparse/csr.hpp"
#include "sparse/gen/random_spd.hpp"
#include "sparse/vector_ops.hpp"

#if defined(_OPENMP)
#include <omp.h>
#endif

namespace lck {
namespace {

/// Every tier this binary can both dispatch to and execute on this CPU.
std::vector<simd::Isa> runnable_isas() {
  std::vector<simd::Isa> v;
  const simd::Isa top = simd::supported_isa() < simd::compiled_isa()
                            ? simd::supported_isa()
                            : simd::compiled_isa();
  for (int i = 0; i <= static_cast<int>(top); ++i)
    v.push_back(static_cast<simd::Isa>(i));
  return v;
}

/// Restores dispatch to its default (env/CPUID) choice when a test that
/// called force_isa() leaves scope, so tests stay order-independent.
struct IsaGuard {
  ~IsaGuard() { simd::reset_isa(); }
};

Vector random_vector(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Vector v(n);
  for (auto& x : v) x = rng.uniform() * 2.0 - 1.0;
  return v;
}

void expect_bitwise_eq(std::span<const double> a, std::span<const double> b,
                       const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  if (!a.empty()) {
    EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(double)), 0)
        << what;
  }
}

/// Sizes straddling the kReductionBlockElems = 16384 serial/blocked boundary.
const std::size_t kSizes[] = {1, 5, 16383, 16384, 16385, 50000, 100000};

template <typename F>
void for_each_thread_count(F&& body) {
#if defined(_OPENMP)
  const int prev = omp_get_max_threads();
  for (const int threads : {1, 2, 4, 8}) {
    omp_set_num_threads(threads);
    body(threads);
  }
  omp_set_num_threads(prev);
#else
  body(1);
#endif
}

// ---------------------------------------------------------------------------
// Dispatch and the LCK_FORCE_ISA override.
// ---------------------------------------------------------------------------

TEST(Dispatch, IsaNamesRoundTrip) {
  for (const simd::Isa isa :
       {simd::Isa::kScalar, simd::Isa::kSse2, simd::Isa::kAvx2,
        simd::Isa::kAvx512})
    EXPECT_EQ(simd::parse_isa(simd::isa_name(isa)), isa);
}

TEST(Dispatch, ParseIsaRejectsUnknownNamesListingValidOnes) {
  try {
    (void)simd::parse_isa("avx9000");
    FAIL() << "expected config_error";
  } catch (const config_error& e) {
    // Same diagnostic rule as make_compressor: a typo must be a one-look fix.
    EXPECT_NE(std::string(e.what()).find("scalar, sse2, avx2, avx512"),
              std::string::npos)
        << e.what();
  }
}

TEST(Dispatch, ActiveIsaIsRunnable) {
  IsaGuard guard;
  simd::reset_isa();
  const simd::Isa active = simd::active_isa();
  EXPECT_LE(active, simd::supported_isa());
  EXPECT_LE(active, simd::compiled_isa());
  EXPECT_EQ(simd::ops().isa, active);
}

TEST(Dispatch, ForceIsaPinsEveryRunnableTier) {
  IsaGuard guard;
  for (const simd::Isa isa : runnable_isas()) {
    simd::force_isa(isa);
    EXPECT_EQ(simd::active_isa(), isa);
    EXPECT_EQ(simd::ops().isa, isa);
  }
}

TEST(Dispatch, ForceIsaAboveSupportedThrows) {
  if (simd::supported_isa() >= simd::Isa::kAvx512)
    GTEST_SKIP() << "CPU supports every tier; nothing to reject";
  IsaGuard guard;
  EXPECT_THROW(simd::force_isa(simd::Isa::kAvx512), config_error);
}

TEST(Dispatch, EnvForceIsaOverridesAndStrictParses) {
  const char* prev = std::getenv("LCK_FORCE_ISA");
  const std::string saved = prev != nullptr ? prev : "";
  const bool had = prev != nullptr;

  ::setenv("LCK_FORCE_ISA", "scalar", 1);
  simd::reset_isa();
  EXPECT_EQ(simd::active_isa(), simd::Isa::kScalar);

  ::setenv("LCK_FORCE_ISA", "avx9000", 1);
  simd::reset_isa();
  try {
    (void)simd::active_isa();
    FAIL() << "expected config_error";
  } catch (const config_error& e) {
    EXPECT_NE(std::string(e.what()).find("scalar, sse2, avx2, avx512"),
              std::string::npos)
        << e.what();
  }

  if (had)
    ::setenv("LCK_FORCE_ISA", saved.c_str(), 1);
  else
    ::unsetenv("LCK_FORCE_ISA");
  simd::reset_isa();
  EXPECT_LE(simd::active_isa(), simd::supported_isa());  // re-prime the cache
}

TEST(Dispatch, OpsForUncompiledBackendThrows) {
  if (simd::compiled_isa() >= simd::Isa::kAvx512)
    GTEST_SKIP() << "all backends compiled in";
  EXPECT_THROW((void)simd::ops_for(simd::Isa::kAvx512), config_error);
}

// ---------------------------------------------------------------------------
// Pack ops: every backend's vector arithmetic against scalar reference.
// ---------------------------------------------------------------------------

TEST(Packs, SelftestPassesForEveryRunnableBackend) {
  for (const simd::Isa isa : runnable_isas()) {
    std::string msg;
    EXPECT_TRUE(simd::ops_for(isa).pack_selftest(&msg))
        << simd::isa_name(isa) << ": " << msg;
  }
}

// ---------------------------------------------------------------------------
// Lane-canonical reductions: cross-ISA and cross-thread-count bit identity,
// and agreement with the portable lane_sum_block reference.
// ---------------------------------------------------------------------------

TEST(LaneCanonical, DotNormBitIdenticalAcrossIsasThreadsAndSizes) {
  IsaGuard guard;
  for (const std::size_t n : kSizes) {
    const Vector x = random_vector(n, 11);
    const Vector y = random_vector(n, 12);
    // Portable reference: the generic lane-canonical template.
    const auto xy = [&](index_t i) { return x[i] * y[i]; };
    const auto xx = [&](index_t i) { return x[i] * x[i]; };
    const double ref_dot =
        detail::deterministic_reduce_sum(static_cast<index_t>(n), xy);
    const double ref_nrm = std::sqrt(
        detail::deterministic_reduce_sum(static_cast<index_t>(n), xx));
    for (const simd::Isa isa : runnable_isas()) {
      simd::force_isa(isa);
      for_each_thread_count([&](int threads) {
        EXPECT_EQ(dot(x, y), ref_dot)
            << simd::isa_name(isa) << " n=" << n << " threads=" << threads;
        EXPECT_EQ(norm2(x), ref_nrm)
            << simd::isa_name(isa) << " n=" << n << " threads=" << threads;
        EXPECT_EQ(norm_inf(x), norm_inf(x)) << "norm_inf nondeterministic?";
      });
    }
  }
}

TEST(LaneCanonical, FusedKernelsBitIdenticalAcrossIsas) {
  IsaGuard guard;
  const std::size_t n = 20000;  // > one reduction block, not a lane multiple
  const Vector p = random_vector(n, 21);
  const Vector q = random_vector(n, 22);
  const Vector z = random_vector(n, 23);

  struct Snapshot {
    double axpy_nrm, pq, rr, wd, d2a, d2b, a2n;
    Vector y, x, r, w, zz;
  };
  std::vector<Snapshot> snaps;
  for (const simd::Isa isa : runnable_isas()) {
    simd::force_isa(isa);
    Snapshot s;
    s.y = random_vector(n, 24);
    s.axpy_nrm = axpy_norm2(0.37, p, s.y);
    s.x = random_vector(n, 25);
    s.r = random_vector(n, 26);
    const DotAxpyResult da = dot_axpy(p, q, 0.9, s.x, s.r);
    s.pq = da.pq;
    s.rr = da.rr;
    s.w = Vector(n, 0.0);
    s.wd = waxpy_dot(p, -0.61, q, s.w, z);
    const auto [d2a, d2b] = dot2(p, q, z);
    s.d2a = d2a;
    s.d2b = d2b;
    s.zz = random_vector(n, 27);
    s.a2n = axpy2_norm2(0.12, p, -0.45, q, s.zz);
    snaps.push_back(std::move(s));
  }
  for (std::size_t k = 1; k < snaps.size(); ++k) {
    const char* isa = simd::isa_name(runnable_isas()[k]);
    EXPECT_EQ(snaps[k].axpy_nrm, snaps[0].axpy_nrm) << isa;
    EXPECT_EQ(snaps[k].pq, snaps[0].pq) << isa;
    EXPECT_EQ(snaps[k].rr, snaps[0].rr) << isa;
    EXPECT_EQ(snaps[k].wd, snaps[0].wd) << isa;
    EXPECT_EQ(snaps[k].d2a, snaps[0].d2a) << isa;
    EXPECT_EQ(snaps[k].d2b, snaps[0].d2b) << isa;
    EXPECT_EQ(snaps[k].a2n, snaps[0].a2n) << isa;
    expect_bitwise_eq(snaps[k].y, snaps[0].y, isa);
    expect_bitwise_eq(snaps[k].x, snaps[0].x, isa);
    expect_bitwise_eq(snaps[k].r, snaps[0].r, isa);
    expect_bitwise_eq(snaps[k].w, snaps[0].w, isa);
    expect_bitwise_eq(snaps[k].zz, snaps[0].zz, isa);
  }
}

// ---------------------------------------------------------------------------
// CSR row kernels: the gather path (rows >= kSimdRowMinNnz) and the serial
// short-row path, on adversarial shapes.
// ---------------------------------------------------------------------------

/// Rows of every interesting length: empty, 1, short (serial path), exactly
/// kSimdRowMinNnz, one long row with a non-multiple-of-8 tail, and a full
/// row. Column count 23 keeps every dimension unaligned.
CsrMatrix adversarial_matrix() {
  const index_t cols = 23;
  const std::vector<index_t> lens = {0, 20, 1, 23, 7, 16, 17};
  std::vector<index_t> rp = {0};
  std::vector<index_t> ci;
  std::vector<double> vals;
  Rng rng(99);
  for (const index_t len : lens) {
    // Ascending distinct columns: sample a stride-1 window when len == cols,
    // otherwise spread len columns over [0, cols).
    for (index_t k = 0; k < len; ++k) {
      ci.push_back(len == cols ? k : (k * cols) / len);
      vals.push_back(rng.uniform() * 2.0 - 1.0);
    }
    rp.push_back(static_cast<index_t>(ci.size()));
  }
  return CsrMatrix(static_cast<index_t>(lens.size()), cols, std::move(rp),
                   std::move(ci), std::move(vals));
}

TEST(RowKernels, RowDotMatchesLaneCanonicalReferenceEverywhere) {
  const Vector x = random_vector(64, 31);
  Rng rng(32);
  for (const index_t len : {index_t{0}, index_t{1}, index_t{7}, index_t{15},
                            index_t{16}, index_t{17}, index_t{23}, index_t{24},
                            index_t{64}, index_t{100}}) {
    std::vector<index_t> col(static_cast<std::size_t>(len));
    std::vector<double> val(static_cast<std::size_t>(len));
    for (index_t k = 0; k < len; ++k) {
      col[static_cast<std::size_t>(k)] = (k * 37) % 64;
      val[static_cast<std::size_t>(k)] = rng.uniform() * 2.0 - 1.0;
    }
    // Reference realizes the row contract in portable code: serial below
    // kSimdRowMinNnz, one lane-canonical block above it.
    double ref;
    if (len < simd::kSimdRowMinNnz) {
      ref = 0.0;
      for (index_t k = 0; k < len; ++k)
        ref += val[static_cast<std::size_t>(k)] *
               x[static_cast<std::size_t>(col[static_cast<std::size_t>(k)])];
    } else {
      auto term = [&](index_t k) {
        return val[static_cast<std::size_t>(k)] *
               x[static_cast<std::size_t>(col[static_cast<std::size_t>(k)])];
      };
      ref = detail::lane_sum_block(index_t{0}, len, term);
    }
    for (const simd::Isa isa : runnable_isas())
      EXPECT_EQ(simd::ops_for(isa).row_dot(col.data(), val.data(), len,
                                           x.data()),
                ref)
          << simd::isa_name(isa) << " len=" << len;
  }
}

TEST(RowKernels, AdversarialShapesMatchRowwiseAcrossIsas) {
  IsaGuard guard;
  const CsrMatrix a = adversarial_matrix();
  const Vector x = random_vector(static_cast<std::size_t>(a.cols()), 41);
  const Vector b = random_vector(static_cast<std::size_t>(a.rows()), 42);
  Vector ref(static_cast<std::size_t>(a.rows()));
  a.multiply_rowwise(x, ref);  // pinned to the scalar backend
  for (const simd::Isa isa : runnable_isas()) {
    simd::force_isa(isa);
    Vector y(static_cast<std::size_t>(a.rows()), -1.0);
    a.multiply(x, y);
    expect_bitwise_eq(y, ref, simd::isa_name(isa));
    Vector r1(y.size()), r2(y.size());
    a.residual(b, x, r1);
    const double fused = a.residual_norm2(b, x, r2);
    expect_bitwise_eq(r1, r2, "fused residual vector");
    EXPECT_EQ(fused, norm2(r1)) << simd::isa_name(isa);
  }
}

TEST(RowKernels, WideRowMatrixGatherPathMatchesRowwiseAcrossIsas) {
  IsaGuard guard;
  RandomSpdOptions opt;
  opt.n = 2000;
  opt.off_per_row = 24;  // rows well past kSimdRowMinNnz: gather path live
  const CsrMatrix a = random_dominant(opt);
  const Vector x = random_vector(static_cast<std::size_t>(a.cols()), 51);
  const Vector b = random_vector(static_cast<std::size_t>(a.rows()), 52);
  Vector ref(static_cast<std::size_t>(a.rows()));
  a.multiply_rowwise(x, ref);
  for (const simd::Isa isa : runnable_isas()) {
    simd::force_isa(isa);
    Vector y(ref.size());
    a.multiply(x, y);
    expect_bitwise_eq(y, ref, simd::isa_name(isa));
    Vector r1(ref.size()), r2(ref.size());
    a.residual(b, x, r1);
    const double fused = a.residual_norm2(b, x, r2);
    expect_bitwise_eq(r1, r2, "fused residual vector");
    EXPECT_EQ(fused, norm2(r1)) << simd::isa_name(isa);
  }
}

// ---------------------------------------------------------------------------
// Whole-solver cross-ISA bit identity on a wide-row matrix (the gather
// kernels and every fused reduction in one trajectory).
// ---------------------------------------------------------------------------

TEST(SolverParity, CgAndBicgstabTrajectoriesBitIdenticalAcrossIsas) {
  IsaGuard guard;
  RandomSpdOptions opt;
  opt.n = 1500;
  opt.off_per_row = 24;
  const CsrMatrix a = random_dominant(opt);
  const Vector b = random_vector(static_cast<std::size_t>(a.rows()), 61);
  SolveOptions sopts;
  sopts.rtol = 1e-30;  // never converge inside the window

  std::vector<std::vector<double>> cg_hist, bi_hist;
  std::vector<Vector> cg_x, bi_x;
  for (const simd::Isa isa : runnable_isas()) {
    simd::force_isa(isa);
    CgSolver cg(a, b, nullptr, sopts);
    BicgstabSolver bi(a, b, nullptr, sopts);
    std::vector<double> ch, bh;
    for (int it = 0; it < 25; ++it) {
      cg.step();
      bi.step();
      ch.push_back(cg.residual_norm());
      bh.push_back(bi.residual_norm());
    }
    cg_hist.push_back(std::move(ch));
    bi_hist.push_back(std::move(bh));
    cg_x.emplace_back(cg.solution().begin(), cg.solution().end());
    bi_x.emplace_back(bi.solution().begin(), bi.solution().end());
  }
  for (std::size_t k = 1; k < cg_hist.size(); ++k) {
    const char* isa = simd::isa_name(runnable_isas()[k]);
    EXPECT_EQ(cg_hist[k], cg_hist[0]) << "cg residuals, " << isa;
    EXPECT_EQ(bi_hist[k], bi_hist[0]) << "bicgstab residuals, " << isa;
    expect_bitwise_eq(cg_x[k], cg_x[0], isa);
    expect_bitwise_eq(bi_x[k], bi_x[0], isa);
  }
}

// ---------------------------------------------------------------------------
// Compression hot-loop kernels: pure byte/integer transforms, so every
// backend must produce identical output.
// ---------------------------------------------------------------------------

TEST(CompressionKernels, Shuffle8MatchesScalarAndRoundTrips) {
  Rng rng(71);
  for (const std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                              std::size_t{8}, std::size_t{9}, std::size_t{64},
                              std::size_t{1000}}) {
    std::vector<byte_t> in(n * 8);
    for (auto& v : in) v = static_cast<byte_t>(rng.uniform() * 255.0);
    std::vector<byte_t> ref(in.size(), 0);
    simd::ops_for(simd::Isa::kScalar)
        .shuffle8(in.data(), ref.data(), n, 0, n);
    for (const simd::Isa isa : runnable_isas()) {
      const auto& o = simd::ops_for(isa);
      std::vector<byte_t> out(in.size(), 0);
      o.shuffle8(in.data(), out.data(), n, 0, n);
      EXPECT_EQ(out, ref) << simd::isa_name(isa) << " n=" << n;
      std::vector<byte_t> back(in.size(), 0);
      o.unshuffle8(out.data(), back.data(), n, 0, n);
      EXPECT_EQ(back, in) << simd::isa_name(isa) << " n=" << n;
      if (n > 4) {
        // Subrange form (the parallel block pipeline shuffles slices).
        std::vector<byte_t> sub(in.size(), 0), subref(in.size(), 0);
        simd::ops_for(simd::Isa::kScalar)
            .shuffle8(in.data(), subref.data(), n, 3, n - 2);
        o.shuffle8(in.data(), sub.data(), n, 3, n - 2);
        EXPECT_EQ(sub, subref) << simd::isa_name(isa) << " subrange n=" << n;
      }
    }
  }
}

TEST(CompressionKernels, Hist8MatchesNaiveHistogram) {
  Rng rng(72);
  const std::size_t alphabet = 256;
  for (const std::size_t n :
       {std::size_t{0}, std::size_t{7}, std::size_t{8}, std::size_t{4097}}) {
    std::vector<std::uint32_t> s(n);
    for (auto& v : s) v = static_cast<std::uint32_t>(rng.uniform() * 255.0);
    std::vector<std::uint64_t> naive(alphabet, 0);
    for (const std::uint32_t v : s) ++naive[v];
    for (const simd::Isa isa : runnable_isas()) {
      const auto& o = simd::ops_for(isa);
      std::vector<std::uint64_t> part(8 * alphabet, 0);
      o.hist8(s.data(), n, part.data(), alphabet);
      std::vector<std::uint64_t> freq(alphabet, 0);
      o.hist8_merge(part.data(), alphabet, freq.data());
      EXPECT_EQ(freq, naive) << simd::isa_name(isa) << " n=" << n;
    }
  }
}

TEST(CompressionKernels, MatchLenExactAtEveryChunkBoundary) {
  // Two buffers equal up to position p; the counter must return
  // min(p, limit) and never read past the cap.
  const std::size_t kBuf = 160;
  for (const std::size_t p : {std::size_t{0}, std::size_t{1}, std::size_t{5},
                              std::size_t{15}, std::size_t{16}, std::size_t{17},
                              std::size_t{31}, std::size_t{32}, std::size_t{33},
                              std::size_t{63}, std::size_t{100}}) {
    std::vector<byte_t> a(kBuf, byte_t{0x5a}), b(kBuf, byte_t{0x5a});
    b[p] = byte_t{0xa5};
    for (const std::size_t limit :
         {std::size_t{0}, p / 2, p, p + 1, kBuf - 1}) {
      const std::size_t want = p < limit ? p : limit;
      for (const simd::Isa isa : runnable_isas())
        EXPECT_EQ(simd::ops_for(isa).match_len(a.data(), b.data(), limit),
                  want)
            << simd::isa_name(isa) << " p=" << p << " limit=" << limit;
    }
  }
}

// ---------------------------------------------------------------------------
// Diagnostics: registries must name their members on a bad lookup.
// ---------------------------------------------------------------------------

TEST(Diagnostics, MakeCompressorUnknownNameListsRegisteredCodecs) {
  try {
    (void)make_compressor("nope", ErrorBound{});
    FAIL() << "expected config_error";
  } catch (const config_error& e) {
    const std::string w = e.what();
    for (const char* name :
         {"none", "rle", "shuffle-rle", "deflate", "shuffle-deflate", "lz4",
          "shuffle-lz4", "sz", "zfp", "trunc", "block+"})
      EXPECT_NE(w.find(name), std::string::npos) << "missing " << name
                                                 << " in: " << w;
  }
}

}  // namespace
}  // namespace lck

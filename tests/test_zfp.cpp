/// ZFP-like transform compressor tests plus the pointwise-relative adapter.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/rng.hpp"
#include "compress/pwrel_adapter.hpp"
#include "sparse/vector_ops.hpp"
#include "compress/zfp/zfp_like.hpp"

namespace lck {
namespace {

Vector wave(std::size_t n, double freq = 6.28318, double offset = 2.0) {
  Vector v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = std::sin(freq * static_cast<double>(i) / static_cast<double>(n)) +
           offset;
  return v;
}

Vector roundtrip(const Compressor& c, const Vector& in) {
  const auto stream = c.compress(in);
  Vector out(in.size());
  c.decompress(stream, out);
  return out;
}

class ZfpAbsBound : public ::testing::TestWithParam<double> {};

TEST_P(ZfpAbsBound, BoundHoldsOnSmoothData) {
  const double eb = GetParam();
  ZfpLikeCompressor c(ErrorBound::absolute(eb));
  const Vector in = wave(16000);
  const Vector out = roundtrip(c, in);
  for (std::size_t i = 0; i < in.size(); ++i)
    ASSERT_LE(std::fabs(in[i] - out[i]), eb) << "index " << i;
}

TEST_P(ZfpAbsBound, BoundHoldsOnRandomData) {
  const double eb = GetParam();
  ZfpLikeCompressor c(ErrorBound::absolute(eb));
  Rng rng(31);
  Vector in(10000);
  for (auto& x : in) x = rng.uniform(-100.0, 100.0);
  const Vector out = roundtrip(c, in);
  for (std::size_t i = 0; i < in.size(); ++i)
    ASSERT_LE(std::fabs(in[i] - out[i]), eb) << "index " << i;
}

TEST_P(ZfpAbsBound, BoundHoldsOnMixedMagnitudeBlocks) {
  // Large and tiny values in the same 4-block stress the common-exponent
  // alignment; the verified-raw fallback must keep the bound.
  const double eb = GetParam();
  ZfpLikeCompressor c(ErrorBound::absolute(eb));
  Rng rng(17);
  Vector in(8192);
  for (std::size_t i = 0; i < in.size(); ++i)
    in[i] = (i % 4 == 0) ? rng.uniform(-1e9, 1e9) : rng.uniform(-1e-9, 1e-9);
  const Vector out = roundtrip(c, in);
  for (std::size_t i = 0; i < in.size(); ++i)
    ASSERT_LE(std::fabs(in[i] - out[i]), eb) << "index " << i;
}

INSTANTIATE_TEST_SUITE_P(Bounds, ZfpAbsBound,
                         ::testing::Values(1e-1, 1e-3, 1e-6, 1e-12));

TEST(Zfp, AllZeroBlocksAreOneFlag) {
  ZfpLikeCompressor c(ErrorBound::absolute(1e-6));
  const Vector in(100000, 0.0);
  const auto stream = c.compress(in);
  // 25k blocks × 2 bits ≈ 6.3 KB ≪ 800 KB raw.
  EXPECT_LT(stream.size(), 10000u);
  Vector out(in.size());
  c.decompress(stream, out);
  for (const double x : out) ASSERT_EQ(x, 0.0);
}

TEST(Zfp, SmoothDataCompressesWell) {
  ZfpLikeCompressor c(ErrorBound::absolute(1e-4));
  const double r = compression_ratio(c, wave(100000));
  EXPECT_GT(r, 3.0);  // transform coding wins ~3-4x at this bound
}

TEST(Zfp, LooserBoundGivesSmallerStream) {
  const Vector v = wave(50000);
  ZfpLikeCompressor loose(ErrorBound::absolute(1e-2));
  ZfpLikeCompressor tight(ErrorBound::absolute(1e-10));
  EXPECT_GT(compression_ratio(loose, v), compression_ratio(tight, v));
}

TEST(Zfp, NonFiniteBlocksFallBackToRaw) {
  ZfpLikeCompressor c(ErrorBound::absolute(1e-6));
  Vector in(64, 1.0);
  in[5] = std::numeric_limits<double>::infinity();
  in[9] = std::numeric_limits<double>::quiet_NaN();
  const Vector out = roundtrip(c, in);
  EXPECT_TRUE(std::isinf(out[5]));
  EXPECT_TRUE(std::isnan(out[9]));
  EXPECT_NEAR(out[0], 1.0, 1e-6);
}

TEST(Zfp, PartialTailBlock) {
  ZfpLikeCompressor c(ErrorBound::absolute(1e-8));
  for (std::size_t n : {1u, 2u, 3u, 5u, 6u, 7u, 9u, 1001u}) {
    const Vector in = wave(n);
    const Vector out = roundtrip(c, in);
    ASSERT_EQ(out.size(), n);
    for (std::size_t i = 0; i < n; ++i)
      ASSERT_LE(std::fabs(in[i] - out[i]), 1e-8);
  }
}

TEST(Zfp, ValueRangeRelativeMode) {
  const double eb = 1e-5;
  ZfpLikeCompressor c(ErrorBound::value_range_rel(eb));
  Vector in = wave(10000);
  for (auto& x : in) x *= 500.0;  // range ≈ 1000
  const Vector out = roundtrip(c, in);
  for (std::size_t i = 0; i < in.size(); ++i)
    ASSERT_LE(std::fabs(in[i] - out[i]), eb * 1000.0 * 1.01);
}

TEST(Zfp, PointwiseRelativeModeRejectedWithoutAdapter) {
  ZfpLikeCompressor c(ErrorBound::pointwise_rel(1e-4));
  const Vector in = wave(100);
  EXPECT_THROW((void)c.compress(in), config_error);
}

TEST(Zfp, TruncatedStreamThrows) {
  ZfpLikeCompressor c(ErrorBound::absolute(1e-6));
  auto stream = c.compress(wave(5000));
  stream.resize(stream.size() / 2);
  Vector out(5000);
  EXPECT_THROW(c.decompress(stream, out), corrupt_stream_error);
}

// ----- pointwise-relative adapter ------------------------------------------------

class PwRelAdapterBound : public ::testing::TestWithParam<double> {};

TEST_P(PwRelAdapterBound, PaperBoundHoldsThroughZfp) {
  const double eb = GetParam();
  PointwiseRelativeAdapter c(std::make_unique<ZfpLikeCompressor>(), eb);
  Rng rng(41);
  Vector in(20000);
  for (std::size_t i = 0; i < in.size(); ++i) {
    in[i] = (rng.uniform() < 0.5 ? -1.0 : 1.0) *
            std::pow(10.0, rng.uniform(-8.0, 8.0));
    if (i % 53 == 0) in[i] = 0.0;
  }
  const Vector out = roundtrip(c, in);
  for (std::size_t i = 0; i < in.size(); ++i)
    ASSERT_LE(std::fabs(in[i] - out[i]), eb * std::fabs(in[i]) + 1e-300)
        << "index " << i;
}

INSTANTIATE_TEST_SUITE_P(Bounds, PwRelAdapterBound,
                         ::testing::Values(1e-3, 1e-4, 1e-6));

TEST(PwRelAdapter, SparseFieldCompressesFarBeyondOne) {
  // Zeros are implied by the exact-nonzero bitset instead of 8 B each, so
  // a mostly-zero field no longer bottoms out at ratio ≈ 1.
  PointwiseRelativeAdapter c(std::make_unique<ZfpLikeCompressor>(), 1e-4);
  Rng rng(43);
  Vector in(1u << 16, 0.0);
  for (std::size_t i = 0; i < in.size() / 50; ++i)
    in[rng.uniform_index(in.size())] = rng.uniform(-5.0, 5.0);
  EXPECT_GT(compression_ratio(c, in), 10.0);
  const Vector out = roundtrip(c, in);
  for (std::size_t i = 0; i < in.size(); ++i)
    ASSERT_LE(std::fabs(in[i] - out[i]), 1e-4 * std::fabs(in[i]) + 1e-300)
        << "index " << i;
}

TEST(PwRelAdapter, NameReflectsInner) {
  PointwiseRelativeAdapter c(std::make_unique<ZfpLikeCompressor>(), 1e-4);
  EXPECT_EQ(c.name(), "pwrel+zfp");
}

TEST(PwRelAdapter, FactoryWrapsZfpAutomatically) {
  const auto c = make_compressor("zfp", ErrorBound::pointwise_rel(1e-4));
  EXPECT_EQ(c->name(), "pwrel+zfp");
  EXPECT_TRUE(c->lossy());
  const Vector in = wave(1000);
  const auto stream = c->compress(in);
  Vector out(in.size());
  c->decompress(stream, out);
  for (std::size_t i = 0; i < in.size(); ++i)
    ASSERT_LE(std::fabs(in[i] - out[i]), 1e-4 * std::fabs(in[i]) + 1e-300);
}

}  // namespace
}  // namespace lck

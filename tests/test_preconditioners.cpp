/// Preconditioner tests: exactness on cases where the incomplete
/// factorization is complete, SPD/solve properties, and factory behavior.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "sparse/gen/poisson3d.hpp"
#include "sparse/gen/random_spd.hpp"
#include "solvers/preconditioner.hpp"

namespace lck {
namespace {

/// Apply M⁻¹ then A; for an exact factorization the result is the input.
double identity_defect(const CsrMatrix& a, const Preconditioner& m,
                       std::uint64_t seed) {
  Rng rng(seed);
  Vector r(a.rows()), z(a.rows()), az(a.rows());
  for (auto& v : r) v = rng.uniform(-1.0, 1.0);
  m.apply(r, z);
  a.multiply(z, az);
  Vector diff(a.rows());
  for (index_t i = 0; i < a.rows(); ++i) diff[i] = az[i] - r[i];
  return norm2(diff) / norm2(r);
}

TEST(Identity, PassesThrough) {
  IdentityPreconditioner m;
  const Vector r{1.0, -2.0, 3.0};
  Vector z(3);
  m.apply(r, z);
  EXPECT_EQ(z, r);
}

TEST(JacobiPc, InvertsDiagonalMatrix) {
  CsrBuilder b(3, 3);
  b.add(0, 2.0);
  b.finish_row();
  b.add(1, 4.0);
  b.finish_row();
  b.add(2, -8.0);
  b.finish_row();
  const CsrMatrix a = std::move(b).build();
  const JacobiPreconditioner m(a);
  EXPECT_LT(identity_defect(a, m, 1), 1e-14);
}

TEST(JacobiPc, ZeroDiagonalThrows) {
  CsrBuilder b(2, 2);
  b.add(1, 1.0);
  b.finish_row();
  b.add(0, 1.0);
  b.finish_row();
  const CsrMatrix a = std::move(b).build();
  EXPECT_THROW(JacobiPreconditioner{a}, config_error);
}

TEST(Ilu0, ExactOnTridiagonal) {
  // A tridiagonal matrix's LU fill-in stays on the tridiagonal pattern, so
  // ILU(0) must be the exact factorization.
  const CsrMatrix a = laplacian1d(50);
  const Ilu0Preconditioner m(a);
  EXPECT_LT(identity_defect(a, m, 2), 1e-12);
}

TEST(Ilu0, ExactOnLowerBandFreePattern) {
  const CsrMatrix a = laplacian1d(7);
  const Ilu0Preconditioner m(a);
  // Known solve: A z = ones ⇒ z from exact solve of tridiag(−1,2,−1).
  Vector ones(7, 1.0), z(7), az(7);
  m.apply(ones, z);
  a.multiply(z, az);
  for (int i = 0; i < 7; ++i) EXPECT_NEAR(az[i], 1.0, 1e-12);
}

TEST(Ilu0, ApproximatesPoisson3d) {
  const CsrMatrix a = poisson3d_spd(6);
  const Ilu0Preconditioner m(a);
  // ILU(0) is inexact here but must reduce the defect well below identity's.
  const double defect = identity_defect(a, m, 3);
  EXPECT_LT(defect, 0.7);
  IdentityPreconditioner id;
  EXPECT_LT(defect, identity_defect(a, id, 3));
}

TEST(Ilu0, RejectsMissingDiagonal) {
  CsrBuilder b(2, 2);
  b.add(1, 1.0);
  b.finish_row();
  b.add(0, 1.0);
  b.finish_row();
  const CsrMatrix a = std::move(b).build();
  EXPECT_THROW(Ilu0Preconditioner{a}, config_error);
}

TEST(Ic0, ExactOnTridiagonalSpd) {
  const CsrMatrix a = laplacian1d(40);
  const Ic0Preconditioner m(a);
  EXPECT_LT(identity_defect(a, m, 4), 1e-12);
}

TEST(Ic0, SpdApplyIsSymmetricForm) {
  // M⁻¹ = (L·Lᵀ)⁻¹ is SPD: check rᵀM⁻¹r > 0 and symmetry via two vectors:
  // u·M⁻¹v == v·M⁻¹u.
  const CsrMatrix a = poisson3d_spd(4);
  const Ic0Preconditioner m(a);
  Rng rng(5);
  Vector u(a.rows()), v(a.rows()), mu(a.rows()), mv(a.rows());
  for (auto& x : u) x = rng.uniform(-1, 1);
  for (auto& x : v) x = rng.uniform(-1, 1);
  m.apply(u, mu);
  m.apply(v, mv);
  EXPECT_GT(dot(u, mu), 0.0);
  EXPECT_NEAR(dot(u, mv), dot(v, mu), 1e-10 * norm2(u) * norm2(v));
}

TEST(BlockJacobi, SingleBlockEqualsGlobalIlu0) {
  const CsrMatrix a = poisson3d_spd(4);
  const BlockJacobiPreconditioner bj(a, 1);
  const Ilu0Preconditioner ilu(a);
  Rng rng(6);
  Vector r(a.rows()), z1(a.rows()), z2(a.rows());
  for (auto& x : r) x = rng.uniform(-1, 1);
  bj.apply(r, z1);
  ilu.apply(r, z2);
  EXPECT_LT(max_abs_diff(z1, z2), 1e-14);
}

TEST(BlockJacobi, BlockCountClampedToRows) {
  const CsrMatrix a = laplacian1d(5);
  const BlockJacobiPreconditioner bj(a, 64);
  EXPECT_LE(bj.blocks(), 5);
  // With 1×1 blocks the result equals Jacobi.
  const JacobiPreconditioner jac(a);
  Vector r{1, 2, 3, 4, 5}, z1(5), z2(5);
  bj.apply(r, z1);
  jac.apply(r, z2);
  EXPECT_LT(max_abs_diff(z1, z2), 1e-14);
}

TEST(BlockJacobi, ReducesDefectOnPoisson) {
  const CsrMatrix a = poisson3d_spd(6);
  const BlockJacobiPreconditioner bj(a, 8);
  IdentityPreconditioner id;
  EXPECT_LT(identity_defect(a, bj, 7), identity_defect(a, id, 7));
}

TEST(Factory, AllNamesConstruct) {
  const CsrMatrix a = poisson3d_spd(3);
  for (const char* name : {"none", "jacobi", "ilu0", "ic0", "bjacobi"}) {
    const auto m = make_preconditioner(name, a);
    Vector r(a.rows(), 1.0), z(a.rows());
    m->apply(r, z);
    EXPECT_GT(norm2(z), 0.0) << name;
  }
  EXPECT_THROW(make_preconditioner("cholesky", a), config_error);
}

}  // namespace
}  // namespace lck

/// Lossless codec tests: RLE, byte shuffle, deflate-like LZ77+Huffman, and
/// the Compressor-interface wrappers. Every codec must be bit-exact.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "common/rng.hpp"
#include "compress/compressor.hpp"
#include "compress/lossless/byte_codecs.hpp"
#include "compress/lossless/deflate_like.hpp"
#include "compress/lossless_compressors.hpp"
#include "sparse/vector_ops.hpp"

namespace lck {
namespace {

std::vector<byte_t> random_bytes(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<byte_t> v(n);
  for (auto& b : v) b = static_cast<byte_t>(rng());
  return v;
}

// ----- RLE ------------------------------------------------------------------

TEST(Rle, EmptyInput) {
  const auto enc = rle_encode({});
  EXPECT_TRUE(rle_decode(enc, 0).empty());
}

TEST(Rle, AllSameByte) {
  std::vector<byte_t> in(1000, 0x7e);
  const auto enc = rle_encode(in);
  EXPECT_LT(enc.size(), 32u);  // long runs collapse
  EXPECT_EQ(rle_decode(enc, in.size()), in);
}

TEST(Rle, NoRuns) {
  std::vector<byte_t> in(256);
  std::iota(in.begin(), in.end(), 0);
  const auto enc = rle_encode(in);
  EXPECT_EQ(rle_decode(enc, in.size()), in);
  EXPECT_LE(enc.size(), in.size() + in.size() / 128 + 2);  // bounded expansion
}

TEST(Rle, MixedRunsAndLiterals) {
  std::vector<byte_t> in;
  for (int block = 0; block < 50; ++block) {
    in.insert(in.end(), static_cast<std::size_t>(block % 7 + 1),
              static_cast<byte_t>(block));
    in.push_back(static_cast<byte_t>(255 - block));
  }
  const auto enc = rle_encode(in);
  EXPECT_EQ(rle_decode(enc, in.size()), in);
}

TEST(Rle, RandomRoundTrip) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto in = random_bytes(1000 + seed * 137, seed);
    EXPECT_EQ(rle_decode(rle_encode(in), in.size()), in);
  }
}

TEST(Rle, WrongExpectedSizeThrows) {
  std::vector<byte_t> in(100, 3);
  const auto enc = rle_encode(in);
  EXPECT_THROW(rle_decode(enc, 99), corrupt_stream_error);
  EXPECT_THROW(rle_decode(enc, 101), corrupt_stream_error);
}

// ----- Shuffle ---------------------------------------------------------------

TEST(Shuffle, InverseOfUnshuffle) {
  const auto in = random_bytes(8 * 123, 5);
  const auto sh = shuffle_bytes(in, 8);
  EXPECT_NE(sh, in);
  EXPECT_EQ(unshuffle_bytes(sh, 8), in);
}

TEST(Shuffle, GroupsBytePlanes) {
  // Two 4-byte elements: planes must be contiguous after shuffling.
  std::vector<byte_t> in{0x01, 0x02, 0x03, 0x04, 0x11, 0x12, 0x13, 0x14};
  const auto sh = shuffle_bytes(in, 4);
  const std::vector<byte_t> expected{0x01, 0x11, 0x02, 0x12,
                                     0x03, 0x13, 0x04, 0x14};
  EXPECT_EQ(sh, expected);
}

TEST(Shuffle, RejectsMisalignedInput) {
  std::vector<byte_t> in(10);
  EXPECT_THROW(shuffle_bytes(in, 8), config_error);
  EXPECT_THROW(unshuffle_bytes(in, 3), config_error);
}

// ----- deflate-like -----------------------------------------------------------

TEST(Deflate, EmptyInput) {
  const auto enc = deflate_compress({});
  EXPECT_TRUE(deflate_decompress(enc, 0).empty());
}

TEST(Deflate, ShortInput) {
  std::vector<byte_t> in{42};
  EXPECT_EQ(deflate_decompress(deflate_compress(in), 1), in);
  std::vector<byte_t> in2{1, 2};
  EXPECT_EQ(deflate_decompress(deflate_compress(in2), 2), in2);
}

TEST(Deflate, HighlyRepetitiveCompressesHard) {
  std::vector<byte_t> in;
  for (int i = 0; i < 2000; ++i) {
    const char* phrase = "abcabcabc-";
    in.insert(in.end(), phrase, phrase + 10);
  }
  const auto enc = deflate_compress(in);
  EXPECT_LT(enc.size() * 20, in.size());  // > 20x on pure repetition
  EXPECT_EQ(deflate_decompress(enc, in.size()), in);
}

TEST(Deflate, IncompressibleFallsBackToStored) {
  const auto in = random_bytes(4096, 17);
  const auto enc = deflate_compress(in);
  EXPECT_LE(enc.size(), in.size() + 16);  // worst case: tiny header
  EXPECT_EQ(deflate_decompress(enc, in.size()), in);
}

TEST(Deflate, LongRangeMatchesWithinWindow) {
  // Repeat a 1 KiB block at a 20 KiB distance (inside the 32 KiB window).
  const auto block = random_bytes(1024, 23);
  std::vector<byte_t> in = block;
  in.resize(20 * 1024, 0x55);
  in.insert(in.end(), block.begin(), block.end());
  const auto enc = deflate_compress(in);
  EXPECT_EQ(deflate_decompress(enc, in.size()), in);
  // The second copy of the block should cost almost nothing.
  EXPECT_LT(enc.size(), in.size() / 2);
}

TEST(Deflate, SizeMismatchThrows) {
  std::vector<byte_t> in(100, 9);
  const auto enc = deflate_compress(in);
  EXPECT_THROW(deflate_decompress(enc, 101), corrupt_stream_error);
}

TEST(Deflate, TruncatedStreamThrows) {
  std::vector<byte_t> in(5000);
  for (std::size_t i = 0; i < in.size(); ++i)
    in[i] = static_cast<byte_t>(i % 251);
  auto enc = deflate_compress(in);
  enc.resize(enc.size() / 2);
  EXPECT_THROW(deflate_decompress(enc, in.size()), corrupt_stream_error);
}

class DeflateRandomRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DeflateRandomRoundTrip, MixedEntropyData) {
  const std::size_t n = GetParam();
  Rng rng(n);
  std::vector<byte_t> in(n);
  // Mix of runs, text-like low entropy, and noise.
  std::size_t i = 0;
  while (i < n) {
    const auto kind = rng.uniform_index(3);
    const std::size_t len = std::min<std::size_t>(
        1 + rng.uniform_index(200), n - i);
    if (kind == 0) {
      std::fill_n(in.begin() + static_cast<std::ptrdiff_t>(i), len,
                  static_cast<byte_t>(rng()));
    } else if (kind == 1) {
      for (std::size_t k = 0; k < len; ++k)
        in[i + k] = static_cast<byte_t>('a' + (k % 17));
    } else {
      for (std::size_t k = 0; k < len; ++k)
        in[i + k] = static_cast<byte_t>(rng());
    }
    i += len;
  }
  EXPECT_EQ(deflate_decompress(deflate_compress(in), n), in);
}

INSTANTIATE_TEST_SUITE_P(Sizes, DeflateRandomRoundTrip,
                         ::testing::Values(3, 64, 1000, 16384, 100000));

// ----- Compressor wrappers ------------------------------------------------------

Vector smooth_vector(std::size_t n) {
  Vector v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = std::sin(0.001 * static_cast<double>(i)) * 3.0 + 5.0;
  return v;
}

class LosslessWrapper : public ::testing::TestWithParam<const char*> {};

TEST_P(LosslessWrapper, ExactRoundTripOnSmoothData) {
  const auto comp = make_compressor(GetParam());
  EXPECT_FALSE(comp->lossy());
  const Vector in = smooth_vector(10000);
  const auto stream = comp->compress(in);
  Vector out(in.size());
  comp->decompress(stream, out);
  EXPECT_EQ(in, out);  // bit-exact
}

TEST_P(LosslessWrapper, ExactRoundTripOnSpecialValues) {
  const auto comp = make_compressor(GetParam());
  Vector in{0.0, -0.0, 1e-308, -1e308,
            std::numeric_limits<double>::infinity(),
            -std::numeric_limits<double>::infinity(),
            std::numeric_limits<double>::denorm_min(), 1.0, -1.0};
  in.resize(64, 3.25);
  const auto stream = comp->compress(in);
  Vector out(in.size());
  comp->decompress(stream, out);
  for (std::size_t i = 0; i < in.size(); ++i) {
    if (std::isnan(in[i]))
      EXPECT_TRUE(std::isnan(out[i]));
    else
      EXPECT_EQ(in[i], out[i]) << "index " << i;
  }
}

TEST_P(LosslessWrapper, EmptyVector) {
  const auto comp = make_compressor(GetParam());
  const Vector in;
  const auto stream = comp->compress(in);
  Vector out;
  comp->decompress(stream, out);
  EXPECT_TRUE(out.empty());
}

TEST_P(LosslessWrapper, WrongOutputSizeThrows) {
  const auto comp = make_compressor(GetParam());
  const Vector in(100, 1.5);
  const auto stream = comp->compress(in);
  Vector out(99);
  EXPECT_THROW(comp->decompress(stream, out), corrupt_stream_error);
}

INSTANTIATE_TEST_SUITE_P(AllLossless, LosslessWrapper,
                         ::testing::Values("none", "rle", "shuffle-rle",
                                           "deflate", "shuffle-deflate"));

TEST(LosslessRatio, ShuffleHelpsOnSmoothDoubles) {
  const Vector v = smooth_vector(20000);
  const auto plain = make_compressor("deflate");
  const auto shuf = make_compressor("shuffle-deflate");
  const double r_plain = compression_ratio(*plain, v);
  const double r_shuf = compression_ratio(*shuf, v);
  EXPECT_GT(r_plain, 1.0);
  EXPECT_GT(r_shuf, r_plain);  // byte planes expose exponent redundancy
}

TEST(LosslessRatio, GzipClassRatioIsLimitedOnSolverData) {
  // Paper §2: lossless ratios on floating-point scientific data are small
  // (up to ~2 in general, ~6 for the smoothest fields).
  Rng rng(5);
  Vector v(20000);
  for (auto& x : v) x = 1.0 + 0.1 * rng.uniform();  // noisy mantissas
  const auto comp = make_compressor("deflate");
  const double r = compression_ratio(*comp, v);
  EXPECT_GT(r, 0.9);
  EXPECT_LT(r, 3.0);
}

TEST(CompressorFactory, UnknownNameThrows) {
  EXPECT_THROW(make_compressor("not-a-compressor"), config_error);
}

}  // namespace
}  // namespace lck

/// Canonical Huffman coder tests: optimality properties, round trips over
/// skewed and uniform distributions, table serialization.

#include <gtest/gtest.h>

#include <map>
#include <numeric>

#include "common/rng.hpp"
#include "compress/huffman.hpp"

namespace lck {
namespace {

/// Kraft sum Σ 2^-len must equal 1 for a complete prefix code (≤ 1 always).
double kraft_sum(std::span<const std::uint8_t> lengths) {
  double s = 0.0;
  for (const auto l : lengths)
    if (l > 0) s += std::ldexp(1.0, -static_cast<int>(l));
  return s;
}

std::vector<std::uint32_t> roundtrip(std::span<const std::uint8_t> lengths,
                                     std::span<const std::uint32_t> symbols) {
  const HuffmanEncoder enc(lengths);
  BitWriter bw;
  for (const auto s : symbols) enc.encode(bw, s);
  const auto buf = bw.finish();
  const HuffmanDecoder dec(lengths);
  BitReader br(buf);
  std::vector<std::uint32_t> out;
  out.reserve(symbols.size());
  for (std::size_t i = 0; i < symbols.size(); ++i) out.push_back(dec.decode(br));
  return out;
}

TEST(Huffman, LengthsSatisfyKraft) {
  std::vector<std::uint64_t> freqs{10, 1, 1, 5, 30, 0, 2};
  const auto lengths = huffman_code_lengths(freqs);
  EXPECT_NEAR(kraft_sum(lengths), 1.0, 1e-12);
  EXPECT_EQ(lengths[5], 0);  // zero-frequency symbol gets no code
}

TEST(Huffman, MoreFrequentSymbolsGetShorterCodes) {
  std::vector<std::uint64_t> freqs{1000, 100, 10, 1};
  const auto lengths = huffman_code_lengths(freqs);
  EXPECT_LE(lengths[0], lengths[1]);
  EXPECT_LE(lengths[1], lengths[2]);
  EXPECT_LE(lengths[2], lengths[3]);
}

TEST(Huffman, SingleSymbolAlphabet) {
  std::vector<std::uint64_t> freqs{0, 0, 42, 0};
  const auto lengths = huffman_code_lengths(freqs);
  EXPECT_EQ(lengths[2], 1);
  std::vector<std::uint32_t> syms(100, 2);
  EXPECT_EQ(roundtrip(lengths, syms), syms);
}

TEST(Huffman, TwoSymbolRoundTrip) {
  std::vector<std::uint64_t> freqs{3, 7};
  const auto lengths = huffman_code_lengths(freqs);
  EXPECT_EQ(lengths[0], 1);
  EXPECT_EQ(lengths[1], 1);
  std::vector<std::uint32_t> syms{0, 1, 1, 0, 1, 1, 1, 0};
  EXPECT_EQ(roundtrip(lengths, syms), syms);
}

TEST(Huffman, ExtremeSkewRespectsMaxLength) {
  // Fibonacci-like frequencies force deep optimal trees; the builder must
  // flatten them to kHuffmanMaxBits.
  std::vector<std::uint64_t> freqs(40);
  std::uint64_t a = 1, b = 1;
  for (auto& f : freqs) {
    f = a;
    const auto next = a + b;
    a = b;
    b = next;
  }
  const auto lengths = huffman_code_lengths(freqs);
  for (const auto l : lengths) EXPECT_LE(l, kHuffmanMaxBits);
  EXPECT_LE(kraft_sum(lengths), 1.0 + 1e-12);
}

class HuffmanDistribution
    : public ::testing::TestWithParam<std::pair<std::size_t, double>> {};

TEST_P(HuffmanDistribution, RandomStreamRoundTrip) {
  const auto [alphabet, skew] = GetParam();
  Rng rng(99);
  // Zipf-ish frequencies with the given skew.
  std::vector<std::uint64_t> freqs(alphabet);
  for (std::size_t s = 0; s < alphabet; ++s)
    freqs[s] = static_cast<std::uint64_t>(
        1000.0 / std::pow(static_cast<double>(s + 1), skew)) + 1;

  // Sample a stream following those frequencies.
  std::vector<std::uint32_t> cumulative;
  std::uint64_t total = 0;
  for (const auto f : freqs) {
    total += f;
    cumulative.push_back(static_cast<std::uint32_t>(total));
  }
  std::vector<std::uint32_t> stream(5000);
  for (auto& s : stream) {
    const auto u = rng.uniform_index(total);
    s = static_cast<std::uint32_t>(
        std::lower_bound(cumulative.begin(), cumulative.end(), u + 1) -
        cumulative.begin());
  }

  const auto lengths = huffman_code_lengths(freqs);
  EXPECT_EQ(roundtrip(lengths, stream), stream);
}

INSTANTIATE_TEST_SUITE_P(
    AlphabetsAndSkews, HuffmanDistribution,
    ::testing::Values(std::pair<std::size_t, double>{2, 0.0},
                      std::pair<std::size_t, double>{16, 1.0},
                      std::pair<std::size_t, double>{256, 1.5},
                      std::pair<std::size_t, double>{1024, 0.5},
                      std::pair<std::size_t, double>{65536, 2.0}));

TEST(Huffman, CodeLengthSerializationRoundTrip) {
  std::vector<std::uint64_t> freqs(300, 0);
  freqs[0] = 100;
  freqs[7] = 50;
  freqs[255] = 10;
  freqs[299] = 1;
  const auto lengths = huffman_code_lengths(freqs);

  ByteWriter w;
  write_code_lengths(w, lengths);
  const auto buf = std::move(w).take();
  ByteReader r(buf);
  const auto restored = read_code_lengths(r, lengths.size());
  EXPECT_EQ(std::vector<std::uint8_t>(lengths.begin(), lengths.end()),
            restored);
}

TEST(Huffman, SerializationZeroRunsAreCompact) {
  // 65536-symbol alphabet with 3 used symbols must serialize to well under
  // a kilobyte (zero-run coding), not 64 KiB.
  std::vector<std::uint64_t> freqs(65536, 0);
  freqs[1] = 5;
  freqs[32768] = 5;
  freqs[65535] = 2;
  const auto lengths = huffman_code_lengths(freqs);
  ByteWriter w;
  write_code_lengths(w, lengths);
  EXPECT_LT(w.size(), 64u);
}

TEST(Huffman, SerializationAlphabetMismatchThrows) {
  std::vector<std::uint64_t> freqs{1, 2, 3};
  const auto lengths = huffman_code_lengths(freqs);
  ByteWriter w;
  write_code_lengths(w, lengths);
  const auto buf = std::move(w).take();
  ByteReader r(buf);
  EXPECT_THROW(read_code_lengths(r, 4), corrupt_stream_error);
}

TEST(Huffman, DecoderRejectsGarbage) {
  std::vector<std::uint64_t> freqs{5, 5, 5};
  const auto lengths = huffman_code_lengths(freqs);
  const HuffmanDecoder dec(lengths);
  // An all-ones stream longer than any valid code must eventually throw
  // (either invalid code or bit exhaustion).
  std::vector<byte_t> garbage(1, 0xff);
  BitReader br(garbage);
  EXPECT_THROW(
      {
        for (int i = 0; i < 100; ++i) (void)dec.decode(br);
      },
      corrupt_stream_error);
}

TEST(Huffman, CompressionBeatsFixedWidthOnSkewedData) {
  // Entropy check: heavily skewed stream should cost far fewer bits than
  // the fixed-width encoding.
  std::vector<std::uint64_t> freqs{9000, 500, 300, 150, 50};
  const auto lengths = huffman_code_lengths(freqs);
  const HuffmanEncoder enc(lengths);
  BitWriter bw;
  for (std::size_t s = 0; s < freqs.size(); ++s)
    for (std::uint64_t i = 0; i < freqs[s]; ++i)
      enc.encode(bw, static_cast<std::uint32_t>(s));
  const double fixed_bits = 10000.0 * 3;  // 5 symbols => 3 bits fixed
  EXPECT_LT(static_cast<double>(bw.bit_count()), 0.6 * fixed_bits);
}

}  // namespace
}  // namespace lck

/// Property tests for the parallel block-compression pipeline: round trips
/// across every factory compressor × error-bound mode × block-boundary
/// sizes, per-element error-bound verification, per-block CRC corruption
/// detection, framing errors, and the CheckpointManager integration.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <tuple>

#include "ckpt/checkpoint_manager.hpp"
#include "common/rng.hpp"
#include "compress/block_compressor.hpp"
#include "compress/compressor.hpp"

namespace lck {
namespace {

// Small block so even modest test vectors span several blocks.
constexpr std::size_t kBlock = 256;

Vector solver_like(std::size_t n, std::uint64_t seed = 1) {
  Rng rng(seed);
  Vector v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = std::sin(0.01 * static_cast<double>(i)) + 2.0 +
           1e-6 * rng.uniform(-1.0, 1.0);
  return v;
}

double range_of(const Vector& v) {
  if (v.empty()) return 0.0;
  const auto [lo, hi] = std::minmax_element(v.begin(), v.end());
  return *hi - *lo;
}

/// Per-element check that `out` respects `eb` relative to `in`. For the
/// value-range-relative mode the block pipeline uses per-block ranges,
/// which are never larger than the global range, so checking against the
/// global range is the correct (weakest) guarantee.
void expect_bound_holds(const Vector& in, const Vector& out, ErrorBound eb) {
  ASSERT_EQ(in.size(), out.size());
  const double vrr_tol = eb.value * range_of(in);
  for (std::size_t i = 0; i < in.size(); ++i) {
    const double err = std::fabs(in[i] - out[i]);
    switch (eb.mode) {
      case ErrorBound::Mode::kAbsolute:
        ASSERT_LE(err, eb.value + 1e-300) << "index " << i;
        break;
      case ErrorBound::Mode::kValueRangeRelative:
        ASSERT_LE(err, vrr_tol + 1e-300) << "index " << i;
        break;
      case ErrorBound::Mode::kPointwiseRelative:
        ASSERT_LE(err, eb.value * std::fabs(in[i]) + 1e-300) << "index " << i;
        break;
    }
  }
}

// ----- round trips: compressor × error-bound mode × size --------------------

using Case = std::tuple<const char*, ErrorBound::Mode>;

class BlockRoundTrip : public ::testing::TestWithParam<Case> {
 protected:
  [[nodiscard]] static ErrorBound bound(ErrorBound::Mode mode) {
    ErrorBound eb;
    eb.mode = mode;
    eb.value = mode == ErrorBound::Mode::kAbsolute ? 1e-4 : 1e-5;
    return eb;
  }
};

TEST_P(BlockRoundTrip, BoundarySizesRoundTripWithinBound) {
  const auto [name, mode] = GetParam();
  const ErrorBound eb = bound(mode);
  const auto inner = make_compressor(name, eb);
  const BlockCompressor blk(inner.get(), kBlock);

  // 0, 1, a single odd-size block, the exact block boundary, and ±1
  // around it plus a multi-block odd size.
  for (const std::size_t n :
       {std::size_t{0}, std::size_t{1}, std::size_t{97}, kBlock - 1, kBlock,
        kBlock + 1, 3 * kBlock - 1, 3 * kBlock, 3 * kBlock + 1,
        std::size_t{1000}}) {
    SCOPED_TRACE("n=" + std::to_string(n));
    const Vector in = solver_like(n, n + 1);
    const auto stream = blk.compress(in);
    Vector out(n, -999.0);
    blk.decompress(stream, out);
    if (inner->lossy()) {
      expect_bound_holds(in, out, eb);
    } else {
      // Lossless codecs must reproduce the input bit-identically, exactly
      // as the single-shot path does.
      EXPECT_EQ(in, out);
    }
  }
}

TEST_P(BlockRoundTrip, MatchesSingleShotDecompressedOutput) {
  const auto [name, mode] = GetParam();
  const ErrorBound eb = bound(mode);
  const auto inner = make_compressor(name, eb);
  const BlockCompressor blk(inner.get(), kBlock);
  const Vector in = solver_like(kBlock, 42);  // exactly one block

  // With a single block the pipeline payload is the inner stream itself,
  // so decompressed outputs must agree bit-for-bit even for lossy codecs.
  Vector via_block(in.size()), via_inner(in.size());
  blk.decompress(blk.compress(in), via_block);
  inner->decompress(inner->compress(in), via_inner);
  EXPECT_EQ(via_block, via_inner);
}

TEST_P(BlockRoundTrip, CrcDetectsCorruptionInEveryBlock) {
  const auto [name, mode] = GetParam();
  const auto inner = make_compressor(name, bound(mode));
  const BlockCompressor blk(inner.get(), kBlock);
  const Vector in = solver_like(4 * kBlock, 3);
  const auto stream = blk.compress(in);

  // The index table ends after the 24-byte header + 4 frames à 12 bytes;
  // everything beyond is block payload. Flip one bit in each quarter.
  const std::size_t payload_start = 24 + 4 * 12;
  ASSERT_LT(payload_start, stream.size());
  const std::size_t payload_len = stream.size() - payload_start;
  for (int q = 0; q < 4; ++q) {
    auto corrupted = stream;
    corrupted[payload_start + (payload_len * q) / 4] ^= 0x10;
    Vector out(in.size());
    EXPECT_THROW(blk.decompress(corrupted, out), corrupt_stream_error)
        << "corruption in quarter " << q << " undetected";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Codecs, BlockRoundTrip,
    ::testing::Combine(
        ::testing::Values("none", "rle", "shuffle-rle", "deflate",
                          "shuffle-deflate", "sz", "zfp", "trunc"),
        ::testing::Values(ErrorBound::Mode::kAbsolute,
                          ErrorBound::Mode::kValueRangeRelative,
                          ErrorBound::Mode::kPointwiseRelative)),
    [](const auto& info) {
      std::string name = std::get<0>(info.param);
      std::replace(name.begin(), name.end(), '-', '_');
      switch (std::get<1>(info.param)) {
        case ErrorBound::Mode::kAbsolute: return name + "_abs";
        case ErrorBound::Mode::kValueRangeRelative: return name + "_vrr";
        case ErrorBound::Mode::kPointwiseRelative: return name + "_pwr";
      }
      return name;
    });

// ----- framing and interface ------------------------------------------------

TEST(BlockCompressor, NameAndLossyDelegateToInner) {
  const BlockCompressor lossless(make_compressor("deflate"));
  EXPECT_EQ(lossless.name(), "block+deflate");
  EXPECT_FALSE(lossless.lossy());
  const BlockCompressor lossy(make_compressor("sz"));
  EXPECT_EQ(lossy.name(), "block+sz");
  EXPECT_TRUE(lossy.lossy());
}

TEST(BlockCompressor, FactorySupportsBlockPrefix) {
  const auto c = make_compressor("block+sz", ErrorBound::pointwise_rel(1e-5));
  EXPECT_EQ(c->name(), "block+sz");
  const Vector in = solver_like(1000, 5);
  Vector out(in.size());
  c->decompress(c->compress(in), out);
  expect_bound_holds(in, out, ErrorBound::pointwise_rel(1e-5));
}

TEST(BlockCompressor, RejectsBadConstruction) {
  EXPECT_THROW(BlockCompressor(static_cast<const Compressor*>(nullptr)),
               config_error);
  NoneCompressor none;
  EXPECT_THROW(BlockCompressor(&none, 0), config_error);
}

TEST(BlockCompressor, RejectsMalformedStreams) {
  NoneCompressor none;
  const BlockCompressor blk(&none, kBlock);
  const Vector in = solver_like(2 * kBlock, 7);
  const auto stream = blk.compress(in);
  Vector out(in.size());

  auto bad_magic = stream;
  bad_magic[0] ^= 0xff;
  EXPECT_THROW(blk.decompress(bad_magic, out), corrupt_stream_error);

  Vector wrong_size(in.size() + 1);
  EXPECT_THROW(blk.decompress(stream, wrong_size), corrupt_stream_error);

  auto truncated = stream;
  truncated.resize(truncated.size() - 1);
  EXPECT_THROW(blk.decompress(truncated, out), corrupt_stream_error);

  auto trailing = stream;
  trailing.push_back(0);
  EXPECT_THROW(blk.decompress(trailing, out), corrupt_stream_error);
}

TEST(BlockCompressor, HugeFrameSizeRejectedWithoutOverflow) {
  // A corrupted frame size near 2^63 must surface as corrupt_stream_error,
  // not wrap the payload-offset arithmetic into an out-of-bounds read.
  NoneCompressor none;
  const BlockCompressor blk(&none, kBlock);
  const Vector in = solver_like(2 * kBlock, 9);
  auto stream = blk.compress(in);
  // First frame's u64 size field starts right after the 24-byte header.
  const std::uint64_t huge = (std::uint64_t{1} << 63) + 6;
  std::memcpy(stream.data() + 24, &huge, sizeof(huge));
  Vector out(in.size());
  EXPECT_THROW(blk.decompress(stream, out), corrupt_stream_error);

  // And a corrupted block size near 2^64 must not wrap the expected block
  // count to 0 and decompress "successfully" without writing anything: a
  // header-only stream claiming nblocks == 0 for a non-empty vector.
  auto huge_be = blk.compress(in);
  huge_be.resize(24);
  const std::uint64_t be = ~std::uint64_t{0} - 500;
  std::memcpy(huge_be.data() + 12, &be, sizeof(be));  // block_elems field
  std::uint32_t zero_blocks = 0;
  std::memcpy(huge_be.data() + 20, &zero_blocks, sizeof(zero_blocks));
  EXPECT_THROW(blk.decompress(huge_be, out), corrupt_stream_error);
}

TEST(BlockCompressor, EmptyInputProducesHeaderOnlyStream) {
  NoneCompressor none;
  const BlockCompressor blk(&none, kBlock);
  const auto stream = blk.compress(Vector{});
  EXPECT_EQ(stream.size(), 24u);  // magic + total + block_elems + count
  Vector out;
  blk.decompress(stream, out);  // must not throw
}

// ----- CheckpointManager integration ---------------------------------------

TEST(BlockCompressor, ManagerUsesBlockPipelineForLargeVectors) {
  NoneCompressor none;
  CheckpointManager mgr(std::make_unique<MemoryStore>(), &none);
  mgr.set_block_pipeline(kBlock);
  Vector big = solver_like(10 * kBlock, 11);
  Vector small = solver_like(kBlock / 2, 12);
  mgr.protect(0, "big", &big);
  mgr.protect(1, "small", &small);
  const Vector big_saved = big, small_saved = small;
  mgr.checkpoint();
  big.assign(big.size(), 0.0);
  small.assign(small.size(), 0.0);
  mgr.recover();
  EXPECT_EQ(big, big_saved);
  EXPECT_EQ(small, small_saved);
}

TEST(BlockCompressor, ManagerRecoversBlockCheckpointWithPipelineDisabled) {
  // The stored compressor name, not the current configuration, decides the
  // layout on recovery: a checkpoint written with the pipeline enabled must
  // recover after the pipeline is turned off (and vice versa).
  NoneCompressor none;
  CheckpointManager mgr(std::make_unique<MemoryStore>(), &none);
  mgr.set_block_pipeline(kBlock);
  Vector x = solver_like(5 * kBlock, 13);
  mgr.protect(0, "x", &x);
  const Vector saved = x;
  mgr.checkpoint();

  mgr.set_block_pipeline(0);  // disable
  x.assign(x.size(), -1.0);
  mgr.recover();
  EXPECT_EQ(x, saved);

  mgr.checkpoint();  // single-shot layout this time
  mgr.set_block_pipeline(kBlock);
  x.assign(x.size(), -1.0);
  mgr.recover();
  EXPECT_EQ(x, saved);
}

TEST(BlockCompressor, ManagerDoesNotDoubleWrapBlockCompressors) {
  // A registered "block+sz" must not be nested inside a second pipeline
  // layer when the manager's automatic threshold also triggers.
  const auto blk_sz = make_compressor("block+sz");
  auto store = std::make_unique<MemoryStore>();
  auto* store_raw = store.get();
  CheckpointManager mgr(std::move(store), blk_sz.get());
  mgr.set_block_pipeline(kBlock);
  Vector x = solver_like(4 * kBlock, 19);
  mgr.protect(0, "x", &x);
  mgr.checkpoint();
  const auto raw = store_raw->read(0);
  const std::string nested = "block+block+sz";
  EXPECT_EQ(std::search(raw.begin(), raw.end(), nested.begin(), nested.end()),
            raw.end())
      << "checkpoint stream contains a nested block layer";
  x.assign(x.size(), 0.0);
  mgr.recover();  // and the single-layer stream must still recover
}

TEST(BlockCompressor, ManagerBlockCheckpointKeepsLossyBound) {
  const ErrorBound eb = ErrorBound::pointwise_rel(1e-4);
  const auto sz = make_compressor("sz", eb);
  CheckpointManager mgr(std::make_unique<MemoryStore>(), sz.get());
  mgr.set_block_pipeline(kBlock);
  Vector x = solver_like(8 * kBlock, 17);
  mgr.protect(0, "x", &x);
  const Vector original = x;
  mgr.checkpoint();
  x.assign(x.size(), 0.0);
  mgr.recover();
  expect_bound_holds(original, x, eb);
}

}  // namespace
}  // namespace lck

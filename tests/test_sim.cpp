/// Simulation-layer tests: cluster I/O model, failure injector statistics.

#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.hpp"
#include "sim/cluster_model.hpp"
#include "sim/failure.hpp"

namespace lck {
namespace {

TEST(ClusterModel, CalibrationMatchesPaperCheckpointTime) {
  // Paper §4.1: a 78.8 GB traditional checkpoint takes ~120 s on 2,048
  // cores. The default model must land in that neighbourhood.
  const ClusterModel m;
  const double t = m.write_seconds(78.8e9);
  EXPECT_GT(t, 100.0);
  EXPECT_LT(t, 140.0);
}

TEST(ClusterModel, CompressionIsNearlyFreeAtScale) {
  // Paper §5.3: compressing 78.8 GB takes ~0.5 s, decompressing ~0.2 s.
  const ClusterModel m;
  EXPECT_NEAR(m.compress_seconds(78.8e9), 0.5, 0.2);
  EXPECT_NEAR(m.decompress_seconds(78.8e9), 0.25, 0.15);
}

TEST(ClusterModel, TimesGrowWithRanksAtFixedPerRankData) {
  // Weak scaling: per-rank 38.4 MB, PFS bandwidth shared ⇒ time grows.
  const ClusterModel base;
  double prev = 0.0;
  for (const int ranks : {256, 512, 1024, 2048}) {
    const ClusterModel m = base.with_ranks(ranks);
    const double bytes = 38.4e6 * ranks;
    const double t = m.write_seconds(bytes);
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST(ClusterModel, SmallCheckpointsStillPayPerRankOverhead) {
  const ClusterModel m;  // 2,048 ranks
  // A 2.4 GB lossy checkpoint: dominated by per-rank overhead, in the
  // paper's ~20–30 s range, far above the pure-bandwidth time.
  const double t = m.write_seconds(2.4e9);
  EXPECT_GT(t, 15.0);
  EXPECT_LT(t, 40.0);
}

TEST(ClusterModel, LosslessCompressionIsSlowerThanSz) {
  const ClusterModel m;
  EXPECT_GT(m.lossless_compress_seconds(78.8e9), m.compress_seconds(78.8e9));
}

TEST(FailureInjector, DisabledNeverFires) {
  FailureInjector inj(3600.0, 1, false);
  EXPECT_FALSE(inj.interrupts(0.0, 1e12));
}

TEST(FailureInjector, MeanInterArrivalMatchesMtti) {
  const double mtti = 3600.0;
  FailureInjector inj(mtti, 42);
  RunningStats st;
  double now = 0.0;
  for (int i = 0; i < 100000; ++i) {
    const double dt = inj.next_failure_time() - now;
    st.add(dt);
    now = inj.next_failure_time();
    inj.arm(now);
  }
  EXPECT_NEAR(st.mean(), mtti, mtti * 0.02);
}

TEST(FailureInjector, InterruptsSemantics) {
  FailureInjector inj(100.0, 7);
  const double f = inj.next_failure_time();
  EXPECT_TRUE(inj.interrupts(f - 1.0, 2.0));
  EXPECT_FALSE(inj.interrupts(f + 0.001, 10.0));  // already past
  EXPECT_FALSE(inj.interrupts(f - 5.0, 4.0));     // ends before failure
}

TEST(FailureInjector, DeliversFailureArmedExactlyAtWindowStart) {
  // Degenerate draw: arm(now) = now + Exp(MTTI) rounds to exactly `now` when
  // `now` is large and the draw is tiny. The window convention is half-open
  // [start, start + duration), so such a failure must be delivered in the
  // window that starts at it — the old strict `next_ > start` test dropped
  // it forever (every later window starts at or after next_).
  FailureInjector inj(100.0, 7);
  // 2^46 s: a tiny draw (1e-3) rounds away (ulp ~0.016) but the 5 s window
  // is still representable.
  const double now = 70368744177664.0;
  EXPECT_EQ(now + 1e-3, now) << "test premise: the draw must round down";
  EXPECT_GT(now + 5.0, now) << "test premise: the window must not";
  inj.set_next_failure(now, FailureSeverity::kNode);
  EXPECT_TRUE(inj.interrupts(now, 5.0));
  EXPECT_EQ(inj.severity(), FailureSeverity::kNode);
  // And exactly once: the preceding window must NOT also claim it.
  EXPECT_FALSE(inj.interrupts(now - 5.0, 5.0));
}

TEST(FailureInjector, WindowEndIsExclusive) {
  // Half-open windows tile the timeline: a failure at exactly start+duration
  // belongs to the *next* window, never to both.
  FailureInjector inj(100.0, 11);
  inj.set_next_failure(40.0);
  EXPECT_FALSE(inj.interrupts(30.0, 10.0));  // [30, 40) — not yet
  EXPECT_TRUE(inj.interrupts(40.0, 10.0));   // [40, 50) — delivered here
}

TEST(FailureInjector, DeterministicAcrossSeeds) {
  FailureInjector a(3600.0, 5), b(3600.0, 5), c(3600.0, 6);
  EXPECT_DOUBLE_EQ(a.next_failure_time(), b.next_failure_time());
  EXPECT_NE(a.next_failure_time(), c.next_failure_time());
}

TEST(FailureInjector, RejectsNonPositiveMtti) {
  EXPECT_THROW(FailureInjector(0.0, 1), config_error);
  EXPECT_THROW(FailureInjector(-1.0, 1), config_error);
}

// ----- Weibull arrival model ------------------------------------------------

TEST(FailureInjectorWeibull, ShapeOneIsBitIdenticalToExponential) {
  // Weibull(1, λ) is Exp(λ) and the inverse-CDF transform consumes the
  // same uniform draw, so the whole arrival sequence must match bit-exactly
  // — the contract that keeps default-config reruns stable.
  const double mtti = 1800.0;
  FailureInjector exp_inj(mtti, 42);
  FailureInjector wb_inj(mtti, 42);
  wb_inj.set_weibull(1.0, mtti);
  // set_weibull re-arms (one extra uniform draw); re-arm the exponential
  // injector too so both sequences compare from the same stream position.
  exp_inj.arm(0.0);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_DOUBLE_EQ(exp_inj.next_failure_time(), wb_inj.next_failure_time());
    const double now = exp_inj.next_failure_time();
    exp_inj.arm(now);
    wb_inj.arm(now);
  }
}

TEST(FailureInjectorWeibull, MeanMatchesScaleTimesGamma) {
  // E[Weibull(k, λ)] = λ·Γ(1 + 1/k).
  const double shape = 0.7;
  const double scale = 1000.0;
  FailureInjector inj(3600.0, 7);
  inj.set_weibull(shape, scale);
  RunningStats st;
  double now = 0.0;
  for (int i = 0; i < 200000; ++i) {
    st.add(inj.next_failure_time() - now);
    now = inj.next_failure_time();
    inj.arm(now);
  }
  const double expected = scale * std::tgamma(1.0 + 1.0 / shape);
  EXPECT_NEAR(st.mean(), expected, expected * 0.03);
}

TEST(FailureInjectorWeibull, ShapeBelowOneIsBurstierThanExponential) {
  // k < 1 front-loads the hazard: the coefficient of variation exceeds 1
  // (exponential's CV), i.e. many short gaps plus a heavy tail of long
  // ones — the burstiness real failure logs show.
  FailureInjector inj(3600.0, 13);
  inj.set_weibull(0.5, 1000.0);
  RunningStats st;
  double now = 0.0;
  for (int i = 0; i < 100000; ++i) {
    st.add(inj.next_failure_time() - now);
    now = inj.next_failure_time();
    inj.arm(now);
  }
  const double cv = st.stddev() / st.mean();
  EXPECT_GT(cv, 1.5);  // theoretical CV at k = 0.5 is sqrt(5) ≈ 2.24
  EXPECT_LT(cv, 3.0);
}

TEST(FailureInjectorWeibull, MedianMatchesClosedForm) {
  // median = λ·(ln 2)^{1/k}.
  const double shape = 1.5;
  const double scale = 500.0;
  FailureInjector inj(3600.0, 99);
  inj.set_weibull(shape, scale);
  Samples samples;
  double now = 0.0;
  for (int i = 0; i < 100000; ++i) {
    samples.add(inj.next_failure_time() - now);
    now = inj.next_failure_time();
    inj.arm(now);
  }
  const double expected = scale * std::pow(std::log(2.0), 1.0 / shape);
  EXPECT_NEAR(samples.median(), expected, expected * 0.03);
}

TEST(FailureInjectorWeibull, RejectsNonPositiveParameters) {
  FailureInjector inj(3600.0, 1);
  EXPECT_THROW(inj.set_weibull(0.0, 100.0), config_error);
  EXPECT_THROW(inj.set_weibull(-1.0, 100.0), config_error);
  EXPECT_THROW(inj.set_weibull(0.7, 0.0), config_error);
  EXPECT_FALSE(inj.weibull_enabled());
  inj.set_weibull(0.7, 100.0);
  EXPECT_TRUE(inj.weibull_enabled());
}

}  // namespace
}  // namespace lck

/// Kernel-performance layer tests (PR 7): fused BLAS-1 kernels vs their
/// naive primitive sequences (bit-exact, across thread counts and sizes
/// straddling the 16Ki reduction-block boundary), blocked SpMV vs the plain
/// row loop, solver trajectories pinned bitwise against replicas of the
/// unfused iteration bodies (including the ≥40% full-vector pass reduction),
/// and compression streams pinned byte-identical to pre-change goldens.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "common/bit_io.hpp"
#include "common/crc32.hpp"
#include "common/rng.hpp"
#include "compress/compressor.hpp"
#include "compress/huffman.hpp"
#include "solvers/bicgstab.hpp"
#include "solvers/cg.hpp"
#include "solvers/minres.hpp"
#include "solvers/preconditioner.hpp"
#include "sparse/gen/poisson3d.hpp"
#include "sparse/gen/random_spd.hpp"
#include "sparse/vector_ops.hpp"

#if defined(_OPENMP)
#include <omp.h>
#endif

namespace lck {
namespace {

Vector random_vector(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Vector v(n);
  for (auto& x : v) x = rng.uniform() * 2.0 - 1.0;
  return v;
}

void expect_bitwise_eq(std::span<const double> a, std::span<const double> b,
                       const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  if (!a.empty())
    EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(double)), 0)
        << what;
}

/// Sizes straddling the kReductionBlockElems = 16384 serial/blocked boundary.
const std::size_t kSizes[] = {1, 5, 16383, 16384, 16385, 50000, 100000};

/// Run `body` once per thread count (no-op loop body repetition without
/// OpenMP), so fused-vs-naive equality is checked at 1/2/4/8 threads.
template <typename F>
void for_each_thread_count(F&& body) {
#if defined(_OPENMP)
  const int prev = omp_get_max_threads();
  for (const int threads : {1, 2, 4, 8}) {
    omp_set_num_threads(threads);
    body(threads);
  }
  omp_set_num_threads(prev);
#else
  body(1);
#endif
}

// ---------------------------------------------------------------------------
// Fused kernels vs naive primitive sequences.
// ---------------------------------------------------------------------------

TEST(FusedKernels, DotAxpyMatchesPrimitives) {
  for (const std::size_t n : kSizes) {
    const Vector p = random_vector(n, 1);
    const Vector q = random_vector(n, 2);
    const double rho = 0.75;
    for_each_thread_count([&](int threads) {
      Vector x_f = random_vector(n, 3), r_f = random_vector(n, 4);
      Vector x_n = x_f, r_n = r_f;
      const DotAxpyResult fu = dot_axpy(p, q, rho, x_f, r_f);
      const double pq = dot(p, q);
      EXPECT_EQ(fu.pq, pq) << n << "/" << threads;
      ASSERT_TRUE(fu.updated);
      const double alpha = rho / pq;
      EXPECT_EQ(fu.alpha, alpha);
      axpy(alpha, p, x_n);
      axpy(-alpha, q, r_n);
      expect_bitwise_eq(x_f, x_n, "dot_axpy x");
      expect_bitwise_eq(r_f, r_n, "dot_axpy r");
      EXPECT_EQ(std::sqrt(fu.rr), norm2(r_n)) << n << "/" << threads;
    });
  }
}

TEST(FusedKernels, DotAxpyBreakdownLeavesVectorsUntouched) {
  const Vector p(100, 0.0);
  const Vector q = random_vector(100, 5);
  Vector x = random_vector(100, 6), r = random_vector(100, 7);
  const Vector x0 = x, r0 = r;
  const DotAxpyResult fu = dot_axpy(p, q, 1.0, x, r);
  EXPECT_FALSE(fu.updated);
  EXPECT_EQ(fu.pq, 0.0);
  expect_bitwise_eq(x, x0, "breakdown x");
  expect_bitwise_eq(r, r0, "breakdown r");
}

TEST(FusedKernels, AxpyNorm2MatchesPrimitives) {
  for (const std::size_t n : kSizes) {
    const Vector x = random_vector(n, 8);
    for_each_thread_count([&](int threads) {
      Vector y_f = random_vector(n, 9);
      Vector y_n = y_f;
      const double norm_f = axpy_norm2(-0.375, x, y_f);
      axpy(-0.375, x, y_n);
      expect_bitwise_eq(y_f, y_n, "axpy_norm2 y");
      EXPECT_EQ(norm_f, norm2(y_n)) << n << "/" << threads;
    });
  }
}

TEST(FusedKernels, WaxpyDotAndNorm2MatchPrimitives) {
  for (const std::size_t n : kSizes) {
    const Vector x = random_vector(n, 10);
    const Vector y = random_vector(n, 11);
    const Vector z = random_vector(n, 12);
    for_each_thread_count([&](int threads) {
      Vector w_f(n, 0.0), w_n(n, 0.0);
      const double d_f = waxpy_dot(x, 0.625, y, w_f, z);
      waxpy(x, 0.625, y, w_n);
      expect_bitwise_eq(w_f, w_n, "waxpy_dot w");
      EXPECT_EQ(d_f, dot(w_n, z)) << n << "/" << threads;

      Vector v_f(n, 0.0), v_n(n, 0.0);
      const double norm_f = waxpy_norm2(x, -1.25, y, v_f);
      waxpy(x, -1.25, y, v_n);
      expect_bitwise_eq(v_f, v_n, "waxpy_norm2 w");
      EXPECT_EQ(norm_f, norm2(v_n)) << n << "/" << threads;
    });
  }
}

TEST(FusedKernels, Dot2MatchesTwoDots) {
  for (const std::size_t n : kSizes) {
    const Vector x = random_vector(n, 13);
    const Vector y = random_vector(n, 14);
    const Vector z = random_vector(n, 15);
    for_each_thread_count([&](int threads) {
      const auto [xy, xz] = dot2(x, y, z);
      EXPECT_EQ(xy, dot(x, y)) << n << "/" << threads;
      EXPECT_EQ(xz, dot(x, z)) << n << "/" << threads;
    });
  }
}

TEST(FusedKernels, Axpy2FamilyMatchesPrimitives) {
  for (const std::size_t n : kSizes) {
    const Vector p = random_vector(n, 16);
    const Vector q = random_vector(n, 17);
    for_each_thread_count([&](int threads) {
      Vector z_f = random_vector(n, 18);
      Vector z_n = z_f;
      axpy2(0.5, p, -0.25, q, z_f);
      axpy(0.5, p, z_n);
      axpy(-0.25, q, z_n);
      expect_bitwise_eq(z_f, z_n, "axpy2 z");

      Vector w_f = random_vector(n, 19);
      Vector w_n = w_f;
      const double norm_f = axpy2_norm2(-0.75, p, 1.5, q, w_f);
      axpy(-0.75, p, w_n);
      axpy(1.5, q, w_n);
      expect_bitwise_eq(w_f, w_n, "axpy2_norm2 z");
      EXPECT_EQ(norm_f, norm2(w_n)) << n << "/" << threads;
    });
  }
}

TEST(FusedKernels, Waxpy2ScaleMatchesPrimitives) {
  for (const std::size_t n : kSizes) {
    const Vector v = random_vector(n, 20);
    const Vector p = random_vector(n, 21);
    const Vector q = random_vector(n, 22);
    const double rho1 = 3.0;
    for_each_thread_count([&](int) {
      Vector d_f(n, 0.0), d_n(n, 0.0);
      waxpy2_scale(v, -0.5, p, -0.125, q, 1.0 / rho1, d_f);
      copy(v, d_n);
      axpy(-0.5, p, d_n);
      axpy(-0.125, q, d_n);
      scale(d_n, 1.0 / rho1);
      expect_bitwise_eq(d_f, d_n, "waxpy2_scale d");
    });
  }
}

TEST(FusedKernels, DiagAxpyAndAxpyXpbyMatchPrimitives) {
  for (const std::size_t n : kSizes) {
    const Vector d = random_vector(n, 23);
    const Vector r = random_vector(n, 24);
    const Vector v = random_vector(n, 25);
    for_each_thread_count([&](int) {
      Vector x_f = random_vector(n, 26);
      Vector x_n = x_f;
      diag_axpy(d, r, x_f);
      for (std::size_t i = 0; i < n; ++i) x_n[i] += d[i] * r[i];
      expect_bitwise_eq(x_f, x_n, "diag_axpy x");

      Vector p_f = random_vector(n, 27);
      Vector p_n = p_f;
      axpy_xpby(-0.5, v, r, 2.0, p_f);
      axpy(-0.5, v, p_n);
      xpby(r, 2.0, p_n);
      expect_bitwise_eq(p_f, p_n, "axpy_xpby p");
    });
  }
}

// ---------------------------------------------------------------------------
// Blocked SpMV vs the plain row loop.
// ---------------------------------------------------------------------------

CsrMatrix matrix_with_empty_rows() {
  // 2000 rows; only every 7th row has entries (three per row, one of which
  // exercises the unroll remainder path).
  CsrBuilder b(2000, 2000);
  for (index_t r = 0; r < 2000; ++r) {
    if (r % 7 == 0) {
      if (r > 0) b.add(r - 1, -1.0);
      b.add(r, 4.0);
      if (r + 1 < 2000) b.add(r + 1, -1.0);
    }
    b.finish_row();
  }
  return std::move(b).build();
}

CsrMatrix single_long_row(index_t nnz) {
  CsrBuilder b(1, nnz);
  Rng rng(31);
  for (index_t c = 0; c < nnz; ++c) b.add(c, rng.uniform() * 2.0 - 1.0);
  b.finish_row();
  return std::move(b).build();
}

void expect_blocked_matches_rowwise(const CsrMatrix& a, std::uint64_t seed) {
  const Vector x = random_vector(static_cast<std::size_t>(a.cols()), seed);
  const Vector b = random_vector(static_cast<std::size_t>(a.rows()), seed + 1);
  for_each_thread_count([&](int threads) {
    Vector y_blk(static_cast<std::size_t>(a.rows()), 0.0);
    Vector y_row(static_cast<std::size_t>(a.rows()), 0.0);
    a.multiply(x, y_blk);
    a.multiply_rowwise(x, y_row);
    expect_bitwise_eq(y_blk, y_row, "multiply");

    Vector r_blk(static_cast<std::size_t>(a.rows()), 0.0);
    Vector r_row(static_cast<std::size_t>(a.rows()), 0.0);
    a.residual(b, x, r_blk);
    a.residual_rowwise(b, x, r_row);
    expect_bitwise_eq(r_blk, r_row, "residual");
    EXPECT_GT(threads, 0);
  });
}

TEST(BlockedSpmv, MatchesRowwiseOnPoisson) {
  const CsrMatrix a = poisson3d_spd(12);  // 1728 rows, ~11k nnz → >1 block
  EXPECT_GT(a.spmv_blocks(), 1);
  expect_blocked_matches_rowwise(a, 40);
}

TEST(BlockedSpmv, MatchesRowwiseOnRandom) {
  RandomSpdOptions opt;
  opt.n = 5000;
  opt.off_per_row = 6;
  expect_blocked_matches_rowwise(random_dominant(opt), 41);
}

TEST(BlockedSpmv, MatchesRowwiseOnEmptyRows) {
  const CsrMatrix a = matrix_with_empty_rows();
  // Short/empty rows: the row cap (not the nnz target) closes blocks.
  EXPECT_EQ(a.spmv_blocks(), (a.rows() + CsrMatrix::kSpmvBlockMaxRows - 1) /
                                 CsrMatrix::kSpmvBlockMaxRows);
  expect_blocked_matches_rowwise(a, 42);
}

TEST(BlockedSpmv, MatchesRowwiseOnSingleLongRow) {
  const CsrMatrix a = single_long_row(10001);  // row bigger than one block
  EXPECT_EQ(a.spmv_blocks(), 1);  // a block always takes at least one row
  expect_blocked_matches_rowwise(a, 43);
}

TEST(BlockedSpmv, EmptyMatrix) {
  const CsrMatrix a;
  EXPECT_EQ(a.spmv_blocks(), 0);
  Vector none;
  a.multiply(none, none);  // must not crash
}

// ---------------------------------------------------------------------------
// Satellite: at() binary search + trusted construction paths.
// ---------------------------------------------------------------------------

TEST(CsrFastPaths, AtMatchesLinearScan) {
  RandomSpdOptions opt;
  opt.n = 300;
  const CsrMatrix a = random_dominant(opt);
  const auto row_ptr = a.row_ptr();
  const auto col_idx = a.col_idx();
  const auto values = a.values();
  for (index_t r = 0; r < a.rows(); ++r) {
    for (index_t c = 0; c < a.cols(); ++c) {
      double ref = 0.0;
      for (index_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k)
        if (col_idx[k] == c) ref = values[k];
      EXPECT_EQ(a.at(r, c), ref) << r << "," << c;
    }
  }
}

TEST(CsrFastPaths, TrustedTransposeRoundTrips) {
  RandomSpdOptions opt;
  opt.n = 200;
  opt.symmetric = false;
  const CsrMatrix a = random_dominant(opt);
  const CsrMatrix att = a.transpose().transpose();
  ASSERT_EQ(att.nnz(), a.nnz());
  att.validate();  // the trusted path must still produce a valid layout
  expect_bitwise_eq(att.values(), a.values(), "transpose values");
  EXPECT_TRUE(std::equal(att.row_ptr().begin(), att.row_ptr().end(),
                         a.row_ptr().begin()));
  EXPECT_TRUE(std::equal(att.col_idx().begin(), att.col_idx().end(),
                         a.col_idx().begin()));
}

TEST(CsrFastPaths, ValidatingConstructorStillRejectsBadInput) {
  // build_validated() must reject what validate() rejects.
  EXPECT_THROW(CsrMatrix(2, 2, {0, 1, 2}, {0, 5}, {1.0, 2.0}), config_error);
}

// ---------------------------------------------------------------------------
// Solver trajectories: fused bodies bitwise-equal to the unfused originals,
// with ≥ 40% fewer full-vector passes per iteration for CG and BiCGStab.
// ---------------------------------------------------------------------------

struct NaiveCg {
  // Replica of the pre-fusion CgSolver iteration body, on the primitive
  // kernels, with an explicit preconditioner (identity = copy).
  const CsrMatrix& a;
  const Preconditioner* m;
  Vector x, r, z, p, q;
  double rho = 0.0, res_norm = 0.0;

  NaiveCg(const CsrMatrix& a_in, const Vector& b, const Preconditioner* m_in)
      : a(a_in),
        m(m_in),
        x(b.size(), 0.0),
        r(b.size(), 0.0),
        z(b.size(), 0.0),
        p(b.size(), 0.0),
        q(b.size(), 0.0) {
    a.residual(b, x, r);
    m->apply(r, z);
    copy(z, p);
    rho = dot(r, z);
    res_norm = norm2(r);
  }

  void step() {
    a.multiply(p, q);
    const double pq = dot(p, q);
    ASSERT_NE(pq, 0.0);
    const double alpha = rho / pq;
    axpy(alpha, p, x);
    axpy(-alpha, q, r);
    m->apply(r, z);
    const double rho_next = dot(r, z);
    const double beta = rho_next / rho;
    rho = rho_next;
    xpby(z, beta, p);
    res_norm = norm2(r);
  }
};

TEST(SolverTrajectories, CgIdentityBitwiseAndPassReduction) {
  const CsrMatrix a = poisson3d_spd(7);
  const Vector b = smooth_rhs(a);
  SolveOptions opts;
  opts.rtol = 1e-30;  // never converge inside the window
  CgSolver solver(a, b, nullptr, opts);
  IdentityPreconditioner ident;
  NaiveCg naive(a, b, &ident);

  std::uint64_t fused_passes = 0, naive_passes = 0;
  for (int it = 0; it < 40; ++it) {
    reset_vector_pass_count();
    solver.step();
    fused_passes += vector_pass_count();
    reset_vector_pass_count();
    naive.step();
    naive_passes += vector_pass_count();
    EXPECT_EQ(solver.residual_norm(), naive.res_norm) << "iter " << it;
    expect_bitwise_eq(solver.solution(), naive.x, "cg x");
  }
  // Acceptance criterion: ≥ 40% fewer full-vector passes per iteration.
  EXPECT_LE(static_cast<double>(fused_passes),
            0.6 * static_cast<double>(naive_passes))
      << fused_passes << " vs " << naive_passes;
}

TEST(SolverTrajectories, CgJacobiBitwise) {
  const CsrMatrix a = poisson3d_spd(7);
  const Vector b = smooth_rhs(a);
  const JacobiPreconditioner jacobi(a);
  SolveOptions opts;
  opts.rtol = 1e-30;
  CgSolver solver(a, b, &jacobi, opts);
  NaiveCg naive(a, b, &jacobi);
  for (int it = 0; it < 40; ++it) {
    solver.step();
    naive.step();
    EXPECT_EQ(solver.residual_norm(), naive.res_norm) << "iter " << it;
    expect_bitwise_eq(solver.solution(), naive.x, "cg-jacobi x");
  }
}

struct NaiveBicgstab {
  // Replica of the pre-fusion BicgstabSolver iteration body.
  const CsrMatrix& a;
  const Preconditioner* m;
  double tol;
  Vector x, r, rhat, p, v, s, t, ph, sh;
  double rho = 1.0, alpha = 1.0, omega = 1.0, res_norm = 0.0;

  NaiveBicgstab(const CsrMatrix& a_in, const Vector& b,
                const Preconditioner* m_in, double tol_in)
      : a(a_in),
        m(m_in),
        tol(tol_in),
        x(b.size(), 0.0),
        r(b.size(), 0.0),
        rhat(b.size(), 0.0),
        p(b.size(), 0.0),
        v(b.size(), 0.0),
        s(b.size(), 0.0),
        t(b.size(), 0.0),
        ph(b.size(), 0.0),
        sh(b.size(), 0.0) {
    a.residual(b, x, r);
    copy(r, rhat);
    res_norm = norm2(r);
  }

  void step() {
    const double rho_next = dot(rhat, r);
    ASSERT_NE(rho_next, 0.0);
    const double beta = (rho_next / rho) * (alpha / omega);
    rho = rho_next;
    axpy(-omega, v, p);
    xpby(r, beta, p);
    m->apply(p, ph);
    a.multiply(ph, v);
    const double rhat_v = dot(rhat, v);
    ASSERT_NE(rhat_v, 0.0);
    alpha = rho / rhat_v;
    waxpy(r, -alpha, v, s);
    const double s_norm = norm2(s);
    if (s_norm <= tol) {
      axpy(alpha, ph, x);
      copy(s, r);
      res_norm = s_norm;
      return;
    }
    m->apply(s, sh);
    a.multiply(sh, t);
    const double tt = dot(t, t);
    omega = tt != 0.0 ? dot(t, s) / tt : 0.0;
    axpy(alpha, ph, x);
    axpy(omega, sh, x);
    waxpy(s, -omega, t, r);
    res_norm = norm2(r);
  }
};

TEST(SolverTrajectories, BicgstabIdentityBitwiseAndPassReduction) {
  const CsrMatrix a = poisson3d_spd(7);
  const Vector b = smooth_rhs(a);
  SolveOptions opts;
  opts.rtol = 1e-30;
  BicgstabSolver solver(a, b, nullptr, opts);
  IdentityPreconditioner ident;
  NaiveBicgstab naive(a, b, &ident, 0.0);

  std::uint64_t fused_passes = 0, naive_passes = 0;
  for (int it = 0; it < 30; ++it) {
    reset_vector_pass_count();
    solver.step();
    fused_passes += vector_pass_count();
    reset_vector_pass_count();
    naive.step();
    naive_passes += vector_pass_count();
    EXPECT_EQ(solver.residual_norm(), naive.res_norm) << "iter " << it;
    expect_bitwise_eq(solver.solution(), naive.x, "bicgstab x");
  }
  EXPECT_LE(static_cast<double>(fused_passes),
            0.6 * static_cast<double>(naive_passes))
      << fused_passes << " vs " << naive_passes;
}

TEST(SolverTrajectories, BicgstabJacobiBitwise) {
  const CsrMatrix a = poisson3d_spd(7);
  const Vector b = smooth_rhs(a);
  const JacobiPreconditioner jacobi(a);
  SolveOptions opts;
  opts.rtol = 1e-30;
  BicgstabSolver solver(a, b, &jacobi, opts);
  NaiveBicgstab naive(a, b, &jacobi, 0.0);
  for (int it = 0; it < 30; ++it) {
    solver.step();
    naive.step();
    EXPECT_EQ(solver.residual_norm(), naive.res_norm) << "iter " << it;
    expect_bitwise_eq(solver.solution(), naive.x, "bicgstab-jacobi x");
  }
}

struct NaiveMinres {
  // Replica of the pre-fusion MinresSolver iteration body.
  const CsrMatrix& a;
  Vector x, v_old, v, v_new, d_old, d, d_new;
  double beta = 0.0, eta = 0.0, res_norm = 0.0;
  double c_old = 1.0, c = 1.0, s_old = 0.0, s = 0.0;

  NaiveMinres(const CsrMatrix& a_in, const Vector& b)
      : a(a_in),
        x(b.size(), 0.0),
        v_old(b.size(), 0.0),
        v(b.size(), 0.0),
        v_new(b.size(), 0.0),
        d_old(b.size(), 0.0),
        d(b.size(), 0.0),
        d_new(b.size(), 0.0) {
    a.residual(b, x, v);
    beta = norm2(v);
    res_norm = beta;
    eta = beta;
    if (beta > 0.0) scale(v, 1.0 / beta);
  }

  void step() {
    a.multiply(v, v_new);
    const double alpha = dot(v, v_new);
    axpy(-alpha, v, v_new);
    axpy(-beta, v_old, v_new);
    const double beta_new = norm2(v_new);
    const double rho3 = s_old * beta;
    const double rho2 = s * alpha + c_old * c * beta;
    const double rho1_bar = c * alpha - c_old * s * beta;
    const double rho1 = std::hypot(rho1_bar, beta_new);
    ASSERT_NE(rho1, 0.0);
    const double c_new = rho1_bar / rho1;
    const double s_new = beta_new / rho1;
    copy(v, d_new);
    axpy(-rho3, d_old, d_new);
    axpy(-rho2, d, d_new);
    scale(d_new, 1.0 / rho1);
    axpy(c_new * eta, d_new, x);
    eta = -s_new * eta;
    res_norm = std::fabs(eta);
    std::swap(d_old, d);
    std::swap(d, d_new);
    std::swap(v_old, v);
    std::swap(v, v_new);
    if (beta_new > 0.0) scale(v, 1.0 / beta_new);
    beta = beta_new;
    c_old = c;
    c = c_new;
    s_old = s;
    s = s_new;
  }
};

TEST(SolverTrajectories, MinresBitwise) {
  const CsrMatrix a = poisson3d_spd(7);
  const Vector b = smooth_rhs(a);
  SolveOptions opts;
  opts.rtol = 1e-30;
  MinresSolver solver(a, b, opts);
  NaiveMinres naive(a, b);
  for (int it = 0; it < 40; ++it) {
    solver.step();
    naive.step();
    EXPECT_EQ(solver.residual_norm(), naive.res_norm) << "iter " << it;
    expect_bitwise_eq(solver.solution(), naive.x, "minres x");
  }
}

// ---------------------------------------------------------------------------
// Compression streams: byte-identical to pre-change goldens (CRC-32 + size
// captured from the implementation before this PR's loop restructuring).
// ---------------------------------------------------------------------------

Vector golden_field(std::size_t n) {
  Rng rng(42);
  Vector v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = std::sin(0.0005 * static_cast<double>(i)) + 2.0 +
           1e-6 * rng.uniform();
  return v;
}

Vector golden_spiky(std::size_t n) {
  Rng rng(42);
  Vector v(n, 0.0);
  for (std::size_t i = 0; i < n; ++i)
    if (rng.uniform() < 0.07) v[i] = rng.normal(0.0, 1e3);
  return v;
}

TEST(CompressionGoldens, StreamsAreByteIdenticalToPreChangeOutput) {
  struct Golden {
    const char* comp;
    int mode;  // ErrorBound::Mode
    double eb;
    const char* data;
    std::size_t n;
    std::size_t stream_size;
    std::uint32_t crc;
  };
  const Golden goldens[] = {
      {"sz", 0, 1.0e-06, "field", 20000u, 5032u, 0xc272feb1u},
      {"sz", 0, 0.0e+00, "field", 1000u, 8190u, 0x42ad4f92u},
      {"sz", 1, 1.0e-05, "field", 20000u, 4807u, 0xbdcd2106u},
      {"sz", 2, 1.0e-04, "field", 20000u, 4937u, 0xd7f2190bu},
      {"sz", 2, 1.0e-04, "spiky", 20000u, 11282u, 0x40a56e61u},
      {"sz", 2, 1.0e-04, "field", 1u, 113u, 0x19f5a274u},
      {"sz", 2, 1.0e-04, "field", 0u, 107u, 0xe25dc59fu},
      {"trunc", 0, 1.0e-06, "field", 20000u, 31284u, 0x50c44a66u},
      {"trunc", 1, 1.0e-05, "spiky", 20000u, 11556u, 0xdac33908u},
      {"deflate", 0, 0.0e+00, "field", 20000u, 143155u, 0xb0ddf79cu},
      {"shuffle-deflate", 0, 0.0e+00, "field", 20000u, 108871u, 0x038deaedu},
      {"shuffle-rle", 0, 0.0e+00, "spiky", 20000u, 40277u, 0x8748c687u},
      {"lz4", 0, 0.0e+00, "field", 20000u, 160468u, 0x03e2e9b5u},
      {"shuffle-lz4", 0, 0.0e+00, "spiky", 20000u, 48366u, 0xfbfa0b35u},
  };
  for (const Golden& g : goldens) {
    ErrorBound eb;
    switch (g.mode) {
      case 0: eb = ErrorBound::absolute(g.eb); break;
      case 1: eb = ErrorBound::value_range_rel(g.eb); break;
      default: eb = ErrorBound::pointwise_rel(g.eb); break;
    }
    const auto comp = make_compressor(g.comp, eb);
    const Vector v = g.data[0] == 'f' ? golden_field(g.n) : golden_spiky(g.n);
    const auto stream = comp->compress(v);
    EXPECT_EQ(stream.size(), g.stream_size)
        << g.comp << " mode=" << g.mode << " n=" << g.n;
    EXPECT_EQ(crc32(stream), g.crc)
        << g.comp << " mode=" << g.mode << " n=" << g.n;
    // And the restructured decoder must still round-trip its own stream
    // (loose sanity bound; the precise per-mode bounds live in test_sz etc.).
    Vector out(g.n, 0.0);
    comp->decompress(stream, out);
    const double bound = g.eb == 0.0 ? 0.0 : 1.0;
    for (std::size_t i = 0; i < g.n; ++i)
      ASSERT_LE(std::fabs(out[i] - v[i]), bound) << g.comp << " i=" << i;
  }
}

TEST(CompressionGoldens, HuffmanPayloadAndHistogram) {
  Rng rng(9);
  std::vector<std::uint64_t> freqs_naive(512, 0);
  std::vector<std::uint32_t> symbols(100000);
  for (auto& s : symbols) {
    s = 256 + static_cast<std::uint32_t>(rng.normal(0.0, 30.0));
    ++freqs_naive[s];
  }
  // 4-way partial histogram == naive loop-carried histogram.
  const auto freqs = count_frequencies(symbols, 512);
  ASSERT_EQ(freqs.size(), freqs_naive.size());
  EXPECT_EQ(freqs, freqs_naive);

  const auto lengths = huffman_code_lengths(freqs);
  EXPECT_EQ(crc32({lengths.data(), lengths.size()}), 0xaa067733u);
  const HuffmanEncoder enc(lengths);
  BitWriter bw;
  for (const auto s : symbols) enc.encode(bw, s);
  const auto payload = bw.finish();
  EXPECT_EQ(payload.size(), 87057u);
  EXPECT_EQ(crc32(payload), 0xe44275bcu);
}

TEST(CompressionGoldens, CountFrequenciesEdgeCases) {
  EXPECT_EQ(count_frequencies({}, 4), (std::vector<std::uint64_t>{0, 0, 0, 0}));
  const std::vector<std::uint32_t> syms{1, 1, 1, 1, 1, 2, 0};  // remainder tail
  const auto freq = count_frequencies(syms, 3);
  EXPECT_EQ(freq, (std::vector<std::uint64_t>{1, 5, 1}));
}

}  // namespace
}  // namespace lck

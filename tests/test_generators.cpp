/// Matrix generator tests: the paper's Eq. 15 operator, Laplacians, the
/// synthetic KKT saddle-point system, random dominant matrices, and Matrix
/// Market I/O.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "sparse/gen/kkt.hpp"
#include "sparse/gen/poisson3d.hpp"
#include "sparse/gen/random_spd.hpp"
#include "sparse/matrix_market.hpp"

namespace lck {
namespace {

TEST(Poisson3d, MatchesPaperEquation15) {
  // n = 2: every off-diagonal neighbour coupling is 1, diagonal −6.
  const CsrMatrix a = poisson3d(2);
  EXPECT_EQ(a.rows(), 8);
  for (index_t i = 0; i < 8; ++i) EXPECT_DOUBLE_EQ(a.at(i, i), -6.0);
  // Vertex 0 couples to +x (1), +y (2), +z (4).
  EXPECT_DOUBLE_EQ(a.at(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(a.at(0, 2), 1.0);
  EXPECT_DOUBLE_EQ(a.at(0, 4), 1.0);
  EXPECT_DOUBLE_EQ(a.at(0, 3), 0.0);  // diagonal neighbour: no coupling
  EXPECT_DOUBLE_EQ(a.at(0, 7), 0.0);
}

TEST(Poisson3d, StructureCounts) {
  const index_t n = 5;
  const CsrMatrix a = poisson3d(n);
  EXPECT_EQ(a.rows(), n * n * n);
  // Interior points have 7 entries; nnz = 7n³ − 6n² (boundary deficit per axis: 2n² missing per axis).
  EXPECT_EQ(a.nnz(), 7 * n * n * n - 6 * n * n);
  EXPECT_TRUE(a.is_symmetric());
}

TEST(Poisson3d, SpdVariantIsNegated) {
  const CsrMatrix a = poisson3d(3);
  const CsrMatrix s = poisson3d_spd(3);
  ASSERT_EQ(a.nnz(), s.nnz());
  for (index_t r = 0; r < a.rows(); ++r)
    for (index_t k = a.row_ptr()[r]; k < a.row_ptr()[r + 1]; ++k)
      EXPECT_DOUBLE_EQ(a.values()[k], -s.values()[k]);
}

TEST(Poisson3d, SpdIsPositiveDefiniteByQuadraticForm) {
  const CsrMatrix s = poisson3d_spd(4);
  Rng rng(9);
  Vector x(s.rows()), sx(s.rows());
  for (int trial = 0; trial < 10; ++trial) {
    for (auto& v : x) v = rng.uniform(-1.0, 1.0);
    s.multiply(x, sx);
    EXPECT_GT(dot(x, sx), 0.0);
  }
}

TEST(Poisson3d, JacobiIterationMatrixContractsForSpd) {
  // Diagonal dominance is weak (interior rows sum to 0) but with boundary
  // the Jacobi spectral radius is < 1, so one sweep must not expand a
  // residual by more than 1.
  const CsrMatrix a = poisson3d(4);
  const Vector d = a.diagonal();
  for (const double v : d) EXPECT_DOUBLE_EQ(v, -6.0);
}

TEST(Laplacian2d, FivePointStencil) {
  const CsrMatrix a = laplacian2d(3);
  EXPECT_EQ(a.rows(), 9);
  EXPECT_DOUBLE_EQ(a.at(4, 4), 4.0);   // center
  EXPECT_DOUBLE_EQ(a.at(4, 1), -1.0);  // north
  EXPECT_DOUBLE_EQ(a.at(4, 3), -1.0);  // west
  EXPECT_DOUBLE_EQ(a.at(4, 5), -1.0);  // east
  EXPECT_DOUBLE_EQ(a.at(4, 7), -1.0);  // south
  EXPECT_TRUE(a.is_symmetric());
}

TEST(Laplacian1d, EigenvalueSanity) {
  // λ_min of tridiag(−1,2,−1) is 2−2cos(π/(n+1)) > 0: check with the known
  // eigenvector v_k = sin(πk/(n+1)).
  const index_t n = 50;
  const CsrMatrix a = laplacian1d(n);
  Vector v(n), av(n);
  const double pi = 3.14159265358979323846;
  for (index_t k = 0; k < n; ++k)
    v[k] = std::sin(pi * static_cast<double>(k + 1) / static_cast<double>(n + 1));
  a.multiply(v, av);
  const double lambda = 2.0 - 2.0 * std::cos(pi / static_cast<double>(n + 1));
  for (index_t k = 0; k < n; ++k) EXPECT_NEAR(av[k], lambda * v[k], 1e-12);
}

TEST(SmoothRhs, ConsistentWithSolution) {
  const CsrMatrix a = poisson3d_spd(4);
  const Vector b = smooth_rhs(a);
  const Vector xt = smooth_solution(a.rows());
  Vector r(b.size());
  a.residual(b, xt, r);
  EXPECT_LT(norm2(r), 1e-10);
}

TEST(Kkt, SymmetricSaddlePoint) {
  KktOptions opt;
  opt.grid_n = 4;
  const CsrMatrix k = kkt_matrix(opt);
  EXPECT_EQ(k.rows(), 64 + 16);
  EXPECT_TRUE(k.is_symmetric());
}

TEST(Kkt, IndefiniteQuadraticForm) {
  KktOptions opt;
  opt.grid_n = 4;
  const CsrMatrix k = kkt_matrix(opt);
  const index_t nh = 64;
  Vector x(k.rows(), 0.0), kx(k.rows());
  // Direction in the H block: positive curvature.
  x[3] = 1.0;
  k.multiply(x, kx);
  EXPECT_GT(dot(x, kx), 0.0);
  // Direction in the multiplier block: negative curvature (−δ).
  std::fill(x.begin(), x.end(), 0.0);
  x[nh + 2] = 1.0;
  k.multiply(x, kx);
  EXPECT_LT(dot(x, kx), 0.0);
}

TEST(Kkt, ConstraintRowsHaveExpectedSparsity) {
  KktOptions opt;
  opt.grid_n = 4;
  opt.constraints = 10;
  const CsrMatrix k = kkt_matrix(opt);
  // Bottom rows: 3 incidences + 1 diagonal.
  for (index_t c = 0; c < 10; ++c) {
    const index_t r = 64 + c;
    EXPECT_EQ(k.row_ptr()[r + 1] - k.row_ptr()[r], 4);
  }
}

TEST(Kkt, DeterministicForSeed) {
  KktOptions opt;
  opt.grid_n = 3;
  const CsrMatrix a = kkt_matrix(opt);
  const CsrMatrix b = kkt_matrix(opt);
  ASSERT_EQ(a.nnz(), b.nnz());
  for (index_t i = 0; i < a.nnz(); ++i) {
    EXPECT_EQ(a.col_idx()[i], b.col_idx()[i]);
    EXPECT_DOUBLE_EQ(a.values()[i], b.values()[i]);
  }
}

TEST(RandomDominant, DiagonallyDominant) {
  RandomSpdOptions opt;
  opt.n = 200;
  const CsrMatrix a = random_dominant(opt);
  for (index_t r = 0; r < a.rows(); ++r) {
    double diag = 0.0, off = 0.0;
    for (index_t k = a.row_ptr()[r]; k < a.row_ptr()[r + 1]; ++k) {
      if (a.col_idx()[k] == r)
        diag = std::fabs(a.values()[k]);
      else
        off += std::fabs(a.values()[k]);
    }
    EXPECT_GE(diag, opt.dominance * off * 0.999);
  }
}

TEST(RandomDominant, SymmetricOption) {
  RandomSpdOptions opt;
  opt.n = 100;
  opt.symmetric = true;
  EXPECT_TRUE(random_dominant(opt).is_symmetric());
  opt.symmetric = false;
  opt.seed = 12;
  // Asymmetric version is almost surely not symmetric.
  EXPECT_FALSE(random_dominant(opt).is_symmetric());
}

TEST(MatrixMarket, RoundTrip) {
  const CsrMatrix a = laplacian2d(4);
  std::stringstream ss;
  write_matrix_market(ss, a);
  const CsrMatrix b = read_matrix_market(ss);
  ASSERT_EQ(b.rows(), a.rows());
  ASSERT_EQ(b.nnz(), a.nnz());
  for (index_t r = 0; r < a.rows(); ++r)
    for (index_t c = 0; c < a.cols(); ++c)
      EXPECT_DOUBLE_EQ(b.at(r, c), a.at(r, c));
}

TEST(MatrixMarket, SymmetricExpansion) {
  std::stringstream ss;
  ss << "%%MatrixMarket matrix coordinate real symmetric\n"
     << "% a comment line\n"
     << "3 3 4\n"
     << "1 1 2.0\n2 1 -1.0\n2 2 2.0\n3 3 1.0\n";
  const CsrMatrix a = read_matrix_market(ss);
  EXPECT_EQ(a.nnz(), 5);  // off-diagonal mirrored
  EXPECT_DOUBLE_EQ(a.at(0, 1), -1.0);
  EXPECT_DOUBLE_EQ(a.at(1, 0), -1.0);
  EXPECT_TRUE(a.is_symmetric());
}

TEST(MatrixMarket, RejectsBadBanner) {
  std::stringstream ss("%%NotMatrixMarket matrix coordinate real general\n");
  EXPECT_THROW(read_matrix_market(ss), corrupt_stream_error);
}

TEST(MatrixMarket, RejectsOutOfRangeIndices) {
  std::stringstream ss;
  ss << "%%MatrixMarket matrix coordinate real general\n"
     << "2 2 1\n"
     << "3 1 1.0\n";
  EXPECT_THROW(read_matrix_market(ss), corrupt_stream_error);
}

TEST(MatrixMarket, RejectsTruncatedEntries) {
  std::stringstream ss;
  ss << "%%MatrixMarket matrix coordinate real general\n"
     << "2 2 3\n"
     << "1 1 1.0\n";
  EXPECT_THROW(read_matrix_market(ss), corrupt_stream_error);
}

}  // namespace
}  // namespace lck

/// SZ-like compressor tests: the error-bound contract (the paper's central
/// correctness requirement), compression-ratio expectations on solver-like
/// data, and stream robustness.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/rng.hpp"
#include "compress/compressor.hpp"
#include "compress/sz/sz_like.hpp"
#include "sparse/vector_ops.hpp"

namespace lck {
namespace {

Vector smooth_field(std::size_t n, double offset = 1.5) {
  Vector v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = std::sin(6.28318 * static_cast<double>(i) / static_cast<double>(n)) +
           offset;
  return v;
}

Vector noisy_field(std::size_t n, std::uint64_t seed, double amp) {
  Rng rng(seed);
  Vector v = smooth_field(n);
  for (auto& x : v) x += amp * (rng.uniform() - 0.5);
  return v;
}

Vector roundtrip(const Compressor& c, const Vector& in) {
  const auto stream = c.compress(in);
  Vector out(in.size());
  c.decompress(stream, out);
  return out;
}

// ----- absolute error bound ---------------------------------------------------

class SzAbsBound : public ::testing::TestWithParam<double> {};

TEST_P(SzAbsBound, BoundHoldsElementwiseOnSmoothData) {
  const double eb = GetParam();
  SzLikeCompressor c(ErrorBound::absolute(eb));
  const Vector in = smooth_field(20000);
  const Vector out = roundtrip(c, in);
  for (std::size_t i = 0; i < in.size(); ++i)
    ASSERT_LE(std::fabs(in[i] - out[i]), eb) << "index " << i;
}

TEST_P(SzAbsBound, BoundHoldsOnNoisyData) {
  const double eb = GetParam();
  SzLikeCompressor c(ErrorBound::absolute(eb));
  const Vector in = noisy_field(20000, 7, 0.5);
  const Vector out = roundtrip(c, in);
  for (std::size_t i = 0; i < in.size(); ++i)
    ASSERT_LE(std::fabs(in[i] - out[i]), eb) << "index " << i;
}

INSTANTIATE_TEST_SUITE_P(Bounds, SzAbsBound,
                         ::testing::Values(1e-2, 1e-4, 1e-6, 1e-9));

// ----- pointwise relative bound (paper §4.4 definition) -------------------------

class SzPwRelBound : public ::testing::TestWithParam<double> {};

TEST_P(SzPwRelBound, PaperDefinitionHolds) {
  const double eb = GetParam();
  SzLikeCompressor c(ErrorBound::pointwise_rel(eb));
  // Mixed magnitudes spanning many orders, both signs, zeros.
  Rng rng(11);
  Vector in(30000);
  for (std::size_t i = 0; i < in.size(); ++i) {
    const double mag = std::pow(10.0, rng.uniform(-12.0, 12.0));
    in[i] = (rng.uniform() < 0.5 ? -1.0 : 1.0) * mag;
    if (i % 97 == 0) in[i] = 0.0;
  }
  const Vector out = roundtrip(c, in);
  for (std::size_t i = 0; i < in.size(); ++i)
    ASSERT_LE(std::fabs(in[i] - out[i]), eb * std::fabs(in[i]) + 1e-300)
        << "index " << i << " value " << in[i];
}

TEST_P(SzPwRelBound, ZerosReconstructExactly) {
  const double eb = GetParam();
  SzLikeCompressor c(ErrorBound::pointwise_rel(eb));
  Vector in(1000, 0.0);
  in[500] = 3.5;
  const Vector out = roundtrip(c, in);
  for (std::size_t i = 0; i < in.size(); ++i) {
    if (i != 500) {
      ASSERT_EQ(out[i], 0.0);
    }
  }
}

TEST_P(SzPwRelBound, SignsArePreserved) {
  const double eb = GetParam();
  SzLikeCompressor c(ErrorBound::pointwise_rel(eb));
  Rng rng(3);
  Vector in(5000);
  for (auto& x : in) x = rng.uniform(-10.0, 10.0);
  const Vector out = roundtrip(c, in);
  for (std::size_t i = 0; i < in.size(); ++i) {
    if (in[i] != 0.0) {
      ASSERT_EQ(std::signbit(in[i]), std::signbit(out[i])) << "index " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Bounds, SzPwRelBound,
                         ::testing::Values(1e-3, 1e-4, 1e-5, 1e-6));

// ----- value-range relative --------------------------------------------------

TEST(SzValueRangeRel, BoundScalesWithRange) {
  const double eb = 1e-4;
  SzLikeCompressor c(ErrorBound::value_range_rel(eb));
  Vector in = smooth_field(10000);
  for (auto& x : in) x *= 1000.0;  // range ~2000
  const Vector out = roundtrip(c, in);
  const double range = 2000.0 * 1.01;
  for (std::size_t i = 0; i < in.size(); ++i)
    ASSERT_LE(std::fabs(in[i] - out[i]), eb * range);
}

TEST(SzValueRangeRel, ConstantDataCompressesMassively) {
  SzLikeCompressor c(ErrorBound::value_range_rel(1e-4));
  const Vector in(50000, 42.0);
  const auto stream = c.compress(in);
  // ~1 Huffman bit per element: ratio > 50x.
  EXPECT_LT(stream.size() * 50, in.size() * sizeof(double));
  Vector out(in.size());
  c.decompress(stream, out);
  for (const double x : out) ASSERT_NEAR(x, 42.0, 1e-4);
}

// ----- ratios (paper Table 3 expectations) --------------------------------------

TEST(SzRatio, SmoothSolverDataReachesHighRatio) {
  // Paper: SZ reduces checkpoints to ~1/20–1/60 of raw size on converged
  // solver vectors at eb = 1e-4.
  SzLikeCompressor c(ErrorBound::pointwise_rel(1e-4));
  const double r = compression_ratio(c, smooth_field(100000));
  EXPECT_GT(r, 15.0);
}

TEST(SzRatio, TighterBoundMeansLowerRatio) {
  const Vector v = noisy_field(50000, 9, 0.01);
  SzLikeCompressor loose(ErrorBound::pointwise_rel(1e-3));
  SzLikeCompressor tight(ErrorBound::pointwise_rel(1e-7));
  EXPECT_GT(compression_ratio(loose, v), compression_ratio(tight, v));
}

TEST(SzRatio, BeatsLosslessOnSolverData) {
  // The core claim motivating the paper: lossy ≫ lossless on these vectors.
  const Vector v = noisy_field(50000, 13, 1e-6);
  SzLikeCompressor sz(ErrorBound::pointwise_rel(1e-4));
  const auto gz = make_compressor("deflate");
  EXPECT_GT(compression_ratio(sz, v), 2.0 * compression_ratio(*gz, v));
}

// ----- robustness ---------------------------------------------------------------

TEST(SzRobustness, EmptyVector) {
  SzLikeCompressor c;
  const Vector in;
  const auto stream = c.compress(in);
  Vector out;
  c.decompress(stream, out);
}

TEST(SzRobustness, SingleElement) {
  SzLikeCompressor c(ErrorBound::pointwise_rel(1e-4));
  const Vector in{123.456};
  const Vector out = roundtrip(c, in);
  EXPECT_NEAR(out[0], in[0], 1e-4 * 123.456);
}

TEST(SzRobustness, NonFiniteValuesSurviveExactly) {
  SzLikeCompressor c(ErrorBound::pointwise_rel(1e-4));
  Vector in(100, 1.0);
  in[10] = std::numeric_limits<double>::infinity();
  in[20] = -std::numeric_limits<double>::infinity();
  in[30] = std::numeric_limits<double>::quiet_NaN();
  in[40] = std::numeric_limits<double>::denorm_min();
  const Vector out = roundtrip(c, in);
  EXPECT_TRUE(std::isinf(out[10]) && out[10] > 0);
  EXPECT_TRUE(std::isinf(out[20]) && out[20] < 0);
  EXPECT_TRUE(std::isnan(out[30]));
  EXPECT_EQ(out[40], std::numeric_limits<double>::denorm_min());
}

TEST(SzRobustness, ZeroErrorBoundIsLossless) {
  SzLikeCompressor c(ErrorBound::pointwise_rel(0.0));
  const Vector in = noisy_field(1000, 21, 0.3);
  EXPECT_EQ(roundtrip(c, in), in);
}

TEST(SzRobustness, BadMagicThrows) {
  SzLikeCompressor c;
  const Vector in = smooth_field(100);
  auto stream = c.compress(in);
  stream[0] ^= 0xff;
  Vector out(in.size());
  EXPECT_THROW(c.decompress(stream, out), corrupt_stream_error);
}

TEST(SzRobustness, TruncatedStreamThrows) {
  SzLikeCompressor c;
  const Vector in = smooth_field(5000);
  auto stream = c.compress(in);
  stream.resize(stream.size() / 3);
  Vector out(in.size());
  EXPECT_THROW(c.decompress(stream, out), corrupt_stream_error);
}

TEST(SzRobustness, SizeMismatchThrows) {
  SzLikeCompressor c;
  const Vector in = smooth_field(100);
  const auto stream = c.compress(in);
  Vector out(101);
  EXPECT_THROW(c.decompress(stream, out), corrupt_stream_error);
}

TEST(SzPointwiseRelative, SparseFieldCompressesFarBeyondOne) {
  // Regression for the ROADMAP open item: zeros used to be stored verbatim
  // (8 B each), pinning sparse fields at ratio ≈ 1. With the compact exact
  // encoding they cost ~0 bits, so a 98%-zero field compresses massively.
  SzLikeCompressor c(ErrorBound::pointwise_rel(1e-4));
  Rng rng(31);
  Vector in(1u << 16, 0.0);
  for (std::size_t i = 0; i < in.size() / 50; ++i)
    in[rng.uniform_index(in.size())] = rng.uniform(-5.0, 5.0);
  EXPECT_GT(compression_ratio(c, in), 10.0);
  const Vector out = roundtrip(c, in);
  for (std::size_t i = 0; i < in.size(); ++i)
    ASSERT_LE(std::fabs(in[i] - out[i]), 1e-4 * std::fabs(in[i]))
        << "index " << i;
}

TEST(SzPointwiseRelative, SignedZerosSurviveBitExactly) {
  SzLikeCompressor c(ErrorBound::pointwise_rel(1e-3));
  Vector in{0.0, -0.0, 1.25, -0.0, 0.0, -3.5, 0.0};
  const Vector out = roundtrip(c, in);
  for (std::size_t i = 0; i < in.size(); ++i) {
    if (in[i] == 0.0) {
      ASSERT_EQ(std::signbit(out[i]), std::signbit(in[i])) << "index " << i;
      ASSERT_EQ(out[i], 0.0) << "index " << i;
    }
  }
}

TEST(SzConfig, ErrorBoundIsMutable) {
  SzLikeCompressor c(ErrorBound::pointwise_rel(1e-4));
  c.set_error_bound(ErrorBound::pointwise_rel(1e-2));
  EXPECT_DOUBLE_EQ(c.error_bound().value, 1e-2);
  // Looser bound must not be violated either.
  const Vector in = smooth_field(1000);
  const Vector out = roundtrip(c, in);
  for (std::size_t i = 0; i < in.size(); ++i)
    ASSERT_LE(std::fabs(in[i] - out[i]), 1e-2 * std::fabs(in[i]) + 1e-300);
}

}  // namespace
}  // namespace lck

/// CSR matrix tests: construction invariants, SpMV, residual kernel,
/// transpose, symmetry, and the builder's error checking.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "sparse/csr.hpp"

namespace lck {
namespace {

/// 3×3 example:  [2 1 0; 0 3 0; 4 0 5]
CsrMatrix example3x3() {
  CsrBuilder b(3, 3);
  b.add(0, 2.0);
  b.add(1, 1.0);
  b.finish_row();
  b.add(1, 3.0);
  b.finish_row();
  b.add(0, 4.0);
  b.add(2, 5.0);
  b.finish_row();
  return std::move(b).build();
}

TEST(Csr, BasicAccessors) {
  const CsrMatrix a = example3x3();
  EXPECT_EQ(a.rows(), 3);
  EXPECT_EQ(a.cols(), 3);
  EXPECT_EQ(a.nnz(), 5);
  EXPECT_DOUBLE_EQ(a.at(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(a.at(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(a.at(0, 2), 0.0);
  EXPECT_DOUBLE_EQ(a.at(2, 0), 4.0);
}

TEST(Csr, Multiply) {
  const CsrMatrix a = example3x3();
  const Vector x{1.0, 2.0, 3.0};
  Vector y(3);
  a.multiply(x, y);
  EXPECT_DOUBLE_EQ(y[0], 4.0);   // 2·1 + 1·2
  EXPECT_DOUBLE_EQ(y[1], 6.0);   // 3·2
  EXPECT_DOUBLE_EQ(y[2], 19.0);  // 4·1 + 5·3
}

TEST(Csr, ResidualKernelMatchesDefinition) {
  const CsrMatrix a = example3x3();
  const Vector x{1.0, -1.0, 0.5};
  const Vector b{1.0, 2.0, 3.0};
  Vector r(3), ax(3);
  a.residual(b, x, r);
  a.multiply(x, ax);
  for (int i = 0; i < 3; ++i) EXPECT_DOUBLE_EQ(r[i], b[i] - ax[i]);
}

TEST(Csr, Diagonal) {
  const CsrMatrix a = example3x3();
  const Vector d = a.diagonal();
  EXPECT_DOUBLE_EQ(d[0], 2.0);
  EXPECT_DOUBLE_EQ(d[1], 3.0);
  EXPECT_DOUBLE_EQ(d[2], 5.0);
}

TEST(Csr, TransposeTwiceIsIdentity) {
  const CsrMatrix a = example3x3();
  const CsrMatrix att = a.transpose().transpose();
  ASSERT_EQ(att.nnz(), a.nnz());
  for (index_t r = 0; r < a.rows(); ++r)
    for (index_t c = 0; c < a.cols(); ++c)
      EXPECT_DOUBLE_EQ(att.at(r, c), a.at(r, c));
}

TEST(Csr, TransposeValuesCorrect) {
  const CsrMatrix t = example3x3().transpose();
  EXPECT_DOUBLE_EQ(t.at(0, 2), 4.0);
  EXPECT_DOUBLE_EQ(t.at(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(t.at(2, 2), 5.0);
  EXPECT_DOUBLE_EQ(t.at(2, 0), 0.0);
}

TEST(Csr, SymmetryDetection) {
  EXPECT_FALSE(example3x3().is_symmetric());

  CsrBuilder b(2, 2);
  b.add(0, 1.0);
  b.add(1, 2.0);
  b.finish_row();
  b.add(0, 2.0);
  b.add(1, 5.0);
  b.finish_row();
  EXPECT_TRUE(std::move(b).build().is_symmetric());
}

TEST(Csr, SymmetryWithTolerance) {
  CsrBuilder b(2, 2);
  b.add(0, 1.0);
  b.add(1, 2.0);
  b.finish_row();
  b.add(0, 2.0 + 1e-12);
  b.add(1, 5.0);
  b.finish_row();
  const CsrMatrix a = std::move(b).build();
  EXPECT_FALSE(a.is_symmetric(0.0));
  EXPECT_TRUE(a.is_symmetric(1e-10));
}

TEST(Csr, RectangularMultiply) {
  CsrBuilder b(2, 4);
  b.add(0, 1.0);
  b.add(3, 2.0);
  b.finish_row();
  b.add(1, 3.0);
  b.finish_row();
  const CsrMatrix a = std::move(b).build();
  const Vector x{1.0, 1.0, 1.0, 1.0};
  Vector y(2);
  a.multiply(x, y);
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], 3.0);
}

TEST(CsrBuilder, RejectsDescendingColumns) {
  CsrBuilder b(1, 3);
  b.add(2, 1.0);
  EXPECT_THROW(b.add(1, 1.0), config_error);
}

TEST(CsrBuilder, RejectsDuplicateColumns) {
  CsrBuilder b(1, 3);
  b.add(1, 1.0);
  EXPECT_THROW(b.add(1, 2.0), config_error);
}

TEST(CsrBuilder, RejectsColumnOutOfRange) {
  CsrBuilder b(1, 3);
  EXPECT_THROW(b.add(3, 1.0), config_error);
  EXPECT_THROW(b.add(-1, 1.0), config_error);
}

TEST(CsrBuilder, RejectsUnfinishedRows) {
  CsrBuilder b(2, 2);
  b.add(0, 1.0);
  b.finish_row();
  EXPECT_THROW((void)std::move(b).build(), config_error);
}

TEST(CsrBuilder, EmptyRowsAllowed) {
  CsrBuilder b(3, 3);
  b.finish_row();
  b.add(1, 5.0);
  b.finish_row();
  b.finish_row();
  const CsrMatrix a = std::move(b).build();
  EXPECT_EQ(a.nnz(), 1);
  Vector y(3);
  a.multiply(Vector{1, 1, 1}, y);
  EXPECT_DOUBLE_EQ(y[0], 0.0);
  EXPECT_DOUBLE_EQ(y[1], 5.0);
  EXPECT_DOUBLE_EQ(y[2], 0.0);
}

TEST(Csr, ValidateCatchesBrokenRowPtr) {
  std::vector<index_t> row_ptr{0, 2, 1};  // non-monotonic
  std::vector<index_t> col{0, 1};
  std::vector<double> val{1.0, 2.0};
  EXPECT_THROW(CsrMatrix(2, 2, row_ptr, col, val), config_error);
}

TEST(Csr, SpmvSizeMismatchThrows) {
  const CsrMatrix a = example3x3();
  Vector x(2), y(3);
  EXPECT_THROW(a.multiply(x, y), config_error);
}

TEST(VectorOps, DotAndNorms) {
  const Vector x{3.0, 4.0};
  EXPECT_DOUBLE_EQ(norm2(x), 5.0);
  EXPECT_DOUBLE_EQ(norm_inf(x), 4.0);
  EXPECT_DOUBLE_EQ(dot(x, x), 25.0);
}

TEST(VectorOps, AxpyFamilies) {
  Vector x{1.0, 2.0}, y{10.0, 20.0}, w(2);
  axpy(2.0, x, y);  // y = 2x + y
  EXPECT_DOUBLE_EQ(y[0], 12.0);
  EXPECT_DOUBLE_EQ(y[1], 24.0);
  xpby(x, 0.5, y);  // y = x + 0.5y
  EXPECT_DOUBLE_EQ(y[0], 7.0);
  EXPECT_DOUBLE_EQ(y[1], 14.0);
  waxpy(x, 3.0, y, w);  // w = x + 3y
  EXPECT_DOUBLE_EQ(w[0], 22.0);
  EXPECT_DOUBLE_EQ(w[1], 44.0);
  scale(w, 0.5);
  EXPECT_DOUBLE_EQ(w[0], 11.0);
}

TEST(VectorOps, MaxAbsDiff) {
  const Vector x{1.0, 2.0, 3.0}, y{1.5, 2.0, 2.0};
  EXPECT_DOUBLE_EQ(max_abs_diff(x, y), 1.0);
}

TEST(VectorOps, LargeParallelConsistency) {
  Rng rng(55);
  const index_t n = 200000;
  Vector x(n), y(n);
  for (index_t i = 0; i < n; ++i) {
    x[i] = rng.uniform(-1, 1);
    y[i] = rng.uniform(-1, 1);
  }
  double serial = 0.0;
  for (index_t i = 0; i < n; ++i) serial += x[i] * y[i];
  EXPECT_NEAR(dot(x, y), serial, 1e-8 * n);
}

}  // namespace
}  // namespace lck

#pragma once
/// \file metrics.hpp
/// \brief MetricsRegistry: named counters, gauges and log-bucketed
///        histograms with label support, sharded per thread.
///
/// Design goals, in priority order:
///
///  1. *Zero overhead when disabled.* Nothing here is global or ambient;
///     instrumented code holds a nullable pointer (see obs::Sink) and a
///     single branch skips everything. A disabled run allocates no registry
///     and touches no atomics on the instrumented paths.
///  2. *Off the hot path when enabled.* Counters and histograms live in
///     per-thread shards: the owning thread updates its shard under a
///     mutex nobody else contends for (the snapshotter is the only other
///     party, and it runs rarely). No cross-thread cache-line ping-pong.
///  3. *Deterministic snapshots.* snapshot() merges the shards into maps
///     sorted by (name, labels); serializing the same state twice yields
///     byte-identical JSON / Prometheus text, so goldens can diff it.
///
/// Metric identity is (name, LabelSet); labels are sorted key=value pairs,
/// so `{tier=L2,codec=sz}` and `{codec=sz,tier=L2}` are the same series.
/// Counter values are doubles: the runner's legacy ResilienceResult sums
/// are double-valued (virtual seconds, cluster-scale bytes), and exact
/// cross-checking requires accumulating the *same* doubles in the *same*
/// order on both sides.
///
/// Histograms use power-of-two buckets: a value lands in the bucket whose
/// upper bound is the smallest 2^k >= value. That spans nanoseconds to
/// hours (or bytes to terabytes) in ~128 sparse buckets with no
/// configuration, and quantiles interpolate within a bucket (log-domain
/// accuracy of a factor of 2 at worst, far tighter in practice since
/// count/sum/min/max are exact).

#include <cstdint>
#include <initializer_list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace lck::obs {

/// Sorted, order-independent set of key=value labels naming one series.
class LabelSet {
 public:
  LabelSet() = default;
  LabelSet(std::initializer_list<std::pair<std::string, std::string>> kvs);

  [[nodiscard]] const std::vector<std::pair<std::string, std::string>>&
  items() const noexcept {
    return items_;
  }
  [[nodiscard]] bool empty() const noexcept { return items_.empty(); }

  bool operator==(const LabelSet&) const = default;
  auto operator<=>(const LabelSet&) const = default;

  /// Canonical rendering: "" when empty, else "{k1=v1,k2=v2}".
  [[nodiscard]] std::string suffix() const;

 private:
  std::vector<std::pair<std::string, std::string>> items_;  // sorted by key
};

/// Merged view of one histogram series.
struct HistogramSnapshot {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  ///< Meaningless while count == 0.
  double max = 0.0;
  /// (upper bound, count) per non-empty power-of-two bucket, ascending.
  /// Values <= 0 land in a bucket with upper bound 0.
  std::vector<std::pair<double, std::uint64_t>> buckets;

  /// Quantile estimate (q in [0,1]) by linear interpolation inside the
  /// bucket containing the q-th observation, clamped to [min, max].
  [[nodiscard]] double quantile(double q) const noexcept;
  [[nodiscard]] double mean() const noexcept {
    return count > 0 ? sum / static_cast<double>(count) : 0.0;
  }
};

/// Immutable, deterministic snapshot of a registry. Keys are the series'
/// full name: name + labels.suffix().
struct MetricsSnapshot {
  std::map<std::string, double> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  [[nodiscard]] double counter(std::string_view full_name) const noexcept;
  [[nodiscard]] const HistogramSnapshot* histogram(
      std::string_view full_name) const noexcept;

  /// Sum of every counter series whose base name (the part before any '{')
  /// equals `base` — i.e. summed across label sets.
  [[nodiscard]] double counter_total(std::string_view base) const noexcept;
  /// Sum / observation count across every histogram series of `base`.
  [[nodiscard]] double hist_sum_total(std::string_view base) const noexcept;
  [[nodiscard]] std::uint64_t hist_count_total(
      std::string_view base) const noexcept;

  /// Pretty-printed JSON object (stable key order, %.17g doubles — enough
  /// to round-trip, so identical state serializes identically).
  [[nodiscard]] std::string to_json() const;
  /// Prometheus text exposition: '.' in names becomes '_', histograms
  /// expand to cumulative _bucket{le=...}/_sum/_count series.
  [[nodiscard]] std::string to_prometheus() const;
};

/// Thread-sharded metrics registry. All recording methods are safe to call
/// from any thread; snapshot() is safe concurrently with recording.
class MetricsRegistry {
 public:
  MetricsRegistry();
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Add `delta` to the counter series (name, labels).
  void add(std::string_view name, double delta, const LabelSet& labels = {});
  /// Record one observation into the histogram series (name, labels).
  void observe(std::string_view name, double value,
               const LabelSet& labels = {});
  /// Set the gauge series (name, labels) to `value` (last writer wins).
  void set_gauge(std::string_view name, double value,
                 const LabelSet& labels = {});

  [[nodiscard]] MetricsSnapshot snapshot() const;

 private:
  struct Hist {
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    std::map<int, std::uint64_t> buckets;  ///< exponent -> count
  };
  struct Cell {
    bool has_counter = false;
    bool has_hist = false;
    double counter = 0.0;
    Hist hist;
  };
  using Key = std::pair<std::string, LabelSet>;
  struct Shard {
    std::mutex mu;
    std::map<Key, Cell> cells;
  };

  [[nodiscard]] Shard& local_shard() const;

  /// Process-unique id: the thread-local shard cache is keyed by it, so a
  /// new registry recycling a dead one's address can never alias its stale
  /// cache entries.
  const std::uint64_t id_;
  mutable std::mutex mu_;  ///< Guards shards_ (the list) and gauges_.
  mutable std::vector<std::unique_ptr<Shard>> shards_;
  std::map<Key, double> gauges_;
};

}  // namespace lck::obs

#include "obs/metrics.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <limits>

namespace lck::obs {
namespace {

/// Bucket exponent for a histogram value: the smallest k with 2^k >= v.
/// Values <= 0 (possible for deltas or degenerate timings) get a sentinel
/// bucket below every real one so they still count toward quantiles.
constexpr int kNonPositiveBucket = -1100;  // below 2^-1074 (min subnormal)

int bucket_exponent(double v) noexcept {
  if (!(v > 0.0)) return kNonPositiveBucket;
  int e = 0;
  const double m = std::frexp(v, &e);  // v = m * 2^e, m in [0.5, 1)
  // m == 0.5 means v is exactly 2^(e-1): its own upper bound.
  return m == 0.5 ? e - 1 : e;
}

double bucket_upper_bound(int e) noexcept {
  if (e == kNonPositiveBucket) return 0.0;
  return std::ldexp(1.0, e);
}

std::string fmt_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  std::string s{buf};
  if (s.find("inf") != std::string::npos ||
      s.find("nan") != std::string::npos)
    return "null";
  return s;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
      continue;
    }
    out += c;
  }
  return out;
}

std::string_view base_name(std::string_view full) noexcept {
  const auto brace = full.find('{');
  return brace == std::string_view::npos ? full : full.substr(0, brace);
}

/// Prometheus metric names allow [a-zA-Z0-9_:]; map everything else to '_'.
std::string prom_name(std::string_view name) {
  std::string out{name};
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  return out;
}

std::string prom_labels(const std::string& full_name,
                        const std::string& extra = {}) {
  const auto brace = full_name.find('{');
  std::string body;
  if (brace != std::string::npos) {
    // Re-render {k=v,...} as {k="v",...}.
    std::string_view inner{full_name};
    inner = inner.substr(brace + 1, full_name.size() - brace - 2);
    while (!inner.empty()) {
      const auto comma = inner.find(',');
      const std::string_view kv = inner.substr(0, comma);
      const auto eq = kv.find('=');
      if (!body.empty()) body += ',';
      body += std::string{kv.substr(0, eq)} + "=\"" +
              std::string{eq == std::string_view::npos ? std::string_view{}
                                                       : kv.substr(eq + 1)} +
              "\"";
      if (comma == std::string_view::npos) break;
      inner = inner.substr(comma + 1);
    }
  }
  if (!extra.empty()) {
    if (!body.empty()) body += ',';
    body += extra;
  }
  return body.empty() ? std::string{} : "{" + body + "}";
}

}  // namespace

// ----- LabelSet -------------------------------------------------------------

LabelSet::LabelSet(
    std::initializer_list<std::pair<std::string, std::string>> kvs)
    : items_(kvs) {
  std::sort(items_.begin(), items_.end());
  items_.erase(std::unique(items_.begin(), items_.end(),
                           [](const auto& a, const auto& b) {
                             return a.first == b.first;
                           }),
               items_.end());
}

std::string LabelSet::suffix() const {
  if (items_.empty()) return {};
  std::string out = "{";
  for (std::size_t i = 0; i < items_.size(); ++i) {
    if (i > 0) out += ',';
    out += items_[i].first;
    out += '=';
    out += items_[i].second;
  }
  out += '}';
  return out;
}

// ----- HistogramSnapshot ----------------------------------------------------

double HistogramSnapshot::quantile(double q) const noexcept {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count);
  std::uint64_t seen = 0;
  double lower = 0.0;  // lower edge of the current bucket
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    const auto [upper, n] = buckets[i];
    const double lo = i == 0 ? (upper > 0.0 ? upper / 2.0 : upper) : lower;
    if (static_cast<double>(seen + n) >= target) {
      const double frac =
          n > 0 ? (target - static_cast<double>(seen)) / static_cast<double>(n)
                : 0.0;
      const double v = lo + frac * (upper - lo);
      return std::clamp(v, min, max);
    }
    seen += n;
    lower = upper;
  }
  return max;
}

// ----- MetricsSnapshot ------------------------------------------------------

double MetricsSnapshot::counter(std::string_view full_name) const noexcept {
  const auto it = counters.find(std::string{full_name});
  return it != counters.end() ? it->second : 0.0;
}

const HistogramSnapshot* MetricsSnapshot::histogram(
    std::string_view full_name) const noexcept {
  const auto it = histograms.find(std::string{full_name});
  return it != histograms.end() ? &it->second : nullptr;
}

double MetricsSnapshot::counter_total(std::string_view base) const noexcept {
  double total = 0.0;
  for (const auto& [name, v] : counters)
    if (base_name(name) == base) total += v;
  return total;
}

double MetricsSnapshot::hist_sum_total(std::string_view base) const noexcept {
  double total = 0.0;
  for (const auto& [name, h] : histograms)
    if (base_name(name) == base) total += h.sum;
  return total;
}

std::uint64_t MetricsSnapshot::hist_count_total(
    std::string_view base) const noexcept {
  std::uint64_t total = 0;
  for (const auto& [name, h] : histograms)
    if (base_name(name) == base) total += h.count;
  return total;
}

std::string MetricsSnapshot::to_json() const {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, v] : counters) {
    out += first ? "\n" : ",\n";
    out += "    \"" + json_escape(name) + "\": " + fmt_double(v);
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, v] : gauges) {
    out += first ? "\n" : ",\n";
    out += "    \"" + json_escape(name) + "\": " + fmt_double(v);
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms) {
    out += first ? "\n" : ",\n";
    out += "    \"" + json_escape(name) + "\": {\"count\": " +
           std::to_string(h.count) + ", \"sum\": " + fmt_double(h.sum) +
           ", \"min\": " + fmt_double(h.min) +
           ", \"max\": " + fmt_double(h.max) +
           ", \"p50\": " + fmt_double(h.quantile(0.5)) +
           ", \"p99\": " + fmt_double(h.quantile(0.99)) + ", \"buckets\": [";
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      if (i > 0) out += ", ";
      out += "[" + fmt_double(h.buckets[i].first) + ", " +
             std::to_string(h.buckets[i].second) + "]";
    }
    out += "]}";
    first = false;
  }
  out += first ? "}\n}\n" : "\n  }\n}\n";
  return out;
}

std::string MetricsSnapshot::to_prometheus() const {
  std::string out;
  for (const auto& [name, v] : counters) {
    const std::string base = prom_name(base_name(name));
    out += "# TYPE " + base + " counter\n";
    out += base + prom_labels(name) + " " + fmt_double(v) + "\n";
  }
  for (const auto& [name, v] : gauges) {
    const std::string base = prom_name(base_name(name));
    out += "# TYPE " + base + " gauge\n";
    out += base + prom_labels(name) + " " + fmt_double(v) + "\n";
  }
  for (const auto& [name, h] : histograms) {
    const std::string base = prom_name(base_name(name));
    out += "# TYPE " + base + " histogram\n";
    std::uint64_t cum = 0;
    for (const auto& [upper, n] : h.buckets) {
      cum += n;
      out += base + "_bucket" +
             prom_labels(name, "le=\"" + fmt_double(upper) + "\"") + " " +
             std::to_string(cum) + "\n";
    }
    out += base + "_bucket" + prom_labels(name, "le=\"+Inf\"") + " " +
           std::to_string(h.count) + "\n";
    out += base + "_sum" + prom_labels(name) + " " + fmt_double(h.sum) + "\n";
    out += base + "_count" + prom_labels(name) + " " +
           std::to_string(h.count) + "\n";
  }
  return out;
}

// ----- MetricsRegistry ------------------------------------------------------

namespace {
std::uint64_t next_registry_id() noexcept {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}
}  // namespace

MetricsRegistry::MetricsRegistry() : id_(next_registry_id()) {}
MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry::Shard& MetricsRegistry::local_shard() const {
  // Tiny per-thread cache: registry id -> shard owned by that registry.
  // A linear scan beats a hash map at the 1-3 registries a thread ever
  // sees, and keying by the process-unique id (not `this`) makes stale
  // entries harmless rather than dangling.
  thread_local std::vector<std::pair<std::uint64_t, Shard*>> cache;
  for (const auto& [id, shard] : cache)
    if (id == id_) return *shard;
  const std::lock_guard<std::mutex> lock(mu_);
  shards_.push_back(std::make_unique<Shard>());
  Shard* shard = shards_.back().get();
  cache.emplace_back(id_, shard);
  return *shard;
}

void MetricsRegistry::add(std::string_view name, double delta,
                          const LabelSet& labels) {
  Shard& shard = local_shard();
  const std::lock_guard<std::mutex> lock(shard.mu);
  // transparent-comparator-free lookup: build the key once.
  Cell& cell = shard.cells[Key{std::string{name}, labels}];
  cell.has_counter = true;
  cell.counter += delta;
}

void MetricsRegistry::observe(std::string_view name, double value,
                              const LabelSet& labels) {
  Shard& shard = local_shard();
  const std::lock_guard<std::mutex> lock(shard.mu);
  Cell& cell = shard.cells[Key{std::string{name}, labels}];
  Hist& h = cell.hist;
  if (!cell.has_hist) {
    h.min = value;
    h.max = value;
    cell.has_hist = true;
  } else {
    h.min = std::min(h.min, value);
    h.max = std::max(h.max, value);
  }
  ++h.count;
  h.sum += value;
  ++h.buckets[bucket_exponent(value)];
}

void MetricsRegistry::set_gauge(std::string_view name, double value,
                                const LabelSet& labels) {
  const std::lock_guard<std::mutex> lock(mu_);
  gauges_[Key{std::string{name}, labels}] = value;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  // Collect shard pointers under mu_, then merge each under its own mutex.
  std::vector<Shard*> shards;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    shards.reserve(shards_.size());
    for (const auto& s : shards_) shards.push_back(s.get());
    for (const auto& [key, v] : gauges_)
      snap.gauges[key.first + key.second.suffix()] = v;
  }
  // Intermediate merge keyed by exponent so cross-shard buckets combine
  // exactly; rendered to upper-bound doubles at the end.
  std::map<std::string, std::map<int, std::uint64_t>> merged_buckets;
  for (Shard* shard : shards) {
    const std::lock_guard<std::mutex> lock(shard->mu);
    for (const auto& [key, cell] : shard->cells) {
      const std::string full = key.first + key.second.suffix();
      if (cell.has_counter) snap.counters[full] += cell.counter;
      if (cell.has_hist) {
        HistogramSnapshot& h = snap.histograms[full];
        if (h.count == 0) {
          h.min = cell.hist.min;
          h.max = cell.hist.max;
        } else {
          h.min = std::min(h.min, cell.hist.min);
          h.max = std::max(h.max, cell.hist.max);
        }
        h.count += cell.hist.count;
        h.sum += cell.hist.sum;
        auto& buckets = merged_buckets[full];
        for (const auto& [e, n] : cell.hist.buckets) buckets[e] += n;
      }
    }
  }
  for (auto& [full, buckets] : merged_buckets) {
    auto& out = snap.histograms[full].buckets;
    out.reserve(buckets.size());
    for (const auto& [e, n] : buckets)
      out.emplace_back(bucket_upper_bound(e), n);
  }
  return snap;
}

}  // namespace lck::obs

#pragma once
/// \file trace.hpp
/// \brief TraceRecorder: span-based tracing of the checkpoint lifecycle,
///        exported as Chrome trace_event JSON (load in Perfetto or
///        chrome://tracing).
///
/// The simulator's interesting timeline is *virtual*: iteration windows,
/// staged drains, tiered promotions and recovery windows are all positions
/// on the ResilientRunner's virtual clock, and their overlap is the whole
/// point of the async/tiered modes. So event timestamps are virtual seconds
/// (rendered as microseconds, the trace_event unit), and every event also
/// carries the real wall-clock milliseconds since the recorder was created
/// as a `wall_ms` argument — the dual timestamp that lets you correlate a
/// virtual-time span with when the host actually produced it.
///
/// Tracks (named threads in the viewer) are free-form strings: the runner
/// uses "solver", "ckpt", "drain", "promote-L2", "promote-L3", "recovery",
/// "failures", "residual". Each distinct track becomes one tid with a
/// thread_name metadata event, in first-use order (so sort_index keeps the
/// display stable).
///
/// Recording is mutex-guarded (the async drain thread and the owner both
/// record) and bounded: past `max_events` new events are counted as dropped
/// instead of growing the buffer without bound.

#include <cstddef>
#include <cstdint>
#include <chrono>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace lck::obs {

/// One key/value argument attached to a trace event. `is_number` selects
/// bare JSON rendering; otherwise the value is quoted.
struct TraceArg {
  std::string key;
  std::string value;
  bool is_number = false;

  static TraceArg num(std::string key, double v);
  static TraceArg str(std::string key, std::string v);
};

/// One recorded event, pre-serialization.
struct TraceEvent {
  enum class Phase : char {
    kComplete = 'X',  ///< span: ts + dur
    kInstant = 'i',   ///< point marker
    kCounter = 'C',   ///< sampled value, rendered as a track graph
  };
  Phase phase = Phase::kComplete;
  std::uint32_t track = 0;     ///< index into TraceRecorder::tracks()
  std::string name;
  double ts_virtual = 0.0;     ///< virtual seconds
  double dur_virtual = 0.0;    ///< virtual seconds (kComplete only)
  double wall_ms = 0.0;        ///< real ms since recorder construction
  double value = 0.0;          ///< kCounter only
  std::vector<TraceArg> args;
};

class TraceRecorder {
 public:
  explicit TraceRecorder(std::size_t max_events = std::size_t{1} << 20);

  /// Record a complete span [t0, t1] (virtual seconds) on `track`.
  void complete(std::string_view track, std::string_view name, double t0,
                double t1, std::vector<TraceArg> args = {});
  /// Record an instant marker at virtual time `t`.
  void instant(std::string_view track, std::string_view name, double t,
               std::vector<TraceArg> args = {});
  /// Record a counter sample (Perfetto renders the series as a graph).
  void counter(std::string_view track, std::string_view name, double t,
               double value);

  [[nodiscard]] std::size_t size() const;
  /// Events rejected because the buffer was full.
  [[nodiscard]] std::size_t dropped() const;
  /// Snapshot of the event buffer (copy; safe while recording continues).
  [[nodiscard]] std::vector<TraceEvent> events() const;
  /// Track names in tid order.
  [[nodiscard]] std::vector<std::string> tracks() const;

  /// Append this recorder's events to `out` as trace_event JSON objects
  /// (comma-separated, no enclosing array), under process id `pid` named
  /// `process_name`. Tracks become tids 1..N with thread_name metadata.
  void append_chrome_json(std::string& out, int pid,
                          const std::string& process_name) const;

  /// Write a complete single-process {"traceEvents": [...]} file.
  void write_chrome_trace(const std::string& path, int pid = 1,
                          const std::string& process_name = "lckpt") const;

 private:
  std::uint32_t track_id_locked(std::string_view track);
  void push_locked(TraceEvent ev);

  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
  std::vector<std::string> tracks_;
  std::size_t max_events_;
  std::size_t dropped_ = 0;
  std::chrono::steady_clock::time_point epoch_;
};

/// One recorder's contribution to a merged multi-process trace file.
struct TraceProcess {
  const TraceRecorder* recorder = nullptr;
  std::string name;  ///< process_name shown in the viewer
};

/// Write several recorders into one Chrome trace file, one pid per
/// recorder (e.g. resilient_solve merges its scheme x mode runs so their
/// timelines sit side by side in Perfetto).
void write_chrome_trace(const std::string& path,
                        const std::vector<TraceProcess>& processes);

}  // namespace lck::obs

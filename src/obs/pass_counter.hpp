#pragma once
/// \file pass_counter.hpp
/// \brief The one always-on counter: full-vector data passes performed by
///        the sparse/vector_ops kernels.
///
/// This is deliberately *not* a MetricsRegistry cell. The kernels are the
/// hottest code in the library and know nothing about any registry (there
/// may be several alive, or none); a single process-global relaxed atomic,
/// bumped once per kernel *call* (not per element), is the entire cost —
/// identical to the ad-hoc counter it replaces. The registry integration
/// happens one layer up: ResilientRunner samples this counter around the
/// solver loop and feeds the per-run delta into its registry as the
/// `solver.vector_passes` counter, and the legacy `vector_pass_count()` /
/// `reset_vector_pass_count()` functions in sparse/vector_ops.hpp are thin
/// shims over these, so existing tests keep working unchanged.

#include <atomic>
#include <cstdint>

namespace lck::obs {

namespace detail {
inline std::atomic<std::uint64_t> g_vector_passes{0};
}  // namespace detail

/// Record `n` full-vector passes (one relaxed add; called per kernel call).
inline void add_vector_passes(std::uint64_t n) noexcept {
  detail::g_vector_passes.fetch_add(n, std::memory_order_relaxed);
}

/// Total full-vector passes recorded by the process so far.
[[nodiscard]] inline std::uint64_t vector_passes() noexcept {
  return detail::g_vector_passes.load(std::memory_order_relaxed);
}

inline void reset_vector_passes() noexcept {
  detail::g_vector_passes.store(0, std::memory_order_relaxed);
}

}  // namespace lck::obs

#include "obs/observability.hpp"

#include "common/types.hpp"

namespace lck::obs {

void ObservabilityConfig::validate() const {
  if (trace_max_events < 1)
    throw config_error("obs.trace_max_events must be >= 1");
}

}  // namespace lck::obs

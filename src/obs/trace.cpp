#include "obs/trace.hpp"

#include <cstdio>
#include <fstream>

#include "common/types.hpp"

namespace lck::obs {
namespace {

std::string fmt_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  std::string s{buf};
  if (s.find("inf") != std::string::npos ||
      s.find("nan") != std::string::npos)
    return "0";
  return s;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
      continue;
    }
    out += c;
  }
  return out;
}

/// Virtual seconds -> trace_event microseconds.
std::string micros(double seconds) { return fmt_double(seconds * 1e6); }

}  // namespace

TraceArg TraceArg::num(std::string key, double v) {
  return {std::move(key), fmt_double(v), true};
}

TraceArg TraceArg::str(std::string key, std::string v) {
  return {std::move(key), std::move(v), false};
}

TraceRecorder::TraceRecorder(std::size_t max_events)
    : max_events_(max_events), epoch_(std::chrono::steady_clock::now()) {}

std::uint32_t TraceRecorder::track_id_locked(std::string_view track) {
  for (std::uint32_t i = 0; i < tracks_.size(); ++i)
    if (tracks_[i] == track) return i;
  tracks_.emplace_back(track);
  return static_cast<std::uint32_t>(tracks_.size() - 1);
}

void TraceRecorder::push_locked(TraceEvent ev) {
  if (events_.size() >= max_events_) {
    ++dropped_;
    return;
  }
  ev.wall_ms = std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - epoch_)
                   .count();
  events_.push_back(std::move(ev));
}

void TraceRecorder::complete(std::string_view track, std::string_view name,
                             double t0, double t1,
                             std::vector<TraceArg> args) {
  TraceEvent ev;
  ev.phase = TraceEvent::Phase::kComplete;
  ev.name = name;
  ev.ts_virtual = t0;
  ev.dur_virtual = t1 - t0;
  ev.args = std::move(args);
  const std::lock_guard<std::mutex> lock(mu_);
  ev.track = track_id_locked(track);
  push_locked(std::move(ev));
}

void TraceRecorder::instant(std::string_view track, std::string_view name,
                            double t, std::vector<TraceArg> args) {
  TraceEvent ev;
  ev.phase = TraceEvent::Phase::kInstant;
  ev.name = name;
  ev.ts_virtual = t;
  ev.args = std::move(args);
  const std::lock_guard<std::mutex> lock(mu_);
  ev.track = track_id_locked(track);
  push_locked(std::move(ev));
}

void TraceRecorder::counter(std::string_view track, std::string_view name,
                            double t, double value) {
  TraceEvent ev;
  ev.phase = TraceEvent::Phase::kCounter;
  ev.name = name;
  ev.ts_virtual = t;
  ev.value = value;
  const std::lock_guard<std::mutex> lock(mu_);
  ev.track = track_id_locked(track);
  push_locked(std::move(ev));
}

std::size_t TraceRecorder::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::size_t TraceRecorder::dropped() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

std::vector<TraceEvent> TraceRecorder::events() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

std::vector<std::string> TraceRecorder::tracks() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return tracks_;
}

void TraceRecorder::append_chrome_json(std::string& out, int pid,
                                       const std::string& process_name) const {
  std::vector<TraceEvent> events;
  std::vector<std::string> tracks;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    events = events_;
    tracks = tracks_;
  }
  const std::string pid_s = std::to_string(pid);
  const auto emit = [&out](const std::string& obj) {
    if (!out.empty()) out += ",\n";
    out += obj;
  };
  emit("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" + pid_s +
       ",\"tid\":0,\"args\":{\"name\":\"" + json_escape(process_name) +
       "\"}}");
  for (std::size_t i = 0; i < tracks.size(); ++i) {
    const std::string tid = std::to_string(i + 1);
    emit("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" + pid_s +
         ",\"tid\":" + tid + ",\"args\":{\"name\":\"" +
         json_escape(tracks[i]) + "\"}}");
    emit("{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":" + pid_s +
         ",\"tid\":" + tid + ",\"args\":{\"sort_index\":" + tid + "}}");
  }
  for (const TraceEvent& ev : events) {
    std::string obj = "{\"name\":\"" + json_escape(ev.name) + "\",\"ph\":\"";
    obj += static_cast<char>(ev.phase);
    obj += "\",\"pid\":" + pid_s +
           ",\"tid\":" + std::to_string(ev.track + 1) +
           ",\"ts\":" + micros(ev.ts_virtual);
    if (ev.phase == TraceEvent::Phase::kComplete)
      obj += ",\"dur\":" + micros(ev.dur_virtual);
    if (ev.phase == TraceEvent::Phase::kInstant) obj += ",\"s\":\"t\"";
    obj += ",\"args\":{";
    if (ev.phase == TraceEvent::Phase::kCounter) {
      obj += "\"value\":" + fmt_double(ev.value);
    } else {
      obj += "\"wall_ms\":" + fmt_double(ev.wall_ms);
      for (const TraceArg& a : ev.args) {
        obj += ",\"" + json_escape(a.key) + "\":";
        if (a.is_number)
          obj += a.value;
        else
          obj += "\"" + json_escape(a.value) + "\"";
      }
    }
    obj += "}}";
    emit(obj);
  }
}

void TraceRecorder::write_chrome_trace(const std::string& path, int pid,
                                       const std::string& process_name) const {
  std::string body;
  append_chrome_json(body, pid, process_name);
  std::ofstream f(path, std::ios::trunc);
  if (!f) throw config_error("trace: cannot open output path");
  f << "{\"traceEvents\":[\n" << body << "\n],\n"
    << "\"displayTimeUnit\":\"ms\"}\n";
  if (!f) throw config_error("trace: short write");
}

void write_chrome_trace(const std::string& path,
                        const std::vector<TraceProcess>& processes) {
  std::string body;
  int pid = 1;
  for (const TraceProcess& p : processes) {
    if (p.recorder != nullptr)
      p.recorder->append_chrome_json(body, pid, p.name);
    ++pid;
  }
  std::ofstream f(path, std::ios::trunc);
  if (!f) throw config_error("trace: cannot open output path");
  f << "{\"traceEvents\":[\n" << body << "\n],\n"
    << "\"displayTimeUnit\":\"ms\",\n"
    << "\"otherData\":{\"clock\":\"virtual\","
    << "\"note\":\"ts/dur are simulator virtual microseconds; each event's "
       "args.wall_ms is real host time\"}}\n";
  if (!f) throw config_error("trace: short write");
}

}  // namespace lck::obs

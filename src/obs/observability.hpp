#pragma once
/// \file observability.hpp
/// \brief ObservabilityConfig (the validated runtime gate) and obs::Sink
///        (the nullable handle instrumented code records through).
///
/// This header is deliberately lightweight — it forward-declares the
/// registry and recorder so hot headers (resilient_runner.hpp, the ckpt
/// layer) can carry a Sink member without pulling in the metrics/trace
/// implementation headers. Instrumentation sites include obs/metrics.hpp
/// and obs/trace.hpp from their .cpp files only.
///
/// The zero-overhead-when-disabled contract: with `metrics` and `trace`
/// both false (the default), the runner allocates neither object, every
/// Sink stays {nullptr, nullptr}, and each instrumentation site is one
/// pointer test. Spans observe, never branch — no simulation decision may
/// read observability state, so enabling tracing cannot perturb bit-stable
/// reruns (tests/test_obs.cpp proves streams and results stay
/// byte-identical either way).

#include <cstddef>

namespace lck::obs {

class MetricsRegistry;
class TraceRecorder;

/// Runtime gate for the observability subsystem, validated with the rest
/// of ResilienceConfig.
struct ObservabilityConfig {
  /// Allocate a MetricsRegistry and record counters/histograms/gauges.
  bool metrics = false;
  /// Allocate a TraceRecorder and record checkpoint-lifecycle spans.
  bool trace = false;
  /// Trace buffer cap: events past this are counted as dropped, not kept
  /// (a multi-hour run cannot eat the heap). Must be >= 1.
  std::size_t trace_max_events = std::size_t{1} << 20;

  [[nodiscard]] bool any() const noexcept { return metrics || trace; }

  /// Throws config_error naming every violated constraint.
  void validate() const;
};

/// Nullable recording handle passed down the checkpoint stack. Copyable,
/// two pointers; both null means "off" and every recording site guards
/// with one branch. The pointed-to objects are owned by the runner (or the
/// embedding application) and must outlive every component holding the
/// sink.
struct Sink {
  MetricsRegistry* metrics = nullptr;
  TraceRecorder* trace = nullptr;

  [[nodiscard]] bool enabled() const noexcept {
    return metrics != nullptr || trace != nullptr;
  }
};

}  // namespace lck::obs

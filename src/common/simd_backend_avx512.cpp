/// \file simd_backend_avx512.cpp
/// \brief AVX-512 (W = 8) backend: one __m512d pack is the entire logical
///        lane array of the reduction contract. Compiled with -mavx512f/vl/
///        dq/bw via per-file flags; constant-initialized table, so nothing
///        here executes on narrower CPUs unless dispatch selects it.

#include "common/simd_kernels.inc"
#include "common/simd_tables.hpp"

namespace lck::simd::detail {

const KernelOps kOpsAvx512 = make_table<pack<double, 8>>(Isa::kAvx512);

}  // namespace lck::simd::detail

#pragma once
/// \file types.hpp
/// \brief Fundamental type aliases and small utilities shared by all of lckpt.

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace lck {

/// Index type used for matrix/vector dimensions. Signed 64-bit so that
/// differences and OpenMP loop variables are well-defined.
using index_t = std::int64_t;

/// Byte type used by the compression and checkpointing layers.
using byte_t = std::uint8_t;

/// Exception thrown when a serialized stream (checkpoint file, compressed
/// buffer) is malformed or fails an integrity check.
class corrupt_stream_error : public std::runtime_error {
 public:
  explicit corrupt_stream_error(const std::string& what)
      : std::runtime_error("lck: corrupt stream: " + what) {}
};

/// Exception thrown on invalid user-supplied configuration.
class config_error : public std::invalid_argument {
 public:
  explicit config_error(const std::string& what)
      : std::invalid_argument("lck: bad config: " + what) {}
};

/// Require a condition at runtime; throws config_error on violation.
inline void require(bool cond, const char* msg) {
  if (!cond) throw config_error(msg);
}

}  // namespace lck

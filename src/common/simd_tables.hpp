#pragma once
/// \file simd_tables.hpp
/// \brief Internal: extern declarations of the per-ISA kernel tables, so the
///        backend TUs (compiled with per-file ISA flags) can define them with
///        external linkage and simd.cpp can dispatch over them. Not part of
///        the public surface — include simd.hpp instead.

#include "common/simd.hpp"

namespace lck::simd::detail {

extern const KernelOps kOpsScalar;
#if defined(LCK_SIMD_X86)
extern const KernelOps kOpsSse2;
extern const KernelOps kOpsAvx2;
extern const KernelOps kOpsAvx512;
#endif

}  // namespace lck::simd::detail

#pragma once
/// \file file_io.hpp
/// \brief Whole-file byte I/O shared by the disk-backed checkpoint stores:
///        bounds-checked read, and crash-safe write via the classic
///        write-to-temporary + rename() (atomic on POSIX) pattern.

#include <filesystem>
#include <fstream>
#include <span>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace lck {

/// Read an entire file. Throws corrupt_stream_error if the file cannot be
/// opened or the read comes up short.
[[nodiscard]] inline std::vector<byte_t> read_file_bytes(
    const std::string& path) {
  std::ifstream f(path, std::ios::binary | std::ios::ate);
  if (!f) throw corrupt_stream_error("file io: cannot open " + path);
  const auto size = static_cast<std::size_t>(f.tellg());
  f.seekg(0);
  std::vector<byte_t> data(size);
  f.read(reinterpret_cast<char*>(data.data()),
         static_cast<std::streamsize>(size));
  if (!f) throw corrupt_stream_error("file io: short read " + path);
  return data;
}

/// Write `data` to `path` atomically: the bytes land in `path` + ".tmp"
/// first and are rename()d into place, so readers never observe a torn
/// file and a crash leaves only a sweepable .tmp leftover.
inline void atomic_write_file(const std::string& path,
                              std::span<const byte_t> data) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
    if (!f) throw corrupt_stream_error("file io: cannot open " + tmp);
    f.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
    if (!f) throw corrupt_stream_error("file io: short write " + tmp);
  }
  std::filesystem::rename(tmp, path);
}

}  // namespace lck

#pragma once
/// \file severity.hpp
/// \brief Failure severity classes for the multi-level checkpoint hierarchy.
///
/// Real resilient runtimes (FTI, VeloC/SCR) distinguish how much of the
/// machine a failure takes down, because that decides which checkpoint tier
/// can serve the recovery: a process crash leaves node-local state intact,
/// a node loss destroys it but the partner copy survives, a partition loss
/// takes the partner nodes too, and only the parallel file system survives
/// a whole-system outage. Severities are ordered: a higher severity
/// destroys everything a lower one does.

#include <array>
#include <cstddef>

namespace lck {

/// Ordered failure severities (paper-adjacent FTI L1–L4 classification).
enum class FailureSeverity : int {
  kProcess = 0,   ///< One rank dies; node-local storage survives.
  kNode = 1,      ///< A node is lost with its local storage.
  kPartition = 2, ///< A group of nodes (incl. partners) is lost.
  kSystem = 3,    ///< Whole-system outage; only the PFS survives.
};

inline constexpr std::size_t kSeverityCount = 4;

inline constexpr std::array<FailureSeverity, kSeverityCount> kAllSeverities{
    FailureSeverity::kProcess, FailureSeverity::kNode,
    FailureSeverity::kPartition, FailureSeverity::kSystem};

[[nodiscard]] constexpr std::size_t severity_index(
    FailureSeverity s) noexcept {
  return static_cast<std::size_t>(s);
}

[[nodiscard]] constexpr const char* to_string(FailureSeverity s) noexcept {
  switch (s) {
    case FailureSeverity::kProcess: return "process";
    case FailureSeverity::kNode: return "node";
    case FailureSeverity::kPartition: return "partition";
    case FailureSeverity::kSystem: return "system";
  }
  return "?";
}

}  // namespace lck

/// \file simd_backend_avx2.cpp
/// \brief AVX2 (W = 4) backend with hardware i64 gathers. Compiled with
///        -mavx2 via per-file flags (see CMakeLists); the table initializer
///        is a constant expression, so no AVX2 instruction runs at static
///        init on CPUs that lack it — only dispatch can reach this code.

#include "common/simd_kernels.inc"
#include "common/simd_tables.hpp"

namespace lck::simd::detail {

const KernelOps kOpsAvx2 = make_table<pack<double, 4>>(Isa::kAvx2);

}  // namespace lck::simd::detail

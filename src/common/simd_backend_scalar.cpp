/// \file simd_backend_scalar.cpp
/// \brief Scalar (W = 1) backend — the portable fallback and the reference
///        the cross-ISA parity tests compare every wider backend against.
///        Compiled with -ffp-contract=off like the wide backends, so no
///        compiler-fused multiply-add can make it round differently.

#include "common/simd_kernels.inc"
#include "common/simd_tables.hpp"

namespace lck::simd::detail {

const KernelOps kOpsScalar = make_table<pack<double, 1>>(Isa::kScalar);

}  // namespace lck::simd::detail

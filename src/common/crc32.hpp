#pragma once
/// \file crc32.hpp
/// \brief CRC-32 (IEEE 802.3 polynomial, reflected) used for checkpoint and
///        compressed-stream integrity checks.

#include <cstdint>
#include <span>

#include "common/types.hpp"

namespace lck {

/// Incremental CRC-32 computation.
class Crc32 {
 public:
  /// Fold `data` into the running checksum.
  void update(std::span<const byte_t> data) noexcept {
    for (const byte_t b : data)
      state_ = table()[(state_ ^ b) & 0xffu] ^ (state_ >> 8);
  }

  /// Final checksum value.
  [[nodiscard]] std::uint32_t value() const noexcept { return state_ ^ 0xffffffffu; }

 private:
  static const std::uint32_t* table() noexcept;
  std::uint32_t state_ = 0xffffffffu;
};

/// One-shot CRC-32 of a byte span.
[[nodiscard]] std::uint32_t crc32(std::span<const byte_t> data) noexcept;

}  // namespace lck

#pragma once
/// \file byte_buffer.hpp
/// \brief Little-endian byte-oriented serialization helpers.
///
/// ByteWriter appends POD values / byte ranges to a growable buffer;
/// ByteReader consumes them with bounds checking. Used by the compressors
/// and by the checkpoint file format.

#include <cstring>
#include <limits>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "common/types.hpp"

namespace lck {

/// Growable output byte stream with little-endian primitive encoding.
class ByteWriter {
 public:
  ByteWriter() = default;
  explicit ByteWriter(std::size_t reserve_bytes) { buf_.reserve(reserve_bytes); }

  /// Append a trivially-copyable value verbatim (host endianness; the
  /// library only targets little-endian platforms, asserted in tests).
  /// resize+memcpy rather than insert(ptr, ptr): GCC 12 emits spurious
  /// -Wstringop-overflow warnings for the insert form at -O2.
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void put(const T& v) {
    const std::size_t old = buf_.size();
    buf_.resize(old + sizeof(T));
    std::memcpy(buf_.data() + old, &v, sizeof(T));
  }

  /// Append raw bytes.
  void put_bytes(std::span<const byte_t> bytes) {
    buf_.insert(buf_.end(), bytes.begin(), bytes.end());
  }

  /// Append a length-prefixed string (u32 length + bytes).
  void put_string(const std::string& s) {
    put(static_cast<std::uint32_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  /// Append `count` values from `data` verbatim.
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void put_array(const T* data, std::size_t count) {
    // `count * sizeof(T)` must not wrap: a wrapped product would resize the
    // buffer to a tiny size and silently emit a stream that decodes short.
    if (count > std::numeric_limits<std::size_t>::max() / sizeof(T))
      throw config_error("put_array: element count overflows byte size");
    const std::size_t old = buf_.size();
    buf_.resize(old + count * sizeof(T));
    if (count > 0) std::memcpy(buf_.data() + old, data, count * sizeof(T));
  }

  [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }
  [[nodiscard]] std::span<const byte_t> view() const noexcept { return buf_; }

  /// Move the accumulated bytes out, leaving the writer empty.
  [[nodiscard]] std::vector<byte_t> take() && { return std::move(buf_); }
  [[nodiscard]] std::vector<byte_t>& bytes() noexcept { return buf_; }

 private:
  std::vector<byte_t> buf_;
};

/// Bounds-checked input byte stream matching ByteWriter's encoding.
class ByteReader {
 public:
  explicit ByteReader(std::span<const byte_t> data) : data_(data) {}

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  T get() {
    T v;
    check(sizeof(T));
    std::memcpy(&v, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  std::string get_string() {
    // `n` is a u32 checked directly against the remaining bytes — no
    // multiply, so no wrap hazard here (audited alongside get_array).
    const auto n = get<std::uint32_t>();
    check(n);
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_), n);
    pos_ += n;
    return s;
  }

  /// Read `count` values into `out`.
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void get_array(T* out, std::size_t count) {
    if (count == 0) return;  // memcpy with null out/src is UB even for 0
    // Divide instead of multiplying: `count * sizeof(T)` wraps for a
    // corrupt huge `count`, and the wrapped product would pass check()
    // and drive memcpy with the un-wrapped (huge) length.
    if (count > remaining() / sizeof(T))
      throw corrupt_stream_error("array length exceeds remaining bytes");
    std::memcpy(out, data_.data() + pos_, count * sizeof(T));
    pos_ += count * sizeof(T);
  }

  /// View `count` raw bytes without copying and advance.
  std::span<const byte_t> get_bytes(std::size_t count) {
    check(count);
    auto s = data_.subspan(pos_, count);
    pos_ += count;
    return s;
  }

  [[nodiscard]] std::size_t remaining() const noexcept { return data_.size() - pos_; }
  [[nodiscard]] std::size_t position() const noexcept { return pos_; }
  [[nodiscard]] bool exhausted() const noexcept { return pos_ == data_.size(); }

 private:
  void check(std::size_t need) const {
    // need > size - pos, not pos + need > size: the latter wraps for
    // attacker-sized `need` and lets the read through.
    if (need > data_.size() - pos_)
      throw corrupt_stream_error("read past end of buffer");
  }
  std::span<const byte_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace lck

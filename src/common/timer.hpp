#pragma once
/// \file timer.hpp
/// \brief Real-time measurement helpers: monotonic wall-clock and process
///        CPU-time stopwatches, plus a ScopedTimer that reports into a
///        metrics histogram.
///
/// Note: experiment *virtual* time (cluster-scale checkpoint I/O, failure
/// arrivals) lives on the ResilientRunner's virtual clock; these timers are
/// only for measuring real local compute such as compression throughput.
/// Everything wall-clock here is std::chrono::steady_clock — never the
/// system clock, which can step backwards under NTP and break durations.

#include <algorithm>
#include <chrono>
#include <ctime>
#include <limits>
#include <string>
#include <string_view>
#include <utility>

#include "obs/metrics.hpp"

namespace lck {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}

  void reset() noexcept { start_ = clock::now(); }

  /// Seconds elapsed since construction or last reset().
  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Process CPU-time stopwatch (CLOCK_PROCESS_CPUTIME_ID): sums across
/// threads, so it measures *work*, not wall clock — the right basis for
/// fused-vs-unfused and overhead gates that must be stable on any core
/// count (bench/fig_kernel_speed, bench/fig_obs_overhead).
class CpuTimer {
 public:
  CpuTimer() : start_(now()) {}

  void reset() noexcept { start_ = now(); }

  [[nodiscard]] double seconds() const noexcept { return now() - start_; }

  /// Current process CPU time in seconds.
  [[nodiscard]] static double now() noexcept {
    timespec ts{};
    clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
    return static_cast<double>(ts.tv_sec) +
           1e-9 * static_cast<double>(ts.tv_nsec);
  }

 private:
  double start_;
};

/// Best-of-`trials` CPU time for `reps` calls of f — the bench-gate
/// measurement primitive (minimum over trials rejects scheduler noise).
template <typename F>
[[nodiscard]] double time_cpu(F&& f, int reps, int trials) {
  double best = std::numeric_limits<double>::infinity();
  for (int t = 0; t < trials; ++t) {
    const CpuTimer timer;
    for (int r = 0; r < reps; ++r) f();
    best = std::min(best, timer.seconds());
  }
  return best;
}

/// RAII span timer: measures steady-clock seconds from construction to
/// destruction and observes them into a registry histogram. Null registry
/// => complete no-op (the zero-overhead-when-disabled contract), so call
/// sites need no branch of their own:
///
///   {
///     obs::ScopedTimer t(sink.metrics, "ckpt.build_seconds",
///                        {{"format", "framed"}});
///     ... timed work ...
///   }
namespace obs {
class ScopedTimer {
 public:
  ScopedTimer(MetricsRegistry* registry, std::string_view name,
              LabelSet labels = {})
      : registry_(registry), labels_(std::move(labels)) {
    if (registry_ != nullptr) name_ = name;
  }
  ~ScopedTimer() {
    if (registry_ != nullptr)
      registry_->observe(name_, timer_.seconds(), labels_);
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Seconds elapsed so far (for call sites that also want the value).
  [[nodiscard]] double seconds() const noexcept { return timer_.seconds(); }

 private:
  MetricsRegistry* registry_;
  std::string name_;
  LabelSet labels_;
  WallTimer timer_;
};
}  // namespace obs

}  // namespace lck

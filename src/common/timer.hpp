#pragma once
/// \file timer.hpp
/// \brief Wall-clock timer for measuring real (host) execution time.
///
/// Note: experiment *virtual* time (cluster-scale checkpoint I/O, failure
/// arrivals) lives in sim/virtual_clock.hpp; this timer is only for
/// measuring real local compute such as compression throughput.

#include <chrono>

namespace lck {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}

  void reset() noexcept { start_ = clock::now(); }

  /// Seconds elapsed since construction or last reset().
  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace lck

#pragma once
/// \file stats.hpp
/// \brief Streaming statistics (Welford) and simple sample summaries used by
///        the benchmark harnesses and the failure-injection experiments.

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

namespace lck {

/// Numerically stable streaming mean/variance/min/max accumulator.
class RunningStats {
 public:
  void add(double x) noexcept {
    ++n_;
    const double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
    min_ = n_ == 1 ? x : std::min(min_, x);
    max_ = n_ == 1 ? x : std::max(max_, x);
  }

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

  /// Unbiased sample variance (0 for fewer than two samples).
  [[nodiscard]] double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const noexcept { return std::sqrt(variance()); }

  /// Standard error of the mean.
  [[nodiscard]] double sem() const noexcept {
    return n_ > 0 ? stddev() / std::sqrt(static_cast<double>(n_)) : 0.0;
  }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0, m2_ = 0.0, min_ = 0.0, max_ = 0.0;
};

/// Sample container with percentile queries (copies & sorts on demand).
class Samples {
 public:
  void add(double x) { xs_.push_back(x); }
  [[nodiscard]] std::size_t count() const noexcept { return xs_.size(); }

  [[nodiscard]] double mean() const noexcept {
    if (xs_.empty()) return 0.0;
    double s = 0.0;
    for (double x : xs_) s += x;
    return s / static_cast<double>(xs_.size());
  }

  /// Linear-interpolated percentile, p in [0, 100].
  [[nodiscard]] double percentile(double p) const {
    if (xs_.empty()) return 0.0;
    std::vector<double> sorted = xs_;
    std::sort(sorted.begin(), sorted.end());
    const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const auto hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
  }

  [[nodiscard]] double median() const { return percentile(50.0); }
  [[nodiscard]] const std::vector<double>& values() const noexcept { return xs_; }

 private:
  std::vector<double> xs_;
};

}  // namespace lck

#pragma once
/// \file simd.hpp
/// \brief Runtime-dispatched SIMD kernel engine: a fixed-width vector
///        abstraction (`pack<double, W>`), one-time CPUID dispatch, and the
///        per-ISA kernel table every hot loop in the library routes through.
///
/// Design contract — *lane-canonical reductions*: every reduction kernel in
/// the table accumulates a 16Ki-element block into a fixed array of 8
/// logical lanes, lane l taking elements with (i − block_begin) ≡ l (mod 8)
/// in increasing i order, the 8 lanes combined serially in lane order. The
/// scalar backend keeps 8 independent scalar accumulators; SSE2 keeps four
/// 2-wide packs; AVX2 two 4-wide packs; AVX-512 one 8-wide pack — all of
/// them realize the *same* association, so dot/norm/SpMV-norm results are
/// bit-identical across ISA choice, `LCK_FORCE_ISA` override, and thread
/// count. CSR row dots follow the same scheme for rows with
/// >= kSimdRowMinNnz nonzeros and stay plain-serial below it (short stencil
/// rows gain nothing from gathers, and the serial sum keeps their results
/// identical to the pre-SIMD kernels).
///
/// Backends are compiled in dedicated TUs with per-file ISA flags (see
/// CMakeLists); this header only defines the pack specializations a TU's
/// own feature macros allow, so it is safe to include anywhere.

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

#if defined(__SSE2__)
#include <emmintrin.h>
#endif
#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace lck::simd {

/// Instruction-set tiers the dispatcher can choose between. Ordering is
/// meaningful: a tier implies all lower ones.
enum class Isa : int { kScalar = 0, kSse2 = 1, kAvx2 = 2, kAvx512 = 3 };

/// Number of logical accumulator lanes in the lane-canonical reduction
/// contract (the AVX-512 double width; every backend folds into it).
inline constexpr int kReductionLanes = 8;

/// CSR rows with fewer nonzeros than this keep the plain serial row sum
/// (identical in every backend); longer rows use the 8-lane-canonical
/// gather kernel. Part of the bit-stability contract — do not change
/// without re-goldening reduction-dependent test vectors.
inline constexpr index_t kSimdRowMinNnz = 16;

[[nodiscard]] const char* isa_name(Isa isa) noexcept;

/// Strict parse of an ISA name ("scalar", "sse2", "avx2", "avx512").
/// Unknown names throw config_error listing the valid spellings, mirroring
/// make_compressor's unknown-codec diagnostics.
[[nodiscard]] Isa parse_isa(const std::string& name);

/// Highest tier the running CPU supports (CPUID).
[[nodiscard]] Isa supported_isa() noexcept;

/// Highest tier compiled into this binary (x86-64 builds carry all four;
/// other architectures carry only the scalar backend).
[[nodiscard]] Isa compiled_isa() noexcept;

/// The dispatcher's one-time choice: min(supported, compiled), overridable
/// by the LCK_FORCE_ISA environment variable (strict-parsed; forcing a tier
/// the CPU or binary lacks throws config_error). Cached after first use.
[[nodiscard]] Isa active_isa();

/// Test hook: pin dispatch to `isa` for the rest of the process (must be
/// <= min(supported, compiled)).
void force_isa(Isa isa);

/// Test hook: drop the cached dispatch choice so the next active_isa()
/// re-reads LCK_FORCE_ISA and CPUID.
void reset_isa();

// ---------------------------------------------------------------------------
// Kernel table: one entry per hot loop, filled per backend.
// ---------------------------------------------------------------------------

/// Per-ISA kernel table. Reduction kernels operate on the half-open element
/// range [begin, end) of one lane-canonical block and return that block's
/// partial (lane array combined serially); the drivers in vector_ops.hpp
/// and spmv_simd.cpp own the fixed 16Ki partition and the serial combine of
/// block partials.
struct KernelOps {
  Isa isa;

  // --- lane-canonical block reductions ------------------------------------
  /// Σ x[i]·y[i] over [begin, end).
  double (*sum_mul)(const double* x, const double* y, index_t begin,
                    index_t end);
  /// Σ x[i]² over [begin, end).
  double (*sum_sq)(const double* x, index_t begin, index_t end);
  /// max |x[i]| over [begin, end) (0 for an empty range).
  double (*max_abs)(const double* x, index_t begin, index_t end);
  /// max |x[i] − y[i]| over [begin, end).
  double (*max_abs_diff)(const double* x, const double* y, index_t begin,
                         index_t end);

  // --- fused update + reduction blocks ------------------------------------
  /// y[i] += a·x[i]; returns Σ y[i]² of the updated values.
  double (*axpy_sq)(double a, const double* x, double* y, index_t begin,
                    index_t end);
  /// x[i] += a·p[i]; r[i] += (−a)·q[i]; returns Σ r[i]² (CG inner update).
  double (*update_xr_sq)(double a, const double* p, const double* q, double* x,
                         double* r, index_t begin, index_t end);
  /// Two products sharing the left operand: *xy = Σ x·y, *xz = Σ x·z, each
  /// in its own lane-canonical accumulator chain.
  void (*sum_mul2)(const double* x, const double* y, const double* z,
                   index_t begin, index_t end, double* xy, double* xz);
  /// w[i] = x[i] + a·y[i]; returns Σ w[i]·z[i]. `z` may equal `w` (the
  /// fused waxpy_norm2); other overlap is undefined.
  double (*waxpy_mul)(const double* x, double a, const double* y, double* w,
                      const double* z, index_t begin, index_t end);
  /// z[i] = (z[i] + a·x[i]) + b·y[i]; returns Σ z[i]² (MINRES Lanczos).
  double (*axpy2_sq)(double a, const double* x, double b, const double* y,
                     double* z, index_t begin, index_t end);

  // --- CSR row kernels (gather-based above kSimdRowMinNnz) ----------------
  /// Dot of one CSR row with a dense vector (lane-canonical contract).
  double (*row_dot)(const index_t* col, const double* val, index_t len,
                    const double* x);
  /// y[r] = A·x row dots for rows [r0, r1).
  void (*spmv_rows)(const index_t* rp, const index_t* ci, const double* val,
                    const double* x, double* y, index_t r0, index_t r1);
  /// y[r] = b[r] − (A·x)[r] for rows [r0, r1).
  void (*residual_rows)(const index_t* rp, const index_t* ci, const double* val,
                        const double* b, const double* x, double* y, index_t r0,
                        index_t r1);
  /// Fused residual + squared-norm partial: y[r] = b[r] − (A·x)[r] for rows
  /// [r0, r1) while accumulating y[r]² into lane (r − r0) mod 8 — exactly
  /// the partial sum_sq(y, r0, r1) would produce, so the fused SpMV+norm
  /// pass is bit-identical to residual_rows followed by sum_sq.
  double (*residual_sq_rows)(const index_t* rp, const index_t* ci,
                             const double* val, const double* b,
                             const double* x, double* y, index_t r0,
                             index_t r1);

  // --- compression hot loops ----------------------------------------------
  /// Byte-shuffle (transpose) of 8-byte elements [e0, e1) of an n-element
  /// array: out[k·n + e] = in[e·8 + k]. Pure permutation, so every backend
  /// emits identical bytes.
  void (*shuffle8)(const byte_t* in, byte_t* out, std::size_t n,
                   std::size_t e0, std::size_t e1);
  /// Inverse of shuffle8: out[e·8 + k] = in[k·n + e].
  void (*unshuffle8)(const byte_t* in, byte_t* out, std::size_t n,
                     std::size_t e0, std::size_t e1);
  /// 8-way interleaved partial histogram: part has 8·alphabet slots, symbol
  /// stream position i increments part[(i mod 8)·alphabet + s[i]].
  void (*hist8)(const std::uint32_t* s, std::size_t n, std::uint64_t* part,
                std::size_t alphabet);
  /// Merge the 8 partial tables into out (integer sums, order-free).
  void (*hist8_merge)(const std::uint64_t* part, std::size_t alphabet,
                      std::uint64_t* out);
  /// Count of leading equal bytes of a and b, capped at limit (the LZ4
  /// match extender). Never reads past a+limit / b+limit.
  std::size_t (*match_len)(const byte_t* a, const byte_t* b,
                           std::size_t limit);

  // --- self test -----------------------------------------------------------
  /// Exercises this backend's pack ops against scalar arithmetic; returns
  /// false and fills *msg on the first mismatch (tests/test_simd.cpp).
  bool (*pack_selftest)(std::string* msg);
};

/// Kernel table of the active ISA (one-time dispatch; see active_isa()).
[[nodiscard]] const KernelOps& ops();

/// Kernel table of a specific compiled tier. Throws config_error if the
/// binary does not carry that backend; the caller is responsible for
/// checking supported_isa() before *executing* kernels from a tier above
/// the running CPU.
[[nodiscard]] const KernelOps& ops_for(Isa isa);

// ---------------------------------------------------------------------------
// pack<double, W>: the fixed-width vector abstraction the kernels are
// written against. Specializations appear only when the including TU's
// feature macros allow their intrinsics.
// ---------------------------------------------------------------------------

template <typename T, int W>
struct pack;

/// Scalar backend: W = 1, plain double arithmetic.
template <>
struct pack<double, 1> {
  static constexpr int width = 1;
  double v;

  static pack zero() noexcept { return {0.0}; }
  static pack broadcast(double x) noexcept { return {x}; }
  static pack load(const double* p) noexcept { return {*p}; }
  static pack gather(const double* base, const index_t* idx) noexcept {
    return {base[idx[0]]};
  }
  void store(double* p) const noexcept { *p = v; }
  [[nodiscard]] double lane(int) const noexcept { return v; }

  friend pack operator+(pack a, pack b) noexcept { return {a.v + b.v}; }
  friend pack operator-(pack a, pack b) noexcept { return {a.v - b.v}; }
  friend pack operator*(pack a, pack b) noexcept { return {a.v * b.v}; }
  static pack max(pack a, pack b) noexcept { return {b.v > a.v ? b.v : a.v}; }
  static pack abs(pack a) noexcept { return {std::fabs(a.v)}; }
};

#if defined(__SSE2__)
/// SSE2 backend: W = 2 (__m128d). Gathers are emulated with two scalar
/// loads — SSE2 has no gather instruction, but the dense kernels still
/// halve the instruction count.
template <>
struct pack<double, 2> {
  static constexpr int width = 2;
  __m128d v;

  static pack zero() noexcept { return {_mm_setzero_pd()}; }
  static pack broadcast(double x) noexcept { return {_mm_set1_pd(x)}; }
  static pack load(const double* p) noexcept { return {_mm_loadu_pd(p)}; }
  static pack gather(const double* base, const index_t* idx) noexcept {
    return {_mm_set_pd(base[idx[1]], base[idx[0]])};
  }
  void store(double* p) const noexcept { _mm_storeu_pd(p, v); }
  [[nodiscard]] double lane(int i) const noexcept {
    alignas(16) double t[2];
    _mm_store_pd(t, v);
    return t[i];
  }

  friend pack operator+(pack a, pack b) noexcept {
    return {_mm_add_pd(a.v, b.v)};
  }
  friend pack operator-(pack a, pack b) noexcept {
    return {_mm_sub_pd(a.v, b.v)};
  }
  friend pack operator*(pack a, pack b) noexcept {
    return {_mm_mul_pd(a.v, b.v)};
  }
  static pack max(pack a, pack b) noexcept { return {_mm_max_pd(a.v, b.v)}; }
  static pack abs(pack a) noexcept {
    return {_mm_andnot_pd(_mm_set1_pd(-0.0), a.v)};
  }
};
#endif  // __SSE2__

#if defined(__AVX2__)
/// AVX2 backend: W = 4 (__m256d) with hardware i64 gathers.
template <>
struct pack<double, 4> {
  static constexpr int width = 4;
  __m256d v;

  static pack zero() noexcept { return {_mm256_setzero_pd()}; }
  static pack broadcast(double x) noexcept { return {_mm256_set1_pd(x)}; }
  static pack load(const double* p) noexcept { return {_mm256_loadu_pd(p)}; }
  static pack gather(const double* base, const index_t* idx) noexcept {
    const __m256i vi =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx));
    return {_mm256_i64gather_pd(base, vi, 8)};
  }
  void store(double* p) const noexcept { _mm256_storeu_pd(p, v); }
  [[nodiscard]] double lane(int i) const noexcept {
    alignas(32) double t[4];
    _mm256_store_pd(t, v);
    return t[i];
  }

  friend pack operator+(pack a, pack b) noexcept {
    return {_mm256_add_pd(a.v, b.v)};
  }
  friend pack operator-(pack a, pack b) noexcept {
    return {_mm256_sub_pd(a.v, b.v)};
  }
  friend pack operator*(pack a, pack b) noexcept {
    return {_mm256_mul_pd(a.v, b.v)};
  }
  static pack max(pack a, pack b) noexcept {
    return {_mm256_max_pd(a.v, b.v)};
  }
  static pack abs(pack a) noexcept {
    return {_mm256_andnot_pd(_mm256_set1_pd(-0.0), a.v)};
  }
};
#endif  // __AVX2__

#if defined(__AVX512F__)
/// AVX-512 backend: W = 8 (__m512d) — one pack is the whole logical lane
/// array of the reduction contract.
template <>
struct pack<double, 8> {
  static constexpr int width = 8;
  __m512d v;

  static pack zero() noexcept { return {_mm512_setzero_pd()}; }
  static pack broadcast(double x) noexcept { return {_mm512_set1_pd(x)}; }
  static pack load(const double* p) noexcept { return {_mm512_loadu_pd(p)}; }
  static pack gather(const double* base, const index_t* idx) noexcept {
    const __m512i vi = _mm512_loadu_si512(idx);
    // Masked form with a zeroed source: same gather, but GCC's plain
    // _mm512_i64gather_pd expands with an uninitialized pass-through
    // operand that trips -Wmaybe-uninitialized.
    return {_mm512_mask_i64gather_pd(_mm512_setzero_pd(),
                                     static_cast<__mmask8>(0xff), vi, base, 8)};
  }
  void store(double* p) const noexcept { _mm512_storeu_pd(p, v); }
  [[nodiscard]] double lane(int i) const noexcept {
    alignas(64) double t[8];
    _mm512_store_pd(t, v);
    return t[i];
  }

  friend pack operator+(pack a, pack b) noexcept {
    return {_mm512_add_pd(a.v, b.v)};
  }
  friend pack operator-(pack a, pack b) noexcept {
    return {_mm512_sub_pd(a.v, b.v)};
  }
  friend pack operator*(pack a, pack b) noexcept {
    return {_mm512_mul_pd(a.v, b.v)};
  }
  static pack max(pack a, pack b) noexcept {
    return {_mm512_max_pd(a.v, b.v)};
  }
  static pack abs(pack a) noexcept { return {_mm512_abs_pd(a.v)}; }
};
#endif  // __AVX512F__

}  // namespace lck::simd

/// \file simd_backend_sse2.cpp
/// \brief SSE2 (W = 2) backend. x86-64 baseline — always executable there —
///        but still a distinct tier so LCK_FORCE_ISA=sse2 pins it for tests.

#include "common/simd_kernels.inc"
#include "common/simd_tables.hpp"

namespace lck::simd::detail {

const KernelOps kOpsSse2 = make_table<pack<double, 2>>(Isa::kSse2);

}  // namespace lck::simd::detail

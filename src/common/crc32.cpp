#include "common/crc32.hpp"

#include <array>

namespace lck {
namespace {

std::array<std::uint32_t, 256> make_table() noexcept {
  std::array<std::uint32_t, 256> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k)
      c = (c & 1u) ? (0xedb88320u ^ (c >> 1)) : (c >> 1);
    t[i] = c;
  }
  return t;
}

}  // namespace

const std::uint32_t* Crc32::table() noexcept {
  static const auto t = make_table();
  return t.data();
}

std::uint32_t crc32(std::span<const byte_t> data) noexcept {
  Crc32 c;
  c.update(data);
  return c.value();
}

}  // namespace lck

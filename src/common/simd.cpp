/// \file simd.cpp
/// \brief One-time CPUID dispatch over the per-ISA kernel tables, plus the
///        strict LCK_FORCE_ISA parsing and the test hooks.

#include "common/simd.hpp"

#include <atomic>
#include <cstdlib>

#include "common/simd_tables.hpp"

namespace lck::simd {

namespace {

/// Cached dispatch choice; nullptr = not resolved yet. Two threads racing
/// the first resolution both compute the same table, so the race is benign.
std::atomic<const KernelOps*> g_active{nullptr};

constexpr const char* kIsaNames[] = {"scalar", "sse2", "avx2", "avx512"};

std::string valid_isa_names() {
  std::string s;
  for (const char* n : kIsaNames) {
    if (!s.empty()) s += ", ";
    s += n;
  }
  return s;
}

Isa choose_isa() {
  Isa isa = supported_isa();
  if (isa > compiled_isa()) isa = compiled_isa();
  if (const char* env = std::getenv("LCK_FORCE_ISA"); env && *env) {
    const Isa forced = parse_isa(env);  // strict: throws listing valid names
    if (forced > supported_isa())
      throw config_error(std::string("LCK_FORCE_ISA=") + env +
                         ": this CPU only supports up to " +
                         isa_name(supported_isa()));
    if (forced > compiled_isa())
      throw config_error(std::string("LCK_FORCE_ISA=") + env +
                         ": this binary was built without the " +
                         std::string(env) + " backend (max " +
                         isa_name(compiled_isa()) + ")");
    isa = forced;
  }
  return isa;
}

}  // namespace

const char* isa_name(Isa isa) noexcept {
  const int i = static_cast<int>(isa);
  return (i >= 0 && i < 4) ? kIsaNames[i] : "unknown";
}

Isa parse_isa(const std::string& name) {
  for (int i = 0; i < 4; ++i)
    if (name == kIsaNames[i]) return static_cast<Isa>(i);
  throw config_error("unknown isa: '" + name + "' (valid: " +
                     valid_isa_names() + ")");
}

Isa supported_isa() noexcept {
#if defined(LCK_SIMD_X86) && (defined(__GNUC__) || defined(__clang__))
  if (__builtin_cpu_supports("avx512f")) return Isa::kAvx512;
  if (__builtin_cpu_supports("avx2")) return Isa::kAvx2;
  return Isa::kSse2;  // x86-64 baseline
#else
  return Isa::kScalar;
#endif
}

Isa compiled_isa() noexcept {
#if defined(LCK_SIMD_X86)
  return Isa::kAvx512;
#else
  return Isa::kScalar;
#endif
}

const KernelOps& ops_for(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return detail::kOpsScalar;
#if defined(LCK_SIMD_X86)
    case Isa::kSse2:
      return detail::kOpsSse2;
    case Isa::kAvx2:
      return detail::kOpsAvx2;
    case Isa::kAvx512:
      return detail::kOpsAvx512;
#endif
    default:
      throw config_error(std::string("simd backend not compiled in: ") +
                         isa_name(isa));
  }
}

const KernelOps& ops() {
  const KernelOps* p = g_active.load(std::memory_order_acquire);
  if (p == nullptr) {
    p = &ops_for(choose_isa());
    g_active.store(p, std::memory_order_release);
  }
  return *p;
}

Isa active_isa() { return ops().isa; }

void force_isa(Isa isa) {
  if (isa > supported_isa())
    throw config_error(std::string("force_isa: this CPU only supports up to ") +
                       isa_name(supported_isa()));
  g_active.store(&ops_for(isa), std::memory_order_release);
}

void reset_isa() { g_active.store(nullptr, std::memory_order_release); }

}  // namespace lck::simd

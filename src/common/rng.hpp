#pragma once
/// \file rng.hpp
/// \brief Deterministic, fast PRNG (xoshiro256**) plus distribution helpers.
///
/// All stochastic components (failure injection, workload generators, test
/// property sweeps) draw from this generator so that every experiment is
/// reproducible from a single seed.

#include <cmath>
#include <cstdint>
#include <limits>

namespace lck {

/// xoshiro256** by Blackman & Vigna — public-domain algorithm,
/// reimplemented here. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    std::uint64_t z = seed;
    for (auto& s : s_) {
      z += 0x9e3779b97f4a7c15ull;
      std::uint64_t w = z;
      w = (w ^ (w >> 30)) * 0xbf58476d1ce4e5b9ull;
      w = (w ^ (w >> 27)) * 0x94d049bb133111ebull;
      s = w ^ (w >> 31);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return std::numeric_limits<result_type>::max(); }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n).
  std::uint64_t uniform_index(std::uint64_t n) noexcept {
    return (*this)() % n;  // bias negligible for n << 2^64
  }

  /// Exponentially distributed value with the given mean (inter-arrival
  /// times of fail-stop failures, paper §5.4).
  double exponential(double mean) noexcept {
    double u;
    do {
      u = uniform();
    } while (u <= 0.0);
    return -mean * std::log(u);
  }

  /// Weibull-distributed value with the given shape k and scale λ
  /// (inverse-CDF transform). At k = 1 this consumes exactly the same
  /// uniform draw as exponential(λ) and returns the identical value, so
  /// seeds stay bit-stable when a Weibull config degenerates to
  /// exponential. k < 1 models bursty arrivals (heavy early mass), k > 1
  /// wear-out (arrivals cluster near λ).
  double weibull(double shape, double scale) noexcept {
    double u;
    do {
      u = uniform();
    } while (u <= 0.0);
    return scale * std::pow(-std::log(u), 1.0 / shape);
  }

  /// Standard normal via Box–Muller.
  double normal(double mu = 0.0, double sigma = 1.0) noexcept {
    if (have_cached_) {
      have_cached_ = false;
      return mu + sigma * cached_;
    }
    double u1;
    do {
      u1 = uniform();
    } while (u1 <= 0.0);
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double two_pi = 6.283185307179586476925286766559;
    cached_ = r * std::sin(two_pi * u2);
    have_cached_ = true;
    return mu + sigma * r * std::cos(two_pi * u2);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
  double cached_ = 0.0;
  bool have_cached_ = false;
};

}  // namespace lck

#pragma once
/// \file byte_stream.hpp
/// \brief Incremental byte sink/source abstractions.
///
/// ByteSink accepts bytes in arbitrary-sized increments; ByteSource hands
/// them back the same way. They decouple producers that want bounded
/// buffering (the frame writer/reader in ckpt/frame_stream.hpp) from the
/// storage backend: a sink may append to memory, to an open file, or to a
/// network socket without the producer materializing the whole stream.

#include <algorithm>
#include <cstring>
#include <span>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace lck {

/// Destination for an incrementally-produced byte stream.
class ByteSink {
 public:
  virtual ~ByteSink() = default;

  /// Append `bytes` to the stream. Throws on I/O failure.
  virtual void append(std::span<const byte_t> bytes) = 0;

  /// Seal the stream (flush buffers, publish the result). Must be called
  /// exactly once after the last append; a sink destroyed without finish()
  /// discards or abandons its partial output.
  virtual void finish() {}
};

/// Source of an incrementally-consumed byte stream.
class ByteSource {
 public:
  virtual ~ByteSource() = default;

  /// Read up to `dst.size()` bytes into `dst`; returns the number of bytes
  /// produced. Returns 0 only at end of stream. Throws on I/O failure.
  [[nodiscard]] virtual std::size_t read_some(std::span<byte_t> dst) = 0;
};

/// Sink that appends into a caller-owned vector.
class VectorSink final : public ByteSink {
 public:
  explicit VectorSink(std::vector<byte_t>& out) : out_(out) {}
  void append(std::span<const byte_t> bytes) override {
    out_.insert(out_.end(), bytes.begin(), bytes.end());
  }

 private:
  std::vector<byte_t>& out_;
};

/// Source over an in-memory byte range (the range must outlive the source).
class SpanSource final : public ByteSource {
 public:
  explicit SpanSource(std::span<const byte_t> data) : data_(data) {}

  [[nodiscard]] std::size_t read_some(std::span<byte_t> dst) override {
    const std::size_t n = std::min(dst.size(), data_.size() - pos_);
    if (n > 0) std::memcpy(dst.data(), data_.data() + pos_, n);
    pos_ += n;
    return n;
  }

 private:
  std::span<const byte_t> data_;
  std::size_t pos_ = 0;
};

/// Source that owns its backing bytes (e.g. a blob fetched from a store).
class OwningSource final : public ByteSource {
 public:
  explicit OwningSource(std::vector<byte_t> data) : data_(std::move(data)) {}

  [[nodiscard]] std::size_t read_some(std::span<byte_t> dst) override {
    const std::size_t n = std::min(dst.size(), data_.size() - pos_);
    if (n > 0) std::memcpy(dst.data(), data_.data() + pos_, n);
    pos_ += n;
    return n;
  }

 private:
  std::vector<byte_t> data_;
  std::size_t pos_ = 0;
};

/// Fill `dst` completely from `src`; returns bytes read (== dst.size()
/// unless the stream ended early).
inline std::size_t read_fully(ByteSource& src, std::span<byte_t> dst) {
  std::size_t got = 0;
  while (got < dst.size()) {
    const std::size_t n = src.read_some(dst.subspan(got));
    if (n == 0) break;
    got += n;
  }
  return got;
}

/// Drain the remainder of `src` into a vector (legacy whole-blob paths).
inline std::vector<byte_t> read_all(ByteSource& src) {
  std::vector<byte_t> out;
  byte_t chunk[1 << 16];
  for (;;) {
    const std::size_t n = src.read_some(chunk);
    if (n == 0) break;
    out.insert(out.end(), chunk, chunk + n);
  }
  return out;
}

}  // namespace lck

#pragma once
/// \file bit_io.hpp
/// \brief MSB-first bit-level writer/reader used by the entropy coders and
///        the ZFP-like bit-plane coder.

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hpp"

namespace lck {

/// Appends bits MSB-first into a byte vector.
class BitWriter {
 public:
  BitWriter() = default;

  /// Write the low `nbits` bits of `value`, most significant first.
  void write_bits(std::uint64_t value, unsigned nbits) {
    for (unsigned i = nbits; i-- > 0;) write_bit((value >> i) & 1u);
  }

  void write_bit(unsigned bit) {
    acc_ = static_cast<byte_t>((acc_ << 1) | (bit & 1u));
    if (++nacc_ == 8) {
      buf_.push_back(acc_);
      acc_ = 0;
      nacc_ = 0;
    }
  }

  /// Write a unary-coded value: `value` zero bits then a one bit.
  void write_unary(unsigned value) {
    for (unsigned i = 0; i < value; ++i) write_bit(0);
    write_bit(1);
  }

  /// Pad with zero bits to the next byte boundary and return the buffer.
  [[nodiscard]] std::vector<byte_t> finish() {
    if (nacc_ != 0) {
      buf_.push_back(static_cast<byte_t>(acc_ << (8 - nacc_)));
      acc_ = 0;
      nacc_ = 0;
    }
    return std::move(buf_);
  }

  /// Number of bits written so far.
  [[nodiscard]] std::size_t bit_count() const noexcept {
    return buf_.size() * 8 + nacc_;
  }

 private:
  std::vector<byte_t> buf_;
  byte_t acc_ = 0;
  unsigned nacc_ = 0;
};

/// Reads bits MSB-first from a byte span. Reading past the end throws.
class BitReader {
 public:
  explicit BitReader(std::span<const byte_t> data) : data_(data) {}

  unsigned read_bit() {
    const std::size_t byte = pos_ >> 3;
    if (byte >= data_.size()) throw corrupt_stream_error("bit read past end");
    const unsigned bit = (data_[byte] >> (7 - (pos_ & 7))) & 1u;
    ++pos_;
    return bit;
  }

  std::uint64_t read_bits(unsigned nbits) {
    std::uint64_t v = 0;
    for (unsigned i = 0; i < nbits; ++i) v = (v << 1) | read_bit();
    return v;
  }

  /// Read a unary-coded value (count of zero bits before the terminating 1).
  unsigned read_unary() {
    unsigned v = 0;
    while (read_bit() == 0) ++v;
    return v;
  }

  [[nodiscard]] std::size_t bit_position() const noexcept { return pos_; }
  [[nodiscard]] std::size_t bits_remaining() const noexcept {
    return data_.size() * 8 - pos_;
  }

 private:
  std::span<const byte_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace lck

#include "ckpt/tier/tiered_store.hpp"

#include <algorithm>
#include <utility>

#include "ckpt/async_writer.hpp"
#include "ckpt/chunk/chunk_codec.hpp"
#include "ckpt/chunk/dedup_store.hpp"
#include "ckpt/tier/partner_store.hpp"
#include "obs/metrics.hpp"

namespace lck {
namespace {

/// Upper bound on delta-chain walks inside the hierarchy. A real chain is
/// bounded by the manager's max_delta_chain; this only guards against a
/// corrupt blob whose base links form a loop.
constexpr int kMaxChainHops = 1024;

}  // namespace

TieredCheckpointStore::TieredCheckpointStore(std::vector<Level> levels,
                                             bool auto_promote)
    : levels_(std::move(levels)), auto_promote_(auto_promote) {
  require(!levels_.empty(), "tiered store: at least one level required");
  for (const auto& lv : levels_) {
    require(lv.store != nullptr, "tiered store: null level store");
    require(lv.spec.retention >= 1, "tiered store: retention must be >= 1");
    require(lv.spec.promote_every >= 1,
            "tiered store: promote_every must be >= 1");
  }
  committed_.resize(levels_.size());
  level_mu_.reserve(levels_.size());
  preloaded_.reserve(levels_.size());
  for (std::size_t i = 0; i < levels_.size(); ++i) {
    level_mu_.push_back(std::make_unique<std::mutex>());
    preloaded_.push_back(levels_[i].store->latest_version() >= 0);
  }
  // The promotion worker is created lazily by the first scheduled
  // promotion: a store whose promotions run on an external executor (the
  // service's shared pool) must never spawn its own thread.
}

TieredCheckpointStore::~TieredCheckpointStore() {
  // The promoter's destructor drains the queue before joining, and it is
  // the last-declared member, so jobs never touch dead levels. Reap first
  // so unfetched outcomes do not outlive the store. With an external
  // executor the drain waits for our in-flight tasks instead, so a shared
  // pool worker never runs against a destroyed store.
  if (promoter_ != nullptr || executor_ != nullptr) drain_promotions();
}

// ----- CheckpointStore interface --------------------------------------------

void TieredCheckpointStore::write(int version, std::span<const byte_t> data) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (const auto base = peek_delta_base(data))
      delta_base_[version] = *base;
    else
      delta_base_.erase(version);
    {
      const std::lock_guard<std::mutex> l0(*level_mu_[0]);
      levels_.front().store->write(version, data);
    }
    committed_.front().insert(version);
    if (obs_.metrics != nullptr) {
      obs_.metrics->add("tier.writes", 1.0,
                        {{"tier", levels_.front().spec.name}});
      obs_.metrics->observe("tier.write_bytes",
                            static_cast<double>(data.size()),
                            {{"tier", levels_.front().spec.name}});
    }
    prune_level_locked(0);
  }
  if (auto_promote_) schedule_promotions(version, data.size());
}

std::vector<byte_t> TieredCheckpointStore::read(int version) const {
  const std::lock_guard<std::mutex> lock(mu_);
  for (int lv = 0; lv < level_count(); ++lv)
    if (committed_at_locked(lv, version)) {
      std::vector<byte_t> data;
      {
        const std::lock_guard<std::mutex> ll(
            *level_mu_[static_cast<std::size_t>(lv)]);
        data = levels_[static_cast<std::size_t>(lv)].store->read(version);
      }
      if (obs_.metrics != nullptr) {
        const std::string& tier =
            levels_[static_cast<std::size_t>(lv)].spec.name;
        obs_.metrics->add("tier.reads", 1.0, {{"tier", tier}});
        obs_.metrics->observe("tier.read_bytes",
                              static_cast<double>(data.size()),
                              {{"tier", tier}});
      }
      return data;
    }
  throw corrupt_stream_error("tiered store: no tier holds version " +
                             std::to_string(version));
}

bool TieredCheckpointStore::exists(int version) const {
  const std::lock_guard<std::mutex> lock(mu_);
  for (int lv = 0; lv < level_count(); ++lv)
    if (committed_at_locked(lv, version)) return true;
  return false;
}

void TieredCheckpointStore::remove(int version) {
  const std::lock_guard<std::mutex> lock(mu_);
  ++epoch_;  // a stale in-flight promotion of this version must not land
  delta_base_.erase(version);
  for (std::size_t lv = 0; lv < levels_.size(); ++lv) {
    const std::lock_guard<std::mutex> ll(*level_mu_[lv]);
    levels_[lv].store->remove(version);
    committed_[lv].erase(version);
  }
}

int TieredCheckpointStore::latest_version() const {
  const std::lock_guard<std::mutex> lock(mu_);
  int latest = -1;
  for (std::size_t lv = 0; lv < levels_.size(); ++lv) {
    if (!committed_[lv].empty())
      latest = std::max(latest, *committed_[lv].rbegin());
    if (preloaded_[lv]) {
      const std::lock_guard<std::mutex> ll(*level_mu_[lv]);
      latest = std::max(latest, levels_[lv].store->latest_version());
    }
  }
  return latest;
}

void TieredCheckpointStore::write_pending(int version,
                                          std::span<const byte_t> data) {
  {
    // The base link is recorded now (the data is at hand); if the version
    // aborts, abort() retires the entry again.
    const std::lock_guard<std::mutex> lock(mu_);
    if (const auto base = peek_delta_base(data))
      delta_base_[version] = *base;
    else
      delta_base_.erase(version);
    pending_bytes_[version] = data.size();
  }
  // Runs on the async drain thread. The L1 backend's pending protocol is
  // thread-safe against committed-side reads by contract; the level lock
  // keeps it clear of concurrent committed-side mutations too.
  const std::lock_guard<std::mutex> ll(*level_mu_[0]);
  levels_.front().store->write_pending(version, data);
}

void TieredCheckpointStore::commit(int version) {
  std::size_t weight = 0;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    {
      const std::lock_guard<std::mutex> l0(*level_mu_[0]);
      levels_.front().store->commit(version);
    }
    committed_.front().insert(version);
    if (const auto it = pending_bytes_.find(version);
        it != pending_bytes_.end()) {
      weight = it->second;
      pending_bytes_.erase(it);
    }
    if (obs_.metrics != nullptr)
      obs_.metrics->add("tier.writes", 1.0,
                        {{"tier", levels_.front().spec.name}});
    prune_level_locked(0);
  }
  if (auto_promote_) schedule_promotions(version, weight);
}

void TieredCheckpointStore::abort(int version) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    delta_base_.erase(version);
    pending_bytes_.erase(version);
  }
  const std::lock_guard<std::mutex> ll(*level_mu_[0]);
  levels_.front().store->abort(version);
}

bool TieredCheckpointStore::has_pending(int version) const {
  const std::lock_guard<std::mutex> ll(*level_mu_[0]);
  return levels_.front().store->has_pending(version);
}

// ----- hierarchy introspection ----------------------------------------------

const TierSpec& TieredCheckpointStore::spec(int level) const {
  require(level >= 0 && level < level_count(), "tiered store: bad level");
  return levels_[static_cast<std::size_t>(level)].spec;
}

bool TieredCheckpointStore::committed_at_locked(int level, int version) const {
  const auto lv = static_cast<std::size_t>(level);
  // The set is the source of truth for versions written through this store;
  // the backend fallback only makes a reopened (pre-populated) DiskStore
  // tier readable without replaying its history — see preloaded_.
  if (committed_[lv].contains(version)) return true;
  if (!preloaded_[lv]) return false;
  const std::lock_guard<std::mutex> ll(*level_mu_[lv]);
  return levels_[lv].store->exists(version);
}

int TieredCheckpointStore::level_of(int version) const {
  const std::lock_guard<std::mutex> lock(mu_);
  for (int lv = 0; lv < level_count(); ++lv)
    if (committed_at_locked(lv, version)) return lv;
  return -1;
}

bool TieredCheckpointStore::exists_at(int level, int version) const {
  require(level >= 0 && level < level_count(), "tiered store: bad level");
  const std::lock_guard<std::mutex> lock(mu_);
  return committed_at_locked(level, version);
}

const CheckpointStore& TieredCheckpointStore::store_at(int level) const {
  require(level >= 0 && level < level_count(), "tiered store: bad level");
  return *levels_[static_cast<std::size_t>(level)].store;
}

int TieredCheckpointStore::latest_version_at(int level) const {
  require(level >= 0 && level < level_count(), "tiered store: bad level");
  const std::lock_guard<std::mutex> lock(mu_);
  const auto lv = static_cast<std::size_t>(level);
  int latest = committed_[lv].empty() ? -1 : *committed_[lv].rbegin();
  if (preloaded_[lv]) {
    const std::lock_guard<std::mutex> ll(*level_mu_[lv]);
    latest = std::max(latest, levels_[lv].store->latest_version());
  }
  return latest;
}

// ----- severity model -------------------------------------------------------

void TieredCheckpointStore::invalidate(FailureSeverity severity) {
  const std::lock_guard<std::mutex> lock(mu_);
  ++epoch_;  // in-flight promotions must not republish destroyed data
  if (obs_.metrics != nullptr)
    obs_.metrics->add("tier.invalidations", 1.0,
                      {{"severity", to_string(severity)}});
  for (std::size_t lv = 0; lv < levels_.size(); ++lv) {
    Level& level = levels_[lv];
    const std::lock_guard<std::mutex> ll(*level_mu_[lv]);
    if (severity > level.spec.survives) {
      if (obs_.metrics != nullptr && !committed_[lv].empty())
        obs_.metrics->add("tier.versions_destroyed",
                          static_cast<double>(committed_[lv].size()),
                          {{"tier", level.spec.name}});
      // Tier destroyed. Per-tier pruning keeps the backend in sync with
      // the committed set, so dropping the (<= retention-sized) set is the
      // whole job — except for a preloaded backend, whose pre-construction
      // contents must be swept by exhaustion once (it cannot enumerate).
      for (const int v : committed_[lv]) level.store->remove(v);
      committed_[lv].clear();
      if (preloaded_[lv]) {
        const int hi = level.store->latest_version();
        for (int v = 0; v <= hi; ++v) level.store->remove(v);
        preloaded_[lv] = false;  // backend now empty; fallback closed
      }
    } else if (severity == FailureSeverity::kNode) {
      // The tier survives a node loss *because* of its redundancy; make the
      // loss real so reads reconstruct from the surviving pieces.
      if (auto* partner = dynamic_cast<PartnerStore*>(level.store.get()))
        partner->fail_node(PartnerStore::kLocalHalf);
    }
  }
  // Base links of versions no surviving tier holds are dead; retire them so
  // repeated failures cannot grow the map for the life of the store.
  std::erase_if(delta_base_, [this](const auto& e) {
    for (std::size_t l = 0; l < levels_.size(); ++l) {
      if (committed_[l].contains(e.first)) return false;
      if (preloaded_[l]) {
        const std::lock_guard<std::mutex> lp(*level_mu_[l]);
        if (levels_[l].store->exists(e.first)) return false;
      }
    }
    return true;
  });
}

// ----- promotion ------------------------------------------------------------

int TieredCheckpointStore::delta_base_locked(int version) const {
  const auto it = delta_base_.find(version);
  return it != delta_base_.end() ? it->second : -1;
}

void TieredCheckpointStore::prune_level_locked(int level) {
  const auto lv = static_cast<std::size_t>(level);
  auto& set = committed_[lv];
  const int keep = levels_[lv].spec.retention;
  if (static_cast<int>(set.size()) <= keep) return;

  // Retention counts the newest `keep` versions, but a delta chain's bases
  // must outlive every retained version that references them: dropping a
  // base from this tier would leave its dependants unrecoverable here.
  std::set<int> live;
  int roots = 0;
  for (auto it = set.rbegin(); it != set.rend() && roots < keep;
       ++it, ++roots) {
    int v = *it;
    while (v >= 0 && !live.contains(v)) {
      live.insert(v);
      v = delta_base_locked(v);
    }
  }

  std::vector<int> victims;
  {
    const std::lock_guard<std::mutex> ll(*level_mu_[lv]);
    for (auto it = set.begin(); it != set.end();) {
      if (live.contains(*it)) {
        ++it;
        continue;
      }
      levels_[lv].store->remove(*it);
      victims.push_back(*it);
      it = set.erase(it);
    }
  }
  // A version pruned from its last tier can never be a chain base again;
  // retire its base-link entry so the map stays bounded over long runs. A
  // preloaded backend can serve versions outside the committed sets, so ask
  // it per victim rather than skipping the sweep wholesale.
  for (const int v : victims) {
    bool resident = false;
    for (std::size_t l = 0; l < levels_.size() && !resident; ++l) {
      resident = committed_[l].contains(v);
      if (!resident && preloaded_[l]) {
        const std::lock_guard<std::mutex> lp(*level_mu_[l]);
        resident = levels_[l].store->exists(v);
      }
    }
    if (!resident) delta_base_.erase(v);
  }
}

bool TieredCheckpointStore::promote_locked(int version, int level,
                                           int depth) {
  const auto lv = static_cast<std::size_t>(level);
  if (committed_[lv].contains(version)) return true;  // already promoted
  if (depth > kMaxChainHops) return false;            // corrupt base loop
  int src = -1;
  for (int i = level - 1; i >= 0; --i)
    if (committed_at_locked(i, version)) {
      src = i;
      break;
    }
  if (src < 0) return false;  // source invalidated or pruned meanwhile
  // A delta version is only recoverable at the target tier alongside its
  // chain bases; copy them first (deepest first), so the tier never holds
  // a dangling delta. A base that no longer exists anywhere below is a
  // best-effort skip — reads fall back across tiers per version.
  if (const int base = delta_base_locked(version); base >= 0)
    promote_locked(base, level, depth + 1);
  std::vector<byte_t> data;
  {
    const std::lock_guard<std::mutex> ls(
        *level_mu_[static_cast<std::size_t>(src)]);
    data = levels_[static_cast<std::size_t>(src)].store->read(version);
  }
  {
    const std::lock_guard<std::mutex> ld(*level_mu_[lv]);
    levels_[lv].store->write(version, data);
  }
  committed_[lv].insert(version);
  if (obs_.metrics != nullptr) {
    obs_.metrics->add("tier.promotes", 1.0,
                      {{"tier", levels_[lv].spec.name}});
    obs_.metrics->observe("tier.promote_bytes",
                          static_cast<double>(data.size()),
                          {{"tier", levels_[lv].spec.name}});
  }
  prune_level_locked(level);
  return true;
}

bool TieredCheckpointStore::promote_now(int version, int level) {
  require(level >= 1 && level < level_count(),
          "tiered store: promotion level must be in [1, levels)");
  const std::lock_guard<std::mutex> lock(mu_);
  return promote_locked(version, level);
}

void TieredCheckpointStore::promote_background(int version, int level,
                                               int depth) {
  if (depth > kMaxChainHops) return;  // corrupt base loop
  const auto lv = static_cast<std::size_t>(level);
  std::uint64_t epoch = 0;
  int src = -1;
  int base = -1;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (committed_[lv].contains(version)) return;  // already promoted
    epoch = epoch_;
    for (int i = level - 1; i >= 0; --i)
      if (committed_at_locked(i, version)) {
        src = i;
        break;
      }
    base = delta_base_locked(version);
  }
  if (src < 0) return;  // source invalidated or pruned meanwhile
  // Chain bases first (deepest first): the target tier must never hold a
  // delta whose bases it cannot also serve.
  if (base >= 0) promote_background(base, level, depth + 1);

  // Copy outside mu_ so slow interconnect/PFS backends never stall L1
  // traffic; the per-level locks serialize against same-tier access only.
  std::vector<byte_t> data;
  try {
    const std::lock_guard<std::mutex> ls(
        *level_mu_[static_cast<std::size_t>(src)]);
    data = levels_[static_cast<std::size_t>(src)].store->read(version);
  } catch (...) {  // pruned between the decision and the read: benign skip
    return;
  }
  try {
    const std::lock_guard<std::mutex> ld(*level_mu_[lv]);
    levels_[lv].store->write(version, data);
  } catch (...) {  // destination tier failed; lower tiers still hold it
    const std::lock_guard<std::mutex> lock(mu_);
    ++failed_promotions_;
    return;
  }

  const std::lock_guard<std::mutex> lock(mu_);
  if (epoch_ != epoch) {
    // invalidate()/remove() ran while we copied: the blob we just wrote
    // describes a world that no longer exists — take it back out.
    const std::lock_guard<std::mutex> ld(*level_mu_[lv]);
    levels_[lv].store->remove(version);
    return;
  }
  committed_[lv].insert(version);
  prune_level_locked(level);
}

void TieredCheckpointStore::reap_finished_locked() {
  // Promotion jobs never throw (errors are counted in failed_promotions_),
  // so waiting on a finished key returns immediately and cannot rethrow.
  while (promoter_ != nullptr && !finished_keys_.empty()) {
    const int key = finished_keys_.front();
    finished_keys_.pop_front();
    (void)promoter_->wait(key);
  }
}

void TieredCheckpointStore::run_promotion_pass(int version) {
  for (int lv = 1; lv < level_count(); ++lv) {
    if (version % levels_[static_cast<std::size_t>(lv)].spec.promote_every !=
        0)
      continue;
    promote_background(version, lv);
  }
}

void TieredCheckpointStore::schedule_promotions(int version,
                                                std::size_t weight) {
  std::unique_lock<std::mutex> lock(mu_);
  reap_finished_locked();
  // Back-pressure: a commit that would exceed the in-flight bound waits for
  // the promotion worker instead of queueing unbounded staged copies.
  promo_cv_.wait(lock, [&] { return promo_in_flight_ < max_inflight_; });
  ++promo_in_flight_;
  const int key = promo_seq_++;
  if (executor_ == nullptr && promoter_ == nullptr)
    promoter_ = std::make_unique<AsyncCheckpointWriter>();
  lock.unlock();

  if (executor_ != nullptr) {
    executor_->submit(fair_key_, weight, [this, version] {
      run_promotion_pass(version);
      // Decrement and notify under the lock: the destructor's drain may be
      // waiting on promo_in_flight_ == 0, and once it returns the store —
      // and this condition variable — are gone. After the unlock a pool
      // worker touches nothing of `this`.
      const std::lock_guard<std::mutex> lock(mu_);
      --promo_in_flight_;
      promo_cv_.notify_all();
    });
    return;
  }

  promoter_->submit(key, [this, version, key] {
    run_promotion_pass(version);
    {
      const std::lock_guard<std::mutex> lock(mu_);
      --promo_in_flight_;
      finished_keys_.push_back(key);
    }
    promo_cv_.notify_all();
    CheckpointRecord rec;
    rec.version = version;
    return rec;
  });
}

void TieredCheckpointStore::drain_promotions() {
  std::unique_lock<std::mutex> lock(mu_);
  promo_cv_.wait(lock, [&] { return promo_in_flight_ == 0; });
  reap_finished_locked();
}

std::size_t TieredCheckpointStore::promotions_in_flight() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return promo_in_flight_;
}

void TieredCheckpointStore::set_max_inflight_promotions(std::size_t n) {
  require(n >= 1, "tiered store: promotion bound must be >= 1");
  {
    const std::lock_guard<std::mutex> lock(mu_);
    max_inflight_ = n;
  }
  promo_cv_.notify_all();
}

void TieredCheckpointStore::set_observability(obs::Sink sink) {
  const std::lock_guard<std::mutex> lock(mu_);
  obs_ = sink;
  for (std::size_t lv = 0; lv < levels_.size(); ++lv) {
    const std::lock_guard<std::mutex> ll(*level_mu_[lv]);
    levels_[lv].store->set_observability(sink);
  }
}

std::size_t TieredCheckpointStore::failed_promotions() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return failed_promotions_;
}

void TieredCheckpointStore::set_promotion_executor(PromotionExecutor* exec,
                                                   int fair_key) {
  require(exec != nullptr, "tiered store: null promotion executor");
  const std::lock_guard<std::mutex> lock(mu_);
  require(promoter_ == nullptr && promo_in_flight_ == 0,
          "tiered store: install the promotion executor before any traffic");
  executor_ = exec;
  fair_key_ = fair_key;
}

// ----- canonical 3-level factory --------------------------------------------

std::unique_ptr<TieredCheckpointStore> make_tiered_store(
    int retention, int l2_promote_every, int l3_promote_every,
    const std::string& pfs_dir, bool auto_promote) {
  std::vector<TieredCheckpointStore::Level> levels;
  levels.push_back({TierSpec{"L1-local", FailureSeverity::kProcess, retention,
                             1},
                    std::make_unique<MemoryStore>()});
  levels.push_back({TierSpec{"L2-partner", FailureSeverity::kNode, retention,
                             l2_promote_every},
                    std::make_unique<PartnerStore>()});
  // The PFS tier is content-addressed: chunks identical across versions —
  // and across runs, when `pfs_dir` persists the chunk index — are stored
  // once (see dedup_store.hpp). Non-delta blobs pass through verbatim.
  auto pfs = std::make_unique<DedupChunkStore>(pfs_dir);
  levels.push_back({TierSpec{"L3-pfs", FailureSeverity::kSystem, retention,
                             l3_promote_every},
                    std::move(pfs)});
  return std::make_unique<TieredCheckpointStore>(std::move(levels),
                                                 auto_promote);
}

}  // namespace lck

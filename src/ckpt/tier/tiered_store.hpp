#pragma once
/// \file tiered_store.hpp
/// \brief Multi-level checkpoint store: N tiers of increasing durability and
///        cost (L1 node-local, L2 partner-copy, L3 PFS), FTI/VeloC style.
///
/// All writes (including the async pipeline's pending→committed protocol)
/// land in the cheapest tier, L1. Committed versions are then *promoted*
/// up the hierarchy — L1→L2→L3 — either by a background worker (an
/// `AsyncCheckpointWriter` running one promotion job per version, so the
/// solver never blocks on a PFS write) or, for the virtual-time
/// `ResilientRunner`, by explicit `promote_now()` calls issued when the
/// simulated promotion window elapses.
///
/// Failures carry a `FailureSeverity`; `invalidate(severity)` destroys the
/// contents of every tier that does not survive it (per its `TierSpec`),
/// after which `read()`/`latest_version()` transparently fall back to the
/// cheapest surviving tier — a process failure recovers from L1, a node
/// failure from the L2 partner copy, a partition or system failure from the
/// PFS-backed L3.

#include <condition_variable>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "ckpt/checkpoint_store.hpp"
#include "common/severity.hpp"

namespace lck {

class AsyncCheckpointWriter;

/// Where a tiered store's background promotion jobs run. By default each
/// store owns a single worker thread; the multi-tenant CheckpointService
/// instead installs one shared, fairness-scheduled pool across all jobs'
/// stores via set_promotion_executor(), so N tenants cannot each spawn a
/// thread and the pool can arbitrate who promotes next.
class PromotionExecutor {
 public:
  virtual ~PromotionExecutor() = default;
  /// Run `task` asynchronously. `fair_key` identifies the submitting client
  /// (one per tenant) and `weight_bytes` the job's cost, so a deficit-
  /// round-robin scheduler can keep heavy writers from starving light ones.
  /// Implementations must eventually run every accepted task exactly once.
  virtual void submit(int fair_key, std::size_t weight_bytes,
                      std::function<void()> task) = 0;
};

/// Static description of one tier of the hierarchy.
struct TierSpec {
  std::string name = "tier";
  /// Highest failure severity this tier's contents survive. A failure with
  /// severity strictly greater destroys the tier.
  FailureSeverity survives = FailureSeverity::kProcess;
  /// Committed versions kept in this tier (older ones are pruned as new
  /// versions arrive). Must be >= 1.
  int retention = 2;
  /// Auto-promotion filter: every `promote_every`-th version enters this
  /// tier (1 = all). Ignored for level 0, which receives every write.
  int promote_every = 1;
};

class TieredCheckpointStore final : public CheckpointStore {
 public:
  struct Level {
    TierSpec spec;
    std::unique_ptr<CheckpointStore> store;
  };

  /// `auto_promote` spawns the background promotion worker; pass false when
  /// an external driver (the virtual-time runner) calls `promote_now()`
  /// itself.
  explicit TieredCheckpointStore(std::vector<Level> levels,
                                 bool auto_promote = true);
  ~TieredCheckpointStore() override;

  // ----- CheckpointStore interface (writes target L1, reads fall back) ------
  void write(int version, std::span<const byte_t> data) override;
  [[nodiscard]] std::vector<byte_t> read(int version) const override;
  [[nodiscard]] bool exists(int version) const override;
  /// Removes `version` from *every* tier (discard of a torn write).
  void remove(int version) override;
  [[nodiscard]] int latest_version() const override;

  void write_pending(int version, std::span<const byte_t> data) override;
  void commit(int version) override;
  void abort(int version) override;
  [[nodiscard]] bool has_pending(int version) const override;

  // ----- hierarchy introspection --------------------------------------------
  [[nodiscard]] int level_count() const noexcept {
    return static_cast<int>(levels_.size());
  }
  [[nodiscard]] const TierSpec& spec(int level) const;
  /// Cheapest level holding a committed copy of `version`, or -1.
  [[nodiscard]] int level_of(int version) const;
  [[nodiscard]] bool exists_at(int level, int version) const;
  [[nodiscard]] int latest_version_at(int level) const;
  /// Backend of one level, e.g. to inspect the L3 DedupChunkStore's chunk
  /// index. External synchronization: do not touch it while background
  /// promotions are running.
  [[nodiscard]] const CheckpointStore& store_at(int level) const;

  // ----- severity model -----------------------------------------------------
  /// Destroy every tier whose spec does not survive `severity`. A node
  /// failure against a surviving PartnerStore tier additionally drops the
  /// lost node's pieces, so subsequent reads exercise the real
  /// parity-reconstruction path.
  void invalidate(FailureSeverity severity);

  // ----- promotion ----------------------------------------------------------
  /// Synchronously copy `version` into `level` from the nearest lower tier
  /// that still holds it. Returns false (no-op) when no source survives —
  /// e.g. the version was invalidated or pruned before the promotion ran.
  bool promote_now(int version, int level);

  /// Block until every queued background promotion has finished.
  void drain_promotions();

  /// Background promotion jobs queued or running.
  [[nodiscard]] std::size_t promotions_in_flight() const;

  /// Bound the background promotion queue: a commit that would exceed the
  /// bound blocks until a promotion finishes (back-pressure, so a slow PFS
  /// cannot accumulate unbounded staged copies). Must be >= 1.
  void set_max_inflight_promotions(std::size_t n);

  /// Promotions that failed inside the background worker (source tier read
  /// or destination write threw). The copy is skipped — lower tiers still
  /// hold the version — and the error is counted rather than propagated.
  [[nodiscard]] std::size_t failed_promotions() const;

  /// Attach observability handles; forwarded to every level backend (the
  /// L3 DedupChunkStore records its own chunk metrics). Call before any
  /// concurrent traffic, like the other configuration methods.
  void set_observability(obs::Sink sink) override;

  /// Route background promotions to `exec` (tagged `fair_key`) instead of a
  /// store-owned worker thread. Call before any traffic; the executor must
  /// outlive this store. The in-flight bound and drain_promotions() still
  /// apply — the destructor waits for this store's submitted tasks, so pool
  /// workers never touch a dead store.
  void set_promotion_executor(PromotionExecutor* exec, int fair_key);

 private:
  [[nodiscard]] bool committed_at_locked(int level, int version) const;
  bool promote_locked(int version, int level, int depth = 0);
  /// Background single-hop promotion: decides under mu_, copies under the
  /// per-level store locks only (so the owner's L1 writes and other-tier
  /// reads keep flowing), republishes under mu_ with an epoch check so a
  /// concurrent invalidate() cannot be undone by a stale copy.
  void promote_background(int version, int level, int depth = 0);
  void prune_level_locked(int level);
  /// Delta base of `version` (-1 full / non-delta), learned by peeking the
  /// blob header as it entered the hierarchy. Guarded by mu_.
  [[nodiscard]] int delta_base_locked(int version) const;
  /// Enqueue the background promotion of `version` through levels 1..N-1
  /// (per their promote_every filters). Blocks while the queue is full.
  /// `weight` is the version's blob size, forwarded to an installed
  /// executor for fairness scheduling.
  void schedule_promotions(int version, std::size_t weight);
  /// One queued job's work: promote `version` into every eligible tier.
  void run_promotion_pass(int version);
  void reap_finished_locked();

  std::vector<Level> levels_;
  const bool auto_promote_;
  obs::Sink obs_{};  ///< Observability handles (both null => off).

  /// Lock order: mu_ before any level mutex, never the reverse. mu_ guards
  /// the committed-version sets, the epoch and the promotion bookkeeping;
  /// level_mu_[i] guards levels_[i].store operations, so a slow background
  /// copy into L2/L3 never blocks L1 traffic.
  mutable std::mutex mu_;
  mutable std::vector<std::unique_ptr<std::mutex>> level_mu_;
  std::condition_variable promo_cv_;
  std::vector<std::set<int>> committed_;   ///< Per level.
  /// Levels whose backend held versions at construction (a reopened
  /// DiskStore): only these may satisfy reads from the backend without a
  /// committed_-set entry. Fresh backends must not — a stale background
  /// promotion writes the destination store before its epoch check, and
  /// the fallback would transiently resurrect an invalidated version.
  std::vector<bool> preloaded_;
  /// version → delta base version, for chain-aware pruning and promotion
  /// (absent or -1 ⇒ full / legacy blob). Learned at write/write_pending
  /// time by peeking the stream header.
  std::map<int, int> delta_base_;
  std::uint64_t epoch_ = 0;  ///< Bumped by invalidate()/remove().
  std::size_t promo_in_flight_ = 0;
  std::size_t max_inflight_ = 16;
  std::size_t failed_promotions_ = 0;
  int promo_seq_ = 0;                      ///< Unique writer job keys.
  std::deque<int> finished_keys_;          ///< Completed jobs awaiting reap.
  /// Blob size of each pending (write_pending, not yet committed) version:
  /// commit() forwards it as the promotion weight. Erased at commit/abort,
  /// so the map is bounded by the async pipeline's in-flight pendings.
  std::map<int, std::size_t> pending_bytes_;
  /// External promotion executor (non-owning) and this store's fairness
  /// key; nullptr ⇒ the store lazily spawns its own worker below.
  PromotionExecutor* executor_ = nullptr;
  int fair_key_ = 0;
  /// Declared last so the worker joins before the levels and mutex die.
  /// Created lazily on the first scheduled promotion (never when an
  /// external executor is installed).
  std::unique_ptr<AsyncCheckpointWriter> promoter_;
};

/// The canonical 3-level hierarchy: L1 node-local (MemoryStore), L2
/// partner-copy (PartnerStore), L3 PFS (DiskStore under `pfs_dir`, or a
/// MemoryStore stand-in when `pfs_dir` is empty).
[[nodiscard]] std::unique_ptr<TieredCheckpointStore> make_tiered_store(
    int retention = 2, int l2_promote_every = 1, int l3_promote_every = 1,
    const std::string& pfs_dir = "", bool auto_promote = true);

}  // namespace lck

#include "ckpt/tier/partner_store.hpp"

#include <algorithm>
#include <string>

namespace lck {

void PartnerStore::write(int version, std::span<const byte_t> data) {
  const std::size_t half = (data.size() + 1) / 2;
  Shards s;
  s.size = data.size();
  s.piece[kLocalHalf].assign(data.begin(),
                             data.begin() + static_cast<std::ptrdiff_t>(
                                                std::min(half, data.size())));
  s.piece[kLocalHalf].resize(half, byte_t{0});
  s.piece[kPartnerHalf].assign(
      data.begin() + static_cast<std::ptrdiff_t>(std::min(half, data.size())),
      data.end());
  s.piece[kPartnerHalf].resize(half, byte_t{0});
  s.piece[kParity].resize(half);
  for (std::size_t i = 0; i < half; ++i)
    s.piece[kParity][i] =
        static_cast<byte_t>(s.piece[kLocalHalf][i] ^ s.piece[kPartnerHalf][i]);
  s.present = {true, true, true};

  const std::lock_guard<std::mutex> lock(mu_);
  shards_[version] = std::move(s);
}

std::vector<byte_t> PartnerStore::read(int version) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = shards_.find(version);
  if (it == shards_.end())
    throw corrupt_stream_error("partner store: no checkpoint version " +
                               std::to_string(version));
  const Shards& s = it->second;
  const int alive = static_cast<int>(s.present[0]) +
                    static_cast<int>(s.present[1]) +
                    static_cast<int>(s.present[2]);
  if (alive < 2)
    throw corrupt_stream_error(
        "partner store: version " + std::to_string(version) +
        " lost two of three pieces (unrecoverable)");

  const std::size_t half = s.piece[kParity].size();
  auto reconstruct = [&](Placement missing) {
    const Placement a = missing == kLocalHalf ? kPartnerHalf : kLocalHalf;
    const Placement b = missing == kParity ? kPartnerHalf : kParity;
    std::vector<byte_t> out(half);
    for (std::size_t i = 0; i < half; ++i)
      out[i] = static_cast<byte_t>(s.piece[a][i] ^ s.piece[b][i]);
    return out;
  };

  std::vector<byte_t> lo =
      s.present[kLocalHalf] ? s.piece[kLocalHalf] : reconstruct(kLocalHalf);
  const std::vector<byte_t> hi = s.present[kPartnerHalf]
                                     ? s.piece[kPartnerHalf]
                                     : reconstruct(kPartnerHalf);
  lo.insert(lo.end(), hi.begin(), hi.end());
  lo.resize(s.size);  // strip the padding byte of odd-length blobs
  return lo;
}

bool PartnerStore::exists(int version) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = shards_.find(version);
  if (it == shards_.end()) return false;
  const auto& p = it->second.present;
  return static_cast<int>(p[0]) + static_cast<int>(p[1]) +
             static_cast<int>(p[2]) >=
         2;
}

void PartnerStore::remove(int version) {
  const std::lock_guard<std::mutex> lock(mu_);
  shards_.erase(version);
}

int PartnerStore::latest_version() const {
  const std::lock_guard<std::mutex> lock(mu_);
  for (auto it = shards_.rbegin(); it != shards_.rend(); ++it) {
    const auto& p = it->second.present;
    if (static_cast<int>(p[0]) + static_cast<int>(p[1]) +
            static_cast<int>(p[2]) >=
        2)
      return it->first;
  }
  return -1;
}

void PartnerStore::fail_node(Placement placement) {
  const std::lock_guard<std::mutex> lock(mu_);
  for (auto& [version, s] : shards_) {
    s.piece[placement].clear();
    s.piece[placement].shrink_to_fit();
    s.present[placement] = false;
  }
}

bool PartnerStore::piece_present(int version, Placement placement) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = shards_.find(version);
  return it != shards_.end() && it->second.present[placement];
}

}  // namespace lck

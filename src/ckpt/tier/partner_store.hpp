#pragma once
/// \file partner_store.hpp
/// \brief L2 "partner copy" checkpoint tier with erasure-style redundancy.
///
/// Models FTI's L2 scheme: each rank's checkpoint blob is split into two
/// halves placed on the local node and a partner node, plus an XOR parity
/// block on a second partner. Any single node loss leaves two of the three
/// pieces, from which `read()` reconstructs the blob bit-exactly — that is
/// what lets the L2 tier survive a `FailureSeverity::kNode` failure while
/// the plain node-local L1 tier does not.
///
/// The simulation keeps all pieces in memory; `fail_node()` drops the
/// pieces hosted on one of the three logical placements so tests (and the
/// tiered store's severity model) can exercise the reconstruction path for
/// real.

#include <array>
#include <map>
#include <mutex>

#include "ckpt/checkpoint_store.hpp"

namespace lck {

class PartnerStore final : public CheckpointStore {
 public:
  /// Logical placements of the three pieces of every blob.
  enum Placement : int {
    kLocalHalf = 0,    ///< First half, on the owning node.
    kPartnerHalf = 1,  ///< Second half, on the partner node.
    kParity = 2,       ///< XOR parity of the (padded) halves.
  };
  static constexpr int kPieces = 3;

  void write(int version, std::span<const byte_t> data) override;
  [[nodiscard]] std::vector<byte_t> read(int version) const override;
  [[nodiscard]] bool exists(int version) const override;
  void remove(int version) override;
  [[nodiscard]] int latest_version() const override;

  /// Drop every piece hosted on `placement` (a node loss). Committed blobs
  /// stay readable as long as two of their three pieces survive.
  void fail_node(Placement placement);

  /// True if `version`'s piece at `placement` is still present.
  [[nodiscard]] bool piece_present(int version, Placement placement) const;

 private:
  struct Shards {
    /// piece[0] and piece[1] are the padded halves, piece[2] the parity;
    /// all three have identical length ceil(size/2).
    std::array<std::vector<byte_t>, kPieces> piece;
    std::array<bool, kPieces> present{false, false, false};
    std::size_t size = 0;  ///< Original blob size in bytes.
  };

  mutable std::mutex mu_;
  std::map<int, Shards> shards_;
};

}  // namespace lck

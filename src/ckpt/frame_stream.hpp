#pragma once
/// \file frame_stream.hpp
/// \brief Bounded-memory framed checkpoint transport.
///
/// FrameWriter chops a logical byte stream into fixed-size frames
/// (default 1 MiB raw), compresses each frame independently with a fast
/// lossless style, and pushes the result through a small coalescing write
/// buffer straight into a store-provided ByteSink. Peak writer memory is
/// one raw frame + its compressed image + the write buffer — independent
/// of checkpoint size, unlike the legacy serializer that materialized the
/// whole stream (~2x state size) before the store saw a byte.
///
/// FrameReader is the inverse: it restores the logical stream
/// frame-by-frame, so recovery is bounded too. Every frame carries
/// {style, raw_len, comp_len, CRC-32}; truncation and corruption are
/// detected per-frame, and a mandatory all-zero terminator frame
/// distinguishes clean end-of-stream from a truncated tail.
///
/// On-wire layout (all integers little-endian):
///
///   stream  := magic:u32("FKPT") version:u16 style:u8 frame_raw_max:u32
///              frame* terminator
///   frame   := style:u8 raw_len:u32 comp_len:u32 crc32:u32
///              payload[comp_len]
///   terminator := 13 zero bytes (style=0, raw_len=0, comp_len=0, crc=0)
///
/// Frame styles follow the fd_checkpt convention: 1 = raw, 2 = LZ4-like,
/// 3 = deflate-like. Compressed styles fall back to raw per frame whenever
/// compression does not win, so comp_len < raw_len always holds for
/// styles 2/3 — the reader enforces it as a cheap corruption bound.

#include <cstdint>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "common/byte_stream.hpp"
#include "common/types.hpp"
#include "obs/observability.hpp"

namespace lck {

/// Magic prefix of framed checkpoint streams ("FKPT", little-endian).
inline constexpr std::uint32_t kFrameStreamMagic = 0x54504b46u;
inline constexpr std::uint16_t kFrameStreamVersion = 1;
inline constexpr std::size_t kFrameHeaderBytes = 13;
/// Hard upper bound on raw frame size accepted by the reader (defense
/// against corrupt headers demanding huge allocations).
inline constexpr std::size_t kMaxFrameRawBytes = std::size_t{1} << 28;
/// Strings inside checkpoint streams are variable names; cap them so a
/// corrupt length prefix cannot demand a multi-GiB allocation.
inline constexpr std::size_t kMaxStreamStringBytes = std::size_t{1} << 20;

/// Per-frame compression style (numbering follows fd_checkpt: RAW=1, LZ4=2).
enum class FrameStyle : std::uint8_t {
  kRaw = 1,      ///< verbatim payload
  kLz4 = 2,      ///< LZ4-class fast byte compressor
  kDeflate = 3,  ///< deflate-like LZ77+Huffman (slow, higher ratio)
};

/// Map a config-facing style name ("raw", "lz4", "deflate") to its enum.
/// Throws config_error on unknown names.
[[nodiscard]] FrameStyle frame_style_from_name(const std::string& name);
[[nodiscard]] const char* frame_style_name(FrameStyle style) noexcept;

/// Knobs for the streaming checkpoint path.
struct StreamingConfig {
  /// Use the framed bounded-memory serializer for non-delta checkpoints.
  /// Disabled, the legacy whole-stream serializer ("CKPT" magic) is used.
  bool enabled = true;
  /// Raw frame granularity, in double-precision elements (x8 = bytes).
  std::size_t frame_elems = std::size_t{128} * 1024;  // 1 MiB raw frames
  /// Coalescing write-buffer size handed to the store sink, in bytes.
  std::size_t wbuf_bytes = std::size_t{256} * 1024;
  /// Frame compression style: "raw", "lz4", or "deflate".
  std::string style = "lz4";

  /// Raw frame size in bytes.
  [[nodiscard]] std::size_t frame_bytes() const noexcept {
    return frame_elems * sizeof(double);
  }

  /// Throws config_error naming every violated constraint.
  void validate() const;
};

/// Streams a logical byte sequence into `sink` as compressed frames.
/// Call finish() exactly once after the last put; the destructor does not
/// write the terminator (an abandoned writer leaves a detectably-truncated
/// stream, which is the correct crash semantic).
class FrameWriter {
 public:
  /// `obs`: optional metrics handle; when its registry is non-null each
  /// flushed frame records its size and compression ratio (frame.* series).
  FrameWriter(ByteSink& sink, const StreamingConfig& cfg,
              obs::Sink obs = {});

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void put(const T& v) {
    put_bytes({reinterpret_cast<const byte_t*>(&v), sizeof(T)});
  }

  /// Length-prefixed string (u32 length + bytes), mirroring ByteWriter.
  void put_string(const std::string& s);

  /// Append raw bytes, flushing full frames as they fill.
  void put_bytes(std::span<const byte_t> bytes);

  /// Flush the partial frame, write the terminator, drain the write
  /// buffer. The writer is unusable afterwards. Does NOT call
  /// sink.finish() — sealing the sink is the caller's job.
  void finish();

  /// Total bytes emitted to the sink so far (the final stream size once
  /// finish() has run).
  [[nodiscard]] std::size_t stream_bytes() const noexcept { return total_; }

  /// High-water mark of bytes buffered inside the writer — raw frame +
  /// compressed image + write buffer + header. Tests assert this stays
  /// under wbuf_bytes + one frame (+ compression bound slack).
  [[nodiscard]] std::size_t peak_buffered_bytes() const noexcept {
    return peak_;
  }

 private:
  void flush_frame();
  void emit(std::span<const byte_t> bytes);
  void flush_wbuf();

  ByteSink& sink_;
  FrameStyle style_;
  std::size_t frame_bytes_;
  std::size_t wbuf_limit_;
  obs::Sink obs_{};
  std::vector<byte_t> raw_;   // current frame under construction
  std::vector<byte_t> comp_;  // per-frame compression scratch
  std::vector<byte_t> wbuf_;  // coalescing buffer in front of the sink
  std::size_t total_ = 0;
  std::size_t peak_ = 0;
  bool finished_ = false;
};

/// Restores the logical byte sequence from a framed stream, one frame at a
/// time. Throws corrupt_stream_error on any malformed, truncated, or
/// CRC-failing frame.
class FrameReader {
 public:
  /// `magic_already_consumed`: pass true when the caller peeked the 4-byte
  /// magic off `src` to dispatch between stream formats (the manager does).
  explicit FrameReader(ByteSource& src, bool magic_already_consumed = false);

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  T get() {
    T v;
    read_into({reinterpret_cast<byte_t*>(&v), sizeof(T)});
    return v;
  }

  std::string get_string();

  /// Fill `out` completely from the logical stream.
  void read_into(std::span<byte_t> out);

  /// Assert a clean end: terminator frame present and the source is
  /// exhausted. Throws corrupt_stream_error on truncation, a corrupted
  /// terminator, or trailing garbage.
  void expect_end();

  /// Compressed bytes consumed from the source (excludes a peeked magic).
  [[nodiscard]] std::size_t stream_bytes() const noexcept { return total_; }

 private:
  void next_frame();
  void read_exact(std::span<byte_t> dst, const char* what);

  ByteSource& src_;
  std::size_t frame_raw_max_ = 0;
  std::vector<byte_t> comp_;  // compressed frame scratch
  std::vector<byte_t> raw_;   // decoded current frame
  std::size_t rpos_ = 0;
  std::size_t total_ = 0;
  bool at_end_ = false;
};

}  // namespace lck

#include "ckpt/async_writer.hpp"

namespace lck {

AsyncCheckpointWriter::AsyncCheckpointWriter()
    : worker_([this] { worker_loop(); }) {}

AsyncCheckpointWriter::~AsyncCheckpointWriter() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  worker_.join();
}

void AsyncCheckpointWriter::submit(int version, Job job) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    require(!done_.contains(version),
            "async writer: version already has an unfetched result");
    for (const auto& [v, j] : queue_)
      require(v != version, "async writer: version already queued");
    queue_.emplace_back(version, std::move(job));
  }
  cv_.notify_all();
}

CheckpointRecord AsyncCheckpointWriter::wait(int version) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return done_.contains(version); });
  Outcome outcome = std::move(done_.at(version));
  done_.erase(version);
  if (outcome.error) std::rethrow_exception(outcome.error);
  return outcome.record;
}

bool AsyncCheckpointWriter::finished(int version) const {
  const std::lock_guard<std::mutex> lock(mu_);
  return done_.contains(version);
}

std::size_t AsyncCheckpointWriter::in_flight() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return queue_.size() + running_;
}

void AsyncCheckpointWriter::worker_loop() {
  for (;;) {
    std::pair<int, Job> next;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      // Drain every queued job before honoring stop_, so a destructor
      // racing a submit never strands a staged snapshot.
      if (queue_.empty()) return;
      next = std::move(queue_.front());
      queue_.pop_front();
      ++running_;
    }

    Outcome outcome;
    try {
      outcome.record = next.second();
    } catch (...) {
      outcome.error = std::current_exception();
    }

    {
      const std::lock_guard<std::mutex> lock(mu_);
      done_.emplace(next.first, std::move(outcome));
      --running_;
    }
    cv_.notify_all();
  }
}

}  // namespace lck

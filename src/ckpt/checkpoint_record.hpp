#pragma once
/// \file checkpoint_record.hpp
/// \brief Accounting record shared by the sync and async checkpoint paths.

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>

namespace lck {

/// Accounting for one checkpoint or recovery, consumed by the virtual-time
/// PFS model (sizes) and by the real-time measurements (seconds).
struct CheckpointRecord {
  int version = -1;
  std::size_t raw_bytes = 0;         ///< Sum of uncompressed payloads.
  std::size_t stored_bytes = 0;      ///< Bytes actually written/read. For a
                                     ///< delta-chain recovery: total bytes
                                     ///< read across the whole chain.
  double compress_seconds = 0.0;     ///< Real local (de)compression time.
  std::map<std::string, std::size_t> per_var_bytes;  ///< Stored size by name.

  // ----- delta (chunked) checkpoints only -----------------------------------
  /// Base version this checkpoint's references resolve against, or -1 for a
  /// full checkpoint (also -1 for every legacy non-chunked checkpoint).
  int base_version = -1;
  /// Deltas between this version and the chain's full checkpoint (0 = full).
  std::uint32_t chain_len = 0;
  /// Chunk manifest entries across all vector variables (0 = legacy format).
  std::size_t chunks = 0;
  /// Chunks stored as references instead of payload bytes.
  std::size_t chunks_deduped = 0;
};

}  // namespace lck

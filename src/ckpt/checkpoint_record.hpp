#pragma once
/// \file checkpoint_record.hpp
/// \brief Accounting record shared by the sync and async checkpoint paths.

#include <cstddef>
#include <map>
#include <string>

namespace lck {

/// Accounting for one checkpoint or recovery, consumed by the virtual-time
/// PFS model (sizes) and by the real-time measurements (seconds).
struct CheckpointRecord {
  int version = -1;
  std::size_t raw_bytes = 0;         ///< Sum of uncompressed payloads.
  std::size_t stored_bytes = 0;      ///< Bytes actually written/read.
  double compress_seconds = 0.0;     ///< Real local (de)compression time.
  std::map<std::string, std::size_t> per_var_bytes;  ///< Stored size by name.
};

}  // namespace lck

#pragma once
/// \file chunk_codec.hpp
/// \brief Chunked, content-addressed checkpoint payload layer.
///
/// A delta-format checkpoint splits every protected vector into fixed-size
/// chunks of `chunk_elems` doubles, hashes each chunk's raw bytes (CRC-64)
/// and emits a manifest of per-chunk entries. A chunk whose content is
/// already available — in the previous committed checkpoint (the *base*)
/// or earlier in the same stream — is stored as a 9-byte *reference*
/// instead of its compressed payload; recovery re-materializes references
/// by walking the delta chain back towards the last full checkpoint.
///
/// Stream layout (ByteWriter little-endian):
///
///   u32 kDeltaMagic | u16 kDeltaFormatVersion | i32 base_version (-1 =
///   full/chain start) | u32 chain_len | u32 var_count
///   per var: i32 id | str name | u8 kind
///     kind 0 (vector): str comp_name | u64 elem_count | u64 chunk_elems |
///       u32 chunk_count | per chunk: u64 raw_hash | u8 tag
///         tag 0 (literal): u64 payload_size | u32 payload_crc32 | payload
///         tag 1 (ref): nothing — resolved by raw_hash within the chain
///     kind 1 (blob): u64 size | u32 crc32 | bytes (verbatim, never delta)
///
/// The legacy (non-delta) checkpoint format is untouched: with delta
/// encoding disabled the manager emits byte-identical streams to the
/// pre-chunk serializer, and recovery dispatches on the magic.

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/byte_buffer.hpp"
#include "compress/compressor.hpp"
#include "sparse/vector_ops.hpp"

namespace lck {

inline constexpr std::uint32_t kDeltaMagic = 0x54504b44u;  // "DKPT"
inline constexpr std::uint16_t kDeltaFormatVersion = 1;

enum class ChunkTag : std::uint8_t { kLiteral = 0, kRef = 1 };
enum class DeltaVarKind : std::uint8_t { kVector = 0, kBlob = 1 };

/// Shared fixed-size slicing arithmetic: how a vector of `elems` doubles
/// splits into chunks of `chunk_elems`. The delta chunk codec and the
/// streaming frame serializer (ckpt/frame_stream.hpp) both slice with this,
/// so the two payload layers agree on boundaries by construction.
struct ChunkGeometry {
  std::size_t elems = 0;
  std::size_t chunk_elems = 1;

  constexpr ChunkGeometry(std::size_t n, std::size_t chunk) noexcept
      : elems(n), chunk_elems(chunk == 0 ? 1 : chunk) {}

  [[nodiscard]] constexpr std::size_t count() const noexcept {
    return elems == 0 ? 0 : (elems + chunk_elems - 1) / chunk_elems;
  }
  [[nodiscard]] constexpr std::size_t begin(std::size_t c) const noexcept {
    return c * chunk_elems;
  }
  [[nodiscard]] constexpr std::size_t length(std::size_t c) const noexcept {
    return elems - begin(c) < chunk_elems ? elems - begin(c) : chunk_elems;
  }
};

/// True iff `stream` starts with the delta-format magic.
[[nodiscard]] bool is_delta_stream(std::span<const byte_t> stream) noexcept;

/// Base version of a delta-format stream without a full parse (used by the
/// tiered store to keep chain bases alive per level), or nullopt when the
/// blob is not delta-format.
[[nodiscard]] std::optional<int> peek_delta_base(
    std::span<const byte_t> stream) noexcept;

/// Per-variable raw-content chunk hashes of one encoded version — the
/// state a successor delta is computed against. The compressor name rides
/// along so a mid-run codec swap can never produce a reference to a
/// payload the new codec cannot decode.
struct VarChunkHashes {
  int id = 0;
  std::string comp_name;
  std::vector<std::uint64_t> hashes;
};

/// Everything a successor checkpoint needs to delta against a version.
struct ChunkBaseState {
  int version = -1;
  std::size_t chunk_elems = 0;
  std::uint32_t chain_len = 0;  ///< 0 for a full (chain-start) checkpoint.
  std::vector<VarChunkHashes> vars;

  /// Hashes usable as reference targets for variable `id` under compressor
  /// `comp_name` — null when the variable is new or its codec changed.
  [[nodiscard]] const std::vector<std::uint64_t>* hashes_for(
      int id, const std::string& comp_name) const {
    for (const auto& v : vars)
      if (v.id == id) return v.comp_name == comp_name ? &v.hashes : nullptr;
    return nullptr;
  }
};

/// Encoder accounting for one vector variable.
struct ChunkEncodeStats {
  std::size_t chunks = 0;          ///< Total manifest entries.
  std::size_t refs = 0;            ///< Chunks stored as references.
  std::size_t literal_bytes = 0;   ///< Compressed payload bytes emitted.
};

/// Encode one vector as a chunk manifest into `out`. `base_hashes` is the
/// same variable's hash list in the base version (null ⇒ every chunk is a
/// literal candidate); chunks whose hash appears in the base or earlier in
/// this stream become references. Literal chunks are compressed with `comp`
/// concurrently (deterministic: the literal/ref decision and the emitted
/// bytes depend only on the data). Appends this version's hash list to
/// `out_hashes`.
ChunkEncodeStats encode_chunked_vector(
    ByteWriter& out, std::span<const double> vec, const Compressor& comp,
    std::size_t chunk_elems, const std::vector<std::uint64_t>* base_hashes,
    std::vector<std::uint64_t>& out_hashes);

// ----- parsed view of a delta stream ----------------------------------------

struct ParsedChunk {
  std::uint64_t hash = 0;
  ChunkTag tag = ChunkTag::kLiteral;
  std::span<const byte_t> payload;  ///< Literal only; views into the stream.
};

struct ParsedDeltaVar {
  int id = 0;
  std::string name;
  DeltaVarKind kind = DeltaVarKind::kVector;
  // kind == kVector:
  std::string comp_name;
  std::uint64_t elem_count = 0;
  std::uint64_t chunk_elems = 0;
  std::vector<ParsedChunk> chunks;
  // kind == kBlob:
  std::span<const byte_t> blob;  ///< Views into the stream.
};

struct ParsedDeltaStream {
  int base_version = -1;
  std::uint32_t chain_len = 0;
  std::vector<ParsedDeltaVar> vars;
};

/// Parse (and CRC-verify every literal payload of) a delta-format stream,
/// cross-validating each vector's chunk geometry (elem_count, chunk_elems,
/// chunk_count must agree). The returned spans view into `stream`, which
/// must outlive the result. Throws corrupt_stream_error on malformed input
/// or CRC mismatch.
[[nodiscard]] ParsedDeltaStream parse_delta_stream(
    std::span<const byte_t> stream);

}  // namespace lck

#include "ckpt/chunk/chunk_codec.hpp"

#include <unordered_set>

#include "ckpt/chunk/chunk_hash.hpp"
#include "common/crc32.hpp"
#include "parallel/parallel_for.hpp"

namespace lck {

bool is_delta_stream(std::span<const byte_t> stream) noexcept {
  if (stream.size() < sizeof(std::uint32_t)) return false;
  std::uint32_t magic;
  std::memcpy(&magic, stream.data(), sizeof magic);
  return magic == kDeltaMagic;
}

std::optional<int> peek_delta_base(std::span<const byte_t> stream) noexcept {
  if (!is_delta_stream(stream)) return std::nullopt;
  constexpr std::size_t off = sizeof(std::uint32_t) + sizeof(std::uint16_t);
  if (stream.size() < off + sizeof(std::int32_t)) return std::nullopt;
  std::int32_t base;
  std::memcpy(&base, stream.data() + off, sizeof base);
  return static_cast<int>(base);
}

ChunkEncodeStats encode_chunked_vector(
    ByteWriter& out, std::span<const double> vec, const Compressor& comp,
    std::size_t chunk_elems, const std::vector<std::uint64_t>* base_hashes,
    std::vector<std::uint64_t>& out_hashes) {
  require(chunk_elems >= 1, "chunk codec: chunk_elems must be >= 1");
  const std::size_t n = vec.size();
  const ChunkGeometry geo(n, chunk_elems);
  const std::size_t chunks = geo.count();

  // Hash every chunk's raw bytes concurrently; the hash list is a pure
  // function of the data, so sync and async drains agree bit-for-bit.
  std::vector<std::uint64_t> hashes(chunks);
  parallel_for(0, static_cast<index_t>(chunks), [&](index_t c) {
    const auto i = static_cast<std::size_t>(c);
    hashes[i] = crc64(
        {reinterpret_cast<const byte_t*>(vec.data() + geo.begin(i)),
         geo.length(i) * sizeof(double)});
  });

  // Literal/ref decision in manifest order: a chunk references the base
  // version's content or a literal emitted earlier in this same stream
  // (within-version dedup, e.g. constant regions).
  std::unordered_set<std::uint64_t> available;
  if (base_hashes != nullptr)
    available.insert(base_hashes->begin(), base_hashes->end());
  std::vector<std::uint8_t> is_ref(chunks, 0);
  for (std::size_t c = 0; c < chunks; ++c) {
    if (available.contains(hashes[c]))
      is_ref[c] = 1;
    else
      available.insert(hashes[c]);
  }

  // Compress the literal chunks concurrently (each payload depends only on
  // its chunk's doubles, so the stream stays deterministic).
  std::vector<std::vector<byte_t>> payloads(chunks);
  parallel_for(0, static_cast<index_t>(chunks), [&](index_t c) {
    const auto i = static_cast<std::size_t>(c);
    if (is_ref[i]) return;
    payloads[i] = comp.compress(vec.subspan(geo.begin(i), geo.length(i)));
  });

  ChunkEncodeStats stats;
  stats.chunks = chunks;
  out.put_string(comp.name());
  out.put(static_cast<std::uint64_t>(n));
  out.put(static_cast<std::uint64_t>(chunk_elems));
  out.put(static_cast<std::uint32_t>(chunks));
  for (std::size_t c = 0; c < chunks; ++c) {
    out.put(hashes[c]);
    out.put(static_cast<std::uint8_t>(is_ref[c] ? ChunkTag::kRef
                                                : ChunkTag::kLiteral));
    if (is_ref[c]) {
      ++stats.refs;
      continue;
    }
    out.put(static_cast<std::uint64_t>(payloads[c].size()));
    out.put(crc32(payloads[c]));
    out.put_bytes(payloads[c]);
    stats.literal_bytes += payloads[c].size();
  }
  out_hashes = std::move(hashes);
  return stats;
}

ParsedDeltaStream parse_delta_stream(std::span<const byte_t> stream) {
  ByteReader in(stream);
  if (in.get<std::uint32_t>() != kDeltaMagic)
    throw corrupt_stream_error("delta stream: bad magic");
  if (in.get<std::uint16_t>() != kDeltaFormatVersion)
    throw corrupt_stream_error("delta stream: unsupported format version");

  ParsedDeltaStream parsed;
  parsed.base_version = in.get<std::int32_t>();
  parsed.chain_len = in.get<std::uint32_t>();
  const auto var_count = in.get<std::uint32_t>();
  parsed.vars.reserve(var_count);
  for (std::uint32_t v = 0; v < var_count; ++v) {
    ParsedDeltaVar var;
    var.id = in.get<std::int32_t>();
    var.name = in.get_string();
    var.kind = static_cast<DeltaVarKind>(in.get<std::uint8_t>());
    if (var.kind == DeltaVarKind::kVector) {
      var.comp_name = in.get_string();
      var.elem_count = in.get<std::uint64_t>();
      var.chunk_elems = in.get<std::uint64_t>();
      const auto chunk_count = in.get<std::uint32_t>();
      // The header carries no CRC (only chunk payloads do), so the chunk
      // geometry must be cross-validated before anyone slices a recovery
      // target with it: an inconsistent elem_count/chunk_elems/chunk_count
      // triple would otherwise underflow the tail-length arithmetic and
      // write out of bounds.
      const ChunkGeometry geo(static_cast<std::size_t>(var.elem_count),
                              static_cast<std::size_t>(var.chunk_elems));
      if ((var.elem_count > 0 && var.chunk_elems == 0) ||
          chunk_count != geo.count())
        throw corrupt_stream_error(
            "delta stream: inconsistent chunk geometry for variable " +
            var.name);
      var.chunks.reserve(chunk_count);
      for (std::uint32_t c = 0; c < chunk_count; ++c) {
        ParsedChunk chunk;
        chunk.hash = in.get<std::uint64_t>();
        chunk.tag = static_cast<ChunkTag>(in.get<std::uint8_t>());
        if (chunk.tag == ChunkTag::kLiteral) {
          const auto payload_size = in.get<std::uint64_t>();
          const auto stored_crc = in.get<std::uint32_t>();
          chunk.payload = in.get_bytes(payload_size);
          if (crc32(chunk.payload) != stored_crc)
            throw corrupt_stream_error(
                "delta stream: chunk CRC mismatch for variable " + var.name);
        } else if (chunk.tag != ChunkTag::kRef) {
          throw corrupt_stream_error("delta stream: unknown chunk tag");
        }
        var.chunks.push_back(chunk);
      }
    } else if (var.kind == DeltaVarKind::kBlob) {
      const auto size = in.get<std::uint64_t>();
      const auto stored_crc = in.get<std::uint32_t>();
      var.blob = in.get_bytes(size);
      if (crc32(var.blob) != stored_crc)
        throw corrupt_stream_error(
            "delta stream: blob CRC mismatch for variable " + var.name);
    } else {
      throw corrupt_stream_error("delta stream: unknown variable kind");
    }
    parsed.vars.push_back(std::move(var));
  }
  return parsed;
}

}  // namespace lck

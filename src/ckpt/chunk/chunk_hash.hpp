#pragma once
/// \file chunk_hash.hpp
/// \brief CRC-64 (ECMA-182 polynomial, reflected — the XZ variant) used as
///        the content address of checkpoint chunks.
///
/// The delta checkpoint layer identifies a chunk by the CRC-64 of its raw
/// bytes: two chunks with the same hash are treated as the same content
/// (standard content-addressed-storage assumption; the 64-bit space makes
/// an accidental collision across a checkpoint history vanishingly
/// unlikely, and a cross-length collision is caught by the compressor's
/// embedded element count at decode time).

#include <cstdint>
#include <span>

#include "common/types.hpp"

namespace lck {

/// Incremental CRC-64/XZ computation (poly 0x42F0E1EBA9EA3693, reflected,
/// init/xorout all-ones).
class Crc64 {
 public:
  void update(std::span<const byte_t> data) noexcept {
    for (const byte_t b : data)
      state_ = table()[(state_ ^ b) & 0xffu] ^ (state_ >> 8);
  }

  [[nodiscard]] std::uint64_t value() const noexcept {
    return state_ ^ 0xffffffffffffffffull;
  }

 private:
  static const std::uint64_t* table() noexcept;
  std::uint64_t state_ = 0xffffffffffffffffull;
};

/// One-shot CRC-64 of a byte span.
[[nodiscard]] std::uint64_t crc64(std::span<const byte_t> data) noexcept;

}  // namespace lck

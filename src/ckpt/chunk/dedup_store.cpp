#include "ckpt/chunk/dedup_store.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "ckpt/chunk/chunk_codec.hpp"
#include "ckpt/chunk/chunk_hash.hpp"
#include "common/byte_buffer.hpp"
#include "common/file_io.hpp"
#include "obs/metrics.hpp"

namespace lck {

namespace fs = std::filesystem;

namespace {

constexpr std::uint32_t kSkelMagic = 0x50554444u;  // "DDUP"

std::string hash_hex(std::uint64_t hash) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(hash));
  return buf;
}

}  // namespace

DedupChunkStore::DedupChunkStore(std::string dir) : dir_(std::move(dir)) {
  if (!dir_.empty()) load_from_dir();
}

std::string DedupChunkStore::skel_path(int version) const {
  return dir_ + "/skel_" + std::to_string(version) + ".lcks";
}

std::string DedupChunkStore::chunk_path(std::uint64_t hash) const {
  return dir_ + "/chunks/" + hash_hex(hash) + ".chk";
}

std::string DedupChunkStore::legacy_path(int version) const {
  return dir_ + "/ckpt_" + std::to_string(version) + ".lck";
}

void DedupChunkStore::add_chunk_ref(std::uint64_t hash,
                                    std::span<const byte_t> payload) {
  const auto it = chunks_.find(hash);
  if (it != chunks_.end()) {
    ++it->second.refs;
    ++hits_;
    bytes_saved_ += payload.size();
    if (obs_.metrics != nullptr) {
      obs_.metrics->add("chunk.hits", 1.0);
      obs_.metrics->add("chunk.bytes_saved",
                        static_cast<double>(payload.size()));
      obs_.metrics->add("chunk.ref_acquires", 1.0);
    }
    return;
  }
  Chunk c;
  c.size = payload.size();
  c.refs = 1;
  if (dir_.empty())
    c.bytes.assign(payload.begin(), payload.end());
  else
    atomic_write_file(chunk_path(hash), payload);
  chunks_.emplace(hash, std::move(c));
  if (obs_.metrics != nullptr) {
    obs_.metrics->add("chunk.misses", 1.0);
    obs_.metrics->add("chunk.ref_acquires", 1.0);
    obs_.metrics->observe("chunk.stored_bytes",
                          static_cast<double>(payload.size()));
  }
}

void DedupChunkStore::drop_chunk_ref(std::uint64_t hash) {
  const auto it = chunks_.find(hash);
  if (it == chunks_.end()) return;
  if (obs_.metrics != nullptr) obs_.metrics->add("chunk.ref_releases", 1.0);
  if (--it->second.refs <= 0) {
    if (!dir_.empty()) {
      std::error_code ec;
      fs::remove(chunk_path(hash), ec);
    }
    chunks_.erase(it);
  }
}

void DedupChunkStore::write(int version, std::span<const byte_t> data) {
  (void)write_counted(version, data);
}

DedupWriteStats DedupChunkStore::write_counted(int version,
                                               std::span<const byte_t> data) {
  Skeleton skel;
  skel.logical_size = data.size();
  bool split = false;
  if (is_delta_stream(data)) {
    try {
      const ParsedDeltaStream parsed = parse_delta_stream(data);
      std::size_t cursor = 0;
      for (const auto& var : parsed.vars) {
        if (var.kind != DeltaVarKind::kVector) continue;
        for (const auto& chunk : var.chunks) {
          if (chunk.tag != ChunkTag::kLiteral || chunk.payload.empty())
            continue;
          const auto offset =
              static_cast<std::size_t>(chunk.payload.data() - data.data());
          if (offset > cursor) {
            Part raw;
            raw.raw.assign(data.begin() + static_cast<std::ptrdiff_t>(cursor),
                           data.begin() + static_cast<std::ptrdiff_t>(offset));
            skel.parts.push_back(std::move(raw));
          }
          Part p;
          p.is_chunk = true;
          p.hash = crc64(chunk.payload);
          p.size = chunk.payload.size();
          skel.parts.push_back(p);
          cursor = offset + chunk.payload.size();
        }
      }
      if (cursor < data.size()) {
        Part raw;
        raw.raw.assign(data.begin() + static_cast<std::ptrdiff_t>(cursor),
                       data.end());
        skel.parts.push_back(std::move(raw));
      }
      split = true;
    } catch (const corrupt_stream_error&) {
      // A blob that looks delta-framed but does not parse is stored
      // verbatim: dedup is an optimization, never a gatekeeper.
      skel.parts.clear();
    }
  }
  if (!split) {
    Part raw;
    raw.raw.assign(data.begin(), data.end());
    skel.parts.push_back(std::move(raw));
  }

  // Take the new skeleton's chunk references *before* retiring the old
  // version's: an overwrite with shared content then keeps every shared
  // chunk's refcount above zero (a pure dedup hit) instead of deleting and
  // immediately rewriting its file. The payload bytes are found by
  // replaying the part layout (parts partition the stream in order).
  // A throw anywhere (e.g. ENOSPC writing a chunk or the skeleton) rolls
  // the refs taken by THIS call back, so a failed write never pins chunks
  // a reader cannot reach. The stream parse above touched no shared state,
  // so concurrent writers only serialize on this index/refcount section.
  const std::lock_guard<std::mutex> lock(mu_);
  const std::size_t hits_before = hits_;
  const std::size_t saved_before = bytes_saved_;
  std::size_t refs_taken = 0;
  std::size_t chunk_parts = 0;
  try {
    std::size_t cursor = 0;
    for (const auto& part : skel.parts) {
      if (part.is_chunk) {
        add_chunk_ref(
            part.hash,
            data.subspan(cursor, static_cast<std::size_t>(part.size)));
        ++refs_taken;
        ++chunk_parts;
        cursor += static_cast<std::size_t>(part.size);
      } else {
        cursor += part.raw.size();
      }
    }
    remove_locked(version);
    if (!dir_.empty()) persist_skeleton(version, skel);
  } catch (...) {
    std::size_t i = 0;
    for (const auto& part : skel.parts) {
      if (!part.is_chunk) continue;
      if (i++ >= refs_taken) break;
      drop_chunk_ref(part.hash);
    }
    throw;
  }
  skeletons_[version] = std::move(skel);
  DedupWriteStats stats;
  stats.hits = hits_ - hits_before;
  stats.bytes_saved = bytes_saved_ - saved_before;
  stats.chunks = chunk_parts;
  return stats;
}

std::vector<byte_t> DedupChunkStore::read(int version) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = skeletons_.find(version);
  if (it == skeletons_.end()) {
    if (legacy_versions_.contains(version))
      return read_file_bytes(legacy_path(version));
    throw corrupt_stream_error("dedup store: no checkpoint version " +
                               std::to_string(version));
  }
  std::vector<byte_t> out;
  out.reserve(it->second.logical_size);
  for (const auto& part : it->second.parts) {
    if (part.is_chunk) {
      const auto ch = chunks_.find(part.hash);
      if (ch == chunks_.end() || ch->second.size != part.size)
        throw corrupt_stream_error("dedup store: missing chunk " +
                                   hash_hex(part.hash));
      if (dir_.empty()) {
        out.insert(out.end(), ch->second.bytes.begin(),
                   ch->second.bytes.end());
      } else {
        const auto payload = read_file_bytes(chunk_path(part.hash));
        if (payload.size() != part.size)
          throw corrupt_stream_error("dedup store: truncated chunk " +
                                     hash_hex(part.hash));
        out.insert(out.end(), payload.begin(), payload.end());
      }
    } else {
      out.insert(out.end(), part.raw.begin(), part.raw.end());
    }
  }
  return out;
}

bool DedupChunkStore::exists(int version) const {
  const std::lock_guard<std::mutex> lock(mu_);
  return skeletons_.contains(version) || legacy_versions_.contains(version);
}

void DedupChunkStore::remove(int version) {
  const std::lock_guard<std::mutex> lock(mu_);
  remove_locked(version);
}

void DedupChunkStore::remove_locked(int version) {
  if (!dir_.empty()) {
    std::error_code ec;
    fs::remove(legacy_path(version), ec);
  }
  legacy_versions_.erase(version);
  const auto it = skeletons_.find(version);
  if (it == skeletons_.end()) return;
  // Skeleton file first, then the chunks it referenced: a crash between the
  // two leaves unreferenced chunk files (swept at the next open), never a
  // skeleton pointing at deleted chunks.
  if (!dir_.empty()) {
    std::error_code ec;
    fs::remove(skel_path(version), ec);
  }
  for (const auto& part : it->second.parts)
    if (part.is_chunk) drop_chunk_ref(part.hash);
  skeletons_.erase(it);
}

int DedupChunkStore::latest_version() const {
  const std::lock_guard<std::mutex> lock(mu_);
  int latest = skeletons_.empty() ? -1 : skeletons_.rbegin()->first;
  if (!legacy_versions_.empty())
    latest = std::max(latest, *legacy_versions_.rbegin());
  return latest;
}

std::vector<int> DedupChunkStore::versions_in(int lo, int hi) const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<int> out;
  for (auto it = skeletons_.lower_bound(lo);
       it != skeletons_.end() && it->first < hi; ++it)
    out.push_back(it->first);
  for (auto it = legacy_versions_.lower_bound(lo);
       it != legacy_versions_.end() && *it < hi; ++it)
    out.push_back(*it);
  std::sort(out.begin(), out.end());
  return out;
}

std::size_t DedupChunkStore::chunk_count() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return chunks_.size();
}

std::size_t DedupChunkStore::physical_bytes() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::size_t total = 0;
  for (const auto& [v, skel] : skeletons_)
    for (const auto& part : skel.parts)
      if (!part.is_chunk) total += part.raw.size();
  for (const auto& [h, c] : chunks_) total += c.size;
  return total;
}

std::size_t DedupChunkStore::logical_bytes() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::size_t total = 0;
  for (const auto& [v, skel] : skeletons_) total += skel.logical_size;
  return total;
}

std::size_t DedupChunkStore::dedup_hits() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

std::size_t DedupChunkStore::dedup_bytes_saved() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return bytes_saved_;
}

void DedupChunkStore::set_observability(obs::Sink sink) {
  const std::lock_guard<std::mutex> lock(mu_);
  obs_ = sink;
}

void DedupChunkStore::persist_skeleton(int version,
                                       const Skeleton& skel) const {
  ByteWriter out;
  out.put(kSkelMagic);
  out.put(static_cast<std::uint64_t>(skel.logical_size));
  out.put(static_cast<std::uint32_t>(skel.parts.size()));
  for (const auto& part : skel.parts) {
    out.put(static_cast<std::uint8_t>(part.is_chunk ? 1 : 0));
    if (part.is_chunk) {
      out.put(part.hash);
      out.put(part.size);
    } else {
      out.put(static_cast<std::uint64_t>(part.raw.size()));
      out.put_bytes(part.raw);
    }
  }
  atomic_write_file(skel_path(version), out.view());
}

void DedupChunkStore::load_from_dir() {
  fs::create_directories(dir_ + "/chunks");
  // A crash inside atomic_write_file leaves a *.tmp behind; sweep them at
  // open like DiskStore sweeps stale .lck.pending files.
  for (const std::string& sub : {std::string(""), std::string("/chunks")}) {
    for (const auto& entry : fs::directory_iterator(dir_ + sub)) {
      if (entry.path().filename().string().ends_with(".tmp")) {
        std::error_code ec;
        fs::remove(entry.path(), ec);
      }
    }
  }
  // Chunk payloads first (skeleton refcounts are rebuilt from skeletons).
  for (const auto& entry : fs::directory_iterator(dir_ + "/chunks")) {
    const std::string name = entry.path().filename().string();
    if (!name.ends_with(".chk") || name.size() != 16 + 4) continue;
    std::uint64_t hash = 0;
    try {
      std::size_t used = 0;
      hash = std::stoull(name.substr(0, 16), &used, 16);
      if (used != 16) continue;  // non-hex leftovers are not ours
    } catch (...) {  // NOLINT: ignore unrelated files
      continue;
    }
    // Payload bytes stay on disk; only the size is indexed (read() loads
    // them on demand), so a directory-backed tier does not mirror the
    // whole PFS in RAM.
    Chunk c;
    c.size = static_cast<std::uint64_t>(entry.file_size());
    c.refs = 0;
    chunks_.emplace(hash, std::move(c));
  }
  // Strict version parse: trailing garbage (ckpt_99backup.lck) must not
  // register a phantom version — same discipline as the chunk-filename
  // parse above.
  const auto parse_version =
      [](const std::string& digits) -> std::optional<int> {
    if (digits.empty()) return std::nullopt;
    try {
      std::size_t used = 0;
      const int v = std::stoi(digits, &used);
      if (used != digits.size() || v < 0) return std::nullopt;
      return v;
    } catch (...) {
      return std::nullopt;
    }
  };
  for (const auto& entry : fs::directory_iterator(dir_)) {
    const std::string name = entry.path().filename().string();
    // Pre-dedup DiskStore history (ckpt_<v>.lck) stays readable after the
    // L3 backend swap: the files are indexed as opaque legacy versions and
    // served verbatim.
    if (name.starts_with("ckpt_") && name.ends_with(".lck")) {
      if (const auto v = parse_version(name.substr(5, name.size() - 9)))
        legacy_versions_.insert(*v);
      continue;
    }
    if (!name.starts_with("skel_") || !name.ends_with(".lcks")) continue;
    const auto parsed_version = parse_version(name.substr(5, name.size() - 10));
    if (!parsed_version) continue;
    const int version = *parsed_version;
    // A skeleton that does not parse, or that references a chunk that is
    // gone (a crash inside remove()'s deletion window), is a dead version:
    // drop it instead of refusing to open — dedup is an optimization,
    // never a gatekeeper.
    Skeleton skel;
    bool ok = true;
    try {
      const std::vector<byte_t> data = read_file_bytes(entry.path().string());
      ByteReader in(data);
      if (in.get<std::uint32_t>() != kSkelMagic)
        throw corrupt_stream_error("dedup store: bad skeleton magic");
      skel.logical_size = static_cast<std::size_t>(in.get<std::uint64_t>());
      const auto part_count = in.get<std::uint32_t>();
      for (std::uint32_t p = 0; p < part_count; ++p) {
        Part part;
        part.is_chunk = in.get<std::uint8_t>() != 0;
        if (part.is_chunk) {
          part.hash = in.get<std::uint64_t>();
          part.size = in.get<std::uint64_t>();
          const auto it = chunks_.find(part.hash);
          if (it == chunks_.end() || it->second.size != part.size)
            throw corrupt_stream_error("dedup store: missing chunk " +
                                       hash_hex(part.hash));
          ++it->second.refs;
        } else {
          const auto len = in.get<std::uint64_t>();
          const auto bytes = in.get_bytes(len);
          part.raw.assign(bytes.begin(), bytes.end());
        }
        skel.parts.push_back(std::move(part));
      }
    } catch (const corrupt_stream_error&) {
      ok = false;
    }
    if (ok) {
      skeletons_[version] = std::move(skel);
    } else {
      // Roll back the refcounts the partial parse took — decrement only
      // (no file deletion: a later skeleton may still claim the chunk; the
      // orphan sweep below reclaims whatever stays unreferenced).
      for (const auto& part : skel.parts)
        if (part.is_chunk)
          if (const auto it = chunks_.find(part.hash); it != chunks_.end())
            --it->second.refs;
      std::error_code ec;
      fs::remove(entry.path(), ec);
    }
  }
  // Chunks nothing references are a removed run's garbage; sweep them like
  // DiskStore sweeps stale .lck.pending files.
  for (auto it = chunks_.begin(); it != chunks_.end();) {
    if (it->second.refs == 0) {
      std::error_code ec;
      fs::remove(chunk_path(it->first), ec);
      it = chunks_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace lck

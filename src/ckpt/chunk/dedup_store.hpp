#pragma once
/// \file dedup_store.hpp
/// \brief Content-addressed checkpoint store: delta-format blobs are split
///        into a skeleton (manifest + headers) plus chunk payloads keyed by
///        the CRC-64 of their bytes, so identical chunks across versions —
///        and across runs, via the on-disk chunk index — are stored once.
///
/// This is the L3 dedup of the tiered hierarchy: promotion hands the PFS
/// tier a version's full stream, and the store keeps only the chunks not
/// already resident. `read()` reassembles the original stream byte-exactly,
/// so every reader stays dedup-agnostic. Non-delta blobs are stored
/// verbatim (single raw part) — the store never changes observable bytes.
///
/// Thread-safety: *internally* synchronized, unlike the other backends.
/// One DedupChunkStore is the shared L3 of the multi-tenant
/// CheckpointService, where N jobs' promotion workers write genuinely
/// concurrently — each job's TieredCheckpointStore level lock serializes
/// only that job's traffic, so refcount acquire/release, the skeleton
/// index and the hit counters are guarded by one internal mutex here.
/// (Single-tenant stacks pay one uncontended lock per call.)

#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "ckpt/checkpoint_store.hpp"

namespace lck {

/// What one DedupChunkStore::write_counted() call did — the deltas of the
/// cumulative counters, captured atomically under the store's lock so a
/// multi-tenant caller can attribute them to the writing job (two separate
/// before/after reads would interleave with concurrent writers).
struct DedupWriteStats {
  std::size_t hits = 0;         ///< Chunk writes satisfied by residency.
  std::size_t bytes_saved = 0;  ///< Payload bytes those hits avoided.
  std::size_t chunks = 0;       ///< Chunk parts in the written stream.
};

class DedupChunkStore final : public CheckpointStore {
 public:
  /// `dir` empty ⇒ fully in-memory. Otherwise chunks persist under
  /// `dir`/chunks/<hash>.chk and skeletons as `dir`/skel_<version>.lcks;
  /// reopening rebuilds the index, so a new run dedups against the chunks
  /// the previous run left behind. Chunks no skeleton references are swept
  /// at open (the referencing versions are gone, so they are garbage).
  explicit DedupChunkStore(std::string dir = "");

  void write(int version, std::span<const byte_t> data) override;
  /// write() plus an atomic report of what this call deduplicated — the
  /// multi-tenant service records the deltas as per-job labeled metrics.
  DedupWriteStats write_counted(int version, std::span<const byte_t> data);
  [[nodiscard]] std::vector<byte_t> read(int version) const override;
  [[nodiscard]] bool exists(int version) const override;
  void remove(int version) override;
  [[nodiscard]] int latest_version() const override;
  /// Committed (skeleton or legacy) versions in [lo, hi), ascending — how a
  /// namespace view over the shared store enumerates its own key range.
  [[nodiscard]] std::vector<int> versions_in(int lo, int hi) const;

  // ----- dedup accounting ---------------------------------------------------
  /// Unique chunk payloads resident.
  [[nodiscard]] std::size_t chunk_count() const;
  /// Bytes actually resident: skeleton raw bytes + unique chunk bytes.
  [[nodiscard]] std::size_t physical_bytes() const;
  /// Bytes the stored versions reassemble to (what a dedup-less store
  /// would hold).
  [[nodiscard]] std::size_t logical_bytes() const;
  /// Chunk writes satisfied by an already-resident chunk (cumulative).
  [[nodiscard]] std::size_t dedup_hits() const;
  /// Payload bytes those hits avoided re-storing (cumulative).
  [[nodiscard]] std::size_t dedup_bytes_saved() const;

  /// Attach observability handles: records chunk hit/miss counters, bytes
  /// saved, and refcount churn into the registry (chunk.* series).
  void set_observability(obs::Sink sink) override;

 private:
  struct Part {
    bool is_chunk = false;
    std::vector<byte_t> raw;   ///< is_chunk == false
    std::uint64_t hash = 0;    ///< is_chunk == true
    std::uint64_t size = 0;    ///< chunk payload size (redundant check)
  };
  struct Skeleton {
    std::vector<Part> parts;
    std::size_t logical_size = 0;
  };
  struct Chunk {
    /// In-memory mode: the payload. Directory mode: empty — payloads live
    /// in `dir`/chunks/<hash>.chk and read() loads them on demand, so the
    /// PFS tier is not mirrored in RAM.
    std::vector<byte_t> bytes;
    std::uint64_t size = 0;
    int refs = 0;
  };

  void add_chunk_ref(std::uint64_t hash, std::span<const byte_t> payload);
  void drop_chunk_ref(std::uint64_t hash);
  void remove_locked(int version);
  void persist_skeleton(int version, const Skeleton& skel) const;
  [[nodiscard]] std::string skel_path(int version) const;
  [[nodiscard]] std::string chunk_path(std::uint64_t hash) const;
  [[nodiscard]] std::string legacy_path(int version) const;
  void load_from_dir();

  /// Guards every member below (and the chunk/skeleton files' lifecycle):
  /// the service's promotion pool makes concurrent writers the norm, so
  /// refcounts, the indexes and the counters are one critical section.
  mutable std::mutex mu_;
  std::string dir_;  ///< Empty ⇒ in-memory only.
  std::map<int, Skeleton> skeletons_;
  std::map<std::uint64_t, Chunk> chunks_;
  /// Versions a pre-dedup DiskStore left in the directory as ckpt_<v>.lck
  /// files; served verbatim so the backend swap cannot orphan old history.
  std::set<int> legacy_versions_;
  std::size_t hits_ = 0;
  std::size_t bytes_saved_ = 0;
  obs::Sink obs_{};  ///< Observability handles (both null => off).
};

}  // namespace lck

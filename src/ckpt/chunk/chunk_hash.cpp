#include "ckpt/chunk/chunk_hash.hpp"

#include <array>

namespace lck {
namespace {

std::array<std::uint64_t, 256> make_table() noexcept {
  // Reflected form of the ECMA-182 polynomial 0x42F0E1EBA9EA3693.
  constexpr std::uint64_t kPoly = 0xc96c5795d7870f42ull;
  std::array<std::uint64_t, 256> t{};
  for (std::uint64_t i = 0; i < 256; ++i) {
    std::uint64_t c = i;
    for (int k = 0; k < 8; ++k)
      c = (c & 1ull) ? (kPoly ^ (c >> 1)) : (c >> 1);
    t[i] = c;
  }
  return t;
}

}  // namespace

const std::uint64_t* Crc64::table() noexcept {
  static const auto t = make_table();
  return t.data();
}

std::uint64_t crc64(std::span<const byte_t> data) noexcept {
  Crc64 c;
  c.update(data);
  return c.value();
}

}  // namespace lck

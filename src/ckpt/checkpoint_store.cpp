#include "ckpt/checkpoint_store.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/file_io.hpp"

namespace lck {

namespace fs = std::filesystem;

// ----- CheckpointStore default pending implementation -----------------------

void CheckpointStore::write_pending(int version, std::span<const byte_t> data) {
  const std::lock_guard<std::mutex> lock(pending_mu_);
  pending_[version].assign(data.begin(), data.end());
}

void CheckpointStore::commit(int version) {
  std::vector<byte_t> data;
  {
    const std::lock_guard<std::mutex> lock(pending_mu_);
    const auto it = pending_.find(version);
    require(it != pending_.end(), "checkpoint store: commit of a version "
                                  "without a pending write");
    data = std::move(it->second);
    pending_.erase(it);
  }
  write(version, data);
}

void CheckpointStore::abort(int version) {
  const std::lock_guard<std::mutex> lock(pending_mu_);
  pending_.erase(version);
}

bool CheckpointStore::has_pending(int version) const {
  const std::lock_guard<std::mutex> lock(pending_mu_);
  return pending_.contains(version);
}

// ----- MemoryStore ----------------------------------------------------------

void MemoryStore::write(int version, std::span<const byte_t> data) {
  blobs_[version].assign(data.begin(), data.end());
}

std::vector<byte_t> MemoryStore::read(int version) const {
  const auto it = blobs_.find(version);
  if (it == blobs_.end())
    throw corrupt_stream_error("memory store: no checkpoint version " +
                               std::to_string(version));
  return it->second;
}

bool MemoryStore::exists(int version) const {
  return blobs_.contains(version);
}

void MemoryStore::remove(int version) { blobs_.erase(version); }

int MemoryStore::latest_version() const {
  return blobs_.empty() ? -1 : blobs_.rbegin()->first;
}

// ----- DiskStore ------------------------------------------------------------

DiskStore::DiskStore(std::string directory) : dir_(std::move(directory)) {
  fs::create_directories(dir_);
  // A .lck.pending file is by definition an uncommitted leftover (the
  // process died between write_pending and commit); sweep them on open so
  // crashed runs cannot accumulate full-size orphan blobs. The directory
  // is owned by one store at a time.
  for (const auto& entry : fs::directory_iterator(dir_)) {
    const std::string name = entry.path().filename().string();
    if (name.starts_with("ckpt_") &&
        (name.ends_with(".lck.pending") || name.ends_with(".tmp"))) {
      std::error_code ec;
      fs::remove(entry.path(), ec);
    }
  }
}

std::string DiskStore::path_for(int version) const {
  return dir_ + "/ckpt_" + std::to_string(version) + ".lck";
}

std::string DiskStore::pending_path_for(int version) const {
  return path_for(version) + ".pending";
}

void DiskStore::write(int version, std::span<const byte_t> data) {
  atomic_write_file(path_for(version), data);  // tmp + rename: atomic commit
}

std::vector<byte_t> DiskStore::read(int version) const {
  if (!fs::exists(path_for(version)))
    throw corrupt_stream_error("disk store: no checkpoint version " +
                               std::to_string(version));
  return read_file_bytes(path_for(version));
}

bool DiskStore::exists(int version) const {
  return fs::exists(path_for(version));
}

void DiskStore::remove(int version) {
  std::error_code ec;
  fs::remove(path_for(version), ec);
}

int DiskStore::latest_version() const {
  int latest = -1;
  if (!fs::exists(dir_)) return latest;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    const std::string name = entry.path().filename().string();
    // ".lck.pending" files are staged drains, not committed checkpoints.
    if (name.starts_with("ckpt_") && name.ends_with(".lck")) {
      const std::string digits = name.substr(5, name.size() - 9);
      try {
        latest = std::max(latest, std::stoi(digits));
      } catch (...) {  // NOLINT: ignore unrelated files
      }
    }
  }
  return latest;
}

void DiskStore::write_pending(int version, std::span<const byte_t> data) {
  const std::string pending_path = pending_path_for(version);
  std::ofstream f(pending_path, std::ios::binary | std::ios::trunc);
  if (!f)
    throw corrupt_stream_error("disk store: cannot open " + pending_path);
  f.write(reinterpret_cast<const char*>(data.data()),
          static_cast<std::streamsize>(data.size()));
  if (!f)
    throw corrupt_stream_error("disk store: short write " + pending_path);
}

void DiskStore::commit(int version) {
  require(has_pending(version), "checkpoint store: commit of a version "
                                "without a pending write");
  fs::rename(pending_path_for(version), path_for(version));
}

void DiskStore::abort(int version) {
  std::error_code ec;
  fs::remove(pending_path_for(version), ec);
}

bool DiskStore::has_pending(int version) const {
  return fs::exists(pending_path_for(version));
}

}  // namespace lck

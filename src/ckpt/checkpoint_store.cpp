#include "ckpt/checkpoint_store.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/file_io.hpp"

namespace lck {

namespace fs = std::filesystem;

// ----- CheckpointStore default pending implementation -----------------------

void CheckpointStore::write_pending(int version, std::span<const byte_t> data) {
  const std::lock_guard<std::mutex> lock(pending_mu_);
  pending_[version].assign(data.begin(), data.end());
}

void CheckpointStore::commit(int version) {
  std::vector<byte_t> data;
  {
    const std::lock_guard<std::mutex> lock(pending_mu_);
    const auto it = pending_.find(version);
    require(it != pending_.end(), "checkpoint store: commit of a version "
                                  "without a pending write");
    data = std::move(it->second);
    pending_.erase(it);
  }
  write(version, data);
}

void CheckpointStore::abort(int version) {
  const std::lock_guard<std::mutex> lock(pending_mu_);
  pending_.erase(version);
}

bool CheckpointStore::has_pending(int version) const {
  const std::lock_guard<std::mutex> lock(pending_mu_);
  return pending_.contains(version);
}

namespace {

/// Default streaming sink: accumulate in memory, hand the blob to the
/// store's (virtual) write_pending on finish. Correct for every backend;
/// bounded-memory only for backends that override open_write_pending.
class BufferedPendingSink final : public ByteSink {
 public:
  BufferedPendingSink(CheckpointStore& store, int version)
      : store_(store), version_(version) {}
  void append(std::span<const byte_t> bytes) override {
    buf_.insert(buf_.end(), bytes.begin(), bytes.end());
  }
  void finish() override { store_.write_pending(version_, buf_); }

 private:
  CheckpointStore& store_;
  int version_;
  std::vector<byte_t> buf_;
};

}  // namespace

std::unique_ptr<ByteSink> CheckpointStore::open_write_pending(int version) {
  return std::make_unique<BufferedPendingSink>(*this, version);
}

std::unique_ptr<ByteSource> CheckpointStore::open_read(int version) const {
  return std::make_unique<OwningSource>(read(version));
}

// ----- MemoryStore ----------------------------------------------------------

void MemoryStore::write(int version, std::span<const byte_t> data) {
  blobs_[version].assign(data.begin(), data.end());
}

std::vector<byte_t> MemoryStore::read(int version) const {
  const auto it = blobs_.find(version);
  if (it == blobs_.end())
    throw corrupt_stream_error("memory store: no checkpoint version " +
                               std::to_string(version));
  return it->second;
}

bool MemoryStore::exists(int version) const {
  return blobs_.contains(version);
}

void MemoryStore::remove(int version) { blobs_.erase(version); }

int MemoryStore::latest_version() const {
  return blobs_.empty() ? -1 : blobs_.rbegin()->first;
}

// ----- DiskStore ------------------------------------------------------------

DiskStore::DiskStore(std::string directory) : dir_(std::move(directory)) {
  fs::create_directories(dir_);
  // A .lck.pending file is by definition an uncommitted leftover (the
  // process died between write_pending and commit); sweep them on open so
  // crashed runs cannot accumulate full-size orphan blobs. The directory
  // is owned by one store at a time.
  for (const auto& entry : fs::directory_iterator(dir_)) {
    const std::string name = entry.path().filename().string();
    if (name.starts_with("ckpt_") &&
        (name.ends_with(".lck.pending") || name.ends_with(".tmp"))) {
      std::error_code ec;
      fs::remove(entry.path(), ec);
    }
  }
}

std::string DiskStore::path_for(int version) const {
  return dir_ + "/ckpt_" + std::to_string(version) + ".lck";
}

std::string DiskStore::pending_path_for(int version) const {
  return path_for(version) + ".pending";
}

void DiskStore::write(int version, std::span<const byte_t> data) {
  atomic_write_file(path_for(version), data);  // tmp + rename: atomic commit
}

std::vector<byte_t> DiskStore::read(int version) const {
  if (!fs::exists(path_for(version)))
    throw corrupt_stream_error("disk store: no checkpoint version " +
                               std::to_string(version));
  return read_file_bytes(path_for(version));
}

bool DiskStore::exists(int version) const {
  return fs::exists(path_for(version));
}

void DiskStore::remove(int version) {
  std::error_code ec;
  fs::remove(path_for(version), ec);
}

int DiskStore::latest_version() const {
  int latest = -1;
  if (!fs::exists(dir_)) return latest;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    const std::string name = entry.path().filename().string();
    // ".lck.pending" files are staged drains, not committed checkpoints.
    if (name.starts_with("ckpt_") && name.ends_with(".lck")) {
      const std::string digits = name.substr(5, name.size() - 9);
      try {
        latest = std::max(latest, std::stoi(digits));
      } catch (...) {  // NOLINT: ignore unrelated files
      }
    }
  }
  return latest;
}

void DiskStore::write_pending(int version, std::span<const byte_t> data) {
  const std::string pending_path = pending_path_for(version);
  std::ofstream f(pending_path, std::ios::binary | std::ios::trunc);
  if (!f)
    throw corrupt_stream_error("disk store: cannot open " + pending_path);
  f.write(reinterpret_cast<const char*>(data.data()),
          static_cast<std::streamsize>(data.size()));
  if (!f)
    throw corrupt_stream_error("disk store: short write " + pending_path);
}

void DiskStore::commit(int version) {
  require(has_pending(version), "checkpoint store: commit of a version "
                                "without a pending write");
  fs::rename(pending_path_for(version), path_for(version));
}

void DiskStore::abort(int version) {
  std::error_code ec;
  fs::remove(pending_path_for(version), ec);
}

bool DiskStore::has_pending(int version) const {
  return fs::exists(pending_path_for(version));
}

namespace {

/// Streams frames to `<pending>.tmp`; finish() flushes and renames to the
/// .pending path, so has_pending() only ever sees complete blobs. A sink
/// destroyed without finish() removes its temporary (crashed drain).
class DiskPendingSink final : public ByteSink {
 public:
  DiskPendingSink(std::string tmp_path, std::string pending_path)
      : tmp_path_(std::move(tmp_path)),
        pending_path_(std::move(pending_path)),
        f_(tmp_path_, std::ios::binary | std::ios::trunc) {
    if (!f_)
      throw corrupt_stream_error("disk store: cannot open " + tmp_path_);
  }

  ~DiskPendingSink() override {
    if (!finished_) {
      f_.close();
      std::error_code ec;
      fs::remove(tmp_path_, ec);
    }
  }

  void append(std::span<const byte_t> bytes) override {
    f_.write(reinterpret_cast<const char*>(bytes.data()),
             static_cast<std::streamsize>(bytes.size()));
    if (!f_)
      throw corrupt_stream_error("disk store: short write " + tmp_path_);
  }

  void finish() override {
    f_.close();
    if (f_.fail())
      throw corrupt_stream_error("disk store: close failed " + tmp_path_);
    fs::rename(tmp_path_, pending_path_);
    finished_ = true;
  }

 private:
  std::string tmp_path_;
  std::string pending_path_;
  std::ofstream f_;
  bool finished_ = false;
};

/// Incremental read of a committed checkpoint file.
class DiskSource final : public ByteSource {
 public:
  explicit DiskSource(const std::string& path)
      : f_(path, std::ios::binary) {
    if (!f_) throw corrupt_stream_error("disk store: cannot open " + path);
  }

  [[nodiscard]] std::size_t read_some(std::span<byte_t> dst) override {
    f_.read(reinterpret_cast<char*>(dst.data()),
            static_cast<std::streamsize>(dst.size()));
    return static_cast<std::size_t>(f_.gcount());
  }

 private:
  std::ifstream f_;
};

}  // namespace

std::unique_ptr<ByteSink> DiskStore::open_write_pending(int version) {
  const std::string pending = pending_path_for(version);
  return std::make_unique<DiskPendingSink>(pending + ".tmp", pending);
}

std::unique_ptr<ByteSource> DiskStore::open_read(int version) const {
  const std::string path = path_for(version);
  if (!fs::exists(path))
    throw corrupt_stream_error("disk store: no checkpoint version " +
                               std::to_string(version));
  return std::make_unique<DiskSource>(path);
}

}  // namespace lck

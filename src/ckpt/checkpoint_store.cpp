#include "ckpt/checkpoint_store.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>

namespace lck {

namespace fs = std::filesystem;

// ----- MemoryStore ----------------------------------------------------------

void MemoryStore::write(int version, std::span<const byte_t> data) {
  blobs_[version].assign(data.begin(), data.end());
}

std::vector<byte_t> MemoryStore::read(int version) const {
  const auto it = blobs_.find(version);
  if (it == blobs_.end())
    throw corrupt_stream_error("memory store: no checkpoint version " +
                               std::to_string(version));
  return it->second;
}

bool MemoryStore::exists(int version) const {
  return blobs_.contains(version);
}

void MemoryStore::remove(int version) { blobs_.erase(version); }

int MemoryStore::latest_version() const {
  return blobs_.empty() ? -1 : blobs_.rbegin()->first;
}

// ----- DiskStore ------------------------------------------------------------

DiskStore::DiskStore(std::string directory) : dir_(std::move(directory)) {
  fs::create_directories(dir_);
}

std::string DiskStore::path_for(int version) const {
  return dir_ + "/ckpt_" + std::to_string(version) + ".lck";
}

void DiskStore::write(int version, std::span<const byte_t> data) {
  const std::string final_path = path_for(version);
  const std::string tmp_path = final_path + ".tmp";
  {
    std::ofstream f(tmp_path, std::ios::binary | std::ios::trunc);
    if (!f) throw corrupt_stream_error("disk store: cannot open " + tmp_path);
    f.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
    if (!f) throw corrupt_stream_error("disk store: short write " + tmp_path);
  }
  fs::rename(tmp_path, final_path);  // atomic commit
}

std::vector<byte_t> DiskStore::read(int version) const {
  std::ifstream f(path_for(version), std::ios::binary | std::ios::ate);
  if (!f)
    throw corrupt_stream_error("disk store: no checkpoint version " +
                               std::to_string(version));
  const auto size = static_cast<std::size_t>(f.tellg());
  f.seekg(0);
  std::vector<byte_t> data(size);
  f.read(reinterpret_cast<char*>(data.data()),
         static_cast<std::streamsize>(size));
  if (!f) throw corrupt_stream_error("disk store: short read");
  return data;
}

bool DiskStore::exists(int version) const {
  return fs::exists(path_for(version));
}

void DiskStore::remove(int version) {
  std::error_code ec;
  fs::remove(path_for(version), ec);
}

int DiskStore::latest_version() const {
  int latest = -1;
  if (!fs::exists(dir_)) return latest;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    const std::string name = entry.path().filename().string();
    if (name.starts_with("ckpt_") && name.ends_with(".lck")) {
      const std::string digits = name.substr(5, name.size() - 9);
      try {
        latest = std::max(latest, std::stoi(digits));
      } catch (...) {  // NOLINT: ignore unrelated files
      }
    }
  }
  return latest;
}

}  // namespace lck

#include "ckpt/checkpoint_manager.hpp"

#include <algorithm>
#include <optional>

#include "ckpt/async_writer.hpp"
#include "common/byte_buffer.hpp"
#include "common/crc32.hpp"
#include "common/timer.hpp"

namespace lck {
namespace {

constexpr std::uint32_t kMagic = 0x54504b43u;  // "CKPT"
constexpr std::uint16_t kVersion = 1;

enum class VarKind : std::uint8_t { kVector = 0, kBlob = 1 };

}  // namespace

const char* to_string(CkptMode m) noexcept {
  switch (m) {
    case CkptMode::kSync: return "sync";
    case CkptMode::kAsync: return "async";
    case CkptMode::kTiered: return "tiered";
  }
  return "?";
}

CheckpointManager::CheckpointManager(std::unique_ptr<CheckpointStore> store,
                                     const Compressor* default_compressor)
    : store_(std::move(store)), default_compressor_(default_compressor) {
  require(store_ != nullptr, "checkpoint manager: null store");
  if (default_compressor_ == nullptr) default_compressor_ = &none_;
  next_version_ = store_->latest_version() + 1;
}

CheckpointManager::~CheckpointManager() {
  // Versions still undecided at destruction roll back: their pending store
  // blobs (e.g. DiskStore's .lck.pending files) must not outlive the
  // manager, and the last *committed* version stays the recovery point.
  const std::set<int> undecided = staged_versions_;
  for (const int v : undecided) {
    try {
      abort_version(v);
    } catch (...) {  // NOLINT: best-effort cleanup in a destructor
    }
  }
}

void CheckpointManager::protect(int id, std::string name, Vector* data,
                                const Compressor* compressor) {
  protect(id, std::move(name), data, data, compressor);
}

void CheckpointManager::protect(int id, std::string name, const Vector* source,
                                Vector* restore_target,
                                const Compressor* compressor) {
  require(source != nullptr, "protect: null source");
  require(restore_target != nullptr, "protect: null restore target");
  require(!entries_.contains(id), "protect: id already registered");
  entries_[id] = Entry{std::move(name), source, restore_target, nullptr,
                       compressor};
}

void CheckpointManager::protect_blob(int id, std::string name,
                                     std::vector<byte_t>* data) {
  require(data != nullptr, "protect_blob: null variable");
  require(!entries_.contains(id), "protect_blob: id already registered");
  entries_[id] = Entry{std::move(name), nullptr, nullptr, data, nullptr};
}

void CheckpointManager::unprotect(int id) { entries_.erase(id); }

CheckpointRecord CheckpointManager::build_stream(
    const std::vector<VarView>& vars, int version,
    std::vector<byte_t>& bytes) const {
  CheckpointRecord rec;
  rec.version = version;

  ByteWriter out;
  out.put(kMagic);
  out.put(kVersion);
  out.put(static_cast<std::uint32_t>(vars.size()));

  WallTimer timer;
  for (const auto& var : vars) {
    out.put(static_cast<std::int32_t>(var.id));
    out.put_string(*var.name);
    if (var.vec != nullptr) {
      out.put(static_cast<std::uint8_t>(VarKind::kVector));
      const Vector& vec = *var.vec;
      const Compressor* comp = var.compressor;
      const bool verbatim =
          dynamic_cast<const NoneCompressor*>(comp) != nullptr;
      // Vectors spanning more than one block go through the parallel
      // block pipeline; the stored compressor name records the layout.
      // A registered compressor that is already a BlockCompressor is
      // used as-is — nesting would frame (and CRC) the payload twice.
      // Verbatim ("none") vectors skip the pipeline too: there is nothing
      // to parallelize about a memcpy.
      std::optional<BlockCompressor> blk;
      if (!verbatim && block_elems_ > 0 && vec.size() > block_elems_ &&
          dynamic_cast<const BlockCompressor*>(comp) == nullptr)
        blk.emplace(comp, block_elems_);
      if (blk) comp = &*blk;
      out.put_string(comp->name());
      out.put(static_cast<std::uint64_t>(vec.size()));
      rec.raw_bytes += vec.size() * sizeof(double);
      if (verbatim) {
        // Fast path: emit the NoneCompressor stream layout directly into
        // the checkpoint buffer instead of round-tripping the vector
        // through an intermediate payload allocation.
        ByteWriter header(NoneCompressor::kHeaderBytes);
        header.put(NoneCompressor::kMagic);
        header.put(static_cast<std::uint64_t>(vec.size()));
        const std::span<const byte_t> raw{
            reinterpret_cast<const byte_t*>(vec.data()),
            vec.size() * sizeof(double)};
        Crc32 crc;
        crc.update(header.view());
        crc.update(raw);
        const std::size_t payload_size = header.size() + raw.size();
        rec.per_var_bytes[*var.name] = payload_size;
        out.put(static_cast<std::uint64_t>(payload_size));
        out.put(crc.value());
        out.put_bytes(header.view());
        out.put_bytes(raw);
      } else {
        const auto payload = comp->compress(vec);
        rec.per_var_bytes[*var.name] = payload.size();
        out.put(static_cast<std::uint64_t>(payload.size()));
        out.put(crc32(payload));
        out.put_bytes(payload);
      }
    } else {
      out.put(static_cast<std::uint8_t>(VarKind::kBlob));
      out.put_string("none");
      out.put(static_cast<std::uint64_t>(var.blob->size()));
      rec.raw_bytes += var.blob->size();
      rec.per_var_bytes[*var.name] = var.blob->size();
      out.put(static_cast<std::uint64_t>(var.blob->size()));
      out.put(crc32(*var.blob));
      out.put_bytes(*var.blob);
    }
  }
  rec.compress_seconds = timer.seconds();

  rec.stored_bytes = out.size();
  bytes = std::move(out).take();
  return rec;
}

void CheckpointManager::prune_retention(int latest_committed) {
  // Aborted async versions leave holes in the version sequence, so scan up
  // from the lowest possibly-live version instead of stopping at the first
  // gap (remove() of an absent version is a cheap no-op in both stores).
  const int keep_from = latest_committed - retention_ + 1;
  for (int v = prune_floor_; v < keep_from; ++v) store_->remove(v);
  // Never advance the floor past a version that is still undecided: if it
  // commits out of order later, the prune at its commit must still be able
  // to remove it.
  int advance_to = keep_from;
  if (!staged_versions_.empty())
    advance_to = std::min(advance_to, *staged_versions_.begin());
  prune_floor_ = std::max(prune_floor_, advance_to);
}

CheckpointRecord CheckpointManager::checkpoint() {
  require(!entries_.empty(), "checkpoint: nothing protected");
  std::vector<VarView> views;
  views.reserve(entries_.size());
  for (const auto& [id, e] : entries_) {
    VarView v;
    v.id = id;
    v.name = &e.name;
    v.vec = e.src;
    v.blob = e.blob;
    v.compressor = compressor_for(e);
    views.push_back(v);
  }
  std::vector<byte_t> bytes;
  const CheckpointRecord rec = build_stream(views, next_version_, bytes);
  store_->write(rec.version, bytes);
  prune_retention(rec.version);
  ++next_version_;
  return rec;
}

// ----- staged (asynchronous) pipeline ---------------------------------------

int CheckpointManager::acquire_slot() {
  std::unique_lock<std::mutex> lock(slot_mu_);
  for (;;) {
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (!slots_[i].busy) {
        slots_[i].busy = true;
        return static_cast<int>(i);
      }
    }
    slot_cv_.wait(lock);
  }
}

void CheckpointManager::release_slot(int slot) {
  {
    const std::lock_guard<std::mutex> lock(slot_mu_);
    slots_[static_cast<std::size_t>(slot)].busy = false;
  }
  slot_cv_.notify_all();
}

StageTicket CheckpointManager::stage() {
  require(!entries_.empty(), "stage: nothing protected");
  if (writer_ == nullptr) writer_ = std::make_unique<AsyncCheckpointWriter>();

  const int slot_idx = acquire_slot();
  StagingSlot& slot = slots_[static_cast<std::size_t>(slot_idx)];

  WallTimer timer;
  StageTicket ticket;
  ticket.version = next_version_++;

  try {
    // Copy-assign into the slot's existing StagedVars so the double buffer
    // reuses its allocations from the previous round.
    slot.vars.resize(entries_.size());
    std::size_t k = 0;
    for (const auto& [id, e] : entries_) {
      StagedVar& sv = slot.vars[k++];
      sv.id = id;
      sv.name = e.name;
      sv.compressor = compressor_for(e);
      if (e.src != nullptr) {
        sv.is_vector = true;
        sv.vec = *e.src;
        sv.blob.clear();
        ticket.raw_bytes += e.src->size() * sizeof(double);
      } else {
        sv.is_vector = false;
        sv.blob = *e.blob;
        sv.vec.clear();
        ticket.raw_bytes += e.blob->size();
      }
    }
  } catch (...) {
    // A failed copy (e.g. bad_alloc) must not strand the slot as busy.
    release_slot(slot_idx);
    throw;
  }
  ticket.stage_seconds = timer.seconds();

  const int version = ticket.version;
  auto drain = [this, version, slot_idx] {
    std::vector<byte_t> bytes;
    CheckpointRecord rec;
    try {
      const StagingSlot& slot_ref =
          slots_[static_cast<std::size_t>(slot_idx)];
      std::vector<VarView> views;
      views.reserve(slot_ref.vars.size());
      for (const auto& sv : slot_ref.vars) {
        VarView v;
        v.id = sv.id;
        v.name = &sv.name;
        if (sv.is_vector)
          v.vec = &sv.vec;
        else
          v.blob = &sv.blob;
        v.compressor = sv.compressor;
        views.push_back(v);
      }
      rec = build_stream(views, version, bytes);
    } catch (...) {
      // A throwing compressor must not strand the slot as busy forever.
      release_slot(slot_idx);
      throw;
    }
    // The stream owns the data now; free the slot before the (slow) store
    // write so the solver can stage the next checkpoint meanwhile.
    release_slot(slot_idx);
    store_->write_pending(version, bytes);
    return rec;
  };
  // Track the version before enqueueing so a failed submit can unwind
  // completely: nothing else releases the slot once it is marked busy.
  try {
    staged_versions_.insert(version);
    writer_->submit(version, std::move(drain));
  } catch (...) {
    staged_versions_.erase(version);
    release_slot(slot_idx);
    throw;
  }
  return ticket;
}

CheckpointRecord CheckpointManager::wait_drain(int version) {
  // The writer surrenders each outcome once, so waiting on a version that
  // was already committed/aborted (or never staged) would block forever —
  // fail fast instead.
  require(staged_versions_.contains(version),
          "wait_drain: version is not an in-flight drain");
  if (const auto it = drained_.find(version); it != drained_.end())
    return it->second;
  // The writer surrenders each outcome exactly once, so a drain that threw
  // is remembered here — re-waiting on it would block forever.
  if (failed_drains_.contains(version))
    throw corrupt_stream_error("wait_drain: drain already failed for version " +
                               std::to_string(version));
  require(writer_ != nullptr, "wait_drain: no drain was submitted");
  try {
    const CheckpointRecord rec = writer_->wait(version);
    drained_[version] = rec;
    return rec;
  } catch (...) {
    failed_drains_.insert(version);
    throw;
  }
}

void CheckpointManager::commit_version(int version) {
  wait_drain(version);
  store_->commit(version);
  drained_.erase(version);
  staged_versions_.erase(version);
  // Prune against the highest committed version, so an out-of-order commit
  // of an already-superseded version retires it immediately.
  prune_retention(store_->latest_version());
}

void CheckpointManager::abort_version(int version) {
  require(staged_versions_.contains(version),
          "abort_version: version is not an in-flight drain");
  try {
    wait_drain(version);
  } catch (...) {
    // The drain itself failed; there is nothing pending to drop, but the
    // version must still be retired below.
  }
  store_->abort(version);
  drained_.erase(version);
  failed_drains_.erase(version);
  staged_versions_.erase(version);
}

// ----------------------------------------------------------------------------

CheckpointRecord CheckpointManager::recover() {
  const int version = store_->latest_version();
  if (version < 0) throw corrupt_stream_error("recover: no checkpoint exists");
  const auto data = store_->read(version);

  CheckpointRecord rec;
  rec.version = version;
  rec.stored_bytes = data.size();

  ByteReader in(data);
  if (in.get<std::uint32_t>() != kMagic)
    throw corrupt_stream_error("recover: bad checkpoint magic");
  if (in.get<std::uint16_t>() != kVersion)
    throw corrupt_stream_error("recover: unsupported format version");
  const auto count = in.get<std::uint32_t>();

  WallTimer timer;
  for (std::uint32_t i = 0; i < count; ++i) {
    const auto id = in.get<std::int32_t>();
    const std::string name = in.get_string();
    const auto kind = static_cast<VarKind>(in.get<std::uint8_t>());
    const std::string comp_name = in.get_string();
    const auto elem_count = in.get<std::uint64_t>();
    const auto payload_size = in.get<std::uint64_t>();
    const auto stored_crc = in.get<std::uint32_t>();
    const auto payload = in.get_bytes(payload_size);
    if (crc32(payload) != stored_crc)
      throw corrupt_stream_error("recover: CRC mismatch for variable " + name);

    const auto it = entries_.find(id);
    if (it == entries_.end())
      throw corrupt_stream_error("recover: unregistered variable id " +
                                 std::to_string(id));
    Entry& e = it->second;
    if (kind == VarKind::kVector) {
      require(e.dst != nullptr, "recover: kind mismatch (expected vector)");
      const Compressor* comp = compressor_for(e);
      // The stored name decides the layout: a "block+" prefix means the
      // payload is a framed block stream around the registered compressor
      // (the block size is embedded in the stream itself).
      std::optional<BlockCompressor> blk;
      if (comp_name == "block+" + comp->name()) {
        blk.emplace(comp);
        comp = &*blk;
      } else if (comp->name() != comp_name) {
        throw corrupt_stream_error(
            "recover: compressor mismatch for variable " + name + " (stored " +
            comp_name + ", registered " + comp->name() + ")");
      }
      e.dst->resize(elem_count);
      comp->decompress(payload, *e.dst);
      rec.raw_bytes += elem_count * sizeof(double);
    } else {
      require(e.blob != nullptr, "recover: kind mismatch (expected blob)");
      e.blob->assign(payload.begin(), payload.end());
      rec.raw_bytes += payload.size();
    }
    rec.per_var_bytes[name] = payload_size;
  }
  rec.compress_seconds = timer.seconds();
  recovery_pending_ = false;
  return rec;
}

CheckpointRecord CheckpointManager::snapshot() {
  if (recovery_pending_ && has_checkpoint()) return recover();
  recovery_pending_ = false;
  return checkpoint();
}

}  // namespace lck

#include "ckpt/checkpoint_manager.hpp"

#include <algorithm>
#include <cstring>
#include <optional>
#include <set>
#include <unordered_map>

#include "ckpt/async_writer.hpp"
#include "ckpt/chunk/chunk_hash.hpp"
#include "common/byte_buffer.hpp"
#include "common/crc32.hpp"
#include "common/timer.hpp"
#include "obs/metrics.hpp"

namespace lck {
namespace {

constexpr std::uint32_t kMagic = 0x54504b43u;  // "CKPT"
constexpr std::uint16_t kVersion = 1;

enum class VarKind : std::uint8_t { kVector = 0, kBlob = 1 };

/// Per-vector payload layout inside a framed ("FKPT") stream.
enum class FrameVarLayout : std::uint8_t {
  kVerbatim = 0,  ///< raw little-endian doubles, no codec framing
  kChunked = 1,   ///< length-prefixed per-chunk compressor payloads
};

/// Plausibility cap for one chunk payload inside a framed stream: no
/// in-tree codec expands beyond ~2x (all have stored fallbacks), so 4x the
/// raw chunk plus slack can only mean a corrupt length field — reject it
/// before the allocation, not after.
constexpr std::size_t frame_chunk_payload_bound(std::size_t elems) noexcept {
  return elems * sizeof(double) * 4 + (std::size_t{1} << 20);
}

/// References are resolved purely by content hash, so for lossless codecs
/// (where decompress ∘ compress is the identity) the re-materialized slice
/// must hash back to the manifest's raw-content hash — re-checking turns a
/// CRC-64 collision (or any resolver bug) into a loud error instead of
/// silently corrupted solver state. Lossy codecs are exempt: a reference
/// deliberately reproduces the base's *approximation* of the identical raw
/// content, whose bytes differ from the raw original.
void verify_ref_hash(const Compressor& comp, std::span<const double> slice,
                     std::uint64_t expected, const std::string& var_name) {
  if (comp.lossy()) return;
  const std::span<const byte_t> raw{
      reinterpret_cast<const byte_t*>(slice.data()),
      slice.size() * sizeof(double)};
  if (crc64(raw) != expected)
    throw corrupt_stream_error(
        "recover: delta reference resolved to mismatched content for "
        "variable " +
        var_name);
}

/// Per-codec compression observability: real seconds and achieved ratio,
/// labeled by the effective compressor name (so a block-pipeline wrapper
/// shows up as "block+<codec>").
void observe_compress(obs::Sink sink, const Compressor& comp,
                      std::size_t raw_bytes, std::size_t stored_bytes,
                      double seconds) {
  if (sink.metrics == nullptr) return;
  sink.metrics->observe("compress.seconds", seconds,
                        {{"codec", comp.name()}});
  if (stored_bytes > 0)
    sink.metrics->observe("compress.ratio",
                          static_cast<double>(raw_bytes) /
                              static_cast<double>(stored_bytes),
                          {{"codec", comp.name()}});
}

}  // namespace

const char* to_string(CkptMode m) noexcept {
  switch (m) {
    case CkptMode::kSync: return "sync";
    case CkptMode::kAsync: return "async";
    case CkptMode::kTiered: return "tiered";
  }
  return "?";
}

CheckpointManager::CheckpointManager(std::unique_ptr<CheckpointStore> store,
                                     const Compressor* default_compressor)
    : store_(std::move(store)), default_compressor_(default_compressor) {
  require(store_ != nullptr, "checkpoint manager: null store");
  if (default_compressor_ == nullptr) default_compressor_ = &none_;
  next_version_ = store_->latest_version() + 1;
}

CheckpointManager::~CheckpointManager() {
  // Versions still undecided at destruction roll back: their pending store
  // blobs (e.g. DiskStore's .lck.pending files) must not outlive the
  // manager, and the last *committed* version stays the recovery point.
  const std::set<int> undecided = staged_versions_;
  for (const int v : undecided) {
    try {
      abort_version(v);
    } catch (...) {  // NOLINT: best-effort cleanup in a destructor
    }
  }
}

void CheckpointManager::protect(int id, std::string name, Vector* data,
                                const Compressor* compressor) {
  protect(id, std::move(name), data, data, compressor);
}

void CheckpointManager::protect(int id, std::string name, const Vector* source,
                                Vector* restore_target,
                                const Compressor* compressor) {
  require(source != nullptr, "protect: null source");
  require(restore_target != nullptr, "protect: null restore target");
  require(!entries_.contains(id), "protect: id already registered");
  entries_[id] = Entry{std::move(name), source, restore_target, nullptr,
                       compressor};
}

void CheckpointManager::protect_blob(int id, std::string name,
                                     std::vector<byte_t>* data) {
  require(data != nullptr, "protect_blob: null variable");
  require(!entries_.contains(id), "protect_blob: id already registered");
  entries_[id] = Entry{std::move(name), nullptr, nullptr, data, nullptr};
}

void CheckpointManager::unprotect(int id) { entries_.erase(id); }

void CheckpointManager::set_observability(obs::Sink sink) {
  sink_ = sink;
  store_->set_observability(sink);
}

CheckpointRecord CheckpointManager::build_stream(
    const std::vector<VarView>& vars, int version,
    std::vector<byte_t>& bytes) const {
  CheckpointRecord rec;
  rec.version = version;

  ByteWriter out;
  out.put(kMagic);
  out.put(kVersion);
  out.put(static_cast<std::uint32_t>(vars.size()));

  WallTimer timer;
  for (const auto& var : vars) {
    out.put(static_cast<std::int32_t>(var.id));
    out.put_string(*var.name);
    if (var.vec != nullptr) {
      out.put(static_cast<std::uint8_t>(VarKind::kVector));
      const Vector& vec = *var.vec;
      const Compressor* comp = var.compressor;
      const bool verbatim =
          dynamic_cast<const NoneCompressor*>(comp) != nullptr;
      // Vectors spanning more than one block go through the parallel
      // block pipeline; the stored compressor name records the layout.
      // A registered compressor that is already a BlockCompressor is
      // used as-is — nesting would frame (and CRC) the payload twice.
      // Verbatim ("none") vectors skip the pipeline too: there is nothing
      // to parallelize about a memcpy.
      std::optional<BlockCompressor> blk;
      if (!verbatim && block_elems_ > 0 && vec.size() > block_elems_ &&
          dynamic_cast<const BlockCompressor*>(comp) == nullptr)
        blk.emplace(comp, block_elems_);
      if (blk) comp = &*blk;
      out.put_string(comp->name());
      out.put(static_cast<std::uint64_t>(vec.size()));
      rec.raw_bytes += vec.size() * sizeof(double);
      if (verbatim) {
        // Fast path: emit the NoneCompressor stream layout directly into
        // the checkpoint buffer instead of round-tripping the vector
        // through an intermediate payload allocation.
        ByteWriter header(NoneCompressor::kHeaderBytes);
        header.put(NoneCompressor::kMagic);
        header.put(static_cast<std::uint64_t>(vec.size()));
        const std::span<const byte_t> raw{
            reinterpret_cast<const byte_t*>(vec.data()),
            vec.size() * sizeof(double)};
        Crc32 crc;
        crc.update(header.view());
        crc.update(raw);
        const std::size_t payload_size = header.size() + raw.size();
        rec.per_var_bytes[*var.name] = payload_size;
        out.put(static_cast<std::uint64_t>(payload_size));
        out.put(crc.value());
        out.put_bytes(header.view());
        out.put_bytes(raw);
      } else {
        const WallTimer comp_timer;
        const auto payload = comp->compress(vec);
        observe_compress(sink_, *comp, vec.size() * sizeof(double),
                         payload.size(), comp_timer.seconds());
        rec.per_var_bytes[*var.name] = payload.size();
        out.put(static_cast<std::uint64_t>(payload.size()));
        out.put(crc32(payload));
        out.put_bytes(payload);
      }
    } else {
      out.put(static_cast<std::uint8_t>(VarKind::kBlob));
      out.put_string("none");
      out.put(static_cast<std::uint64_t>(var.blob->size()));
      rec.raw_bytes += var.blob->size();
      rec.per_var_bytes[*var.name] = var.blob->size();
      out.put(static_cast<std::uint64_t>(var.blob->size()));
      out.put(crc32(*var.blob));
      out.put_bytes(*var.blob);
    }
  }
  rec.compress_seconds = timer.seconds();

  rec.stored_bytes = out.size();
  bytes = std::move(out).take();
  return rec;
}

CheckpointRecord CheckpointManager::build_frame_stream(
    const std::vector<VarView>& vars, int version, ByteSink& sink) const {
  CheckpointRecord rec;
  rec.version = version;

  FrameWriter out(sink, streaming_, sink_);
  out.put(kVersion);
  out.put(static_cast<std::uint32_t>(vars.size()));

  WallTimer timer;
  for (const auto& var : vars) {
    out.put(static_cast<std::int32_t>(var.id));
    out.put_string(*var.name);
    if (var.vec != nullptr) {
      out.put(static_cast<std::uint8_t>(VarKind::kVector));
      const Vector& vec = *var.vec;
      const Compressor* comp = var.compressor;
      const bool verbatim =
          dynamic_cast<const NoneCompressor*>(comp) != nullptr;
      // Same chunking rule as the legacy block pipeline (same block size,
      // same size threshold, BlockCompressor used as-is): each chunk's
      // payload is comp->compress() of exactly the slice the legacy path
      // would have compressed, so recovered values are bit-identical to a
      // legacy-serializer round trip. Chunks are compressed sequentially —
      // at most one chunk payload is in flight, keeping memory bounded.
      std::size_t chunk_elems = std::max<std::size_t>(vec.size(), 1);
      if (!verbatim && block_elems_ > 0 && vec.size() > block_elems_ &&
          dynamic_cast<const BlockCompressor*>(comp) == nullptr)
        chunk_elems = block_elems_;
      out.put_string(comp->name());
      out.put(static_cast<std::uint64_t>(vec.size()));
      rec.raw_bytes += vec.size() * sizeof(double);
      if (verbatim) {
        // Raw doubles straight into the frames; the frame style (e.g.
        // lz4) is the only compression layer, and the per-frame CRC the
        // only integrity layer — no codec header, no payload allocation.
        out.put(static_cast<std::uint8_t>(FrameVarLayout::kVerbatim));
        const std::span<const byte_t> raw{
            reinterpret_cast<const byte_t*>(vec.data()),
            vec.size() * sizeof(double)};
        out.put_bytes(raw);
        rec.per_var_bytes[*var.name] = raw.size();
      } else {
        out.put(static_cast<std::uint8_t>(FrameVarLayout::kChunked));
        const ChunkGeometry geo(vec.size(), chunk_elems);
        out.put(static_cast<std::uint64_t>(geo.chunk_elems));
        std::size_t var_bytes = 0;
        const WallTimer comp_timer;
        double comp_seconds = 0.0;
        for (std::size_t c = 0; c < geo.count(); ++c) {
          const double before = comp_timer.seconds();
          const auto payload =
              comp->compress({vec.data() + geo.begin(c), geo.length(c)});
          comp_seconds += comp_timer.seconds() - before;
          out.put(static_cast<std::uint64_t>(payload.size()));
          out.put_bytes(payload);
          var_bytes += payload.size();
        }
        observe_compress(sink_, *comp, vec.size() * sizeof(double), var_bytes,
                         comp_seconds);
        rec.per_var_bytes[*var.name] = var_bytes;
      }
    } else {
      out.put(static_cast<std::uint8_t>(VarKind::kBlob));
      out.put(static_cast<std::uint64_t>(var.blob->size()));
      out.put_bytes(*var.blob);
      rec.raw_bytes += var.blob->size();
      rec.per_var_bytes[*var.name] = var.blob->size();
    }
  }
  out.finish();
  rec.compress_seconds = timer.seconds();
  rec.stored_bytes = out.stream_bytes();
  return rec;
}

CheckpointRecord CheckpointManager::build_delta_stream(
    const std::vector<VarView>& vars, int version,
    const ChunkBaseState* base, std::vector<byte_t>& bytes,
    std::shared_ptr<const ChunkBaseState>& out_state) const {
  CheckpointRecord rec;
  rec.version = version;
  rec.base_version = base != nullptr ? base->version : -1;
  rec.chain_len = base != nullptr ? base->chain_len + 1 : 0;

  auto state = std::make_shared<ChunkBaseState>();
  state->version = version;
  state->chunk_elems = delta_chunk_elems_;
  state->chain_len = rec.chain_len;

  ByteWriter out;
  out.put(kDeltaMagic);
  out.put(kDeltaFormatVersion);
  out.put(static_cast<std::int32_t>(rec.base_version));
  out.put(rec.chain_len);
  out.put(static_cast<std::uint32_t>(vars.size()));

  WallTimer timer;
  for (const auto& var : vars) {
    out.put(static_cast<std::int32_t>(var.id));
    out.put_string(*var.name);
    if (var.vec != nullptr) {
      out.put(static_cast<std::uint8_t>(DeltaVarKind::kVector));
      // Chunks are the unit of parallel compression here, so the block
      // pipeline is not layered on top (a registered BlockCompressor is
      // still honoured as the per-chunk codec).
      const std::string comp_name = var.compressor->name();
      const std::vector<std::uint64_t>* base_hashes =
          base != nullptr ? base->hashes_for(var.id, comp_name) : nullptr;
      std::vector<std::uint64_t> hashes;
      const WallTimer comp_timer;
      const ChunkEncodeStats stats =
          encode_chunked_vector(out, *var.vec, *var.compressor,
                                delta_chunk_elems_, base_hashes, hashes);
      observe_compress(sink_, *var.compressor,
                       var.vec->size() * sizeof(double), stats.literal_bytes,
                       comp_timer.seconds());
      state->vars.push_back({var.id, comp_name, std::move(hashes)});
      rec.raw_bytes += var.vec->size() * sizeof(double);
      rec.chunks += stats.chunks;
      rec.chunks_deduped += stats.refs;
      rec.per_var_bytes[*var.name] = stats.literal_bytes;
    } else {
      out.put(static_cast<std::uint8_t>(DeltaVarKind::kBlob));
      out.put(static_cast<std::uint64_t>(var.blob->size()));
      out.put(crc32(*var.blob));
      out.put_bytes(*var.blob);
      rec.raw_bytes += var.blob->size();
      rec.per_var_bytes[*var.name] = var.blob->size();
    }
  }
  rec.compress_seconds = timer.seconds();

  rec.stored_bytes = out.size();
  bytes = std::move(out).take();
  out_state = std::move(state);
  return rec;
}

void CheckpointManager::mark_chain(int v, std::set<int>& live) const {
  // 1024 hops is far beyond any legal chain (bounded by max_delta_chain_);
  // the cap only guards a corrupt map from wedging pruning.
  int hops = 0;
  while (v >= 0 && hops++ <= 1024 && live.insert(v).second) {
    const auto it = base_of_.find(v);
    v = it != base_of_.end() ? it->second : -1;
  }
}

void CheckpointManager::prune_retention(int latest_committed) {
  // Aborted async versions leave holes in the version sequence, so scan up
  // from the lowest possibly-live version instead of stopping at the first
  // gap (remove() of an absent version is a cheap no-op in both stores).
  const int keep_from = latest_committed - retention_ + 1;
  // Nothing below the window to remove (e.g. tiered mode parks the
  // manager-level retention and lets the hierarchy prune). The manager only
  // consults base links for its own pruning decisions, so here they can be
  // bounded to the chains still reachable from the tip and from in-flight
  // staged bases — without this, a long parked-retention run would leak one
  // entry per checkpoint.
  if (keep_from <= prune_floor_) {
    if (!base_of_.empty()) {
      std::set<int> live;
      mark_chain(latest_committed, live);
      for (const auto& [staged, base] : staged_base_) mark_chain(base, live);
      std::erase_if(base_of_,
                    [&live](const auto& e) { return !live.contains(e.first); });
    }
    return;
  }

  // Ref-counted bases: a version below the retention window survives as
  // long as a retained (or in-flight staged) version's delta chain still
  // references it — dropping it would break that chain's recovery.
  std::set<int> live;
  if (!base_of_.empty() || !staged_base_.empty()) {
    for (int v = std::max(0, keep_from); v <= latest_committed; ++v)
      mark_chain(v, live);
    for (const auto& [staged, base] : staged_base_) mark_chain(base, live);
  }

  for (int v = prune_floor_; v < keep_from; ++v) {
    if (live.contains(v)) continue;
    store_->remove(v);
    base_of_.erase(v);
  }
  // Never advance the floor past a version that is still undecided (it may
  // commit out of order later) or past a live chain base (it must be
  // re-examined once the chain referencing it retires).
  int advance_to = keep_from;
  if (!live.empty()) advance_to = std::min(advance_to, *live.begin());
  if (!staged_versions_.empty())
    advance_to = std::min(advance_to, *staged_versions_.begin());
  prune_floor_ = std::max(prune_floor_, advance_to);
}

std::shared_ptr<const ChunkBaseState> CheckpointManager::pick_delta_base()
    const {
  if (max_delta_chain_ <= 0 || committed_state_ == nullptr) return nullptr;
  // A base whose chunk geometry no longer matches cannot be referenced;
  // a chain at max length forces the periodic full checkpoint; a base
  // discarded from the store (torn write) must not be referenced either.
  if (committed_state_->chunk_elems != delta_chunk_elems_) return nullptr;
  if (static_cast<int>(committed_state_->chain_len) + 1 > max_delta_chain_)
    return nullptr;
  if (!store_->exists(committed_state_->version)) return nullptr;
  return committed_state_;
}

CheckpointRecord CheckpointManager::checkpoint() {
  require(!entries_.empty(), "checkpoint: nothing protected");
  std::vector<VarView> views;
  views.reserve(entries_.size());
  for (const auto& [id, e] : entries_) {
    VarView v;
    v.id = id;
    v.name = &e.name;
    v.vec = e.src;
    v.blob = e.blob;
    v.compressor = compressor_for(e);
    views.push_back(v);
  }
  std::vector<byte_t> bytes;
  CheckpointRecord rec;
  if (max_delta_chain_ > 0) {
    const auto base = pick_delta_base();
    std::shared_ptr<const ChunkBaseState> state;
    rec = build_delta_stream(views, next_version_, base.get(), bytes, state);
    store_->write(rec.version, bytes);
    base_of_[rec.version] = rec.base_version;
    committed_state_ = std::move(state);
  } else if (streaming_.enabled) {
    // Stream frames straight into the store's staging sink and promote on
    // success — the synchronous fusion of write_pending + commit, with
    // peak memory bounded by the frame writer, not the checkpoint size.
    auto sink = store_->open_write_pending(next_version_);
    rec = build_frame_stream(views, next_version_, *sink);
    sink->finish();
    store_->commit(rec.version);
  } else {
    rec = build_stream(views, next_version_, bytes);
    store_->write(rec.version, bytes);
  }
  prune_retention(rec.version);
  ++next_version_;
  return rec;
}

// ----- staged (asynchronous) pipeline ---------------------------------------

int CheckpointManager::acquire_slot() {
  std::unique_lock<std::mutex> lock(slot_mu_);
  for (;;) {
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (!slots_[i].busy) {
        slots_[i].busy = true;
        return static_cast<int>(i);
      }
    }
    slot_cv_.wait(lock);
  }
}

void CheckpointManager::release_slot(int slot) {
  {
    const std::lock_guard<std::mutex> lock(slot_mu_);
    slots_[static_cast<std::size_t>(slot)].busy = false;
  }
  slot_cv_.notify_all();
}

StageTicket CheckpointManager::stage() {
  require(!entries_.empty(), "stage: nothing protected");
  if (writer_ == nullptr) writer_ = std::make_unique<AsyncCheckpointWriter>();

  const int slot_idx = acquire_slot();
  StagingSlot& slot = slots_[static_cast<std::size_t>(slot_idx)];

  WallTimer timer;
  StageTicket ticket;
  ticket.version = next_version_++;

  try {
    // Copy-assign into the slot's existing StagedVars so the double buffer
    // reuses its allocations from the previous round.
    slot.vars.resize(entries_.size());
    std::size_t k = 0;
    for (const auto& [id, e] : entries_) {
      StagedVar& sv = slot.vars[k++];
      sv.id = id;
      sv.name = e.name;
      sv.compressor = compressor_for(e);
      if (e.src != nullptr) {
        sv.is_vector = true;
        sv.vec = *e.src;
        sv.blob.clear();
        ticket.raw_bytes += e.src->size() * sizeof(double);
      } else {
        sv.is_vector = false;
        sv.blob = *e.blob;
        sv.vec.clear();
        ticket.raw_bytes += e.blob->size();
      }
    }
  } catch (...) {
    // A failed copy (e.g. bad_alloc) must not strand the slot as busy.
    release_slot(slot_idx);
    throw;
  }
  ticket.stage_seconds = timer.seconds();
  if (sink_.metrics != nullptr) {
    sink_.metrics->observe("ckpt.stage_copy_seconds", ticket.stage_seconds);
    sink_.metrics->observe("ckpt.stage_raw_bytes",
                           static_cast<double>(ticket.raw_bytes));
  }

  const int version = ticket.version;
  // The delta base is decided here, on the owner thread, so the background
  // drain never touches the (owner-mutated) bookkeeping: it encodes against
  // an immutable snapshot of the base's hashes.
  const bool delta = max_delta_chain_ > 0;
  const bool streaming = !delta && streaming_.enabled;
  std::shared_ptr<const ChunkBaseState> base;
  if (delta) base = pick_delta_base();
  auto drain = [this, version, slot_idx, delta, streaming, base] {
    const WallTimer job_timer;  // Runs on the writer thread; registry shards.
    std::vector<byte_t> bytes;
    std::unique_ptr<ByteSink> sink;
    CheckpointRecord rec;
    try {
      const StagingSlot& slot_ref =
          slots_[static_cast<std::size_t>(slot_idx)];
      std::vector<VarView> views;
      views.reserve(slot_ref.vars.size());
      for (const auto& sv : slot_ref.vars) {
        VarView v;
        v.id = sv.id;
        v.name = &sv.name;
        if (sv.is_vector)
          v.vec = &sv.vec;
        else
          v.blob = &sv.blob;
        v.compressor = sv.compressor;
        views.push_back(v);
      }
      if (delta) {
        std::shared_ptr<const ChunkBaseState> state;
        rec = build_delta_stream(views, version, base.get(), bytes, state);
        const std::lock_guard<std::mutex> lock(slot_mu_);
        drained_states_[version] = std::move(state);
      } else if (streaming) {
        // Frames flow into the store sink while the slot is still held —
        // that is the point: the stream is never materialized, so the
        // slot's staged copy is the only full-size buffer alive.
        sink = store_->open_write_pending(version);
        rec = build_frame_stream(views, version, *sink);
      } else {
        rec = build_stream(views, version, bytes);
      }
    } catch (...) {
      // A throwing compressor must not strand the slot as busy forever.
      // (A part-written streaming sink cleans up in its destructor.)
      release_slot(slot_idx);
      throw;
    }
    // The stream owns the data now; free the slot before the (slow) store
    // write so the solver can stage the next checkpoint meanwhile. The
    // streaming sink already holds every byte, so sealing it does not need
    // the slot either.
    release_slot(slot_idx);
    if (sink != nullptr)
      sink->finish();
    else
      store_->write_pending(version, bytes);
    if (sink_.metrics != nullptr)
      sink_.metrics->observe("ckpt.drain_job_seconds", job_timer.seconds());
    return rec;
  };
  // Track the version before enqueueing so a failed submit can unwind
  // completely: nothing else releases the slot once it is marked busy.
  try {
    staged_versions_.insert(version);
    if (delta) staged_base_[version] = base != nullptr ? base->version : -1;
    writer_->submit(version, std::move(drain));
  } catch (...) {
    staged_versions_.erase(version);
    staged_base_.erase(version);
    release_slot(slot_idx);
    throw;
  }
  return ticket;
}

CheckpointRecord CheckpointManager::wait_drain(int version) {
  // The writer surrenders each outcome once, so waiting on a version that
  // was already committed/aborted (or never staged) would block forever —
  // fail fast instead.
  require(staged_versions_.contains(version),
          "wait_drain: version is not an in-flight drain");
  if (const auto it = drained_.find(version); it != drained_.end())
    return it->second;
  // The writer surrenders each outcome exactly once, so a drain that threw
  // is remembered here — re-waiting on it would block forever.
  if (failed_drains_.contains(version))
    throw corrupt_stream_error("wait_drain: drain already failed for version " +
                               std::to_string(version));
  require(writer_ != nullptr, "wait_drain: no drain was submitted");
  try {
    const CheckpointRecord rec = writer_->wait(version);
    drained_[version] = rec;
    return rec;
  } catch (...) {
    failed_drains_.insert(version);
    throw;
  }
}

void CheckpointManager::commit_version(int version) {
  const CheckpointRecord rec = wait_drain(version);
  store_->commit(version);
  drained_.erase(version);
  staged_versions_.erase(version);
  if (max_delta_chain_ > 0) {
    base_of_[version] = rec.base_version;
    staged_base_.erase(version);
    // The drain joined above, so its drained_states_ insert happened-before
    // this read; the lock only orders against *other* in-flight drains.
    const std::lock_guard<std::mutex> lock(slot_mu_);
    if (const auto it = drained_states_.find(version);
        it != drained_states_.end()) {
      committed_state_ = std::move(it->second);
      drained_states_.erase(it);
    }
  }
  // Prune against the highest committed version, so an out-of-order commit
  // of an already-superseded version retires it immediately.
  prune_retention(store_->latest_version());
}

void CheckpointManager::abort_version(int version) {
  require(staged_versions_.contains(version),
          "abort_version: version is not an in-flight drain");
  try {
    wait_drain(version);
  } catch (...) {
    // The drain itself failed; there is nothing pending to drop, but the
    // version must still be retired below.
  }
  store_->abort(version);
  drained_.erase(version);
  failed_drains_.erase(version);
  staged_versions_.erase(version);
  staged_base_.erase(version);
  {
    const std::lock_guard<std::mutex> lock(slot_mu_);
    drained_states_.erase(version);
  }
}

void CheckpointManager::discard_version(int version) {
  store_->remove(version);
  base_of_.erase(version);
  if (committed_state_ != nullptr && committed_state_->version == version)
    committed_state_.reset();
}

// ----------------------------------------------------------------------------

CheckpointRecord CheckpointManager::recover() {
  const int version = store_->latest_version();
  if (version < 0) throw corrupt_stream_error("recover: no checkpoint exists");

  // Streams are self-describing; peek the magic to dispatch. Framed
  // streams restore incrementally through the source (bounded memory);
  // the legacy and delta formats are parsed in memory, so the remainder
  // of the blob is materialized for them.
  auto src = store_->open_read(version);
  byte_t magic_buf[4];
  const std::size_t magic_got = read_fully(*src, magic_buf);
  std::uint32_t magic = 0;
  if (magic_got == 4) std::memcpy(&magic, magic_buf, 4);
  if (magic == kFrameStreamMagic) return recover_frame_stream(version, *src);

  std::vector<byte_t> data(magic_buf, magic_buf + magic_got);
  {
    const auto rest = read_all(*src);
    data.insert(data.end(), rest.begin(), rest.end());
  }
  src.reset();

  if (is_delta_stream(data)) return recover_delta(version, data);

  CheckpointRecord rec;
  rec.version = version;
  rec.stored_bytes = data.size();

  ByteReader in(data);
  if (in.get<std::uint32_t>() != kMagic)
    throw corrupt_stream_error("recover: bad checkpoint magic");
  if (in.get<std::uint16_t>() != kVersion)
    throw corrupt_stream_error("recover: unsupported format version");
  const auto count = in.get<std::uint32_t>();

  WallTimer timer;
  for (std::uint32_t i = 0; i < count; ++i) {
    const auto id = in.get<std::int32_t>();
    const std::string name = in.get_string();
    const auto kind = static_cast<VarKind>(in.get<std::uint8_t>());
    const std::string comp_name = in.get_string();
    const auto elem_count = in.get<std::uint64_t>();
    const auto payload_size = in.get<std::uint64_t>();
    const auto stored_crc = in.get<std::uint32_t>();
    const auto payload = in.get_bytes(payload_size);
    if (crc32(payload) != stored_crc)
      throw corrupt_stream_error("recover: CRC mismatch for variable " + name);

    const auto it = entries_.find(id);
    if (it == entries_.end())
      throw corrupt_stream_error("recover: unregistered variable id " +
                                 std::to_string(id));
    Entry& e = it->second;
    if (kind == VarKind::kVector) {
      require(e.dst != nullptr, "recover: kind mismatch (expected vector)");
      const Compressor* comp = compressor_for(e);
      // The stored name decides the layout: a "block+" prefix means the
      // payload is a framed block stream around the registered compressor
      // (the block size is embedded in the stream itself).
      std::optional<BlockCompressor> blk;
      if (comp_name == "block+" + comp->name()) {
        blk.emplace(comp);
        comp = &*blk;
      } else if (comp->name() != comp_name) {
        throw corrupt_stream_error(
            "recover: compressor mismatch for variable " + name + " (stored " +
            comp_name + ", registered " + comp->name() + ")");
      }
      e.dst->resize(elem_count);
      comp->decompress(payload, *e.dst);
      rec.raw_bytes += elem_count * sizeof(double);
    } else {
      require(e.blob != nullptr, "recover: kind mismatch (expected blob)");
      e.blob->assign(payload.begin(), payload.end());
      rec.raw_bytes += payload.size();
    }
    rec.per_var_bytes[name] = payload_size;
  }
  rec.compress_seconds = timer.seconds();
  if (sink_.metrics != nullptr)
    sink_.metrics->observe("ckpt.recover_seconds", rec.compress_seconds,
                           {{"format", "legacy"}});
  recovery_pending_ = false;
  return rec;
}

CheckpointRecord CheckpointManager::recover_frame_stream(int version,
                                                         ByteSource& src) {
  CheckpointRecord rec;
  rec.version = version;

  FrameReader in(src, /*magic_already_consumed=*/true);
  if (in.get<std::uint16_t>() != kVersion)
    throw corrupt_stream_error("recover: unsupported format version");
  const auto count = in.get<std::uint32_t>();

  WallTimer timer;
  std::vector<byte_t> payload;
  for (std::uint32_t i = 0; i < count; ++i) {
    const auto id = in.get<std::int32_t>();
    const std::string name = in.get_string();
    const auto kind = static_cast<VarKind>(in.get<std::uint8_t>());

    const auto it = entries_.find(id);
    if (it == entries_.end())
      throw corrupt_stream_error("recover: unregistered variable id " +
                                 std::to_string(id));
    Entry& e = it->second;
    if (kind == VarKind::kVector) {
      require(e.dst != nullptr, "recover: kind mismatch (expected vector)");
      const std::string comp_name = in.get_string();
      const auto elem_count = in.get<std::uint64_t>();
      const auto layout = static_cast<FrameVarLayout>(in.get<std::uint8_t>());
      if (elem_count > (std::uint64_t{1} << 48))
        throw corrupt_stream_error("recover: implausible element count");
      const Compressor* comp = compressor_for(e);
      // Framed streams store the effective per-chunk codec name (never a
      // synthesized "block+" wrapper — chunking replaces the pipeline).
      if (comp->name() != comp_name)
        throw corrupt_stream_error(
            "recover: compressor mismatch for variable " + name + " (stored " +
            comp_name + ", registered " + comp->name() + ")");
      e.dst->resize(elem_count);
      rec.raw_bytes += elem_count * sizeof(double);
      if (layout == FrameVarLayout::kVerbatim) {
        in.read_into({reinterpret_cast<byte_t*>(e.dst->data()),
                      static_cast<std::size_t>(elem_count) * sizeof(double)});
        rec.per_var_bytes[name] = elem_count * sizeof(double);
      } else if (layout == FrameVarLayout::kChunked) {
        const auto chunk_elems = in.get<std::uint64_t>();
        if (chunk_elems == 0 ||
            chunk_elems > std::max<std::uint64_t>(elem_count, 1))
          throw corrupt_stream_error("recover: implausible chunk size");
        const ChunkGeometry geo(static_cast<std::size_t>(elem_count),
                                static_cast<std::size_t>(chunk_elems));
        std::size_t var_bytes = 0;
        for (std::size_t c = 0; c < geo.count(); ++c) {
          const std::size_t len = geo.length(c);
          const auto payload_size = in.get<std::uint64_t>();
          if (payload_size > frame_chunk_payload_bound(len))
            throw corrupt_stream_error(
                "recover: implausible chunk payload size");
          payload.resize(static_cast<std::size_t>(payload_size));
          in.read_into(payload);
          comp->decompress(payload, {e.dst->data() + geo.begin(c), len});
          var_bytes += payload.size();
        }
        rec.per_var_bytes[name] = var_bytes;
      } else {
        throw corrupt_stream_error("recover: unknown vector layout");
      }
    } else if (kind == VarKind::kBlob) {
      require(e.blob != nullptr, "recover: kind mismatch (expected blob)");
      const auto size = in.get<std::uint64_t>();
      if (size > (std::uint64_t{1} << 40))
        throw corrupt_stream_error("recover: implausible blob size");
      e.blob->resize(static_cast<std::size_t>(size));
      in.read_into(*e.blob);
      rec.raw_bytes += e.blob->size();
      rec.per_var_bytes[name] = e.blob->size();
    } else {
      throw corrupt_stream_error("recover: unknown variable kind");
    }
  }
  in.expect_end();
  rec.stored_bytes = in.stream_bytes() + 4;  // + the magic recover() peeked
  rec.compress_seconds = timer.seconds();
  if (sink_.metrics != nullptr)
    sink_.metrics->observe("ckpt.recover_seconds", rec.compress_seconds,
                           {{"format", "framed"}});
  recovery_pending_ = false;
  return rec;
}

CheckpointRecord CheckpointManager::recover_delta(
    int version, const std::vector<byte_t>& data) {
  CheckpointRecord rec;
  rec.version = version;
  rec.stored_bytes = data.size();

  const ParsedDeltaStream parsed = parse_delta_stream(data);
  rec.base_version = parsed.base_version;
  rec.chain_len = parsed.chain_len;

  // One unresolved reference: where the chunk's doubles must land and the
  // hash that names its content somewhere down the chain.
  struct PendingRef {
    int var_id = 0;
    const std::string* var_name = nullptr;
    const Compressor* comp = nullptr;
    std::uint64_t hash = 0;
    std::span<double> out;
  };
  std::vector<PendingRef> pending;

  WallTimer timer;
  for (const auto& var : parsed.vars) {
    const auto it = entries_.find(var.id);
    if (it == entries_.end())
      throw corrupt_stream_error("recover: unregistered variable id " +
                                 std::to_string(var.id));
    Entry& e = it->second;
    if (var.kind == DeltaVarKind::kBlob) {
      require(e.blob != nullptr, "recover: kind mismatch (expected blob)");
      e.blob->assign(var.blob.begin(), var.blob.end());
      rec.raw_bytes += var.blob.size();
      rec.per_var_bytes[var.name] = var.blob.size();
      continue;
    }
    require(e.dst != nullptr, "recover: kind mismatch (expected vector)");
    const Compressor* comp = compressor_for(e);
    if (comp->name() != var.comp_name)
      throw corrupt_stream_error(
          "recover: compressor mismatch for variable " + var.name +
          " (stored " + var.comp_name + ", registered " + comp->name() + ")");
    e.dst->resize(var.elem_count);
    rec.raw_bytes += var.elem_count * sizeof(double);
    rec.chunks += var.chunks.size();

    // Literal chunks decompress in place; a reference first tries the
    // literals of this same stream (within-version dedup), then joins the
    // chain walk below.
    std::unordered_map<std::uint64_t, std::span<const byte_t>> own_literals;
    std::size_t var_stored = 0;
    const ChunkGeometry geo(static_cast<std::size_t>(var.elem_count),
                            static_cast<std::size_t>(var.chunk_elems));
    for (std::size_t c = 0; c < var.chunks.size(); ++c) {
      const std::span<double> slice{e.dst->data() + geo.begin(c),
                                    geo.length(c)};
      const ParsedChunk& chunk = var.chunks[c];
      if (chunk.tag == ChunkTag::kLiteral) {
        comp->decompress(chunk.payload, slice);
        own_literals.emplace(chunk.hash, chunk.payload);
        var_stored += chunk.payload.size();
      } else if (const auto lit = own_literals.find(chunk.hash);
                 lit != own_literals.end()) {
        comp->decompress(lit->second, slice);
        verify_ref_hash(*comp, slice, chunk.hash, it->second.name);
        ++rec.chunks_deduped;
      } else {
        pending.push_back({var.id, &it->second.name, comp, chunk.hash, slice});
        ++rec.chunks_deduped;
      }
    }
    rec.per_var_bytes[var.name] = var_stored;
  }

  // Chain walk: resolve the remaining references against base versions,
  // nearest first. Every literal a base holds for the right variable and
  // hash is decompressed straight into the recovery target.
  int base = parsed.base_version;
  std::uint32_t steps = 0;
  while (!pending.empty() && base >= 0) {
    if (++steps > parsed.chain_len)
      throw corrupt_stream_error(
          "recover: delta chain longer than its declared length");
    const auto base_data = store_->read(base);
    const ParsedDeltaStream base_parsed = parse_delta_stream(base_data);
    rec.stored_bytes += base_data.size();
    std::unordered_map<std::uint64_t, const ParsedChunk*> literals;
    for (const auto& var : base_parsed.vars) {
      if (var.kind != DeltaVarKind::kVector) continue;
      literals.clear();
      for (const auto& chunk : var.chunks)
        if (chunk.tag == ChunkTag::kLiteral)
          literals.emplace(chunk.hash, &chunk);
      for (auto it = pending.begin(); it != pending.end();) {
        if (it->var_id != var.id) {
          ++it;
          continue;
        }
        const auto lit = literals.find(it->hash);
        if (lit == literals.end()) {
          ++it;
          continue;
        }
        // The base's payloads were produced by the compressor recorded in
        // *its* stream; feeding them to a different registered decoder
        // (compressor swapped mid-chain via unprotect/protect) would
        // corrupt state silently.
        if (it->comp->name() != var.comp_name)
          throw corrupt_stream_error(
              "recover: compressor mismatch in delta chain for variable " +
              *it->var_name + " (base stored " + var.comp_name +
              ", registered " + it->comp->name() + ")");
        it->comp->decompress(lit->second->payload, it->out);
        verify_ref_hash(*it->comp, it->out, it->hash, *it->var_name);
        it = pending.erase(it);
      }
    }
    base = base_parsed.base_version;
  }
  if (!pending.empty())
    throw corrupt_stream_error(
        "recover: delta chain is missing chunks for variable " +
        *pending.front().var_name +
        " (base checkpoint pruned or invalidated?)");

  rec.compress_seconds = timer.seconds();
  if (sink_.metrics != nullptr)
    sink_.metrics->observe("ckpt.recover_seconds", rec.compress_seconds,
                           {{"format", "delta"}});
  recovery_pending_ = false;
  return rec;
}

CheckpointRecord CheckpointManager::snapshot() {
  if (recovery_pending_ && has_checkpoint()) return recover();
  recovery_pending_ = false;
  return checkpoint();
}

}  // namespace lck

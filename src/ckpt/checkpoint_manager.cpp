#include "ckpt/checkpoint_manager.hpp"

#include <optional>

#include "common/byte_buffer.hpp"
#include "common/crc32.hpp"
#include "common/timer.hpp"

namespace lck {
namespace {

constexpr std::uint32_t kMagic = 0x54504b43u;  // "CKPT"
constexpr std::uint16_t kVersion = 1;

enum class VarKind : std::uint8_t { kVector = 0, kBlob = 1 };

}  // namespace

CheckpointManager::CheckpointManager(std::unique_ptr<CheckpointStore> store,
                                     const Compressor* default_compressor)
    : store_(std::move(store)), default_compressor_(default_compressor) {
  require(store_ != nullptr, "checkpoint manager: null store");
  if (default_compressor_ == nullptr) default_compressor_ = &none_;
  next_version_ = store_->latest_version() + 1;
}

void CheckpointManager::protect(int id, std::string name, Vector* data,
                                const Compressor* compressor) {
  require(data != nullptr, "protect: null variable");
  require(!entries_.contains(id), "protect: id already registered");
  entries_[id] = Entry{std::move(name), data, nullptr, compressor};
}

void CheckpointManager::protect_blob(int id, std::string name,
                                     std::vector<byte_t>* data) {
  require(data != nullptr, "protect_blob: null variable");
  require(!entries_.contains(id), "protect_blob: id already registered");
  entries_[id] = Entry{std::move(name), nullptr, data, nullptr};
}

void CheckpointManager::unprotect(int id) { entries_.erase(id); }

CheckpointRecord CheckpointManager::checkpoint() {
  require(!entries_.empty(), "checkpoint: nothing protected");
  CheckpointRecord rec;
  rec.version = next_version_;

  ByteWriter out;
  out.put(kMagic);
  out.put(kVersion);
  out.put(static_cast<std::uint32_t>(entries_.size()));

  WallTimer timer;
  for (const auto& [id, e] : entries_) {
    out.put(static_cast<std::int32_t>(id));
    out.put_string(e.name);
    if (e.vec != nullptr) {
      out.put(static_cast<std::uint8_t>(VarKind::kVector));
      const Compressor* comp = compressor_for(e);
      // Vectors spanning more than one block go through the parallel
      // block pipeline; the stored compressor name records the layout.
      // A registered compressor that is already a BlockCompressor is
      // used as-is — nesting would frame (and CRC) the payload twice.
      std::optional<BlockCompressor> blk;
      if (block_elems_ > 0 && e.vec->size() > block_elems_ &&
          dynamic_cast<const BlockCompressor*>(comp) == nullptr)
        blk.emplace(comp, block_elems_);
      if (blk) comp = &*blk;
      out.put_string(comp->name());
      out.put(static_cast<std::uint64_t>(e.vec->size()));
      const auto payload = comp->compress(*e.vec);
      rec.raw_bytes += e.vec->size() * sizeof(double);
      rec.per_var_bytes[e.name] = payload.size();
      out.put(static_cast<std::uint64_t>(payload.size()));
      out.put(crc32(payload));
      out.put_bytes(payload);
    } else {
      out.put(static_cast<std::uint8_t>(VarKind::kBlob));
      out.put_string("none");
      out.put(static_cast<std::uint64_t>(e.blob->size()));
      rec.raw_bytes += e.blob->size();
      rec.per_var_bytes[e.name] = e.blob->size();
      out.put(static_cast<std::uint64_t>(e.blob->size()));
      out.put(crc32(*e.blob));
      out.put_bytes(*e.blob);
    }
  }
  rec.compress_seconds = timer.seconds();

  rec.stored_bytes = out.size();
  store_->write(rec.version, out.view());
  for (int v = rec.version - retention_; v >= 0 && store_->exists(v); --v)
    store_->remove(v);
  ++next_version_;
  return rec;
}

CheckpointRecord CheckpointManager::recover() {
  const int version = store_->latest_version();
  if (version < 0) throw corrupt_stream_error("recover: no checkpoint exists");
  const auto data = store_->read(version);

  CheckpointRecord rec;
  rec.version = version;
  rec.stored_bytes = data.size();

  ByteReader in(data);
  if (in.get<std::uint32_t>() != kMagic)
    throw corrupt_stream_error("recover: bad checkpoint magic");
  if (in.get<std::uint16_t>() != kVersion)
    throw corrupt_stream_error("recover: unsupported format version");
  const auto count = in.get<std::uint32_t>();

  WallTimer timer;
  for (std::uint32_t i = 0; i < count; ++i) {
    const auto id = in.get<std::int32_t>();
    const std::string name = in.get_string();
    const auto kind = static_cast<VarKind>(in.get<std::uint8_t>());
    const std::string comp_name = in.get_string();
    const auto elem_count = in.get<std::uint64_t>();
    const auto payload_size = in.get<std::uint64_t>();
    const auto stored_crc = in.get<std::uint32_t>();
    const auto payload = in.get_bytes(payload_size);
    if (crc32(payload) != stored_crc)
      throw corrupt_stream_error("recover: CRC mismatch for variable " + name);

    const auto it = entries_.find(id);
    if (it == entries_.end())
      throw corrupt_stream_error("recover: unregistered variable id " +
                                 std::to_string(id));
    Entry& e = it->second;
    if (kind == VarKind::kVector) {
      require(e.vec != nullptr, "recover: kind mismatch (expected vector)");
      const Compressor* comp = compressor_for(e);
      // The stored name decides the layout: a "block+" prefix means the
      // payload is a framed block stream around the registered compressor
      // (the block size is embedded in the stream itself).
      std::optional<BlockCompressor> blk;
      if (comp_name == "block+" + comp->name()) {
        blk.emplace(comp);
        comp = &*blk;
      } else if (comp->name() != comp_name) {
        throw corrupt_stream_error(
            "recover: compressor mismatch for variable " + name + " (stored " +
            comp_name + ", registered " + comp->name() + ")");
      }
      e.vec->resize(elem_count);
      comp->decompress(payload, *e.vec);
      rec.raw_bytes += elem_count * sizeof(double);
    } else {
      require(e.blob != nullptr, "recover: kind mismatch (expected blob)");
      e.blob->assign(payload.begin(), payload.end());
      rec.raw_bytes += payload.size();
    }
    rec.per_var_bytes[name] = payload_size;
  }
  rec.compress_seconds = timer.seconds();
  recovery_pending_ = false;
  return rec;
}

CheckpointRecord CheckpointManager::snapshot() {
  if (recovery_pending_ && has_checkpoint()) return recover();
  recovery_pending_ = false;
  return checkpoint();
}

}  // namespace lck

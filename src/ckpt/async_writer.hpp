#pragma once
/// \file async_writer.hpp
/// \brief Background drain thread for the staged checkpoint pipeline.
///
/// The CheckpointManager stages a snapshot (fast memcpy) and hands this
/// writer a drain job — compress the staged variables, serialize them and
/// write the result as a *pending* store version — so the solver keeps
/// iterating while the expensive part runs off the critical path (the
/// FTI/SCR multilevel-checkpointing overlap the paper's Tt metric pays for
/// synchronously). Jobs execute strictly in submission order on one worker
/// thread; completion is observed with wait()/finished() and the commit or
/// abort decision stays with the caller.

#include <condition_variable>
#include <deque>
#include <exception>
#include <functional>
#include <map>
#include <mutex>
#include <thread>
#include <utility>

#include "ckpt/checkpoint_record.hpp"
#include "common/types.hpp"

namespace lck {

class AsyncCheckpointWriter {
 public:
  /// A drain job: compress + serialize + write_pending, returning the
  /// accounting record of the produced (pending) checkpoint.
  using Job = std::function<CheckpointRecord()>;

  AsyncCheckpointWriter();
  /// Joins the worker after finishing every queued job. Results never
  /// fetched are dropped (their pending store versions stay pending; the
  /// owning manager aborts or commits them as it sees fit).
  ~AsyncCheckpointWriter();

  AsyncCheckpointWriter(const AsyncCheckpointWriter&) = delete;
  AsyncCheckpointWriter& operator=(const AsyncCheckpointWriter&) = delete;

  /// Enqueue the drain for `version`. Versions must be unique among jobs
  /// whose results have not been fetched yet.
  void submit(int version, Job job);

  /// Block until `version`'s drain finishes and return its record,
  /// rethrowing any exception the job raised. Each submitted version may be
  /// waited on exactly once.
  CheckpointRecord wait(int version);

  /// Non-blocking probe: true once `version`'s job has run to completion.
  [[nodiscard]] bool finished(int version) const;

  /// Jobs submitted but not yet completed (queued + running).
  [[nodiscard]] std::size_t in_flight() const;

 private:
  struct Outcome {
    CheckpointRecord record;
    std::exception_ptr error;
  };

  void worker_loop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::pair<int, Job>> queue_;
  std::map<int, Outcome> done_;
  std::size_t running_ = 0;
  bool stop_ = false;
  std::thread worker_;
};

}  // namespace lck

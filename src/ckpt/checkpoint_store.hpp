#pragma once
/// \file checkpoint_store.hpp
/// \brief Storage backends for checkpoint blobs: in-memory (fast experiment
///        loops) and on-disk with atomic commit (real persistence).
///
/// Versions move through a two-phase lifecycle for the asynchronous
/// checkpoint pipeline: `write_pending()` stages a blob that is invisible to
/// readers, then `commit()` promotes it (atomic) or `abort()` drops it.
/// `write()` remains the one-shot synchronous path (stage + commit fused).
/// `read()`, `exists()` and `latest_version()` only ever see committed
/// versions, so a failure between write_pending() and commit() rolls back to
/// the last committed checkpoint by construction.

#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "common/byte_stream.hpp"
#include "common/types.hpp"
#include "obs/observability.hpp"

namespace lck {

/// Abstract keyed blob store. Keys are checkpoint versions; writes must be
/// atomic (a reader never sees a torn blob).
///
/// Thread-safety contract: `write_pending()` may be called from a background
/// writer thread concurrently with committed-side reads from the owner
/// thread. `commit()`/`abort()` for a version must not race its
/// `write_pending()` (the async pipeline joins the drain first).
class CheckpointStore {
 public:
  virtual ~CheckpointStore() = default;

  virtual void write(int version, std::span<const byte_t> data) = 0;
  [[nodiscard]] virtual std::vector<byte_t> read(int version) const = 0;
  [[nodiscard]] virtual bool exists(int version) const = 0;
  virtual void remove(int version) = 0;
  /// Highest *committed* stored version, or -1 when empty.
  [[nodiscard]] virtual int latest_version() const = 0;

  /// Stage `data` for `version` without making it visible to readers.
  /// Default implementation holds pending blobs in memory; backends with a
  /// cheaper commit (e.g. DiskStore's rename) override all three.
  virtual void write_pending(int version, std::span<const byte_t> data);
  /// Promote a pending version to committed. Throws config_error if the
  /// version has no pending blob.
  virtual void commit(int version);
  /// Drop a pending version (failure mid-drain). No-op if absent.
  virtual void abort(int version);
  [[nodiscard]] virtual bool has_pending(int version) const;

  /// Open an incremental sink that stages `version` — the streaming
  /// equivalent of write_pending(). The sink's finish() seals the pending
  /// blob; commit()/abort() then apply as usual. The default buffers in
  /// memory and delegates to write_pending() on finish, so every backend
  /// works unchanged; backends with real incremental I/O (DiskStore)
  /// override it to keep writer memory bounded.
  [[nodiscard]] virtual std::unique_ptr<ByteSink> open_write_pending(
      int version);
  /// Open an incremental source over the committed blob for `version`.
  /// Default materializes read(); DiskStore overrides with file streaming.
  [[nodiscard]] virtual std::unique_ptr<ByteSource> open_read(
      int version) const;

  /// Attach observability handles. Default no-op; instrumented backends
  /// (TieredCheckpointStore, DedupChunkStore) override and forward to any
  /// stores they compose. Passing a default-constructed sink detaches.
  virtual void set_observability(obs::Sink /*sink*/) {}

 private:
  mutable std::mutex pending_mu_;
  std::map<int, std::vector<byte_t>> pending_;
};

/// RAM-backed store (default for the failure-injection experiments, where
/// PFS I/O time is modeled by sim::PfsModel rather than performed).
class MemoryStore final : public CheckpointStore {
 public:
  void write(int version, std::span<const byte_t> data) override;
  [[nodiscard]] std::vector<byte_t> read(int version) const override;
  [[nodiscard]] bool exists(int version) const override;
  void remove(int version) override;
  [[nodiscard]] int latest_version() const override;

 private:
  std::map<int, std::vector<byte_t>> blobs_;
};

/// Directory-backed store. Each version is `ckpt_<version>.lck`, written to
/// a temporary file and committed with rename() (atomic on POSIX). Pending
/// versions are `ckpt_<version>.lck.pending` files, so the background drain
/// performs the expensive write and commit() is a metadata-only rename.
/// Opening a directory sweeps stale .lck.pending files: an uncommitted
/// pending blob is a crashed run's leftover and must not accumulate.
class DiskStore final : public CheckpointStore {
 public:
  explicit DiskStore(std::string directory);

  void write(int version, std::span<const byte_t> data) override;
  [[nodiscard]] std::vector<byte_t> read(int version) const override;
  [[nodiscard]] bool exists(int version) const override;
  void remove(int version) override;
  [[nodiscard]] int latest_version() const override;

  void write_pending(int version, std::span<const byte_t> data) override;
  void commit(int version) override;
  void abort(int version) override;
  [[nodiscard]] bool has_pending(int version) const override;

  /// True file streaming: frames land on disk as they are produced, so a
  /// checkpoint larger than RAM never exists in memory at once. The sink
  /// writes `<pending>.tmp` and renames to `.pending` on finish(), keeping
  /// the invariant that a .pending file is always complete.
  [[nodiscard]] std::unique_ptr<ByteSink> open_write_pending(
      int version) override;
  [[nodiscard]] std::unique_ptr<ByteSource> open_read(
      int version) const override;

 private:
  [[nodiscard]] std::string path_for(int version) const;
  [[nodiscard]] std::string pending_path_for(int version) const;
  std::string dir_;
};

}  // namespace lck

#pragma once
/// \file checkpoint_store.hpp
/// \brief Storage backends for checkpoint blobs: in-memory (fast experiment
///        loops) and on-disk with atomic commit (real persistence).

#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace lck {

/// Abstract keyed blob store. Keys are checkpoint versions; writes must be
/// atomic (a reader never sees a torn blob).
class CheckpointStore {
 public:
  virtual ~CheckpointStore() = default;

  virtual void write(int version, std::span<const byte_t> data) = 0;
  [[nodiscard]] virtual std::vector<byte_t> read(int version) const = 0;
  [[nodiscard]] virtual bool exists(int version) const = 0;
  virtual void remove(int version) = 0;
  /// Highest stored version, or -1 when empty.
  [[nodiscard]] virtual int latest_version() const = 0;
};

/// RAM-backed store (default for the failure-injection experiments, where
/// PFS I/O time is modeled by sim::PfsModel rather than performed).
class MemoryStore final : public CheckpointStore {
 public:
  void write(int version, std::span<const byte_t> data) override;
  [[nodiscard]] std::vector<byte_t> read(int version) const override;
  [[nodiscard]] bool exists(int version) const override;
  void remove(int version) override;
  [[nodiscard]] int latest_version() const override;

 private:
  std::map<int, std::vector<byte_t>> blobs_;
};

/// Directory-backed store. Each version is `ckpt_<version>.lck`, written to
/// a temporary file and committed with rename() (atomic on POSIX).
class DiskStore final : public CheckpointStore {
 public:
  explicit DiskStore(std::string directory);

  void write(int version, std::span<const byte_t> data) override;
  [[nodiscard]] std::vector<byte_t> read(int version) const override;
  [[nodiscard]] bool exists(int version) const override;
  void remove(int version) override;
  [[nodiscard]] int latest_version() const override;

 private:
  [[nodiscard]] std::string path_for(int version) const;
  std::string dir_;
};

}  // namespace lck

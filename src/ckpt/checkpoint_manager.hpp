#pragma once
/// \file checkpoint_manager.hpp
/// \brief FTI-like checkpoint/restart API (paper §4.2 workflow):
///        Protect() registers variables, Checkpoint() saves them,
///        Recover() restores them — with a pluggable compressor per
///        variable and CRC-32 integrity on every payload.
///
/// Two write paths share one serialization core:
///  - checkpoint() — the synchronous path (CkptMode::kSync): compress +
///    write + commit inline, blocking the caller for the full duration.
///  - stage() / wait_drain() / commit_version() / abort_version() — the
///    staged pipeline (CkptMode::kAsync): stage() memcpys the protected
///    variables into one of two staging slots and returns immediately; a
///    background AsyncCheckpointWriter drains the slot (compression + store
///    write) into a *pending* store version; the caller later promotes it
///    with commit_version() or rolls it back with abort_version(). A third
///    stage() while both slots are busy blocks until a drain finishes
///    (double-buffer back-pressure, matching FTI semantics).

#include <array>
#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "ckpt/checkpoint_record.hpp"
#include "ckpt/checkpoint_store.hpp"
#include "ckpt/chunk/chunk_codec.hpp"
#include "ckpt/frame_stream.hpp"
#include "compress/block_compressor.hpp"
#include "compress/compressor.hpp"
#include "obs/observability.hpp"
#include "sparse/vector_ops.hpp"

namespace lck {

class AsyncCheckpointWriter;

/// Whether checkpoints block for the full compress+write (kSync), only for
/// the staging copy with the drain in the background (kAsync), or go
/// through the multi-level hierarchy — staged L1 drain plus background
/// L1→L2→L3 promotion and severity-aware recovery (kTiered).
enum class CkptMode { kSync, kAsync, kTiered };

[[nodiscard]] const char* to_string(CkptMode m) noexcept;

/// Receipt of a stage(): identifies the in-flight version and what the
/// staging copy cost for real.
struct StageTicket {
  int version = -1;
  std::size_t raw_bytes = 0;   ///< Uncompressed bytes captured in the slot.
  double stage_seconds = 0.0;  ///< Real seconds spent on the staging memcpy.
};

/// Checkpoint manager in the style of FTI: variables are registered once
/// with Protect(), then Checkpoint()/Recover() move all of them at once.
///
/// Double-array variables go through the configured compressor (per-variable
/// override possible: the lossy scheme compresses only the solution vector,
/// while scalar/state blobs are stored verbatim).
class CheckpointManager {
 public:
  /// `default_compressor` applies to every protected vector without an
  /// override; not owned, may be mutated between checkpoints (adaptive
  /// error bounds) — but never while a drain is in flight.
  CheckpointManager(std::unique_ptr<CheckpointStore> store,
                    const Compressor* default_compressor);
  ~CheckpointManager();

  /// FTI Protect(): register a double-vector variable under a unique id.
  /// Passing a per-variable compressor overrides the default.
  void protect(int id, std::string name, Vector* data,
               const Compressor* compressor = nullptr);

  /// Protect with a split source/target: checkpoints read from `source`
  /// (e.g. the solver's live solution vector — no intermediate copy), while
  /// recover() restores into `restore_target`. Both must outlive the
  /// registration; they may alias. `source` must not mutate during a
  /// synchronous checkpoint() or a stage() call (the staging copy snapshots
  /// it; afterwards it is free to change).
  void protect(int id, std::string name, const Vector* source,
               Vector* restore_target, const Compressor* compressor = nullptr);

  /// Register an opaque byte blob (solver scalar state, app metadata).
  /// Blobs are stored verbatim (never lossy).
  void protect_blob(int id, std::string name, std::vector<byte_t>* data);

  /// Remove a registration.
  void unprotect(int id);

  /// Save all protected variables as a new checkpoint version
  /// (synchronous: compress + write + commit before returning).
  CheckpointRecord checkpoint();

  // ----- staged (asynchronous) pipeline ------------------------------------

  /// Copy all protected variables into a free staging slot and enqueue the
  /// background drain. Returns as soon as the copy is done; blocks only if
  /// both staging slots hold unfinished drains (back-pressure).
  StageTicket stage();

  /// Block until `version`'s drain (compression + pending store write) has
  /// finished and return its record. Idempotent until the version is
  /// committed or aborted. Rethrows any drain-side exception.
  CheckpointRecord wait_drain(int version);

  /// Promote a drained version to committed and prune per retention.
  void commit_version(int version);

  /// Roll back a staged/drained version (failure during the drain window):
  /// the pending store blob is dropped and recover() keeps using the last
  /// committed version.
  void abort_version(int version);

  /// Drains submitted but not yet committed/aborted.
  [[nodiscard]] int versions_in_flight() const noexcept {
    return static_cast<int>(staged_versions_.size());
  }

  // --------------------------------------------------------------------------

  /// Restore all protected variables from the latest committed checkpoint.
  /// Vectors are resized to the checkpointed length.
  CheckpointRecord recover();

  /// FTI Snapshot(): recover() if a restart is pending, else checkpoint().
  CheckpointRecord snapshot();

  /// Mark that the next snapshot() must recover (set after a failure).
  void request_recovery() noexcept { recovery_pending_ = true; }

  [[nodiscard]] bool has_checkpoint() const {
    return store_->latest_version() >= 0;
  }
  [[nodiscard]] int latest_version() const { return store_->latest_version(); }

  /// Discard a committed version (used when a failure interrupts the
  /// checkpoint write itself, so the torn file must not be recovered from).
  /// A discarded version can no longer serve as a delta base: the next
  /// checkpoint after a discard starts a fresh chain.
  void discard_version(int version);

  /// Keep at most `n` most recent versions (older ones deleted on write).
  void set_retention(int n) {
    require(n >= 1, "checkpoint manager: retention must be >= 1");
    retention_ = n;
  }

  /// Configure the parallel block-compression pipeline: vectors larger than
  /// `block_elems` are split into blocks compressed concurrently (per-block
  /// CRC-32, any scheme). 0 disables. Default: BlockCompressor's block size,
  /// so large production vectors get the parallel path automatically while
  /// small ones keep the single-shot stream. Recovery reads whichever layout
  /// the stored checkpoint used, so this can change between runs. Must not
  /// change while a drain is in flight.
  void set_block_pipeline(std::size_t block_elems) noexcept {
    block_elems_ = block_elems;
  }
  [[nodiscard]] std::size_t block_pipeline_elems() const noexcept {
    return block_elems_;
  }

  /// Default chunk size of the delta (chunked) serializer, in doubles.
  static constexpr std::size_t kDefaultChunkElems = 4096;

  /// Configure chunked delta checkpointing. `max_delta_chain` = 0 (the
  /// default) keeps the legacy serializer, byte-identical to the
  /// pre-chunk format. With a positive value every checkpoint uses the
  /// content-addressed chunk format: chunks whose raw content is unchanged
  /// since the previous committed checkpoint are stored as references, and
  /// at most `max_delta_chain` consecutive deltas ride on one full
  /// checkpoint before the next full is forced (bounding both recovery
  /// read amplification and how long retention must keep chain bases).
  /// Retention pruning never drops a version that a live chain references.
  /// In delta mode chunks replace the block pipeline as the unit of
  /// parallel compression. Must not change while a drain is in flight.
  void set_delta(int max_delta_chain,
                 std::size_t chunk_elems = kDefaultChunkElems) {
    require(max_delta_chain >= 0,
            "checkpoint manager: max_delta_chain must be >= 0");
    require(chunk_elems >= 1,
            "checkpoint manager: delta chunk_elems must be >= 1");
    max_delta_chain_ = max_delta_chain;
    delta_chunk_elems_ = chunk_elems;
  }
  [[nodiscard]] int max_delta_chain() const noexcept {
    return max_delta_chain_;
  }
  [[nodiscard]] std::size_t delta_chunk_elems() const noexcept {
    return delta_chunk_elems_;
  }

  /// Configure the streaming framed serializer (see frame_stream.hpp).
  /// Enabled by default: non-delta checkpoints are produced frame-by-frame
  /// through a store sink with bounded writer memory, and recovered
  /// incrementally the same way. Disabling falls back to the legacy
  /// whole-stream serializer ("CKPT" magic). Delta mode (set_delta > 0)
  /// takes precedence: delta streams keep their own chunked "DKPT" format.
  /// Recovery always dispatches on the stored magic, so any mode can read
  /// checkpoints written by any other. Must not change while a drain is in
  /// flight.
  void set_streaming(const StreamingConfig& cfg) {
    cfg.validate();
    streaming_ = cfg;
  }
  [[nodiscard]] const StreamingConfig& streaming() const noexcept {
    return streaming_;
  }

  [[nodiscard]] const CheckpointStore& store() const { return *store_; }

  /// Attach (or detach, with a null sink) the observability handles. The
  /// sink is forwarded to the store hierarchy and the async writer; the
  /// pointed-to registry/recorder must outlive the manager or be detached
  /// before they die. Must not change while a drain is in flight.
  void set_observability(obs::Sink sink);

 private:
  struct Entry {
    std::string name;
    const Vector* src = nullptr;  // checkpointed data (exactly one of
    Vector* dst = nullptr;        //   src/blob is set; dst is recover()'s
    std::vector<byte_t>* blob = nullptr;  //   target, == src unless split)
    const Compressor* compressor = nullptr;  // null => manager default
  };

  /// One variable captured in a staging slot (owning copies, so the live
  /// solver state can keep mutating while the drain compresses).
  struct StagedVar {
    int id = 0;
    std::string name;
    bool is_vector = false;
    Vector vec;
    std::vector<byte_t> blob;
    const Compressor* compressor = nullptr;  // effective (resolved) compressor
  };

  /// Double-buffered staging area: one slot drains while the other stages.
  struct StagingSlot {
    std::vector<StagedVar> vars;
    bool busy = false;
  };

  /// Borrowed view of one variable for the shared serializer. Sync points
  /// it at the live protected data, async at a staging slot.
  struct VarView {
    int id = 0;
    const std::string* name = nullptr;
    const Vector* vec = nullptr;
    const std::vector<byte_t>* blob = nullptr;
    const Compressor* compressor = nullptr;
  };

  [[nodiscard]] const Compressor* compressor_for(const Entry& e) const {
    return e.compressor != nullptr ? e.compressor : default_compressor_;
  }

  /// Serialize one snapshot into the checkpoint stream format. Shared by
  /// the sync path and the background drain, so the two modes produce
  /// byte-identical streams for identical variable values.
  CheckpointRecord build_stream(const std::vector<VarView>& vars, int version,
                                std::vector<byte_t>& bytes) const;

  /// Serialize one snapshot as a framed stream straight into `sink` with
  /// bounded memory (see frame_stream.hpp). Chunks each vector by the same
  /// rule as the legacy block pipeline, so recovered values are bit-exact
  /// against the legacy serializer for every codec. Calls FrameWriter's
  /// finish() but NOT sink.finish() — sealing the sink is the caller's job
  /// (the async drain seals only after releasing its staging slot).
  CheckpointRecord build_frame_stream(const std::vector<VarView>& vars,
                                      int version, ByteSink& sink) const;

  /// Incremental frame-by-frame recovery of a framed stream; `src` is
  /// positioned just past the 4-byte magic recover() peeked for dispatch.
  CheckpointRecord recover_frame_stream(int version, ByteSource& src);

  /// Serialize one snapshot as a chunked delta stream against `base`
  /// (nullptr ⇒ full chunked checkpoint). Fills `out_state` with the
  /// hashes a successor delta needs. Same sync/async sharing contract as
  /// build_stream.
  CheckpointRecord build_delta_stream(
      const std::vector<VarView>& vars, int version,
      const ChunkBaseState* base, std::vector<byte_t>& bytes,
      std::shared_ptr<const ChunkBaseState>& out_state) const;

  /// The base the next checkpoint deltas against, or nullptr when a full
  /// checkpoint is due (no committed predecessor, chain at max length,
  /// chunk size changed, or the candidate was discarded).
  [[nodiscard]] std::shared_ptr<const ChunkBaseState> pick_delta_base() const;

  /// Chain-walking recovery of a delta-format checkpoint: literal chunks
  /// decompress in place, references resolve against base versions read
  /// from the store, down to the chain's full checkpoint.
  CheckpointRecord recover_delta(int version,
                                 const std::vector<byte_t>& data);

  void prune_retention(int latest_committed);
  /// Insert `v` and its base_of_ chain into `live`. Hop-bounded as pure
  /// defense (base links always point strictly downward, so a well-formed
  /// map cannot cycle).
  void mark_chain(int v, std::set<int>& live) const;
  int acquire_slot();              ///< Blocks until a staging slot is free.
  void release_slot(int slot);

  std::unique_ptr<CheckpointStore> store_;
  const Compressor* default_compressor_;
  NoneCompressor none_;
  std::map<int, Entry> entries_;
  int next_version_ = 0;
  int retention_ = 1;
  int prune_floor_ = 0;  ///< Versions below this are already pruned.
  std::size_t block_elems_ = BlockCompressor::kDefaultBlockElems;
  StreamingConfig streaming_{};  ///< Framed serializer knobs (default on).
  obs::Sink sink_{};  ///< Observability handles (both null => off).
  bool recovery_pending_ = false;

  // Delta (chunked) checkpointing state. All owner-thread, except
  // drained_states_, which the background drain fills (guarded by
  // slot_mu_; the owner reads it only after wait_drain joined the drain).
  int max_delta_chain_ = 0;
  std::size_t delta_chunk_elems_ = kDefaultChunkElems;
  /// Chunk hashes of the most recent *committed* version — the only
  /// version a new checkpoint may delta against.
  std::shared_ptr<const ChunkBaseState> committed_state_;
  /// Chunk hashes produced by in-flight drains, keyed by version, awaiting
  /// commit (guarded by slot_mu_).
  std::map<int, std::shared_ptr<const ChunkBaseState>> drained_states_;
  /// Committed version → base version (-1 = full); drives the ref-counted
  /// retention that keeps live chain bases alive.
  std::map<int, int> base_of_;
  /// Staged (uncommitted) version → the base captured at stage time, so
  /// pruning cannot retire a base an in-flight delta still needs.
  std::map<int, int> staged_base_;

  // Async pipeline state. The writer thread is created on first stage(), so
  // purely synchronous users never spawn a thread.
  std::array<StagingSlot, 2> slots_;
  std::mutex slot_mu_;
  std::condition_variable slot_cv_;
  std::map<int, CheckpointRecord> drained_;  ///< wait_drain() results cache.
  std::set<int> failed_drains_;  ///< Versions whose drain threw (awaiting abort).
  std::set<int> staged_versions_;  ///< stage()d, not yet committed/aborted.
  // Declared last: drain jobs touch the slots, the slot mutex and the
  // store, so the worker must join (writer destruction) before any of them
  // is torn down.
  std::unique_ptr<AsyncCheckpointWriter> writer_;
};

}  // namespace lck

#pragma once
/// \file checkpoint_manager.hpp
/// \brief FTI-like checkpoint/restart API (paper §4.2 workflow):
///        Protect() registers variables, Checkpoint() saves them,
///        Recover() restores them — with a pluggable compressor per
///        variable and CRC-32 integrity on every payload.

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "ckpt/checkpoint_store.hpp"
#include "compress/block_compressor.hpp"
#include "compress/compressor.hpp"
#include "sparse/vector_ops.hpp"

namespace lck {

/// Accounting for one checkpoint or recovery, consumed by the virtual-time
/// PFS model (sizes) and by the real-time measurements (seconds).
struct CheckpointRecord {
  int version = -1;
  std::size_t raw_bytes = 0;         ///< Sum of uncompressed payloads.
  std::size_t stored_bytes = 0;      ///< Bytes actually written/read.
  double compress_seconds = 0.0;     ///< Real local (de)compression time.
  std::map<std::string, std::size_t> per_var_bytes;  ///< Stored size by name.
};

/// Checkpoint manager in the style of FTI: variables are registered once
/// with Protect(), then Checkpoint()/Recover() move all of them at once.
///
/// Double-array variables go through the configured compressor (per-variable
/// override possible: the lossy scheme compresses only the solution vector,
/// while scalar/state blobs are stored verbatim).
class CheckpointManager {
 public:
  /// `default_compressor` applies to every protected vector without an
  /// override; not owned, may be mutated between checkpoints (adaptive
  /// error bounds).
  CheckpointManager(std::unique_ptr<CheckpointStore> store,
                    const Compressor* default_compressor);

  /// FTI Protect(): register a double-vector variable under a unique id.
  /// Passing a per-variable compressor overrides the default.
  void protect(int id, std::string name, Vector* data,
               const Compressor* compressor = nullptr);

  /// Register an opaque byte blob (solver scalar state, app metadata).
  /// Blobs are stored verbatim (never lossy).
  void protect_blob(int id, std::string name, std::vector<byte_t>* data);

  /// Remove a registration.
  void unprotect(int id);

  /// Save all protected variables as a new checkpoint version.
  CheckpointRecord checkpoint();

  /// Restore all protected variables from the latest checkpoint.
  /// Vectors are resized to the checkpointed length.
  CheckpointRecord recover();

  /// FTI Snapshot(): recover() if a restart is pending, else checkpoint().
  CheckpointRecord snapshot();

  /// Mark that the next snapshot() must recover (set after a failure).
  void request_recovery() noexcept { recovery_pending_ = true; }

  [[nodiscard]] bool has_checkpoint() const {
    return store_->latest_version() >= 0;
  }
  [[nodiscard]] int latest_version() const { return store_->latest_version(); }

  /// Discard a committed version (used when a failure interrupts the
  /// checkpoint write itself, so the torn file must not be recovered from).
  void discard_version(int version) { store_->remove(version); }

  /// Keep at most `n` most recent versions (older ones deleted on write).
  void set_retention(int n) {
    require(n >= 1, "checkpoint manager: retention must be >= 1");
    retention_ = n;
  }

  /// Configure the parallel block-compression pipeline: vectors larger than
  /// `block_elems` are split into blocks compressed concurrently (per-block
  /// CRC-32, any scheme). 0 disables. Default: BlockCompressor's block size,
  /// so large production vectors get the parallel path automatically while
  /// small ones keep the single-shot stream. Recovery reads whichever layout
  /// the stored checkpoint used, so this can change between runs.
  void set_block_pipeline(std::size_t block_elems) noexcept {
    block_elems_ = block_elems;
  }
  [[nodiscard]] std::size_t block_pipeline_elems() const noexcept {
    return block_elems_;
  }

  [[nodiscard]] const CheckpointStore& store() const { return *store_; }

 private:
  struct Entry {
    std::string name;
    Vector* vec = nullptr;               // exactly one of vec/blob is set
    std::vector<byte_t>* blob = nullptr;
    const Compressor* compressor = nullptr;  // null => manager default
  };

  [[nodiscard]] const Compressor* compressor_for(const Entry& e) const {
    return e.compressor != nullptr ? e.compressor : default_compressor_;
  }

  std::unique_ptr<CheckpointStore> store_;
  const Compressor* default_compressor_;
  NoneCompressor none_;
  std::map<int, Entry> entries_;
  int next_version_ = 0;
  int retention_ = 1;
  std::size_t block_elems_ = BlockCompressor::kDefaultBlockElems;
  bool recovery_pending_ = false;
};

}  // namespace lck

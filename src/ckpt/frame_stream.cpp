#include "ckpt/frame_stream.hpp"

#include <algorithm>
#include <cstring>

#include "common/crc32.hpp"
#include "compress/lossless/deflate_like.hpp"
#include "compress/lossless/lz4_like.hpp"
#include "obs/metrics.hpp"

namespace lck {
namespace {

constexpr std::size_t kMinFrameElems = 512;            // 4 KiB raw frames
constexpr std::size_t kMaxFrameElems = kMaxFrameRawBytes / sizeof(double);
constexpr std::size_t kMinWbufBytes = 4096;
constexpr std::size_t kMaxWbufBytes = std::size_t{1} << 30;

void store_u32(byte_t* p, std::uint32_t v) noexcept {
  std::memcpy(p, &v, sizeof(v));
}

std::uint32_t load_u32(const byte_t* p) noexcept {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

}  // namespace

FrameStyle frame_style_from_name(const std::string& name) {
  if (name == "raw") return FrameStyle::kRaw;
  if (name == "lz4") return FrameStyle::kLz4;
  if (name == "deflate") return FrameStyle::kDeflate;
  throw config_error("unknown frame style '" + name +
                     "' (expected raw, lz4, or deflate)");
}

const char* frame_style_name(FrameStyle style) noexcept {
  switch (style) {
    case FrameStyle::kRaw: return "raw";
    case FrameStyle::kLz4: return "lz4";
    case FrameStyle::kDeflate: return "deflate";
  }
  return "?";
}

void StreamingConfig::validate() const {
  std::string errors;
  const auto violation = [&errors](const std::string& msg) {
    errors += errors.empty() ? "" : "; ";
    errors += msg;
  };
  if (frame_elems < kMinFrameElems || frame_elems > kMaxFrameElems)
    violation("streaming.frame_elems must be in [" +
              std::to_string(kMinFrameElems) + ", " +
              std::to_string(kMaxFrameElems) + "], got " +
              std::to_string(frame_elems));
  if (wbuf_bytes < kMinWbufBytes || wbuf_bytes > kMaxWbufBytes)
    violation("streaming.wbuf_bytes must be in [" +
              std::to_string(kMinWbufBytes) + ", " +
              std::to_string(kMaxWbufBytes) + "], got " +
              std::to_string(wbuf_bytes));
  if (style != "raw" && style != "lz4" && style != "deflate")
    violation("streaming.style must be raw, lz4, or deflate, got '" + style +
              "'");
  if (!errors.empty()) throw config_error("bad streaming config: " + errors);
}

FrameWriter::FrameWriter(ByteSink& sink, const StreamingConfig& cfg,
                         obs::Sink obs)
    : sink_(sink),
      style_(frame_style_from_name(cfg.style)),
      frame_bytes_(cfg.frame_bytes()),
      wbuf_limit_(cfg.wbuf_bytes),
      obs_(obs) {
  cfg.validate();
  raw_.reserve(frame_bytes_);
  wbuf_.reserve(wbuf_limit_);
  byte_t header[4 + 2 + 1 + 4];
  store_u32(header, kFrameStreamMagic);
  std::memcpy(header + 4, &kFrameStreamVersion, 2);
  header[6] = static_cast<byte_t>(style_);
  store_u32(header + 7, static_cast<std::uint32_t>(frame_bytes_));
  emit(header);
}

void FrameWriter::put_string(const std::string& s) {
  require(s.size() <= kMaxStreamStringBytes, "frame stream: string too long");
  put(static_cast<std::uint32_t>(s.size()));
  put_bytes({reinterpret_cast<const byte_t*>(s.data()), s.size()});
}

void FrameWriter::put_bytes(std::span<const byte_t> bytes) {
  require(!finished_, "frame stream: put after finish");
  while (!bytes.empty()) {
    const std::size_t space = frame_bytes_ - raw_.size();
    const std::size_t n = std::min(space, bytes.size());
    raw_.insert(raw_.end(), bytes.begin(), bytes.begin() + n);
    bytes = bytes.subspan(n);
    if (raw_.size() == frame_bytes_) flush_frame();
  }
}

void FrameWriter::flush_frame() {
  if (raw_.empty()) return;
  std::span<const byte_t> payload = raw_;
  FrameStyle style = style_;
  if (style_ == FrameStyle::kLz4) {
    comp_.resize(lz4_compress_bound(raw_.size()));
    comp_.resize(lz4_compress_into(raw_, comp_));
    payload = comp_;
  } else if (style_ == FrameStyle::kDeflate) {
    comp_ = deflate_compress(raw_);
    payload = comp_;
  }
  // Raw fallback whenever compression does not strictly win; the reader
  // relies on comp_len < raw_len holding for compressed frames.
  if (payload.size() >= raw_.size()) {
    payload = raw_;
    style = FrameStyle::kRaw;
  }
  byte_t header[kFrameHeaderBytes];
  header[0] = static_cast<byte_t>(style);
  store_u32(header + 1, static_cast<std::uint32_t>(raw_.size()));
  store_u32(header + 5, static_cast<std::uint32_t>(payload.size()));
  store_u32(header + 9, crc32(payload));
  // The frame's raw bytes, its compressed image, and the pending write
  // buffer all coexist right now — this is the writer's high-water mark.
  peak_ = std::max(peak_, raw_.size() + comp_.size() + wbuf_.size() +
                              kFrameHeaderBytes);
  emit(header);
  emit(payload);
  if (obs_.metrics != nullptr) {
    obs_.metrics->add("frame.frames", 1.0,
                      {{"style", frame_style_name(style)}});
    obs_.metrics->observe("frame.stored_bytes",
                          static_cast<double>(payload.size()));
    obs_.metrics->observe("frame.comp_ratio",
                          static_cast<double>(raw_.size()) /
                              static_cast<double>(payload.size()));
  }
  raw_.clear();
  comp_.clear();
}

void FrameWriter::emit(std::span<const byte_t> bytes) {
  total_ += bytes.size();
  if (wbuf_.size() + bytes.size() > wbuf_limit_) flush_wbuf();
  if (bytes.size() >= wbuf_limit_) {
    sink_.append(bytes);  // oversized: hand straight to the sink
    return;
  }
  wbuf_.insert(wbuf_.end(), bytes.begin(), bytes.end());
}

void FrameWriter::flush_wbuf() {
  if (wbuf_.empty()) return;
  sink_.append(wbuf_);
  wbuf_.clear();
}

void FrameWriter::finish() {
  require(!finished_, "frame stream: finish called twice");
  flush_frame();
  const byte_t terminator[kFrameHeaderBytes] = {};
  emit(terminator);
  flush_wbuf();
  finished_ = true;
}

FrameReader::FrameReader(ByteSource& src, bool magic_already_consumed)
    : src_(src) {
  if (!magic_already_consumed) {
    byte_t magic[4];
    read_exact(magic, "stream magic");
    if (load_u32(magic) != kFrameStreamMagic)
      throw corrupt_stream_error("frame stream: bad magic");
  }
  byte_t header[2 + 1 + 4];
  read_exact(header, "stream header");
  std::uint16_t version;
  std::memcpy(&version, header, 2);
  if (version != kFrameStreamVersion)
    throw corrupt_stream_error("frame stream: unsupported version " +
                               std::to_string(version));
  const auto style = static_cast<FrameStyle>(header[2]);
  if (style != FrameStyle::kRaw && style != FrameStyle::kLz4 &&
      style != FrameStyle::kDeflate)
    throw corrupt_stream_error("frame stream: unknown stream style");
  frame_raw_max_ = load_u32(header + 3);
  if (frame_raw_max_ == 0 || frame_raw_max_ > kMaxFrameRawBytes)
    throw corrupt_stream_error("frame stream: implausible frame size");
}

void FrameReader::read_exact(std::span<byte_t> dst, const char* what) {
  const std::size_t got = read_fully(src_, dst);
  total_ += got;
  if (got != dst.size())
    throw corrupt_stream_error(std::string("frame stream: truncated ") + what);
}

void FrameReader::next_frame() {
  if (at_end_)
    throw corrupt_stream_error("frame stream: read past end of stream");
  byte_t header[kFrameHeaderBytes];
  read_exact(header, "frame header");
  const auto style = static_cast<FrameStyle>(header[0]);
  const std::uint32_t raw_len = load_u32(header + 1);
  const std::uint32_t comp_len = load_u32(header + 5);
  const std::uint32_t crc = load_u32(header + 9);
  if (header[0] == 0) {
    // Terminator frame: must be all-zero, anything else is corruption.
    if (raw_len != 0 || comp_len != 0 || crc != 0)
      throw corrupt_stream_error("frame stream: corrupt terminator frame");
    at_end_ = true;
    return;
  }
  if (style != FrameStyle::kRaw && style != FrameStyle::kLz4 &&
      style != FrameStyle::kDeflate)
    throw corrupt_stream_error("frame stream: unknown frame style");
  if (raw_len == 0 || raw_len > frame_raw_max_)
    throw corrupt_stream_error("frame stream: implausible raw_len");
  // The writer falls back to raw whenever compression does not win, so
  // comp_len == raw_len for raw frames and comp_len < raw_len otherwise.
  if (style == FrameStyle::kRaw ? comp_len != raw_len : comp_len >= raw_len)
    throw corrupt_stream_error("frame stream: implausible comp_len");
  comp_.resize(comp_len);
  read_exact(comp_, "frame payload");
  if (crc32(comp_) != crc)
    throw corrupt_stream_error("frame stream: frame CRC mismatch");
  switch (style) {
    case FrameStyle::kRaw:
      raw_.assign(comp_.begin(), comp_.end());
      break;
    case FrameStyle::kLz4:
      raw_.resize(raw_len);
      lz4_decompress_into(comp_, raw_);
      break;
    case FrameStyle::kDeflate:
      raw_ = deflate_decompress(comp_, raw_len);
      break;
  }
  rpos_ = 0;
}

void FrameReader::read_into(std::span<byte_t> out) {
  while (!out.empty()) {
    if (rpos_ == raw_.size()) next_frame();
    const std::size_t n = std::min(out.size(), raw_.size() - rpos_);
    std::memcpy(out.data(), raw_.data() + rpos_, n);
    rpos_ += n;
    out = out.subspan(n);
  }
}

std::string FrameReader::get_string() {
  const auto n = get<std::uint32_t>();
  if (n > kMaxStreamStringBytes)
    throw corrupt_stream_error("frame stream: implausible string length");
  std::string s(n, '\0');
  read_into({reinterpret_cast<byte_t*>(s.data()), s.size()});
  return s;
}

void FrameReader::expect_end() {
  if (rpos_ != raw_.size())
    throw corrupt_stream_error("frame stream: trailing bytes in frame");
  if (!at_end_) {
    next_frame();
    if (!at_end_)
      throw corrupt_stream_error(
          "frame stream: expected terminator, found another frame");
  }
  byte_t probe;
  if (src_.read_some({&probe, 1}) != 0)
    throw corrupt_stream_error("frame stream: trailing bytes after terminator");
}

}  // namespace lck

#include "core/ckpt_policy.hpp"

#include <algorithm>
#include <cmath>

#include "sim/perf_model.hpp"

namespace lck {
namespace {

/// Mode-aware optimal interval from a blocking-cost estimate: Young's
/// inverse for kSync, the overlap-aware fixed point for the staged modes.
/// Falls back to the configured fixed interval when λ = 0 or the estimate
/// is degenerate (the optimum diverges — never checkpointing is "optimal"
/// without failures, but useless as pacing).
double derive_interval(const PolicyContext& ctx, double blocking,
                       double drain) {
  const double t =
      ctx.mode == CkptMode::kSync
          ? optimal_interval_seconds(blocking, ctx.lambda)
          : async_optimal_interval_seconds(blocking, drain, ctx.lambda);
  if (!std::isfinite(t) || t <= 0.0) return ctx.fixed_interval_seconds;
  return t;
}

}  // namespace

FixedIntervalPolicy::FixedIntervalPolicy(PolicyContext ctx)
    : CheckpointPolicy(std::move(ctx)) {
  require(ctx_.fixed_interval_seconds > 0.0,
          "fixed policy: interval must be positive");
}

FixedIntervalPolicy::FixedIntervalPolicy(double interval_seconds)
    : FixedIntervalPolicy([&] {
        PolicyContext ctx;
        ctx.fixed_interval_seconds = interval_seconds;
        return ctx;
      }()) {}

YoungPolicy::YoungPolicy(PolicyContext ctx)
    : CheckpointPolicy(std::move(ctx)) {
  interval_ = derive_interval(ctx_, ctx_.predicted_blocking_seconds,
                              ctx_.predicted_drain_seconds);
}

AdaptiveCostPolicy::AdaptiveCostPolicy(PolicyContext ctx, double smoothing)
    : CheckpointPolicy(std::move(ctx)), alpha_(smoothing) {
  require(alpha_ > 0.0 && alpha_ <= 1.0,
          "adaptive policy: smoothing must be in (0, 1]");
  blocking_ewma_ = ctx_.predicted_blocking_seconds;
  stored_ewma_ = ctx_.predicted_stored_bytes;
  l2_every_ = ctx_.l2_promote_every;
  l3_every_ = ctx_.l3_promote_every;
  interval_ =
      derive_interval(ctx_, blocking_ewma_, ctx_.predicted_drain_seconds);
}

void AdaptiveCostPolicy::on_checkpoint_committed(double blocking_seconds,
                                                 double stored_bytes) {
  blocking_ewma_ =
      blocking_ewma_ > 0.0
          ? (1.0 - alpha_) * blocking_ewma_ + alpha_ * blocking_seconds
          : blocking_seconds;
  stored_ewma_ = stored_ewma_ > 0.0
                     ? (1.0 - alpha_) * stored_ewma_ + alpha_ * stored_bytes
                     : stored_bytes;
  rederive();
}

void AdaptiveCostPolicy::rederive() {
  // Rescale the byte-proportional model predictions by observed/predicted
  // stored size: compression makes the real drain and promotion copies much
  // cheaper than the ratio-1 construction-time guess.
  const double scale = ctx_.predicted_stored_bytes > 0.0 && stored_ewma_ > 0.0
                           ? stored_ewma_ / ctx_.predicted_stored_bytes
                           : 1.0;
  const double next = derive_interval(ctx_, blocking_ewma_,
                                      ctx_.predicted_drain_seconds * scale);
  if (std::abs(next - interval_) > 1e-9 * std::max(1.0, std::abs(interval_)))
    ++adjustments_;
  interval_ = next;

  if (ctx_.mode == CkptMode::kTiered) {
    // Per-tier Young intervals on (observed L1 blocking, scaled L2/L3 copy
    // costs) with the severity-split rates; the effective cadence promotes
    // every k-th L1 checkpoint so tier k is refreshed about every t_k*.
    const std::array<double, 3> costs{blocking_ewma_,
                                      ctx_.l2_copy_seconds * scale,
                                      ctx_.l3_copy_seconds * scale};
    const auto t = tiered_optimal_intervals(costs, ctx_.tier_lambdas);
    l2_every_ = promote_cadence(interval_, t[1]);
    l3_every_ = promote_cadence(interval_, t[2]);
  }
}

std::unique_ptr<CheckpointPolicy> make_policy(const std::string& name,
                                              const PolicyContext& ctx) {
  if (name == "fixed") return std::make_unique<FixedIntervalPolicy>(ctx);
  if (name == "young") return std::make_unique<YoungPolicy>(ctx);
  if (name == "adaptive") return std::make_unique<AdaptiveCostPolicy>(ctx);
  throw config_error("unknown checkpoint policy \"" + name +
                     "\" (expected \"fixed\", \"young\" or \"adaptive\")");
}

bool is_known_policy(const std::string& name) noexcept {
  return name == "fixed" || name == "young" || name == "adaptive";
}

}  // namespace lck

#pragma once
/// \file experiment.hpp
/// \brief Shared experiment configuration: the paper's calibration constants
///        (§5), Table 3's weak-scaling problem sizes, and builders for the
///        laptop-scale stand-in problems whose vectors proxy the paper's
///        cluster-scale ones.

#include <memory>
#include <string>

#include "sim/cluster_model.hpp"
#include "solvers/factory.hpp"
#include "sparse/gen/poisson3d.hpp"

namespace lck {

/// Per-method calibration from the paper's 2,048-rank runs (§4.3, §5.4).
struct PaperMethod {
  std::string method;               ///< "jacobi" | "gmres" | "cg"
  double rtol;                      ///< PETSc relative tolerance (§5.1).
  double baseline_seconds;          ///< Productive time at 2,048 ranks.
  double baseline_iterations;      ///< Iterations to converge, failure-free.
  int trad_vectors;                 ///< Vectors the traditional scheme saves.
  bool adaptive_eb;                 ///< Theorem-3 bound (GMRES only).
  double eb_value;                  ///< Fixed pointwise-relative eb otherwise.
  double expected_nprime;           ///< Paper's N′ for the Eq. 8 model.

  /// Mean virtual seconds per iteration (Tit).
  [[nodiscard]] double iteration_seconds() const {
    return baseline_seconds / baseline_iterations;
  }
};

/// Jacobi: baseline 50 min / 3,941 iterations; rtol 1e-4; eb 1e-4;
/// expected N′ ≈ 6 (Theorem 2 with R ≈ 0.99998).
[[nodiscard]] PaperMethod paper_jacobi();

/// GMRES(30): baseline 120 min / 5,875 iterations; rtol 7e-5;
/// Theorem-3 adaptive eb; expected N′ = 0.
[[nodiscard]] PaperMethod paper_gmres();

/// CG: baseline 35 min / 2,376 iterations; rtol 1e-7; eb 1e-4;
/// expected N′ = 594 (25% of total — paper §5.3).
[[nodiscard]] PaperMethod paper_cg();

[[nodiscard]] PaperMethod paper_method(const std::string& name);

/// Table 3 weak-scaling rows: grid dimension n (problem size n³) per
/// process count (256…2048). Throws for process counts not in the table.
[[nodiscard]] index_t table3_grid_n(int processes);

/// Cluster-scale bytes of one dynamic vector for a Table 3 row.
[[nodiscard]] double table3_vector_bytes(int processes);

/// Static-state (A, M, b) bytes re-read/reconstructed on recovery,
/// modeled as a fraction of one dynamic vector (the paper regenerates the
/// Poisson operator rather than reading it back; DESIGN.md §6).
[[nodiscard]] double static_state_bytes(double vector_bytes);

/// A laptop-scale instance of the paper's Eq. 15 problem whose solution
/// vector stands in for the cluster-scale one.
struct LocalProblem {
  CsrMatrix a;
  Vector b;
  std::unique_ptr<Preconditioner> precond;
  SolverSpec spec;

  [[nodiscard]] std::unique_ptr<IterativeSolver> make_solver() const {
    return lck::make_solver(spec, a, b, precond.get());
  }
  /// Real bytes of one dynamic vector of this instance.
  [[nodiscard]] double vector_bytes() const {
    return static_cast<double>(a.rows()) * sizeof(double);
  }
};

/// Build the local problem for a method. `grid_n` is the local Poisson grid
/// (matrix dimension grid_n³); SPD variant with block-Jacobi/ILU0
/// preconditioning for CG/GMRES, plain stencil for stationary methods —
/// mirroring the paper's PETSc defaults. Pass precondition=false to get
/// longer Krylov convergence trajectories (useful when an experiment needs
/// iteration counts comparable to the paper's cluster-scale runs).
[[nodiscard]] LocalProblem make_local_problem(const std::string& method,
                                              index_t grid_n, double rtol,
                                              index_t max_iterations = 200000,
                                              bool precondition = true);

}  // namespace lck

#include "core/resilient_runner.hpp"

#include <cmath>

#include "sim/perf_model.hpp"

namespace lck {

const char* to_string(CkptScheme s) noexcept {
  switch (s) {
    case CkptScheme::kTraditional: return "traditional";
    case CkptScheme::kLossless: return "lossless";
    case CkptScheme::kLossy: return "lossy";
  }
  return "?";
}

ResilientRunner::ResilientRunner(IterativeSolver& solver, ResilienceConfig cfg)
    : solver_(solver),
      cfg_(std::move(cfg)),
      injector_(cfg_.mtti_seconds, cfg_.seed, cfg_.inject_failures) {
  require(cfg_.ckpt_interval_seconds > 0.0,
          "runner: checkpoint interval must be positive");
  require(cfg_.iteration_seconds > 0.0,
          "runner: iteration time must be positive");
  require(cfg_.dynamic_scale > 0.0, "runner: dynamic scale must be positive");

  switch (cfg_.scheme) {
    case CkptScheme::kTraditional:
      compressor_ = std::make_unique<NoneCompressor>();
      break;
    case CkptScheme::kLossless:
      compressor_ = make_compressor(cfg_.lossless_compressor);
      require(!compressor_->lossy(),
              "runner: lossless scheme given a lossy compressor");
      break;
    case CkptScheme::kLossy:
      compressor_ = make_compressor(cfg_.lossy_compressor, cfg_.lossy_eb);
      lossy_ = dynamic_cast<LossyCompressor*>(compressor_.get());
      require(lossy_ != nullptr,
              "runner: lossy scheme requires a lossy compressor");
      break;
  }
  manager_ = std::make_unique<CheckpointManager>(
      std::make_unique<MemoryStore>(), compressor_.get());
  // Keep the previous checkpoint until the new one commits, so a failure
  // mid-write cannot leave us without any recovery point.
  manager_->set_retention(2);
  register_variables();
}

void ResilientRunner::register_variables() {
  if (cfg_.scheme == CkptScheme::kLossy) {
    // Paper Algorithm 2 line 5: checkpoint i and the compressed x only.
    x_buf_ = solver_.solution();
    manager_->protect(0, "x", &x_buf_);
    manager_->protect_blob(1, "iter", &iter_blob_);
  } else {
    // Paper Algorithm 1 line 4: all dynamic vectors plus scalars.
    int id = 0;
    for (const auto& var : solver_.checkpoint_vectors())
      manager_->protect(id++, var.name, var.data);
    manager_->protect_blob(100, "scalars", &scalar_blob_);
  }
}

double ResilientRunner::checkpoint_duration(
    const CheckpointRecord& rec) const {
  const double stored = static_cast<double>(rec.stored_bytes) *
                        cfg_.dynamic_scale;
  const double raw = static_cast<double>(rec.raw_bytes) * cfg_.dynamic_scale;
  double seconds = cfg_.cluster.write_seconds(stored);
  if (cfg_.scheme == CkptScheme::kLossy)
    seconds += cfg_.cluster.compress_seconds(raw);
  else if (cfg_.scheme == CkptScheme::kLossless)
    seconds += cfg_.cluster.lossless_compress_seconds(raw);
  return seconds;
}

double ResilientRunner::recovery_duration(double stored_bytes,
                                          double raw_dynamic_bytes) const {
  // Recovery re-reads the checkpoint plus the static state (A, M, b) and
  // decompresses the dynamic payload — paper §5.3 (recovery > checkpoint).
  double seconds =
      cfg_.cluster.read_seconds(stored_bytes + cfg_.static_bytes);
  if (cfg_.scheme == CkptScheme::kLossy)
    seconds += cfg_.cluster.decompress_seconds(raw_dynamic_bytes);
  else if (cfg_.scheme == CkptScheme::kLossless)
    seconds += cfg_.cluster.lossless_decompress_seconds(raw_dynamic_bytes);
  return seconds;
}

void ResilientRunner::refresh_adaptive_bound() {
  if (lossy_ == nullptr || !cfg_.adaptive_error_bound) return;
  const double eb = theorem3_gmres_error_bound(
      solver_.residual_norm(), solver_.rhs_norm(), cfg_.adaptive_theta);
  lossy_->set_error_bound(ErrorBound::pointwise_rel(eb));
}

bool ResilientRunner::do_checkpoint() {
  if (cfg_.scheme == CkptScheme::kLossy) {
    refresh_adaptive_bound();
    x_buf_ = solver_.solution();
    ByteWriter bw;
    bw.put(static_cast<std::int64_t>(solver_.iteration()));
    iter_blob_ = std::move(bw).take();
  } else {
    (void)solver_.solution();  // materialize x for basis-backed solvers
    ByteWriter bw;
    solver_.save_scalars(bw);
    scalar_blob_ = std::move(bw).take();
  }
  const CheckpointRecord rec = manager_->checkpoint();
  const double duration = checkpoint_duration(rec);

  if (injector_.interrupts(t_, duration)) {
    // Failure mid-write: the new version must not be used for recovery.
    manager_->discard_version(rec.version);
    t_ = injector_.next_failure_time();
    handle_failure();
    return false;
  }

  t_ += duration;
  last_ckpt_t_ = t_;
  ckpt_iteration_ = solver_.iteration();
  stored_bytes_last_ =
      static_cast<double>(rec.stored_bytes) * cfg_.dynamic_scale;
  raw_dyn_bytes_last_ = static_cast<double>(rec.raw_bytes) * cfg_.dynamic_scale;
  ++result_.checkpoints;
  result_.ckpt_seconds_total += duration;
  result_.mean_ckpt_stored_bytes += (stored_bytes_last_ -
                                     result_.mean_ckpt_stored_bytes) /
                                    result_.checkpoints;
  if (rec.stored_bytes > 0)
    result_.compression_ratio =
        static_cast<double>(rec.raw_bytes) /
        static_cast<double>(rec.stored_bytes);
  return true;
}

void ResilientRunner::handle_failure() {
  ++result_.failures;
  injector_.arm(t_);

  // Recovery, which may itself be interrupted by further failures.
  for (;;) {
    const bool have_ckpt = manager_->has_checkpoint();
    const double duration =
        have_ckpt
            ? recovery_duration(stored_bytes_last_, raw_dyn_bytes_last_)
            : cfg_.cluster.read_seconds(cfg_.static_bytes);
    if (injector_.interrupts(t_, duration)) {
      t_ = injector_.next_failure_time();
      ++result_.failures;
      injector_.arm(t_);
      continue;
    }
    t_ += duration;
    result_.recovery_seconds_total += duration;
    ++result_.recoveries;

    if (have_ckpt) {
      manager_->recover();
      if (cfg_.scheme == CkptScheme::kLossy) {
        // Algorithm 2 lines 8–13: decompressed x is the new initial guess.
        solver_.restart(x_buf_);
        ByteReader br(iter_blob_);
        solver_.set_iteration(br.get<std::int64_t>());
      } else {
        ByteReader br(scalar_blob_);
        solver_.restore_scalars(br);
        solver_.resume_after_restore();
      }
    } else {
      // No checkpoint yet: global restart from the initial guess.
      const Vector zero(solver_.rhs().size(), 0.0);
      solver_.restart(zero);
      solver_.set_iteration(0);
    }
    break;
  }
  last_ckpt_t_ = t_;  // checkpoint timer restarts after recovery
}

ResilienceResult ResilientRunner::run() {
  while (!solver_.converged() && result_.executed_steps < cfg_.max_steps) {
    // Failure strictly inside the next iteration's window?
    if (injector_.interrupts(t_, cfg_.iteration_seconds)) {
      t_ = injector_.next_failure_time();
      handle_failure();
      continue;
    }
    solver_.step();
    ++result_.executed_steps;
    t_ += cfg_.iteration_seconds;

    if (!solver_.converged() &&
        t_ - last_ckpt_t_ >= cfg_.ckpt_interval_seconds)
      do_checkpoint();
  }

  result_.converged = solver_.converged();
  result_.convergence_iteration = solver_.iteration();
  result_.final_residual_norm = solver_.residual_norm();
  result_.virtual_seconds = t_;
  if (result_.checkpoints > 0)
    result_.mean_ckpt_seconds =
        result_.ckpt_seconds_total / result_.checkpoints;
  if (result_.recoveries > 0)
    result_.mean_recovery_seconds =
        result_.recovery_seconds_total / result_.recoveries;
  return result_;
}

}  // namespace lck

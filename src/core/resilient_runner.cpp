#include "core/resilient_runner.hpp"

#include <algorithm>
#include <cmath>

#include "ckpt/tier/tiered_store.hpp"
#include "obs/metrics.hpp"
#include "obs/pass_counter.hpp"
#include "obs/trace.hpp"
#include "sim/perf_model.hpp"

namespace lck {

const char* to_string(CkptScheme s) noexcept {
  switch (s) {
    case CkptScheme::kTraditional: return "traditional";
    case CkptScheme::kLossless: return "lossless";
    case CkptScheme::kLossy: return "lossy";
  }
  return "?";
}

void ResilienceConfig::validate() const {
  std::string errors;
  const auto violation = [&errors](const char* msg) {
    if (!errors.empty()) errors += "; ";
    errors += msg;
  };
  if (!(policy.interval_seconds > 0.0))
    violation("policy.interval_seconds must be positive");
  if (!is_known_policy(policy.name))
    violation("policy.name must name a make_policy implementation "
              "(\"fixed\", \"young\" or \"adaptive\")");
  if (!(iteration_seconds > 0.0))
    violation("iteration_seconds must be positive");
  if (!(dynamic_scale > 0.0)) violation("dynamic_scale must be positive");
  if (!(static_bytes >= 0.0)) violation("static_bytes must be non-negative");
  if (!(failure.mtti_seconds > 0.0))
    violation("failure.mtti_seconds must be positive");
  double weight_sum = 0.0;
  bool weight_negative = false;
  for (const double w : failure.severity_weights) {
    if (w < 0.0) weight_negative = true;
    weight_sum += w;
  }
  if (weight_negative)
    violation("failure.severity_weights must be non-negative");
  else if (!(weight_sum > 0.999 && weight_sum < 1.001))
    violation("failure.severity_weights must sum to 1");
  if (failure.distribution != "exponential" &&
      failure.distribution != "weibull")
    violation("failure.distribution must be \"exponential\" or \"weibull\"");
  if (failure.distribution == "weibull") {
    if (!(failure.weibull_shape > 0.0))
      violation("failure.weibull_shape must be positive");
    if (!(failure.weibull_scale >= 0.0))
      violation("failure.weibull_scale must be non-negative");
  }
  if (tiered.l2_promote_every < 1)
    violation("tiered.l2_promote_every must be >= 1");
  if (tiered.l3_promote_every < 1)
    violation("tiered.l3_promote_every must be >= 1");
  if (tiered.retention < 1) violation("tiered.retention must be >= 1");
  if (delta.max_delta_chain < 0)
    violation("delta.max_delta_chain must be >= 0");
  if (delta.chunk_elems < 1) violation("delta.chunk_elems must be >= 1");
  if (max_steps < 1) violation("max_steps must be >= 1");
  // StreamingConfig knows its own constraints; fold its message into the
  // collected list so one throw still names every violation.
  try {
    streaming.validate();
  } catch (const config_error& e) {
    violation(e.what());
  }
  try {
    obs.validate();
  } catch (const config_error& e) {
    violation(e.what());
  }
  if (!errors.empty()) throw config_error(errors);
}

namespace {

ResilienceConfig validated(ResilienceConfig cfg) {
  cfg.validate();
  return cfg;
}

}  // namespace

ResilientRunner::ResilientRunner(IterativeSolver& solver, ResilienceConfig cfg)
    : solver_(solver),
      cfg_(validated(std::move(cfg))),
      injector_(cfg_.failure.mtti_seconds, cfg_.failure.seed,
                cfg_.failure.inject) {
  switch (cfg_.scheme) {
    case CkptScheme::kTraditional:
      compressor_ = std::make_unique<NoneCompressor>();
      break;
    case CkptScheme::kLossless:
      compressor_ = make_compressor(cfg_.compression.lossless);
      require(!compressor_->lossy(),
              "runner: lossless scheme given a lossy compressor");
      break;
    case CkptScheme::kLossy:
      compressor_ =
          make_compressor(cfg_.compression.lossy, cfg_.compression.lossy_eb);
      lossy_ = dynamic_cast<LossyCompressor*>(compressor_.get());
      require(lossy_ != nullptr,
              "runner: lossy scheme requires a lossy compressor");
      break;
  }
  // The Weibull switch re-arms from t = 0, so exponential runs keep their
  // exact historical draw sequence (the injector only consumes extra draws
  // when the model is enabled).
  if (cfg_.failure.distribution == "weibull" && cfg_.failure.inject) {
    const double scale =
        cfg_.failure.weibull_scale > 0.0
            ? cfg_.failure.weibull_scale
            : cfg_.failure.mtti_seconds /
                  std::tgamma(1.0 + 1.0 / cfg_.failure.weibull_shape);
    injector_.set_weibull(cfg_.failure.weibull_shape, scale);
  }
  std::unique_ptr<CheckpointStore> store;
  if (cfg_.store_factory) {
    // Externally-owned store stack (e.g. a CheckpointService job handle):
    // the caller decides tiers, namespaces and shared backends; the runner
    // only needs the tiered interface for its virtual promotion channel.
    store = cfg_.store_factory();
    require(store != nullptr, "runner: store_factory returned null");
    if (cfg_.ckpt_mode == CkptMode::kTiered) {
      tiered_ = dynamic_cast<TieredCheckpointStore*>(store.get());
      require(tiered_ != nullptr,
              "runner: tiered mode requires store_factory to yield a "
              "TieredCheckpointStore");
      injector_.set_severity_weights(cfg_.failure.severity_weights);
    }
  } else if (cfg_.ckpt_mode == CkptMode::kTiered) {
    // Canonical 3-level hierarchy with virtual-time promotion: the runner
    // itself issues promote_now() when the simulated background channel
    // finishes a copy, so runs are bit-stable regardless of host speed.
    auto tiered = make_tiered_store(cfg_.tiered.retention,
                                    cfg_.tiered.l2_promote_every,
                                    cfg_.tiered.l3_promote_every, "",
                                    /*auto_promote=*/false);
    tiered_ = tiered.get();
    store = std::move(tiered);
    injector_.set_severity_weights(cfg_.failure.severity_weights);
  } else {
    store = std::make_unique<MemoryStore>();
  }
  manager_ = std::make_unique<CheckpointManager>(std::move(store),
                                                 compressor_.get());
  // Keep the previous checkpoint until the new one commits, so a failure
  // mid-write cannot leave us without any recovery point. In tiered mode
  // retention is per tier (inside the store); the manager-level prune is
  // parked far away so it never fights the hierarchy.
  manager_->set_retention(cfg_.ckpt_mode == CkptMode::kTiered ? (1 << 28) : 2);
  manager_->set_streaming(cfg_.streaming);
  if (cfg_.delta.max_delta_chain > 0)
    manager_->set_delta(cfg_.delta.max_delta_chain, cfg_.delta.chunk_elems);
  register_variables();
  policy_ = make_policy(cfg_.policy.name, make_policy_context());
  if (cfg_.obs.metrics) metrics_ = std::make_unique<obs::MetricsRegistry>();
  if (cfg_.obs.trace)
    trace_ = std::make_unique<obs::TraceRecorder>(cfg_.obs.trace_max_events);
  sink_ = {metrics_.get(), trace_.get()};
  if (sink_.enabled()) manager_->set_observability(sink_);
}

ResilientRunner::~ResilientRunner() = default;

std::unique_ptr<obs::TraceRecorder> ResilientRunner::take_trace() noexcept {
  // The manager (and its async writer / stores) hold sink_ copies; tear the
  // trace pointer out of them before moving ownership so no component can
  // record into a recorder the caller may destroy.
  sink_.trace = nullptr;
  manager_->set_observability(sink_);
  return std::move(trace_);
}

PolicyContext ResilientRunner::make_policy_context() const {
  PolicyContext ctx;
  ctx.mode = cfg_.ckpt_mode;
  ctx.lambda = cfg_.failure.inject ? 1.0 / cfg_.failure.mtti_seconds : 0.0;
  ctx.fixed_interval_seconds = cfg_.policy.interval_seconds;

  // Cluster-scale raw bytes of one checkpoint: the lossy scheme saves only
  // x (Algorithm 2); the others save every dynamic vector.
  double raw = 0.0;
  if (cfg_.scheme == CkptScheme::kLossy) {
    raw = static_cast<double>(solver_.solution().size()) * sizeof(double);
  } else {
    for (const auto& var : solver_.checkpoint_vectors())
      raw += static_cast<double>(var.data->size()) * sizeof(double);
  }
  raw *= cfg_.dynamic_scale;

  // Ratio-1 (uncompressed) predictions — conservative; the adaptive policy
  // replaces them with observed costs as checkpoints commit.
  const double stored = raw;
  ctx.predicted_stored_bytes = stored;
  const double t_full = cfg_.cluster.write_seconds(stored) +
                        compress_cost(raw);
  switch (cfg_.ckpt_mode) {
    case CkptMode::kSync:
      ctx.predicted_blocking_seconds = t_full;
      ctx.predicted_drain_seconds = t_full;
      break;
    case CkptMode::kAsync:
      ctx.predicted_blocking_seconds = cfg_.cluster.stage_seconds(raw);
      ctx.predicted_drain_seconds = t_full;
      break;
    case CkptMode::kTiered:
      ctx.predicted_blocking_seconds = cfg_.cluster.stage_seconds(raw);
      ctx.predicted_drain_seconds =
          cfg_.cluster.local_write_seconds(stored) + compress_cost(raw);
      break;
  }
  ctx.l2_copy_seconds = cfg_.cluster.partner_write_seconds(stored);
  ctx.l3_copy_seconds = cfg_.cluster.write_seconds(stored);
  ctx.tier_lambdas =
      severity_tier_lambdas(ctx.lambda, cfg_.failure.severity_weights);
  ctx.l2_promote_every = cfg_.tiered.l2_promote_every;
  ctx.l3_promote_every = cfg_.tiered.l3_promote_every;
  return ctx;
}

void ResilientRunner::register_variables() {
  if (cfg_.scheme == CkptScheme::kLossy) {
    // Paper Algorithm 2 line 5: checkpoint i and the compressed x only.
    // Checkpoints read the solver's live solution directly (one blocking
    // copy into the staging slot, not two); x_buf_ is only recover()'s
    // restore target, handed to solver_.restart() afterwards.
    const Vector& live_x = solver_.solution();
    x_buf_.assign(live_x.size(), 0.0);
    manager_->protect(0, "x", &live_x, &x_buf_);
    manager_->protect_blob(1, "iter", &iter_blob_);
  } else {
    // Paper Algorithm 1 line 4: all dynamic vectors plus scalars.
    int id = 0;
    for (const auto& var : solver_.checkpoint_vectors())
      manager_->protect(id++, var.name, var.data);
    manager_->protect_blob(100, "scalars", &scalar_blob_);
  }
}

double ResilientRunner::compress_cost(double raw_bytes) const {
  if (cfg_.scheme == CkptScheme::kLossy)
    return cfg_.cluster.compress_seconds(raw_bytes);
  if (cfg_.scheme == CkptScheme::kLossless)
    return cfg_.cluster.lossless_compress_seconds(raw_bytes);
  return 0.0;
}

double ResilientRunner::decompress_cost(double raw_bytes) const {
  if (cfg_.scheme == CkptScheme::kLossy)
    return cfg_.cluster.decompress_seconds(raw_bytes);
  if (cfg_.scheme == CkptScheme::kLossless)
    return cfg_.cluster.lossless_decompress_seconds(raw_bytes);
  return 0.0;
}

double ResilientRunner::checkpoint_duration(
    const CheckpointRecord& rec) const {
  const double stored = static_cast<double>(rec.stored_bytes) *
                        cfg_.dynamic_scale;
  const double raw = static_cast<double>(rec.raw_bytes) * cfg_.dynamic_scale;
  return cfg_.cluster.write_seconds(stored) + compress_cost(raw);
}

double ResilientRunner::drain_duration(const CheckpointRecord& rec) const {
  if (cfg_.ckpt_mode != CkptMode::kTiered) return checkpoint_duration(rec);
  // Tiered L1 drain: compression plus a node-local write — the PFS is only
  // touched later, by the background promotion channel.
  const double stored = static_cast<double>(rec.stored_bytes) *
                        cfg_.dynamic_scale;
  const double raw = static_cast<double>(rec.raw_bytes) * cfg_.dynamic_scale;
  return cfg_.cluster.local_write_seconds(stored) + compress_cost(raw);
}

double ResilientRunner::recovery_duration(double stored_bytes,
                                          double raw_dynamic_bytes) const {
  // Recovery re-reads the checkpoint plus the static state (A, M, b) and
  // decompresses the dynamic payload — paper §5.3 (recovery > checkpoint).
  return cfg_.cluster.read_seconds(stored_bytes + cfg_.static_bytes) +
         decompress_cost(raw_dynamic_bytes);
}

void ResilientRunner::refresh_adaptive_bound() {
  if (lossy_ == nullptr || !cfg_.compression.adaptive_error_bound) return;
  const double eb = theorem3_gmres_error_bound(solver_.residual_norm(),
                                               solver_.rhs_norm(),
                                               cfg_.compression.adaptive_theta);
  lossy_->set_error_bound(ErrorBound::pointwise_rel(eb));
}

void ResilientRunner::capture_solver_state() {
  if (cfg_.scheme == CkptScheme::kLossy) {
    refresh_adaptive_bound();
    (void)solver_.solution();  // materialize x for basis-backed solvers
    ByteWriter bw;
    bw.put(static_cast<std::int64_t>(solver_.iteration()));
    iter_blob_ = std::move(bw).take();
  } else {
    (void)solver_.solution();  // materialize x for basis-backed solvers
    ByteWriter bw;
    solver_.save_scalars(bw);
    scalar_blob_ = std::move(bw).take();
  }
}

bool ResilientRunner::do_checkpoint() {
  capture_solver_state();
  const CheckpointRecord rec = manager_->checkpoint();
  const double duration = checkpoint_duration(rec);

  if (injector_.interrupts(t_, duration)) {
    // Failure mid-write: the new version must not be used for recovery.
    manager_->discard_version(rec.version);
    t_ = injector_.next_failure_time();
    handle_failure();
    return false;
  }

  t_ += duration;
  last_ckpt_t_ = t_;
  account_committed(rec);
  ++result_.checkpoints;
  result_.ckpt_seconds_total += duration;
  committed_blocking_total_ += duration;
  if (metrics_ != nullptr) {
    metrics_->add("ckpt.committed", 1.0);
    // Unlabeled series first: it accumulates the exact doubles (same values,
    // same order) as ckpt_seconds_total, so tests can assert bitwise
    // equality; the {kind=...} series is the per-cause breakdown.
    metrics_->observe("ckpt.blocking_seconds", duration);
    metrics_->observe("ckpt.blocking_seconds", duration, {{"kind", "sync"}});
    metrics_->observe("ckpt.stored_bytes", stored_bytes_last_);
  }
  if (trace_ != nullptr)
    trace_->complete("ckpt", "checkpoint", t_ - duration, t_,
                     {obs::TraceArg::num("version", rec.version),
                      obs::TraceArg::num("stored_bytes", stored_bytes_last_)});
  result_.mean_ckpt_stored_bytes += (stored_bytes_last_ -
                                     result_.mean_ckpt_stored_bytes) /
                                    result_.checkpoints;
  policy_->on_checkpoint_committed(duration, stored_bytes_last_);
  return true;
}

void ResilientRunner::account_committed(const CheckpointRecord& rec) {
  stored_bytes_last_ =
      static_cast<double>(rec.stored_bytes) * cfg_.dynamic_scale;
  raw_dyn_bytes_last_ =
      static_cast<double>(rec.raw_bytes) * cfg_.dynamic_scale;
  // A delta checkpoint's recovery re-reads its chain bases too.
  chain_stored_last_ = rec.base_version >= 0
                           ? chain_stored_last_ + stored_bytes_last_
                           : stored_bytes_last_;
  if (rec.base_version >= 0)
    result_.delta_bytes_total += stored_bytes_last_;
  else
    ++result_.full_checkpoints;
  result_.chunks_deduped += rec.chunks_deduped;
  if (metrics_ != nullptr) {
    if (rec.base_version >= 0)
      metrics_->add("ckpt.delta_stored_bytes", stored_bytes_last_);
    else
      metrics_->add("ckpt.full_checkpoints", 1.0);
    metrics_->add("ckpt.chunks_deduped",
                  static_cast<double>(rec.chunks_deduped));
  }
  // The codec's ratio is only observable on full checkpoints — a delta's
  // raw/stored quotient conflates chunk dedup with compression and would
  // credit the "none" codec with tens-of-x. Delta savings are reported
  // separately (delta_bytes_total, chunks_deduped).
  if (rec.base_version < 0 && rec.stored_bytes > 0)
    result_.compression_ratio = static_cast<double>(rec.raw_bytes) /
                                static_cast<double>(rec.stored_bytes);
}

// ----- async pipeline -------------------------------------------------------

bool ResilientRunner::ensure_drain_record() {
  if (pending_known_) return true;
  // Join the background drain (real time); its *virtual* window is
  // [drain_start_t_, drain_start_t_ + compress+write duration], entirely
  // overlapped with the iterations the solver kept executing.
  try {
    pending_rec_ = manager_->wait_drain(pending_version_);
  } catch (...) {
    // The drain itself failed (background compressor or store error). The
    // outcome is the same as a torn write: roll the version back and keep
    // running against the previous committed checkpoint.
    manager_->abort_version(pending_version_);
    ++result_.aborted_drains;
    if (metrics_ != nullptr) metrics_->add("ckpt.aborted_drains", 1.0);
    if (trace_ != nullptr)
      trace_->instant("drain", "drain-error", t_,
                      {obs::TraceArg::num("version", pending_version_)});
    pending_version_ = -1;
    pending_known_ = false;
    pending_blocking_ = 0.0;
    return false;
  }
  drain_end_t_ = drain_start_t_ + drain_duration(pending_rec_);
  pending_known_ = true;
  return true;
}

void ResilientRunner::commit_pending(double overlapped_drain_seconds) {
  if (!ensure_drain_record()) return;  // failed drain already rolled back
  // Matured promotions must land before this commit's L1 retention prune
  // can retire their source copy — otherwise a copy whose virtual window
  // already closed would silently never happen.
  if (tiered_ != nullptr) apply_promotions(t_);
  manager_->commit_version(pending_version_);
  account_committed(pending_rec_);
  if (tiered_ != nullptr) {
    version_bytes_[pending_version_] = {stored_bytes_last_,
                                        raw_dyn_bytes_last_,
                                        pending_rec_.base_version};
    // Only versions still resident in some tier can ever be recovered;
    // drop size entries older than the deepest possible retention window
    // so the map stays O(retention) over arbitrarily long runs. The window
    // follows the policy's *current* cadence; if an adaptive policy later
    // stretches it, recovery from an already-pruned entry falls back to the
    // last committed sizes (tiered_recovery_duration handles the miss).
    const int keep_span =
        cfg_.tiered.retention * std::max({1, cfg_.tiered.l2_promote_every,
                                          cfg_.tiered.l3_promote_every,
                                          policy_->l2_promote_every(),
                                          policy_->l3_promote_every()}) +
        cfg_.delta.max_delta_chain + 1;
    version_bytes_.erase(
        version_bytes_.begin(),
        version_bytes_.lower_bound(pending_version_ - keep_span));
    for (auto& scheduled : scheduled_promos_)
      scheduled.erase(scheduled.begin(),
                      scheduled.lower_bound(pending_version_ - keep_span));
    // The version became durable at L1 when its drain window closed; the
    // background channel starts its L2/L3 hops no earlier than that.
    schedule_virtual_promotions(pending_version_, stored_bytes_last_,
                                drain_end_t_);
  }
  ++result_.checkpoints;
  result_.ckpt_drain_seconds_total += overlapped_drain_seconds;
  committed_blocking_total_ += pending_blocking_;
  result_.mean_ckpt_stored_bytes += (stored_bytes_last_ -
                                     result_.mean_ckpt_stored_bytes) /
                                    result_.checkpoints;
  policy_->on_checkpoint_committed(pending_blocking_, stored_bytes_last_);
  if (metrics_ != nullptr) {
    metrics_->add("ckpt.committed", 1.0);
    metrics_->observe("ckpt.drain_overlap_seconds", overlapped_drain_seconds);
    metrics_->observe("ckpt.stored_bytes", stored_bytes_last_);
  }
  if (trace_ != nullptr)
    trace_->complete(
        "drain", "drain", drain_start_t_, drain_end_t_,
        {obs::TraceArg::num("version", pending_version_),
         obs::TraceArg::num("stored_bytes", stored_bytes_last_),
         obs::TraceArg::num("overlap_seconds", overlapped_drain_seconds)});
  pending_version_ = -1;
  pending_known_ = false;
  pending_blocking_ = 0.0;
}

void ResilientRunner::settle_pending_at_failure() {
  if (pending_version_ < 0) return;
  if (!ensure_drain_record()) return;  // failed drain already rolled back
  if (t_ <= drain_end_t_) {
    // The failure struck while the drain was still writing: the pending
    // version is torn and recovery must use the previous committed one.
    manager_->abort_version(pending_version_);
    ++result_.aborted_drains;
    if (metrics_ != nullptr) metrics_->add("ckpt.aborted_drains", 1.0);
    if (trace_ != nullptr)
      trace_->complete("drain", "drain-aborted", drain_start_t_, t_,
                       {obs::TraceArg::num("version", pending_version_)});
    pending_version_ = -1;
    pending_known_ = false;
  } else {
    // The drain had already finished when the failure struck; all of it
    // ran concurrently with iterations.
    commit_pending(drain_end_t_ - drain_start_t_);
  }
}

void ResilientRunner::finish_pending_at_exit() {
  if (pending_version_ < 0) return;
  // The solver converged while the last drain was still in flight. The
  // application is done; the drain completes harmlessly in the background
  // (a failure after convergence rolls nothing back), so commit it without
  // extending the virtual clock. Only the part of the drain that ran
  // before convergence overlapped iterations; the tail past t_ did not.
  if (!ensure_drain_record()) return;  // failed drain already rolled back
  commit_pending(std::min(drain_end_t_, t_) - drain_start_t_);
  // Promotions that virtually completed before the run ended are counted;
  // the rest would finish harmlessly after the application exits.
  if (tiered_ != nullptr) apply_promotions(t_);
}

bool ResilientRunner::do_stage() {
  // Promotions whose virtual window has already closed are durable now, so
  // a failure later this interval can recover from them.
  if (tiered_ != nullptr) apply_promotions(t_);
  // Back-pressure (FTI semantics): a new checkpoint may not stage while the
  // previous drain is unfinished — the wait blocks the virtual clock.
  if (pending_version_ >= 0 && ensure_drain_record()) {
    // The drain work done up to this request ran overlapped; any remainder
    // is back-pressure the solver pays for as blocking time.
    const double overlapped =
        std::min(drain_end_t_, t_) - drain_start_t_;
    if (drain_end_t_ > t_) {
      const double wait = drain_end_t_ - t_;
      if (injector_.interrupts(t_, wait)) {
        t_ = injector_.next_failure_time();
        handle_failure();  // aborts the pending drain (t_ <= drain end)
        return false;
      }
      t_ += wait;
      result_.ckpt_seconds_total += wait;
      result_.backpressure_seconds_total += wait;
      pending_blocking_ += wait;  // charged to the drain being waited on
      if (metrics_ != nullptr) {
        metrics_->observe("ckpt.blocking_seconds", wait);
        metrics_->observe("ckpt.blocking_seconds", wait,
                          {{"kind", "backpressure"}});
      }
      if (trace_ != nullptr)
        trace_->complete("ckpt", "backpressure", t_ - wait, t_,
                         {obs::TraceArg::num("version", pending_version_)});
    }
    commit_pending(overlapped);
  }

  capture_solver_state();
  const StageTicket ticket = manager_->stage();
  const double stage_duration = cfg_.cluster.stage_seconds(
      static_cast<double>(ticket.raw_bytes) * cfg_.dynamic_scale);

  if (injector_.interrupts(t_, stage_duration)) {
    // Failure mid-stage: the node-local snapshot is torn, so the version is
    // rolled back before it could ever become a recovery point.
    manager_->abort_version(ticket.version);
    ++result_.aborted_drains;
    if (metrics_ != nullptr) metrics_->add("ckpt.aborted_drains", 1.0);
    if (trace_ != nullptr)
      trace_->instant("ckpt", "stage-torn", t_,
                      {obs::TraceArg::num("version", ticket.version)});
    t_ = injector_.next_failure_time();
    handle_failure();
    return false;
  }

  t_ += stage_duration;
  last_ckpt_t_ = t_;
  result_.ckpt_seconds_total += stage_duration;
  if (metrics_ != nullptr) {
    metrics_->observe("ckpt.blocking_seconds", stage_duration);
    metrics_->observe("ckpt.blocking_seconds", stage_duration,
                      {{"kind", "stage"}});
  }
  if (trace_ != nullptr)
    trace_->complete("ckpt", "stage", t_ - stage_duration, t_,
                     {obs::TraceArg::num("version", ticket.version)});
  pending_version_ = ticket.version;
  pending_known_ = false;
  pending_blocking_ = stage_duration;
  drain_start_t_ = t_;
  return true;
}

// ----- tiered promotion channel ---------------------------------------------

void ResilientRunner::schedule_virtual_promotions(int version,
                                                  double stored_bytes,
                                                  double ready_t) {
  promo_tail_t_ = std::max(promo_tail_t_, ready_t);
  const auto enqueue = [this](int v, int level, double stored) {
    const double cost = level == 1 ? cfg_.cluster.partner_write_seconds(stored)
                                   : cfg_.cluster.write_seconds(stored);
    promo_tail_t_ += cost;
    promo_queue_.push_back({v, level, promo_tail_t_, cost});
    scheduled_promos_[static_cast<std::size_t>(level - 1)].insert(v);
  };
  // A delta version is only recoverable at a tier if its chain bases are
  // there too, so a promotion hop carries any base the cadence skipped —
  // deepest (chain-start) first, each at its own stored size.
  const auto enqueue_chain = [this, &enqueue](int v, int level,
                                              double stored) {
    std::vector<std::pair<int, double>> hops{{v, stored}};
    auto it = version_bytes_.find(v);
    int base = it != version_bytes_.end() ? it->second.base : -1;
    while (base >= 0 &&
           !scheduled_promos_[static_cast<std::size_t>(level - 1)].contains(
               base) &&
           !tiered_->exists_at(level, base)) {
      it = version_bytes_.find(base);
      if (it == version_bytes_.end()) break;  // pruned accounting: best effort
      hops.emplace_back(base, it->second.stored);
      base = it->second.base;
    }
    for (auto h = hops.rbegin(); h != hops.rend(); ++h)
      enqueue(h->first, level, h->second);
  };
  if (version % policy_->l2_promote_every() == 0)
    enqueue_chain(version, 1, stored_bytes);
  if (version % policy_->l3_promote_every() == 0)
    enqueue_chain(version, 2, stored_bytes);
}

void ResilientRunner::apply_promotions(double now) {
  while (!promo_queue_.empty() && promo_queue_.front().done_t <= now) {
    const VirtualPromotion p = promo_queue_.front();
    promo_queue_.pop_front();
    // promote_now() declines when the source version was invalidated or
    // pruned in the meantime — the copy simply never happened.
    if (tiered_->promote_now(p.version, p.level)) {
      ++result_.promotions_completed;
      result_.promotion_seconds_total += p.cost;
      const char* const tier = p.level == 1 ? "L2" : "L3";
      if (metrics_ != nullptr) {
        metrics_->add("tier.promotions_completed", 1.0, {{"tier", tier}});
        metrics_->observe("tier.promotion_seconds", p.cost);
        metrics_->observe("tier.promotion_seconds", p.cost, {{"tier", tier}});
      }
      if (trace_ != nullptr)
        trace_->complete(p.level == 1 ? "promote-L2" : "promote-L3",
                         "promote", p.done_t - p.cost, p.done_t,
                         {obs::TraceArg::num("version", p.version)});
    }
  }
}

// ----------------------------------------------------------------------------

double ResilientRunner::tiered_recovery_duration(int version, int level,
                                                 FailureSeverity worst) const {
  double raw = raw_dyn_bytes_last_;
  if (const auto it = version_bytes_.find(version); it != version_bytes_.end())
    raw = it->second.raw;
  // Process failures restart within the allocation: the static state (A, M,
  // b) is still resident. Node-or-worse failures re-read it from the PFS,
  // exactly like the single-level model.
  const bool read_static = worst >= FailureSeverity::kNode;
  // L1/L2 reads ride node-local/interconnect channels, so their static
  // re-read is a separate PFS operation with its own latency; an L3
  // recovery reads checkpoint + static state in one PFS pass, matching
  // recovery_duration()'s single-level accounting (no double latency).
  // A delta version additionally re-reads its chain bases, each from the
  // cheapest tier still holding it and at its own stored size.
  double seconds = 0.0;
  bool static_folded = false;
  int v = version;
  int hops = 0;
  while (v >= 0 && hops++ <= cfg_.delta.max_delta_chain) {
    double stored = stored_bytes_last_;
    int base = -1;
    int lvl = level;
    if (const auto it = version_bytes_.find(v); it != version_bytes_.end()) {
      stored = it->second.stored;
      base = it->second.base;
    }
    if (hops > 1) {
      // Chain bases may live at a different tier than the target version.
      const int found = tiered_ != nullptr ? tiered_->level_of(v) : -1;
      if (found >= 0) lvl = found;
    }
    switch (lvl) {
      case 0:
        seconds += cfg_.cluster.local_read_seconds(stored);
        break;
      case 1:
        seconds += cfg_.cluster.partner_read_seconds(stored);
        break;
      default:
        if (read_static && !static_folded) {
          seconds += cfg_.cluster.read_seconds(stored + cfg_.static_bytes);
          static_folded = true;
        } else {
          seconds += cfg_.cluster.read_seconds(stored);
        }
        break;
    }
    v = base;
  }
  if (read_static && !static_folded)
    seconds += cfg_.cluster.read_seconds(cfg_.static_bytes);
  return seconds + decompress_cost(raw);
}

void ResilientRunner::note_failure(FailureSeverity sev) {
  ++result_.failures;
  ++result_.failures_by_severity[severity_index(sev)];
  if (metrics_ != nullptr)
    metrics_->add("failures", 1.0, {{"severity", to_string(sev)}});
  if (trace_ != nullptr)
    trace_->instant("failures", to_string(sev), t_);
  policy_->on_failure(sev);
  if (tiered_ != nullptr) {
    // Copies whose virtual window closed before the failure are durable;
    // everything still on the channel is lost with the staging buffers.
    apply_promotions(t_);
    promo_queue_.clear();
    // Queued-but-dead promotions never happened; exists_at() is the only
    // truth about what reached each tier, so future chain scheduling must
    // re-check rather than trust these entries.
    for (auto& scheduled : scheduled_promos_) scheduled.clear();
    promo_tail_t_ = t_;
    tiered_->invalidate(sev);
  }
}

void ResilientRunner::handle_failure() {
  FailureSeverity worst = injector_.severity();
  settle_pending_at_failure();
  note_failure(worst);
  injector_.arm(t_);

  // Recovery, which may itself be interrupted by further failures.
  for (;;) {
    bool have_ckpt = false;
    int level = -1;
    double duration = 0.0;
    if (tiered_ != nullptr) {
      const int version = tiered_->latest_version();
      have_ckpt = version >= 0;
      if (have_ckpt) {
        level = tiered_->level_of(version);
        duration = tiered_recovery_duration(version, level, worst);
      } else {
        duration = cfg_.cluster.read_seconds(cfg_.static_bytes);
      }
    } else {
      have_ckpt = manager_->has_checkpoint();
      duration =
          have_ckpt
              ? recovery_duration(chain_stored_last_, raw_dyn_bytes_last_)
              : cfg_.cluster.read_seconds(cfg_.static_bytes);
    }
    if (injector_.interrupts(t_, duration)) {
      t_ = injector_.next_failure_time();
      const FailureSeverity sev = injector_.severity();
      worst = std::max(worst, sev);
      note_failure(sev);
      injector_.arm(t_);
      continue;
    }
    t_ += duration;
    result_.recovery_seconds_total += duration;
    ++result_.recoveries;
    if (level >= 0 &&
        level < static_cast<int>(result_.recoveries_by_tier.size()))
      ++result_.recoveries_by_tier[static_cast<std::size_t>(level)];
    if (metrics_ != nullptr) {
      metrics_->observe("recovery.seconds", duration);
      if (level >= 0)
        metrics_->add("recovery.by_tier", 1.0,
                      {{"tier", level == 0   ? "L1"
                                : level == 1 ? "L2"
                                             : "L3"}});
    }
    if (trace_ != nullptr) {
      std::vector<obs::TraceArg> args{
          obs::TraceArg::str("severity", to_string(worst))};
      if (level >= 0)
        args.push_back(obs::TraceArg::num("tier", level));
      trace_->complete("recovery", "recovery", t_ - duration, t_,
                       std::move(args));
    }

    if (have_ckpt) {
      manager_->recover();
      if (cfg_.scheme == CkptScheme::kLossy) {
        // Algorithm 2 lines 8–13: decompressed x is the new initial guess.
        solver_.restart(x_buf_);
        ByteReader br(iter_blob_);
        solver_.set_iteration(br.get<std::int64_t>());
      } else {
        ByteReader br(scalar_blob_);
        solver_.restore_scalars(br);
        solver_.resume_after_restore();
      }
    } else {
      // No checkpoint yet: global restart from the initial guess.
      const Vector zero(solver_.rhs().size(), 0.0);
      solver_.restart(zero);
      solver_.set_iteration(0);
    }
    break;
  }
  if (tiered_ != nullptr) promo_tail_t_ = std::max(promo_tail_t_, t_);
  last_ckpt_t_ = t_;  // checkpoint timer restarts after recovery
  policy_->on_recovery(t_);
}

ResilienceResult ResilientRunner::run() {
  const bool staged = cfg_.ckpt_mode != CkptMode::kSync;
  // Sampling basis for the solver.vector_passes counter: the pass counter
  // is process-global, so per-step deltas (not absolute values) are what
  // belongs to this run.
  std::uint64_t passes_seen = obs::vector_passes();
  while (!solver_.converged() && result_.executed_steps < cfg_.max_steps) {
    // Failure strictly inside the next iteration's window?
    if (injector_.interrupts(t_, cfg_.iteration_seconds)) {
      t_ = injector_.next_failure_time();
      handle_failure();
      continue;
    }
    solver_.step();
    ++result_.executed_steps;
    t_ += cfg_.iteration_seconds;
    if (metrics_ != nullptr) {
      const std::uint64_t passes = obs::vector_passes();
      metrics_->add("solver.vector_passes",
                    static_cast<double>(passes - passes_seen));
      passes_seen = passes;
    }
    if (trace_ != nullptr) {
      trace_->complete("solver", "iter", t_ - cfg_.iteration_seconds, t_);
      trace_->counter("residual", "residual", t_, solver_.residual_norm());
    }
    policy_->on_iteration(t_);

    if (!solver_.converged() && policy_->should_checkpoint(t_, last_ckpt_t_)) {
      if (staged)
        do_stage();
      else
        do_checkpoint();
    }
  }
  finish_pending_at_exit();

  result_.policy_interval_final = policy_->current_interval();
  result_.interval_adjustments = policy_->interval_adjustments();
  result_.converged = solver_.converged();
  result_.convergence_iteration = solver_.iteration();
  result_.final_residual_norm = solver_.residual_norm();
  result_.virtual_seconds = t_;
  if (result_.checkpoints > 0)
    result_.mean_ckpt_seconds =
        committed_blocking_total_ / result_.checkpoints;
  if (result_.recoveries > 0)
    result_.mean_recovery_seconds =
        result_.recovery_seconds_total / result_.recoveries;
  if (metrics_ != nullptr) {
    metrics_->set_gauge("run.virtual_seconds", result_.virtual_seconds);
    metrics_->set_gauge("run.converged", result_.converged ? 1.0 : 0.0);
    metrics_->set_gauge("run.final_residual_norm",
                        result_.final_residual_norm);
    metrics_->set_gauge("run.policy_interval_final",
                        result_.policy_interval_final);
  }
  return result_;
}

}  // namespace lck

#pragma once
/// \file resilient_runner.hpp
/// \brief The paper's primary contribution, executable: drive any iterative
///        solver to convergence under fail-stop failure injection with
///        traditional, lossless-compressed, or lossy-compressed
///        checkpointing (Algorithms 1 and 2).
///
/// Solver mathematics (iterations, residuals, compression losses) run for
/// real; wall-clock time is accumulated on a virtual clock using the
/// calibrated ClusterModel, so cluster-scale results (paper §5.4) are
/// reproducible on one node. See DESIGN.md §5 for the rationale.
///
/// Checkpoint modes (ResilienceConfig::ckpt_mode):
///  - CkptMode::kSync — the paper's setting: the solver stops for the full
///    compress + PFS-write duration of every checkpoint.
///  - CkptMode::kAsync — staged pipeline: only the node-local staging copy
///    blocks the virtual clock; the drain (compression + PFS write) overlaps
///    subsequent iterations. A failure inside the drain window aborts the
///    pending version and recovery falls back to the previous *committed*
///    checkpoint; a checkpoint request while the previous drain is still in
///    flight back-pressures until it commits.
///  - CkptMode::kTiered — multi-level hierarchy (FTI/VeloC style): the
///    staged drain lands in a node-local L1 tier (cheap), and committed
///    versions are promoted L1→L2(partner)→L3(PFS) on a virtual background
///    channel that never blocks the solver. Failures carry a severity
///    (process/node/partition/system, sampled per ResilienceConfig
///    weights); a severity-k failure destroys the tiers that do not survive
///    it and recovery reads the cheapest surviving tier, paying that tier's
///    read cost (plus a static-state re-read for node-or-worse failures).

#include <array>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>

#include "ckpt/checkpoint_manager.hpp"
#include "common/severity.hpp"
#include "core/ckpt_policy.hpp"
#include "obs/observability.hpp"
#include "sim/cluster_model.hpp"
#include "sim/failure.hpp"
#include "solvers/solver.hpp"

namespace lck {

class TieredCheckpointStore;

/// Which checkpointing scheme to run (paper §5.1 terminology).
enum class CkptScheme { kTraditional, kLossless, kLossy };

[[nodiscard]] const char* to_string(CkptScheme s) noexcept;

/// Compressor selection for the compressed schemes (names resolved through
/// make_compressor) plus the Theorem-3 adaptive error bound.
struct CompressionConfig {
  std::string lossless = "deflate";
  std::string lossy = "sz";
  ErrorBound lossy_eb = ErrorBound::pointwise_rel(1e-4);

  /// Theorem 3: refresh the lossy error bound to θ·||r||/||b|| before every
  /// checkpoint (the paper's GMRES setting).
  bool adaptive_error_bound = false;
  double adaptive_theta = 1.0;
};

/// Fail-stop failure injection (λ = 1/MTTI) and the severity mix of the
/// multi-level hierarchy.
struct FailureConfig {
  double mtti_seconds = 3600.0;
  /// Disable for failure-free baselines.
  bool inject = true;
  std::uint64_t seed = 1;
  /// Probability of each failure severity (process, node, partition,
  /// system); must sum to 1. Only sampled in tiered mode.
  std::array<double, kSeverityCount> severity_weights =
      kDefaultSeverityWeights;
  /// Inter-arrival distribution: "exponential" (the paper's model, default)
  /// or "weibull" (bursty fleet failures; see sim/failure.hpp).
  std::string distribution = "exponential";
  /// Weibull shape k; < 1 front-loads the hazard (bursts). Only read when
  /// distribution == "weibull".
  double weibull_shape = 0.7;
  /// Weibull scale λ; 0 derives it from mtti_seconds so the mean
  /// inter-arrival stays the configured MTTI (λ = MTTI / Γ(1 + 1/k)).
  double weibull_scale = 0.0;
};

/// Multi-level hierarchy knobs (CkptMode::kTiered only).
struct TieredConfig {
  /// Every k-th committed checkpoint is promoted to the L2 partner tier.
  int l2_promote_every = 1;
  /// Every k-th committed checkpoint is promoted to the L3 PFS tier.
  int l3_promote_every = 4;
  /// Committed versions each tier retains (older ones pruned per tier).
  int retention = 2;
};

/// Chunked content-addressed delta checkpointing (ckpt/chunk/). Disabled by
/// default: at `max_delta_chain = 0` every scheme × mode combination emits
/// streams byte-identical to the pre-delta serializer.
struct DeltaConfig {
  /// Maximum consecutive delta checkpoints riding on one full checkpoint
  /// before the next full is forced (bounds recovery read amplification
  /// and how long retention must keep chain bases). 0 disables delta
  /// encoding entirely.
  int max_delta_chain = 0;
  /// Chunk size in doubles — the unit of hashing, dedup and parallel
  /// compression.
  std::size_t chunk_elems = CheckpointManager::kDefaultChunkElems;
};

/// Checkpoint pacing (see ckpt_policy.hpp for the policy implementations).
struct PolicyConfig {
  /// make_policy name: "fixed" (the paper's offline interval, default),
  /// "young" (model-derived once) or "adaptive" (online re-derivation).
  std::string name = "fixed";
  /// Virtual seconds between checkpoints for the fixed policy
  /// (Young-optimal in the paper), and every policy's fallback when
  /// failure injection is off.
  double interval_seconds = 420.0;
};

struct ResilienceConfig {
  CkptScheme scheme = CkptScheme::kLossy;

  /// Synchronous (paper), staged/overlapped, or multi-level writes.
  CkptMode ckpt_mode = CkptMode::kSync;

  CompressionConfig compression{};
  FailureConfig failure{};
  TieredConfig tiered{};
  PolicyConfig policy{};
  DeltaConfig delta{};
  /// Streaming framed serializer (ckpt/frame_stream.hpp): bounded-memory
  /// checkpoint writes/reads. On by default; delta mode takes precedence.
  StreamingConfig streaming{};
  /// Observability gates (obs/observability.hpp). Both off by default: no
  /// registry or recorder is allocated and every instrumentation site in
  /// the checkpoint stack reduces to one null-pointer test. Enabling them
  /// never changes simulation decisions — runs stay bit-stable.
  obs::ObservabilityConfig obs{};

  /// Externally-owned store stack: when set, the runner calls this factory
  /// instead of building its own store (the multi-tenant CheckpointService
  /// hands per-job stacks out this way — see svc/checkpoint_service.hpp).
  /// In tiered mode the factory must yield a TieredCheckpointStore (the
  /// runner drives promote_now on it); any CheckpointStore works otherwise.
  /// The returned store is owned by the runner's manager; resources it
  /// borrows (the service's shared L3) must outlive the runner.
  std::function<std::unique_ptr<CheckpointStore>()> store_factory;

  /// Virtual cost of one solver iteration at cluster scale (calibrated per
  /// method, e.g. GMRES ≈ 1.22 s at 2,048 ranks — paper §4.3).
  double iteration_seconds = 1.0;

  ClusterModel cluster{};

  /// Cluster-scale bytes per real (local) byte of dynamic state: the
  /// evaluation solves a laptop-sized instance whose vectors stand in for
  /// the paper's 78.8 GB ones. Compression ratios are measured on the real
  /// data; sizes and times are scaled by this factor.
  double dynamic_scale = 1.0;

  /// Cluster-scale bytes of static state (A, M, b) re-read on recovery.
  double static_bytes = 0.0;

  /// Safety cap on executed solver steps.
  index_t max_steps = 2000000;

  /// Check every knob and throw one config_error naming *all* violations
  /// (one clear message per violation). Called by the runner constructor.
  void validate() const;
};

struct ResilienceResult {
  bool converged = false;

  /// Solver steps actually executed (includes rollback re-execution).
  index_t executed_steps = 0;
  /// solver.iteration() at convergence: N plus any lossy delay N′,
  /// excluding rollback re-execution (the paper's Fig. 8 metric).
  index_t convergence_iteration = 0;
  double final_residual_norm = 0.0;

  /// Virtual wall-clock of the whole run (paper's Tt).
  double virtual_seconds = 0.0;

  int failures = 0;
  int checkpoints = 0;
  int recoveries = 0;
  /// Async only: staged versions rolled back because a failure struck
  /// before their drain committed.
  int aborted_drains = 0;

  /// Virtual seconds the solver was *blocked* by checkpointing: the full
  /// compress+write in sync mode; staging copies plus back-pressure waits
  /// in async mode.
  double ckpt_seconds_total = 0.0;
  /// Async only: drain seconds (compression + PFS write) that actually ran
  /// overlapped with iterations — off the critical path, not part of
  /// virtual_seconds. The back-pressured tail of a drain counts toward
  /// ckpt_seconds_total/backpressure_seconds_total instead, never here.
  double ckpt_drain_seconds_total = 0.0;
  /// Async only: portion of ckpt_seconds_total spent stalled because a new
  /// checkpoint was requested while the previous drain was still in flight.
  double backpressure_seconds_total = 0.0;
  double recovery_seconds_total = 0.0;
  /// Mean blocking seconds per *committed* checkpoint (excludes the staging
  /// cost of later-aborted versions, which stays in ckpt_seconds_total).
  double mean_ckpt_seconds = 0.0;
  double mean_recovery_seconds = 0.0;

  /// Failure count per severity class. Without the tiered severity model
  /// every failure is kProcess.
  std::array<int, kSeverityCount> failures_by_severity{};
  /// Tiered only: recoveries served by each hierarchy level (0 = L1
  /// node-local, 1 = L2 partner, 2 = L3 PFS).
  std::array<int, 3> recoveries_by_tier{};
  /// Tiered only: L1→L2/L3 promotions that completed before the run (or a
  /// failure) cut them off, and their total virtual seconds — background
  /// work, never part of virtual_seconds.
  int promotions_completed = 0;
  double promotion_seconds_total = 0.0;

  /// Cluster-scale stored checkpoint size (mean over checkpoints) and the
  /// achieved dynamic-state compression ratio. With delta encoding the
  /// ratio reflects *full* checkpoints only (a delta's raw/stored quotient
  /// would conflate chunk dedup with the codec); delta savings are in
  /// delta_bytes_total / chunks_deduped below.
  double mean_ckpt_stored_bytes = 0.0;
  double compression_ratio = 1.0;

  /// Delta checkpointing counters. At max_delta_chain = 0,
  /// delta_bytes_total and chunks_deduped are zero and full_checkpoints
  /// equals checkpoints (every committed checkpoint is full).
  /// delta_bytes_total: cluster-scale stored bytes of the committed
  /// *delta* (non-full) checkpoints — what the runner actually paid to
  /// stage/drain them.
  double delta_bytes_total = 0.0;
  /// Chunks stored as references instead of payload bytes, summed over
  /// committed checkpoints.
  std::size_t chunks_deduped = 0;
  /// Committed chain-start (full) checkpoints.
  int full_checkpoints = 0;

  /// The pacing policy's target interval when the run ended (the fixed
  /// interval for "fixed", the derived one for "young"/"adaptive") and how
  /// many times it changed mid-run (0 for the static policies) — so benches
  /// and tests can observe pacing without parsing logs.
  double policy_interval_final = 0.0;
  int interval_adjustments = 0;
};

/// Drives one solver instance to convergence under the configured scheme.
class ResilientRunner {
 public:
  ResilientRunner(IterativeSolver& solver, ResilienceConfig cfg);
  ~ResilientRunner();

  /// Execute to convergence (or the step cap). May be called once.
  [[nodiscard]] ResilienceResult run();

  /// The pacing policy driving this run (for observability; owned).
  [[nodiscard]] const CheckpointPolicy& policy() const noexcept {
    return *policy_;
  }

  /// The run's metrics registry, or nullptr when cfg.obs.metrics is off.
  /// Snapshot it after run() for per-stage histograms and counters.
  [[nodiscard]] obs::MetricsRegistry* metrics() const noexcept {
    return metrics_.get();
  }
  /// The run's trace recorder, or nullptr when cfg.obs.trace is off.
  [[nodiscard]] obs::TraceRecorder* trace() const noexcept {
    return trace_.get();
  }
  /// Transfer ownership of the trace recorder so callers can merge several
  /// runs into one Chrome trace file after the runners are gone. Returns
  /// null when tracing was off.
  [[nodiscard]] std::unique_ptr<obs::TraceRecorder> take_trace() noexcept;

 private:
  void register_variables();
  /// Model predictions and failure rates the pacing policy is built from.
  [[nodiscard]] PolicyContext make_policy_context() const;
  /// Scheme-dependent virtual cost of (de)compressing `raw_bytes` of
  /// dynamic state (zero for the traditional scheme). Shared by every
  /// checkpoint/drain/recovery duration below.
  [[nodiscard]] double compress_cost(double raw_bytes) const;
  [[nodiscard]] double decompress_cost(double raw_bytes) const;
  [[nodiscard]] double checkpoint_duration(const CheckpointRecord& rec) const;
  /// Virtual seconds of the background drain window: compression + PFS
  /// write (kAsync) or compression + node-local L1 write (kTiered).
  [[nodiscard]] double drain_duration(const CheckpointRecord& rec) const;
  [[nodiscard]] double recovery_duration(double stored_bytes,
                                         double raw_dynamic_bytes) const;
  /// Tiered recovery cost from hierarchy level `level`; `worst` is the
  /// highest severity seen since the last successful recovery (node or
  /// worse adds the static-state PFS re-read).
  [[nodiscard]] double tiered_recovery_duration(int version, int level,
                                                FailureSeverity worst) const;
  void refresh_adaptive_bound();
  void capture_solver_state();  ///< Copy x / scalars into protected buffers.
  bool do_checkpoint();   ///< Sync path. Returns false if a failure hit it.
  bool do_stage();        ///< Async path. Returns false if a failure hit it.
  /// Join the drain and fix its virtual window. Returns false if the drain
  /// itself failed (background compressor/store error): the pending version
  /// is then aborted like a torn write and the caller must not commit it.
  [[nodiscard]] bool ensure_drain_record();
  /// Promote the drained version; `overlapped_drain_seconds` is the part of
  /// its drain window that ran concurrently with iterations (the rest, if
  /// any, was back-pressure and is charged as blocking time by the caller).
  void commit_pending(double overlapped_drain_seconds);
  /// Shared commit accounting for the sync and staged paths: cluster-scale
  /// last-committed sizes, the chain-total recovery bytes, and the delta
  /// counters.
  void account_committed(const CheckpointRecord& rec);
  void settle_pending_at_failure();  ///< Commit or abort at failure time t_.
  void finish_pending_at_exit();     ///< Commit the tail drain on run end.
  void handle_failure();
  /// Count a failure with severity `sev`; in tiered mode also applies
  /// matured promotions, drops in-flight promotion work and invalidates
  /// the destroyed tiers.
  void note_failure(FailureSeverity sev);
  /// Enqueue the virtual L1→L2/L3 promotion of a committed version on the
  /// (serial) background channel, starting no earlier than `ready_t`.
  void schedule_virtual_promotions(int version, double stored_bytes,
                                   double ready_t);
  /// Execute every queued promotion whose virtual window ended by `now`.
  void apply_promotions(double now);

  IterativeSolver& solver_;
  ResilienceConfig cfg_;
  std::unique_ptr<CheckpointPolicy> policy_;
  // Allocated only when cfg_.obs enables them; sink_ carries the borrowed
  // pointers down the checkpoint stack.
  std::unique_ptr<obs::MetricsRegistry> metrics_;
  std::unique_ptr<obs::TraceRecorder> trace_;
  obs::Sink sink_{};
  std::unique_ptr<Compressor> compressor_;
  LossyCompressor* lossy_ = nullptr;  // non-null iff scheme == kLossy
  std::unique_ptr<CheckpointManager> manager_;

  Vector x_buf_;                   // lossy scheme: checkpointed copy of x
  std::vector<byte_t> scalar_blob_;  // traditional/lossless scalar state
  std::vector<byte_t> iter_blob_;  // serialized solver iteration (lossy path)

  FailureInjector injector_;
  double t_ = 0.0;                 // virtual clock
  double last_ckpt_t_ = 0.0;
  ResilienceResult result_;
  double stored_bytes_last_ = 0.0;  // cluster-scale stored size of last
  double raw_dyn_bytes_last_ = 0.0;  // *committed* checkpoint
  /// Cluster-scale bytes a recovery of the last committed version must
  /// read: the version itself plus its delta-chain bases (== the stored
  /// size when delta encoding is off).
  double chain_stored_last_ = 0.0;

  // Async pipeline: the drain in flight, if any.
  int pending_version_ = -1;
  bool pending_known_ = false;       // drain joined, record + window fixed
  double drain_start_t_ = 0.0;
  double drain_end_t_ = 0.0;
  double pending_blocking_ = 0.0;    // blocking seconds of the pending ckpt
  double committed_blocking_total_ = 0.0;  // numerator of mean_ckpt_seconds
  CheckpointRecord pending_rec_{};

  // Tiered hierarchy: borrowed from manager_'s store (manager owns it).
  TieredCheckpointStore* tiered_ = nullptr;
  /// One committed-version hop (into L2 or L3) on the serial virtual
  /// promotion channel.
  struct VirtualPromotion {
    int version = -1;
    int level = -1;
    double done_t = 0.0;  ///< Virtual completion time.
    double cost = 0.0;    ///< Seconds of background channel time.
  };
  std::deque<VirtualPromotion> promo_queue_;
  double promo_tail_t_ = 0.0;  ///< Busy-until time of the promotion channel.
  /// Cluster-scale stored/raw bytes and delta base per committed version,
  /// so recovery from an older tier copy is charged that version's true
  /// size — including its chain bases when delta encoding is on.
  struct VersionBytes {
    double stored = 0.0;
    double raw = 0.0;
    int base = -1;
  };
  std::map<int, VersionBytes> version_bytes_;
  /// Versions already enqueued on the promotion channel per target level
  /// (index 0 = L2, 1 = L3), so a delta's chain bases are promoted exactly
  /// once even when the cadence skips them. Cleared on failure: the queue
  /// died, and exists_at() tells us what actually made it.
  std::array<std::set<int>, 2> scheduled_promos_;
};

}  // namespace lck

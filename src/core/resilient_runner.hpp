#pragma once
/// \file resilient_runner.hpp
/// \brief The paper's primary contribution, executable: drive any iterative
///        solver to convergence under fail-stop failure injection with
///        traditional, lossless-compressed, or lossy-compressed
///        checkpointing (Algorithms 1 and 2).
///
/// Solver mathematics (iterations, residuals, compression losses) run for
/// real; wall-clock time is accumulated on a virtual clock using the
/// calibrated ClusterModel, so cluster-scale results (paper §5.4) are
/// reproducible on one node. See DESIGN.md §5 for the rationale.

#include <memory>
#include <string>

#include "ckpt/checkpoint_manager.hpp"
#include "sim/cluster_model.hpp"
#include "sim/failure.hpp"
#include "solvers/solver.hpp"

namespace lck {

/// Which checkpointing scheme to run (paper §5.1 terminology).
enum class CkptScheme { kTraditional, kLossless, kLossy };

[[nodiscard]] const char* to_string(CkptScheme s) noexcept;

struct ResilienceConfig {
  CkptScheme scheme = CkptScheme::kLossy;

  /// Compressor names (see make_compressor) for the two compressed schemes.
  std::string lossless_compressor = "deflate";
  std::string lossy_compressor = "sz";
  ErrorBound lossy_eb = ErrorBound::pointwise_rel(1e-4);

  /// Theorem 3: refresh the lossy error bound to θ·||r||/||b|| before every
  /// checkpoint (the paper's GMRES setting).
  bool adaptive_error_bound = false;
  double adaptive_theta = 1.0;

  /// Virtual seconds between checkpoints (Young-optimal in the paper).
  double ckpt_interval_seconds = 420.0;

  /// Failure injection (λ = 1/MTTI); disable for failure-free baselines.
  double mtti_seconds = 3600.0;
  bool inject_failures = true;
  std::uint64_t seed = 1;

  /// Virtual cost of one solver iteration at cluster scale (calibrated per
  /// method, e.g. GMRES ≈ 1.22 s at 2,048 ranks — paper §4.3).
  double iteration_seconds = 1.0;

  ClusterModel cluster{};

  /// Cluster-scale bytes per real (local) byte of dynamic state: the
  /// evaluation solves a laptop-sized instance whose vectors stand in for
  /// the paper's 78.8 GB ones. Compression ratios are measured on the real
  /// data; sizes and times are scaled by this factor.
  double dynamic_scale = 1.0;

  /// Cluster-scale bytes of static state (A, M, b) re-read on recovery.
  double static_bytes = 0.0;

  /// Safety cap on executed solver steps.
  index_t max_steps = 2000000;
};

struct ResilienceResult {
  bool converged = false;

  /// Solver steps actually executed (includes rollback re-execution).
  index_t executed_steps = 0;
  /// solver.iteration() at convergence: N plus any lossy delay N′,
  /// excluding rollback re-execution (the paper's Fig. 8 metric).
  index_t convergence_iteration = 0;
  double final_residual_norm = 0.0;

  /// Virtual wall-clock of the whole run (paper's Tt).
  double virtual_seconds = 0.0;

  int failures = 0;
  int checkpoints = 0;
  int recoveries = 0;

  double ckpt_seconds_total = 0.0;
  double recovery_seconds_total = 0.0;
  double mean_ckpt_seconds = 0.0;
  double mean_recovery_seconds = 0.0;

  /// Cluster-scale stored checkpoint size (mean over checkpoints) and the
  /// achieved dynamic-state compression ratio.
  double mean_ckpt_stored_bytes = 0.0;
  double compression_ratio = 1.0;
};

/// Drives one solver instance to convergence under the configured scheme.
class ResilientRunner {
 public:
  ResilientRunner(IterativeSolver& solver, ResilienceConfig cfg);

  /// Execute to convergence (or the step cap). May be called once.
  [[nodiscard]] ResilienceResult run();

 private:
  void register_variables();
  [[nodiscard]] double checkpoint_duration(const CheckpointRecord& rec) const;
  [[nodiscard]] double recovery_duration(double stored_bytes,
                                         double raw_dynamic_bytes) const;
  void refresh_adaptive_bound();
  bool do_checkpoint();   ///< Returns false if a failure interrupted it.
  void handle_failure();

  IterativeSolver& solver_;
  ResilienceConfig cfg_;
  std::unique_ptr<Compressor> compressor_;
  LossyCompressor* lossy_ = nullptr;  // non-null iff scheme == kLossy
  std::unique_ptr<CheckpointManager> manager_;

  Vector x_buf_;                   // lossy scheme: checkpointed copy of x
  std::vector<byte_t> scalar_blob_;  // traditional/lossless scalar state
  index_t ckpt_iteration_ = 0;     // solver iteration at the last checkpoint
  std::vector<byte_t> iter_blob_;  // serialized ckpt_iteration_ (lossy path)

  FailureInjector injector_;
  double t_ = 0.0;                 // virtual clock
  double last_ckpt_t_ = 0.0;
  ResilienceResult result_;
  double stored_bytes_last_ = 0.0;  // cluster-scale stored size of last ckpt
  double raw_dyn_bytes_last_ = 0.0;
};

}  // namespace lck

#pragma once
/// \file ckpt_policy.hpp
/// \brief Pluggable checkpoint-pacing policies: when should the runner take
///        the next checkpoint?
///
/// The paper picks a single Young-optimal interval offline and paces every
/// run with it. PR 2/PR 3 added overlap-aware and per-tier cost models whose
/// optimal intervals differ per mode — this layer closes the loop by making
/// the timing decision a first-class interface instead of a hardwired
/// `now - last >= interval` comparison:
///
///  - FixedIntervalPolicy — the paper's setting, bit-identical to the old
///    hardwired pacing (and the default, so existing runs are unchanged).
///  - YoungPolicy — derives the interval once, at construction, from the
///    perf_model inverse helpers given λ and the model-predicted blocking
///    cost of the active CkptMode.
///  - AdaptiveCostPolicy — online: re-derives the interval after every
///    committed checkpoint from the *observed* blocking cost and stored
///    size (EWMA), using the overlap-aware formula in staged modes; in
///    tiered mode it also adapts the effective L2/L3 promotion cadence from
///    the per-tier optimal intervals.
///
/// Policies are deterministic: their state is a pure function of the
/// virtual clock and the observed (virtual) costs the runner feeds them, so
/// reruns with the same seed stay bit-stable.

#include <array>
#include <memory>
#include <string>

#include "ckpt/checkpoint_manager.hpp"  // CkptMode
#include "common/severity.hpp"

namespace lck {

/// Everything a pacing policy may consult, captured at construction: the
/// failure rate, the configured fixed interval (the fixed policy's pacing
/// and every other policy's fallback when λ = 0), and the perf-model
/// predictions for one checkpoint of the active mode. The predictions use a
/// compression ratio of 1 (conservative); adaptive policies replace them
/// with observed values as checkpoints commit.
struct PolicyContext {
  CkptMode mode = CkptMode::kSync;
  /// Failure rate λ = 1/MTTI; 0 when failure injection is disabled (the
  /// model-driven policies then fall back to the fixed interval — with no
  /// failures the "optimal" interval diverges).
  double lambda = 0.0;
  double fixed_interval_seconds = 420.0;
  /// Model-predicted solver-blocking seconds of one checkpoint: the full
  /// compress+write (kSync) or the staging copy (kAsync/kTiered).
  double predicted_blocking_seconds = 0.0;
  /// Model-predicted background drain seconds (== blocking for kSync).
  double predicted_drain_seconds = 0.0;
  /// Model-predicted stored bytes (cluster scale, ratio-1 guess). Adaptive
  /// policies rescale the drain/copy predictions by observed/predicted.
  double predicted_stored_bytes = 0.0;
  /// kTiered: model-predicted seconds to place one checkpoint on L2/L3.
  double l2_copy_seconds = 0.0;
  double l3_copy_seconds = 0.0;
  /// kTiered: per-recovery-tier failure rates (severity_tier_lambdas).
  std::array<double, 3> tier_lambdas{};
  /// kTiered: configured promotion cadence (adaptive policies may override).
  int l2_promote_every = 1;
  int l3_promote_every = 4;
};

/// Abstract checkpoint-timing decision, consulted by ResilientRunner once
/// per iteration and fed every lifecycle event that could inform pacing.
class CheckpointPolicy {
 public:
  explicit CheckpointPolicy(PolicyContext ctx) : ctx_(std::move(ctx)) {}
  virtual ~CheckpointPolicy() = default;

  /// Short identifier, e.g. "fixed", "young", "adaptive".
  [[nodiscard]] virtual const char* name() const noexcept = 0;

  /// Target seconds between checkpoints right now (observability and the
  /// default decision rule below).
  [[nodiscard]] virtual double current_interval() const noexcept = 0;

  /// Decide whether to checkpoint at virtual time `now`, where
  /// `last_ckpt_t` is when the checkpoint timer was last reset (previous
  /// checkpoint end or recovery end). The default rule reproduces the
  /// pre-policy pacing comparison exactly.
  [[nodiscard]] virtual bool should_checkpoint(double now,
                                               double last_ckpt_t) const {
    return now - last_ckpt_t >= current_interval();
  }

  // ----- lifecycle hooks (defaults: no-op) ----------------------------------

  /// One solver iteration finished at virtual time `now`.
  virtual void on_iteration(double now) { (void)now; }

  /// A checkpoint version committed. `blocking_seconds` is what the solver
  /// paid for it (full cost in sync mode; staging copy plus any
  /// back-pressure in staged modes); `stored_bytes` its cluster-scale
  /// stored size.
  virtual void on_checkpoint_committed(double blocking_seconds,
                                       double stored_bytes) {
    (void)blocking_seconds;
    (void)stored_bytes;
  }

  /// A failure of the given severity struck.
  virtual void on_failure(FailureSeverity severity) { (void)severity; }

  /// Recovery completed at virtual time `now`; the checkpoint timer
  /// restarts here.
  virtual void on_recovery(double now) { (void)now; }

  // ----- tiered promotion cadence -------------------------------------------

  /// Every k-th committed version is promoted to L2 / L3 (kTiered only).
  /// Defaults to the configured cadence; AdaptiveCostPolicy re-derives it
  /// from the per-tier optimal intervals.
  [[nodiscard]] virtual int l2_promote_every() const noexcept {
    return ctx_.l2_promote_every;
  }
  [[nodiscard]] virtual int l3_promote_every() const noexcept {
    return ctx_.l3_promote_every;
  }

  /// Times the target interval changed since construction (0 for static
  /// policies) — surfaced as ResilienceResult::interval_adjustments.
  [[nodiscard]] virtual int interval_adjustments() const noexcept {
    return 0;
  }

  [[nodiscard]] const PolicyContext& context() const noexcept { return ctx_; }

 protected:
  PolicyContext ctx_;
};

/// The paper's pacing: one fixed wall-clock interval, chosen offline.
/// Bit-identical to the pre-policy hardwired comparison.
class FixedIntervalPolicy final : public CheckpointPolicy {
 public:
  explicit FixedIntervalPolicy(PolicyContext ctx);
  /// Standalone convenience (e.g. examples driving CheckpointManager
  /// directly): pace at `interval_seconds` with a default context.
  explicit FixedIntervalPolicy(double interval_seconds);

  [[nodiscard]] const char* name() const noexcept override { return "fixed"; }
  [[nodiscard]] double current_interval() const noexcept override {
    return ctx_.fixed_interval_seconds;
  }
};

/// Young's formula evaluated once at construction on the model-predicted
/// blocking cost of the active mode: sqrt(2c/λ) for kSync, the overlap-aware
/// fixed point for kAsync/kTiered. Falls back to the configured fixed
/// interval when λ = 0 or the prediction is degenerate.
class YoungPolicy final : public CheckpointPolicy {
 public:
  explicit YoungPolicy(PolicyContext ctx);

  [[nodiscard]] const char* name() const noexcept override { return "young"; }
  [[nodiscard]] double current_interval() const noexcept override {
    return interval_;
  }

 private:
  double interval_ = 0.0;
};

/// Online pacing: starts from the YoungPolicy prediction, then re-derives
/// the interval after every committed checkpoint from EWMAs of the observed
/// blocking cost and stored size. In staged modes the back-pressure share
/// of the blocking cost closes a natural feedback loop (interval too short
/// ⇒ back-pressure ⇒ observed cost up ⇒ interval up). In tiered mode the
/// per-tier optimal intervals additionally drive the effective L2/L3
/// promotion cadence.
class AdaptiveCostPolicy final : public CheckpointPolicy {
 public:
  /// `smoothing` is the EWMA weight of the newest observation in (0, 1].
  explicit AdaptiveCostPolicy(PolicyContext ctx, double smoothing = 0.5);

  [[nodiscard]] const char* name() const noexcept override {
    return "adaptive";
  }
  [[nodiscard]] double current_interval() const noexcept override {
    return interval_;
  }
  void on_checkpoint_committed(double blocking_seconds,
                               double stored_bytes) override;

  [[nodiscard]] int l2_promote_every() const noexcept override {
    return l2_every_;
  }
  [[nodiscard]] int l3_promote_every() const noexcept override {
    return l3_every_;
  }
  [[nodiscard]] int interval_adjustments() const noexcept override {
    return adjustments_;
  }

  /// Current EWMA of the observed solver-blocking seconds per checkpoint.
  [[nodiscard]] double blocking_estimate() const noexcept {
    return blocking_ewma_;
  }

 private:
  void rederive();

  double alpha_;
  double blocking_ewma_ = 0.0;
  double stored_ewma_ = 0.0;
  double interval_ = 0.0;
  int l2_every_ = 1;
  int l3_every_ = 1;
  int adjustments_ = 0;
};

/// Factory mirroring make_compressor: "fixed" | "young" | "adaptive".
/// Throws config_error for unknown names.
[[nodiscard]] std::unique_ptr<CheckpointPolicy> make_policy(
    const std::string& name, const PolicyContext& ctx);

/// True iff `name` is resolvable by make_policy — the single source of
/// truth for the known-policy list (ResilienceConfig::validate uses it).
[[nodiscard]] bool is_known_policy(const std::string& name) noexcept;

}  // namespace lck

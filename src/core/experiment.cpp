#include "core/experiment.hpp"

namespace lck {

PaperMethod paper_jacobi() {
  return {"jacobi", 1e-4, 50.0 * 60.0, 3941.0, 1, false, 1e-4, 6.0};
}

PaperMethod paper_gmres() {
  return {"gmres", 7e-5, 120.0 * 60.0, 5875.0, 1, true, 1e-4, 0.0};
}

PaperMethod paper_cg() {
  return {"cg", 1e-7, 35.0 * 60.0, 2376.0, 2, false, 1e-4, 594.0};
}

PaperMethod paper_method(const std::string& name) {
  if (name == "jacobi") return paper_jacobi();
  if (name == "gmres") return paper_gmres();
  if (name == "cg") return paper_cg();
  throw config_error("unknown paper method: " + name);
}

index_t table3_grid_n(int processes) {
  switch (processes) {
    case 256: return 1088;
    case 512: return 1368;
    case 768: return 1568;
    case 1024: return 1728;
    case 1280: return 1856;
    case 1536: return 1968;
    case 1792: return 2064;
    case 2048: return 2160;
    default:
      throw config_error("table 3 has no row for " +
                         std::to_string(processes) + " processes");
  }
}

double table3_vector_bytes(int processes) {
  const double n = static_cast<double>(table3_grid_n(processes));
  return n * n * n * sizeof(double);
}

double static_state_bytes(double vector_bytes) {
  // b is read back (1×), A and the block-ILU preconditioner are regenerated
  // in memory; 0.25× of one vector reproduces the paper's recovery >
  // checkpoint gap (Figs. 4–6).
  return 0.25 * vector_bytes;
}

LocalProblem make_local_problem(const std::string& method, index_t grid_n,
                                double rtol, index_t max_iterations,
                                bool precondition) {
  LocalProblem p;
  p.spec.method = method;
  p.spec.options.rtol = rtol;
  p.spec.options.max_iterations = max_iterations;

  const bool stationary =
      method == "jacobi" || method == "gauss-seidel" || method == "sor" ||
      method == "ssor";
  if (stationary) {
    // Paper Eq. 15 exactly: diagonal −6 stencil. Jacobi's iteration matrix
    // is identical for A and −A; keep the paper's sign.
    p.a = poisson3d(grid_n);
    const Vector xt = smooth_solution(p.a.rows());
    p.b.assign(xt.size(), 0.0);
    p.a.multiply(xt, p.b);
  } else {
    // SPD variant (+6 diagonal) for Krylov methods, with the paper's
    // default PETSc preconditioner (block Jacobi + ILU0).
    p.a = poisson3d_spd(grid_n);
    const Vector xt = smooth_solution(p.a.rows());
    p.b.assign(xt.size(), 0.0);
    p.a.multiply(xt, p.b);
    if (precondition) p.precond = make_preconditioner("bjacobi", p.a, 8);
  }
  return p;
}

}  // namespace lck

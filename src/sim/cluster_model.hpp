#pragma once
/// \file cluster_model.hpp
/// \brief Virtual-time model of the paper's 2,048-core Bebop environment:
///        PFS write/read bandwidth and parallel (de)compression throughput.
///
/// Calibration (DESIGN.md §6, all straight from the paper):
///  - 78.8 GB traditional checkpoint takes ~120 s at 2,048 ranks
///    ⇒ aggregate PFS write bandwidth ≈ 0.657 GB/s (shared, so checkpoint
///    time grows linearly with total data — paper Figs. 4–6).
///  - SZ compression runs at 80 GB/s and decompression at 180 GB/s on
///    1,024 cores with ~90 % parallel efficiency (paper §5.3).

#include <cstddef>

#include "common/types.hpp"

namespace lck {

struct ClusterModel {
  int ranks = 2048;                ///< Logical MPI ranks.
  double pfs_write_bw = 0.8e9;     ///< Aggregate bytes/s to PFS.
  double pfs_read_bw = 0.8e9;      ///< Aggregate bytes/s from PFS.
  double pfs_latency = 1.0;        ///< Fixed per-operation seconds.
  /// Per-rank metadata/contention cost of a collective PFS operation
  /// (MPI-IO open/sync); this is what keeps small lossy checkpoints from
  /// being free and makes Figs. 4–6 grow linearly with ranks.
  double pfs_per_rank_overhead = 0.01;
  double compress_bw_per_rank = 80.0e9 / 1024.0;    ///< bytes/s/rank (SZ-class).
  double decompress_bw_per_rank = 180.0e9 / 1024.0; ///< bytes/s/rank (SZ-class).
  double parallel_efficiency = 0.9;
  /// gzip-class lossless throughput per rank (each rank compresses its own
  /// block independently).
  double lossless_compress_bw_per_rank = 60.0e6;
  double lossless_decompress_bw_per_rank = 200.0e6;
  /// Local staging copy for the async pipeline (FTI L1-style: each rank
  /// snapshots its protected state into node-local memory/SSD before the
  /// background drain to the PFS). Node-local, so it scales with ranks.
  double stage_bw_per_rank = 1.0e9;  ///< bytes/s/rank memcpy-class copy.
  double stage_latency = 0.05;       ///< Fixed per-stage seconds (barrier).
  /// L2 partner-copy tier (FTI L2): each rank ships its blob halves +
  /// parity to partner nodes over the interconnect. Node-local NIC-bound,
  /// so it scales with ranks like the staging copy but is slower.
  double partner_bw_per_rank = 1.25e9;  ///< bytes/s/rank interconnect copy.
  double partner_latency = 0.1;         ///< Fixed per-op seconds (exchange).
  /// Bytes moved per checkpoint byte at L2 (two halves + XOR parity = 1.5x).
  double partner_redundancy = 1.5;

  /// Seconds to write `bytes` to the PFS.
  [[nodiscard]] double write_seconds(double bytes) const noexcept {
    return pfs_latency + pfs_per_rank_overhead * ranks + bytes / pfs_write_bw;
  }
  /// Seconds to read `bytes` from the PFS.
  [[nodiscard]] double read_seconds(double bytes) const noexcept {
    return pfs_latency + pfs_per_rank_overhead * ranks + bytes / pfs_read_bw;
  }
  /// Seconds to lossy-compress `bytes` across all ranks in parallel.
  [[nodiscard]] double compress_seconds(double bytes) const noexcept {
    return bytes / (compress_bw_per_rank * ranks * parallel_efficiency);
  }
  /// Seconds to decompress `bytes` across all ranks in parallel.
  [[nodiscard]] double decompress_seconds(double bytes) const noexcept {
    return bytes / (decompress_bw_per_rank * ranks * parallel_efficiency);
  }
  /// Seconds for gzip-class lossless compression of `bytes` across ranks.
  [[nodiscard]] double lossless_compress_seconds(double bytes) const noexcept {
    return bytes / (lossless_compress_bw_per_rank * ranks * parallel_efficiency);
  }
  /// Seconds for gzip-class lossless decompression of `bytes` across ranks.
  [[nodiscard]] double lossless_decompress_seconds(double bytes) const noexcept {
    return bytes /
           (lossless_decompress_bw_per_rank * ranks * parallel_efficiency);
  }
  /// Seconds to stage `bytes` of raw state into the node-local double
  /// buffer — the only part of an async checkpoint that blocks the solver.
  [[nodiscard]] double stage_seconds(double bytes) const noexcept {
    return stage_latency +
           bytes / (stage_bw_per_rank * ranks * parallel_efficiency);
  }
  /// Seconds to write `bytes` to the node-local L1 tier (burst buffer /
  /// local SSD — same per-rank channel as the staging copy).
  [[nodiscard]] double local_write_seconds(double bytes) const noexcept {
    return stage_seconds(bytes);
  }
  /// Seconds to read `bytes` back from the node-local L1 tier.
  [[nodiscard]] double local_read_seconds(double bytes) const noexcept {
    return stage_seconds(bytes);
  }
  /// Seconds to place `bytes` on the L2 partner tier: the redundancy factor
  /// (halves + parity) rides the interconnect.
  [[nodiscard]] double partner_write_seconds(double bytes) const noexcept {
    return partner_latency + bytes * partner_redundancy /
                                 (partner_bw_per_rank * ranks *
                                  parallel_efficiency);
  }
  /// Seconds to gather `bytes` back from the partner tier on recovery (the
  /// surviving pieces total one blob's worth of traffic).
  [[nodiscard]] double partner_read_seconds(double bytes) const noexcept {
    return partner_latency +
           bytes / (partner_bw_per_rank * ranks * parallel_efficiency);
  }

  /// Model with the same per-rank characteristics at a different scale
  /// (PFS bandwidth is a shared resource and does not scale with ranks).
  [[nodiscard]] ClusterModel with_ranks(int r) const noexcept {
    ClusterModel m = *this;
    m.ranks = r;
    return m;
  }
};

}  // namespace lck

#pragma once
/// \file failure.hpp
/// \brief Fail-stop failure injection with exponentially distributed
///        inter-arrival times (paper §5.4: "the failure intervals follow an
///        exponential distribution"), or Weibull(shape, scale) arrivals for
///        bursty fleet scenarios (set_weibull; shape < 1 front-loads the
///        hazard the way real failure logs do). Failures may land during
///        computation, checkpointing, or recovery. For the multi-level
///        checkpoint hierarchy each failure optionally carries a severity
///        (process / node / partition / system) sampled from configurable
///        weights, so λ splits into per-severity rates λ_k = w_k·λ.

#include <array>

#include "common/rng.hpp"
#include "common/severity.hpp"
#include "common/types.hpp"

namespace lck {

/// Default severity mix for the tiered experiments: most failures are
/// process-level (software aborts dominate field data), node losses are the
/// common hardware case, partition/system outages are rare.
inline constexpr std::array<double, kSeverityCount> kDefaultSeverityWeights{
    0.55, 0.30, 0.10, 0.05};

class FailureInjector {
 public:
  /// `mtti_seconds` is the mean time to interruption (λ = 1/MTTI);
  /// pass enabled=false for failure-free baselines.
  FailureInjector(double mtti_seconds, std::uint64_t seed, bool enabled = true)
      : rng_(seed), mtti_(mtti_seconds), enabled_(enabled) {
    require(mtti_seconds > 0.0, "failure injector: MTTI must be positive");
    arm(0.0);
  }

  /// Virtual time of the next failure (infinity when disabled).
  [[nodiscard]] double next_failure_time() const noexcept { return next_; }

  /// Severity of the armed (next) failure. Always kProcess unless severity
  /// sampling was enabled with set_severity_weights().
  [[nodiscard]] FailureSeverity severity() const noexcept {
    return next_severity_;
  }

  /// True if the armed failure lands in the half-open window
  /// [start, start + duration). Consecutive windows [t, t+d1), [t+d1, d2), …
  /// tile the timeline, so every failure is delivered exactly once — in
  /// particular a failure armed at *exactly* `start`. That case is real:
  /// arm(now) computes `now + Exp(MTTI)`, and for large `now` a small draw
  /// rounds to exactly `now` in double precision. The previous strict
  /// `next_ > start` test dropped such a failure forever, since every later
  /// window also starts at or after it.
  [[nodiscard]] bool interrupts(double start, double duration) const noexcept {
    return enabled_ && next_ >= start && next_ < start + duration;
  }

  /// Re-arm after handling a failure (or to skip one): samples the next
  /// arrival at `now` + Exp(MTTI) — or `now` + Weibull(shape, scale) when
  /// the Weibull model is active — plus its severity when the severity
  /// model is active. Runs that never enable severities or Weibull draw
  /// exactly the same RNG sequence as before these extensions (bit-stable
  /// seeds).
  void arm(double now) {
    next_ = enabled_ ? now + sample_interarrival()
                     : std::numeric_limits<double>::infinity();
    next_severity_ = enabled_ && severities_enabled_
                         ? sample_severity()
                         : FailureSeverity::kProcess;
  }

  /// Switch inter-arrival sampling to Weibull(shape, scale). shape < 1
  /// gives the bursty heavy-early-mass arrivals real failure logs show;
  /// shape = 1 is exactly exponential with mean `scale` (same draws, same
  /// values — bit-stable against the default model when scale == MTTI).
  /// The currently armed failure is re-armed from `now` under the new
  /// distribution so the switch takes effect immediately.
  void set_weibull(double shape, double scale, double now = 0.0) {
    require(shape > 0.0, "failure injector: Weibull shape must be positive");
    require(scale > 0.0, "failure injector: Weibull scale must be positive");
    weibull_enabled_ = true;
    weibull_shape_ = shape;
    weibull_scale_ = scale;
    arm(now);
  }

  [[nodiscard]] bool weibull_enabled() const noexcept {
    return weibull_enabled_;
  }

  /// Enable per-failure severity sampling. Weights must be non-negative and
  /// sum to ~1; the severity of the *currently armed* failure is resampled.
  void set_severity_weights(const std::array<double, kSeverityCount>& w) {
    double sum = 0.0;
    for (const double x : w) {
      require(x >= 0.0, "failure injector: negative severity weight");
      sum += x;
    }
    require(sum > 0.999 && sum < 1.001,
            "failure injector: severity weights must sum to 1");
    weights_ = w;
    severities_enabled_ = true;
    if (enabled_) next_severity_ = sample_severity();
  }

  /// Pin the next failure to an exact virtual time (and severity). Used for
  /// trace replay and for tests that need boundary cases — e.g. a failure
  /// armed exactly at a window start — which random draws hit only with
  /// probability ~0.
  void set_next_failure(double t,
                        FailureSeverity sev = FailureSeverity::kProcess) noexcept {
    next_ = t;
    next_severity_ = sev;
  }

  [[nodiscard]] bool severities_enabled() const noexcept {
    return severities_enabled_;
  }
  [[nodiscard]] double mtti() const noexcept { return mtti_; }
  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

 private:
  [[nodiscard]] double sample_interarrival() noexcept {
    return weibull_enabled_ ? rng_.weibull(weibull_shape_, weibull_scale_)
                            : rng_.exponential(mtti_);
  }

  [[nodiscard]] FailureSeverity sample_severity() noexcept {
    const double u = rng_.uniform();
    double acc = 0.0;
    for (std::size_t k = 0; k < kSeverityCount; ++k) {
      acc += weights_[k];
      if (u < acc) return static_cast<FailureSeverity>(k);
    }
    return FailureSeverity::kSystem;  // rounding tail
  }

  Rng rng_;
  double mtti_;
  bool enabled_;
  bool severities_enabled_ = false;
  bool weibull_enabled_ = false;
  double weibull_shape_ = 1.0;
  double weibull_scale_ = 1.0;
  std::array<double, kSeverityCount> weights_ = kDefaultSeverityWeights;
  double next_ = 0.0;
  FailureSeverity next_severity_ = FailureSeverity::kProcess;
};

}  // namespace lck

#pragma once
/// \file failure.hpp
/// \brief Fail-stop failure injection with exponentially distributed
///        inter-arrival times (paper §5.4: "the failure intervals follow an
///        exponential distribution"). Failures may land during computation,
///        checkpointing, or recovery.

#include "common/rng.hpp"
#include "common/types.hpp"

namespace lck {

class FailureInjector {
 public:
  /// `mtti_seconds` is the mean time to interruption (λ = 1/MTTI);
  /// pass enabled=false for failure-free baselines.
  FailureInjector(double mtti_seconds, std::uint64_t seed, bool enabled = true)
      : rng_(seed), mtti_(mtti_seconds), enabled_(enabled) {
    require(mtti_seconds > 0.0, "failure injector: MTTI must be positive");
    arm(0.0);
  }

  /// Virtual time of the next failure (infinity when disabled).
  [[nodiscard]] double next_failure_time() const noexcept { return next_; }

  /// True if a failure strikes strictly inside (start, start+duration].
  [[nodiscard]] bool interrupts(double start, double duration) const noexcept {
    return enabled_ && next_ > start && next_ <= start + duration;
  }

  /// Re-arm after handling a failure (or to skip one): samples the next
  /// arrival at `now` + Exp(MTTI).
  void arm(double now) {
    next_ = enabled_ ? now + rng_.exponential(mtti_)
                     : std::numeric_limits<double>::infinity();
  }

  [[nodiscard]] double mtti() const noexcept { return mtti_; }
  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

 private:
  Rng rng_;
  double mtti_;
  bool enabled_;
  double next_ = 0.0;
};

}  // namespace lck

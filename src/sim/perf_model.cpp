#include "sim/perf_model.hpp"

#include <algorithm>
#include <cmath>

namespace lck {

double overhead_kernel(double t_ckp, double lambda) noexcept {
  return std::sqrt(2.0 * lambda * t_ckp) + lambda * t_ckp;
}

double young_interval_seconds(double t_ckp, double mtti_seconds) noexcept {
  return std::sqrt(2.0 * mtti_seconds * t_ckp);
}

double expected_overhead_ratio(double t_ckp, double lambda) noexcept {
  const double f = overhead_kernel(t_ckp, lambda);
  if (f >= 1.0) return std::numeric_limits<double>::infinity();
  return f / (1.0 - f);
}

double expected_overhead_ratio_lossy(double t_ckp_lossy, double lambda,
                                     double n_prime, double t_it) noexcept {
  const double f =
      overhead_kernel(t_ckp_lossy, lambda) + lambda * n_prime * t_it;
  if (f >= 1.0) return std::numeric_limits<double>::infinity();
  return f / (1.0 - f);
}

double theorem1_nprime_budget(double t_ckp_trad, double t_ckp_lossy,
                              double lambda, double t_it) noexcept {
  return (overhead_kernel(t_ckp_trad, lambda) -
          overhead_kernel(t_ckp_lossy, lambda)) /
         (lambda * t_it);
}

double theorem2_extra_iterations_at(double spectral_radius, double eb,
                                    double t) noexcept {
  // N′(t) = t − log_R(R^t + eb);  log_R(y) = ln(y)/ln(R), R in (0,1).
  const double r_t = std::pow(spectral_radius, t);
  const double log_r = std::log(spectral_radius);
  return t - std::log(r_t + eb) / log_r;
}

StationaryBound theorem2_expected_bound(double spectral_radius, double eb,
                                        double n_iters) noexcept {
  return {theorem2_extra_iterations_at(spectral_radius, eb,
                                       (n_iters + 1.0) / 2.0),
          theorem2_extra_iterations_at(spectral_radius, eb, n_iters)};
}

double theorem3_gmres_error_bound(double residual_norm, double rhs_norm,
                                  double theta) noexcept {
  if (rhs_norm <= 0.0) return 1e-12;
  const double eb = theta * residual_norm / rhs_norm;
  // Clamp to a sane range: never looser than 10% relative error, never
  // tighter than double precision allows.
  return std::clamp(eb, 1e-15, 0.1);
}

double expected_total_seconds(double n_iters, double t_it, double t_ckp,
                              double lambda, double n_prime) noexcept {
  const double f = overhead_kernel(t_ckp, lambda) + lambda * n_prime * t_it;
  if (f >= 1.0) return std::numeric_limits<double>::infinity();
  return n_iters * t_it / (1.0 - f);
}

double async_blocking_seconds(double t_stage, double t_drain,
                              double interval_seconds) noexcept {
  return t_stage + std::max(0.0, t_drain - interval_seconds);
}

double expected_overhead_ratio_async(double t_stage, double t_drain,
                                     double lambda,
                                     double interval_seconds) noexcept {
  const double t_blk =
      async_blocking_seconds(t_stage, t_drain, interval_seconds);
  const double f = overhead_kernel(t_blk, lambda) + lambda * t_drain;
  if (f >= 1.0) return std::numeric_limits<double>::infinity();
  return f / (1.0 - f);
}

double optimal_interval_seconds(double t_blocking, double lambda) noexcept {
  if (lambda <= 0.0 || t_blocking <= 0.0)
    return std::numeric_limits<double>::infinity();
  return std::sqrt(2.0 * t_blocking / lambda);
}

double async_optimal_interval_seconds(double t_stage, double t_drain,
                                      double lambda) noexcept {
  if (lambda <= 0.0) return std::numeric_limits<double>::infinity();
  t_stage = std::max(t_stage, 0.0);
  t_drain = std::max(t_drain, 0.0);
  if (t_stage <= 0.0 && t_drain <= 0.0)
    return std::numeric_limits<double>::infinity();
  const double no_backpressure = std::sqrt(2.0 * t_stage / lambda);
  if (no_backpressure >= t_drain) return no_backpressure;
  // Back-pressure branch: blocking = t_stage + t_drain − t, so the fixed
  // point solves λt²/2 + t − (t_stage + t_drain) = 0.
  const double t =
      (std::sqrt(1.0 + 2.0 * lambda * (t_stage + t_drain)) - 1.0) / lambda;
  return std::min(t, t_drain);
}

int promote_cadence(double base_interval_seconds,
                    double tier_interval_seconds) noexcept {
  constexpr int kMaxCadence = 1000000;
  if (!(base_interval_seconds > 0.0) || !std::isfinite(base_interval_seconds))
    return 1;
  if (!std::isfinite(tier_interval_seconds)) return kMaxCadence;
  const double k = std::round(tier_interval_seconds / base_interval_seconds);
  if (!(k >= 1.0)) return 1;
  if (k >= static_cast<double>(kMaxCadence)) return kMaxCadence;
  return static_cast<int>(k);
}

std::array<double, 3> severity_tier_lambdas(
    double lambda,
    const std::array<double, kSeverityCount>& severity_weights) noexcept {
  return {lambda * severity_weights[severity_index(FailureSeverity::kProcess)],
          lambda * severity_weights[severity_index(FailureSeverity::kNode)],
          lambda *
              (severity_weights[severity_index(FailureSeverity::kPartition)] +
               severity_weights[severity_index(FailureSeverity::kSystem)])};
}

std::vector<double> tiered_optimal_intervals(
    std::span<const double> ckpt_costs, std::span<const double> lambdas) {
  require(ckpt_costs.size() == lambdas.size(),
          "tiered intervals: costs and lambdas must have equal length");
  std::vector<double> intervals(ckpt_costs.size());
  for (std::size_t k = 0; k < ckpt_costs.size(); ++k)
    intervals[k] = lambdas[k] > 0.0
                       ? std::sqrt(2.0 * ckpt_costs[k] / lambdas[k])
                       : std::numeric_limits<double>::infinity();
  return intervals;
}

double expected_overhead_ratio_tiered(std::span<const double> ckpt_costs,
                                      std::span<const double> intervals,
                                      std::span<const double> lambdas,
                                      std::span<const double> recovery_costs) {
  require(ckpt_costs.size() == intervals.size() &&
              ckpt_costs.size() == lambdas.size() &&
              ckpt_costs.size() == recovery_costs.size(),
          "tiered overhead: all spans must have equal length");
  double f = 0.0;
  for (std::size_t k = 0; k < ckpt_costs.size(); ++k) {
    if (std::isfinite(intervals[k]) && intervals[k] > 0.0)
      f += ckpt_costs[k] / intervals[k] + lambdas[k] * intervals[k] / 2.0;
    f += lambdas[k] * recovery_costs[k];
  }
  if (f >= 1.0) return std::numeric_limits<double>::infinity();
  return f / (1.0 - f);
}

}  // namespace lck

#pragma once
/// \file perf_model.hpp
/// \brief The paper's analytic checkpoint/restart performance model:
///        Young's optimal interval (Eq. 1), expected fault-tolerance
///        overhead (Eqs. 4–5 traditional, Eq. 8 lossy), Theorem 1's
///        extra-iteration budget, and Theorem 2's stationary-method bound.

#include <array>
#include <limits>
#include <span>
#include <vector>

#include "common/severity.hpp"
#include "common/types.hpp"

namespace lck {

/// f(t, λ) = sqrt(2λt) + λt — the overhead kernel used throughout §4.
[[nodiscard]] double overhead_kernel(double t_ckp, double lambda) noexcept;

/// Young's formula (Eq. 1): optimal wall-clock interval between checkpoints,
/// k·Tit = sqrt(2·Tf·Tckp).
[[nodiscard]] double young_interval_seconds(double t_ckp,
                                            double mtti_seconds) noexcept;

/// Eq. (5): expected fault-tolerance overhead as a fraction of productive
/// time, for traditional checkpointing with Trc ≈ Tckp.
[[nodiscard]] double expected_overhead_ratio(double t_ckp,
                                             double lambda) noexcept;

/// Eq. (8): the same ratio for lossy checkpointing with checkpoint time
/// t_ckp_lossy, N′ expected extra iterations per recovery, and iteration
/// time t_it.
[[nodiscard]] double expected_overhead_ratio_lossy(double t_ckp_lossy,
                                                   double lambda,
                                                   double n_prime,
                                                   double t_it) noexcept;

/// Theorem 1 (Eq. 9): maximum N′ for which lossy checkpointing still beats
/// traditional checkpointing:
///   N′ ≤ (f(T_trad, λ) − f(T_lossy, λ)) / (λ·Tit).
[[nodiscard]] double theorem1_nprime_budget(double t_ckp_trad,
                                            double t_ckp_lossy, double lambda,
                                            double t_it) noexcept;

/// Theorem 2: extra-iteration bound for a stationary method restarted at
/// iteration t from a lossy checkpoint with relative error bound eb:
///   N′(t) = t − log_R(R^t + eb).
[[nodiscard]] double theorem2_extra_iterations_at(double spectral_radius,
                                                  double eb, double t) noexcept;

/// Theorem 2's interval for the expected bound over a uniformly random
/// failure iteration: [N′((N+1)/2), N′(N)].
struct StationaryBound {
  double lo = 0.0;
  double hi = 0.0;
};
[[nodiscard]] StationaryBound theorem2_expected_bound(double spectral_radius,
                                                      double eb,
                                                      double n_iters) noexcept;

/// Theorem 3 (GMRES): adaptive pointwise-relative error bound
/// eb = θ·||r(t)||/||b|| that keeps the post-recovery residual at the same
/// order as the pre-failure residual (⇒ expected N′ = 0).
[[nodiscard]] double theorem3_gmres_error_bound(double residual_norm,
                                                double rhs_norm,
                                                double theta = 1.0) noexcept;

/// Eq. (2)/(6): expected total execution time given N productive iterations.
/// Returns infinity if the overhead terms reach 1 (system thrashing).
[[nodiscard]] double expected_total_seconds(double n_iters, double t_it,
                                            double t_ckp, double lambda,
                                            double n_prime = 0.0) noexcept;

// ----- overlap-aware model for the staged (async) checkpoint pipeline ------

/// Solver-blocking seconds per checkpoint under the staged pipeline: the
/// staging copy always blocks, and when the background drain (compression +
/// PFS write) takes longer than the checkpoint interval, the excess
/// back-pressures the next stage() (FTI semantics).
[[nodiscard]] double async_blocking_seconds(double t_stage, double t_drain,
                                            double interval_seconds) noexcept;

/// Expected fault-tolerance overhead ratio for the staged pipeline: the
/// Eq. 5 kernel evaluated on the *blocking* cost, plus λ·t_drain rollback
/// exposure — a failure inside the drain window aborts the pending version
/// and recovers from the previous committed checkpoint, losing up to one
/// extra interval of work.
[[nodiscard]] double expected_overhead_ratio_async(
    double t_stage, double t_drain, double lambda,
    double interval_seconds) noexcept;

// ----- inverse helpers for checkpoint-pacing policies -----------------------

/// Young's formula inverted onto the failure *rate*: the optimal interval
/// for a per-checkpoint blocking cost c under rate λ is t* = sqrt(2c/λ).
/// Returns +inf when λ ≤ 0 or c ≤ 0 (without failures, or with free
/// checkpoints, the first-order optimum diverges).
[[nodiscard]] double optimal_interval_seconds(double t_blocking,
                                              double lambda) noexcept;

/// Self-consistent optimal interval for the staged pipeline, where the
/// blocking cost itself depends on the interval through back-pressure
/// (async_blocking_seconds): solves the fixed point
///   t = sqrt(2·(t_stage + max(0, t_drain − t)) / λ).
/// When the Young interval of the staging cost alone already exceeds the
/// drain there is no back-pressure and that interval is returned; otherwise
/// the quadratic back-pressure branch applies, capped at t_drain.
[[nodiscard]] double async_optimal_interval_seconds(double t_stage,
                                                    double t_drain,
                                                    double lambda) noexcept;

/// Effective promotion cadence for a tier whose own optimal interval is
/// `tier_interval_seconds` when L1 checkpoints land every
/// `base_interval_seconds`: round(tier/base) clamped to [1, 1e6] (an
/// infinite tier interval — λ_k = 0 — maps to the cap: practically never).
[[nodiscard]] int promote_cadence(double base_interval_seconds,
                                  double tier_interval_seconds) noexcept;

// ----- multi-level (tiered) checkpoint hierarchy model ----------------------

/// Split the total failure rate λ = 1/MTTI into per-recovery-tier rates for
/// the canonical 3-level hierarchy: process failures recover from L1, node
/// failures from L2, partition and system failures both from L3 (the PFS
/// survives everything). λ_k = λ·w_k with the partition+system weights
/// merged into the last entry.
[[nodiscard]] std::array<double, 3> severity_tier_lambdas(
    double lambda,
    const std::array<double, kSeverityCount>& severity_weights) noexcept;

/// Per-tier Young-style optimal intervals for a multi-level scheme: level k
/// pays cost c_k per checkpoint reaching it and covers failures arriving at
/// rate λ_k, so the first-order optimum of c_k/t + λ_k·t/2 is
/// t_k* = sqrt(2·c_k / λ_k). Entries with λ_k = 0 get infinity (never
/// promote on a failure class that cannot happen).
[[nodiscard]] std::vector<double> tiered_optimal_intervals(
    std::span<const double> ckpt_costs, std::span<const double> lambdas);

/// First-order expected fault-tolerance overhead ratio of a tiered scheme:
///   f = Σ_k [ c_k/t_k + λ_k·(t_k/2 + r_k) ]
/// (per-tier checkpoint cost amortized over its interval, plus each failure
/// class's expected rework of half an interval and its tier's recovery
/// cost), returned as f/(1−f) like Eqs. 5/8; infinity once f ≥ 1.
[[nodiscard]] double expected_overhead_ratio_tiered(
    std::span<const double> ckpt_costs, std::span<const double> intervals,
    std::span<const double> lambdas, std::span<const double> recovery_costs);

}  // namespace lck

#pragma once
/// \file lck.hpp
/// \brief The stable public API surface of lckpt in one include.
///
/// Applications embedding the library should include this header (and
/// nothing under src/ directly); everything an application needs to build,
/// protect and run a resilient solve is reachable from here:
///
///  - problem setup:   CsrMatrix, generators (poisson3d, kkt), Matrix
///                     Market I/O, make_solver / make_preconditioner
///  - checkpointing:   CheckpointManager (Protect/Checkpoint/Recover),
///                     stores (memory, disk, tiered, dedup), make_compressor,
///                     chunked delta encoding (DeltaConfig / set_delta),
///                     streaming framed serialization (StreamingConfig /
///                     set_streaming)
///  - pacing:          CheckpointPolicy + make_policy ("fixed" | "young" |
///                     "adaptive"), PolicyContext
///  - execution:       ResilientRunner + ResilienceConfig (nested
///                     CompressionConfig / FailureConfig / TieredConfig /
///                     PolicyConfig sub-structs)
///  - analysis:        the paper's perf_model formulas and the calibrated
///                     ClusterModel / experiment builders
///  - observability:   ObservabilityConfig (ResilienceConfig::obs),
///                     MetricsRegistry / MetricsSnapshot (JSON + Prometheus
///                     text), TraceRecorder + write_chrome_trace (Perfetto)
///  - multi-tenancy:   svc::CheckpointService + JobHandle (shared dedup L3,
///                     per-job namespaces, admission control, fair shared
///                     promotion pool)
///
/// Headers outside this set (individual solver classes, compressor
/// internals, tier stores) remain usable but are implementation surface and
/// may move between releases.

#include "ckpt/checkpoint_manager.hpp"
#include "ckpt/checkpoint_store.hpp"
#include "ckpt/chunk/chunk_codec.hpp"
#include "ckpt/chunk/dedup_store.hpp"
#include "ckpt/frame_stream.hpp"
#include "common/severity.hpp"
#include "common/timer.hpp"
#include "common/types.hpp"
#include "compress/compressor.hpp"
#include "core/ckpt_policy.hpp"
#include "core/experiment.hpp"
#include "core/resilient_runner.hpp"
#include "obs/metrics.hpp"
#include "obs/observability.hpp"
#include "obs/trace.hpp"
#include "sim/cluster_model.hpp"
#include "sim/failure.hpp"
#include "sim/perf_model.hpp"
#include "solvers/factory.hpp"
#include "sparse/csr.hpp"
#include "sparse/gen/kkt.hpp"
#include "sparse/gen/poisson3d.hpp"
#include "sparse/matrix_market.hpp"
#include "svc/checkpoint_service.hpp"

#pragma once
/// \file admission.hpp
/// \brief Service-level admission control: a token budget over outstanding
///        L3 write bytes and write count, shared by every job of the
///        multi-tenant CheckpointService.
///
/// Each shared-tier write first acquires a Grant covering its byte size;
/// the grant is released when the write completes (RAII). When the fleet's
/// aggregate demand exceeds the budget, acquirers queue in strict FIFO
/// ticket order — a large request at the head reserves the budget as it
/// drains, so small requests arriving behind it cannot starve it forever
/// (no "bypass while big waits" livelock). A request larger than the whole
/// budget is clamped to the budget rather than rejected: it admits alone,
/// which is the only meaningful way to run an oversized write.
///
/// This is back-pressure, not scheduling: fairness *among* queued
/// promotions is the PromotionPool's deficit-round-robin; admission only
/// bounds the total bytes simultaneously in flight against the shared L3.

#include <condition_variable>
#include <cstddef>
#include <mutex>

namespace lck::svc {

class AdmissionController {
 public:
  /// `byte_budget` bounds the summed sizes of admitted writes;
  /// `max_inflight` bounds their count. Both must be >= 1.
  AdmissionController(std::size_t byte_budget, std::size_t max_inflight);

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// One admitted write's reservation. Move-only; releases on destruction.
  class Grant {
   public:
    Grant() = default;
    Grant(Grant&& other) noexcept { swap(other); }
    Grant& operator=(Grant&& other) noexcept {
      if (this != &other) {
        release();
        swap(other);
      }
      return *this;
    }
    ~Grant() { release(); }

    /// True if the acquire had to queue (budget or inflight exhausted, or
    /// an earlier ticket still waiting) — the service's admission_waits.
    [[nodiscard]] bool waited() const noexcept { return waited_; }
    /// Seconds the acquire spent blocked (0 when it did not wait).
    [[nodiscard]] double wait_seconds() const noexcept {
      return wait_seconds_;
    }
    [[nodiscard]] std::size_t bytes() const noexcept { return bytes_; }

    /// Give the reservation back early (idempotent).
    void release() noexcept;

   private:
    friend class AdmissionController;
    Grant(AdmissionController* ctl, std::size_t bytes, bool waited,
          double wait_seconds) noexcept
        : ctl_(ctl),
          bytes_(bytes),
          waited_(waited),
          wait_seconds_(wait_seconds) {}
    void swap(Grant& other) noexcept {
      std::swap(ctl_, other.ctl_);
      std::swap(bytes_, other.bytes_);
      std::swap(waited_, other.waited_);
      std::swap(wait_seconds_, other.wait_seconds_);
    }

    AdmissionController* ctl_ = nullptr;
    std::size_t bytes_ = 0;
    bool waited_ = false;
    double wait_seconds_ = 0.0;
  };

  /// Block until `bytes` (clamped to the budget) fit under both limits and
  /// every earlier acquire has been admitted, then reserve. Never fails.
  [[nodiscard]] Grant acquire(std::size_t bytes);

  // ----- introspection (monotonic counters + instantaneous state) -----------
  [[nodiscard]] std::size_t bytes_in_use() const;
  [[nodiscard]] std::size_t inflight() const;
  /// Acquires that found room immediately + acquires that had to queue.
  [[nodiscard]] std::size_t grants() const;
  [[nodiscard]] std::size_t waits() const;
  [[nodiscard]] std::size_t byte_budget() const noexcept {
    return byte_budget_;
  }
  [[nodiscard]] std::size_t max_inflight() const noexcept {
    return max_inflight_;
  }

 private:
  void release(std::size_t bytes) noexcept;

  const std::size_t byte_budget_;
  const std::size_t max_inflight_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::size_t bytes_in_use_ = 0;
  std::size_t inflight_ = 0;
  std::size_t next_ticket_ = 0;  ///< Issued to each acquire, FIFO order.
  std::size_t serving_ = 0;      ///< Lowest ticket not yet admitted.
  std::size_t grants_ = 0;
  std::size_t waits_ = 0;
};

}  // namespace lck::svc

#include "svc/checkpoint_service.hpp"

#include <limits>
#include <utility>
#include <vector>

#include "ckpt/checkpoint_store.hpp"
#include "ckpt/tier/partner_store.hpp"
#include "ckpt/tier/tiered_store.hpp"
#include "common/timer.hpp"
#include "common/types.hpp"

namespace lck::svc {

// ----- configs --------------------------------------------------------------

void ServiceConfig::validate() const {
  std::string violations;
  const auto violation = [&](const char* msg) {
    if (!violations.empty()) violations += "; ";
    violations += msg;
  };
  if (max_jobs < 1) violation("svc.max_jobs must be >= 1");
  if (namespace_stride < 1) violation("svc.namespace_stride must be >= 1");
  if (admission_bytes < 1) violation("svc.admission_bytes must be >= 1");
  if (admission_inflight < 1) violation("svc.admission_inflight must be >= 1");
  if (promo_workers < 1) violation("svc.promo_workers must be >= 1");
  if (promo_quantum_bytes < 1)
    violation("svc.promo_quantum_bytes must be >= 1");
  if (!violations.empty())
    throw config_error("checkpoint service config: " + violations);
}

// ----- per-job state --------------------------------------------------------

/// Registration record plus the job's cumulative shared-tier counters.
/// Held by shared_ptr: NamespaceStores made for the job keep it alive even
/// if (misused) past close, and map erasure cannot dangle a reader.
struct CheckpointService::JobState {
  int id = -1;
  JobConfig cfg;
  std::string name;

  mutable std::mutex mu;  ///< Guards the counters below.
  JobStats stats;         ///< stats.name duplicated for cheap copy-out.

  [[nodiscard]] JobStats snapshot() const {
    const std::lock_guard<std::mutex> lock(mu);
    return stats;
  }
};

// ----- namespace view over the shared L3 ------------------------------------

/// Job j's L3 level: translates its versions v into shared-store keys
/// j·stride + v, admission-gates every write against the service budget,
/// and attributes dedup outcomes to the job. Plugs into a per-job
/// TieredCheckpointStore as an ordinary CheckpointStore, so the tier logic
/// (retention, promotion, severity) is reused unchanged — and can only ever
/// name keys inside [lo, hi), which is the namespace-isolation guarantee.
class CheckpointService::NamespaceStore final : public CheckpointStore {
 public:
  NamespaceStore(CheckpointService* svc, std::shared_ptr<JobState> state)
      : svc_(svc),
        state_(std::move(state)),
        lo_(state_->id * svc_->cfg_.namespace_stride),
        hi_(lo_ + svc_->cfg_.namespace_stride) {}

  void write(int version, std::span<const byte_t> data) override {
    auto grant = svc_->admission_.acquire(data.size());
    const WallTimer timer;
    const DedupWriteStats w = svc_->l3_->write_counted(key(version), data);
    const double write_seconds = timer.seconds();
    grant.release();

    {
      const std::lock_guard<std::mutex> lock(state_->mu);
      JobStats& s = state_->stats;
      ++s.l3_writes;
      s.dedup_hits += w.hits;
      s.dedup_bytes_saved += w.bytes_saved;
      s.chunks_written += w.chunks;
      s.logical_bytes += data.size();
      s.write_seconds += write_seconds;
      if (grant.waited()) {
        // grant released above, but its wait fields survive release()
        ++s.admission_waits;
        s.admission_wait_seconds += grant.wait_seconds();
      }
    }
    obs::MetricsRegistry& m = svc_->metrics_;
    const obs::LabelSet job{{"job", state_->name}};
    m.add("svc.l3_writes", 1.0, job);
    m.observe("svc.l3_write_seconds", write_seconds, job);
    m.observe("svc.l3_write_bytes", static_cast<double>(data.size()), job);
    m.add("svc.dedup_hits", static_cast<double>(w.hits), job);
    m.add("svc.dedup_bytes_saved", static_cast<double>(w.bytes_saved), job);
    if (grant.waited()) {
      m.add("svc.admission_waits", 1.0);
      m.observe("svc.admission_wait_seconds", grant.wait_seconds(), job);
    }
    svc_->refresh_gauges();
  }

  [[nodiscard]] std::vector<byte_t> read(int version) const override {
    return svc_->l3_->read(key(version));
  }

  [[nodiscard]] bool exists(int version) const override {
    return svc_->l3_->exists(key(version));
  }

  void remove(int version) override { svc_->l3_->remove(key(version)); }

  [[nodiscard]] int latest_version() const override {
    // Enumerate only this namespace's key range: another job's newer
    // version must never leak into this job's recovery decision.
    const std::vector<int> mine = svc_->l3_->versions_in(lo_, hi_);
    return mine.empty() ? -1 : mine.back() - lo_;
  }

  /// The namespace level records into the service's registry above; a
  /// tenant-side sink (a runner's private registry) must not rebind the
  /// *shared* store's observability, so the forward stops here.
  void set_observability(obs::Sink /*sink*/) override {}

 private:
  [[nodiscard]] int key(int version) const {
    require(version >= 0 && version < hi_ - lo_,
            "namespace store: version outside the job's namespace stride");
    return lo_ + version;
  }

  CheckpointService* svc_;
  std::shared_ptr<JobState> state_;
  const int lo_;
  const int hi_;
};

// ----- service --------------------------------------------------------------

CheckpointService::CheckpointService(ServiceConfig cfg)
    : cfg_((cfg.validate(), std::move(cfg))),
      l3_(std::make_unique<DedupChunkStore>(cfg_.l3_dir)),
      admission_(cfg_.admission_bytes, cfg_.admission_inflight),
      pool_(cfg_.promo_workers, cfg_.promo_quantum_bytes) {
  l3_->set_observability(obs::Sink{&metrics_, nullptr});
  refresh_gauges();
}

CheckpointService::~CheckpointService() {
  // Open handles (or stores) outliving the service would dangle; surface
  // the scope bug loudly instead of crashing later.
  const std::lock_guard<std::mutex> lock(mu_);
  if (!jobs_.empty())
    std::terminate();  // jobs must close before the service dies
}

JobHandle CheckpointService::open_job(JobConfig cfg) {
  require(cfg.retention >= 1, "svc job: retention must be >= 1");
  require(cfg.l2_promote_every >= 1 && cfg.l3_promote_every >= 1,
          "svc job: promote_every must be >= 1");
  require(cfg.max_inflight_promotions >= 1,
          "svc job: promotion bound must be >= 1");

  std::unique_lock<std::mutex> lock(mu_);
  jobs_cv_.wait(lock, [&] {
    return static_cast<int>(jobs_.size()) < cfg_.max_jobs;
  });
  const int id = next_job_id_++;
  // The namespace [id·stride, (id+1)·stride) must fit in int keys.
  require(id < std::numeric_limits<int>::max() / cfg_.namespace_stride,
          "svc: job namespace exceeds the shared store's key space");

  auto state = std::make_shared<JobState>();
  state->id = id;
  state->cfg = std::move(cfg);
  state->name = state->cfg.name.empty() ? "job" + std::to_string(id)
                                        : state->cfg.name;
  state->stats.name = state->name;
  jobs_.emplace(id, std::move(state));
  lock.unlock();

  refresh_gauges();
  return JobHandle(this, id);
}

void CheckpointService::close_job(int job_id) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    jobs_.erase(job_id);
  }
  jobs_cv_.notify_all();
  refresh_gauges();
}

std::shared_ptr<CheckpointService::JobState> CheckpointService::state_of(
    int job_id) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = jobs_.find(job_id);
  if (it == jobs_.end())
    throw config_error("svc: unknown or closed job id " +
                       std::to_string(job_id));
  return it->second;
}

std::unique_ptr<CheckpointStore> CheckpointService::make_store_for(
    int job_id) {
  const std::shared_ptr<JobState> state = state_of(job_id);
  const JobConfig& jc = state->cfg;

  std::vector<TieredCheckpointStore::Level> levels;
  levels.push_back(
      {TierSpec{"L1-local", FailureSeverity::kProcess, jc.retention, 1},
       std::make_unique<MemoryStore>()});
  levels.push_back({TierSpec{"L2-partner", FailureSeverity::kNode,
                             jc.retention, jc.l2_promote_every},
                    std::make_unique<PartnerStore>()});
  levels.push_back({TierSpec{"L3-pfs", FailureSeverity::kSystem, jc.retention,
                             jc.l3_promote_every},
                    std::make_unique<NamespaceStore>(this, state)});
  auto store = std::make_unique<TieredCheckpointStore>(
      std::move(levels), jc.background_promotions);
  if (jc.background_promotions) {
    // All jobs' promotions ride the one shared pool, keyed by job id for
    // deficit-round-robin fairness; the per-store bound still back-
    // pressures this job's own commits.
    store->set_promotion_executor(&pool_, state->id);
    store->set_max_inflight_promotions(jc.max_inflight_promotions);
  }
  return store;
}

JobStats CheckpointService::job_stats(int job_id) const {
  return state_of(job_id)->snapshot();
}

int CheckpointService::jobs_active() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(jobs_.size());
}

int CheckpointService::jobs_opened() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return next_job_id_;
}

void CheckpointService::refresh_gauges() {
  metrics_.set_gauge("svc.jobs_active", static_cast<double>(jobs_active()));
  metrics_.set_gauge("svc.l3_logical_bytes",
                     static_cast<double>(l3_->logical_bytes()));
  metrics_.set_gauge("svc.l3_physical_bytes",
                     static_cast<double>(l3_->physical_bytes()));
}

// ----- handle ---------------------------------------------------------------

std::string JobHandle::name() const {
  require(open(), "job handle: closed");
  return svc_->state_of(id_)->name;
}

std::unique_ptr<CheckpointStore> JobHandle::make_store() const {
  require(open(), "job handle: closed");
  return svc_->make_store_for(id_);
}

std::function<std::unique_ptr<CheckpointStore>()> JobHandle::store_factory()
    const {
  require(open(), "job handle: closed");
  CheckpointService* svc = svc_;
  const int id = id_;
  return [svc, id] { return svc->make_store_for(id); };
}

JobStats JobHandle::stats() const {
  require(open(), "job handle: closed");
  return svc_->job_stats(id_);
}

void JobHandle::close() {
  if (svc_ != nullptr) {
    svc_->close_job(id_);
    svc_ = nullptr;
    id_ = -1;
  }
}

}  // namespace lck::svc

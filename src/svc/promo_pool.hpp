#pragma once
/// \file promo_pool.hpp
/// \brief Shared promotion worker pool with byte-weighted deficit-round-
///        robin fairness across jobs — the PromotionExecutor the
///        CheckpointService installs into every tenant's tiered store.
///
/// One pool replaces N per-store promotion threads: each tenant submits
/// under its own fairness class (fair_key = job id), and workers pick the
/// next task by deficit round robin over the classes [Shreedhar &
/// Varghese]: every visit to a non-empty class tops its deficit up by one
/// quantum, and the class's head task runs once the accumulated deficit
/// covers its byte weight. A job checkpointing 100 MB blobs therefore
/// cannot starve a job checkpointing 1 MB blobs — between two heavy tasks
/// the light class accumulates enough deficit to run many of its own.
///
/// Tasks are opaque closures; the pool guarantees every accepted task runs
/// exactly once, including during shutdown (tiered stores block in
/// drain_promotions() until their submitted tasks complete — dropping one
/// would deadlock the store's destructor).

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <limits>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "ckpt/tier/tiered_store.hpp"

namespace lck::svc {

class PromotionPool final : public PromotionExecutor {
 public:
  /// `workers` threads drain the queues; `quantum_bytes` is the DRR
  /// increment per class visit (≈ the typical blob size keeps one task per
  /// visit; the scheduler is fair for any positive value).
  explicit PromotionPool(int workers = 2,
                         std::size_t quantum_bytes = std::size_t{1} << 20);
  ~PromotionPool() override;

  PromotionPool(const PromotionPool&) = delete;
  PromotionPool& operator=(const PromotionPool&) = delete;

  /// Enqueue `task` under fairness class `fair_key`. Weight 0 is treated
  /// as 1 byte so a zero-cost task still consumes schedule share.
  void submit(int fair_key, std::size_t weight_bytes,
              std::function<void()> task) override;

  /// Tasks executed to completion (cumulative).
  [[nodiscard]] std::size_t executed() const;
  /// Tasks queued but not yet started.
  [[nodiscard]] std::size_t pending() const;
  [[nodiscard]] int workers() const noexcept {
    return static_cast<int>(threads_.size());
  }

 private:
  struct Task {
    std::size_t weight = 1;
    std::function<void()> run;
  };
  /// One tenant's FIFO plus its DRR deficit. A drained class is erased,
  /// which also resets its deficit — an idle job cannot bank credit.
  struct ClassQueue {
    std::deque<Task> q;
    std::size_t deficit = 0;
  };

  void worker_loop();
  /// Pick the next runnable task under mu_, or return false when the
  /// queues are empty. Advances cursor_ and deficits per DRR.
  [[nodiscard]] bool take_next_locked(Task& out);

  const std::size_t quantum_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<int, ClassQueue> classes_;
  std::size_t queued_ = 0;    ///< Tasks across all classes.
  std::size_t executed_ = 0;  ///< Completed tasks (cumulative).
  int cursor_ = std::numeric_limits<int>::min();  ///< Last served class.
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace lck::svc

#include "svc/admission.hpp"

#include <algorithm>

#include "common/timer.hpp"
#include "common/types.hpp"

namespace lck::svc {

AdmissionController::AdmissionController(std::size_t byte_budget,
                                         std::size_t max_inflight)
    : byte_budget_(byte_budget), max_inflight_(max_inflight) {
  require(byte_budget >= 1, "admission: byte budget must be >= 1");
  require(max_inflight >= 1, "admission: inflight bound must be >= 1");
}

AdmissionController::Grant AdmissionController::acquire(std::size_t bytes) {
  const std::size_t clamped = std::min(bytes, byte_budget_);
  std::unique_lock<std::mutex> lock(mu_);
  const std::size_t ticket = next_ticket_++;
  const auto admissible = [&] {
    return ticket == serving_ && inflight_ < max_inflight_ &&
           bytes_in_use_ + clamped <= byte_budget_;
  };
  bool waited = false;
  double wait_seconds = 0.0;
  if (!admissible()) {
    waited = true;
    ++waits_;
    const WallTimer timer;
    cv_.wait(lock, admissible);
    wait_seconds = timer.seconds();
  }
  bytes_in_use_ += clamped;
  ++inflight_;
  ++serving_;
  ++grants_;
  lock.unlock();
  // The next ticket may already fit alongside this one.
  cv_.notify_all();
  return Grant(this, clamped, waited, wait_seconds);
}

void AdmissionController::release(std::size_t bytes) noexcept {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    bytes_in_use_ -= bytes;
    --inflight_;
  }
  cv_.notify_all();
}

void AdmissionController::Grant::release() noexcept {
  if (ctl_ != nullptr) {
    ctl_->release(bytes_);
    ctl_ = nullptr;
    bytes_ = 0;
  }
}

std::size_t AdmissionController::bytes_in_use() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return bytes_in_use_;
}

std::size_t AdmissionController::inflight() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return inflight_;
}

std::size_t AdmissionController::grants() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return grants_;
}

std::size_t AdmissionController::waits() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return waits_;
}

}  // namespace lck::svc

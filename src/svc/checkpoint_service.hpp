#pragma once
/// \file checkpoint_service.hpp
/// \brief Multi-tenant checkpoint service: one shared content-addressed L3
///        (DedupChunkStore) and one shared promotion worker pool serving N
///        concurrent solver jobs, each isolated in its own namespace.
///
///   job 0 ── L1 Memory ─ L2 Partner ─┐                 ┌ admission tokens
///   job 1 ── L1 Memory ─ L2 Partner ─┼── NamespaceStore┼── shared L3
///   ...                              │   (key = id·S+v)│   DedupChunkStore
///   job N ── L1 Memory ─ L2 Partner ─┘                 └ shared PromotionPool
///
/// Every job gets its own TieredCheckpointStore (private L1/L2, per-job
/// retention and promotion cadence) whose L3 level is a namespace view over
/// the one shared DedupChunkStore: job j's version v is stored under key
/// j·stride + v, so prune/invalidate in one namespace can never touch
/// another job's versions, while identical chunk payloads across jobs —
/// the common static problem state — are stored once (cross-job dedup).
///
/// Two service-wide mechanisms arbitrate the shared tier:
///  - admission control (svc::AdmissionController): every namespace write
///    first reserves its byte size against a global budget, so the fleet's
///    aggregate in-flight L3 bytes are bounded (back-pressure, not failure);
///  - fairness (svc::PromotionPool): all jobs' background promotions run on
///    one deficit-round-robin pool keyed by job id, so a heavy writer
///    cannot starve a light one and N tenants do not spawn N threads.
///
/// The service owns an always-on MetricsRegistry: global gauges
/// (svc.jobs_active, svc.l3_logical_bytes, svc.l3_physical_bytes), global
/// counters (svc.admission_waits), and per-job labeled series
/// (svc.l3_writes{job=...}, svc.l3_write_seconds{job=...},
/// svc.dedup_hits{job=...}) — a scheduler can scrape
/// metrics().to_prometheus() directly.
///
/// Lifetime discipline: stores made by a JobHandle borrow the service's
/// shared L3 and pool, so they must be destroyed before the handle closes,
/// and every handle must close before the service dies (the destructor
/// checks). The handles plug into ResilientRunner unchanged via
/// ResilienceConfig::store_factory.

#include <cstddef>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "ckpt/chunk/dedup_store.hpp"
#include "obs/metrics.hpp"
#include "svc/admission.hpp"
#include "svc/promo_pool.hpp"

namespace lck::svc {

/// Service-wide knobs, validated at construction.
struct ServiceConfig {
  /// Shared L3 directory ("" = in-memory; a directory persists chunks and
  /// lets a restarted service dedup against the previous run).
  std::string l3_dir = "";
  /// Concurrently open jobs; open_job() past this blocks until one closes.
  int max_jobs = 64;
  /// Namespace width: job j owns shared-store keys [j·stride, (j+1)·stride).
  /// Also the per-job version ceiling. Must leave (max stride·jobs) ≤
  /// INT_MAX — checked as jobs open.
  int namespace_stride = 1 << 16;
  /// Admission budget: max aggregate bytes of in-flight shared-L3 writes.
  std::size_t admission_bytes = std::size_t{256} << 20;
  /// Admission bound on the count of in-flight shared-L3 writes.
  std::size_t admission_inflight = 64;
  /// Shared promotion pool width and DRR quantum.
  int promo_workers = 2;
  std::size_t promo_quantum_bytes = std::size_t{1} << 20;

  /// Throws config_error naming every violated constraint.
  void validate() const;
};

/// Per-job knobs for the store stack a JobHandle builds.
struct JobConfig {
  /// Metrics label; "" derives "job<id>".
  std::string name = "";
  /// Versions retained per tier (the manager-level retention should be
  /// parked when running under a tiered stack).
  int retention = 2;
  int l2_promote_every = 1;
  int l3_promote_every = 1;
  /// true: background promotions ride the service's shared pool. false:
  /// the caller drives promote_now() explicitly (virtual-time runner mode).
  bool background_promotions = true;
  /// Back-pressure bound on this job's queued background promotions.
  std::size_t max_inflight_promotions = 16;
};

/// What one job has done to the shared tier (monotonic, per job).
struct JobStats {
  std::string name;
  std::uint64_t l3_writes = 0;
  std::uint64_t dedup_hits = 0;         ///< Chunk hits this job's writes made.
  std::uint64_t dedup_bytes_saved = 0;  ///< Bytes those hits avoided.
  std::uint64_t chunks_written = 0;     ///< Chunk parts across its writes.
  std::uint64_t logical_bytes = 0;      ///< Sum of its written blob sizes.
  std::uint64_t admission_waits = 0;    ///< Writes that had to queue.
  double admission_wait_seconds = 0.0;  ///< Total time queued.
  double write_seconds = 0.0;           ///< Total shared-L3 write time.
};

class CheckpointService;

/// One tenant's registration. Move-only RAII: closing (or destroying) the
/// handle releases the job slot and its namespace bookkeeping — after all
/// stores made from it are gone.
class JobHandle {
 public:
  JobHandle() = default;
  JobHandle(JobHandle&& other) noexcept { swap(other); }
  JobHandle& operator=(JobHandle&& other) noexcept {
    if (this != &other) {
      close();
      swap(other);
    }
    return *this;
  }
  ~JobHandle() { close(); }

  JobHandle(const JobHandle&) = delete;
  JobHandle& operator=(const JobHandle&) = delete;

  [[nodiscard]] bool open() const noexcept { return svc_ != nullptr; }
  [[nodiscard]] int id() const noexcept { return id_; }
  [[nodiscard]] std::string name() const;

  /// Build this job's store stack: private L1 (memory) + L2 (partner) and
  /// the namespaced shared-L3 level. The stack satisfies the plain
  /// CheckpointStore interface, so CheckpointManager / ResilientRunner use
  /// it unchanged. May be called again after discarding a stack — the
  /// namespace's surviving shared-L3 versions are visible to the new stack
  /// (restart/recovery).
  [[nodiscard]] std::unique_ptr<CheckpointStore> make_store() const;

  /// make_store() packaged for ResilienceConfig::store_factory.
  [[nodiscard]] std::function<std::unique_ptr<CheckpointStore>()>
  store_factory() const;

  [[nodiscard]] JobStats stats() const;

  /// Release the job slot (idempotent). All stores made from this handle
  /// must already be destroyed.
  void close();

 private:
  friend class CheckpointService;
  JobHandle(CheckpointService* svc, int id) noexcept : svc_(svc), id_(id) {}
  void swap(JobHandle& other) noexcept {
    std::swap(svc_, other.svc_);
    std::swap(id_, other.id_);
  }

  CheckpointService* svc_ = nullptr;
  int id_ = -1;
};

class CheckpointService {
 public:
  explicit CheckpointService(ServiceConfig cfg = {});
  ~CheckpointService();

  CheckpointService(const CheckpointService&) = delete;
  CheckpointService& operator=(const CheckpointService&) = delete;

  /// Register a job. Blocks while max_jobs are already open; job ids are
  /// monotonic, so a reopened service run never reuses a namespace.
  [[nodiscard]] JobHandle open_job(JobConfig cfg = {});

  // ----- fleet introspection ------------------------------------------------
  [[nodiscard]] int jobs_active() const;
  [[nodiscard]] int jobs_opened() const;
  [[nodiscard]] JobStats job_stats(int job_id) const;

  /// The shared content-addressed tier (aggregate dedup accounting:
  /// physical_bytes(), logical_bytes(), dedup_hits(), ...).
  [[nodiscard]] const DedupChunkStore& l3() const { return *l3_; }
  [[nodiscard]] const AdmissionController& admission() const {
    return admission_;
  }
  [[nodiscard]] const PromotionPool& pool() const { return pool_; }

  /// Service-owned registry (always on): svc.* series plus everything the
  /// shared L3 records. Scrape with metrics().to_prometheus().
  [[nodiscard]] const obs::MetricsRegistry& metrics() const {
    return metrics_;
  }

  [[nodiscard]] const ServiceConfig& config() const noexcept { return cfg_; }

 private:
  friend class JobHandle;
  class NamespaceStore;
  struct JobState;

  void close_job(int job_id);
  [[nodiscard]] std::unique_ptr<CheckpointStore> make_store_for(int job_id);
  [[nodiscard]] std::shared_ptr<JobState> state_of(int job_id) const;
  void refresh_gauges();

  ServiceConfig cfg_;
  obs::MetricsRegistry metrics_;
  std::unique_ptr<DedupChunkStore> l3_;
  AdmissionController admission_;

  mutable std::mutex mu_;
  std::condition_variable jobs_cv_;
  std::map<int, std::shared_ptr<JobState>> jobs_;
  int next_job_id_ = 0;

  /// Declared last: its destructor drains the queued promotion closures,
  /// which touch the members above.
  PromotionPool pool_;
};

}  // namespace lck::svc

#include "svc/promo_pool.hpp"

#include <algorithm>
#include <utility>

#include "common/types.hpp"

namespace lck::svc {

PromotionPool::PromotionPool(int workers, std::size_t quantum_bytes)
    : quantum_(quantum_bytes) {
  require(workers >= 1, "promotion pool: at least one worker required");
  require(quantum_bytes >= 1, "promotion pool: quantum must be >= 1");
  threads_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i)
    threads_.emplace_back([this] { worker_loop(); });
}

PromotionPool::~PromotionPool() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  // Workers drain every remaining task before exiting (see worker_loop):
  // a tiered store blocked in drain_promotions() is waiting on one of them.
  for (auto& t : threads_) t.join();
}

void PromotionPool::submit(int fair_key, std::size_t weight_bytes,
                           std::function<void()> task) {
  require(task != nullptr, "promotion pool: null task");
  {
    const std::lock_guard<std::mutex> lock(mu_);
    require(!stop_, "promotion pool: submit after shutdown");
    Task t;
    t.weight = std::max<std::size_t>(weight_bytes, 1);
    t.run = std::move(task);
    classes_[fair_key].q.push_back(std::move(t));
    ++queued_;
  }
  cv_.notify_one();
}

bool PromotionPool::take_next_locked(Task& out) {
  if (queued_ == 0) return false;
  // Deficit round robin: starting after the last served class (wrapping),
  // visit non-empty classes in key order, topping each visited class's
  // deficit up by one quantum; the first class whose head task fits its
  // deficit serves it. Each full cycle adds a quantum to every non-empty
  // class, so the loop terminates — some head weight is always reached.
  for (;;) {
    auto it = classes_.upper_bound(cursor_);
    if (it == classes_.end()) it = classes_.begin();
    cursor_ = it->first;
    ClassQueue& cls = it->second;
    cls.deficit += quantum_;
    if (cls.q.front().weight <= cls.deficit) {
      out = std::move(cls.q.front());
      cls.q.pop_front();
      cls.deficit -= out.weight;
      --queued_;
      // Erasing the drained class resets its deficit: an idle tenant must
      // not bank credit while it has nothing to promote.
      if (cls.q.empty()) classes_.erase(it);
      return true;
    }
  }
}

void PromotionPool::worker_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_.wait(lock, [&] { return queued_ > 0 || stop_; });
    if (queued_ == 0 && stop_) return;
    Task task;
    if (!take_next_locked(task)) continue;
    lock.unlock();
    task.run();
    lock.lock();
    ++executed_;
  }
}

std::size_t PromotionPool::executed() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return executed_;
}

std::size_t PromotionPool::pending() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return queued_;
}

}  // namespace lck::svc

#pragma once
/// \file preconditioner.hpp
/// \brief Preconditioners used by the paper's PETSc runs: Jacobi (diagonal),
///        block-Jacobi with ILU(0)/IC(0) inside blocks (PETSc's default),
///        and global ILU(0) / IC(0).

#include <memory>
#include <string>

#include "sparse/csr.hpp"

namespace lck {

/// Applies z := M⁻¹·r for a fixed matrix A supplied at construction.
class Preconditioner {
 public:
  virtual ~Preconditioner() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  virtual void apply(std::span<const double> r, std::span<double> z) const = 0;
  /// True iff apply() is a verbatim copy (M = I). Solvers use this to skip
  /// the copy and the extra z-vector sweep entirely; since z would equal r
  /// bit-for-bit, the fast path cannot change any trajectory.
  [[nodiscard]] virtual bool is_identity() const noexcept { return false; }
};

/// M = I (no preconditioning).
class IdentityPreconditioner final : public Preconditioner {
 public:
  [[nodiscard]] std::string name() const override { return "none"; }
  [[nodiscard]] bool is_identity() const noexcept override { return true; }
  void apply(std::span<const double> r, std::span<double> z) const override {
    copy(r, z);
  }
};

/// M = diag(A) — the paper's Fig. 3 choice for the KKT system.
class JacobiPreconditioner final : public Preconditioner {
 public:
  explicit JacobiPreconditioner(const CsrMatrix& a);
  [[nodiscard]] std::string name() const override { return "jacobi"; }
  void apply(std::span<const double> r, std::span<double> z) const override;

 private:
  Vector inv_diag_;
};

/// Global ILU(0): incomplete LU with the sparsity pattern of A.
class Ilu0Preconditioner final : public Preconditioner {
 public:
  explicit Ilu0Preconditioner(const CsrMatrix& a);
  [[nodiscard]] std::string name() const override { return "ilu0"; }
  void apply(std::span<const double> r, std::span<double> z) const override;

 private:
  CsrMatrix lu_;                  // combined L (strict lower) + U (upper) factors
  std::vector<index_t> diag_ptr_; // index of the diagonal entry per row
};

/// Global IC(0): incomplete Cholesky for SPD A (A ≈ L·Lᵀ on pattern of A).
class Ic0Preconditioner final : public Preconditioner {
 public:
  explicit Ic0Preconditioner(const CsrMatrix& a);
  [[nodiscard]] std::string name() const override { return "ic0"; }
  void apply(std::span<const double> r, std::span<double> z) const override;

 private:
  CsrMatrix l_;                   // lower-triangular factor (diag included)
  std::vector<index_t> diag_ptr_;
};

/// Block Jacobi with ILU(0) on each diagonal block — PETSc's default
/// (bjacobi + ilu) used in the paper's main evaluation. Off-block couplings
/// are dropped; each block factors independently (parallel).
class BlockJacobiPreconditioner final : public Preconditioner {
 public:
  BlockJacobiPreconditioner(const CsrMatrix& a, int blocks);
  [[nodiscard]] std::string name() const override { return "bjacobi-ilu0"; }
  void apply(std::span<const double> r, std::span<double> z) const override;
  [[nodiscard]] int blocks() const noexcept { return static_cast<int>(starts_.size()) - 1; }

 private:
  struct Block {
    CsrMatrix lu;
    std::vector<index_t> diag_ptr;
  };
  std::vector<Block> blocks_;
  std::vector<index_t> starts_;  // block row ranges (size blocks+1)
};

/// Factory by name: "none", "jacobi", "ilu0", "ic0", "bjacobi".
[[nodiscard]] std::unique_ptr<Preconditioner> make_preconditioner(
    const std::string& name, const CsrMatrix& a, int blocks = 8);

}  // namespace lck

#pragma once
/// \file factory.hpp
/// \brief Construct iterative solvers by name (mirrors PETSc's -ksp_type).

#include <memory>
#include <string>

#include "solvers/bicgstab.hpp"
#include "solvers/cg.hpp"
#include "solvers/gmres.hpp"
#include "solvers/minres.hpp"
#include "solvers/stationary.hpp"

namespace lck {

struct SolverSpec {
  std::string method = "cg";  ///< jacobi | gauss-seidel | sor | ssor | cg | gmres | minres | bicgstab
  double sor_omega = 1.2;
  index_t gmres_restart = 30;  ///< Paper: PETSc's recommended GMRES(30).
  SolveOptions options{};
};

/// Create a solver. `m` may be null (identity); stationary methods ignore it
/// (their splitting *is* the preconditioner).
[[nodiscard]] std::unique_ptr<IterativeSolver> make_solver(
    const SolverSpec& spec, const CsrMatrix& a, Vector b,
    const Preconditioner* m = nullptr);

}  // namespace lck

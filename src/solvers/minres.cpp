#include "solvers/minres.hpp"

#include <cmath>

namespace lck {

MinresSolver::MinresSolver(const CsrMatrix& a, Vector b, SolveOptions opts)
    : IterativeSolver(a, std::move(b), nullptr, opts),
      v_old_(b_.size(), 0.0),
      v_(b_.size(), 0.0),
      v_new_(b_.size(), 0.0),
      d_old_(b_.size(), 0.0),
      d_(b_.size(), 0.0),
      d_new_(b_.size(), 0.0) {
  restart(x_);
}

void MinresSolver::do_restart() {
  // Lanczos from r = b − A·x (fused with ‖r‖ in one sweep).
  beta_ = a_.residual_norm2(b_, x_, v_);
  res_norm_ = beta_;
  eta_ = beta_;
  if (beta_ > 0.0) scale(v_, 1.0 / beta_);
  fill(v_old_, 0.0);
  fill(d_old_, 0.0);
  fill(d_, 0.0);
  c_old_ = 1.0;
  c_ = 1.0;
  s_old_ = 0.0;
  s_ = 0.0;
}

void MinresSolver::do_resume_after_restore() { do_restart(); }

void MinresSolver::do_step() {
  if (res_norm_ <= tolerance()) return;

  // Lanczos step: v_new = A·v − α·v − β·v_old, with the two subtractions and
  // the norm fused into one sweep (bit-identical to the axpy/axpy/norm2
  // sequence — see tests/test_kernels.cpp).
  a_.multiply(v_, v_new_);
  const double alpha = dot(v_, v_new_);
  const double beta_new = axpy2_norm2(-alpha, v_, -beta_, v_old_, v_new_);

  // Apply the two previous Givens rotations to the new tridiagonal column
  // (β_old was already rotated once when it was created).
  const double rho3 = s_old_ * beta_;                        // row k−2
  const double rho2 = s_ * alpha + c_old_ * c_ * beta_;      // row k−1
  const double rho1_bar = c_ * alpha - c_old_ * s_ * beta_;  // diagonal

  // New rotation annihilating β_new.
  const double rho1 = std::hypot(rho1_bar, beta_new);
  if (rho1 == 0.0) {
    // Exact breakdown: the Krylov space is invariant; x is optimal.
    res_norm_ = std::fabs(eta_);
    return;
  }
  const double c_new = rho1_bar / rho1;
  const double s_new = beta_new / rho1;

  // Direction update: d_new = (v − ρ3·d_old − ρ2·d)/ρ1, one fused sweep
  // instead of copy + axpy + axpy + scale.
  waxpy2_scale(v_, -rho3, d_old_, -rho2, d_, 1.0 / rho1, d_new_);

  // Solution and residual-norm recurrences.
  axpy(c_new * eta_, d_new_, x_);
  eta_ = -s_new * eta_;
  res_norm_ = std::fabs(eta_);

  // Shift histories.
  std::swap(d_old_, d_);
  std::swap(d_, d_new_);
  std::swap(v_old_, v_);
  std::swap(v_, v_new_);
  if (beta_new > 0.0) scale(v_, 1.0 / beta_new);
  beta_ = beta_new;
  c_old_ = c_;
  c_ = c_new;
  s_old_ = s_;
  s_ = s_new;
}

}  // namespace lck

#pragma once
/// \file minres.hpp
/// \brief MINRES (Paige & Saunders) — minimal-residual Krylov method for
///        symmetric *indefinite* systems.
///
/// Extension beyond the paper's evaluated set: the paper's Fig. 3 matrix
/// (KKT240) is symmetric indefinite, for which MINRES is the method of
/// choice (CG requires definiteness; GMRES ignores symmetry and pays the
/// full orthogonalization cost). Under lossy checkpointing MINRES behaves
/// like the other restarted Krylov methods: the only dynamic vector is x,
/// and recovery rebuilds the Lanczos recurrence from the decompressed
/// iterate.

#include "solvers/solver.hpp"

namespace lck {

class MinresSolver final : public IterativeSolver {
 public:
  MinresSolver(const CsrMatrix& a, Vector b, SolveOptions opts = {});

  [[nodiscard]] std::string name() const override { return "minres"; }

  void do_resume_after_restore() override;

 protected:
  void do_restart() override;
  void do_step() override;

 private:
  // Lanczos vectors and MINRES direction recurrences.
  Vector v_old_, v_, v_new_;  // Lanczos basis (three-term)
  Vector d_old_, d_, d_new_;  // solution-update directions
  double beta_ = 0.0;         // current Lanczos off-diagonal
  double eta_ = 0.0;          // rotated residual component
  double c_old_ = 1.0, c_ = 1.0, s_old_ = 0.0, s_ = 0.0;  // Givens history
};

}  // namespace lck

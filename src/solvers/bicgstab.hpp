#pragma once
/// \file bicgstab.hpp
/// \brief Preconditioned BiCGSTAB (van der Vorst) — an additional
///        nonsymmetric Krylov method beyond the paper's evaluation set,
///        demonstrating that the lossy checkpointing scheme generalizes
///        (paper §6 future work: "additional ... domains").

#include "solvers/solver.hpp"

namespace lck {

class BicgstabSolver final : public IterativeSolver {
 public:
  BicgstabSolver(const CsrMatrix& a, Vector b,
                 const Preconditioner* m = nullptr, SolveOptions opts = {});

  [[nodiscard]] std::string name() const override { return "bicgstab"; }

  /// Traditional scheme checkpoints x, p and r̂₀ (the shadow residual).
  [[nodiscard]] std::vector<ProtectedVar> checkpoint_vectors() override;

  void save_scalars(ByteWriter& out) const override;
  void restore_scalars(ByteReader& in) override;
  void do_resume_after_restore() override;

 protected:
  void do_restart() override;
  void do_step() override;

 private:
  Vector r_, rhat_, p_, v_, s_, t_, ph_, sh_;
  double rho_ = 1.0, alpha_ = 1.0, omega_ = 1.0;
};

}  // namespace lck

#include "solvers/stationary.hpp"

#include <cmath>

namespace lck {

// ----- Jacobi ---------------------------------------------------------------

JacobiSolver::JacobiSolver(const CsrMatrix& a, Vector b, SolveOptions opts)
    : IterativeSolver(a, std::move(b), nullptr, opts),
      inv_diag_(a.diagonal()),
      r_(b_.size(), 0.0) {
  for (auto& d : inv_diag_) {
    require(d != 0.0, "jacobi: zero diagonal entry");
    d = 1.0 / d;
  }
  restart(x_);
}

void JacobiSolver::do_restart() {
  res_norm_ = a_.residual_norm2(b_, x_, r_);
  if (initial_res_norm_ == 0.0) initial_res_norm_ = res_norm_;
}

void JacobiSolver::do_resume_after_restore() {
  res_norm_ = a_.residual_norm2(b_, x_, r_);
}

void JacobiSolver::do_step() {
  // x ← x + D⁻¹ r, then refresh the recomputed residual with the norm fused
  // into the same sweep. The fusion is legal since the lane-canonical
  // reduction landed: residual_norm2() parallelizes over the *reduction*
  // partition (fixed 16Ki row blocks) and accumulates y² lane-canonically,
  // so it associates exactly like residual() followed by norm2().
  diag_axpy(inv_diag_, r_, x_);
  res_norm_ = a_.residual_norm2(b_, x_, r_);
}

double JacobiSolver::estimate_spectral_radius() const {
  if (iteration_ == 0 || initial_res_norm_ == 0.0 || res_norm_ == 0.0)
    return 0.0;
  return std::pow(res_norm_ / initial_res_norm_,
                  1.0 / static_cast<double>(iteration_));
}

// ----- SOR family -----------------------------------------------------------

SorSolver::SorSolver(const CsrMatrix& a, Vector b, double omega,
                     SweepKind kind, SolveOptions opts)
    : IterativeSolver(a, std::move(b), nullptr, opts),
      omega_(omega),
      kind_(kind),
      r_(b_.size(), 0.0) {
  require(omega > 0.0 && omega < 2.0, "sor: omega must lie in (0, 2)");
  restart(x_);
}

std::string SorSolver::name() const {
  switch (kind_) {
    case SweepKind::kBackward: return "sor-backward";
    case SweepKind::kSymmetric: return "ssor";
    default: return "sor";
  }
}

void SorSolver::do_restart() {
  res_norm_ = a_.residual_norm2(b_, x_, r_);
}

void SorSolver::do_resume_after_restore() { do_restart(); }

void SorSolver::sweep(bool forward) {
  const index_t n = a_.rows();
  const auto row_ptr = a_.row_ptr();
  const auto col_idx = a_.col_idx();
  const auto vals = a_.values();
  for (index_t s = 0; s < n; ++s) {
    const index_t i = forward ? s : n - 1 - s;
    double sum = b_[i];
    double diag = 0.0;
    for (index_t k = row_ptr[i]; k < row_ptr[i + 1]; ++k) {
      const index_t c = col_idx[k];
      if (c == i)
        diag = vals[k];
      else
        sum -= vals[k] * x_[c];
    }
    require(diag != 0.0, "sor: zero diagonal entry");
    x_[i] = (1.0 - omega_) * x_[i] + omega_ * sum / diag;
  }
}

void SorSolver::do_step() {
  switch (kind_) {
    case SweepKind::kForward: sweep(true); break;
    case SweepKind::kBackward: sweep(false); break;
    case SweepKind::kSymmetric:
      sweep(true);
      sweep(false);
      break;
  }
  res_norm_ = a_.residual_norm2(b_, x_, r_);
}

}  // namespace lck

#include "solvers/preconditioner.hpp"

#include <algorithm>
#include <cmath>

#include "parallel/partitioner.hpp"

namespace lck {
namespace {

/// Locate the diagonal entry of each row; throws if any is missing or zero.
std::vector<index_t> find_diagonals(const CsrMatrix& a) {
  std::vector<index_t> diag(static_cast<std::size_t>(a.rows()), -1);
  for (index_t r = 0; r < a.rows(); ++r) {
    for (index_t k = a.row_ptr()[r]; k < a.row_ptr()[r + 1]; ++k)
      if (a.col_idx()[k] == r) {
        diag[r] = k;
        break;
      }
    require(diag[r] >= 0, "ilu0: matrix has an empty diagonal entry");
  }
  return diag;
}

/// Binary search for column `c` within row `r` of `a`, restricted to
/// entries at indices [lo, hi). Returns -1 if absent.
index_t find_in_row(const CsrMatrix& a, index_t lo, index_t hi, index_t c) {
  const auto begin = a.col_idx().begin() + lo;
  const auto end = a.col_idx().begin() + hi;
  const auto it = std::lower_bound(begin, end, c);
  if (it != end && *it == c) return lo + (it - begin);
  return -1;
}

/// In-place ILU(0) factorization (IKJ form) of `lu` (a copy of A).
/// After the call, lu holds L (strict lower, unit diagonal implied) and U.
void ilu0_factor(CsrMatrix& lu, const std::vector<index_t>& diag) {
  auto vals = lu.values_mut();
  for (index_t i = 0; i < lu.rows(); ++i) {
    for (index_t kk = lu.row_ptr()[i]; kk < diag[i]; ++kk) {
      const index_t k = lu.col_idx()[kk];
      const double ukk = vals[diag[k]];
      require(ukk != 0.0, "ilu0: zero pivot");
      vals[kk] /= ukk;
      // Subtract l_ik * u_k* from the remainder of row i.
      for (index_t jj = diag[k] + 1; jj < lu.row_ptr()[k + 1]; ++jj) {
        const index_t j = lu.col_idx()[jj];
        const index_t pos = find_in_row(lu, kk + 1, lu.row_ptr()[i + 1], j);
        if (pos >= 0) vals[pos] -= vals[kk] * vals[jj];
      }
    }
    require(vals[diag[i]] != 0.0, "ilu0: zero pivot on diagonal");
  }
}

/// Solve L·U·z = r using the combined factor layout from ilu0_factor.
void ilu0_solve(const CsrMatrix& lu, const std::vector<index_t>& diag,
                std::span<const double> r, std::span<double> z) {
  const index_t n = lu.rows();
  // Forward: L y = r (unit diagonal), y stored into z.
  for (index_t i = 0; i < n; ++i) {
    double s = r[i];
    for (index_t k = lu.row_ptr()[i]; k < diag[i]; ++k)
      s -= lu.values()[k] * z[lu.col_idx()[k]];
    z[i] = s;
  }
  // Backward: U z = y.
  for (index_t i = n; i-- > 0;) {
    double s = z[i];
    for (index_t k = diag[i] + 1; k < lu.row_ptr()[i + 1]; ++k)
      s -= lu.values()[k] * z[lu.col_idx()[k]];
    z[i] = s / lu.values()[diag[i]];
  }
}

}  // namespace

// ----- Jacobi ---------------------------------------------------------------

JacobiPreconditioner::JacobiPreconditioner(const CsrMatrix& a)
    : inv_diag_(a.diagonal()) {
  for (auto& d : inv_diag_) {
    require(d != 0.0, "jacobi preconditioner: zero diagonal");
    d = 1.0 / d;
  }
}

void JacobiPreconditioner::apply(std::span<const double> r,
                                 std::span<double> z) const {
  require(r.size() == inv_diag_.size() && z.size() == inv_diag_.size(),
          "jacobi preconditioner: size mismatch");
  parallel_for(0, static_cast<index_t>(r.size()),
               [&](index_t i) { z[i] = inv_diag_[i] * r[i]; });
}

// ----- ILU(0) ---------------------------------------------------------------

Ilu0Preconditioner::Ilu0Preconditioner(const CsrMatrix& a) : lu_(a) {
  require(a.rows() == a.cols(), "ilu0: matrix must be square");
  diag_ptr_ = find_diagonals(lu_);
  ilu0_factor(lu_, diag_ptr_);
}

void Ilu0Preconditioner::apply(std::span<const double> r,
                               std::span<double> z) const {
  ilu0_solve(lu_, diag_ptr_, r, z);
}

// ----- IC(0) ----------------------------------------------------------------

Ic0Preconditioner::Ic0Preconditioner(const CsrMatrix& a) {
  require(a.rows() == a.cols(), "ic0: matrix must be square");
  const index_t n = a.rows();

  // Extract the lower triangle (diagonal included).
  CsrBuilder bld(n, n);
  for (index_t r = 0; r < n; ++r) {
    for (index_t k = a.row_ptr()[r]; k < a.row_ptr()[r + 1]; ++k)
      if (a.col_idx()[k] <= r) bld.add(a.col_idx()[k], a.values()[k]);
    bld.finish_row();
  }
  l_ = std::move(bld).build();
  diag_ptr_ = find_diagonals(l_);

  // IC(0): for each entry (i,j), j<=i on the pattern,
  //   l_ij = (a_ij − Σ_{k<j} l_ik·l_jk) / l_jj,  l_ii = sqrt(a_ii − Σ l_ik²).
  auto vals = l_.values_mut();
  for (index_t i = 0; i < n; ++i) {
    for (index_t kk = l_.row_ptr()[i]; kk < l_.row_ptr()[i + 1]; ++kk) {
      const index_t j = l_.col_idx()[kk];
      // Sparse dot of rows i and j over columns < j.
      double dotp = 0.0;
      index_t pi = l_.row_ptr()[i], pj = l_.row_ptr()[j];
      while (pi < kk && pj < diag_ptr_[j]) {
        const index_t ci = l_.col_idx()[pi], cj = l_.col_idx()[pj];
        if (ci == cj) {
          dotp += vals[pi] * vals[pj];
          ++pi;
          ++pj;
        } else if (ci < cj) {
          ++pi;
        } else {
          ++pj;
        }
      }
      if (j == i) {
        const double v = vals[kk] - dotp;
        // Guard against breakdown on barely-SPD matrices.
        vals[kk] = std::sqrt(std::max(v, 1e-300));
      } else {
        vals[kk] = (vals[kk] - dotp) / vals[diag_ptr_[j]];
      }
    }
  }
}

void Ic0Preconditioner::apply(std::span<const double> r,
                              std::span<double> z) const {
  const index_t n = l_.rows();
  // Forward: L y = r.
  for (index_t i = 0; i < n; ++i) {
    double s = r[i];
    for (index_t k = l_.row_ptr()[i]; k < diag_ptr_[i]; ++k)
      s -= l_.values()[k] * z[l_.col_idx()[k]];
    z[i] = s / l_.values()[diag_ptr_[i]];
  }
  // Backward: Lᵀ z = y — column-oriented sweep over L's rows in reverse.
  for (index_t i = n; i-- > 0;) {
    z[i] /= l_.values()[diag_ptr_[i]];
    const double zi = z[i];
    for (index_t k = l_.row_ptr()[i]; k < diag_ptr_[i]; ++k)
      z[l_.col_idx()[k]] -= l_.values()[k] * zi;
  }
}

// ----- Block Jacobi + ILU(0) -------------------------------------------------

BlockJacobiPreconditioner::BlockJacobiPreconditioner(const CsrMatrix& a,
                                                     int blocks) {
  require(a.rows() == a.cols(), "bjacobi: matrix must be square");
  require(blocks >= 1, "bjacobi: need at least one block");
  blocks = static_cast<int>(
      std::min<index_t>(blocks, std::max<index_t>(a.rows(), 1)));
  const Partitioner part(a.rows(), blocks);

  starts_.resize(static_cast<std::size_t>(blocks) + 1);
  for (int b = 0; b <= blocks; ++b)
    starts_[b] = b < blocks ? part.offset(b) : a.rows();

  blocks_.reserve(static_cast<std::size_t>(blocks));
  for (int b = 0; b < blocks; ++b) {
    const index_t lo = starts_[b], hi = starts_[b + 1];
    CsrBuilder bld(hi - lo, hi - lo);
    for (index_t r = lo; r < hi; ++r) {
      bool has_diag = false;
      for (index_t k = a.row_ptr()[r]; k < a.row_ptr()[r + 1]; ++k) {
        const index_t c = a.col_idx()[k];
        if (c >= lo && c < hi) {
          bld.add(c - lo, a.values()[k]);
          if (c == r) has_diag = true;
        }
      }
      require(has_diag, "bjacobi: diagonal entry missing in block");
      bld.finish_row();
    }
    Block blk{std::move(bld).build(), {}};
    blk.diag_ptr = find_diagonals(blk.lu);
    ilu0_factor(blk.lu, blk.diag_ptr);
    blocks_.push_back(std::move(blk));
  }
}

void BlockJacobiPreconditioner::apply(std::span<const double> r,
                                      std::span<double> z) const {
  const auto nb = static_cast<index_t>(blocks_.size());
#if defined(_OPENMP)
#pragma omp parallel for schedule(static)
#endif
  for (index_t b = 0; b < nb; ++b) {
    const index_t lo = starts_[b];
    const index_t len = starts_[b + 1] - lo;
    ilu0_solve(blocks_[b].lu, blocks_[b].diag_ptr, r.subspan(lo, len),
               z.subspan(lo, len));
  }
}

std::unique_ptr<Preconditioner> make_preconditioner(const std::string& name,
                                                    const CsrMatrix& a,
                                                    int blocks) {
  if (name == "none") return std::make_unique<IdentityPreconditioner>();
  if (name == "jacobi") return std::make_unique<JacobiPreconditioner>(a);
  if (name == "ilu0") return std::make_unique<Ilu0Preconditioner>(a);
  if (name == "ic0") return std::make_unique<Ic0Preconditioner>(a);
  if (name == "bjacobi")
    return std::make_unique<BlockJacobiPreconditioner>(a, blocks);
  throw config_error("unknown preconditioner: " + name);
}

}  // namespace lck

#pragma once
/// \file gmres.hpp
/// \brief Restarted GMRES(m) with right preconditioning — the paper's
///        nonsymmetric workhorse (GMRES(30) in §5).
///
/// Right preconditioning keeps the Givens-recurrence residual equal to the
/// *true* residual norm, which is what Theorem 3's adaptive error bound
/// eb = O(||r(t)||/||b||) needs at checkpoint time.
///
/// One step() = one inner Arnoldi iteration (matching the paper's iteration
/// counts, e.g. 5,875 iterations of GMRES(30)). The approximate solution is
/// materialized from the Krylov basis on demand, so checkpoints may be taken
/// at any iteration. Like the paper's restarted scheme, the only dynamic
/// variable is x: recovery restarts the Krylov subspace from the recovered
/// iterate (§4.2).

#include "solvers/solver.hpp"

namespace lck {

class GmresSolver final : public IterativeSolver {
 public:
  GmresSolver(const CsrMatrix& a, Vector b, const Preconditioner* m = nullptr,
              index_t restart = 30, SolveOptions opts = {});

  [[nodiscard]] std::string name() const override { return "gmres"; }

  [[nodiscard]] index_t restart_length() const noexcept { return m_restart_; }

  void do_resume_after_restore() override;

 protected:
  void do_restart() override;
  void do_step() override;
  void materialize_solution() override;

 private:
  void begin_cycle();

  index_t m_restart_;
  index_t j_ = 0;  // inner iteration index within the current cycle

  Vector x_base_;               // iterate at the start of the cycle
  std::vector<Vector> v_;       // Krylov basis, m+1 vectors
  std::vector<Vector> h_;       // Hessenberg columns: h_[j] has j+2 entries
  Vector cs_, sn_, g_;          // Givens rotations and rotated rhs
  Vector w_, z_;                // scratch
  bool x_current_ = true;       // x_ reflects the basis state
};

}  // namespace lck

#include "solvers/bicgstab.hpp"

#include <cmath>

namespace lck {

BicgstabSolver::BicgstabSolver(const CsrMatrix& a, Vector b,
                               const Preconditioner* m, SolveOptions opts)
    : IterativeSolver(a, std::move(b), m, opts),
      r_(b_.size(), 0.0),
      rhat_(b_.size(), 0.0),
      p_(b_.size(), 0.0),
      v_(b_.size(), 0.0),
      s_(b_.size(), 0.0),
      t_(b_.size(), 0.0),
      ph_(b_.size(), 0.0),
      sh_(b_.size(), 0.0) {
  restart(x_);
}

void BicgstabSolver::do_restart() {
  res_norm_ = a_.residual_norm2(b_, x_, r_);  // fused r = b − A·x and ‖r‖
  copy(r_, rhat_);
  fill(p_, 0.0);
  fill(v_, 0.0);
  rho_ = 1.0;
  alpha_ = 1.0;
  omega_ = 1.0;
}

void BicgstabSolver::do_step() {
  // Per-iteration body on the fused kernels (axpy_xpby, waxpy_norm2, dot2,
  // axpy2). With M = I the two preconditioner applications are skipped —
  // ph/sh would be verbatim copies of p/s, which are not mutated between
  // the apply site and their last use — cutting the full-vector passes per
  // iteration 14 → 7, bit-identically (tests/test_kernels.cpp).
  const double rho_next = dot(rhat_, r_);
  if (rho_next == 0.0 || omega_ == 0.0 || !std::isfinite(rho_next)) {
    do_restart();  // serious breakdown: restart from the current iterate
    return;
  }
  const double beta = (rho_next / rho_) * (alpha_ / omega_);
  rho_ = rho_next;
  // p = r + β(p − ω·v), one fused sweep
  axpy_xpby(-omega_, v_, r_, beta, p_);

  const bool ident = m_->is_identity();
  if (!ident) m_->apply(p_, ph_);
  const std::span<const double> ph = ident ? std::span<const double>(p_)
                                           : std::span<const double>(ph_);
  a_.multiply(ph, v_);
  const double rhat_v = dot(rhat_, v_);
  if (rhat_v == 0.0) {
    do_restart();
    return;
  }
  alpha_ = rho_ / rhat_v;
  const double s_norm = waxpy_norm2(r_, -alpha_, v_, s_);  // s = r − α·v
  if (s_norm <= tolerance()) {
    axpy(alpha_, ph, x_);
    copy(s_, r_);
    res_norm_ = s_norm;
    return;
  }

  if (!ident) m_->apply(s_, sh_);
  const std::span<const double> sh = ident ? std::span<const double>(s_)
                                           : std::span<const double>(sh_);
  a_.multiply(sh, t_);
  const auto [tt, ts] = dot2(t_, t_, s_);
  omega_ = tt != 0.0 ? ts / tt : 0.0;

  axpy2(alpha_, ph, omega_, sh, x_);  // x += α·ph + ω·sh
  res_norm_ = waxpy_norm2(s_, -omega_, t_, r_);  // r = s − ω·t
}

std::vector<ProtectedVar> BicgstabSolver::checkpoint_vectors() {
  return {{"x", &x_}, {"p", &p_}, {"rhat", &rhat_}, {"v", &v_}};
}

void BicgstabSolver::save_scalars(ByteWriter& out) const {
  IterativeSolver::save_scalars(out);
  out.put(rho_);
  out.put(alpha_);
  out.put(omega_);
}

void BicgstabSolver::restore_scalars(ByteReader& in) {
  IterativeSolver::restore_scalars(in);
  rho_ = in.get<double>();
  alpha_ = in.get<double>();
  omega_ = in.get<double>();
}

void BicgstabSolver::do_resume_after_restore() {
  res_norm_ = a_.residual_norm2(b_, x_, r_);
}

}  // namespace lck

#include "solvers/cg.hpp"

#include <cmath>

namespace lck {

CgSolver::CgSolver(const CsrMatrix& a, Vector b, const Preconditioner* m,
                   SolveOptions opts)
    : IterativeSolver(a, std::move(b), m, opts),
      r_(b_.size(), 0.0),
      z_(b_.size(), 0.0),
      p_(b_.size(), 0.0),
      q_(b_.size(), 0.0) {
  restart(x_);
}

void CgSolver::do_restart() {
  // Paper Algorithm 2 lines 10–13: r = b − A·x, solve M z = r, p = z,
  // ρ = rᵀz.
  res_norm_ = a_.residual_norm2(b_, x_, r_);  // fused r = b − A·x and ‖r‖
  m_->apply(r_, z_);
  copy(z_, p_);
  rho_ = dot(r_, z_);
}

void CgSolver::do_step() {
  // Paper Algorithm 1 lines 10–17, rebuilt on the fused kernels: one sweep
  // computes pᵀq, a second updates x and r while accumulating rᵀr. With
  // M = I the preconditioner solve is skipped outright (z would be a
  // verbatim copy of r, so rᵀz == rᵀr bit-for-bit), cutting the
  // per-iteration full-vector passes 7 → 3; the bitwise trajectory match
  // against the unfused body is pinned by tests/test_kernels.cpp.
  a_.multiply(p_, q_);
  const DotAxpyResult fu = dot_axpy(p_, q_, rho_, x_, r_);
  if (!fu.updated) {
    // Breakdown (p = 0 happens only at the exact solution); re-establish
    // the recurrence from the current iterate.
    do_restart();
    return;
  }
  double rho_next;
  if (m_->is_identity()) {
    rho_next = fu.rr;
    xpby(r_, rho_next / rho_, p_);  // p = r + β·p
  } else {
    m_->apply(r_, z_);
    rho_next = dot(r_, z_);
    xpby(z_, rho_next / rho_, p_);  // p = z + β·p
  }
  rho_ = rho_next;
  res_norm_ = std::sqrt(fu.rr);
}

std::vector<ProtectedVar> CgSolver::checkpoint_vectors() {
  return {{"x", &x_}, {"p", &p_}};
}

void CgSolver::save_scalars(ByteWriter& out) const {
  IterativeSolver::save_scalars(out);
  out.put(rho_);
}

void CgSolver::restore_scalars(ByteReader& in) {
  IterativeSolver::restore_scalars(in);
  rho_ = in.get<double>();
}

void CgSolver::do_resume_after_restore() {
  // Paper Algorithm 1 line 8: recompute r = b − A·x; z is rebuilt at the
  // next step()'s preconditioner application, ρ and p were checkpointed.
  res_norm_ = a_.residual_norm2(b_, x_, r_);
}

}  // namespace lck

#include "solvers/cg.hpp"

#include <cmath>

namespace lck {

CgSolver::CgSolver(const CsrMatrix& a, Vector b, const Preconditioner* m,
                   SolveOptions opts)
    : IterativeSolver(a, std::move(b), m, opts),
      r_(b_.size(), 0.0),
      z_(b_.size(), 0.0),
      p_(b_.size(), 0.0),
      q_(b_.size(), 0.0) {
  restart(x_);
}

void CgSolver::do_restart() {
  // Paper Algorithm 2 lines 10–13: r = b − A·x, solve M z = r, p = z,
  // ρ = rᵀz.
  a_.residual(b_, x_, r_);
  m_->apply(r_, z_);
  copy(z_, p_);
  rho_ = dot(r_, z_);
  res_norm_ = norm2(r_);
}

void CgSolver::do_step() {
  // Paper Algorithm 1 lines 10–17.
  a_.multiply(p_, q_);
  const double pq = dot(p_, q_);
  if (pq == 0.0 || !std::isfinite(pq)) {
    // Breakdown (p = 0 happens only at the exact solution); re-establish
    // the recurrence from the current iterate.
    do_restart();
    return;
  }
  const double alpha = rho_ / pq;
  axpy(alpha, p_, x_);
  axpy(-alpha, q_, r_);
  m_->apply(r_, z_);
  const double rho_next = dot(r_, z_);
  const double beta = rho_next / rho_;
  rho_ = rho_next;
  xpby(z_, beta, p_);  // p = z + β·p
  res_norm_ = norm2(r_);
}

std::vector<ProtectedVar> CgSolver::checkpoint_vectors() {
  return {{"x", &x_}, {"p", &p_}};
}

void CgSolver::save_scalars(ByteWriter& out) const {
  IterativeSolver::save_scalars(out);
  out.put(rho_);
}

void CgSolver::restore_scalars(ByteReader& in) {
  IterativeSolver::restore_scalars(in);
  rho_ = in.get<double>();
}

void CgSolver::do_resume_after_restore() {
  // Paper Algorithm 1 line 8: recompute r = b − A·x; z is rebuilt at the
  // next step()'s preconditioner application, ρ and p were checkpointed.
  a_.residual(b_, x_, r_);
  res_norm_ = norm2(r_);
}

}  // namespace lck

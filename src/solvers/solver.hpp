#pragma once
/// \file solver.hpp
/// \brief Base class for iterative solvers with the checkpoint/recovery
///        hooks from the paper's variable classification (§3):
///        static variables (A, M, b) live outside; dynamic variables are
///        exposed for checkpointing; recomputed variables (r, z, …) are
///        rebuilt by restart()/resume_after_restore().

#include <memory>
#include <string>
#include <vector>

#include "common/byte_buffer.hpp"
#include "solvers/preconditioner.hpp"
#include "sparse/csr.hpp"

namespace lck {

/// Convergence and iteration-control options (PETSc-style).
struct SolveOptions {
  double rtol = 1e-6;       ///< Converged when ||r||₂ ≤ rtol·||b||₂.
  double atol = 0.0;        ///< … or when ||r||₂ ≤ atol.
  index_t max_iterations = 200000;
  bool record_history = true;  ///< Keep per-iteration residual norms.
};

/// Result of one solver step.
struct IterationState {
  index_t iteration = 0;      ///< Total steps taken (monotonic, restarts included).
  double residual_norm = 0.0; ///< Unpreconditioned ||b − A·x||₂ estimate.
  bool converged = false;
};

/// A named dynamic vector that the traditional checkpointing scheme must
/// save (paper §3's "dynamic variables").
struct ProtectedVar {
  std::string name;
  Vector* data;
};

/// Common machinery for all iterative methods.
///
/// Lifecycle:
///   solver.restart(x0);           // fresh start or lossy recovery (§4.2)
///   while (!solver.converged()) solver.step();
///
/// Checkpoint integration:
///  - lossy scheme: checkpoint solution() only; recover via restart(x').
///  - traditional/lossless: checkpoint checkpoint_vectors() + scalar state
///    via save_scalars()/restore_scalars(), then resume_after_restore().
class IterativeSolver {
 public:
  IterativeSolver(const CsrMatrix& a, Vector b, const Preconditioner* m,
                  SolveOptions opts);
  virtual ~IterativeSolver() = default;

  IterativeSolver(const IterativeSolver&) = delete;
  IterativeSolver& operator=(const IterativeSolver&) = delete;

  [[nodiscard]] virtual std::string name() const = 0;

  /// (Re)initialize every recurrence from initial guess `x0`. Used both for
  /// the fresh start and for recovery from a (possibly lossy) checkpointed
  /// solution — Algorithm 2 lines 8–13 in the paper.
  void restart(std::span<const double> x0);

  /// Perform one iteration and return the post-step state.
  IterationState step();

  /// Current approximate solution x(i). May finalize internal state
  /// (GMRES materializes x from the Krylov basis on demand).
  [[nodiscard]] const Vector& solution();

  [[nodiscard]] double residual_norm() const noexcept { return res_norm_; }
  [[nodiscard]] index_t iteration() const noexcept { return iteration_; }
  [[nodiscard]] bool converged() const noexcept { return converged_; }
  [[nodiscard]] const std::vector<double>& residual_history() const noexcept {
    return history_;
  }
  [[nodiscard]] const SolveOptions& options() const noexcept { return opts_; }
  [[nodiscard]] double rhs_norm() const noexcept { return b_norm_; }
  [[nodiscard]] const CsrMatrix& matrix() const noexcept { return a_; }
  [[nodiscard]] const Vector& rhs() const noexcept { return b_; }

  /// Run until convergence or the iteration cap; returns final state.
  IterationState solve();

  /// Dynamic vectors the *traditional* scheme checkpoints (paper §3):
  /// always contains x first; CG adds its direction vector p.
  [[nodiscard]] virtual std::vector<ProtectedVar> checkpoint_vectors();

  /// Serialize scalar dynamic state (iteration count, ρ, …).
  virtual void save_scalars(ByteWriter& out) const;
  /// Restore scalar dynamic state; pair of save_scalars().
  virtual void restore_scalars(ByteReader& in);

  /// Rebuild recomputed variables (r = b − A·x, …) after the checkpoint
  /// vectors + scalars have been restored (traditional recovery path), and
  /// re-evaluate convergence against the restored state.
  void resume_after_restore() {
    do_resume_after_restore();
    update_convergence();
  }

  /// Roll the logical iteration counter back to a checkpointed value after
  /// a recovery (the paper reports iterations-to-convergence from this
  /// counter, so rollback re-execution is not double counted).
  void set_iteration(index_t it) noexcept { iteration_ = it; }

 protected:
  /// Method-specific restart logic; x_ is already set.
  virtual void do_restart() = 0;
  /// Method-specific recomputed-variable rebuild for resume_after_restore().
  virtual void do_resume_after_restore() = 0;
  /// Method-specific single iteration; must update res_norm_.
  virtual void do_step() = 0;
  /// Allows GMRES to materialize x lazily; default no-op.
  virtual void materialize_solution() {}

  /// Convergence test against rtol·||b|| and atol.
  void update_convergence() noexcept {
    converged_ = res_norm_ <= tolerance();
  }
  [[nodiscard]] double tolerance() const noexcept {
    const double rel = opts_.rtol * b_norm_;
    return std::max(rel, opts_.atol);
  }

  const CsrMatrix& a_;
  Vector b_;
  const Preconditioner* m_;  ///< Never null (identity by default).
  SolveOptions opts_;
  IdentityPreconditioner identity_;

  Vector x_;
  double res_norm_ = 0.0;
  double b_norm_ = 0.0;
  index_t iteration_ = 0;
  bool converged_ = false;
  std::vector<double> history_;
};

}  // namespace lck

#pragma once
/// \file stationary.hpp
/// \brief Stationary iterative methods x(i) = G·x(i−1) + c analyzed in the
///        paper's §4.4.1: Jacobi, Gauss–Seidel, SOR, SSOR.

#include "solvers/solver.hpp"

namespace lck {

/// Jacobi: x ← x + D⁻¹·(b − A·x). Fully parallel; the paper's stationary
/// representative (§5). The only dynamic vector is x.
class JacobiSolver final : public IterativeSolver {
 public:
  JacobiSolver(const CsrMatrix& a, Vector b, SolveOptions opts = {});
  [[nodiscard]] std::string name() const override { return "jacobi"; }
  void do_resume_after_restore() override;

  /// Spectral radius estimate of the iteration matrix G = I − D⁻¹A from the
  /// observed residual contraction, R ≈ (||r_N||/||r_0||)^(1/N) — the
  /// estimator the paper uses for Theorem 2 (§5.3, R ≈ 0.99998).
  [[nodiscard]] double estimate_spectral_radius() const;

 protected:
  void do_restart() override;
  void do_step() override;

 private:
  Vector inv_diag_;
  Vector r_;  // recomputed variable (paper §3)
  double initial_res_norm_ = 0.0;
};

/// SOR sweep direction / symmetric variant selector.
enum class SweepKind { kForward, kBackward, kSymmetric };

/// Gauss–Seidel / SOR / SSOR (relaxation ω; ω = 1 ⇒ Gauss–Seidel).
/// Sweeps are inherently sequential over rows (classic formulation).
class SorSolver : public IterativeSolver {
 public:
  SorSolver(const CsrMatrix& a, Vector b, double omega,
            SweepKind kind = SweepKind::kForward, SolveOptions opts = {});
  [[nodiscard]] std::string name() const override;
  void do_resume_after_restore() override;

 protected:
  void do_restart() override;
  void do_step() override;

 private:
  void sweep(bool forward);
  double omega_;
  SweepKind kind_;
  Vector r_;
};

/// Gauss–Seidel = SOR with ω = 1.
class GaussSeidelSolver final : public SorSolver {
 public:
  GaussSeidelSolver(const CsrMatrix& a, Vector b, SolveOptions opts = {})
      : SorSolver(a, std::move(b), 1.0, SweepKind::kForward, opts) {}
  [[nodiscard]] std::string name() const override { return "gauss-seidel"; }
};

/// SSOR = symmetric SOR (forward + backward sweep per iteration).
class SsorSolver final : public SorSolver {
 public:
  SsorSolver(const CsrMatrix& a, Vector b, double omega = 1.0,
             SolveOptions opts = {})
      : SorSolver(a, std::move(b), omega, SweepKind::kSymmetric, opts) {}
  [[nodiscard]] std::string name() const override { return "ssor"; }
};

}  // namespace lck

#include "solvers/solver.hpp"

namespace lck {

IterativeSolver::IterativeSolver(const CsrMatrix& a, Vector b,
                                 const Preconditioner* m, SolveOptions opts)
    : a_(a), b_(std::move(b)), m_(m), opts_(opts) {
  require(a_.rows() == a_.cols(), "solver: matrix must be square");
  require(static_cast<index_t>(b_.size()) == a_.rows(),
          "solver: rhs size mismatch");
  require(opts_.max_iterations > 0, "solver: max_iterations must be positive");
  if (m_ == nullptr) m_ = &identity_;
  b_norm_ = norm2(b_);
  x_.assign(b_.size(), 0.0);
}

void IterativeSolver::restart(std::span<const double> x0) {
  require(x0.size() == b_.size(), "restart: x0 size mismatch");
  if (x0.data() != x_.data()) x_.assign(x0.begin(), x0.end());
  do_restart();
  update_convergence();
}

IterationState IterativeSolver::step() {
  do_step();
  ++iteration_;
  update_convergence();
  if (opts_.record_history) history_.push_back(res_norm_);
  return {iteration_, res_norm_, converged_};
}

const Vector& IterativeSolver::solution() {
  materialize_solution();
  return x_;
}

IterationState IterativeSolver::solve() {
  IterationState st{iteration_, res_norm_, converged_};
  while (!converged_ && iteration_ < opts_.max_iterations) st = step();
  return st;
}

std::vector<ProtectedVar> IterativeSolver::checkpoint_vectors() {
  materialize_solution();
  return {{"x", &x_}};
}

void IterativeSolver::save_scalars(ByteWriter& out) const {
  out.put(static_cast<std::int64_t>(iteration_));
  out.put(res_norm_);
}

void IterativeSolver::restore_scalars(ByteReader& in) {
  iteration_ = in.get<std::int64_t>();
  res_norm_ = in.get<double>();
}

}  // namespace lck

#include "solvers/factory.hpp"

namespace lck {

std::unique_ptr<IterativeSolver> make_solver(const SolverSpec& spec,
                                             const CsrMatrix& a, Vector b,
                                             const Preconditioner* m) {
  if (spec.method == "jacobi")
    return std::make_unique<JacobiSolver>(a, std::move(b), spec.options);
  if (spec.method == "gauss-seidel")
    return std::make_unique<GaussSeidelSolver>(a, std::move(b), spec.options);
  if (spec.method == "sor")
    return std::make_unique<SorSolver>(a, std::move(b), spec.sor_omega,
                                       SweepKind::kForward, spec.options);
  if (spec.method == "ssor")
    return std::make_unique<SsorSolver>(a, std::move(b), spec.sor_omega,
                                        spec.options);
  if (spec.method == "cg")
    return std::make_unique<CgSolver>(a, std::move(b), m, spec.options);
  if (spec.method == "gmres")
    return std::make_unique<GmresSolver>(a, std::move(b), m,
                                         spec.gmres_restart, spec.options);
  if (spec.method == "minres")
    return std::make_unique<MinresSolver>(a, std::move(b), spec.options);
  if (spec.method == "bicgstab")
    return std::make_unique<BicgstabSolver>(a, std::move(b), m, spec.options);
  throw config_error("unknown solver method: " + spec.method);
}

}  // namespace lck

#pragma once
/// \file cg.hpp
/// \brief Preconditioned conjugate gradient — the paper's Algorithm 1/2.
///
/// Under the lossy checkpointing scheme the paper uses *restarted* CG: after
/// a lossy recovery, restart() treats the decompressed x as a new initial
/// guess and rebuilds the Krylov recurrences (r, z, p, ρ), restoring the
/// superlinear convergence rate (§4.2). Under traditional/lossless
/// checkpointing, both x and p (plus ρ) are saved, matching the paper's
/// Algorithm 1 line 4 and the Fig. 6 discussion.

#include "solvers/solver.hpp"

namespace lck {

class CgSolver final : public IterativeSolver {
 public:
  CgSolver(const CsrMatrix& a, Vector b, const Preconditioner* m = nullptr,
           SolveOptions opts = {});

  [[nodiscard]] std::string name() const override { return "cg"; }

  /// Traditional scheme checkpoints x and p (paper Algorithm 1 line 4).
  [[nodiscard]] std::vector<ProtectedVar> checkpoint_vectors() override;

  void save_scalars(ByteWriter& out) const override;
  void restore_scalars(ByteReader& in) override;
  void do_resume_after_restore() override;

 protected:
  void do_restart() override;
  void do_step() override;

 private:
  Vector r_, z_, p_, q_;  // r, z recomputed; p dynamic; q scratch
  double rho_ = 0.0;      // dynamic scalar ρ = rᵀz (paper Algorithm 1)
};

}  // namespace lck

#include "solvers/gmres.hpp"

#include <cmath>

namespace lck {

GmresSolver::GmresSolver(const CsrMatrix& a, Vector b,
                         const Preconditioner* m, index_t restart,
                         SolveOptions opts)
    : IterativeSolver(a, std::move(b), m, opts), m_restart_(restart) {
  require(restart >= 1, "gmres: restart length must be >= 1");
  const std::size_t n = b_.size();
  v_.assign(static_cast<std::size_t>(m_restart_) + 1, Vector(n, 0.0));
  h_.resize(static_cast<std::size_t>(m_restart_));
  cs_.assign(m_restart_, 0.0);
  sn_.assign(m_restart_, 0.0);
  g_.assign(static_cast<std::size_t>(m_restart_) + 1, 0.0);
  w_.assign(n, 0.0);
  z_.assign(n, 0.0);
  this->restart(x_);
}

void GmresSolver::begin_cycle() {
  x_base_ = x_;
  // Fused r = b − A·x and ‖r‖ in one sweep (bit-identical to the separate
  // residual + norm2 calls; see CsrMatrix::residual_norm2).
  const double beta = a_.residual_norm2(b_, x_base_, w_);
  res_norm_ = beta;
  j_ = 0;
  std::fill(g_.begin(), g_.end(), 0.0);
  g_[0] = beta;
  if (beta > 0.0) {
    copy(w_, v_[0]);
    scale(v_[0], 1.0 / beta);
  } else {
    fill(v_[0], 0.0);
  }
  x_current_ = true;
}

void GmresSolver::do_restart() { begin_cycle(); }

void GmresSolver::do_resume_after_restore() {
  // Traditional recovery for restarted GMRES: the Krylov basis is rebuilt
  // from the restored iterate (only x is dynamic — paper §4.2).
  begin_cycle();
}

void GmresSolver::do_step() {
  if (converged_) return;
  if (j_ == m_restart_) begin_cycle();

  const std::size_t j = static_cast<std::size_t>(j_);
  // w = A·M⁻¹·v_j  (right preconditioning).
  m_->apply(v_[j], z_);
  a_.multiply(z_, w_);

  // Modified Gram–Schmidt.
  auto& hcol = h_[j];
  hcol.assign(j + 2, 0.0);
  for (std::size_t i = 0; i <= j; ++i) {
    hcol[i] = dot(w_, v_[i]);
    axpy(-hcol[i], v_[i], w_);
  }
  const double hnorm = norm2(w_);
  hcol[j + 1] = hnorm;
  if (hnorm > 0.0) {
    copy(w_, v_[j + 1]);
    scale(v_[j + 1], 1.0 / hnorm);
  }

  // Apply accumulated Givens rotations to the new column.
  for (std::size_t i = 0; i < j; ++i) {
    const double t = cs_[i] * hcol[i] + sn_[i] * hcol[i + 1];
    hcol[i + 1] = -sn_[i] * hcol[i] + cs_[i] * hcol[i + 1];
    hcol[i] = t;
  }
  // New rotation annihilating h[j+1].
  const double denom = std::hypot(hcol[j], hcol[j + 1]);
  if (denom == 0.0) {
    cs_[j] = 1.0;
    sn_[j] = 0.0;
  } else {
    cs_[j] = hcol[j] / denom;
    sn_[j] = hcol[j + 1] / denom;
  }
  hcol[j] = cs_[j] * hcol[j] + sn_[j] * hcol[j + 1];
  hcol[j + 1] = 0.0;
  g_[j + 1] = -sn_[j] * g_[j];
  g_[j] = cs_[j] * g_[j];

  res_norm_ = std::fabs(g_[j + 1]);
  ++j_;
  x_current_ = false;

  // Happy breakdown (exact solution in the current subspace) or cycle end:
  // fold the correction into x so the next step starts a fresh cycle.
  if (hnorm == 0.0 || j_ == m_restart_ || res_norm_ <= tolerance()) {
    materialize_solution();
    if (hnorm == 0.0 || res_norm_ <= tolerance()) {
      // Next begin_cycle() will recompute the true residual from x.
      x_base_ = x_;
    }
  }
}

void GmresSolver::materialize_solution() {
  if (x_current_) return;
  const std::size_t j = static_cast<std::size_t>(j_);
  // Back-substitution: R y = g over the j×j triangle.
  Vector y(j, 0.0);
  for (std::size_t i = j; i-- > 0;) {
    double s = g_[i];
    for (std::size_t k = i + 1; k < j; ++k) s -= h_[k][i] * y[k];
    const double rii = h_[i][i];
    y[i] = rii != 0.0 ? s / rii : 0.0;
  }
  // u = Σ y_k·v_k; x = x_base + M⁻¹·u.
  fill(w_, 0.0);
  for (std::size_t k = 0; k < j; ++k) axpy(y[k], v_[k], w_);
  m_->apply(w_, z_);
  waxpy(x_base_, 1.0, z_, x_);
  x_current_ = true;
}

}  // namespace lck

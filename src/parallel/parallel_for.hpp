#pragma once
/// \file parallel_for.hpp
/// \brief Thin OpenMP wrappers so the rest of the library stays free of
///        pragmas and compiles (serially) without OpenMP.

#include <cstddef>

#include "common/types.hpp"

#if defined(_OPENMP)
#include <omp.h>
#endif

namespace lck {

/// Number of hardware threads OpenMP will use (1 without OpenMP).
inline int num_threads() noexcept {
#if defined(_OPENMP)
  return omp_get_max_threads();
#else
  return 1;
#endif
}

/// Parallel loop over [begin, end) with static scheduling.
/// `body` receives the loop index.
template <typename Body>
void parallel_for(index_t begin, index_t end, Body&& body) {
#if defined(_OPENMP)
#pragma omp parallel for schedule(static)
  for (index_t i = begin; i < end; ++i) body(i);
#else
  for (index_t i = begin; i < end; ++i) body(i);
#endif
}

/// Parallel sum-reduction over [begin, end); `body(i)` returns the term.
template <typename Body>
double parallel_reduce_sum(index_t begin, index_t end, Body&& body) {
  double sum = 0.0;
#if defined(_OPENMP)
#pragma omp parallel for schedule(static) reduction(+ : sum)
  for (index_t i = begin; i < end; ++i) sum += body(i);
#else
  for (index_t i = begin; i < end; ++i) sum += body(i);
#endif
  return sum;
}

/// Parallel max-reduction over [begin, end); `body(i)` returns the term.
template <typename Body>
double parallel_reduce_max(index_t begin, index_t end, Body&& body) {
  double m = 0.0;
#if defined(_OPENMP)
#pragma omp parallel for schedule(static) reduction(max : m)
  for (index_t i = begin; i < end; ++i) {
    const double v = body(i);
    if (v > m) m = v;
  }
#else
  for (index_t i = begin; i < end; ++i) {
    const double v = body(i);
    if (v > m) m = v;
  }
#endif
  return m;
}

}  // namespace lck

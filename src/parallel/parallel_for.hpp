#pragma once
/// \file parallel_for.hpp
/// \brief Thin OpenMP wrappers so the rest of the library stays free of
///        pragmas and compiles (serially) without OpenMP.

#include <cstddef>

#include "common/types.hpp"

#if defined(_OPENMP)
#include <omp.h>
#endif

namespace lck {

/// Number of hardware threads OpenMP will use (1 without OpenMP).
inline int num_threads() noexcept {
#if defined(_OPENMP)
  return omp_get_max_threads();
#else
  return 1;
#endif
}

/// Parallel loop over [begin, end) with static scheduling.
/// `body` receives the loop index.
template <typename Body>
void parallel_for(index_t begin, index_t end, Body&& body) {
#if defined(_OPENMP)
#pragma omp parallel for schedule(static)
  for (index_t i = begin; i < end; ++i) body(i);
#else
  for (index_t i = begin; i < end; ++i) body(i);
#endif
}

// Reductions live in sparse/vector_ops.hpp (detail::deterministic_reduce):
// an OpenMP `reduction` clause reassociates floating-point sums per thread
// count, which would make solver trajectories machine-dependent, so the
// convenient-but-irreproducible helpers were removed rather than kept
// available for accidental reintroduction.

}  // namespace lck

#pragma once
/// \file partitioner.hpp
/// \brief Block decomposition of a global index range over logical ranks.
///
/// The paper runs with up to 2,048 MPI ranks; this repo executes the solver
/// mathematics on one node but still needs per-rank quantities (per-process
/// checkpoint sizes in Table 3, per-rank compression throughput in the PFS
/// model). The Partitioner provides the same contiguous block decomposition
/// PETSc uses for its parallel vectors.

#include <cstddef>

#include "common/types.hpp"

namespace lck {

/// Contiguous block partition of [0, n) over `ranks` logical ranks.
/// The first (n % ranks) ranks hold one extra element, matching PETSc's
/// default layout.
class Partitioner {
 public:
  Partitioner(index_t n, int ranks) : n_(n), ranks_(ranks) {
    require(n >= 0, "partitioner: negative size");
    require(ranks >= 1, "partitioner: need at least one rank");
  }

  [[nodiscard]] index_t global_size() const noexcept { return n_; }
  [[nodiscard]] int ranks() const noexcept { return ranks_; }

  /// Number of elements owned by `rank`.
  [[nodiscard]] index_t local_size(int rank) const noexcept {
    const index_t base = n_ / ranks_;
    const index_t extra = n_ % ranks_;
    return base + (rank < extra ? 1 : 0);
  }

  /// First global index owned by `rank`.
  [[nodiscard]] index_t offset(int rank) const noexcept {
    const index_t base = n_ / ranks_;
    const index_t extra = n_ % ranks_;
    const index_t r = rank;
    return r * base + (r < extra ? r : extra);
  }

  /// Rank owning global index `i`.
  [[nodiscard]] int owner(index_t i) const noexcept {
    const index_t base = n_ / ranks_;
    const index_t extra = n_ % ranks_;
    const index_t cutoff = extra * (base + 1);
    if (i < cutoff) return static_cast<int>(i / (base + 1));
    return static_cast<int>(extra + (i - cutoff) / base);
  }

  /// Largest local size across ranks (load-balance bound).
  [[nodiscard]] index_t max_local_size() const noexcept {
    return local_size(0);
  }

 private:
  index_t n_;
  int ranks_;
};

}  // namespace lck

#pragma once
/// \file zfp_like.hpp
/// \brief ZFP-style transform-based error-bounded lossy compressor
///        (stand-in for the ZFP comparison point in the paper).
///
/// Operates on 1-D blocks of 4 doubles in fixed-accuracy mode:
///  1. Block floating point: align the block to its maximum exponent and
///     convert to 52-bit fixed point.
///  2. Two-level integer S-transform (exactly invertible lifting) —
///     the orthogonal-transform decorrelation step.
///  3. Negabinary mapping to unsigned (bit-plane truncation in negabinary
///     is error-bounded, unlike two's complement) and embedded bit-plane
///     coding, truncated at the plane where the accumulated error stays
///     within the bound.
///
/// Every encoded block is verified against the error bound during
/// compression; blocks that would violate it (pathological cancellation)
/// are stored verbatim, so the bound holds unconditionally.
///
/// Supports kAbsolute and kValueRangeRelative bounds natively; wrap in
/// PointwiseRelativeAdapter for the paper's pointwise-relative semantics.

#include "compress/compressor.hpp"

namespace lck {

class ZfpLikeCompressor final : public LossyCompressor {
 public:
  explicit ZfpLikeCompressor(ErrorBound eb = ErrorBound::absolute(1e-6))
      : LossyCompressor(eb) {}

  [[nodiscard]] std::string name() const override { return "zfp"; }

  [[nodiscard]] std::vector<byte_t> compress(
      std::span<const double> data) const override;

  void decompress(std::span<const byte_t> stream,
                  std::span<double> out) const override;

  static constexpr std::size_t kBlockSize = 4;
};

}  // namespace lck

#include "compress/zfp/zfp_like.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <cstring>
#include <limits>

#include "common/bit_io.hpp"
#include "common/byte_buffer.hpp"

namespace lck {
namespace {

constexpr std::uint32_t kMagic = 0x50465a31u;  // "1ZFP"
constexpr int kFracBits = 52;                  // fixed-point fraction bits
constexpr std::size_t kBlock = ZfpLikeCompressor::kBlockSize;

enum BlockType : unsigned { kZero = 0, kCoded = 1, kRaw = 2 };

using IBlock = std::array<std::int64_t, kBlock>;
using DBlock = std::array<double, kBlock>;

/// Forward two-level S-transform: (a,b,c,d) -> (ss, ds, d0, d1).
IBlock forward_lift(const IBlock& q) noexcept {
  const std::int64_t s0 = (q[0] + q[1]) >> 1, d0 = q[0] - q[1];
  const std::int64_t s1 = (q[2] + q[3]) >> 1, d1 = q[2] - q[3];
  const std::int64_t ss = (s0 + s1) >> 1, ds = s0 - s1;
  return {ss, ds, d0, d1};
}

/// Exact inverse of forward_lift.
IBlock inverse_lift(const IBlock& c) noexcept {
  const std::int64_t s0 = c[0] + ((c[1] + 1) >> 1);
  const std::int64_t s1 = s0 - c[1];
  const std::int64_t a = s0 + ((c[2] + 1) >> 1);
  const std::int64_t b = a - c[2];
  const std::int64_t cc = s1 + ((c[3] + 1) >> 1);
  const std::int64_t d = cc - c[3];
  return {a, b, cc, d};
}

// Negabinary (base −2) signed↔unsigned mapping, as in ZFP proper: unlike
// two's complement or zigzag, truncating the low k bits of a negabinary
// code perturbs the value by less than 2^(k+1), which is what makes
// bit-plane truncation error-bounded.
constexpr std::uint64_t kNbMask = 0xaaaaaaaaaaaaaaaaull;

std::uint64_t to_negabinary(std::int64_t v) noexcept {
  return (static_cast<std::uint64_t>(v) + kNbMask) ^ kNbMask;
}

std::int64_t from_negabinary(std::uint64_t u) noexcept {
  return static_cast<std::int64_t>((u ^ kNbMask) - kNbMask);
}

/// Encode one block; returns the reconstructed values for verification.
/// `guard_shift` divides the error budget by 2^guard_shift: compression
/// first tries an aggressive plane cut and backs off only when the
/// verified reconstruction violates the bound.
DBlock encode_block(BitWriter& bw, const DBlock& x, double eb,
                    int guard_shift) {
  double amax = 0.0;
  for (const double v : x) amax = std::max(amax, std::fabs(v));
  if (amax == 0.0) {
    bw.write_bits(kZero, 2);
    return {0.0, 0.0, 0.0, 0.0};
  }

  int e = 0;
  (void)std::frexp(amax, &e);  // amax in [2^(e-1), 2^e)
  const double scale = std::ldexp(1.0, kFracBits - e);

  IBlock q{};
  for (std::size_t i = 0; i < kBlock; ++i)
    q[i] = static_cast<std::int64_t>(std::nearbyint(x[i] * scale));
  const IBlock coeffs = forward_lift(q);

  std::array<std::uint64_t, kBlock> u{};
  for (std::size_t i = 0; i < kBlock; ++i) u[i] = to_negabinary(coeffs[i]);

  int p_min = 0;
  if (eb > 0.0) {
    const double budget = std::ldexp(eb * scale, -guard_shift);
    if (budget >= 2.0) p_min = std::min(63, static_cast<int>(std::log2(budget)));
  }

  bw.write_bits(kCoded, 2);
  bw.write_bits(static_cast<std::uint64_t>(e + 1024), 12);  // biased exponent
  bw.write_bits(static_cast<std::uint64_t>(p_min), 6);
  // Per-coefficient embedded coding: 7-bit significant-plane count above
  // p_min, then that many magnitude bits. Smooth data makes the detail
  // coefficients (d0, d1, ds) tiny, so they cost a handful of bits while
  // the DC term carries the precision — the decorrelation payoff.
  for (std::size_t i = 0; i < kBlock; ++i) {
    const std::uint64_t sig = u[i] >> p_min;
    const int nplanes = sig == 0 ? 0 : 64 - std::countl_zero(sig);
    bw.write_bits(static_cast<std::uint64_t>(nplanes), 7);
    if (nplanes > 0) bw.write_bits(sig, static_cast<unsigned>(nplanes));
  }

  // Reconstruct exactly as the decoder will, for bound verification.
  const std::uint64_t keep_mask =
      p_min == 0 ? ~std::uint64_t{0} : (~std::uint64_t{0} << p_min);
  IBlock rec_coeffs{};
  for (std::size_t i = 0; i < kBlock; ++i)
    rec_coeffs[i] = from_negabinary(u[i] & keep_mask);
  const IBlock rq = inverse_lift(rec_coeffs);
  DBlock rec{};
  for (std::size_t i = 0; i < kBlock; ++i)
    rec[i] = static_cast<double>(rq[i]) / scale;
  return rec;
}

DBlock decode_block(BitReader& br) {
  const auto type = static_cast<unsigned>(br.read_bits(2));
  if (type == kZero) return {0.0, 0.0, 0.0, 0.0};
  if (type == kRaw) {
    DBlock x{};
    for (auto& v : x) {
      const std::uint64_t bits = br.read_bits(64);
      double d;
      static_assert(sizeof(d) == sizeof(bits));
      std::memcpy(&d, &bits, sizeof(d));
      v = d;
    }
    return x;
  }
  if (type != kCoded) throw corrupt_stream_error("zfp: bad block type");

  const int e = static_cast<int>(br.read_bits(12)) - 1024;
  const int p_min = static_cast<int>(br.read_bits(6));
  const double scale = std::ldexp(1.0, kFracBits - e);

  std::array<std::uint64_t, kBlock> u{};
  for (std::size_t i = 0; i < kBlock; ++i) {
    const int nplanes = static_cast<int>(br.read_bits(7));
    if (nplanes > 64) throw corrupt_stream_error("zfp: bad plane count");
    if (nplanes > 0)
      u[i] = br.read_bits(static_cast<unsigned>(nplanes)) << p_min;
  }

  IBlock coeffs{};
  for (std::size_t i = 0; i < kBlock; ++i) coeffs[i] = from_negabinary(u[i]);
  const IBlock q = inverse_lift(coeffs);
  DBlock x{};
  for (std::size_t i = 0; i < kBlock; ++i)
    x[i] = static_cast<double>(q[i]) / scale;
  return x;
}

void write_raw_block(BitWriter& bw, const DBlock& x) {
  bw.write_bits(kRaw, 2);
  for (const double v : x) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    bw.write_bits(bits, 64);
  }
}

}  // namespace

std::vector<byte_t> ZfpLikeCompressor::compress(
    std::span<const double> data) const {
  require(eb_.mode != ErrorBound::Mode::kPointwiseRelative,
          "zfp: wrap in PointwiseRelativeAdapter for pointwise-relative mode");
  const std::size_t n = data.size();

  double eb_abs = eb_.value;
  if (eb_.mode == ErrorBound::Mode::kValueRangeRelative) {
    double lo = std::numeric_limits<double>::infinity();
    double hi = -std::numeric_limits<double>::infinity();
    for (const double x : data) {
      lo = std::min(lo, x);
      hi = std::max(hi, x);
    }
    // Degenerate range (constant or single-element data) means the bound
    // value·(max−min) is zero: eb_abs == 0 forces exact (raw) blocks via
    // the verify-and-fallback path below.
    const double range = n > 0 ? hi - lo : 0.0;
    eb_abs = eb_.value * range;
  }

  ByteWriter out(n + 64);
  out.put(kMagic);
  out.put(static_cast<std::uint64_t>(n));
  out.put(eb_abs);

  BitWriter bw;
  for (std::size_t base = 0; base < n; base += kBlock) {
    DBlock x{};
    const std::size_t count = std::min(kBlock, n - base);
    for (std::size_t i = 0; i < count; ++i) x[i] = data[base + i];
    for (std::size_t i = count; i < kBlock; ++i) x[i] = x[count - 1];

    bool finite = true;
    for (const double v : x)
      if (!std::isfinite(v)) finite = false;

    bool encoded = false;
    if (finite) {
      // Try progressively more conservative plane cuts; the first whose
      // verified reconstruction meets the bound wins. Most blocks pass the
      // aggressive first attempt, keeping the stream tight.
      for (const int guard_shift : {2, 4, 6}) {
        BitWriter trial;
        const DBlock rec = encode_block(trial, x, eb_abs, guard_shift);
        bool ok = true;
        for (std::size_t i = 0; i < kBlock; ++i)
          if (std::fabs(rec[i] - x[i]) > eb_abs) {
            ok = false;
            break;
          }
        if (ok) {
          encode_block(bw, x, eb_abs, guard_shift);
          encoded = true;
          break;
        }
      }
    }
    if (!encoded) write_raw_block(bw, x);
  }
  const auto payload = bw.finish();
  out.put(static_cast<std::uint64_t>(payload.size()));
  out.put_bytes(payload);
  return std::move(out).take();
}

void ZfpLikeCompressor::decompress(std::span<const byte_t> stream,
                                   std::span<double> out) const {
  ByteReader in(stream);
  if (in.get<std::uint32_t>() != kMagic)
    throw corrupt_stream_error("zfp: bad magic");
  const auto n = in.get<std::uint64_t>();
  if (n != out.size()) throw corrupt_stream_error("zfp: output size mismatch");
  (void)in.get<double>();  // eb_abs (informational)
  const auto payload_size = in.get<std::uint64_t>();
  BitReader br(in.get_bytes(payload_size));

  for (std::size_t base = 0; base < n; base += kBlock) {
    const DBlock x = decode_block(br);
    const std::size_t count = std::min(kBlock, n - base);
    for (std::size_t i = 0; i < count; ++i) out[base + i] = x[i];
  }
}

}  // namespace lck

#pragma once
/// \file block_compressor.hpp
/// \brief Parallel block-compression pipeline (paper §5: compression must be
///        cheap relative to the PFS write for lossy checkpointing to pay off).
///
/// BlockCompressor adapts any inner Compressor: the input vector is split
/// into fixed-size element blocks, each block is compressed independently
/// (in parallel via parallel_for), and the result is a self-describing
/// framed stream with a per-block CRC-32. Decompression likewise proceeds
/// block-parallel, and a corrupted block is reported with its index.
///
/// Stream layout (all little-endian):
///   u32  magic "BLK1"
///   u64  total element count
///   u64  elements per block (as configured at compression time)
///   u32  block count
///   per block: { u64 payload_bytes, u32 crc32(payload) }   (index table)
///   concatenated block payloads
///
/// The index-table-first layout means decompress() can compute every block's
/// offset up front and fan the blocks out to threads immediately.

#include <memory>

#include "compress/compressor.hpp"

namespace lck {

class BlockCompressor final : public Compressor {
 public:
  /// 64Ki doubles = 512 KiB per block: big enough to amortize per-block
  /// headers, small enough to load-balance across threads.
  static constexpr std::size_t kDefaultBlockElems = std::size_t{1} << 16;

  /// Non-owning: `inner` must outlive this adapter (mirrors how
  /// CheckpointManager holds compressors).
  explicit BlockCompressor(const Compressor* inner,
                           std::size_t block_elems = kDefaultBlockElems);

  /// Owning convenience, e.g. BlockCompressor(make_compressor("sz")).
  explicit BlockCompressor(std::unique_ptr<Compressor> inner,
                           std::size_t block_elems = kDefaultBlockElems);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] bool lossy() const noexcept override;

  [[nodiscard]] std::vector<byte_t> compress(
      std::span<const double> data) const override;
  void decompress(std::span<const byte_t> stream,
                  std::span<double> out) const override;

  [[nodiscard]] std::size_t block_elems() const noexcept { return block_elems_; }
  [[nodiscard]] const Compressor& inner() const noexcept { return *inner_; }

 private:
  const Compressor* inner_;
  std::unique_ptr<Compressor> owned_;
  std::size_t block_elems_;
};

}  // namespace lck

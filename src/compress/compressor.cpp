#include "compress/compressor.hpp"

#include <cstring>

#include "common/byte_buffer.hpp"
#include "compress/block_compressor.hpp"
#include "compress/lossless_compressors.hpp"
#include "compress/pwrel_adapter.hpp"
#include "compress/sz/sz_like.hpp"
#include "compress/truncation.hpp"
#include "compress/zfp/zfp_like.hpp"

namespace lck {

std::vector<byte_t> NoneCompressor::compress(
    std::span<const double> data) const {
  ByteWriter out(data.size() * sizeof(double) + 16);
  out.put(kMagic);
  out.put(static_cast<std::uint64_t>(data.size()));
  out.put_array(data.data(), data.size());
  return std::move(out).take();
}

void NoneCompressor::decompress(std::span<const byte_t> stream,
                                std::span<double> out) const {
  ByteReader in(stream);
  if (in.get<std::uint32_t>() != kMagic)
    throw corrupt_stream_error("none: bad magic");
  const auto n = in.get<std::uint64_t>();
  if (n != out.size()) throw corrupt_stream_error("none: size mismatch");
  in.get_array(out.data(), n);
}

std::unique_ptr<Compressor> make_compressor(const std::string& name,
                                            ErrorBound eb) {
  // "block+<inner>": wrap any compressor in the parallel block pipeline.
  if (name.starts_with("block+"))
    return std::make_unique<BlockCompressor>(
        make_compressor(name.substr(6), eb));
  if (name == "none") return std::make_unique<NoneCompressor>();
  if (name == "rle") return std::make_unique<RleCompressor>();
  if (name == "shuffle-rle") return std::make_unique<ShuffleRleCompressor>();
  if (name == "deflate") return std::make_unique<DeflateCompressor>(false);
  if (name == "shuffle-deflate")
    return std::make_unique<DeflateCompressor>(true);
  if (name == "lz4") return std::make_unique<Lz4Compressor>(false);
  if (name == "shuffle-lz4") return std::make_unique<Lz4Compressor>(true);
  if (name == "sz") return std::make_unique<SzLikeCompressor>(eb);
  if (name == "zfp") {
    if (eb.mode == ErrorBound::Mode::kPointwiseRelative)
      return std::make_unique<PointwiseRelativeAdapter>(
          std::make_unique<ZfpLikeCompressor>(), eb.value);
    return std::make_unique<ZfpLikeCompressor>(eb);
  }
  if (name == "trunc") {
    if (eb.mode == ErrorBound::Mode::kPointwiseRelative)
      return std::make_unique<PointwiseRelativeAdapter>(
          std::make_unique<TruncationCompressor>(), eb.value);
    return std::make_unique<TruncationCompressor>(eb);
  }
  // List the registered names so a typo in a config is a one-look fix
  // (LCK_FORCE_ISA's strict parse in common/simd.cpp follows the same rule).
  throw config_error(
      "unknown compressor: '" + name +
      "' (valid: none, rle, shuffle-rle, deflate, shuffle-deflate, lz4, "
      "shuffle-lz4, sz, zfp, trunc, or any of them behind a block+ prefix)");
}

double compression_ratio(const Compressor& c, std::span<const double> data) {
  const auto stream = c.compress(data);
  if (stream.empty()) return 0.0;
  return static_cast<double>(data.size() * sizeof(double)) /
         static_cast<double>(stream.size());
}

}  // namespace lck

#include "compress/pwrel_adapter.hpp"

#include <cmath>
#include <limits>

#include "common/bit_io.hpp"
#include "common/byte_buffer.hpp"
#include "compress/lossless/byte_codecs.hpp"

namespace lck {
namespace {

constexpr std::uint32_t kMagic = 0x4c455250u;  // "PREL"

// Bitsets are RLE-compressed (sign/zero masks of solver data are nearly
// constant, so they must not impose a per-element floor on the ratio).
void write_bitset(ByteWriter& out, const std::vector<bool>& bits) {
  BitWriter bw;
  for (const bool b : bits) bw.write_bit(b ? 1u : 0u);
  const auto rle = rle_encode(bw.finish());
  out.put(static_cast<std::uint64_t>(rle.size()));
  out.put_bytes(rle);
}

std::vector<bool> read_bitset(ByteReader& in, std::size_t n) {
  const auto rle_size = in.get<std::uint64_t>();
  const auto packed = rle_decode(in.get_bytes(rle_size), (n + 7) / 8);
  BitReader br(packed);
  std::vector<bool> bits(n);
  for (std::size_t i = 0; i < n; ++i) bits[i] = br.read_bit() != 0;
  return bits;
}

}  // namespace

std::vector<byte_t> PointwiseRelativeAdapter::compress(
    std::span<const double> data) const {
  const std::size_t n = data.size();
  const double eb = eb_.value;
  const bool exact_only = eb <= 0.0;

  std::vector<bool> exact_mask(n), sign_mask(n);
  std::vector<double> logs, exact;
  logs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = data[i];
    const bool is_exact = exact_only || x == 0.0 || !std::isfinite(x) ||
                          std::fabs(x) < std::numeric_limits<double>::min();
    exact_mask[i] = is_exact;
    sign_mask[i] = std::signbit(x);
    if (is_exact)
      exact.push_back(x);
    else
      logs.push_back(std::log2(std::fabs(x)));
  }

  inner_->set_error_bound(
      ErrorBound::absolute(std::log2(1.0 + 0.999 * eb)));
  const auto inner_stream = inner_->compress(logs);

  ByteWriter out;
  out.put(kMagic);
  out.put(static_cast<std::uint64_t>(n));
  out.put(eb);
  write_bitset(out, exact_mask);
  write_bitset(out, sign_mask);
  out.put(static_cast<std::uint64_t>(exact.size()));
  out.put_array(exact.data(), exact.size());
  out.put(static_cast<std::uint64_t>(logs.size()));
  out.put(static_cast<std::uint64_t>(inner_stream.size()));
  out.put_bytes(inner_stream);
  return std::move(out).take();
}

void PointwiseRelativeAdapter::decompress(std::span<const byte_t> stream,
                                          std::span<double> out) const {
  ByteReader in(stream);
  if (in.get<std::uint32_t>() != kMagic)
    throw corrupt_stream_error("pwrel: bad magic");
  const auto n = in.get<std::uint64_t>();
  if (n != out.size()) throw corrupt_stream_error("pwrel: size mismatch");
  (void)in.get<double>();  // eb (informational)

  const auto exact_mask = read_bitset(in, n);
  const auto sign_mask = read_bitset(in, n);
  const auto exact_count = in.get<std::uint64_t>();
  std::vector<double> exact(exact_count);
  in.get_array(exact.data(), exact_count);
  const auto log_count = in.get<std::uint64_t>();
  const auto inner_size = in.get<std::uint64_t>();
  std::vector<double> logs(log_count);
  inner_->decompress(in.get_bytes(inner_size), logs);

  std::size_t li = 0, ei = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (exact_mask[i]) {
      if (ei >= exact.size())
        throw corrupt_stream_error("pwrel: exact stream exhausted");
      out[i] = exact[ei++];
    } else {
      if (li >= logs.size())
        throw corrupt_stream_error("pwrel: log stream exhausted");
      const double mag = std::exp2(logs[li++]);
      out[i] = sign_mask[i] ? -mag : mag;
    }
  }
}

}  // namespace lck

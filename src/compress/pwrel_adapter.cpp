#include "compress/pwrel_adapter.hpp"

#include <cmath>
#include <limits>

#include "common/byte_buffer.hpp"
#include "compress/exact_array.hpp"

namespace lck {
namespace {

// "PRL2": v2 streams encode the exact array compactly (nonzero bitset +
// nonzero values) so sparse fields are not pinned at ratio ≈ 1 by zeros.
constexpr std::uint32_t kMagic = 0x324c5250u;

}  // namespace

std::vector<byte_t> PointwiseRelativeAdapter::compress(
    std::span<const double> data) const {
  const std::size_t n = data.size();
  const double eb = eb_.value;
  const bool exact_only = eb <= 0.0;

  std::vector<bool> exact_mask(n), sign_mask(n);
  std::vector<double> logs;
  logs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = data[i];
    const bool is_exact = exact_only || x == 0.0 || !std::isfinite(x) ||
                          std::fabs(x) < std::numeric_limits<double>::min();
    exact_mask[i] = is_exact;
    sign_mask[i] = std::signbit(x);
    if (!is_exact) logs.push_back(std::log2(std::fabs(x)));
  }

  inner_->set_error_bound(
      ErrorBound::absolute(std::log2(1.0 + 0.999 * eb)));
  const auto inner_stream = inner_->compress(logs);

  ByteWriter out;
  out.put(kMagic);
  out.put(static_cast<std::uint64_t>(n));
  out.put(eb);
  write_rle_bitset(out, exact_mask);
  write_rle_bitset(out, sign_mask);
  // Compact exact array (see exact_array.hpp): zeros cost ~0 bits, so
  // sparse fields stop bottoming out at ratio ≈ 1.
  write_exact_array(out, data, exact_mask);
  out.put(static_cast<std::uint64_t>(logs.size()));
  out.put(static_cast<std::uint64_t>(inner_stream.size()));
  out.put_bytes(inner_stream);
  return std::move(out).take();
}

void PointwiseRelativeAdapter::decompress(std::span<const byte_t> stream,
                                          std::span<double> out) const {
  ByteReader in(stream);
  if (in.get<std::uint32_t>() != kMagic)
    throw corrupt_stream_error("pwrel: bad magic");
  const auto n = in.get<std::uint64_t>();
  if (n != out.size()) throw corrupt_stream_error("pwrel: size mismatch");
  (void)in.get<double>();  // eb (informational)

  const auto exact_mask = read_rle_bitset(in, n);
  const auto sign_mask = read_rle_bitset(in, n);
  std::size_t exact_entries = 0;
  for (std::size_t i = 0; i < n; ++i)
    if (exact_mask[i]) ++exact_entries;
  ExactArrayReader exact(in, exact_entries);
  const auto log_count = in.get<std::uint64_t>();
  const auto inner_size = in.get<std::uint64_t>();
  std::vector<double> logs(log_count);
  inner_->decompress(in.get_bytes(inner_size), logs);

  std::size_t li = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (exact_mask[i]) {
      out[i] = exact.next(sign_mask[i]);
    } else {
      if (li >= logs.size())
        throw corrupt_stream_error("pwrel: log stream exhausted");
      const double mag = std::exp2(logs[li++]);
      out[i] = sign_mask[i] ? -mag : mag;
    }
  }
}

}  // namespace lck
